package snapbpf

import (
	"snapbpf/internal/ebpf"
	"snapbpf/internal/pagecache"
	"snapbpf/internal/sim"
)

// This file exposes the eBPF toolkit: SnapBPF's kernel-space
// mechanisms are ordinary programs for this environment, and users can
// attach their own programs to the simulated kernel's hooks (the
// FetchBPF/P2Cache-style programmable page cache of the related-work
// section).

type (
	// BPFBuilder assembles eBPF programs instruction by instruction.
	BPFBuilder = ebpf.Builder

	// BPFInstruction is one instruction in the eBPF subset ISA.
	BPFInstruction = ebpf.Instruction

	// BPFProgram is a loaded, verified program.
	BPFProgram = ebpf.Program

	// BPFMap is a u64->u64 kernel map (hash or array).
	BPFMap = ebpf.Map

	// BPFRegister is one of R0-R10.
	BPFRegister = ebpf.Register

	// Proc is a simulated process; prefetcher implementations receive
	// one for charging virtual time.
	Proc = sim.Proc
)

// Register aliases for program authoring.
const (
	R0  = ebpf.R0
	R1  = ebpf.R1
	R2  = ebpf.R2
	R3  = ebpf.R3
	R4  = ebpf.R4
	R5  = ebpf.R5
	R6  = ebpf.R6
	R7  = ebpf.R7
	R8  = ebpf.R8
	R9  = ebpf.R9
	RFP = ebpf.RFP
)

// Jump condition opcodes for BPFBuilder.JmpImm/JmpReg.
const (
	OpJeq  = ebpf.OpJeq
	OpJne  = ebpf.OpJne
	OpJgt  = ebpf.OpJgt
	OpJge  = ebpf.OpJge
	OpJlt  = ebpf.OpJlt
	OpJle  = ebpf.OpJle
	OpJset = ebpf.OpJset
	OpJsgt = ebpf.OpJsgt
	OpJsge = ebpf.OpJsge
	OpJslt = ebpf.OpJslt
	OpJsle = ebpf.OpJsle
)

// Standard helper IDs callable from programs.
const (
	HelperMapLookupElem = ebpf.HelperMapLookupElem
	HelperMapUpdateElem = ebpf.HelperMapUpdateElem
	HelperMapDeleteElem = ebpf.HelperMapDeleteElem
	HelperKtimeGetNS    = ebpf.HelperKtimeGetNS
	HelperTracePrintk   = ebpf.HelperTracePrintk
)

// Map types.
const (
	MapTypeHash  = ebpf.MapTypeHash
	MapTypeArray = ebpf.MapTypeArray
)

// HookAddToPageCacheLRU is the kprobe fired for every page-cache
// insertion with arguments (inode id, page offset) — the hook both
// SnapBPF programs attach to.
const HookAddToPageCacheLRU = pagecache.HookAddToPageCacheLRU

// NewBPFBuilder returns an empty program builder.
func NewBPFBuilder() *BPFBuilder { return ebpf.NewBuilder() }

// NewBPFMap creates a map of the given type and capacity.
func NewBPFMap(typ ebpf.MapType, name string, maxEntries int) (*BPFMap, error) {
	return ebpf.NewMap(typ, name, maxEntries)
}

// DisassembleBPF renders a program as readable assembly.
func DisassembleBPF(insns []BPFInstruction) string { return ebpf.Disassemble(insns) }

// RegisterBPFMap installs a map into the host's BPF subsystem and
// returns its file descriptor for LdImm64/Mov64Imm references.
func RegisterBPFMap(h *Host, m *BPFMap) int32 { return h.BPF.RegisterMap(m) }

// LoadBPF verifies and loads a program on the host (BPF_PROG_LOAD).
func LoadBPF(h *Host, name string, insns []BPFInstruction) (*BPFProgram, error) {
	return h.BPF.Load(name, insns)
}

// AttachKprobe attaches a loaded program to a named kernel hook and
// returns a detach function.
func AttachKprobe(h *Host, hook string, prog *BPFProgram) (detach func() error, err error) {
	att, err := h.Probes.Attach(hook, prog)
	if err != nil {
		return nil, err
	}
	return func() error { return h.Probes.Detach(att) }, nil
}

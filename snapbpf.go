// Package snapbpf is a self-contained reproduction of "SnapBPF:
// Exploiting eBPF for Serverless Snapshot Prefetching" (Psomadakis et
// al., HotStorage '25): an eBPF-based kernel-space mechanism for
// capturing and prefetching the working sets of VM-sandboxed
// serverless functions, evaluated against the REAP, Faast, FaaSnap
// and vanilla-Linux baselines on a deterministic discrete-event
// simulation of the Linux storage and memory stack.
//
// The package is a facade over the implementation packages:
//
//   - workload models (the FunctionBench + FaaSMem suite),
//   - prefetching schemes (SnapBPF and every baseline),
//   - the experiment runner regenerating each table and figure.
//
// # Quick start
//
//	fn, _ := snapbpf.FunctionByName("json")
//	res, _ := snapbpf.Run(fn, snapbpf.SchemeSnapBPF, snapbpf.RunConfig{N: 1})
//	fmt.Println(res.MeanE2E)
//
// See examples/ for runnable programs and cmd/snapbpf-bench for the
// full evaluation harness.
package snapbpf

import (
	"fmt"
	"time"

	"snapbpf/internal/blockdev"
	"snapbpf/internal/core"
	"snapbpf/internal/experiments"
	"snapbpf/internal/faults"
	"snapbpf/internal/obs"
	"snapbpf/internal/prefetch"
	"snapbpf/internal/prefetch/faasnap"
	"snapbpf/internal/prefetch/faast"
	"snapbpf/internal/prefetch/reap"
	"snapbpf/internal/snapshot"
	"snapbpf/internal/vmm"
	"snapbpf/internal/workload"
)

// Core re-exports. Aliases keep the full method sets of the
// implementation types available through the public API.
type (
	// Function is a workload model from the evaluation suite.
	Function = workload.Function

	// Prefetcher is one snapshot-prefetching scheme (SnapBPF or a
	// baseline); see Capabilities for its Table 1 row.
	Prefetcher = prefetch.Prefetcher

	// Capabilities is a scheme's Table 1 feature-matrix row.
	Capabilities = prefetch.Capabilities

	// Scheme is a named Prefetcher factory used by the runner.
	Scheme = experiments.Scheme

	// RunConfig tunes one experiment cell (concurrency, device,
	// allocator drift).
	RunConfig = experiments.Config

	// RunResult is the measurement of one cell.
	RunResult = experiments.RunResult

	// Table is a rendered experiment result (text and CSV).
	Table = experiments.Table

	// ExperimentOptions configures whole-figure runs.
	ExperimentOptions = experiments.Options

	// Host is one simulated machine (engine, SSD, page cache, memory
	// manager, kprobes, eBPF); advanced users compose their own
	// scenarios against it as the examples do.
	Host = vmm.Host

	// MicroVM is one VM sandbox restored from a snapshot.
	MicroVM = vmm.MicroVM

	// RestoreConfig selects guest patches and KVM behaviour.
	RestoreConfig = vmm.RestoreConfig

	// Env is the per-function context handed to Prefetchers.
	Env = prefetch.Env

	// DeviceParams describes a storage device model.
	DeviceParams = blockdev.Params

	// MemoryImage is the on-disk snapshot artifact.
	MemoryImage = snapshot.MemoryImage

	// OffsetsWS is SnapBPF's offsets-only working-set artifact.
	OffsetsWS = snapshot.OffsetsWS

	// SnapBPF is the paper's prefetcher with its mechanism toggles.
	SnapBPF = core.SnapBPF

	// FaultPlan describes seeded storage/scheme fault injection for a
	// run (RunConfig.Faults, ExperimentOptions.Faults); the zero value
	// injects nothing.
	FaultPlan = faults.Plan

	// FaultReport summarizes what a run's fault injector did
	// (RunResult.Faults): injected events, retries, fallbacks.
	FaultReport = faults.Report

	// ObsConfig selects what a run's observability layer records
	// (RunConfig.Obs): sim-time trace spans and/or metrics.
	ObsConfig = obs.Config

	// ObsReport is the finished observability output of one run
	// (RunResult.Obs); render it with obs.BuildTrace /
	// ObsReport.Metrics.
	ObsReport = obs.Report

	// MetricsSnapshot is a rendered metric set: counters plus
	// histograms with p50/p95/p99, exportable as Prometheus text.
	MetricsSnapshot = obs.Snapshot
)

// Predefined schemes, as named in the paper's figures.
var (
	SchemeLinuxNoRA = experiments.SchemeLinuxNoRA
	SchemeLinuxRA   = experiments.SchemeLinuxRA
	SchemeREAP      = experiments.SchemeREAP
	SchemeFaast     = experiments.SchemeFaast
	SchemeFaaSnap   = experiments.SchemeFaaSnap
	SchemeSnapBPF   = experiments.SchemeSnapBPF
	SchemePVOnly    = experiments.SchemePVOnly
)

// Schemes returns every predefined scheme in figure order.
func Schemes() []Scheme {
	return []Scheme{SchemeLinuxNoRA, SchemeLinuxRA, SchemeREAP,
		SchemeFaast, SchemeFaaSnap, SchemeSnapBPF, SchemePVOnly}
}

// SchemeByName resolves a scheme by its display name
// (case-sensitive, e.g. "SnapBPF", "Linux-RA").
func SchemeByName(name string) (Scheme, error) {
	for _, s := range Schemes() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scheme{}, fmt.Errorf("snapbpf: unknown scheme %q", name)
}

// Functions returns the 15-function evaluation suite (12
// FunctionBench-style functions plus the FaaSMem html/bfs/bert
// workloads), in figure order.
func Functions() []Function { return workload.Suite() }

// FunctionByName resolves a suite function by name.
func FunctionByName(name string) (Function, error) { return workload.ByName(name) }

// New returns the SnapBPF prefetcher with both mechanisms enabled
// (eBPF capture/prefetch and PV PTE marking), as in Figure 3.
func New() *SnapBPF { return core.New() }

// NewPVOnly returns the PV-PTE-marking-only configuration (Figure 4).
func NewPVOnly() *SnapBPF { return core.NewPVOnly() }

// NewREAP returns the REAP baseline (userfaultfd + WS file + direct I/O).
func NewREAP() Prefetcher { return reap.New() }

// NewFaast returns the Faast baseline (userfaultfd + allocator metadata).
func NewFaast() Prefetcher { return faast.New() }

// NewFaaSnap returns the FaaSnap baseline (mincore/mmap + coalescing).
func NewFaaSnap() Prefetcher { return faasnap.New() }

// NewLinuxRA returns the vanilla demand-paging baseline with default
// readahead; NewLinuxNoRA disables readahead.
func NewLinuxRA() Prefetcher { return prefetch.NewLinuxRA() }

// NewLinuxNoRA returns the readahead-disabled baseline.
func NewLinuxNoRA() Prefetcher { return prefetch.NewLinuxNoRA() }

// NewHost assembles a simulated machine around the given device;
// MicronSATA5300 is the paper's testbed SSD.
func NewHost(dev DeviceParams) *Host { return vmm.NewHost(dev) }

// MicronSATA5300 returns the paper's SSD model.
func MicronSATA5300() DeviceParams { return blockdev.MicronSATA5300() }

// SpindleHDD returns a 7200rpm disk model for storage-sensitivity
// studies.
func SpindleHDD() DeviceParams { return blockdev.SpindleHDD() }

// NVMeGen4 returns a modern datacenter NVMe model.
func NVMeGen4() DeviceParams { return blockdev.NVMeGen4() }

// LightFaults returns the ageing-but-serviceable device fault plan;
// HeavyFaults the degrading-device plan. Both are reproducible from
// the seed: equal plans yield byte-identical runs.
func LightFaults(seed int64) FaultPlan { return faults.Light(seed) }

// HeavyFaults returns the degrading-device fault plan.
func HeavyFaults(seed int64) FaultPlan { return faults.Heavy(seed) }

// ParseParallel parses a worker-count setting (the -parallel flag or
// SNAPBPF_BENCH_PARALLEL), rejecting non-integers and negative counts.
// 0 means one worker per CPU.
func ParseParallel(s string) (int, error) { return experiments.ParseParallel(s) }

// BuildImage constructs a function's snapshot memory image directly
// (the fast path used by the experiment harness).
func BuildImage(fn Function, zeroOnFree bool) *MemoryImage {
	return vmm.BuildImage(fn, zeroOnFree)
}

// Run executes one experiment cell: a record phase followed by N
// concurrent cold-start invocations on a fresh simulated host.
func Run(fn Function, scheme Scheme, cfg RunConfig) (*RunResult, error) {
	return experiments.Run(fn, scheme, cfg)
}

// WavesResult is the measurement of a steady-state (repeated-burst)
// run; MixedResult is the measurement of a multi-function co-location
// run.
type (
	WavesResult = experiments.WavesResult
	MixedResult = experiments.MixedResult
)

// RunWaves runs repeated bursts of cold starts of one function on one
// host, with sandbox teardown between bursts (steady-state scenario).
func RunWaves(fn Function, scheme Scheme, waves, perWave int, gap time.Duration, dev DeviceParams) (*WavesResult, error) {
	return experiments.RunWaves(fn, scheme, waves, perWave, gap, dev)
}

// RunMixed runs sandboxes of several different functions concurrently
// on one shared host (co-location scenario).
func RunMixed(fns []Function, scheme Scheme, perFn int, dev DeviceParams) (*MixedResult, error) {
	return experiments.RunMixed(fns, scheme, perFn, dev)
}

// Experiment identifies one reproducible table or figure.
type Experiment struct {
	// ID is the experiment identifier ("table1", "fig3a", ...).
	ID string
	// Run regenerates the experiment.
	Run func(ExperimentOptions) (*Table, error)
}

// Experiments returns every experiment (the paper's Table 1, Figures
// 3a/3b/3c and 4, the overheads measurement, and the ablations) in
// report order.
func Experiments() []Experiment {
	var out []Experiment
	for _, e := range experiments.All() {
		out = append(out, Experiment{ID: e.ID, Run: e.Run})
	}
	return out
}

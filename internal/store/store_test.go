package store

import (
	"testing"
	"time"

	"snapbpf/internal/faults"
	"snapbpf/internal/sim"
)

// run executes body as a simulation proc and drains the engine.
func run(t *testing.T, eng *sim.Engine, name string, body func(p *sim.Proc)) {
	t.Helper()
	eng.Go(name, body)
	eng.Run()
}

func testParams() Params {
	return Params{FirstByte: 10 * time.Millisecond, MiBps: 1024, ChunkPages: 4}
}

func newCache(params Params, inj *faults.Injector) (*sim.Engine, *Remote, *HostCache) {
	eng := sim.NewEngine()
	remote := NewRemote(params)
	return eng, remote, NewHostCache(eng, remote, inj)
}

func TestTierPolicyStrings(t *testing.T) {
	for _, tc := range []struct {
		got, want string
	}{
		{TierLocal.String(), "local"},
		{TierWarm.String(), "warm"},
		{TierCold.String(), "cold"},
		{PolicyDemand.String(), "demand"},
		{PolicyFull.String(), "full"},
		{PolicyWSLazy.String(), "wslazy"},
	} {
		if tc.got != tc.want {
			t.Errorf("String() = %q, want %q", tc.got, tc.want)
		}
	}
}

func TestPreloadThenHits(t *testing.T) {
	tags := testTags(16)
	eng, remote, hc := newCache(testParams(), nil)
	man := BuildManifest("a", tags, 4)
	bind := hc.Bind(man, PolicyDemand, tags)
	run(t, eng, "preload", bind.Preload)
	st := hc.Stats()
	if st.Fetches != 4 || st.Hits != 0 {
		t.Fatalf("preload: %d fetches, %d hits; want 4, 0", st.Fetches, st.Hits)
	}
	if st.FetchBytes != 16*4096 {
		t.Fatalf("preload moved %d bytes, want %d", st.FetchBytes, 16*4096)
	}
	// A second pass over the same chunks is all same-function hits.
	run(t, eng, "again", bind.Preload)
	st = hc.Stats()
	if st.Fetches != 4 || st.Hits != 4 || st.DedupHits != 0 {
		t.Fatalf("second pass: %+v", st)
	}
	if rs := remote.Stats(); rs.Requests != 4 || rs.DupRequests != 0 || rs.UniqueChunks != 4 {
		t.Fatalf("remote: %+v", rs)
	}
	if ids := hc.CachedChunks(); len(ids) != 4 {
		t.Fatalf("%d resident chunks, want 4", len(ids))
	}
}

func TestCrossFunctionDedup(t *testing.T) {
	tags := testTags(16)
	eng, remote, hc := newCache(testParams(), nil)
	// Two functions over identical content: same chunk IDs.
	ba := hc.Bind(BuildManifest("a", tags, 4), PolicyDemand, tags)
	bb := hc.Bind(BuildManifest("b", tags, 4), PolicyDemand, tags)
	run(t, eng, "a", ba.Preload)
	run(t, eng, "b", bb.Preload)
	st := hc.Stats()
	if st.Fetches != 4 {
		t.Fatalf("%d fetches; the second function must not refetch shared chunks", st.Fetches)
	}
	if st.DedupHits != 4 {
		t.Fatalf("%d dedup hits, want 4", st.DedupHits)
	}
	if rs := remote.Stats(); rs.Requests != 4 {
		t.Fatalf("remote served %d requests, want 4", rs.Requests)
	}
	// Refcounts: each chunk referenced by both manifests.
	for _, c := range ba.refs {
		if got := hc.RefCount(c.ID); got != 2 {
			t.Fatalf("chunk %016x refcount %d, want 2", c.ID, got)
		}
	}
	if hc.Stats().Manifests != 2 {
		t.Fatalf("manifest count %d, want 2", hc.Stats().Manifests)
	}
}

func TestInflightCoalesce(t *testing.T) {
	tags := testTags(4)
	eng, remote, hc := newCache(testParams(), nil)
	bind := hc.Bind(BuildManifest("a", tags, 4), PolicyDemand, tags)
	// Two procs stage the same range concurrently: one fetch, the
	// blocked proc re-classifies to a hit when the fetch lands.
	eng.Go("p1", func(p *sim.Proc) { bind.Stage(p, 0, 16*1024) })
	eng.Go("p2", func(p *sim.Proc) { bind.Stage(p, 0, 16*1024) })
	eng.Run()
	st := hc.Stats()
	if st.Fetches != 1 {
		t.Fatalf("%d fetches; concurrent misses must coalesce", st.Fetches)
	}
	if st.Hits != 1 {
		t.Fatalf("%d hits, want 1 (the coalesced waiter)", st.Hits)
	}
	if rs := remote.Stats(); rs.Requests != 1 {
		t.Fatalf("remote served %d requests, want 1", rs.Requests)
	}
}

func TestStageRangeSelectsOverlappingChunks(t *testing.T) {
	tags := testTags(16)
	eng, _, hc := newCache(testParams(), nil)
	bind := hc.Bind(BuildManifest("a", tags, 4), PolicyDemand, tags)
	// Bytes [1 page, 5 pages) overlap chunks [0,4) and [4,8) only.
	run(t, eng, "stage", func(p *sim.Proc) { bind.Stage(p, 4096, 4*4096) })
	if st := hc.Stats(); st.Fetches != 2 {
		t.Fatalf("%d fetches, want 2", st.Fetches)
	}
	// Zero-length stages are no-ops.
	run(t, eng, "empty", func(p *sim.Proc) { bind.Stage(p, 0, 0) })
	if st := hc.Stats(); st.Fetches != 2 {
		t.Fatalf("zero-length stage fetched")
	}
}

func TestLRUCapacityEviction(t *testing.T) {
	tags := testTags(16)
	params := testParams()
	params.CapacityChunks = 2
	eng, remote, hc := newCache(params, nil)
	bind := hc.Bind(BuildManifest("a", tags, 4), PolicyDemand, tags)
	run(t, eng, "fill", bind.Preload) // 4 chunks through a 2-chunk cache
	st := hc.Stats()
	if st.Evictions != 2 {
		t.Fatalf("%d evictions, want 2", st.Evictions)
	}
	if ids := hc.CachedChunks(); len(ids) != 2 {
		t.Fatalf("%d resident, want 2", len(ids))
	}
	// Re-staging the coldest (evicted) chunk refetches it.
	run(t, eng, "refetch", func(p *sim.Proc) { bind.Stage(p, 0, 4*4096) })
	if st := hc.Stats(); st.Fetches != 5 {
		t.Fatalf("%d fetches after refetch, want 5", st.Fetches)
	}
	if rs := remote.Stats(); rs.DupRequests != 1 {
		t.Fatalf("remote dup requests %d, want 1 (the refetch)", rs.DupRequests)
	}
}

func TestDropEvictsEverything(t *testing.T) {
	tags := testTags(16)
	eng, _, hc := newCache(testParams(), nil)
	bind := hc.Bind(BuildManifest("a", tags, 4), PolicyDemand, tags)
	run(t, eng, "fill", bind.Preload)
	hc.Drop()
	if ids := hc.CachedChunks(); len(ids) != 0 {
		t.Fatalf("%d chunks resident after Drop", len(ids))
	}
	if st := hc.Stats(); st.Evictions != 4 {
		t.Fatalf("%d evictions, want 4", st.Evictions)
	}
	// Everything is refetchable afterwards.
	run(t, eng, "refill", bind.Preload)
	if st := hc.Stats(); st.Fetches != 8 {
		t.Fatalf("%d fetches after refill, want 8", st.Fetches)
	}
}

func TestFetchLatencyModel(t *testing.T) {
	tags := testTags(4)
	params := testParams() // 10ms first byte, 1024 MiB/s, 4-page chunks
	eng, _, hc := newCache(params, nil)
	bind := hc.Bind(BuildManifest("a", tags, 4), PolicyDemand, tags)
	var took time.Duration
	run(t, eng, "fetch", func(p *sim.Proc) {
		start := p.Now()
		bind.Stage(p, 0, 4*4096)
		took = p.Now().Sub(start)
	})
	want := params.FirstByte + params.transfer(4*4096)
	if took != want {
		t.Fatalf("single fetch took %v, want %v", took, want)
	}
}

func TestLinkSerializesTransfers(t *testing.T) {
	tags := testTags(8)
	params := testParams()
	eng, _, hc := newCache(params, nil)
	bind := hc.Bind(BuildManifest("a", tags, 4), PolicyDemand, tags)
	ends := make([]sim.Time, 2)
	for i := 0; i < 2; i++ {
		i := i
		eng.Go("fetch", func(p *sim.Proc) {
			bind.Stage(p, int64(i)*4*4096, 4*4096)
			ends[i] = p.Now()
		})
	}
	eng.Run()
	transfer := params.transfer(4 * 4096)
	// Handshakes overlap; the two transfers serialize over one link.
	if want := sim.Time(0).Add(params.FirstByte + transfer); ends[0] != want {
		t.Fatalf("first fetch ended at %v, want %v", ends[0], want)
	}
	if want := sim.Time(0).Add(params.FirstByte + 2*transfer); ends[1] != want {
		t.Fatalf("second fetch ended at %v, want %v", ends[1], want)
	}
}

func TestStoreFaultRetriesAndSpikes(t *testing.T) {
	plan := faults.Plan{Seed: 5, StoreErrorRate: 1.0, StoreSpikeRate: 1.0, StoreSpike: 3 * time.Millisecond}
	inj := faults.NewInjector(plan)
	tags := testTags(4)
	eng, _, hc := newCache(testParams(), inj)
	bind := hc.Bind(BuildManifest("a", tags, 4), PolicyDemand, tags)
	var took time.Duration
	run(t, eng, "fetch", func(p *sim.Proc) {
		start := p.Now()
		bind.Stage(p, 0, 4*4096)
		took = p.Now().Sub(start)
	})
	st := hc.Stats()
	// Rate 1.0 errors every attempt below MaxErrorAttempts, then the
	// bound forces success: exactly MaxErrorAttempts retries.
	if st.Retries != faults.MaxErrorAttempts {
		t.Fatalf("%d retries, want %d", st.Retries, faults.MaxErrorAttempts)
	}
	if st.Spikes != faults.MaxErrorAttempts+1 {
		t.Fatalf("%d spikes, want one per attempt = %d", st.Spikes, faults.MaxErrorAttempts+1)
	}
	rep := inj.Report()
	if rep.StoreErrors != int64(faults.MaxErrorAttempts) || rep.StoreSpikes != int64(faults.MaxErrorAttempts)+1 {
		t.Fatalf("report: %+v", rep)
	}
	// Latency must include every handshake, spike and backoff.
	params := testParams()
	want := params.transfer(4 * 4096)
	for a := 0; a <= faults.MaxErrorAttempts; a++ {
		want += params.FirstByte + plan.StoreSpike
		if a < faults.MaxErrorAttempts {
			want += faults.Backoff(a)
		}
	}
	if took != want {
		t.Fatalf("faulty fetch took %v, want %v", took, want)
	}
}

func TestPlanOnlyUnderWSLazy(t *testing.T) {
	tags := testTags(16)
	for _, tc := range []struct {
		policy      Policy
		wantFetches int64
	}{
		{PolicyDemand, 0}, // plan ignored
		{PolicyFull, 0},   // plan ignored
		{PolicyWSLazy, 2}, // pages 5 and 9 -> chunks [4,8) and [8,12)
	} {
		eng, _, hc := newCache(testParams(), nil)
		bind := hc.Bind(BuildManifest("a", tags, 4), tc.policy, tags)
		run(t, eng, "plan", func(p *sim.Proc) { bind.Plan(p, []int64{5, 9, 5}) })
		if st := hc.Stats(); st.Fetches != tc.wantFetches {
			t.Errorf("%v: %d fetches, want %d", tc.policy, st.Fetches, tc.wantFetches)
		}
	}
	// Second plan call is a no-op (first VM wins).
	eng, _, hc := newCache(testParams(), nil)
	bind := hc.Bind(BuildManifest("a", tags, 4), PolicyWSLazy, tags)
	run(t, eng, "plan1", func(p *sim.Proc) { bind.Plan(p, []int64{0}) })
	run(t, eng, "plan2", func(p *sim.Proc) { bind.Plan(p, []int64{12}) })
	if st := hc.Stats(); st.Fetches != 1 {
		t.Fatalf("replanned: %d fetches, want 1", st.Fetches)
	}
}

func TestBeginRestoreFullDownload(t *testing.T) {
	tags := testTags(16)
	eng, _, hc := newCache(testParams(), nil)
	bind := hc.Bind(BuildManifest("a", tags, 4), PolicyFull, tags)
	// Two restores gate on the same download; both resume only when
	// every chunk is resident.
	for i := 0; i < 2; i++ {
		eng.Go("restore", func(p *sim.Proc) {
			bind.BeginRestore(p)
			if got := len(hc.CachedChunks()); got != 4 {
				t.Errorf("restore resumed with %d/4 chunks resident", got)
			}
		})
	}
	eng.Run()
	if st := hc.Stats(); st.Fetches != 4 {
		t.Fatalf("%d fetches, want 4", st.Fetches)
	}
	// Non-full policies return immediately without touching the remote.
	eng2, _, hc2 := newCache(testParams(), nil)
	b2 := hc2.Bind(BuildManifest("a", tags, 4), PolicyDemand, tags)
	run(t, eng2, "noop", b2.BeginRestore)
	if st := hc2.Stats(); st.Fetches != 0 {
		t.Fatalf("demand BeginRestore fetched %d chunks", st.Fetches)
	}
}

package store

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

func testTags(n int) []uint64 {
	tags := make([]uint64, n)
	for i := range tags {
		tags[i] = uint64(i)*2654435761 + 1
	}
	return tags
}

func TestBuildManifestGeometry(t *testing.T) {
	tags := testTags(10)
	m := BuildManifest("fn", tags, 4)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NrPages != 10 || len(m.Chunks) != 3 {
		t.Fatalf("geometry: %d pages in %d chunks", m.NrPages, len(m.Chunks))
	}
	// Contiguous cover of [0, NrPages), last chunk partial.
	var next int64
	for _, c := range m.Chunks {
		if c.Start != next {
			t.Fatalf("chunk starts at %d, expected %d", c.Start, next)
		}
		next = c.End()
	}
	if next != m.NrPages {
		t.Fatalf("chunks cover %d of %d pages", next, m.NrPages)
	}
	if last := m.Chunks[2]; last.NPages != 2 {
		t.Fatalf("partial tail chunk has %d pages, want 2", last.NPages)
	}
	if got := m.TotalBytes(); got != 10*4096 {
		t.Fatalf("TotalBytes = %d, want %d", got, 10*4096)
	}
	// chunkPages <= 0 takes the default size.
	d := BuildManifest("fn", testTags(DefaultChunkPages+1), 0)
	if len(d.Chunks) != 2 || d.Chunks[0].NPages != DefaultChunkPages {
		t.Fatalf("default chunking: %+v", d.Chunks)
	}
}

func TestChunkIDContentAddressing(t *testing.T) {
	tags := testTags(8)
	// Same content, same extent length -> same ID (dedup); different
	// content -> different ID.
	a := chunkID(tags[0:4])
	if b := chunkID(tags[0:4]); b != a {
		t.Fatal("identical content hashed differently")
	}
	if b := chunkID(tags[4:8]); b == a {
		t.Fatal("distinct content collided")
	}
	// Two functions sharing page contents share chunk IDs.
	m1 := BuildManifest("fn1", tags, 4)
	m2 := BuildManifest("fn2", tags, 4)
	for i := range m1.Chunks {
		if m1.Chunks[i].ID != m2.Chunks[i].ID {
			t.Fatalf("chunk %d: IDs differ across functions with equal content", i)
		}
	}
}

func TestValidateRejectsBadExtents(t *testing.T) {
	cases := []struct {
		name string
		m    Manifest
		want string
	}{
		{"negative pages", Manifest{Fn: "f", NrPages: -1}, "negative page count"},
		{"zero extent", Manifest{Fn: "f", NrPages: 4,
			Chunks: []ChunkRef{{ID: 1, Start: 0, NPages: 0}}}, "out of range"},
		{"negative start", Manifest{Fn: "f", NrPages: 4,
			Chunks: []ChunkRef{{ID: 1, Start: -1, NPages: 2}}}, "out of range"},
		{"past end", Manifest{Fn: "f", NrPages: 4,
			Chunks: []ChunkRef{{ID: 1, Start: 2, NPages: 3}}}, "out of range"},
		{"overlap", Manifest{Fn: "f", NrPages: 8,
			Chunks: []ChunkRef{{ID: 1, Start: 0, NPages: 4}, {ID: 2, Start: 3, NPages: 2}}}, "overlaps"},
		{"duplicate extent", Manifest{Fn: "f", NrPages: 8,
			Chunks: []ChunkRef{{ID: 1, Start: 0, NPages: 4}, {ID: 1, Start: 0, NPages: 4}}}, "overlaps"},
	}
	for _, c := range cases {
		err := c.m.Validate()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
	// Duplicate IDs on distinct extents are dedup, not an error.
	dup := Manifest{Fn: "f", NrPages: 8,
		Chunks: []ChunkRef{{ID: 7, Start: 0, NPages: 4}, {ID: 7, Start: 4, NPages: 4}}}
	if err := dup.Validate(); err != nil {
		t.Errorf("duplicate chunk IDs rejected: %v", err)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	for _, m := range []*Manifest{
		BuildManifest("json", testTags(1000), 64),
		BuildManifest("", nil, 16), // empty image, empty name
		{Fn: "dup", NrPages: 8, Chunks: []ChunkRef{{ID: 7, Start: 0, NPages: 4}, {ID: 7, Start: 4, NPages: 4}}},
	} {
		got, err := DecodeManifest(m.Encode())
		if err != nil {
			t.Fatalf("%q: decode: %v", m.Fn, err)
		}
		if !manifestsEqual(got, m) {
			t.Fatalf("%q: round trip drifted:\n got %+v\nwant %+v", m.Fn, got, m)
		}
	}
	// Permuted chunk order survives the trip too.
	m := BuildManifest("perm", testTags(1000), 64)
	PermuteChunks(m, 42)
	got, err := DecodeManifest(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !manifestsEqual(got, m) {
		t.Fatal("permuted round trip drifted")
	}
}

// manifestsEqual compares treating nil and empty chunk slices as equal.
func manifestsEqual(a, b *Manifest) bool {
	if a.Fn != b.Fn || a.NrPages != b.NrPages || len(a.Chunks) != len(b.Chunks) {
		return false
	}
	for i := range a.Chunks {
		if a.Chunks[i] != b.Chunks[i] {
			return false
		}
	}
	return true
}

func TestPermuteChunksDeterministic(t *testing.T) {
	base := BuildManifest("p", testTags(1000), 64)
	a := BuildManifest("p", testTags(1000), 64)
	b := BuildManifest("p", testTags(1000), 64)
	PermuteChunks(a, 7)
	PermuteChunks(b, 7)
	if !reflect.DeepEqual(a.Chunks, b.Chunks) {
		t.Fatal("same seed produced different orders")
	}
	if reflect.DeepEqual(a.Chunks, base.Chunks) {
		t.Fatal("seed 7 left the order untouched (suspicious for 16 chunks)")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("permuted manifest invalid: %v", err)
	}
	// Same chunk set, different order.
	set := func(cs []ChunkRef) map[ChunkRef]bool {
		s := make(map[ChunkRef]bool, len(cs))
		for _, c := range cs {
			s[c] = true
		}
		return s
	}
	if !reflect.DeepEqual(set(a.Chunks), set(base.Chunks)) {
		t.Fatal("permutation changed the chunk set")
	}
}

func TestDecodeManifestAdversarial(t *testing.T) {
	valid := BuildManifest("json", testTags(512), 64).Encode()

	// Every proper prefix must fail cleanly (truncation at any byte).
	for i := 0; i < len(valid); i++ {
		if _, err := DecodeManifest(valid[:i]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", i)
		}
	}

	// Any single flipped byte must fail the checksum (or a bound).
	for i := 0; i < len(valid); i++ {
		bad := append([]byte(nil), valid...)
		bad[i] ^= 0xff
		if _, err := DecodeManifest(bad); err == nil {
			t.Fatalf("flipped byte %d accepted", i)
		}
	}

	// Trailing garbage after the checksum is ignored by the reader but
	// harmless; the decode of the intact prefix still succeeds.
	if _, err := DecodeManifest(append(append([]byte(nil), valid...), 0xaa)); err != nil {
		t.Fatalf("trailing byte broke decode: %v", err)
	}

	if _, err := DecodeManifest(nil); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := DecodeManifest([]byte("not a manifest at all")); err == nil {
		t.Fatal("junk accepted")
	}
}

// TestDecodeManifestForgedCount crafts encodings whose chunk-count
// field promises far more records than the payload carries: the decoder
// must reject them without allocating for the forged count (the
// allocation-DoS cap).
func TestDecodeManifestForgedCount(t *testing.T) {
	craft := func(count int64) []byte {
		m := &Manifest{Fn: "forged", NrPages: 8,
			Chunks: []ChunkRef{{ID: 1, Start: 0, NPages: 8}}}
		data := m.Encode()
		// The count field sits after magic(4) + nameLen(8) + name(6) +
		// NrPages(8); patch it and recompute the trailer so only the
		// count is forged.
		off := 4 + 8 + len(m.Fn) + 8
		for i := 0; i < 8; i++ {
			data[off+i] = byte(count >> (8 * i))
		}
		body := data[:len(data)-4]
		sum := crcOf(body)
		copy(data[len(data)-4:], []byte{byte(sum), byte(sum >> 8), byte(sum >> 16), byte(sum >> 24)})
		return data
	}
	for _, count := range []int64{-1, 2, 1 << 20, maxDecodeAlloc + 1, 1 << 30, 1<<30 + 1, 1 << 62} {
		if _, err := DecodeManifest(craft(count)); err == nil {
			t.Errorf("forged chunk count %d accepted", count)
		}
	}
}

// crcOf mirrors the encoder's running checksum for test crafting.
func crcOf(body []byte) uint32 {
	cw := &crcWriter{w: discard{}}
	cw.Write(body)
	return cw.crc
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

var regenCorpus = flag.Bool("regen-corpus", false,
	"rewrite the committed FuzzManifest seed corpus under testdata")

// TestGenerateFuzzCorpus regenerates the committed FuzzManifest seed
// corpus; run with -regen-corpus to rewrite testdata.
func TestGenerateFuzzCorpus(t *testing.T) {
	if !*regenCorpus {
		t.Skip("pass -regen-corpus to regenerate the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzManifest")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	valid := BuildManifest("json", testTags(512), 64).Encode()
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0xff
	seeds := map[string][]byte{
		"empty":     {},
		"magic":     []byte("FMBS"),
		"valid":     valid,
		"truncated": valid[:len(valid)/2],
		"flipped":   flipped,
		"tiny":      (&Manifest{Fn: "t", NrPages: 1, Chunks: []ChunkRef{{ID: 3, Start: 0, NPages: 1}}}).Encode(),
	}
	for name, data := range seeds {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func FuzzManifest(f *testing.F) {
	valid := BuildManifest("json", testTags(512), 64).Encode()
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			return // rejected inputs just must not panic or over-allocate
		}
		// Anything the decoder accepts must be internally valid and
		// survive a re-encode round trip byte-compatibly.
		if err := m.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid manifest: %v", err)
		}
		again, err := DecodeManifest(m.Encode())
		if err != nil {
			t.Fatalf("re-encode of an accepted manifest rejected: %v", err)
		}
		if !manifestsEqual(again, m) {
			t.Fatalf("re-encode round trip drifted:\n got %+v\nwant %+v", again, m)
		}
	})
}

package store

import (
	"container/list"
	"fmt"
	"sort"
	"time"

	"snapbpf/internal/faults"
	"snapbpf/internal/sim"
	"snapbpf/internal/units"
)

// Tier is where a function's snapshot chunks start a run.
type Tier int

const (
	// TierLocal is the paper's baseline: the snapshot is on the local
	// SSD and the store is bypassed entirely.
	TierLocal Tier = iota
	// TierWarm starts with every manifest chunk resident in the host
	// chunk cache (a previous instance pulled them).
	TierWarm
	// TierCold starts with an empty chunk cache: every chunk crosses
	// the remote link before its device read can be submitted.
	TierCold
)

// String returns the flag spelling.
func (t Tier) String() string {
	switch t {
	case TierWarm:
		return "warm"
	case TierCold:
		return "cold"
	default:
		return "local"
	}
}

// ParseTier parses a -store flag value. The empty string means local;
// anything else must be an exact spelling.
func ParseTier(s string) (Tier, error) {
	switch s {
	case "", "local":
		return TierLocal, nil
	case "warm":
		return TierWarm, nil
	case "cold":
		return TierCold, nil
	}
	return TierLocal, fmt.Errorf("store: unknown tier %q (valid: local, warm, cold)", s)
}

// Policy is how a run moves chunks from the remote to the host.
type Policy int

const (
	// PolicyDemand fetches a chunk only when a device read needs it.
	PolicyDemand Policy = iota
	// PolicyFull downloads the entire snapshot before the first VM's
	// restore proceeds — the full-download-then-restore baseline.
	PolicyFull
	// PolicyWSLazy fetches the working-set chunks eagerly in
	// first-access order (SnapBPF's captured offsets become the chunk
	// priority plan) and everything else on demand.
	PolicyWSLazy
)

// String returns the flag spelling.
func (p Policy) String() string {
	switch p {
	case PolicyFull:
		return "full"
	case PolicyWSLazy:
		return "wslazy"
	default:
		return "demand"
	}
}

// ParsePolicy parses a -fetch-policy flag value. The empty string
// means demand; anything else must be an exact spelling.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "demand":
		return PolicyDemand, nil
	case "full":
		return PolicyFull, nil
	case "wslazy", "lazy":
		return PolicyWSLazy, nil
	}
	return PolicyDemand, fmt.Errorf("store: unknown fetch policy %q (valid: demand, full, wslazy)", s)
}

// DefaultChunkPages is the manifest chunk size: 1MiB, the object-store
// sweet spot between request count and read amplification.
const DefaultChunkPages = 256

// Params models the remote backend and the host chunk cache.
type Params struct {
	// FirstByte is the per-request latency before the first byte
	// arrives (object-store GET latency).
	FirstByte time.Duration
	// MiBps is the sustained per-host link bandwidth in MiB/s;
	// transfers on one host serialize over this link.
	MiBps int64
	// ChunkPages is the manifest chunk size in pages.
	ChunkPages int64
	// CapacityChunks bounds the host chunk cache (LRU); 0 is
	// unlimited.
	CapacityChunks int
}

// DefaultParams is the S3-standard-class model the locality experiment
// uses: double-digit-millisecond first byte, GiB-class bandwidth.
func DefaultParams() Params {
	return Params{FirstByte: 12 * time.Millisecond, MiBps: 1536, ChunkPages: DefaultChunkPages}
}

// withDefaults fills zero fields from DefaultParams.
func (p Params) withDefaults() Params {
	d := DefaultParams()
	if p.FirstByte <= 0 {
		p.FirstByte = d.FirstByte
	}
	if p.MiBps <= 0 {
		p.MiBps = d.MiBps
	}
	if p.ChunkPages <= 0 {
		p.ChunkPages = d.ChunkPages
	}
	return p
}

// transfer returns the link time for a chunk payload.
func (p Params) transfer(bytes int64) time.Duration {
	return time.Duration(bytes) * time.Second / time.Duration(p.MiBps*int64(units.MiB))
}

// Setup selects the distribution tier for a run or a fleet — the
// experiment- and CLI-facing configuration.
type Setup struct {
	Tier   Tier
	Policy Policy
	// Params overrides the backend model; zero fields take defaults.
	Params Params
	// PermuteChunks, when non-zero, seeds a metamorphic shuffle of
	// every manifest's chunk order (results must not move).
	PermuteChunks int64
	// SabotageChunk, when non-zero, forges the manifest hash of chunk
	// index SabotageChunk-1 — a stale-manifest corruption the checker
	// must catch (test knob).
	SabotageChunk int
}

// Observer receives store events. internal/check implements it to
// enforce the store invariants; internal/obs implements it for
// counters and fetch spans. All methods are invoked from simulation
// procs, in deterministic order.
type Observer interface {
	// StoreManifestRegistered fires when a manifest is bound to a host
	// cache. The manifest is shared, not copied: observers must not
	// mutate it.
	StoreManifestRegistered(fn string, m *Manifest)
	// StoreFetchBegin fires when a chunk miss starts a remote fetch.
	StoreFetchBegin(p *sim.Proc, fn string, id uint64, bytes int64)
	// StoreFetchEnd fires when the chunk is resident; retries and
	// spikes are the injected faults absorbed along the way.
	StoreFetchEnd(p *sim.Proc, fn string, id uint64, bytes int64, retries, spikes int, took time.Duration)
	// StoreChunkVerified fires after every fetch with the result of
	// re-hashing the chunk content against its manifest ID.
	StoreChunkVerified(fn string, id uint64, ok bool)
	// StoreChunkHit fires when a needed chunk is already resident;
	// dedup marks hits on chunks another function fetched.
	StoreChunkHit(p *sim.Proc, fn string, id uint64, dedup bool)
	// StoreChunkEvicted fires when the LRU (or a cold-tier drop)
	// removes a resident chunk.
	StoreChunkEvicted(id uint64)
}

// RemoteStats aggregates what the remote backend served — the
// request-priced side of the model.
type RemoteStats struct {
	// Requests and Bytes count every GET served.
	Requests, Bytes int64
	// UniqueChunks counts distinct chunk IDs ever served; DupRequests
	// and DupBytes are re-fetches of a chunk some host already pulled —
	// the traffic a region-level cache would have absorbed.
	UniqueChunks, DupRequests, DupBytes int64
}

// Remote is the shared S3-like backend. One Remote serves every host
// in a fleet, which is what makes cross-host dedup observable.
type Remote struct {
	params Params
	seen   map[uint64]bool
	stats  RemoteStats
}

// NewRemote builds a backend with zero Params fields defaulted.
func NewRemote(params Params) *Remote {
	return &Remote{params: params.withDefaults(), seen: make(map[uint64]bool)}
}

// Params returns the defaulted backend model.
func (r *Remote) Params() Params { return r.params }

// Stats returns the served-request totals.
func (r *Remote) Stats() RemoteStats { return r.stats }

func (r *Remote) served(id uint64, bytes int64) {
	r.stats.Requests++
	r.stats.Bytes += bytes
	if r.seen[id] {
		r.stats.DupRequests++
		r.stats.DupBytes += bytes
	} else {
		r.seen[id] = true
		r.stats.UniqueChunks++
	}
}

// CacheStats aggregates one host cache's traffic.
type CacheStats struct {
	// Fetches counts remote GETs (== chunk misses); FetchBytes their
	// payload sum; Retries and Spikes the injected faults absorbed.
	Fetches, FetchBytes, Retries, Spikes int64
	// Hits counts resident-chunk lookups; DedupHits the subset whose
	// chunk was fetched by a different function.
	Hits, DedupHits int64
	// Evictions counts LRU and drop removals; Manifests the bindings.
	Evictions, Manifests int64
}

type cacheEntry struct {
	id    uint64
	owner string // function whose fetch brought the chunk in
	bytes int64
	elem  *list.Element
}

// HostCache is one host's local-SSD chunk cache plus its link to the
// Remote. All methods must be called from simulation procs of the
// host's engine.
type HostCache struct {
	eng    *sim.Engine
	remote *Remote
	inj    *faults.Injector
	obs    Observer

	cached   map[uint64]*cacheEntry
	lru      *list.List // front = coldest
	inflight map[uint64]*sim.Waiter
	refs     map[uint64]int64 // manifest references per chunk ID
	linkTail *sim.Waiter      // transfer serialization chain
	stats    CacheStats
}

// NewHostCache builds an empty chunk cache wired to remote. inj may be
// nil (no store faults).
func NewHostCache(eng *sim.Engine, remote *Remote, inj *faults.Injector) *HostCache {
	return &HostCache{
		eng:      eng,
		remote:   remote,
		inj:      inj,
		cached:   make(map[uint64]*cacheEntry),
		lru:      list.New(),
		inflight: make(map[uint64]*sim.Waiter),
		refs:     make(map[uint64]int64),
	}
}

// SetObserver installs the event sink; nil disables events.
func (hc *HostCache) SetObserver(o Observer) { hc.obs = o }

// Stats returns the cache totals.
func (hc *HostCache) Stats() CacheStats { return hc.stats }

// CachedChunks returns the resident chunk IDs, sorted.
func (hc *HostCache) CachedChunks() []uint64 {
	ids := make([]uint64, 0, len(hc.cached))
	for id := range hc.cached {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// RefCount returns the number of manifest references to chunk id.
func (hc *HostCache) RefCount(id uint64) int64 { return hc.refs[id] }

// Bind registers a manifest against this host and returns the binding
// that stages device reads of the corresponding snapshot inode. tags
// are the snapshot's page tags, used to verify chunk content against
// the manifest hash on every fetch.
func (hc *HostCache) Bind(m *Manifest, policy Policy, tags []uint64) *Binding {
	b := &Binding{hc: hc, fn: m.Fn, man: m, policy: policy, params: hc.remote.params}
	b.refs = append([]ChunkRef(nil), m.Chunks...)
	sort.Slice(b.refs, func(i, j int) bool { return b.refs[i].Start < b.refs[j].Start })
	b.ok = make([]bool, len(b.refs))
	for i, c := range b.refs {
		b.ok[i] = c.End() <= int64(len(tags)) && c.Start >= 0 &&
			chunkID(tags[c.Start:c.End()]) == c.ID
		hc.refs[c.ID]++
	}
	hc.stats.Manifests++
	if hc.obs != nil {
		hc.obs.StoreManifestRegistered(m.Fn, m)
	}
	return b
}

// Drop evicts every resident chunk — the cold-tier reset. In-flight
// fetches are unaffected.
func (hc *HostCache) Drop() {
	for hc.lru.Len() > 0 {
		e := hc.lru.Front().Value.(*cacheEntry)
		hc.evict(e)
	}
}

func (hc *HostCache) evict(e *cacheEntry) {
	hc.lru.Remove(e.elem)
	delete(hc.cached, e.id)
	hc.stats.Evictions++
	if hc.obs != nil {
		hc.obs.StoreChunkEvicted(e.id)
	}
}

// ensure makes chunk ref resident, blocking p until it is. contentOK
// is the binding's precomputed content-vs-manifest verification for
// this chunk. capacity is the cache bound (from the owning binding's
// params; 0 = unlimited).
func (hc *HostCache) ensure(p *sim.Proc, fn string, ref ChunkRef, contentOK bool, params Params) {
	for {
		if e, ok := hc.cached[ref.ID]; ok {
			dedup := e.owner != fn
			hc.stats.Hits++
			if dedup {
				hc.stats.DedupHits++
			}
			hc.lru.MoveToBack(e.elem)
			if hc.obs != nil {
				hc.obs.StoreChunkHit(p, fn, ref.ID, dedup)
			}
			return
		}
		w, busy := hc.inflight[ref.ID]
		if !busy {
			break
		}
		p.Wait(w)
		// The fetch landed (or the entry was since evicted) — loop to
		// re-classify.
	}

	bytes := int64(units.PagesToBytes(ref.NPages))
	done := hc.eng.NewWaiter()
	hc.inflight[ref.ID] = done
	hc.stats.Fetches++
	hc.stats.FetchBytes += bytes
	if hc.obs != nil {
		hc.obs.StoreFetchBegin(p, fn, ref.ID, bytes)
	}
	start := p.Now()

	retries, spikes := 0, 0
	for attempt := 0; ; attempt++ {
		fail, spike := hc.inj.StoreOutcome(attempt)
		if spike > 0 {
			spikes++
		}
		p.Sleep(params.FirstByte + spike)
		if !fail {
			break
		}
		retries++
		p.Sleep(faults.Backoff(attempt))
	}

	// Transfers serialize over the host link in fetch order: chain on
	// the previous transfer's completion.
	prev := hc.linkTail
	mine := hc.eng.NewWaiter()
	hc.linkTail = mine
	if prev != nil {
		p.Wait(prev)
	}
	p.Sleep(params.transfer(bytes))
	mine.Fire()

	hc.remote.served(ref.ID, bytes)
	e := &cacheEntry{id: ref.ID, owner: fn, bytes: bytes}
	e.elem = hc.lru.PushBack(e)
	hc.cached[ref.ID] = e
	delete(hc.inflight, ref.ID)
	done.Fire()
	hc.stats.Retries += int64(retries)
	hc.stats.Spikes += int64(spikes)
	if hc.obs != nil {
		hc.obs.StoreFetchEnd(p, fn, ref.ID, bytes, retries, spikes, p.Now().Sub(start))
		hc.obs.StoreChunkVerified(fn, ref.ID, contentOK)
	}
	if params.CapacityChunks > 0 {
		for hc.lru.Len() > params.CapacityChunks {
			hc.evict(hc.lru.Front().Value.(*cacheEntry))
		}
	}
}

// Binding stages one (host, function) snapshot's device reads against
// the host chunk cache. It implements pagecache.Stager.
type Binding struct {
	hc     *HostCache
	fn     string
	man    *Manifest
	policy Policy
	refs   []ChunkRef // sorted by Start
	ok     []bool     // per-ref content verification, parallel to refs
	params Params

	planned  bool
	fullDone *sim.Waiter
}

// Policy returns the binding's fetch policy.
func (b *Binding) Policy() Policy { return b.policy }

// chunkAt returns the index of the chunk containing page pg, or -1.
func (b *Binding) chunkAt(pg int64) int {
	i := sort.Search(len(b.refs), func(i int) bool { return b.refs[i].End() > pg })
	if i < len(b.refs) && b.refs[i].Start <= pg {
		return i
	}
	return -1
}

// Stage blocks p until every chunk overlapping the byte range
// [off, off+length) is resident — the demand path every policy falls
// back to. Called by the page cache before submitting device reads.
func (b *Binding) Stage(p *sim.Proc, off, length int64) {
	if length <= 0 {
		return
	}
	first := int64(units.ByteOff(off).PageIdx())
	last := int64(units.ByteOff(off + length - 1).PageIdx())
	i := sort.Search(len(b.refs), func(i int) bool { return b.refs[i].End() > first })
	for ; i < len(b.refs) && b.refs[i].Start <= last; i++ {
		b.hc.ensure(p, b.fn, b.refs[i], b.ok[i], b.params)
	}
}

// Plan receives SnapBPF's captured first-access page order and, under
// the wslazy policy, starts background fetches for the corresponding
// chunks in that priority order. First call wins; later VMs reuse the
// same plan. Other policies ignore the hint.
func (b *Binding) Plan(p *sim.Proc, pages []int64) {
	if b.policy != PolicyWSLazy || b.planned {
		return
	}
	b.planned = true
	seen := make(map[int]bool)
	var order []int
	for _, pg := range pages {
		if i := b.chunkAt(pg); i >= 0 && !seen[i] {
			seen[i] = true
			order = append(order, i)
		}
	}
	for _, i := range order {
		ref, ok := b.refs[i], b.ok[i]
		b.hc.eng.Go("store-plan-fetch", func(fp *sim.Proc) {
			b.hc.ensure(fp, b.fn, ref, ok, b.params)
		})
	}
}

// BeginRestore gates a VM restore on the binding's policy: under full
// download the first caller pulls the entire snapshot and every caller
// waits for it; other policies return immediately.
func (b *Binding) BeginRestore(p *sim.Proc) {
	if b.policy != PolicyFull {
		return
	}
	if b.fullDone == nil {
		done := b.hc.eng.NewWaiter()
		b.fullDone = done
		remaining := len(b.refs)
		if remaining == 0 {
			done.Fire()
		}
		for i := range b.refs {
			ref, ok := b.refs[i], b.ok[i]
			b.hc.eng.Go("store-full-fetch", func(fp *sim.Proc) {
				b.hc.ensure(fp, b.fn, ref, ok, b.params)
				remaining--
				if remaining == 0 {
					done.Fire()
				}
			})
		}
	}
	p.Wait(b.fullDone)
}

// Preload makes every manifest chunk resident through the normal fetch
// path — the warm-tier setup.
func (b *Binding) Preload(p *sim.Proc) {
	for i := range b.refs {
		b.hc.ensure(p, b.fn, b.refs[i], b.ok[i], b.params)
	}
}

// Package store simulates the snapshot distribution tier: an S3-like
// remote object store holding snapshots as manifest-indexed,
// content-addressed chunks, fronted by a per-host chunk cache on the
// local SSD. The cache sits *behind* the block device — a chunk that
// is resident on the host is read through the usual device model, so
// the prefetching schemes are unchanged; only cold chunks pay the
// remote first-byte latency and link bandwidth before their device
// reads can be submitted.
//
// Everything is deterministic: fetch faults draw from dedicated
// internal/faults classes (so arming the store never perturbs the
// existing streams), the per-host link serializes transfers in fetch
// order, and chunk IDs are pure functions of page contents, which is
// what makes cross-function dedup — two functions sharing base-image
// chunks fetch them once per host — fall out of content addressing.
package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"snapbpf/internal/units"
)

// ChunkRef is one manifest entry: a content-addressed chunk covering
// the page extent [Start, Start+NPages) of the snapshot image.
type ChunkRef struct {
	// ID is the FNV-1a hash of the chunk's page contents — equal
	// extents of equal content collide by construction, which is the
	// dedup mechanism.
	ID uint64
	// Start is the first snapshot page the chunk covers.
	Start int64
	// NPages is the extent length in pages.
	NPages int64
}

// End returns the first page past the chunk's extent.
func (c ChunkRef) End() int64 { return c.Start + c.NPages }

// Manifest indexes one snapshot image in the remote store.
type Manifest struct {
	// Fn names the snapshotted function (the object key prefix).
	Fn string
	// NrPages is the snapshot image size in pages.
	NrPages int64
	// Chunks covers [0, NrPages) with non-overlapping extents. Order
	// is not significant — consumers index by extent — so a permuted
	// manifest must behave byte-identically (see PermuteChunks).
	Chunks []ChunkRef
}

// chunkID hashes a page-tag extent with FNV-1a — the same fold the
// checker's guest-memory digest uses, so chunk identity is a pure
// function of content.
func chunkID(tags []uint64) uint64 {
	const offset, prime = 0xcbf29ce484222325, 0x100000001b3
	h := uint64(offset)
	for _, tag := range tags {
		for b := 0; b < 8; b++ {
			h ^= (tag >> (8 * b)) & 0xff
			h *= prime
		}
	}
	return h
}

// BuildManifest chunks a snapshot image (represented by its page tags)
// into fixed-size content-addressed extents. chunkPages <= 0 takes the
// DefaultChunkPages size.
func BuildManifest(fn string, tags []uint64, chunkPages int64) *Manifest {
	if chunkPages <= 0 {
		chunkPages = DefaultChunkPages
	}
	nr := int64(len(tags))
	m := &Manifest{Fn: fn, NrPages: nr}
	for start := int64(0); start < nr; start += chunkPages {
		end := start + chunkPages
		if end > nr {
			end = nr
		}
		m.Chunks = append(m.Chunks, ChunkRef{
			ID:     chunkID(tags[start:end]),
			Start:  start,
			NPages: end - start,
		})
	}
	return m
}

// PermuteChunks deterministically shuffles the manifest's chunk order
// with a seeded splitmix64 Fisher-Yates — a metamorphic test knob:
// chunk order is not meaningful, so any permutation must leave every
// downstream byte identical.
func PermuteChunks(m *Manifest, seed int64) {
	state := uint64(seed)
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := len(m.Chunks) - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		m.Chunks[i], m.Chunks[j] = m.Chunks[j], m.Chunks[i]
	}
}

// Validate checks manifest sanity: extents must be positive, inside
// [0, NrPages) and non-overlapping. Duplicate chunk IDs are legal —
// that is dedup — but duplicate or intersecting extents are not.
func (m *Manifest) Validate() error {
	if m.NrPages < 0 {
		return fmt.Errorf("store: manifest %q: negative page count %d", m.Fn, m.NrPages)
	}
	sorted := append([]ChunkRef(nil), m.Chunks...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	for i, c := range sorted {
		if c.NPages <= 0 || c.Start < 0 || c.End() > m.NrPages {
			return fmt.Errorf("store: manifest %q: chunk extent [%d,%d) out of range of %d pages",
				m.Fn, c.Start, c.End(), m.NrPages)
		}
		if i > 0 && c.Start < sorted[i-1].End() {
			return fmt.Errorf("store: manifest %q: chunk extent [%d,%d) overlaps predecessor [%d,%d)",
				m.Fn, c.Start, c.End(), sorted[i-1].Start, sorted[i-1].End())
		}
	}
	return nil
}

// TotalBytes returns the summed chunk payload size.
func (m *Manifest) TotalBytes() int64 {
	var n int64
	for _, c := range m.Chunks {
		n += c.NPages
	}
	return int64(units.PagesToBytes(n))
}

// --- serialization ---

const manifestMagic = 0x53424d46 // "SBMF"

// maxDecodeAlloc caps the chunk-slice capacity pre-allocated from an
// attacker-controlled count field. A forged length larger than this
// still decodes (append grows the slice), it just cannot over-allocate
// up front — the same allocation-DoS fix trace.Read carries.
const maxDecodeAlloc = 1 << 16

type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p)
	return cw.w.Write(p)
}

type crcReader struct {
	r   io.Reader
	crc uint32
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc = crc32.Update(cr.crc, crc32.IEEETable, p[:n])
	return n, err
}

// Encode serializes the manifest: magic, function name, page count,
// chunk records, CRC32 trailer.
func (m *Manifest) Encode() []byte {
	var buf bytes.Buffer
	cw := &crcWriter{w: &buf}
	binary.Write(cw, binary.LittleEndian, uint32(manifestMagic))
	name := []byte(m.Fn)
	binary.Write(cw, binary.LittleEndian, int64(len(name)))
	cw.Write(name)
	binary.Write(cw, binary.LittleEndian, m.NrPages)
	binary.Write(cw, binary.LittleEndian, int64(len(m.Chunks)))
	for _, c := range m.Chunks {
		binary.Write(cw, binary.LittleEndian, c.ID)
		binary.Write(cw, binary.LittleEndian, []int64{c.Start, c.NPages})
	}
	binary.Write(&buf, binary.LittleEndian, cw.crc)
	return buf.Bytes()
}

// DecodeManifest parses and validates an encoded manifest. Truncated,
// checksum-damaged or extent-invalid inputs are rejected; a forged
// chunk count cannot force a large allocation.
func DecodeManifest(data []byte) (*Manifest, error) {
	r := bytes.NewReader(data)
	cr := &crcReader{r: r}
	var magic uint32
	if err := binary.Read(cr, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("store: truncated manifest: %w", err)
	}
	if magic != manifestMagic {
		return nil, fmt.Errorf("store: bad manifest magic %#x", magic)
	}
	var nameLen int64
	if err := binary.Read(cr, binary.LittleEndian, &nameLen); err != nil {
		return nil, fmt.Errorf("store: truncated manifest: %w", err)
	}
	if nameLen < 0 || nameLen > 4096 {
		return nil, fmt.Errorf("store: implausible manifest name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(cr, name); err != nil {
		return nil, fmt.Errorf("store: truncated manifest name: %w", err)
	}
	m := &Manifest{Fn: string(name)}
	if err := binary.Read(cr, binary.LittleEndian, &m.NrPages); err != nil {
		return nil, fmt.Errorf("store: truncated manifest: %w", err)
	}
	var n int64
	if err := binary.Read(cr, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("store: truncated manifest: %w", err)
	}
	if n < 0 || n > 1<<30 {
		return nil, fmt.Errorf("store: implausible chunk count %d", n)
	}
	alloc := n
	if alloc > maxDecodeAlloc {
		alloc = maxDecodeAlloc
	}
	m.Chunks = make([]ChunkRef, 0, alloc)
	for i := int64(0); i < n; i++ {
		var c ChunkRef
		if err := binary.Read(cr, binary.LittleEndian, &c.ID); err != nil {
			return nil, fmt.Errorf("store: truncated manifest chunk %d: %w", i, err)
		}
		var v [2]int64
		if err := binary.Read(cr, binary.LittleEndian, v[:]); err != nil {
			return nil, fmt.Errorf("store: truncated manifest chunk %d: %w", i, err)
		}
		c.Start, c.NPages = v[0], v[1]
		m.Chunks = append(m.Chunks, c)
	}
	sum := cr.crc
	var want uint32
	if err := binary.Read(r, binary.LittleEndian, &want); err != nil {
		return nil, fmt.Errorf("store: truncated manifest checksum: %w", err)
	}
	if sum != want {
		return nil, fmt.Errorf("store: manifest checksum mismatch")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

package paper

import (
	"strings"
	"testing"

	"snapbpf/internal/experiments"
)

func tableWith(id string, cols []string, rows ...[]string) *experiments.Table {
	t := &experiments.Table{ID: id, Columns: cols}
	for _, r := range rows {
		t.AddRow(r...)
	}
	return t
}

func claimFor(t *testing.T, id, substr string) Claim {
	t.Helper()
	for _, c := range Claims() {
		if c.ExperimentID == id && strings.Contains(c.Statement, substr) {
			return c
		}
	}
	t.Fatalf("no claim for %s containing %q", id, substr)
	return Claim{}
}

func TestTable1Claim(t *testing.T) {
	c := claimFor(t, "table1", "only scheme")
	good := tableWith("table1",
		[]string{"Scheme", "Mechanism", "OnDisk", "Dedup", "Filter"},
		[]string{"REAP", "uffd", "Yes", "No", "No"},
		[]string{"Faast", "uffd", "Yes", "No", "No"},
		[]string{"FaaSnap", "mincore", "Yes", "Yes", "No"},
		[]string{"SnapBPF", "eBPF", "No", "Yes", "Yes"},
	)
	if _, ok := c.Check(good); !ok {
		t.Fatal("correct table rejected")
	}
	bad := tableWith("table1",
		[]string{"Scheme", "Mechanism", "OnDisk", "Dedup", "Filter"},
		[]string{"REAP", "uffd", "Yes", "No", "Yes"}, // REAP filtering: wrong
		[]string{"Faast", "uffd", "Yes", "No", "No"},
		[]string{"FaaSnap", "mincore", "Yes", "Yes", "No"},
		[]string{"SnapBPF", "eBPF", "No", "Yes", "Yes"},
	)
	if _, ok := c.Check(bad); ok {
		t.Fatal("wrong table accepted")
	}
}

func TestFig3bClaimBands(t *testing.T) {
	c := claimFor(t, "fig3b", "8x")
	mk := func(ratio string) *experiments.Table {
		return tableWith("fig3b",
			[]string{"Function", "Linux-NoRA", "Linux-RA", "REAP", "SnapBPF", "REAP/SnapBPF"},
			[]string{"bert", "20", "3", "16", "2", ratio})
	}
	if _, ok := c.Check(mk("8.0x")); !ok {
		t.Fatal("8x rejected")
	}
	if _, ok := c.Check(mk("1.2x")); ok {
		t.Fatal("1.2x accepted")
	}
	if _, ok := c.Check(mk("50x")); ok {
		t.Fatal("50x accepted (implausibly large)")
	}
}

func TestFig4ImageClaim(t *testing.T) {
	c := claimFor(t, "fig4", "image")
	mk := func(pv string) *experiments.Table {
		return tableWith("fig4",
			[]string{"Function", "Linux-RA", "PVPTEs", "SnapBPF"},
			[]string{"image", "1.00", pv, "0.35"})
	}
	if _, ok := c.Check(mk("0.42")); !ok {
		t.Fatal("2.4x improvement rejected")
	}
	if _, ok := c.Check(mk("0.95")); ok {
		t.Fatal("no-improvement accepted")
	}
	// Restricted suite: vacuously true.
	empty := tableWith("fig4", []string{"Function", "Linux-RA", "PVPTEs", "SnapBPF"})
	if _, ok := c.Check(empty); !ok {
		t.Fatal("restricted suite should be vacuous")
	}
}

func TestOverheadsClaim(t *testing.T) {
	c := claimFor(t, "overheads", "<1%")
	good := tableWith("overheads",
		[]string{"Function", "WS groups", "Load (ms)", "E2E (s)", "Load/E2E"},
		[]string{"json", "160", "0.14", "0.1", "0.14%"},
		[]string{"bert", "3000", "2.8", "1.7", "0.16%"})
	if m, ok := c.Check(good); !ok {
		t.Fatalf("good overheads rejected: %s", m)
	}
	bad := tableWith("overheads",
		[]string{"Function", "WS groups", "Load (ms)", "E2E (s)", "Load/E2E"},
		[]string{"json", "160", "9", "0.1", "9.0%"})
	if _, ok := c.Check(bad); ok {
		t.Fatal("9% overhead accepted")
	}
}

func TestFig3aClaim(t *testing.T) {
	c := claimFor(t, "fig3a", "matches")
	good := tableWith("fig3a",
		[]string{"Function", "REAP", "FaaSnap", "SnapBPF", "SnapBPF (s)"},
		[]string{"json", "1.20", "1.05", "1.00", "0.1"},
		[]string{"bert", "1.50", "1.10", "1.00", "1.7"})
	if m, ok := c.Check(good); !ok {
		t.Fatalf("good fig3a rejected: %s", m)
	}
	bad := tableWith("fig3a",
		[]string{"Function", "REAP", "FaaSnap", "SnapBPF", "SnapBPF (s)"},
		[]string{"json", "0.60", "0.70", "1.00", "0.1"})
	if _, ok := c.Check(bad); ok {
		t.Fatal("SnapBPF-losing fig3a accepted")
	}
}

func TestFig3cClaim(t *testing.T) {
	c := claimFor(t, "fig3c", "6x")
	mk := func(r1, r2 string) *experiments.Table {
		return tableWith("fig3c",
			[]string{"Function", "Linux-NoRA", "Linux-RA", "REAP", "SnapBPF", "REAP/SnapBPF"},
			[]string{"bfs", "1", "1", "4", "1", r1},
			[]string{"bert", "1", "1", "8", "1.3", r2})
	}
	if _, ok := c.Check(mk("5.9x", "6.3x")); !ok {
		t.Fatal("~6x rejected")
	}
	if _, ok := c.Check(mk("1.1x", "1.3x")); ok {
		t.Fatal("no-dedup accepted")
	}
}

func TestFig4MinimalClaim(t *testing.T) {
	c := claimFor(t, "fig4", "minimally")
	good := tableWith("fig4",
		[]string{"Function", "Linux-RA", "PVPTEs", "SnapBPF"},
		[]string{"rnn", "1.00", "0.97", "0.51"},
		[]string{"bert", "1.00", "0.95", "0.55"})
	if m, ok := c.Check(good); !ok {
		t.Fatalf("minimal-PV rejected: %s", m)
	}
	bad := tableWith("fig4",
		[]string{"Function", "Linux-RA", "PVPTEs", "SnapBPF"},
		[]string{"rnn", "1.00", "0.40", "0.35"})
	if _, ok := c.Check(bad); ok {
		t.Fatal("rnn with huge PV benefit accepted")
	}
}

func TestCheckAllRunsEveryPresentClaim(t *testing.T) {
	tables := map[string]*experiments.Table{
		"fig3a": tableWith("fig3a",
			[]string{"Function", "REAP", "FaaSnap", "SnapBPF", "SnapBPF (s)"},
			[]string{"json", "1.2", "1.1", "1.00", "0.1"}),
		"fig4": tableWith("fig4",
			[]string{"Function", "Linux-RA", "PVPTEs", "SnapBPF"},
			[]string{"image", "1.00", "0.42", "0.33"}),
	}
	res := CheckAll(tables)
	// fig3a has one claim; fig4 has two.
	if len(res) != 3 {
		t.Fatalf("results = %d, want 3", len(res))
	}
	for _, r := range res {
		if !r.Holds {
			t.Fatalf("claim unexpectedly broken: %s (%s)", r.Claim.Statement, r.Measured)
		}
	}
}

func TestCheckAllSkipsMissingTables(t *testing.T) {
	res := CheckAll(map[string]*experiments.Table{})
	if len(res) != 0 {
		t.Fatalf("results for no tables: %v", res)
	}
}

func TestClaimsCoverHeadlineExperiments(t *testing.T) {
	covered := map[string]bool{}
	for _, c := range Claims() {
		covered[c.ExperimentID] = true
	}
	for _, want := range []string{"table1", "fig3a", "fig3b", "fig3c", "fig4", "overheads"} {
		if !covered[want] {
			t.Fatalf("no claim for %s", want)
		}
	}
}

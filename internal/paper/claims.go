// Package paper encodes the SnapBPF paper's quantitative claims and
// checks regenerated experiment tables against them. The reproduction
// targets *shapes* — who wins, by roughly what factor — so each claim
// is a band, not an exact number; the bands come straight from the
// paper's text and figures.
package paper

import (
	"fmt"
	"strconv"
	"strings"

	"snapbpf/internal/experiments"
)

// Claim is one checkable statement from the paper.
type Claim struct {
	// ExperimentID names the table the claim is checked against.
	ExperimentID string
	// Statement quotes or paraphrases the paper.
	Statement string
	// Check inspects the regenerated table and returns the measured
	// value plus whether the claim's band holds.
	Check func(t *experiments.Table) (measured string, ok bool)
}

// Result is a checked claim.
type Result struct {
	Claim    Claim
	Measured string
	Holds    bool
	Err      error
}

// cell parses a numeric cell, tolerating "x" and "%" suffixes.
func cell(s string) (float64, error) {
	s = strings.TrimSuffix(strings.TrimSuffix(strings.TrimSpace(s), "x"), "%")
	return strconv.ParseFloat(s, 64)
}

// column returns the index of the named column, or -1.
func column(t *experiments.Table, name string) int {
	for i, c := range t.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

// row returns the row whose first cell equals name.
func row(t *experiments.Table, name string) []string {
	for _, r := range t.Rows {
		if r[0] == name {
			return r
		}
	}
	return nil
}

// colMean averages a numeric column over all rows.
func colMean(t *experiments.Table, col int) (float64, error) {
	var sum float64
	var n int
	for _, r := range t.Rows {
		v, err := cell(r[col])
		if err != nil {
			continue
		}
		sum += v
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("no numeric cells in column %d", col)
	}
	return sum / float64(n), nil
}

// colMax returns the maximum of a numeric column.
func colMax(t *experiments.Table, col int) (float64, error) {
	best, found := 0.0, false
	for _, r := range t.Rows {
		v, err := cell(r[col])
		if err != nil {
			continue
		}
		if !found || v > best {
			best, found = v, true
		}
	}
	if !found {
		return 0, fmt.Errorf("no numeric cells in column %d", col)
	}
	return best, nil
}

// Claims returns every claim in paper order.
func Claims() []Claim {
	return []Claim{
		{
			ExperimentID: "table1",
			Statement:    "Table 1: SnapBPF is the only scheme with no on-disk WS serialization, with in-memory dedup AND stateless allocation filtering",
			Check: func(t *experiments.Table) (string, bool) {
				r := row(t, "SnapBPF")
				if r == nil {
					return "no SnapBPF row", false
				}
				ok := r[2] == "No" && r[3] == "Yes" && r[4] == "Yes"
				for _, other := range []string{"REAP", "Faast", "FaaSnap"} {
					o := row(t, other)
					if o == nil {
						return "missing " + other, false
					}
					if o[2] == "No" || o[4] == "Yes" {
						ok = false
					}
				}
				return fmt.Sprintf("SnapBPF row = %v", r[2:]), ok
			},
		},
		{
			ExperimentID: "fig3a",
			Statement:    "§4 Latency: SnapBPF 'matches and in some cases outperforms' FaaSnap and outperforms REAP for a single instance",
			Check: func(t *experiments.Table) (string, bool) {
				reapCol, fsCol := column(t, "REAP"), column(t, "FaaSnap")
				reap, err1 := colMean(t, reapCol)
				fs, err2 := colMean(t, fsCol)
				if err1 != nil || err2 != nil {
					return "unparseable", false
				}
				// Normalized to SnapBPF: both means >= ~1.
				return fmt.Sprintf("mean REAP=%.2fx, FaaSnap=%.2fx of SnapBPF", reap, fs),
					reap >= 1.0 && fs >= 0.95
			},
		},
		{
			ExperimentID: "fig3b",
			Statement:    "§4 Latency: for large working sets (bert), SnapBPF achieves ~8x lower E2E latency than REAP at 10 concurrent instances",
			Check: func(t *experiments.Table) (string, bool) {
				r := row(t, "bert")
				if r == nil {
					// Restricted suite: fall back to the best ratio.
					v, err := colMax(t, column(t, "REAP/SnapBPF"))
					if err != nil {
						return "no bert row", false
					}
					return fmt.Sprintf("max REAP/SnapBPF=%.1fx (bert not in suite)", v), v >= 4
				}
				v, err := cell(r[column(t, "REAP/SnapBPF")])
				if err != nil {
					return "unparseable", false
				}
				return fmt.Sprintf("bert REAP/SnapBPF = %.1fx", v), v >= 5 && v <= 14
			},
		},
		{
			ExperimentID: "fig3c",
			Statement:    "§4 Memory: SnapBPF reduces memory usage by up to 6x for large-WS functions (bfs, bert) at 10 concurrent instances",
			Check: func(t *experiments.Table) (string, bool) {
				v, err := colMax(t, column(t, "REAP/SnapBPF"))
				if err != nil {
					return "unparseable", false
				}
				return fmt.Sprintf("max memory reduction = %.1fx", v), v >= 4 && v <= 9
			},
		},
		{
			ExperimentID: "fig4",
			Statement:    "§4 Breakdown: PV PTE marking alone improves allocation-heavy functions (image) by more than 2x over Linux-RA",
			Check: func(t *experiments.Table) (string, bool) {
				r := row(t, "image")
				if r == nil {
					return "image not in suite", true // vacuous on restricted suites
				}
				v, err := cell(r[column(t, "PVPTEs")])
				if err != nil {
					return "unparseable", false
				}
				return fmt.Sprintf("image PVPTEs = %.2f of Linux-RA", v), v <= 0.5
			},
		},
		{
			ExperimentID: "fig4",
			Statement:    "§4 Breakdown: model-serving functions (rnn, bert) benefit only minimally from PV PTE marking",
			Check: func(t *experiments.Table) (string, bool) {
				checked, out := 0, []string{}
				ok := true
				for _, name := range []string{"rnn", "bert"} {
					r := row(t, name)
					if r == nil {
						continue
					}
					v, err := cell(r[column(t, "PVPTEs")])
					if err != nil {
						return "unparseable", false
					}
					checked++
					out = append(out, fmt.Sprintf("%s=%.2f", name, v))
					if v < 0.80 {
						ok = false
					}
				}
				if checked == 0 {
					return "rnn/bert not in suite", true
				}
				return strings.Join(out, " "), ok
			},
		},
		{
			ExperimentID: "overheads",
			Statement:    "§4 Overheads: loading the offsets into the kernel via the eBPF map is <1% of E2E latency on average (~1-2ms)",
			Check: func(t *experiments.Table) (string, bool) {
				pct, err := colMean(t, column(t, "Load/E2E"))
				if err != nil {
					return "unparseable", false
				}
				ms, err := colMean(t, column(t, "Load (ms)"))
				if err != nil {
					return "unparseable", false
				}
				return fmt.Sprintf("mean load = %.3fms, %.2f%% of E2E", ms, pct), pct < 1.0
			},
		},
	}
}

// CheckAll runs every claim whose experiment is present in tables
// (keyed by experiment ID).
func CheckAll(tables map[string]*experiments.Table) []Result {
	var out []Result
	for _, c := range Claims() {
		t, ok := tables[c.ExperimentID]
		if !ok {
			continue
		}
		measured, holds := c.Check(t)
		out = append(out, Result{Claim: c, Measured: measured, Holds: holds})
	}
	return out
}

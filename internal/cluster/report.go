package cluster

import (
	"sort"
	"time"

	"snapbpf/internal/check"
	"snapbpf/internal/faults"
	"snapbpf/internal/obs"
	"snapbpf/internal/store"
	"snapbpf/internal/units"
	"snapbpf/internal/workload"
)

// Invocation is the outcome of one dispatched request.
type Invocation struct {
	Seq    int // index into the merged arrival stream
	Tenant string
	Fn     string
	Class  workload.SLOClass

	// Rejected means admission control dropped the request; no other
	// outcome field is set.
	Rejected bool

	// Host is the index of the serving host.
	Host int

	// Warm means the request hit an idle warm sandbox (no restore).
	Warm bool

	// Arrived/Done are offsets from the start of the invocation phase.
	Arrived time.Duration
	Done    time.Duration

	// E2E is the serving latency: restore + preparation + execution
	// for a cold start, pure execution for a warm hit.
	E2E time.Duration

	// Digest is the checker's guest-memory digest for cold starts
	// under -check (zero otherwise).
	Digest uint64
}

// HostStats aggregates one host's view of the run.
type HostStats struct {
	Name string

	Cold, Warm int

	// SystemMemory is the host footprint at end of run, before the
	// final warm-pool teardown — parked sandboxes hold memory.
	SystemMemory units.ByteSize

	// DeviceBytes/DeviceRequests count invocation-phase storage
	// traffic (record-phase traffic excluded).
	DeviceBytes    int64
	DeviceRequests int64

	// Evictions counts page-cache reclaim events.
	Evictions int64

	// WarmEvicted counts warm sandboxes torn down by budget pressure
	// or idle timeout (end-of-run drain excluded).
	WarmEvicted int

	// Faults reports what this host's injector did (zero when the
	// host ran healthy).
	Faults faults.Report

	// Obs is the host's observability report, non-nil only when
	// Config.Obs asked for recording.
	Obs *obs.Report

	// CheckCounts is the host checker's event tally, non-nil only
	// when Config.Check was set.
	CheckCounts *check.Counts

	// Store is this host's chunk-cache traffic, non-nil only when
	// Config.Store selected a non-local tier.
	Store *store.CacheStats
}

// Result is the outcome of one cluster run.
type Result struct {
	// Invocations holds every arrival's outcome in arrival order.
	Invocations []*Invocation

	Admitted, Rejected int
	Cold, Warm         int

	// Hosts holds per-host statistics in host-index order.
	Hosts []HostStats

	// Digests maps each function (sorted-name order of Functions) to
	// the guest-memory digest its cold starts converged to, when
	// Config.Check was set.
	Digests map[string]uint64

	// Functions is the sorted list of function names the run served.
	Functions []string

	// StoreRemote is the region-shared remote's accounting, non-nil
	// only when Config.Store selected a non-local tier. DupRequests
	// and DupBytes are the cross-host dedup gap: chunks the region
	// fetched more than once because hosts do not share caches.
	StoreRemote *store.RemoteStats
}

// LatencySummary is an order-statistics summary of a latency set.
type LatencySummary struct {
	N             int
	P50, P95, P99 time.Duration
	Mean          time.Duration
}

// summarize computes nearest-rank percentiles over a copy of ds.
func summarize(ds []time.Duration) LatencySummary {
	s := LatencySummary{N: len(ds)}
	if s.N == 0 {
		return s
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	s.Mean = sum / time.Duration(s.N)
	rank := func(p float64) time.Duration {
		i := int(float64(s.N)*p+0.5) - 1 // nearest rank, 1-based
		if i < 0 {
			i = 0
		}
		if i >= s.N {
			i = s.N - 1
		}
		return sorted[i]
	}
	s.P50, s.P95, s.P99 = rank(0.50), rank(0.95), rank(0.99)
	return s
}

// filter selects completed invocations matching keep.
func (r *Result) filter(keep func(*Invocation) bool) []*Invocation {
	var out []*Invocation
	for _, inv := range r.Invocations {
		if !inv.Rejected && keep(inv) {
			out = append(out, inv)
		}
	}
	return out
}

func latencies(invs []*Invocation) []time.Duration {
	ds := make([]time.Duration, len(invs))
	for i, inv := range invs {
		ds[i] = inv.E2E
	}
	return ds
}

// Latency summarizes E2E over completed invocations matching keep
// (nil keeps all).
func (r *Result) Latency(keep func(*Invocation) bool) LatencySummary {
	if keep == nil {
		keep = func(*Invocation) bool { return true }
	}
	return summarize(latencies(r.filter(keep)))
}

// ColdLatency summarizes E2E over cold starts matching keep (nil
// keeps all cold starts).
func (r *Result) ColdLatency(keep func(*Invocation) bool) LatencySummary {
	return r.Latency(func(inv *Invocation) bool {
		return !inv.Warm && (keep == nil || keep(inv))
	})
}

// Classes returns the sorted distinct SLO classes among completed
// invocations.
func (r *Result) Classes() []workload.SLOClass {
	seen := make(map[workload.SLOClass]bool)
	var out []workload.SLOClass
	for _, inv := range r.Invocations {
		if !inv.Rejected && !seen[inv.Class] {
			seen[inv.Class] = true
			out = append(out, inv.Class)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Tenants returns the sorted distinct tenants across all arrivals.
func (r *Result) Tenants() []string {
	seen := make(map[string]bool)
	var out []string
	for _, inv := range r.Invocations {
		if !seen[inv.Tenant] {
			seen[inv.Tenant] = true
			out = append(out, inv.Tenant)
		}
	}
	sort.Strings(out)
	return out
}

// Fairness is Jain's fairness index over per-tenant mean latencies:
// (Σx)² / (n·Σx²), 1.0 when every tenant sees the same mean, 1/n in
// the worst case. Tenants with no completed invocations are skipped.
func (r *Result) Fairness() float64 {
	var means []float64
	for _, tn := range r.Tenants() {
		s := r.Latency(func(inv *Invocation) bool { return inv.Tenant == tn })
		if s.N > 0 {
			means = append(means, s.Mean.Seconds())
		}
	}
	if len(means) == 0 {
		return 1
	}
	var sum, sq float64
	for _, x := range means {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(means)) * sq)
}

// DeviceBytes totals invocation-phase storage reads across hosts.
func (r *Result) DeviceBytes() int64 {
	var n int64
	for _, h := range r.Hosts {
		n += h.DeviceBytes
	}
	return n
}

package cluster

import (
	"fmt"
	"math"

	"snapbpf/internal/sim"
)

// Admission is a token-bucket admission controller at the front end:
// invocations are admitted while tokens remain and rejected outright
// otherwise (no queueing — rejected requests count toward the
// reported rejection rate). The bucket refills continuously at
// RatePerSec up to Burst, measured in virtual time.
type Admission struct {
	RatePerSec float64
	Burst      int
}

// Validate checks controller sanity.
func (a Admission) Validate() error {
	if !(a.RatePerSec > 0) || math.IsInf(a.RatePerSec, 0) {
		return fmt.Errorf("cluster: admission rate must be positive and finite, got %v", a.RatePerSec)
	}
	if a.Burst <= 0 {
		return fmt.Errorf("cluster: admission burst must be positive, got %d", a.Burst)
	}
	return nil
}

// bucket is the runtime state of one token bucket on the virtual
// clock. Arithmetic is plain float64 on durations derived from
// sim.Time differences, so refill is a pure function of the arrival
// timestamps — deterministic across runs and worker schedules.
type bucket struct {
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   sim.Time
}

func newBucket(a Admission, now sim.Time) *bucket {
	return &bucket{rate: a.RatePerSec, burst: float64(a.Burst), tokens: float64(a.Burst), last: now}
}

// allow consumes one token if available, refilling for the elapsed
// virtual time first.
func (b *bucket) allow(now sim.Time) bool {
	if elapsed := now.Sub(b.last); elapsed > 0 {
		b.tokens = math.Min(b.burst, b.tokens+elapsed.Seconds()*b.rate)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

package cluster_test

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"snapbpf/internal/cluster"
	"snapbpf/internal/core"
	"snapbpf/internal/faults"
	"snapbpf/internal/prefetch"
	"snapbpf/internal/workload"
)

func snapBPF() cluster.Scheme {
	return cluster.Scheme{Name: "SnapBPF", New: func() prefetch.Prefetcher { return core.New() }}
}

// burst returns n back-to-back arrivals of fn at t=0.
func burst(n int, fn string) []workload.Arrival {
	as := make([]workload.Arrival, n)
	for i := range as {
		as[i] = workload.Arrival{Tenant: "t", Seq: i, Fn: fn, Class: workload.ClassStandard}
	}
	return as
}

// spaced returns n arrivals of fn separated by gap.
func spaced(n int, fn string, gap time.Duration) []workload.Arrival {
	as := make([]workload.Arrival, n)
	for i := range as {
		as[i] = workload.Arrival{At: time.Duration(i) * gap, Tenant: "t", Seq: i,
			Fn: fn, Class: workload.ClassStandard}
	}
	return as
}

// mix interleaves per-fn spaced arrivals into one sorted stream.
func mix(n int, gap time.Duration, fns ...string) []workload.Arrival {
	var as []workload.Arrival
	for i := 0; i < n; i++ {
		as = append(as, workload.Arrival{At: time.Duration(i) * gap, Tenant: "t", Seq: i,
			Fn: fns[i%len(fns)], Class: workload.ClassStandard})
	}
	return as
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		cfg  cluster.Config
		want string
	}{
		{"no hosts", cluster.Config{Scheme: snapBPF()}, "host count"},
		{"no scheme", cluster.Config{Hosts: 1}, "no scheme"},
		{"bad names", cluster.Config{Hosts: 2, HostNames: []string{"only-one"}, Scheme: snapBPF()}, "host names"},
		{"bad router", cluster.Config{Hosts: 1, Scheme: snapBPF(), Router: "random"}, "unknown router"},
		{"bad admission", cluster.Config{Hosts: 1, Scheme: snapBPF(),
			Admission: &cluster.Admission{RatePerSec: 0, Burst: 1}}, "admission rate"},
		{"bad burst", cluster.Config{Hosts: 1, Scheme: snapBPF(),
			Admission: &cluster.Admission{RatePerSec: 1, Burst: 0}}, "admission burst"},
		{"bad budget", cluster.Config{Hosts: 1, Scheme: snapBPF(),
			KeepAlive: cluster.KeepAlive{Budget: -1}}, "keep-alive budget"},
		{"bad fault host", cluster.Config{Hosts: 2, Scheme: snapBPF(),
			Faults: planPtr(faults.Light(1)), FaultHosts: []int{2}}, "fault host index"},
		{"unknown fn", cluster.Config{Hosts: 1, Scheme: snapBPF(),
			Arrivals: burst(1, "no-such-fn")}, "no-such-fn"},
	}
	for _, c := range cases {
		if _, err := cluster.Run(c.cfg); err == nil {
			t.Errorf("%s: expected error containing %q, got nil", c.name, c.want)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
}

func TestParseRouter(t *testing.T) {
	for _, kind := range cluster.Routers() {
		got, err := cluster.ParseRouter(string(kind))
		if err != nil || got != kind {
			t.Errorf("ParseRouter(%q) = %q, %v", kind, got, err)
		}
	}
	if _, err := cluster.ParseRouter("fifo"); err == nil {
		t.Error("ParseRouter accepted an unknown policy")
	}
}

// Round-robin must cycle host indices in arrival order.
func TestRoundRobinPlacement(t *testing.T) {
	res, err := cluster.Run(cluster.Config{
		Hosts:    3,
		Scheme:   snapBPF(),
		Router:   cluster.RouterRoundRobin,
		Arrivals: spaced(6, "json", 500*time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, inv := range res.Invocations {
		if want := i % 3; inv.Host != want {
			t.Errorf("invocation %d on host %d, want %d", i, inv.Host, want)
		}
	}
}

// Snapshot-affinity must concentrate each function on one host when
// invocations never overlap (no load-based fallback).
func TestAffinityConcentrates(t *testing.T) {
	res, err := cluster.Run(cluster.Config{
		Hosts:    4,
		Scheme:   snapBPF(),
		Router:   cluster.RouterAffinity,
		Arrivals: mix(8, time.Second, "json", "pyaes"),
	})
	if err != nil {
		t.Fatal(err)
	}
	perFn := make(map[string]map[int]bool)
	for _, inv := range res.Invocations {
		if perFn[inv.Fn] == nil {
			perFn[inv.Fn] = make(map[int]bool)
		}
		perFn[inv.Fn][inv.Host] = true
	}
	for _, fn := range res.Functions {
		if n := len(perFn[fn]); n != 1 {
			t.Errorf("affinity spread %s across %d hosts, want 1", fn, n)
		}
	}
}

// Least-loaded must not stack overlapping invocations on one host.
func TestLeastLoadedSpreads(t *testing.T) {
	res, err := cluster.Run(cluster.Config{
		Hosts:    2,
		Scheme:   snapBPF(),
		Router:   cluster.RouterLeastLoaded,
		Arrivals: burst(2, "json"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Invocations[0].Host == res.Invocations[1].Host {
		t.Errorf("two overlapping invocations both routed to host %d", res.Invocations[0].Host)
	}
}

// Keep-alive must produce warm hits; warm latency is the function's
// pure compute time, strictly below the cold latency.
func TestWarmPoolHits(t *testing.T) {
	res, err := cluster.Run(cluster.Config{
		Hosts:     1,
		Scheme:    snapBPF(),
		KeepAlive: cluster.KeepAlive{Budget: 1},
		Arrivals:  spaced(4, "json", time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cold != 1 || res.Warm != 3 {
		t.Fatalf("cold=%d warm=%d, want 1 cold + 3 warm", res.Cold, res.Warm)
	}
	coldE2E := res.Invocations[0].E2E
	for _, inv := range res.Invocations[1:] {
		if !inv.Warm {
			t.Errorf("invocation %d not warm", inv.Seq)
		}
		if inv.E2E >= coldE2E {
			t.Errorf("warm E2E %v not below cold %v", inv.E2E, coldE2E)
		}
	}
}

// A budget of zero disables keep-alive: every start is cold.
func TestZeroBudgetAllCold(t *testing.T) {
	res, err := cluster.Run(cluster.Config{
		Hosts:    1,
		Scheme:   snapBPF(),
		Arrivals: spaced(3, "json", time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Warm != 0 || res.Cold != 3 {
		t.Errorf("cold=%d warm=%d, want all 3 cold", res.Cold, res.Warm)
	}
}

// The budget caps the pool: distinct functions evict each other's
// idle sandboxes, and the eviction counter reports it.
func TestWarmPoolBudgetEviction(t *testing.T) {
	res, err := cluster.Run(cluster.Config{
		Hosts:     1,
		Scheme:    snapBPF(),
		KeepAlive: cluster.KeepAlive{Budget: 1},
		Arrivals:  mix(4, time.Second, "json", "pyaes"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Warm != 0 {
		t.Errorf("warm=%d, want 0: alternating functions under budget 1 never rehit", res.Warm)
	}
	if got := res.Hosts[0].WarmEvicted; got != 3 {
		t.Errorf("WarmEvicted=%d, want 3 (last sandbox drains at end of run)", got)
	}
}

// An idle timeout must expire a parked sandbox, forcing the next
// invocation cold again and autoscaling the pool down.
func TestIdleTimeout(t *testing.T) {
	res, err := cluster.Run(cluster.Config{
		Hosts:     1,
		Scheme:    snapBPF(),
		KeepAlive: cluster.KeepAlive{Budget: 2, IdleTimeout: 2 * time.Second},
		Arrivals: []workload.Arrival{
			{At: 0, Tenant: "t", Seq: 0, Fn: "json"},
			{At: time.Second, Tenant: "t", Seq: 1, Fn: "json"},      // warm rehit
			{At: 10 * time.Second, Tenant: "t", Seq: 2, Fn: "json"}, // after expiry
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cold != 2 || res.Warm != 1 {
		t.Fatalf("cold=%d warm=%d, want 2 cold + 1 warm", res.Cold, res.Warm)
	}
	if res.Invocations[2].Warm {
		t.Error("invocation after idle timeout served warm")
	}
	if res.Hosts[0].WarmEvicted == 0 {
		t.Error("idle timeout evicted nothing")
	}
}

// The token bucket must reject the overflow of a burst and admit
// trickle traffic untouched.
func TestAdmissionControl(t *testing.T) {
	res, err := cluster.Run(cluster.Config{
		Hosts:     2,
		Scheme:    snapBPF(),
		Admission: &cluster.Admission{RatePerSec: 1, Burst: 2},
		Arrivals:  burst(5, "json"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted != 2 || res.Rejected != 3 {
		t.Fatalf("admitted=%d rejected=%d, want 2/3: burst 2 at t=0 with no refill", res.Admitted, res.Rejected)
	}
	trickle, err := cluster.Run(cluster.Config{
		Hosts:     2,
		Scheme:    snapBPF(),
		Admission: &cluster.Admission{RatePerSec: 1, Burst: 2},
		Arrivals:  spaced(4, "json", 2*time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	if trickle.Rejected != 0 {
		t.Errorf("trickle under the bucket rate rejected %d", trickle.Rejected)
	}
}

func planPtr(p faults.Plan) *faults.Plan { return &p }

// Conservation: across every router and fault preset, arrivals ==
// admitted + rejected, admitted == cold + warm == completed, per-host
// tallies agree with the stream, fault injection stays confined to
// the configured hosts, and the per-host checkers see zero invariant
// violations (a violation fails Run).
func TestConservationAcrossRoutersAndFaults(t *testing.T) {
	presets := []struct {
		name  string
		plan  *faults.Plan
		hosts []int
	}{
		{"healthy", nil, nil},
		{"light-subset", planPtr(faults.Light(3)), []int{0}},
		{"heavy-subset", planPtr(faults.Heavy(4)), []int{1, 2}},
	}
	arrivals := mix(9, 300*time.Millisecond, "json", "pyaes", "json")
	for _, router := range cluster.Routers() {
		for _, preset := range presets {
			t.Run(string(router)+"/"+preset.name, func(t *testing.T) {
				res, err := cluster.Run(cluster.Config{
					Hosts:      3,
					Scheme:     snapBPF(),
					Router:     router,
					KeepAlive:  cluster.KeepAlive{Budget: 1},
					Admission:  &cluster.Admission{RatePerSec: 5, Burst: 3},
					Arrivals:   arrivals,
					Faults:     preset.plan,
					FaultHosts: preset.hosts,
					Check:      true,
				})
				if err != nil {
					t.Fatal(err)
				}
				if got := res.Admitted + res.Rejected; got != len(arrivals) {
					t.Errorf("admitted %d + rejected %d != %d arrivals", res.Admitted, res.Rejected, got)
				}
				if got := res.Cold + res.Warm; got != res.Admitted {
					t.Errorf("cold %d + warm %d != admitted %d", res.Cold, res.Warm, res.Admitted)
				}
				var completed, hostCold, hostWarm int
				for _, inv := range res.Invocations {
					if inv.Rejected {
						if inv.Host != -1 {
							t.Errorf("rejected invocation %d has host %d", inv.Seq, inv.Host)
						}
						continue
					}
					completed++
					if inv.Host < 0 || inv.Host >= 3 {
						t.Errorf("invocation %d on host %d out of range", inv.Seq, inv.Host)
					}
					if inv.E2E <= 0 || inv.Done < inv.Arrived {
						t.Errorf("invocation %d has impossible timing E2E=%v arrived=%v done=%v",
							inv.Seq, inv.E2E, inv.Arrived, inv.Done)
					}
				}
				if completed != res.Admitted {
					t.Errorf("completed %d != admitted %d", completed, res.Admitted)
				}
				for hi, hs := range res.Hosts {
					hostCold += hs.Cold
					hostWarm += hs.Warm
					faulty := false
					for _, f := range preset.hosts {
						if f == hi {
							faulty = true
						}
					}
					if !faulty && hs.Faults.Injected() != 0 {
						t.Errorf("healthy host %d reports %d injected faults", hi, hs.Faults.Injected())
					}
					if hs.CheckCounts == nil {
						t.Errorf("host %d missing check counts under -check", hi)
					}
				}
				if hostCold != res.Cold || hostWarm != res.Warm {
					t.Errorf("per-host cold/warm %d/%d != totals %d/%d", hostCold, hostWarm, res.Cold, res.Warm)
				}
				if len(res.Digests) == 0 {
					t.Error("no digests recorded under -check")
				}
			})
		}
	}
}

// The whole run is a pure function of its Config: byte-identical
// outcome streams on every rerun.
func TestRunDeterministic(t *testing.T) {
	cfg := cluster.Config{
		Hosts:     3,
		Scheme:    snapBPF(),
		Router:    cluster.RouterAffinity,
		KeepAlive: cluster.KeepAlive{Budget: 2, IdleTimeout: 3 * time.Second},
		Admission: &cluster.Admission{RatePerSec: 4, Burst: 2},
		Arrivals:  mix(10, 400*time.Millisecond, "json", "pyaes"),
		Check:     true,
	}
	one, err := cluster.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	two, err := cluster.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(one.Invocations, two.Invocations) {
		t.Error("reruns produced different invocation streams")
	}
	if !reflect.DeepEqual(one.Digests, two.Digests) {
		t.Error("reruns produced different digests")
	}
}

// Host names are labels: renaming hosts must not change any outcome.
func TestHostNamesAreLabels(t *testing.T) {
	base := cluster.Config{
		Hosts:     3,
		Scheme:    snapBPF(),
		Router:    cluster.RouterAffinity,
		KeepAlive: cluster.KeepAlive{Budget: 1},
		Arrivals:  mix(6, 500*time.Millisecond, "json", "pyaes"),
		Check:     true,
	}
	want, err := cluster.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	renamed := base
	renamed.HostNames = []string{"zebra", "alpha", "mango"}
	got, err := cluster.Run(renamed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Invocations, got.Invocations) {
		t.Error("renaming hosts changed invocation outcomes")
	}
}

// Latency/fairness summaries on a hand-built result.
func TestReportSummaries(t *testing.T) {
	res := &cluster.Result{}
	for i, e2e := range []time.Duration{10, 20, 30, 40, 100} {
		tn := "a"
		if i >= 3 {
			tn = "b"
		}
		res.Invocations = append(res.Invocations, &cluster.Invocation{
			Seq: i, Tenant: tn, Class: workload.ClassStandard, E2E: e2e * time.Millisecond,
		})
	}
	res.Invocations = append(res.Invocations, &cluster.Invocation{Seq: 5, Tenant: "b", Rejected: true})
	all := res.Latency(nil)
	if all.N != 5 {
		t.Fatalf("N=%d, want 5 (rejected excluded)", all.N)
	}
	if all.P50 != 30*time.Millisecond || all.P99 != 100*time.Millisecond {
		t.Errorf("p50=%v p99=%v, want 30ms/100ms", all.P50, all.P99)
	}
	if f := res.Fairness(); f <= 0.5 || f >= 1 {
		t.Errorf("fairness=%v, want in (0.5, 1): tenant means differ", f)
	}
	if got := res.Tenants(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("Tenants=%v", got)
	}
	empty := &cluster.Result{}
	if s := empty.Latency(nil); s.N != 0 || s.P99 != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	if f := empty.Fairness(); f != 1 {
		t.Errorf("empty fairness = %v, want 1", f)
	}
}

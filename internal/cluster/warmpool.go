package cluster

import (
	"fmt"
	"time"

	"snapbpf/internal/sim"
	"snapbpf/internal/vmm"
)

// KeepAlive configures the per-host warm sandbox pool.
type KeepAlive struct {
	// Budget caps warm sandboxes kept per host (idle + serving).
	// 0 disables keep-alive entirely: every completed sandbox is torn
	// down and every invocation is a cold start.
	Budget int

	// IdleTimeout evicts a warm sandbox idle for this long; <= 0
	// keeps idle sandboxes until the run ends or the budget forces
	// them out. Eviction is a scheduled virtual-time event, so the
	// pool autoscales down after a traffic burst passes.
	IdleTimeout time.Duration
}

// Validate checks keep-alive sanity.
func (k KeepAlive) Validate() error {
	if k.Budget < 0 {
		return fmt.Errorf("cluster: keep-alive budget must be >= 0, got %d", k.Budget)
	}
	return nil
}

// warmVM is one parked (or currently serving) warm sandbox.
type warmVM struct {
	vm     *vmm.MicroVM
	fn     string
	parked sim.Time // when it last became idle
	epoch  int      // bumped per park; stale idle timers check it
	idle   bool
}

// warmPool holds one host's warm sandboxes. idle is in park order
// (oldest first); take scans newest-first (MRU keeps the hottest
// sandbox hot), budget eviction removes the oldest idle entry.
type warmPool struct {
	idle    []*warmVM
	serving int
}

// total counts all live warm sandboxes, idle and serving.
func (w *warmPool) total() int { return len(w.idle) + w.serving }

// hasIdle reports whether an idle warm sandbox for fn exists.
func (w *warmPool) hasIdle(fn string) bool {
	for _, v := range w.idle {
		if v.fn == fn {
			return true
		}
	}
	return false
}

// take removes and returns the most recently parked idle sandbox for
// fn, or nil. The caller owns it until release or shutdown.
func (w *warmPool) take(fn string) *warmVM {
	for i := len(w.idle) - 1; i >= 0; i-- {
		if v := w.idle[i]; v.fn == fn {
			w.idle = append(w.idle[:i], w.idle[i+1:]...)
			v.idle = false
			v.epoch++ // invalidate any pending idle timer
			w.serving++
			return v
		}
	}
	return nil
}

// park adds v as idle (newest).
func (w *warmPool) park(v *warmVM, now sim.Time) {
	v.idle = true
	v.parked = now
	v.epoch++
	w.idle = append(w.idle, v)
}

// evictOldestIdle removes and returns the oldest idle sandbox, or nil
// if every budgeted sandbox is busy serving.
func (w *warmPool) evictOldestIdle() *warmVM {
	if len(w.idle) == 0 {
		return nil
	}
	v := w.idle[0]
	w.idle = w.idle[1:]
	v.idle = false
	v.epoch++
	return v
}

// remove drops v from the idle list (idle-timeout eviction). Returns
// false if v is no longer idle.
func (w *warmPool) remove(v *warmVM) bool {
	for i, e := range w.idle {
		if e == v {
			w.idle = append(w.idle[:i], w.idle[i+1:]...)
			v.idle = false
			return true
		}
	}
	return false
}

// drain empties the pool at end of run, returning all idle sandboxes
// oldest-first for teardown.
func (w *warmPool) drain() []*warmVM {
	out := w.idle
	w.idle = nil
	for _, v := range out {
		v.idle = false
		v.epoch++
	}
	return out
}

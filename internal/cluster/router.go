package cluster

import "fmt"

// RouterKind names a front-end routing policy.
type RouterKind string

// Routing policies.
const (
	// RouterRoundRobin cycles through hosts in index order.
	RouterRoundRobin RouterKind = "roundrobin"
	// RouterLeastLoaded picks the host with the fewest in-flight
	// invocations (lowest index on ties).
	RouterLeastLoaded RouterKind = "leastloaded"
	// RouterAffinity is snapshot-affinity routing: prefer a host with
	// an idle warm sandbox for the function; otherwise the host whose
	// page cache holds the most of the function's snapshot file, so
	// the paper's page-cache dedup pays across requests; otherwise
	// fall back to least-loaded.
	RouterAffinity RouterKind = "affinity"
)

// Routers lists every policy in presentation order.
func Routers() []RouterKind {
	return []RouterKind{RouterRoundRobin, RouterLeastLoaded, RouterAffinity}
}

// ParseRouter maps a CLI string to a RouterKind.
func ParseRouter(s string) (RouterKind, error) {
	switch RouterKind(s) {
	case RouterRoundRobin, RouterLeastLoaded, RouterAffinity:
		return RouterKind(s), nil
	}
	return "", fmt.Errorf("cluster: unknown router %q (want roundrobin, leastloaded, or affinity)", s)
}

// router picks a host index for an invocation of fn. Implementations
// must be deterministic: ties break toward the lowest host index.
type router interface {
	pick(hosts []*host, fn string) int
}

func newRouter(kind RouterKind) (router, error) {
	switch kind {
	case RouterRoundRobin:
		return &roundRobin{}, nil
	case RouterLeastLoaded:
		return leastLoaded{}, nil
	case RouterAffinity:
		return affinity{}, nil
	}
	return nil, fmt.Errorf("cluster: unknown router %q", kind)
}

type roundRobin struct{ next int }

func (r *roundRobin) pick(hosts []*host, fn string) int {
	i := r.next % len(hosts)
	r.next++
	return i
}

type leastLoaded struct{}

func (leastLoaded) pick(hosts []*host, fn string) int {
	best := 0
	for i := 1; i < len(hosts); i++ {
		if hosts[i].active < hosts[best].active {
			best = i
		}
	}
	return best
}

type affinity struct{}

func (affinity) pick(hosts []*host, fn string) int {
	// A parked warm sandbox is the strongest affinity signal: memory
	// is already populated, no restore needed.
	best, bestLoad := -1, 0
	for i, h := range hosts {
		if h.pool.hasIdle(fn) && (best < 0 || h.active < bestLoad) {
			best, bestLoad = i, h.active
		}
	}
	if best >= 0 {
		return best
	}
	// Next best: the host whose page cache holds the most of the
	// function's snapshot file. Strict > keeps ties on the lowest
	// index; among equal residency the less loaded host wins.
	var bestRes int64
	for i, h := range hosts {
		res := h.fns[fn].inode.ResidentPages()
		if res == 0 {
			continue
		}
		switch {
		case best < 0 || res > bestRes:
			best, bestRes, bestLoad = i, res, h.active
		case res == bestRes && h.active < bestLoad:
			best, bestLoad = i, h.active
		}
	}
	if best >= 0 {
		return best
	}
	return leastLoaded{}.pick(hosts, fn)
}

// Package cluster is the deterministic multi-host region simulator:
// N hosts, each wrapping the unchanged single-host stack (block
// device, page cache, memory manager, KVM, prefetch scheme), all
// advancing under one shared sim clock. A front end dispatches a
// seeded multi-tenant arrival stream through a pluggable router,
// token-bucket admission control, and per-host warm sandbox pools —
// the policy half ("How Low Can You Go?", Tan et al.) layered on the
// paper's calibrated restore mechanism, so routing, keep-alive, and
// admission can be evaluated together with the snapshot prefetcher
// rather than in isolation.
//
// Determinism contract: a Run is a pure function of its Config. All
// hosts share one engine, so event order is the engine's FIFO
// tie-break; routers break ties toward the lowest host index; every
// report iterates hosts in index order and groups by sorted keys.
package cluster

import (
	"fmt"
	"sort"
	"time"

	"snapbpf/internal/blockdev"
	"snapbpf/internal/check"
	"snapbpf/internal/faults"
	"snapbpf/internal/obs"
	"snapbpf/internal/pagecache"
	"snapbpf/internal/prefetch"
	"snapbpf/internal/sim"
	"snapbpf/internal/snapshot"
	"snapbpf/internal/store"
	"snapbpf/internal/units"
	"snapbpf/internal/vmm"
	"snapbpf/internal/workload"
)

// Scheme is a named prefetcher factory, mirroring the experiments
// harness's type (redeclared here so cluster does not import the
// harness that drives it).
type Scheme struct {
	Name string
	New  func() prefetch.Prefetcher
}

// Config describes one cluster run.
type Config struct {
	// Hosts is the region size. HostNames optionally labels the hosts
	// (defaults to host0..hostN-1); names are labels only — behaviour
	// depends solely on host index.
	Hosts     int
	HostNames []string

	// Device selects every host's storage model; zero value means the
	// paper's Micron 5300 SATA SSD.
	Device blockdev.Params

	// Scheme is the prefetch scheme every host runs.
	Scheme Scheme

	// Router selects the front-end routing policy.
	Router RouterKind

	// Admission, when non-nil, arms token-bucket admission control.
	Admission *Admission

	// KeepAlive configures the per-host warm sandbox pools.
	KeepAlive KeepAlive

	// Spec generates the arrival stream; alternatively Arrivals
	// supplies one directly (then Spec is ignored).
	Spec     workload.ClusterSpec
	Arrivals []workload.Arrival

	// Functions resolves function names in the arrival stream. Names
	// not found here fall back to the built-in suite.
	Functions []workload.Function

	// CacheLimitPages bounds each host's page cache during the
	// invocation phase (0 = unlimited).
	CacheLimitPages int64

	// Faults, when non-nil and enabled, injects storage faults on the
	// hosts listed in FaultHosts (nil = every host). Each faulty host
	// derives its own injector seed from the plan seed and its index.
	Faults     *faults.Plan
	FaultHosts []int

	// Check arms one invariant checker per host; Run fails if any
	// host's invariants break, and cold-start guest digests must
	// converge per function across all hosts.
	Check bool

	// Obs arms one observability recorder per host; reports land in
	// Result.Hosts in host-index order.
	Obs *obs.Config

	// Store, when non-nil with a non-local tier, places every snapshot
	// in one region-shared remote store: each host runs its own chunk
	// cache (warm or cold per Store.Tier), and the shared remote's
	// duplicate-request accounting exposes cross-host dedup — chunks
	// the region fetched more than once because hosts do not share
	// caches.
	Store *store.Setup
}

// hostFn is one (host, function) serving context: the prefetcher and
// artifacts built during that host's record phase.
type hostFn struct {
	fn       workload.Function
	pf       prefetch.Prefetcher
	env      *prefetch.Env
	img      *snapshot.MemoryImage
	inode    *pagecache.Inode
	bind     *store.Binding // nil when the snapshot is on local SSD
	warmExec time.Duration  // pure compute time of one invocation
}

// host is one machine of the region.
type host struct {
	idx   int
	name  string
	h     *vmm.Host
	inj   *faults.Injector
	chk   *check.Checker
	rec   *obs.Recorder
	cache *store.HostCache // nil when the snapshot is on local SSD
	fns   map[string]*hostFn
	pool  warmPool

	active      int // in-flight invocations (router load signal)
	cold, warm  int
	warmEvicted int
}

// simHead returns the host's engine-event observer head: the recorder
// when armed (it forwards to the checker), else the checker.
func (h *host) simHead() sim.Observer {
	if h.rec != nil {
		return h.rec
	}
	if h.chk != nil {
		return h.chk
	}
	return nil
}

// multiSimObserver fans engine events out to every host's observer
// chain: the engine has a single observer slot, but each host's
// checker watches clock monotonicity independently.
type multiSimObserver []sim.Observer

func (m multiSimObserver) EventScheduled(at sim.Time) {
	for _, o := range m {
		if o != nil {
			o.EventScheduled(at)
		}
	}
}

func (m multiSimObserver) ClockAdvanced(now sim.Time) {
	for _, o := range m {
		if o != nil {
			o.ClockAdvanced(now)
		}
	}
}

// runState is the live dispatch state shared by the front end and the
// serving procs; everything runs on one engine, so access is already
// serialized.
type runState struct {
	cfg    Config
	eng    *sim.Engine
	hosts  []*host
	rt     router
	bkt    *bucket
	start  sim.Time
	res    *Result
	errVal error
	errSeq int
}

func (st *runState) fail(seq int, err error) {
	if st.errVal == nil {
		st.errVal, st.errSeq = err, seq
	}
}

func validate(cfg *Config) error {
	if cfg.Hosts <= 0 {
		return fmt.Errorf("cluster: host count must be positive, got %d", cfg.Hosts)
	}
	if len(cfg.HostNames) != 0 && len(cfg.HostNames) != cfg.Hosts {
		return fmt.Errorf("cluster: %d host names for %d hosts", len(cfg.HostNames), cfg.Hosts)
	}
	if cfg.Scheme.New == nil {
		return fmt.Errorf("cluster: no scheme configured")
	}
	if cfg.Device.Name == "" {
		cfg.Device = blockdev.MicronSATA5300()
	}
	if cfg.Router == "" {
		cfg.Router = RouterRoundRobin
	}
	if _, err := ParseRouter(string(cfg.Router)); err != nil {
		return err
	}
	if cfg.Admission != nil {
		if err := cfg.Admission.Validate(); err != nil {
			return err
		}
	}
	if err := cfg.KeepAlive.Validate(); err != nil {
		return err
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return err
		}
		for _, i := range cfg.FaultHosts {
			if i < 0 || i >= cfg.Hosts {
				return fmt.Errorf("cluster: fault host index %d out of range [0,%d)", i, cfg.Hosts)
			}
		}
	}
	return nil
}

// hostPlan returns the fault plan for host idx, or nil for a healthy
// host. Every faulty host gets its own derived seed so injections are
// independent streams but still a pure function of (plan, idx).
func hostPlan(cfg *Config, idx int) *faults.Plan {
	if cfg.Faults == nil || !cfg.Faults.Enabled() {
		return nil
	}
	if cfg.FaultHosts != nil {
		found := false
		for _, i := range cfg.FaultHosts {
			if i == idx {
				found = true
				break
			}
		}
		if !found {
			return nil
		}
	}
	p := *cfg.Faults
	p.Seed = p.Seed + int64(idx)*1000003
	return &p
}

// Run executes one cluster simulation.
func Run(cfg Config) (*Result, error) {
	if err := validate(&cfg); err != nil {
		return nil, err
	}
	arrivals := cfg.Arrivals
	if arrivals == nil {
		var err error
		if arrivals, err = cfg.Spec.Arrivals(); err != nil {
			return nil, err
		}
	}

	// Resolve every function the stream references, sorted by name.
	fnByName := make(map[string]workload.Function, len(cfg.Functions))
	for _, f := range cfg.Functions {
		fnByName[f.Name] = f
	}
	seen := make(map[string]bool)
	var fnNames []string
	for _, a := range arrivals {
		if !seen[a.Fn] {
			seen[a.Fn] = true
			fnNames = append(fnNames, a.Fn)
		}
	}
	sort.Strings(fnNames)
	for _, name := range fnNames {
		if _, ok := fnByName[name]; ok {
			continue
		}
		f, err := workload.ByName(name)
		if err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
		fnByName[name] = f
	}

	// --- Build the region: N hosts on one engine ---
	eng := sim.NewEngine()
	hosts := make([]*host, cfg.Hosts)
	var remote *store.Remote
	if cfg.Store != nil && cfg.Store.Tier != store.TierLocal {
		// One remote per region: per-chunk duplicate accounting across
		// hosts is exactly the cross-host dedup the report surfaces.
		remote = store.NewRemote(cfg.Store.Params)
	}
	var simHeads []sim.Observer
	for i := range hosts {
		name := fmt.Sprintf("host%d", i)
		if len(cfg.HostNames) > 0 {
			name = cfg.HostNames[i]
		}
		hv := vmm.NewHostOnEngine(eng, cfg.Device)
		ho := &host{idx: i, name: name, h: hv, fns: make(map[string]*hostFn, len(fnNames))}
		if p := hostPlan(&cfg, i); p != nil {
			ho.inj = faults.NewInjector(*p)
		}
		hv.Dev.SetFaults(ho.inj)
		if cfg.Check {
			ho.chk = check.New(hv, ho.inj)
		}
		if cfg.Obs.Enabled() {
			var next obs.Chain
			if ho.chk != nil {
				c := ho.chk
				next = obs.Chain{Sim: c, Dev: c, Cache: c, MM: c, KVM: c, Prefetch: c, Store: c}
			}
			ho.rec = obs.Attach(hv, *cfg.Obs, next)
		}
		if remote != nil {
			ho.cache = store.NewHostCache(eng, remote, ho.inj)
			switch {
			case ho.rec != nil:
				ho.cache.SetObserver(ho.rec)
			case ho.chk != nil:
				ho.cache.SetObserver(ho.chk)
			}
			if ho.chk != nil {
				ho.chk.AttachStore(ho.cache)
			}
		}
		for _, fname := range fnNames {
			fn := fnByName[fname]
			pf := cfg.Scheme.New()
			img := vmm.BuildImage(fn, pf.RestoreConfig(0).ZeroOnFree)
			inode := hv.RegisterSnapshot(name+"/"+fn.Name+".snapmem", img)
			if ho.chk != nil {
				ho.chk.RegisterFileTags(inode, img.PageTags)
			}
			env := &prefetch.Env{
				Host:        hv,
				Fn:          fn,
				Image:       img,
				SnapInode:   inode,
				RecordTrace: fn.GenTrace(),
				InvokeTrace: fn.GenTrace(),
				Faults:      ho.inj,
			}
			switch {
			case ho.rec != nil:
				env.Check = ho.rec
			case ho.chk != nil:
				env.Check = ho.chk
			}
			var bind *store.Binding
			if ho.cache != nil {
				man := store.BuildManifest(fn.Name, img.PageTags, remote.Params().ChunkPages)
				bind = ho.cache.Bind(man, cfg.Store.Policy, img.PageTags)
				inode.SetStager(bind)
				env.ChunkPlan = bind.Plan
			}
			ho.fns[fname] = &hostFn{
				fn: fn, pf: pf, env: env, img: img, inode: inode, bind: bind,
				warmExec: env.InvokeTrace.Summarize().TotalCompute,
			}
		}
		if head := ho.simHead(); head != nil {
			simHeads = append(simHeads, head)
		}
		hosts[i] = ho
	}
	// The engine observer slot is single; fan out so every host's
	// checker/recorder sees the region-wide clock stream. (Per-host
	// sim-event counters are therefore region-global — documented in
	// DESIGN.md §13.)
	switch len(simHeads) {
	case 0:
	case 1:
		eng.SetObserver(simHeads[0])
	default:
		eng.SetObserver(multiSimObserver(simHeads))
	}

	// --- Record phase: sequential per (host index, sorted function) ---
	var recErr error
	eng.Go("record", func(p *sim.Proc) {
		for _, ho := range hosts {
			for _, fname := range fnNames {
				hf := ho.fns[fname]
				if err := hf.pf.Record(p, hf.env); err != nil {
					recErr = fmt.Errorf("record %s/%s: %w", ho.name, fname, err)
					return
				}
			}
		}
	})
	eng.Run()
	if recErr != nil {
		return nil, recErr
	}
	for _, ho := range hosts {
		ho.h.Cache.DropCaches()
		ho.h.Dev.ResetStats()
		ho.h.Cache.SetMemLimit(cfg.CacheLimitPages)
	}
	if remote != nil {
		switch cfg.Store.Tier {
		case store.TierCold:
			for _, ho := range hosts {
				ho.cache.Drop()
			}
		case store.TierWarm:
			// Preload every host's chunk cache through the normal fetch
			// path, one proc per host, drained before dispatch begins.
			for _, ho := range hosts {
				ho := ho
				eng.Go(ho.name+"/store-preload", func(p *sim.Proc) {
					for _, fname := range fnNames {
						ho.fns[fname].bind.Preload(p)
					}
				})
			}
			eng.Run()
		}
	}

	// --- Invocation phase: front end dispatches the arrival stream ---
	rt, err := newRouter(cfg.Router)
	if err != nil {
		return nil, err
	}
	st := &runState{
		cfg:   cfg,
		eng:   eng,
		hosts: hosts,
		rt:    rt,
		res: &Result{
			Invocations: make([]*Invocation, len(arrivals)),
			Functions:   fnNames,
		},
		errSeq: -1,
	}
	eng.Go("frontend", func(p *sim.Proc) {
		st.start = p.Now()
		if cfg.Admission != nil {
			st.bkt = newBucket(*cfg.Admission, st.start)
		}
		for seq := range arrivals {
			a := arrivals[seq]
			if wait := st.start.Add(a.At).Sub(p.Now()); wait > 0 {
				p.Sleep(wait)
			}
			inv := &Invocation{
				Seq: seq, Tenant: a.Tenant, Fn: a.Fn, Class: a.Class,
				Arrived: a.At, Host: -1,
			}
			st.res.Invocations[seq] = inv
			if st.bkt != nil && !st.bkt.allow(p.Now()) {
				inv.Rejected = true
				st.res.Rejected++
				continue
			}
			st.res.Admitted++
			hi := st.rt.pick(hosts, a.Fn)
			ho := hosts[hi]
			inv.Host = hi
			ho.active++
			eng.Go(fmt.Sprintf("%s/%d", a.Tenant, a.Seq), func(p *sim.Proc) {
				st.serve(p, ho, inv)
			})
		}
	})
	eng.Run()
	if st.errVal != nil {
		return nil, fmt.Errorf("cluster: invocation %d: %w", st.errSeq, st.errVal)
	}

	// --- Teardown and reporting, host-index order throughout ---
	res := st.res
	for _, ho := range hosts {
		res.Cold += ho.cold
		res.Warm += ho.warm
		hs := HostStats{
			Name:           ho.name,
			Cold:           ho.cold,
			Warm:           ho.warm,
			SystemMemory:   units.PagesToBytes(ho.h.MM.SystemMemoryPages()),
			DeviceBytes:    ho.h.Dev.Stats().BytesRead,
			DeviceRequests: ho.h.Dev.Stats().Requests,
			Evictions:      ho.h.Cache.Evictions(),
			WarmEvicted:    ho.warmEvicted,
			Faults:         ho.inj.Report(),
		}
		// Drain the warm pool before checker quiescence: parked
		// sandboxes hold address spaces the checker expects released.
		for _, v := range ho.pool.drain() {
			v.vm.Shutdown()
		}
		if ho.rec != nil {
			hs.Obs = ho.rec.Finish()
		}
		if ho.chk != nil {
			cc := ho.chk.Counts()
			hs.CheckCounts = &cc
		}
		if ho.cache != nil {
			cs := ho.cache.Stats()
			hs.Store = &cs
		}
		res.Hosts = append(res.Hosts, hs)
	}
	if remote != nil {
		rs := remote.Stats()
		res.StoreRemote = &rs
	}
	if cfg.Check {
		if err := checkDigests(res); err != nil {
			return nil, err
		}
		for _, ho := range hosts {
			if err := ho.chk.Finish(); err != nil {
				return nil, fmt.Errorf("check %s: %w", ho.name, err)
			}
		}
	}
	return res, nil
}

// serve runs one admitted invocation on its chosen host: a warm hit
// replays only the function's compute time (restored memory is
// already mapped — every guest access would be a TLB hit, which the
// cost model charges zero for), while a cold start walks the full
// restore → prepare → invoke path of the single-host harness.
func (st *runState) serve(p *sim.Proc, ho *host, inv *Invocation) {
	hf := ho.fns[inv.Fn]
	if v := ho.pool.take(inv.Fn); v != nil {
		inv.Warm = true
		ho.warm++
		p.Sleep(hf.warmExec)
		inv.E2E = hf.warmExec
		ho.pool.serving--
		st.park(ho, v, p.Now())
	} else {
		ho.cold++
		vm, err := ho.h.Restore(p, fmt.Sprintf("%s/%s/%d", ho.name, inv.Tenant, inv.Seq),
			hf.fn, hf.img, hf.inode, hf.pf.RestoreConfig(0))
		if err != nil {
			st.fail(inv.Seq, err)
			ho.active--
			return
		}
		if hf.bind != nil {
			hf.bind.BeginRestore(p)
		}
		if err := hf.pf.PrepareVM(p, hf.env, vm); err != nil {
			st.fail(inv.Seq, err)
			ho.active--
			return
		}
		vm.MarkPrepared(p)
		stt, err := vm.Invoke(p, hf.env.InvokeTrace)
		if err != nil {
			st.fail(inv.Seq, err)
			ho.active--
			return
		}
		inv.E2E = stt.E2E
		hf.pf.FinishVM(hf.env, vm)
		if ho.chk != nil {
			// Digest before any teardown: the shadow page table is
			// consumed with the address space.
			inv.Digest = ho.chk.VMDone(vm)
		}
		st.parkOrShutdown(ho, &warmVM{vm: vm, fn: inv.Fn}, p.Now())
	}
	inv.Done = p.Now().Sub(st.start)
	ho.active--
}

// parkOrShutdown admits a fresh sandbox to the warm pool, evicting
// the oldest idle sandbox when the budget is full, or tears it down
// when keep-alive is off (or every budgeted slot is busy serving).
func (st *runState) parkOrShutdown(ho *host, v *warmVM, now sim.Time) {
	ka := st.cfg.KeepAlive
	if ka.Budget <= 0 {
		v.vm.Shutdown()
		return
	}
	if ho.pool.total() >= ka.Budget {
		ev := ho.pool.evictOldestIdle()
		if ev == nil {
			v.vm.Shutdown()
			return
		}
		ev.vm.Shutdown()
		ho.warmEvicted++
	}
	st.park(ho, v, now)
}

// park returns v to the idle pool and arms its idle-eviction timer.
func (st *runState) park(ho *host, v *warmVM, now sim.Time) {
	ho.pool.park(v, now)
	timeout := st.cfg.KeepAlive.IdleTimeout
	if timeout <= 0 {
		return
	}
	epoch := v.epoch
	st.eng.Schedule(timeout, func() {
		// Stale timer if the sandbox was taken, evicted, or re-parked
		// since this was armed.
		if v.idle && v.epoch == epoch && ho.pool.remove(v) {
			v.vm.Shutdown()
			ho.warmEvicted++
		}
	})
}

// checkDigests verifies every cold start of a function — on any host
// — converged to the same guest-visible memory, and records the
// per-function digests.
func checkDigests(res *Result) error {
	res.Digests = make(map[string]uint64, len(res.Functions))
	for _, inv := range res.Invocations {
		if inv.Rejected || inv.Warm {
			continue
		}
		want, ok := res.Digests[inv.Fn]
		if !ok {
			res.Digests[inv.Fn] = inv.Digest
			continue
		}
		if inv.Digest != want {
			return fmt.Errorf("check %s: invocation %d digest %016x != first digest %016x",
				inv.Fn, inv.Seq, inv.Digest, want)
		}
	}
	return nil
}

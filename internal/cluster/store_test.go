package cluster_test

import (
	"testing"
	"time"

	"snapbpf/internal/cluster"
	"snapbpf/internal/store"
)

// TestClusterStoreColdDedup runs a two-host region against a cold
// shared remote and checks the distribution-tier accounting: every
// host fetches through its own chunk cache, functions sharing
// base-image chunks dedup within a host, and the shared remote's
// duplicate-request counters expose the cross-host dedup gap (the
// same chunk pulled once per host).
func TestClusterStoreColdDedup(t *testing.T) {
	res, err := cluster.Run(cluster.Config{
		Hosts:    2,
		Scheme:   snapBPF(),
		Arrivals: mix(4, 50*time.Millisecond, "json", "image"),
		Check:    true,
		Store:    &store.Setup{Tier: store.TierCold, Policy: store.PolicyWSLazy},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.StoreRemote == nil {
		t.Fatal("no remote stats despite a cold store setup")
	}
	var fetches, fetchBytes, dedup int64
	for _, hs := range res.Hosts {
		if hs.Store == nil {
			t.Fatalf("host %s has no store stats", hs.Name)
		}
		if hs.Store.Fetches == 0 {
			t.Errorf("host %s never fetched from the remote", hs.Name)
		}
		if hs.Store.DedupHits == 0 {
			t.Errorf("host %s saw no dedup hits; json and image share base chunks", hs.Name)
		}
		fetches += hs.Store.Fetches
		fetchBytes += hs.Store.FetchBytes
		dedup += hs.Store.DedupHits
	}
	rs := res.StoreRemote
	if rs.Requests != fetches {
		t.Errorf("remote served %d requests, hosts fetched %d", rs.Requests, fetches)
	}
	if rs.Bytes != fetchBytes {
		t.Errorf("remote moved %d bytes, hosts fetched %d", rs.Bytes, fetchBytes)
	}
	if rs.UniqueChunks == 0 {
		t.Error("remote saw no unique chunks")
	}
	// Both hosts record both functions, so every chunk host1 pulls was
	// already pulled by host0: the dup counters must be exactly the
	// second host's traffic.
	if rs.DupRequests == 0 {
		t.Error("two hosts pulling the same snapshots produced no duplicate remote requests")
	}
	if rs.Requests != rs.UniqueChunks+rs.DupRequests {
		t.Errorf("remote accounting: %d requests != %d unique + %d dup",
			rs.Requests, rs.UniqueChunks, rs.DupRequests)
	}
	if dedup == 0 {
		t.Error("region saw no within-host dedup hits")
	}
}

// TestClusterStoreWarmPreload checks the warm tier: every host's chunk
// cache is preloaded before dispatch, so the invocation phase never
// touches the remote and E2E matches the local-SSD run.
func TestClusterStoreWarmPreload(t *testing.T) {
	run := func(setup *store.Setup) *cluster.Result {
		t.Helper()
		res, err := cluster.Run(cluster.Config{
			Hosts:    2,
			Scheme:   snapBPF(),
			Arrivals: burst(4, "json"),
			Check:    true,
			Store:    setup,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	local := run(nil)
	warm := run(&store.Setup{Tier: store.TierWarm, Policy: store.PolicyDemand})
	for _, hs := range warm.Hosts {
		if hs.Store == nil || hs.Store.Fetches == 0 {
			t.Fatalf("host %s never preloaded", hs.Name)
		}
	}
	a, b := local.Latency(nil), warm.Latency(nil)
	if a.Mean != b.Mean {
		t.Errorf("warm-tier mean E2E %v differs from local SSD %v; preloaded chunks must be free",
			b.Mean, a.Mean)
	}
}

// Package faast implements the Faast baseline (Bai et al., HPDC '24)
// as characterized in §2.1–2.2 of the SnapBPF paper: userfaultfd
// capture and prefetch like REAP, plus a snapshot pre-processing pass
// over the guest kernel allocator's metadata that identifies frames
// free at snapshot time, so faults on them are served with zero pages
// (UFFDIO_ZEROPAGE) instead of stale snapshot reads.
package faast

import (
	"fmt"

	"snapbpf/internal/faults"
	"snapbpf/internal/pagecache"
	"snapbpf/internal/prefetch"
	"snapbpf/internal/sim"
	"snapbpf/internal/snapshot"
	"snapbpf/internal/vmm"
)

// Faast is the userfaultfd + allocator-metadata baseline.
type Faast struct {
	// ChunkPages is the working-set prefetch read size in pages.
	ChunkPages int64

	ws      *snapshot.PagedWS
	wsInode *pagecache.Inode
	freeSet map[int64]bool
}

// New returns Faast with its default configuration.
func New() *Faast {
	return &Faast{ChunkPages: 128}
}

// Name implements prefetch.Prefetcher.
func (f *Faast) Name() string { return "Faast" }

// Capabilities implements prefetch.Prefetcher (Table 1 row).
func (f *Faast) Capabilities() prefetch.Capabilities {
	return prefetch.Capabilities{
		Mechanism:             "Userfaultfd (User-space)",
		OnDiskWSSerialization: true,
		NeedsSnapshotScan:     true, // allocator-metadata pre-processing
	}
}

// RestoreConfig implements prefetch.Prefetcher: stock guest.
func (f *Faast) RestoreConfig(salt int) vmm.RestoreConfig {
	return vmm.RestoreConfig{AllocSalt: salt}
}

// WorkingSet exposes the recorded artifact.
func (f *Faast) WorkingSet() *snapshot.PagedWS { return f.ws }

// scanMetadata is the snapshot pre-processing pass: it walks the guest
// allocator metadata embedded in the snapshot and builds the free-frame
// set (§2.2: "Faast relies on the allocator metadata of the VM kernel
// to identify pages that are not actively used in the snapshot").
func (f *Faast) scanMetadata(env *prefetch.Env) {
	f.freeSet = make(map[int64]bool, len(env.Image.FreePFNs))
	for _, pfn := range env.Image.FreePFNs {
		f.freeSet[pfn] = true
	}
}

// Record implements prefetch.Prefetcher: like REAP, but faults on
// metadata-free frames are served with zero pages and never enter the
// working set.
func (f *Faast) Record(p *sim.Proc, env *prefetch.Env) error {
	f.scanMetadata(env)
	vm, err := env.Host.Restore(p, env.Fn.Name+"-faast-record", env.Fn, env.Image, env.SnapInode,
		vmm.RestoreConfig{AllocSalt: 0})
	if err != nil {
		return err
	}
	vma := vm.AS.MMapAnon(p, 0, env.Image.NrPages)
	u := vm.AS.RegisterUffd(vma)

	var order []int64
	u.Handler = func(hp *sim.Proc, page int64) {
		if f.freeSet[page] {
			u.ZeroPage(hp, page)
			return
		}
		faults.Retry(hp, env.Faults, func(try int) error {
			return env.SnapInode.DirectReadAttempt(hp, page, 1, try)
		})
		u.CopyTag(hp, page, env.Image.PageTags[page])
		order = append(order, page)
	}
	vm.MarkPrepared(p)
	if _, err := vm.Invoke(p, env.RecordTrace); err != nil {
		return err
	}
	vm.Shutdown()

	ws := &snapshot.PagedWS{Pages: order, Tags: make([]uint64, len(order))}
	for i, pg := range order {
		ws.Tags[i] = env.Image.PageTags[pg]
	}
	if err := ws.Validate(env.Image.NrPages); err != nil {
		return fmt.Errorf("faast: recorded invalid working set: %w", err)
	}
	f.ws = ws
	f.wsInode = env.Host.Cache.NewInode(env.Fn.Name+".faast-ws", ws.TotalPages())
	env.NotifyArtifact(f.wsInode, ws.Tags)
	env.NotifyRecordDone(f.Name(), ws.TotalPages())
	return nil
}

// PrepareVM implements prefetch.Prefetcher.
func (f *Faast) PrepareVM(p *sim.Proc, env *prefetch.Env, vm *vmm.MicroVM) error {
	if f.ws == nil {
		return fmt.Errorf("faast: PrepareVM before Record")
	}
	vma := vm.AS.MMapAnon(p, 0, env.Image.NrPages)
	u := vm.AS.RegisterUffd(vma)

	demandFetch := func(hp *sim.Proc, page int64) {
		faults.Retry(hp, env.Faults, func(try int) error {
			return env.SnapInode.DirectReadAttempt(hp, page, 1, try)
		})
		u.CopyTag(hp, page, env.Image.PageTags[page])
	}

	if env.Faults.ArtifactCorrupt() {
		// The WS file is unreadable: degrade to demand paging. The
		// free-frame set survives (it came from the snapshot scan, not
		// the WS file), so metadata-free faults still get zero pages.
		env.Faults.CountFallback()
		env.NotifyDegraded(f.Name(), vm, "corrupt ws artifact")
		u.Handler = func(hp *sim.Proc, page int64) {
			if f.freeSet[page] {
				u.ZeroPage(hp, page)
				return
			}
			demandFetch(hp, page)
		}
		env.NotifyPrepareDone(f.Name(), vm)
		return nil
	}

	pending := make(map[int64]*sim.Waiter, len(f.ws.Pages))
	for _, pg := range f.ws.Pages {
		pending[pg] = env.Host.Eng.NewWaiter()
	}

	u.Handler = func(hp *sim.Proc, page int64) {
		if f.freeSet[page] {
			u.ZeroPage(hp, page)
			return
		}
		if w, ok := pending[page]; ok {
			hp.Wait(w)
			if !vm.AS.Mapped(page) {
				u.CopyTag(hp, page, env.Image.PageTags[page])
			}
			return
		}
		demandFetch(hp, page)
	}

	ws, wsInode, chunk := f.ws, f.wsInode, f.ChunkPages
	env.Host.Eng.Go(vm.Name+"-faast-prefetch", func(pp *sim.Proc) {
		n := int64(len(ws.Pages))
		for base := int64(0); base < n; base += chunk {
			l := chunk
			if base+l > n {
				l = n - base
			}
			env.NotifyPrefetchIssued(pp, f.Name(), vm, base, l)
			faults.Retry(pp, env.Faults, func(try int) error {
				return wsInode.DirectReadAttempt(pp, base, l, try)
			})
			for i := base; i < base+l; i++ {
				page := ws.Pages[i]
				u.CopyTag(pp, page, ws.Tags[i])
				pending[page].Fire()
			}
		}
	})
	env.NotifyPrepareDone(f.Name(), vm)
	return nil
}

// FinishVM implements prefetch.Prefetcher.
func (f *Faast) FinishVM(env *prefetch.Env, vm *vmm.MicroVM) {}

package faast

import (
	"testing"

	"snapbpf/internal/blockdev"
	"snapbpf/internal/prefetch"
	"snapbpf/internal/sim"
	"snapbpf/internal/vmm"
	"snapbpf/internal/workload"
)

func tinyFn() workload.Function {
	return workload.Function{
		Name: "tiny", MemMiB: 64, StateMiB: 32, WSMiB: 8, WSRegions: 10,
		AllocMiB: 4, ComputeMs: 5, WriteFrac: 0.15, Seed: 3,
	}
}

func newEnv(fn workload.Function) *prefetch.Env {
	h := vmm.NewHost(blockdev.MicronSATA5300())
	img := vmm.BuildImage(fn, false)
	return &prefetch.Env{
		Host:        h,
		Fn:          fn,
		Image:       img,
		SnapInode:   h.RegisterSnapshot(fn.Name+".snapmem", img),
		RecordTrace: fn.GenTrace(),
		InvokeTrace: fn.GenTrace(),
	}
}

func record(t *testing.T, f *Faast, env *prefetch.Env) {
	t.Helper()
	var err error
	env.Host.Eng.Go("rec", func(p *sim.Proc) { err = f.Record(p, env) })
	env.Host.Eng.Run()
	if err != nil {
		t.Fatal(err)
	}
}

func TestMetadataFiltersAllocationsFromWS(t *testing.T) {
	fn := tinyFn()
	env := newEnv(fn)
	f := New()
	record(t, f, env)
	ws := f.WorkingSet()
	if ws == nil || len(ws.Pages) == 0 {
		t.Fatal("no working set")
	}
	// Unlike REAP, allocator-metadata filtering keeps free-pool pages
	// out of the working set.
	for _, pg := range ws.Pages {
		if pg >= fn.StatePages() {
			t.Fatalf("free-at-snapshot page %d in Faast working set", pg)
		}
	}
}

func TestZeroPageFaultsAvoidDisk(t *testing.T) {
	fn := tinyFn()
	env := newEnv(fn)
	f := New()
	record(t, f, env)
	env.Host.Dev.ResetStats()

	var err error
	env.Host.Eng.Go("vm", func(p *sim.Proc) {
		vm, rerr := env.Host.Restore(p, "vm0", fn, env.Image, env.SnapInode, f.RestoreConfig(0))
		if rerr != nil {
			err = rerr
			return
		}
		if perr := f.PrepareVM(p, env, vm); perr != nil {
			err = perr
			return
		}
		if _, ierr := vm.Invoke(p, env.InvokeTrace); ierr != nil {
			err = ierr
		}
	})
	env.Host.Eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Invocation traffic = working set only; allocation faults were
	// served with UFFDIO_ZEROPAGE, not snapshot reads.
	wsBytes := f.WorkingSet().TotalPages() * 4096
	if got := env.Host.Dev.Stats().BytesRead; got != wsBytes {
		t.Fatalf("device bytes = %d, want %d (ws only)", got, wsBytes)
	}
}

func TestCapabilities(t *testing.T) {
	c := New().Capabilities()
	if !c.OnDiskWSSerialization || c.InMemoryWSDedup || c.StatelessAllocFiltering {
		t.Fatalf("capabilities = %+v", c)
	}
	if !c.NeedsSnapshotScan {
		t.Fatal("Faast must report its metadata pre-scan")
	}
}

func TestPrepareBeforeRecordFails(t *testing.T) {
	fn := tinyFn()
	env := newEnv(fn)
	f := New()
	var err error
	env.Host.Eng.Go("vm", func(p *sim.Proc) {
		vm, _ := env.Host.Restore(p, "vm0", fn, env.Image, env.SnapInode, f.RestoreConfig(0))
		err = f.PrepareVM(p, env, vm)
	})
	env.Host.Eng.Run()
	if err == nil {
		t.Fatal("PrepareVM before Record accepted")
	}
}

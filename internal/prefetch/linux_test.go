package prefetch

import (
	"testing"

	"snapbpf/internal/blockdev"
	"snapbpf/internal/sim"
	"snapbpf/internal/vmm"
	"snapbpf/internal/workload"
)

func tinyFn() workload.Function {
	return workload.Function{
		Name: "tiny", MemMiB: 64, StateMiB: 32, WSMiB: 8, WSRegions: 10,
		AllocMiB: 4, ComputeMs: 5, WriteFrac: 0.15, Seed: 3,
	}
}

func newEnv(fn workload.Function) *Env {
	h := vmm.NewHost(blockdev.MicronSATA5300())
	img := vmm.BuildImage(fn, false)
	return &Env{
		Host:        h,
		Fn:          fn,
		Image:       img,
		SnapInode:   h.RegisterSnapshot(fn.Name+".snapmem", img),
		RecordTrace: fn.GenTrace(),
		InvokeTrace: fn.GenTrace(),
	}
}

func invoke(t *testing.T, l *Linux, env *Env) vmm.InvokeStats {
	t.Helper()
	var stats vmm.InvokeStats
	var err error
	env.Host.Eng.Go("vm", func(p *sim.Proc) {
		if rerr := l.Record(p, env); rerr != nil {
			err = rerr
			return
		}
		vm, rerr := env.Host.Restore(p, "vm0", env.Fn, env.Image, env.SnapInode, l.RestoreConfig(0))
		if rerr != nil {
			err = rerr
			return
		}
		if perr := l.PrepareVM(p, env, vm); perr != nil {
			err = perr
			return
		}
		vm.MarkPrepared(p)
		stats, err = vm.Invoke(p, env.InvokeTrace)
		l.FinishVM(env, vm)
	})
	env.Host.Eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

func TestLinuxRAFasterThanNoRA(t *testing.T) {
	fn := tinyFn()
	ra := invoke(t, NewLinuxRA(), newEnv(fn))
	nora := invoke(t, NewLinuxNoRA(), newEnv(fn))
	if ra.E2E >= nora.E2E {
		t.Fatalf("RA (%v) not faster than NoRA (%v) on a locality-heavy trace", ra.E2E, nora.E2E)
	}
}

func TestLinuxRAOverfetches(t *testing.T) {
	fn := tinyFn()
	envRA := newEnv(fn)
	invoke(t, NewLinuxRA(), envRA)
	envNo := newEnv(fn)
	invoke(t, NewLinuxNoRA(), envNo)
	if envRA.Host.Dev.Stats().BytesRead <= envNo.Host.Dev.Stats().BytesRead {
		t.Fatal("RA window did not overfetch relative to NoRA")
	}
	if envRA.Host.Dev.Stats().Requests >= envNo.Host.Dev.Stats().Requests {
		t.Fatal("RA did not reduce request count")
	}
}

func TestLinuxWithWindowName(t *testing.T) {
	l := NewLinuxWithWindow(64, "Linux-RA-64")
	if l.Name() != "Linux-RA-64" || l.Readahead != 64 {
		t.Fatalf("window baseline misconfigured: %s %d", l.Name(), l.Readahead)
	}
}

func TestLinuxCapabilities(t *testing.T) {
	c := NewLinuxRA().Capabilities()
	if c.OnDiskWSSerialization || !c.InMemoryWSDedup || c.StatelessAllocFiltering {
		t.Fatalf("capabilities = %+v", c)
	}
}

func TestLinuxNoRecordPhase(t *testing.T) {
	env := newEnv(tinyFn())
	var err error
	env.Host.Eng.Go("r", func(p *sim.Proc) { err = NewLinuxRA().Record(p, env) })
	env.Host.Eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if env.Host.Dev.Stats().Requests != 0 {
		t.Fatal("Linux baseline record phase did I/O")
	}
}

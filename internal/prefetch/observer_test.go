package prefetch

import (
	"testing"

	"snapbpf/internal/pagecache"
	"snapbpf/internal/sim"
	"snapbpf/internal/vmm"
)

// tallyObserver records how often each Observer method fired.
type tallyObserver struct {
	records, artifacts, prepares, degraded, groups, loads int
	pages                                                 int64
}

func (o *tallyObserver) RecordDone(scheme string, wsPages int64) { o.records++ }
func (o *tallyObserver) ArtifactRegistered(ino *pagecache.Inode, tags []uint64) {
	o.artifacts++
}
func (o *tallyObserver) PrepareDone(scheme string, vm *vmm.MicroVM) { o.prepares++ }
func (o *tallyObserver) Degraded(scheme string, vm *vmm.MicroVM, reason string) {
	o.degraded++
}
func (o *tallyObserver) PrefetchIssued(p *sim.Proc, scheme string, vm *vmm.MicroVM, start, npages int64) {
	o.groups++
	o.pages += npages
}
func (o *tallyObserver) OffsetsLoaded(p *sim.Proc, scheme string, vm *vmm.MicroVM, groups int, took sim.Duration) {
	o.loads++
}

// drive fires every Notify helper once.
func drive(env *Env) {
	env.NotifyRecordDone("s", 8)
	env.NotifyArtifact(nil, nil)
	env.NotifyPrepareDone("s", nil)
	env.NotifyDegraded("s", nil, "reason")
	env.NotifyPrefetchIssued(nil, "s", nil, 0, 16)
	env.NotifyOffsetsLoaded(nil, "s", nil, 3, 0)
}

// TestNotifyHelpersNilSafe checks every Notify helper is a no-op
// without an observer — schemes call them unconditionally.
func TestNotifyHelpersNilSafe(t *testing.T) {
	drive(&Env{}) // must not panic
}

// TestNotifyHelpersForward checks every Notify helper forwards to the
// attached observer exactly once with the event's payload.
func TestNotifyHelpersForward(t *testing.T) {
	var o tallyObserver
	drive(&Env{Check: &o})
	if o.records != 1 || o.artifacts != 1 || o.prepares != 1 || o.degraded != 1 ||
		o.groups != 1 || o.loads != 1 {
		t.Errorf("events delivered unevenly: %+v", o)
	}
	if o.pages != 16 {
		t.Errorf("prefetch pages = %d, want 16", o.pages)
	}
}

package prefetch

import (
	"snapbpf/internal/pagecache"
	"snapbpf/internal/sim"
	"snapbpf/internal/vmm"
)

// Linux is the vanilla-firecracker baseline: the snapshot memory file
// is privately mapped and pages fault in on demand, with the kernel's
// readahead either at its default 128KiB window (Linux-RA) or
// disabled (Linux-NoRA). No record phase, no prefetching.
type Linux struct {
	// Readahead is the readahead window in pages; 0 disables
	// (Linux-NoRA), DefaultRAPages is the paper's Linux-RA setting.
	Readahead int64
	name      string
}

// NewLinuxRA returns the Linux-RA baseline (default readahead).
func NewLinuxRA() *Linux {
	return &Linux{Readahead: pagecache.DefaultRAPages, name: "Linux-RA"}
}

// NewLinuxNoRA returns the Linux-NoRA baseline (readahead disabled).
func NewLinuxNoRA() *Linux {
	return &Linux{Readahead: 0, name: "Linux-NoRA"}
}

// NewLinuxWithWindow returns a baseline with an explicit readahead
// window, used by the readahead-sweep ablation.
func NewLinuxWithWindow(pages int64, name string) *Linux {
	return &Linux{Readahead: pages, name: name}
}

// Name implements Prefetcher.
func (l *Linux) Name() string { return l.name }

// Capabilities implements Prefetcher.
func (l *Linux) Capabilities() Capabilities {
	return Capabilities{
		Mechanism:       "demand paging (readahead)",
		InMemoryWSDedup: true, // page cache mappings are shared
	}
}

// RestoreConfig implements Prefetcher: stock guest, patched KVM.
func (l *Linux) RestoreConfig(salt int) vmm.RestoreConfig {
	return vmm.RestoreConfig{AllocSalt: salt}
}

// Record implements Prefetcher: no record phase.
func (l *Linux) Record(p *sim.Proc, env *Env) error { return nil }

// PrepareVM implements Prefetcher: map the snapshot file privately and
// set the readahead window.
func (l *Linux) PrepareVM(p *sim.Proc, env *Env, vm *vmm.MicroVM) error {
	env.SnapInode.SetReadahead(l.Readahead)
	vm.MapSnapshotDefault(p)
	env.NotifyPrepareDone(l.Name(), vm)
	return nil
}

// FinishVM implements Prefetcher.
func (l *Linux) FinishVM(env *Env, vm *vmm.MicroVM) {}

package reap

import (
	"testing"

	"snapbpf/internal/blockdev"
	"snapbpf/internal/prefetch"
	"snapbpf/internal/sim"
	"snapbpf/internal/vmm"
	"snapbpf/internal/workload"
)

func tinyFn() workload.Function {
	return workload.Function{
		Name: "tiny", MemMiB: 64, StateMiB: 32, WSMiB: 8, WSRegions: 10,
		AllocMiB: 4, ComputeMs: 5, WriteFrac: 0.15, Seed: 3,
	}
}

func newEnv(fn workload.Function) *prefetch.Env {
	h := vmm.NewHost(blockdev.MicronSATA5300())
	img := vmm.BuildImage(fn, false)
	return &prefetch.Env{
		Host:        h,
		Fn:          fn,
		Image:       img,
		SnapInode:   h.RegisterSnapshot(fn.Name+".snapmem", img),
		RecordTrace: fn.GenTrace(),
		InvokeTrace: fn.GenTrace(),
	}
}

func record(t *testing.T, r *REAP, env *prefetch.Env) {
	t.Helper()
	var err error
	env.Host.Eng.Go("rec", func(p *sim.Proc) { err = r.Record(p, env) })
	env.Host.Eng.Run()
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecordCapturesFaultOrder(t *testing.T) {
	fn := tinyFn()
	env := newEnv(fn)
	r := New()
	record(t, r, env)
	ws := r.WorkingSet()
	if ws == nil || len(ws.Pages) == 0 {
		t.Fatal("no working set")
	}
	// REAP has no allocation filtering: the working set must include
	// free-pool pages touched by allocations.
	hasAlloc := false
	for _, pg := range ws.Pages {
		if pg >= fn.StatePages() {
			hasAlloc = true
		}
	}
	if !hasAlloc {
		t.Fatal("REAP working set missing allocation pages")
	}
	// Contents serialized alongside offsets.
	for i, pg := range ws.Pages {
		if ws.Tags[i] != env.Image.PageTags[pg] {
			t.Fatalf("tag mismatch at ws entry %d", i)
		}
	}
	// Record used direct I/O: page cache untouched.
	if env.Host.Cache.NrCachedPages() != 0 {
		t.Fatalf("record polluted page cache: %d pages", env.Host.Cache.NrCachedPages())
	}
}

func TestInvokeInstallsViaUffd(t *testing.T) {
	fn := tinyFn()
	env := newEnv(fn)
	r := New()
	record(t, r, env)

	var stats vmm.InvokeStats
	var err error
	env.Host.Eng.Go("vm", func(p *sim.Proc) {
		vm, rerr := env.Host.Restore(p, "vm0", fn, env.Image, env.SnapInode, r.RestoreConfig(0))
		if rerr != nil {
			err = rerr
			return
		}
		if perr := r.PrepareVM(p, env, vm); perr != nil {
			err = perr
			return
		}
		vm.MarkPrepared(p)
		stats, err = vm.Invoke(p, env.InvokeTrace)
	})
	env.Host.Eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.E2E <= 0 {
		t.Fatal("no E2E")
	}
	// Everything is uffd-installed anonymous memory: no dedupable
	// page-cache pages for guest memory.
	if env.Host.Cache.NrCachedPages() != 0 {
		t.Fatalf("REAP populated the page cache: %d pages", env.Host.Cache.NrCachedPages())
	}
}

func TestNoDedupAcrossSandboxes(t *testing.T) {
	fn := tinyFn()
	env := newEnv(fn)
	r := New()
	record(t, r, env)

	anon := make([]int64, 2)
	var err error
	for i := 0; i < 2; i++ {
		i := i
		env.Host.Eng.Go("vm", func(p *sim.Proc) {
			vm, rerr := env.Host.Restore(p, "vm", fn, env.Image, env.SnapInode, r.RestoreConfig(0))
			if rerr != nil {
				err = rerr
				return
			}
			if perr := r.PrepareVM(p, env, vm); perr != nil {
				err = perr
				return
			}
			if _, ierr := vm.Invoke(p, env.InvokeTrace); ierr != nil {
				err = ierr
				return
			}
			anon[i] = vm.AS.AnonPages()
		})
	}
	env.Host.Eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if anon[0] == 0 || anon[1] == 0 {
		t.Fatalf("anon pages = %v", anon)
	}
	// Each sandbox holds its own full copy.
	if anon[0] < r.WorkingSet().TotalPages() {
		t.Fatalf("vm holds %d anon pages, ws is %d", anon[0], r.WorkingSet().TotalPages())
	}
}

func TestPrepareBeforeRecordFails(t *testing.T) {
	fn := tinyFn()
	env := newEnv(fn)
	r := New()
	var err error
	env.Host.Eng.Go("vm", func(p *sim.Proc) {
		vm, _ := env.Host.Restore(p, "vm0", fn, env.Image, env.SnapInode, r.RestoreConfig(0))
		err = r.PrepareVM(p, env, vm)
	})
	env.Host.Eng.Run()
	if err == nil {
		t.Fatal("PrepareVM before Record accepted")
	}
}

func TestCapabilities(t *testing.T) {
	c := New().Capabilities()
	if !c.OnDiskWSSerialization || c.InMemoryWSDedup || c.StatelessAllocFiltering || c.KernelSpace {
		t.Fatalf("capabilities = %+v", c)
	}
}

func TestBufferedModePopulatesCache(t *testing.T) {
	fn := tinyFn()
	env := newEnv(fn)
	r := New()
	r.DirectIO = false
	record(t, r, env)
	// Buffered record faults snapshot pages through the cache.
	if env.Host.Cache.NrCachedPages() == 0 {
		t.Fatal("buffered record did not populate the cache")
	}
}

// Package reap implements the REAP baseline (Ustiugov et al., ASPLOS
// '21) as characterized in §2.1 of the SnapBPF paper: working sets are
// captured through userspace page-fault handling (userfaultfd),
// serialized to a separate file *with page contents*, and prefetched
// with direct I/O into per-sandbox anonymous memory installed via
// UFFDIO_COPY. Because every installed page is private anonymous
// memory, concurrent sandboxes of the same function cannot share
// working-set pages.
package reap

import (
	"fmt"

	"snapbpf/internal/faults"
	"snapbpf/internal/pagecache"
	"snapbpf/internal/prefetch"
	"snapbpf/internal/sim"
	"snapbpf/internal/snapshot"
	"snapbpf/internal/vmm"
)

// DefaultChunkPages is the prefetch read granularity (512KiB).
const DefaultChunkPages = 128

// REAP is the userfaultfd record-and-prefetch baseline.
type REAP struct {
	// DirectIO selects O_DIRECT for working-set and snapshot reads
	// (the paper: REAP uses direct I/O "to bypass the page cache and
	// avoid the overhead of intermediate memory copies"). The
	// buffered alternative exists for the ablation bench.
	DirectIO bool

	// ChunkPages is the working-set prefetch read size in pages.
	ChunkPages int64

	ws      *snapshot.PagedWS
	wsInode *pagecache.Inode
}

// New returns REAP with the paper's configuration.
func New() *REAP {
	return &REAP{DirectIO: true, ChunkPages: DefaultChunkPages}
}

// Name implements prefetch.Prefetcher.
func (r *REAP) Name() string { return "REAP" }

// Capabilities implements prefetch.Prefetcher (Table 1 row).
func (r *REAP) Capabilities() prefetch.Capabilities {
	return prefetch.Capabilities{
		Mechanism:             "Userfaultfd (User-space)",
		OnDiskWSSerialization: true,
	}
}

// RestoreConfig implements prefetch.Prefetcher: stock guest.
func (r *REAP) RestoreConfig(salt int) vmm.RestoreConfig {
	return vmm.RestoreConfig{AllocSalt: salt}
}

// WorkingSet exposes the recorded artifact (tests, wsinspect).
func (r *REAP) WorkingSet() *snapshot.PagedWS { return r.ws }

// Record implements prefetch.Prefetcher: one invocation behind a
// userfaultfd handler that fetches every faulting page from the
// snapshot with direct I/O and logs it; the working set (offsets AND
// contents) is then serialized to its own file.
func (r *REAP) Record(p *sim.Proc, env *prefetch.Env) error {
	vm, err := env.Host.Restore(p, env.Fn.Name+"-reap-record", env.Fn, env.Image, env.SnapInode,
		vmm.RestoreConfig{AllocSalt: 0})
	if err != nil {
		return err
	}
	vma := vm.AS.MMapAnon(p, 0, env.Image.NrPages)
	u := vm.AS.RegisterUffd(vma)

	var order []int64
	u.Handler = func(hp *sim.Proc, page int64) {
		r.readSnapshotPage(hp, env, page)
		u.CopyTag(hp, page, env.Image.PageTags[page])
		order = append(order, page)
	}
	vm.MarkPrepared(p)
	if _, err := vm.Invoke(p, env.RecordTrace); err != nil {
		return err
	}
	vm.Shutdown()

	ws := &snapshot.PagedWS{Pages: order, Tags: make([]uint64, len(order))}
	for i, pg := range order {
		ws.Tags[i] = env.Image.PageTags[pg]
	}
	if err := ws.Validate(env.Image.NrPages); err != nil {
		return fmt.Errorf("reap: recorded invalid working set: %w", err)
	}
	r.ws = ws
	// Serialize the working set (with contents) to its own file.
	r.wsInode = env.Host.Cache.NewInode(env.Fn.Name+".reap-ws", ws.TotalPages())
	env.NotifyArtifact(r.wsInode, ws.Tags)
	env.NotifyRecordDone(r.Name(), ws.TotalPages())
	return nil
}

// readSnapshotPage fetches one page of the snapshot during fault
// handling, honouring the DirectIO setting. O_DIRECT surfaces
// transient media errors to userspace, so REAP retries with backoff;
// the buffered path retries inside the kernel.
func (r *REAP) readSnapshotPage(p *sim.Proc, env *prefetch.Env, page int64) {
	if r.DirectIO {
		faults.Retry(p, env.Faults, func(try int) error {
			return env.SnapInode.DirectReadAttempt(p, page, 1, try)
		})
	} else {
		env.SnapInode.BufferedRead(p, page, 1)
	}
}

// vmState is the per-sandbox prefetch coordination state.
type vmState struct {
	pending map[int64]*sim.Waiter // ws page -> install completion
}

// PrepareVM implements prefetch.Prefetcher: guest memory becomes an
// anonymous uffd-registered region; a prefetch thread streams the
// working-set file (direct I/O) and installs each page with
// UFFDIO_COPY while the vCPU runs. Faults on working-set pages wait
// for the installer; faults on other pages fetch from the snapshot on
// demand.
func (r *REAP) PrepareVM(p *sim.Proc, env *prefetch.Env, vm *vmm.MicroVM) error {
	if r.ws == nil {
		return fmt.Errorf("reap: PrepareVM before Record")
	}
	vma := vm.AS.MMapAnon(p, 0, env.Image.NrPages)
	u := vm.AS.RegisterUffd(vma)

	if env.Faults.ArtifactCorrupt() {
		// The WS file is corrupt or truncated: degrade to pure demand
		// paging from the snapshot — the same handler the record phase
		// uses, minus the logging. Every fault costs a round trip to
		// userspace plus a snapshot read, but the invocation completes.
		env.Faults.CountFallback()
		env.NotifyDegraded(r.Name(), vm, "corrupt ws artifact")
		u.Handler = func(hp *sim.Proc, page int64) {
			r.readSnapshotPage(hp, env, page)
			u.CopyTag(hp, page, env.Image.PageTags[page])
		}
		env.NotifyPrepareDone(r.Name(), vm)
		return nil
	}

	st := &vmState{pending: make(map[int64]*sim.Waiter, len(r.ws.Pages))}
	for _, pg := range r.ws.Pages {
		st.pending[pg] = env.Host.Eng.NewWaiter()
	}

	u.Handler = func(hp *sim.Proc, page int64) {
		if w, ok := st.pending[page]; ok {
			hp.Wait(w)
			if !vm.AS.Mapped(page) {
				// Extremely late fault raced the installer's map scan;
				// install directly from the already-read WS chunk.
				u.CopyTag(hp, page, env.Image.PageTags[page])
			}
			return
		}
		r.readSnapshotPage(hp, env, page)
		u.CopyTag(hp, page, env.Image.PageTags[page])
	}

	// Prefetch thread: stream the WS file and install pages eagerly.
	ws, wsInode, chunk := r.ws, r.wsInode, r.ChunkPages
	if chunk <= 0 {
		chunk = DefaultChunkPages
	}
	env.Host.Eng.Go(vm.Name+"-reap-prefetch", func(pp *sim.Proc) {
		n := int64(len(ws.Pages))
		for base := int64(0); base < n; base += chunk {
			len_ := chunk
			if base+len_ > n {
				len_ = n - base
			}
			// The WS file is read sequentially by file offset.
			env.NotifyPrefetchIssued(pp, r.Name(), vm, base, len_)
			if r.DirectIO {
				faults.Retry(pp, env.Faults, func(try int) error {
					return wsInode.DirectReadAttempt(pp, base, len_, try)
				})
			} else {
				wsInode.BufferedRead(pp, base, len_)
			}
			for i := base; i < base+len_; i++ {
				page := ws.Pages[i]
				u.CopyTag(pp, page, ws.Tags[i])
				st.pending[page].Fire()
			}
		}
	})
	env.NotifyPrepareDone(r.Name(), vm)
	return nil
}

// FinishVM implements prefetch.Prefetcher.
func (r *REAP) FinishVM(env *prefetch.Env, vm *vmm.MicroVM) {}

// Package prefetch defines the snapshot-prefetching interface shared
// by SnapBPF and the state-of-the-art baselines the paper compares
// against (REAP, Faast, FaaSnap, vanilla Linux demand paging), plus
// the two Linux baselines themselves.
//
// A Prefetcher participates in the two phases of §2.1:
//
//   - Record: one instrumented invocation that captures the function's
//     working set and persists whatever artifact the scheme needs
//     (offsets for SnapBPF, page data for the others).
//   - Invocation: for each new sandbox, PrepareVM installs the
//     sandbox's guest-memory backend (mmap, userfaultfd, overlays,
//     eBPF programs) and kicks off prefetching; the harness then
//     replays the function trace.
package prefetch

import (
	"snapbpf/internal/faults"
	"snapbpf/internal/pagecache"
	"snapbpf/internal/sim"
	"snapbpf/internal/snapshot"
	"snapbpf/internal/trace"
	"snapbpf/internal/vmm"
	"snapbpf/internal/workload"
)

// Capabilities is a row of the paper's Table 1 feature matrix.
type Capabilities struct {
	// Mechanism names the capture/prefetch mechanism as in Table 1.
	Mechanism string
	// KernelSpace is true when capture and prefetch run in the kernel.
	KernelSpace bool
	// OnDiskWSSerialization is true when the working set's page
	// contents are serialized to a separate file on disk.
	OnDiskWSSerialization bool
	// InMemoryWSDedup is true when concurrent sandboxes share one
	// in-memory copy of the working set.
	InMemoryWSDedup bool
	// StatelessAllocFiltering is true when VM-sandbox memory
	// allocations are filtered without snapshot scanning or
	// pre-processing.
	StatelessAllocFiltering bool
	// NeedsSnapshotScan is true when the scheme pre-scans or
	// pre-processes the snapshot (zero pages, allocator metadata).
	NeedsSnapshotScan bool
}

// Env is the per-function experiment context.
type Env struct {
	Host      *vmm.Host
	Fn        workload.Function
	Image     *snapshot.MemoryImage
	SnapInode *pagecache.Inode

	// RecordTrace drives the record invocation; InvokeTrace drives
	// the measured invocations (identical inputs across concurrent
	// sandboxes, as in the paper's methodology).
	RecordTrace *trace.Trace
	InvokeTrace *trace.Trace

	// Faults is the run's fault injector (nil when healthy). Schemes
	// consult it in PrepareVM for scheme-level failures — corrupt
	// working-set artifacts, eBPF map-load failures — and degrade to
	// demand paging instead of failing the invocation.
	Faults *faults.Injector

	// Check, when non-nil, observes scheme-level events for the
	// correctness harness (internal/check). Schemes report through the
	// nil-safe Notify* helpers below.
	Check Observer

	// ChunkPlan, when non-nil, receives the captured working-set page
	// order once a scheme has it — the snapshot distribution tier
	// (internal/store) turns it into a chunk-priority fetch plan under
	// the WS-guided lazy-pull policy. Schemes without offset metadata
	// never call it and degrade to demand fetching naturally.
	ChunkPlan func(p *sim.Proc, pages []int64)
}

// NotifyChunkPlan hands the working-set page order (first-access
// sorted) to the distribution tier (nil-safe).
func (env *Env) NotifyChunkPlan(p *sim.Proc, pages []int64) {
	if env.ChunkPlan != nil {
		env.ChunkPlan(p, pages)
	}
}

// Observer receives scheme-level events for the correctness harness.
// Observers must not mutate scheme or VM state.
type Observer interface {
	// RecordDone fires when a scheme's record phase completes; wsPages
	// is the captured working-set size (0 for schemes without one).
	RecordDone(scheme string, wsPages int64)
	// ArtifactRegistered declares the page contents of a scheme's
	// on-disk working-set artifact: tags[i] is the content tag of file
	// page i of ino. Fired before any sandbox reads or maps the file.
	ArtifactRegistered(ino *pagecache.Inode, tags []uint64)
	// PrepareDone fires when PrepareVM completes for one sandbox.
	PrepareDone(scheme string, vm *vmm.MicroVM)
	// Degraded fires each time a scheme falls back to demand paging
	// after an injected scheme-level fault (corrupt artifact, eBPF
	// map-load failure). The harness balances these against the
	// injector's fallback counters.
	Degraded(scheme string, vm *vmm.MicroVM, reason string)
	// PrefetchIssued fires once per prefetch group a scheme issues
	// for a sandbox: one working-set chunk read for REAP/Faast, one
	// coalesced range for FaaSnap. SnapBPF's kernel-side groups are
	// observed through pagecache.Observer.ReadaheadIssued instead. p
	// is the issuing process (the scheme's prefetch thread).
	PrefetchIssued(p *sim.Proc, scheme string, vm *vmm.MicroVM, start, npages int64)
	// OffsetsLoaded fires when SnapBPF finishes loading a sandbox's
	// offset schedule into its eBPF maps — the §3.1 "WS load" phase —
	// with the group count and the virtual time the load took.
	OffsetsLoaded(p *sim.Proc, scheme string, vm *vmm.MicroVM, groups int, took sim.Duration)
}

// NotifyRecordDone reports a completed record phase (nil-safe).
func (env *Env) NotifyRecordDone(scheme string, wsPages int64) {
	if env.Check != nil {
		env.Check.RecordDone(scheme, wsPages)
	}
}

// NotifyArtifact declares a working-set artifact's contents (nil-safe).
func (env *Env) NotifyArtifact(ino *pagecache.Inode, tags []uint64) {
	if env.Check != nil {
		env.Check.ArtifactRegistered(ino, tags)
	}
}

// NotifyPrepareDone reports a completed PrepareVM (nil-safe).
func (env *Env) NotifyPrepareDone(scheme string, vm *vmm.MicroVM) {
	if env.Check != nil {
		env.Check.PrepareDone(scheme, vm)
	}
}

// NotifyDegraded reports a demand-paging fallback (nil-safe).
func (env *Env) NotifyDegraded(scheme string, vm *vmm.MicroVM, reason string) {
	if env.Check != nil {
		env.Check.Degraded(scheme, vm, reason)
	}
}

// NotifyPrefetchIssued reports one issued prefetch group (nil-safe).
func (env *Env) NotifyPrefetchIssued(p *sim.Proc, scheme string, vm *vmm.MicroVM, start, npages int64) {
	if env.Check != nil {
		env.Check.PrefetchIssued(p, scheme, vm, start, npages)
	}
}

// NotifyOffsetsLoaded reports a completed offset-schedule load (nil-safe).
func (env *Env) NotifyOffsetsLoaded(p *sim.Proc, scheme string, vm *vmm.MicroVM, groups int, took sim.Duration) {
	if env.Check != nil {
		env.Check.OffsetsLoaded(p, scheme, vm, groups, took)
	}
}

// Prefetcher is one snapshot-prefetching scheme.
type Prefetcher interface {
	// Name is the scheme's display name ("SnapBPF", "REAP", ...).
	Name() string

	// Capabilities reports the Table 1 feature matrix row.
	Capabilities() Capabilities

	// RestoreConfig returns the guest patches and KVM knobs the
	// scheme requires for an invocation-phase sandbox. salt perturbs
	// the guest allocator per sandbox.
	RestoreConfig(salt int) vmm.RestoreConfig

	// Record captures the function working set (§2.1 record phase).
	// Schemes without a record phase return nil immediately.
	Record(p *sim.Proc, env *Env) error

	// PrepareVM installs the sandbox's memory backend and starts
	// prefetching. Called after vmm.Host.Restore, before Invoke.
	PrepareVM(p *sim.Proc, env *Env, vm *vmm.MicroVM) error

	// FinishVM releases per-sandbox resources after the invocation.
	FinishVM(env *Env, vm *vmm.MicroVM)
}

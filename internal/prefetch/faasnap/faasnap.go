// Package faasnap implements the FaaSnap baseline (Ao et al., EuroSys
// '22) as characterized in §2.1–2.2 of the SnapBPF paper:
//
//   - the working set is captured with mincore(2) over the snapshot
//     mapping after a record invocation;
//   - working-set regions are coalesced across small gaps to bound the
//     number of mmap calls, inflating the serialized working-set file
//     (I/O amplification);
//   - each coalesced region of the WS file is mmap'ed over the
//     snapshot mapping, and a userspace thread prefetches it with
//     buffered reads, so concurrent sandboxes share the pages through
//     the page cache;
//   - the guest kernel zeroes pages on free, and a snapshot
//     pre-processing scan maps the zero regions to anonymous memory.
package faasnap

import (
	"fmt"

	"snapbpf/internal/pagecache"
	"snapbpf/internal/prefetch"
	"snapbpf/internal/sim"
	"snapbpf/internal/snapshot"
	"snapbpf/internal/vmm"
)

// DefaultCoalesceGap is the maximum gap (in pages) absorbed when
// merging working-set regions.
const DefaultCoalesceGap = 32

// FaaSnap is the mincore/mmap baseline.
type FaaSnap struct {
	// CoalesceGap is the region-merge threshold in pages; larger
	// values mean fewer mmap regions but a more inflated WS file.
	CoalesceGap int64

	// ChunkPages is the prefetch thread's buffered-read size.
	ChunkPages int64

	ws          *snapshot.RegionWS
	wsInode     *pagecache.Inode
	zeroRegions []snapshot.Group
}

// New returns FaaSnap with the paper's configuration.
func New() *FaaSnap {
	return &FaaSnap{CoalesceGap: DefaultCoalesceGap, ChunkPages: 128}
}

// Name implements prefetch.Prefetcher.
func (f *FaaSnap) Name() string { return "FaaSnap" }

// Capabilities implements prefetch.Prefetcher (Table 1 row).
func (f *FaaSnap) Capabilities() prefetch.Capabilities {
	return prefetch.Capabilities{
		Mechanism:             "mincore / mmap (User-space)",
		OnDiskWSSerialization: true,
		InMemoryWSDedup:       true,
		NeedsSnapshotScan:     true, // zero-page content scan
	}
}

// RestoreConfig implements prefetch.Prefetcher: FaaSnap patches the
// guest to zero pages on free.
func (f *FaaSnap) RestoreConfig(salt int) vmm.RestoreConfig {
	return vmm.RestoreConfig{ZeroOnFree: true, AllocSalt: salt}
}

// WorkingSet exposes the recorded artifact.
func (f *FaaSnap) WorkingSet() *snapshot.RegionWS { return f.ws }

// ZeroRegions exposes the zero-scan result.
func (f *FaaSnap) ZeroRegions() []snapshot.Group { return f.zeroRegions }

// scanZeroPages is the snapshot pre-processing pass: a full content
// scan of the memory file for zero pages (§2.2: FaaSnap "scans the
// snapshot file for zero pages and maps those zero regions of the
// snapshot file to anonymous memory").
func (f *FaaSnap) scanZeroPages(env *prefetch.Env) {
	var zeros []int64
	for pg, tag := range env.Image.PageTags {
		if tag == 0 {
			zeros = append(zeros, int64(pg))
		}
	}
	f.zeroRegions = snapshot.GroupPages(zeros)
}

// mapSandbox installs the FaaSnap memory layout: snapshot mapping with
// zero regions overlaid as anonymous memory.
func (f *FaaSnap) mapSandbox(p *sim.Proc, env *prefetch.Env, vm *vmm.MicroVM) {
	vm.MapSnapshotDefault(p)
	for _, z := range f.zeroRegions {
		vm.AS.MMapAnon(p, z.Start, z.NPages)
	}
}

// Record implements prefetch.Prefetcher: invoke once over the plain
// layout with readahead disabled, then harvest the page-cache
// residency with mincore and coalesce it into regions.
func (f *FaaSnap) Record(p *sim.Proc, env *prefetch.Env) error {
	f.scanZeroPages(env)
	vm, err := env.Host.Restore(p, env.Fn.Name+"-faasnap-record", env.Fn, env.Image, env.SnapInode,
		vmm.RestoreConfig{ZeroOnFree: true, AllocSalt: 0})
	if err != nil {
		return err
	}
	env.SnapInode.SetReadahead(0) // capture true faults only
	f.mapSandbox(p, env, vm)
	vm.MarkPrepared(p)
	if _, err := vm.Invoke(p, env.RecordTrace); err != nil {
		return err
	}
	vm.Shutdown()
	env.SnapInode.SetReadahead(-1)

	// mincore over the whole snapshot mapping.
	resident := env.SnapInode.Mincore(0, env.Image.NrPages)
	p.Sleep(env.Host.CM.Syscall * 4) // mincore calls over the region
	var pages []int64
	for pg, r := range resident {
		if r {
			pages = append(pages, int64(pg))
		}
	}
	regions := snapshot.CoalesceGroups(snapshot.GroupPages(pages), f.CoalesceGap)
	ws := &snapshot.RegionWS{Regions: regions, WSPages: int64(len(pages))}
	if err := ws.Validate(env.Image.NrPages); err != nil {
		return fmt.Errorf("faasnap: recorded invalid working set: %w", err)
	}
	f.ws = ws
	f.wsInode = env.Host.Cache.NewInode(env.Fn.Name+".faasnap-ws", ws.TotalPages())
	// The WS file stores the regions' snapshot contents back to back.
	tags := make([]uint64, 0, ws.TotalPages())
	for _, reg := range ws.Regions {
		for k := int64(0); k < reg.NPages; k++ {
			tags = append(tags, env.Image.PageTags[reg.Start+k])
		}
	}
	env.NotifyArtifact(f.wsInode, tags)
	env.NotifyRecordDone(f.Name(), ws.WSPages)
	return nil
}

// PrepareVM implements prefetch.Prefetcher: overlay each working-set
// region of the WS file over the snapshot mapping (one mmap per
// region), then prefetch the WS file sequentially with buffered reads
// from a userspace thread.
func (f *FaaSnap) PrepareVM(p *sim.Proc, env *prefetch.Env, vm *vmm.MicroVM) error {
	if f.ws == nil {
		return fmt.Errorf("faasnap: PrepareVM before Record")
	}
	f.mapSandbox(p, env, vm)

	if env.Faults.ArtifactCorrupt() {
		// The WS file is unreadable: skip the overlays and the prefetch
		// thread. The plain snapshot layout (with zero regions) demand
		// pages through the cache, whose buffered path absorbs device
		// errors with kernel-level retries.
		env.Faults.CountFallback()
		env.NotifyDegraded(f.Name(), vm, "corrupt ws artifact")
		env.NotifyPrepareDone(f.Name(), vm)
		return nil
	}

	// Each region becomes its own mapping of the WS file — the mmap
	// count FaaSnap's coalescing exists to bound.
	fileOff := int64(0)
	for _, reg := range f.ws.Regions {
		vm.AS.MMapFile(p, reg.Start, reg.NPages, f.wsInode, fileOff)
		fileOff += reg.NPages
	}

	wsInode, total, chunk := f.wsInode, f.ws.TotalPages(), f.ChunkPages
	env.Host.Eng.Go(vm.Name+"-faasnap-prefetch", func(pp *sim.Proc) {
		for base := int64(0); base < total; base += chunk {
			l := chunk
			if base+l > total {
				l = total - base
			}
			// Buffered reads through the page cache: this is what
			// enables cross-sandbox dedup, at the cost of the
			// userspace copy per page.
			env.NotifyPrefetchIssued(pp, f.Name(), vm, base, l)
			wsInode.BufferedRead(pp, base, l)
		}
	})
	env.NotifyPrepareDone(f.Name(), vm)
	return nil
}

// FinishVM implements prefetch.Prefetcher.
func (f *FaaSnap) FinishVM(env *prefetch.Env, vm *vmm.MicroVM) {}

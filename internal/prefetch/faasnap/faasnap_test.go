package faasnap

import (
	"testing"

	"snapbpf/internal/blockdev"
	"snapbpf/internal/prefetch"
	"snapbpf/internal/sim"
	"snapbpf/internal/vmm"
	"snapbpf/internal/workload"
)

func tinyFn() workload.Function {
	return workload.Function{
		Name: "tiny", MemMiB: 64, StateMiB: 32, WSMiB: 8, WSRegions: 10,
		AllocMiB: 4, ComputeMs: 5, WriteFrac: 0.15, Seed: 3,
	}
}

func newEnv(fn workload.Function) *prefetch.Env {
	h := vmm.NewHost(blockdev.MicronSATA5300())
	// FaaSnap snapshots come from a zero-on-free guest.
	img := vmm.BuildImage(fn, true)
	return &prefetch.Env{
		Host:        h,
		Fn:          fn,
		Image:       img,
		SnapInode:   h.RegisterSnapshot(fn.Name+".snapmem", img),
		RecordTrace: fn.GenTrace(),
		InvokeTrace: fn.GenTrace(),
	}
}

func record(t *testing.T, f *FaaSnap, env *prefetch.Env) {
	t.Helper()
	var err error
	env.Host.Eng.Go("rec", func(p *sim.Proc) { err = f.Record(p, env) })
	env.Host.Eng.Run()
	if err != nil {
		t.Fatal(err)
	}
}

func TestZeroScanFindsFreePool(t *testing.T) {
	fn := tinyFn()
	env := newEnv(fn)
	f := New()
	record(t, f, env)
	if len(f.ZeroRegions()) == 0 {
		t.Fatal("zero scan found nothing")
	}
	var zeroPages int64
	for _, z := range f.ZeroRegions() {
		zeroPages += z.NPages
	}
	if zeroPages != env.Image.ZeroPages() {
		t.Fatalf("scan found %d zero pages, image has %d", zeroPages, env.Image.ZeroPages())
	}
}

func TestMincoreCaptureExcludesAllocations(t *testing.T) {
	fn := tinyFn()
	env := newEnv(fn)
	f := New()
	record(t, f, env)
	ws := f.WorkingSet()
	if ws == nil || ws.WSPages == 0 {
		t.Fatal("no working set")
	}
	// Allocation faults hit the anon-mapped zero regions, never the
	// snapshot file, so mincore sees only true state pages.
	for _, reg := range ws.Regions {
		if reg.End() > fn.StatePages() {
			t.Fatalf("region %v beyond state area", reg)
		}
	}
	sum := env.RecordTrace.Summarize()
	if ws.WSPages != sum.UniquePages {
		t.Fatalf("ws pages = %d, trace unique = %d", ws.WSPages, sum.UniquePages)
	}
}

func TestCoalescingInflatesFile(t *testing.T) {
	fn := tinyFn()
	envA := newEnv(fn)
	a := New()
	a.CoalesceGap = 0
	record(t, a, envA)

	envB := newEnv(fn)
	b := New()
	b.CoalesceGap = 256
	record(t, b, envB)

	if len(b.WorkingSet().Regions) >= len(a.WorkingSet().Regions) {
		t.Fatalf("larger gap did not reduce regions: %d vs %d",
			len(b.WorkingSet().Regions), len(a.WorkingSet().Regions))
	}
	if b.WorkingSet().Inflation() <= a.WorkingSet().Inflation() {
		t.Fatalf("larger gap did not inflate the file: %.3f vs %.3f",
			b.WorkingSet().Inflation(), a.WorkingSet().Inflation())
	}
}

func TestInvokeSharesWSAcrossSandboxes(t *testing.T) {
	fn := tinyFn()
	env := newEnv(fn)
	f := New()
	record(t, f, env)
	env.Host.Cache.DropCaches()
	env.Host.Dev.ResetStats()

	var err error
	for i := 0; i < 4; i++ {
		env.Host.Eng.Go("vm", func(p *sim.Proc) {
			vm, rerr := env.Host.Restore(p, "vm", fn, env.Image, env.SnapInode, f.RestoreConfig(0))
			if rerr != nil {
				err = rerr
				return
			}
			if perr := f.PrepareVM(p, env, vm); perr != nil {
				err = perr
				return
			}
			if _, ierr := vm.Invoke(p, env.InvokeTrace); ierr != nil {
				err = ierr
			}
		})
	}
	env.Host.Eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Working set read once, shared via the page cache.
	wsBytes := f.WorkingSet().TotalPages() * 4096
	if got := env.Host.Dev.Stats().BytesRead; got > wsBytes*3/2 {
		t.Fatalf("device bytes = %d for 4 sandboxes, ws file is %d (dedup broken)", got, wsBytes)
	}
}

func TestRestoreConfigUsesZeroOnFree(t *testing.T) {
	if !New().RestoreConfig(0).ZeroOnFree {
		t.Fatal("FaaSnap must run the zero-on-free guest patch")
	}
}

func TestCapabilities(t *testing.T) {
	c := New().Capabilities()
	if !c.OnDiskWSSerialization || !c.InMemoryWSDedup || c.StatelessAllocFiltering || !c.NeedsSnapshotScan {
		t.Fatalf("capabilities = %+v", c)
	}
}

func TestPrepareBeforeRecordFails(t *testing.T) {
	fn := tinyFn()
	env := newEnv(fn)
	f := New()
	var err error
	env.Host.Eng.Go("vm", func(p *sim.Proc) {
		vm, _ := env.Host.Restore(p, "vm0", fn, env.Image, env.SnapInode, f.RestoreConfig(0))
		err = f.PrepareVM(p, env, vm)
	})
	env.Host.Eng.Run()
	if err == nil {
		t.Fatal("PrepareVM before Record accepted")
	}
}

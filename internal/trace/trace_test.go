package trace

import (
	"testing"
	"time"
)

func TestSummarize(t *testing.T) {
	tr := &Trace{Ops: []Op{
		{Kind: OpAccess, Page: 1},
		{Kind: OpAccess, Page: 1, Write: true},
		{Kind: OpAccess, Page: 2},
		{Kind: OpAlloc, Handle: 1, NPages: 4},
		{Kind: OpTouch, Handle: 1, Offset: 0, Write: true},
		{Kind: OpFree, Handle: 1},
		{Kind: OpCompute, Gap: 5 * time.Millisecond},
	}}
	s := tr.Summarize()
	if s.Accesses != 4 {
		t.Errorf("Accesses = %d", s.Accesses)
	}
	if s.UniquePages != 2 {
		t.Errorf("UniquePages = %d", s.UniquePages)
	}
	if s.Writes != 2 {
		t.Errorf("Writes = %d", s.Writes)
	}
	if s.AllocPages != 4 {
		t.Errorf("AllocPages = %d", s.AllocPages)
	}
	if s.FreedAllocs != 1 {
		t.Errorf("FreedAllocs = %d", s.FreedAllocs)
	}
	if s.TotalCompute != 5*time.Millisecond {
		t.Errorf("TotalCompute = %v", s.TotalCompute)
	}
}

func TestStatePagesFirstAccessOrder(t *testing.T) {
	tr := &Trace{Ops: []Op{
		{Kind: OpAccess, Page: 9},
		{Kind: OpAccess, Page: 2},
		{Kind: OpAccess, Page: 9},
		{Kind: OpAccess, Page: 5},
	}}
	got := tr.StatePages()
	want := []int64{9, 2, 5}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	bad := []Trace{
		{Ops: []Op{{Kind: OpTouch, Handle: 1}}},                                                   // touch before alloc
		{Ops: []Op{{Kind: OpAlloc, Handle: 1, NPages: 2}, {Kind: OpAlloc, Handle: 1, NPages: 2}}}, // realloc
		{Ops: []Op{{Kind: OpFree, Handle: 1}}},                                                    // free dead
		{Ops: []Op{{Kind: OpAlloc, Handle: 1, NPages: 2}, {Kind: OpTouch, Handle: 1, Offset: 2}}}, // offset OOB
		{Ops: []Op{{Kind: OpAlloc, Handle: 1}}},                                                   // zero alloc
		{Ops: []Op{{Kind: OpAccess, Page: -1}}},                                                   // negative page
		{Ops: []Op{{Kind: OpCompute, Gap: -time.Second}}},                                         // negative gap
		{Ops: []Op{{Kind: OpKind(99)}}},                                                           // unknown
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Errorf("bad trace %d accepted", i)
		}
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	tr := &Trace{Ops: []Op{
		{Kind: OpAlloc, Handle: 3, NPages: 8},
		{Kind: OpTouch, Handle: 3, Offset: 7, Write: true},
		{Kind: OpFree, Handle: 3},
		{Kind: OpAlloc, Handle: 3, NPages: 2}, // reuse after free is fine
		{Kind: OpAccess, Page: 0},
	}}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

package trace_test

import (
	"bytes"
	"testing"
	"time"

	"snapbpf/internal/trace"
	"snapbpf/internal/workload"
)

// seedTraces builds small hand-written traces plus real recorded ones
// from the workload suite (external test package: workload depends on
// trace, so the inner package cannot import it).
func seedTraces() []*trace.Trace {
	seeds := []*trace.Trace{
		{},
		{Ops: []trace.Op{
			{Kind: trace.OpAccess, Page: 0},
			{Kind: trace.OpAccess, Page: 17, Write: true},
			{Kind: trace.OpCompute, Gap: 250 * time.Microsecond},
			{Kind: trace.OpAlloc, Handle: 1, NPages: 4},
			{Kind: trace.OpTouch, Handle: 1, Offset: 3},
			{Kind: trace.OpFree, Handle: 1},
		}},
	}
	for _, fn := range workload.Suite()[:2] {
		seeds = append(seeds, fn.GenTrace())
	}
	return seeds
}

// FuzzTraceRoundTrip checks that serialization is a canonical fixed
// point: any bytes Read accepts re-encode to a form that decodes to
// the same trace and re-encodes byte-identically. Write normalizes
// non-canonical input (reserved bytes, boolean flags), so the fixed
// point is reached after one round trip, not zero.
func FuzzTraceRoundTrip(f *testing.F) {
	for _, t := range seedTraces() {
		var buf bytes.Buffer
		if err := t.Write(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// Non-canonical and corrupt variants: flag byte 2, dirty reserved
	// bytes, flipped payload bit — Read must either reject them or
	// produce a trace that round-trips canonically.
	var buf bytes.Buffer
	if err := seedTraces()[1].Write(&buf); err != nil {
		f.Fatal(err)
	}
	for _, mut := range []struct {
		off int
		val byte
	}{{13, 2}, {14, 0x5a}, {20, 0xff}} {
		b := append([]byte(nil), buf.Bytes()...)
		b[mut.off] = mut.val
		f.Add(b)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		t1, err := trace.Read(bytes.NewReader(data))
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		var b2 bytes.Buffer
		if err := t1.Write(&b2); err != nil {
			t.Fatalf("decoded trace does not re-encode: %v", err)
		}
		t2, err := trace.Read(bytes.NewReader(b2.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded trace does not decode: %v", err)
		}
		var b3 bytes.Buffer
		if err := t2.Write(&b3); err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(b2.Bytes(), b3.Bytes()) {
			t.Fatalf("encoding is not a fixed point:\n b2=%x\n b3=%x", b2.Bytes(), b3.Bytes())
		}
	})
}

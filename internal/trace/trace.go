// Package trace defines the guest-side memory access traces that
// drive function invocations. A trace is the behavioural model of one
// serverless function: which snapshot-state pages it touches in what
// order, where it allocates and frees ephemeral memory, and how much
// computation happens in between. The VMM replays traces through the
// simulated KVM nested-paging path.
package trace

import (
	"fmt"
	"time"
)

// OpKind enumerates trace operations.
type OpKind uint8

// Trace operations.
const (
	// OpAccess touches a snapshot-state guest frame (Page).
	OpAccess OpKind = iota
	// OpAlloc allocates NPages ephemeral frames under Handle via the
	// guest buddy allocator.
	OpAlloc
	// OpTouch accesses page Offset of allocation Handle.
	OpTouch
	// OpFree releases allocation Handle.
	OpFree
	// OpCompute spends Gap of pure CPU time.
	OpCompute
)

func (k OpKind) String() string {
	switch k {
	case OpAccess:
		return "access"
	case OpAlloc:
		return "alloc"
	case OpTouch:
		return "touch"
	case OpFree:
		return "free"
	case OpCompute:
		return "compute"
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// Op is one trace operation.
type Op struct {
	Kind   OpKind
	Page   int64         // OpAccess: guest frame number
	Handle int32         // OpAlloc / OpTouch / OpFree
	NPages int32         // OpAlloc: allocation size in pages
	Offset int32         // OpTouch: page offset within the allocation
	Write  bool          // OpAccess / OpTouch: write access
	Gap    time.Duration // OpCompute: compute time
}

// Trace is an ordered operation list.
type Trace struct {
	Ops []Op
}

// Summary aggregates trace properties for tests and reporting.
type Summary struct {
	Accesses     int64
	UniquePages  int64 // distinct state pages accessed
	Writes       int64
	AllocPages   int64
	FreedAllocs  int64
	TotalCompute time.Duration
}

// Summarize computes aggregate statistics.
func (t *Trace) Summarize() Summary {
	var s Summary
	uniq := make(map[int64]bool)
	for _, op := range t.Ops {
		switch op.Kind {
		case OpAccess:
			s.Accesses++
			uniq[op.Page] = true
			if op.Write {
				s.Writes++
			}
		case OpTouch:
			s.Accesses++
			if op.Write {
				s.Writes++
			}
		case OpAlloc:
			s.AllocPages += int64(op.NPages)
		case OpFree:
			s.FreedAllocs++
		case OpCompute:
			s.TotalCompute += op.Gap
		}
	}
	s.UniquePages = int64(len(uniq))
	return s
}

// StatePages returns the distinct snapshot-state pages the trace
// accesses, in first-access order — the ground-truth working set.
func (t *Trace) StatePages() []int64 {
	seen := make(map[int64]bool)
	var out []int64
	for _, op := range t.Ops {
		if op.Kind == OpAccess && !seen[op.Page] {
			seen[op.Page] = true
			out = append(out, op.Page)
		}
	}
	return out
}

// Validate checks structural invariants: handles are allocated before
// use, not double-allocated, offsets in range, frees match allocs.
func (t *Trace) Validate() error {
	live := make(map[int32]int32) // handle -> npages
	for i, op := range t.Ops {
		switch op.Kind {
		case OpAccess:
			if op.Page < 0 {
				return fmt.Errorf("trace: op %d: negative page", i)
			}
		case OpAlloc:
			if op.NPages <= 0 {
				return fmt.Errorf("trace: op %d: non-positive alloc", i)
			}
			if _, dup := live[op.Handle]; dup {
				return fmt.Errorf("trace: op %d: handle %d reallocated", i, op.Handle)
			}
			live[op.Handle] = op.NPages
		case OpTouch:
			n, ok := live[op.Handle]
			if !ok {
				return fmt.Errorf("trace: op %d: touch of dead handle %d", i, op.Handle)
			}
			if op.Offset < 0 || op.Offset >= n {
				return fmt.Errorf("trace: op %d: offset %d outside allocation of %d pages", i, op.Offset, n)
			}
		case OpFree:
			if _, ok := live[op.Handle]; !ok {
				return fmt.Errorf("trace: op %d: free of dead handle %d", i, op.Handle)
			}
			delete(live, op.Handle)
		case OpCompute:
			if op.Gap < 0 {
				return fmt.Errorf("trace: op %d: negative gap", i)
			}
		default:
			return fmt.Errorf("trace: op %d: unknown kind %d", i, op.Kind)
		}
	}
	return nil
}

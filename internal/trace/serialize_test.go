package trace

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"
)

func sampleTrace() *Trace {
	return &Trace{Ops: []Op{
		{Kind: OpAccess, Page: 12345, Write: true},
		{Kind: OpCompute, Gap: 250 * time.Microsecond},
		{Kind: OpAlloc, Handle: 3, NPages: 64},
		{Kind: OpTouch, Handle: 3, Offset: 63, Write: true},
		{Kind: OpFree, Handle: 3},
		{Kind: OpAccess, Page: 1 << 40},
	}}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ops) != len(tr.Ops) {
		t.Fatalf("ops = %d", len(got.Ops))
	}
	for i := range tr.Ops {
		if got.Ops[i] != tr.Ops[i] {
			t.Fatalf("op %d: %+v != %+v", i, got.Ops[i], tr.Ops[i])
		}
	}
}

func TestTraceChecksum(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().Write(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[20] ^= 0xff
	if _, err := Read(bytes.NewReader(b)); err == nil {
		t.Fatal("corrupted trace accepted")
	}
}

func TestTraceRejectsInvalidOnWrite(t *testing.T) {
	bad := &Trace{Ops: []Op{{Kind: OpFree, Handle: 9}}}
	var buf bytes.Buffer
	if err := bad.Write(&buf); err == nil {
		t.Fatal("invalid trace serialized")
	}
}

func TestTraceTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes()[:30])); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestTraceBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.trace")
	if err := sampleTrace().SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ops) != 6 {
		t.Fatalf("ops = %d", len(got.Ops))
	}
}

func TestGapMicrosecondGranularity(t *testing.T) {
	tr := &Trace{Ops: []Op{{Kind: OpCompute, Gap: 1500 * time.Nanosecond}}}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Sub-microsecond precision is dropped by the format.
	if got.Ops[0].Gap != 1*time.Microsecond {
		t.Fatalf("gap = %v", got.Ops[0].Gap)
	}
}

package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"
)

// On-disk trace format (.trace): header (magic, version, op count),
// fixed 24-byte op records, CRC32 trailer. Traces are shareable
// workload artifacts: a recorded production invocation can be replayed
// against any prefetching scheme.

const (
	traceMagic   = 0x54524345 // "TRCE"
	traceVersion = 1
	opRecordSize = 24
)

// Write serializes the trace to w.
func (t *Trace) Write(w io.Writer) error {
	if err := t.Validate(); err != nil {
		return fmt.Errorf("trace: refusing to write invalid trace: %w", err)
	}
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)
	hdr := []uint32{traceMagic, traceVersion, uint32(len(t.Ops))}
	if err := binary.Write(mw, binary.LittleEndian, hdr); err != nil {
		return err
	}
	var rec [opRecordSize]byte
	for i := range t.Ops {
		op := &t.Ops[i]
		rec[0] = byte(op.Kind)
		if op.Write {
			rec[1] = 1
		} else {
			rec[1] = 0
		}
		binary.LittleEndian.PutUint16(rec[2:], 0) // reserved
		binary.LittleEndian.PutUint32(rec[4:], uint32(op.Handle))
		binary.LittleEndian.PutUint64(rec[8:], uint64(op.Page))
		binary.LittleEndian.PutUint32(rec[16:], uint32(op.NPages))
		// Offset and Gap share the final word: Gap only appears on
		// compute ops, Offset only on touches.
		if op.Kind == OpCompute {
			binary.LittleEndian.PutUint32(rec[20:], uint32(op.Gap/time.Microsecond))
		} else {
			binary.LittleEndian.PutUint32(rec[20:], uint32(op.Offset))
		}
		if _, err := mw.Write(rec[:]); err != nil {
			return err
		}
	}
	return binary.Write(w, binary.LittleEndian, crc.Sum32())
}

// Read parses a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	crc := crc32.NewIEEE()
	tr := io.TeeReader(r, crc)
	var hdr [3]uint32
	if err := binary.Read(tr, binary.LittleEndian, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if hdr[0] != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %#x", hdr[0])
	}
	if hdr[1] != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", hdr[1])
	}
	n := int(hdr[2])
	if n < 0 || n > 1<<28 {
		return nil, fmt.Errorf("trace: implausible op count %d", n)
	}
	// Grow incrementally rather than trusting the header's count for a
	// single up-front allocation: a forged header must not make a
	// 14-byte input allocate gigabytes before truncation is noticed.
	alloc := n
	if alloc > 1<<16 {
		alloc = 1 << 16
	}
	t := &Trace{Ops: make([]Op, 0, alloc)}
	var rec [opRecordSize]byte
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(tr, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: truncated at op %d: %w", i, err)
		}
		t.Ops = append(t.Ops, Op{})
		op := &t.Ops[i]
		op.Kind = OpKind(rec[0])
		op.Write = rec[1] != 0
		op.Handle = int32(binary.LittleEndian.Uint32(rec[4:]))
		op.Page = int64(binary.LittleEndian.Uint64(rec[8:]))
		op.NPages = int32(binary.LittleEndian.Uint32(rec[16:]))
		last := binary.LittleEndian.Uint32(rec[20:])
		if op.Kind == OpCompute {
			op.Gap = time.Duration(last) * time.Microsecond
		} else {
			op.Offset = int32(last)
		}
	}
	sum := crc.Sum32()
	var want uint32
	if err := binary.Read(r, binary.LittleEndian, &want); err != nil {
		return nil, fmt.Errorf("trace: missing checksum: %w", err)
	}
	if sum != want {
		return nil, fmt.Errorf("trace: checksum mismatch")
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("trace: decoded trace invalid: %w", err)
	}
	return t, nil
}

// SaveFile writes the trace to path.
func (t *Trace) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := t.Write(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a trace from path.
func LoadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(bufio.NewReader(f))
}

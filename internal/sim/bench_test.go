package sim

import "testing"

// Microbenchmarks for the simulation kernel: event dispatch and
// process context-switch rates bound how large a workload the
// experiments can replay.

func BenchmarkScheduleDispatch(b *testing.B) {
	e := NewEngine()
	n := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Duration(i), func() { n++ })
	}
	e.Run()
	if n != b.N {
		b.Fatal("lost events")
	}
}

func BenchmarkProcSleepSwitch(b *testing.B) {
	e := NewEngine()
	e.Go("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	e.Run()
}

func BenchmarkWaiterFireWake(b *testing.B) {
	e := NewEngine()
	for i := 0; i < b.N; i++ {
		w := e.NewWaiter()
		e.Go("w", func(p *Proc) { p.Wait(w) })
		e.Schedule(1, w.Fire)
	}
	b.ResetTimer()
	e.Run()
}

// Package sim implements a deterministic discrete-event simulation
// kernel with goroutine-backed sequential processes.
//
// The engine advances a virtual clock (nanosecond resolution) through a
// priority queue of events. Simulated activities — a VMM restoring a
// snapshot, a function faulting on guest memory, an SSD completing a
// read — are modelled either as plain scheduled callbacks or as
// Processes: goroutines that run one at a time under the engine's
// control and can block on virtual time (Sleep) or on conditions
// (Waiter). Exactly one goroutine (the engine or a single process) is
// runnable at any instant, so simulations are fully deterministic:
// events at equal timestamps fire in scheduling order.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds. It converts
// directly from time.Duration.
type Duration = time.Duration

// String formats the time as a duration since simulation start.
func (t Time) String() string { return time.Duration(t).String() }

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among equal timestamps
	fn  func()
}

// Engine is a discrete-event simulation engine. The zero value is not
// usable; create engines with NewEngine.
type Engine struct {
	now    Time
	queue  []*event // binary min-heap ordered by (at, seq)
	free   []*event // recycled events, so steady-state dispatch allocates nothing
	batch  []*event // reusable buffer for same-timestamp dispatch
	seq    uint64
	nprocs int // live (not yet finished) processes
	obs    Observer

	// running is closed-loop control for process handoff: the engine
	// resumes a process by sending on its resume channel and waits on
	// yield until the process blocks or finishes.
	yield chan struct{}
}

// Observer receives engine scheduling events. It exists for the
// correctness harness (internal/check): a nil observer costs one
// branch per schedule/dispatch, and observers must not mutate
// simulation state.
type Observer interface {
	// EventScheduled fires for every Schedule/ScheduleAt call with the
	// clamped target time (always >= Now at call time).
	EventScheduled(at Time)
	// ClockAdvanced fires each time dispatch moves the clock to a new
	// timestamp, before the events at that instant run.
	ClockAdvanced(now Time)
}

// SetObserver installs obs (nil disables observation).
func (e *Engine) SetObserver(obs Observer) { e.obs = obs }

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{yield: make(chan struct{})}
}

// eventLess orders the heap by timestamp, FIFO among equal timestamps.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts ev into the heap.
func (e *Engine) push(ev *event) {
	q := append(e.queue, ev)
	// Sift up.
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(q[i], q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	e.queue = q
}

// pop removes and returns the earliest event. The caller recycles it
// via recycle once the callback has run.
func (e *Engine) pop() *event {
	q := e.queue
	ev := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = nil
	q = q[:n]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && eventLess(q[l], q[smallest]) {
			smallest = l
		}
		if r < n && eventLess(q[r], q[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		q[i], q[smallest] = q[smallest], q[i]
		i = smallest
	}
	e.queue = q
	return ev
}

// alloc returns a zeroed event, reusing a recycled one when available.
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &event{}
}

// maxFree bounds the free list: steady-state simulations interleave
// scheduling and dispatch, so a small pool captures nearly all reuse,
// while a burst of one-shot events (everything scheduled up front)
// must not leave a queue-sized pool behind.
const maxFree = 1024

// recycle returns a dispatched event to the free list.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	if len(e.free) < maxFree {
		e.free = append(e.free, ev)
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Schedule runs fn at the current time plus delay. A negative delay is
// treated as zero. Scheduling is FIFO among events with equal times.
func (e *Engine) Schedule(delay Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.seq++
	ev := e.alloc()
	ev.at, ev.seq, ev.fn = e.now.Add(delay), e.seq, fn
	if e.obs != nil {
		e.obs.EventScheduled(ev.at)
	}
	e.push(ev)
}

// ScheduleAt runs fn at absolute time at (clamped to now).
func (e *Engine) ScheduleAt(at Time, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	ev := e.alloc()
	ev.at, ev.seq, ev.fn = at, e.seq, fn
	if e.obs != nil {
		e.obs.EventScheduled(ev.at)
	}
	e.push(ev)
}

// dispatchBatch pops every event carrying the head timestamp and runs
// them in sequence order. Batching advances the clock once per distinct
// timestamp and lets events scheduled *during* the batch (which always
// carry higher sequence numbers) land in the heap without disturbing
// the events already drained for this instant.
func (e *Engine) dispatchBatch() {
	ev := e.pop()
	e.now = ev.at
	if e.obs != nil {
		e.obs.ClockAdvanced(e.now)
	}
	if len(e.queue) == 0 || e.queue[0].at != ev.at {
		// Fast path: a lone event at this instant.
		ev.fn()
		e.recycle(ev)
		return
	}
	t := ev.at
	batch := append(e.batch[:0], ev)
	e.batch = nil // reentrant dispatch (an fn draining the engine) gets its own buffer
	for len(e.queue) > 0 && e.queue[0].at == t {
		batch = append(batch, e.pop())
	}
	for i, ev := range batch {
		ev.fn()
		batch[i] = nil
		e.recycle(ev)
	}
	e.batch = batch[:0]
}

// Run processes events until the queue is empty. It returns the final
// virtual time. Run panics if a process is still blocked when the
// queue drains (a deadlock in the simulated system).
func (e *Engine) Run() Time {
	for len(e.queue) > 0 {
		e.dispatchBatch()
	}
	if e.nprocs > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) blocked with no pending events at t=%v", e.nprocs, e.now))
	}
	return e.now
}

// RunUntil processes events with timestamps <= deadline and then stops,
// setting the clock to deadline. Blocked processes are left blocked.
func (e *Engine) RunUntil(deadline Time) Time {
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.dispatchBatch()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Proc is a sequential simulated process backed by a goroutine. All
// Proc methods must be called from the process's own goroutine (inside
// the function passed to Go).
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	done   bool
}

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Go starts fn as a simulated process at the current virtual time.
// The process runs when the engine dispatches its start event.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	return e.GoAfter(0, name, fn)
}

// GoAfter starts fn as a simulated process after delay.
func (e *Engine) GoAfter(delay Duration, name string, fn func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name, resume: make(chan struct{})}
	e.nprocs++
	e.Schedule(delay, func() {
		go func() {
			<-p.resume
			fn(p)
			p.done = true
			e.nprocs--
			e.yield <- struct{}{}
		}()
		p.run()
	})
	return p
}

// run hands control to the process goroutine and waits for it to block
// (Sleep/Wait) or finish.
func (p *Proc) run() {
	p.resume <- struct{}{}
	<-p.eng.yield
}

// block suspends the process goroutine and returns control to the
// engine; the process resumes when something sends on p.resume.
func (p *Proc) block() {
	p.eng.yield <- struct{}{}
	<-p.resume
}

// Sleep advances the process by d of virtual time.
func (p *Proc) Sleep(d Duration) {
	if d <= 0 {
		// Even a zero sleep is a scheduling point (FIFO fairness).
		d = 0
	}
	p.eng.Schedule(d, p.run)
	p.block()
}

// Waiter is a single-use completion signal that processes can block on
// and callbacks can fire. Fire may be called before or after Wait;
// multiple processes may wait on the same Waiter.
type Waiter struct {
	eng     *Engine
	fired   bool
	waiters []*Proc
	at      Time // time of Fire, valid once fired
}

// NewWaiter returns an unfired Waiter.
func (e *Engine) NewWaiter() *Waiter { return &Waiter{eng: e} }

// Fired reports whether Fire has been called.
func (w *Waiter) Fired() bool { return w.fired }

// FiredAt returns the virtual time at which the waiter fired.
// It is only meaningful once Fired reports true.
func (w *Waiter) FiredAt() Time { return w.at }

// Fire completes the waiter, waking all current and future waiters.
// Firing twice is a no-op.
func (w *Waiter) Fire() {
	if w.fired {
		return
	}
	w.fired = true
	w.at = w.eng.now
	ws := w.waiters
	w.waiters = nil
	for _, p := range ws {
		proc := p
		w.eng.Schedule(0, proc.run)
	}
}

// Wait blocks the process until the waiter fires. If it already fired,
// Wait returns immediately without yielding.
func (p *Proc) Wait(w *Waiter) {
	if w.fired {
		return
	}
	w.waiters = append(w.waiters, p)
	p.block()
}

// WaitAll blocks until every waiter in ws has fired.
func (p *Proc) WaitAll(ws ...*Waiter) {
	for _, w := range ws {
		p.Wait(w)
	}
}

// Semaphore is a counting semaphore over virtual time, used to model
// bounded resources such as device queue slots.
type Semaphore struct {
	eng   *Engine
	avail int
	queue []*Proc
}

// NewSemaphore returns a semaphore with n initial permits.
func (e *Engine) NewSemaphore(n int) *Semaphore {
	if n < 0 {
		panic("sim: negative semaphore capacity")
	}
	return &Semaphore{eng: e, avail: n}
}

// Acquire takes one permit, blocking the process until one is free.
// Wakeups are FIFO.
func (p *Proc) Acquire(s *Semaphore) {
	if s.avail > 0 {
		s.avail--
		return
	}
	s.queue = append(s.queue, p)
	p.block()
}

// Release returns one permit, waking the oldest blocked process if any.
// It may be called from any context (process or callback).
func (s *Semaphore) Release() {
	if len(s.queue) > 0 {
		p := s.queue[0]
		s.queue = s.queue[1:]
		s.eng.Schedule(0, p.run)
		return
	}
	s.avail++
}

// Available returns the number of free permits.
func (s *Semaphore) Available() int { return s.avail }

// QueueLen returns the number of processes blocked in Acquire.
func (s *Semaphore) QueueLen() int { return len(s.queue) }

package sim

import (
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30*time.Nanosecond, func() { got = append(got, 3) })
	e.Schedule(10*time.Nanosecond, func() { got = append(got, 1) })
	e.Schedule(20*time.Nanosecond, func() { got = append(got, 2) })
	end := e.Run()
	if end != Time(30) {
		t.Fatalf("end time = %v, want 30ns", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestScheduleFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*time.Nanosecond, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("FIFO violated: got %v", got)
		}
	}
}

func TestScheduleNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(-time.Second, func() { ran = true })
	if end := e.Run(); end != 0 {
		t.Fatalf("end = %v, want 0", end)
	}
	if !ran {
		t.Fatal("event did not run")
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.Schedule(10, func() {
		times = append(times, e.Now())
		e.Schedule(5, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Fatalf("times = %v, want [10 15]", times)
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEngine()
	var marks []Time
	e.Go("p", func(p *Proc) {
		marks = append(marks, p.Now())
		p.Sleep(100)
		marks = append(marks, p.Now())
		p.Sleep(50)
		marks = append(marks, p.Now())
	})
	e.Run()
	want := []Time{0, 100, 150}
	if len(marks) != len(want) {
		t.Fatalf("marks = %v, want %v", marks, want)
	}
	for i := range want {
		if marks[i] != want[i] {
			t.Fatalf("marks = %v, want %v", marks, want)
		}
	}
}

func TestTwoProcsInterleave(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Go("a", func(p *Proc) {
		order = append(order, "a0")
		p.Sleep(10)
		order = append(order, "a10")
		p.Sleep(20)
		order = append(order, "a30")
	})
	e.Go("b", func(p *Proc) {
		order = append(order, "b0")
		p.Sleep(15)
		order = append(order, "b15")
	})
	e.Run()
	want := []string{"a0", "b0", "a10", "b15", "a30"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestWaiterFireBeforeWait(t *testing.T) {
	e := NewEngine()
	w := e.NewWaiter()
	e.Schedule(5, func() { w.Fire() })
	var at Time
	e.GoAfter(20, "p", func(p *Proc) {
		p.Wait(w) // already fired: no yield
		at = p.Now()
	})
	e.Run()
	if at != 20 {
		t.Fatalf("resumed at %v, want 20", at)
	}
	if !w.Fired() || w.FiredAt() != 5 {
		t.Fatalf("FiredAt = %v, want 5", w.FiredAt())
	}
}

func TestWaiterBlocksUntilFire(t *testing.T) {
	e := NewEngine()
	w := e.NewWaiter()
	var at Time
	e.Go("p", func(p *Proc) {
		p.Wait(w)
		at = p.Now()
	})
	e.Schedule(77, func() { w.Fire() })
	e.Run()
	if at != 77 {
		t.Fatalf("resumed at %v, want 77", at)
	}
}

func TestWaiterMultipleWaiters(t *testing.T) {
	e := NewEngine()
	w := e.NewWaiter()
	woke := 0
	for i := 0; i < 5; i++ {
		e.Go("p", func(p *Proc) {
			p.Wait(w)
			woke++
		})
	}
	e.Schedule(10, func() { w.Fire() })
	e.Run()
	if woke != 5 {
		t.Fatalf("woke = %d, want 5", woke)
	}
}

func TestWaiterDoubleFire(t *testing.T) {
	e := NewEngine()
	w := e.NewWaiter()
	e.Schedule(1, func() { w.Fire() })
	e.Schedule(2, func() { w.Fire() })
	e.Run()
	if w.FiredAt() != 1 {
		t.Fatalf("FiredAt = %v, want 1 (first fire wins)", w.FiredAt())
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	e := NewEngine()
	s := e.NewSemaphore(2)
	active, maxActive := 0, 0
	for i := 0; i < 6; i++ {
		e.Go("w", func(p *Proc) {
			p.Acquire(s)
			active++
			if active > maxActive {
				maxActive = active
			}
			p.Sleep(100)
			active--
			s.Release()
		})
	}
	end := e.Run()
	if maxActive != 2 {
		t.Fatalf("maxActive = %d, want 2", maxActive)
	}
	// 6 jobs of 100ns with parallelism 2 => 300ns.
	if end != 300 {
		t.Fatalf("end = %v, want 300", end)
	}
}

func TestSemaphoreFIFO(t *testing.T) {
	e := NewEngine()
	s := e.NewSemaphore(1)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		e.Go("w", func(p *Proc) {
			p.Acquire(s)
			order = append(order, i)
			p.Sleep(10)
			s.Release()
		})
	}
	e.Run()
	for i := 0; i < 4; i++ {
		if order[i] != i {
			t.Fatalf("order = %v, want FIFO", order)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(10, func() { ran++ })
	e.Schedule(20, func() { ran++ })
	e.Schedule(30, func() { ran++ })
	e.RunUntil(20)
	if ran != 2 {
		t.Fatalf("ran = %d, want 2", ran)
	}
	if e.Now() != 20 {
		t.Fatalf("now = %v, want 20", e.Now())
	}
	e.Run()
	if ran != 3 {
		t.Fatalf("ran = %d, want 3 after Run", ran)
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	e := NewEngine()
	w := e.NewWaiter()
	e.Go("stuck", func(p *Proc) { p.Wait(w) })
	e.Run()
}

func TestGoAfter(t *testing.T) {
	e := NewEngine()
	var start Time
	e.GoAfter(42, "late", func(p *Proc) { start = p.Now() })
	e.Run()
	if start != 42 {
		t.Fatalf("start = %v, want 42", start)
	}
}

func TestTimeString(t *testing.T) {
	if got := Time(1500).String(); got != "1.5µs" {
		t.Fatalf("String = %q", got)
	}
}

func TestProcSpawnsProc(t *testing.T) {
	e := NewEngine()
	var childAt Time
	e.Go("parent", func(p *Proc) {
		p.Sleep(10)
		p.Engine().Go("child", func(c *Proc) {
			c.Sleep(5)
			childAt = c.Now()
		})
		p.Sleep(100)
	})
	e.Run()
	if childAt != 15 {
		t.Fatalf("childAt = %v, want 15", childAt)
	}
}

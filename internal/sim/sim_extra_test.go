package sim

import (
	"testing"
	"time"
)

func TestScheduleAtClampsToNow(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Schedule(100, func() {
		e.ScheduleAt(50, func() { at = e.Now() }) // in the past
	})
	e.Run()
	if at != 100 {
		t.Fatalf("past-scheduled event ran at %v, want clamped to 100", at)
	}
}

func TestSemaphoreAccessors(t *testing.T) {
	e := NewEngine()
	s := e.NewSemaphore(2)
	if s.Available() != 2 || s.QueueLen() != 0 {
		t.Fatalf("fresh semaphore: avail=%d queue=%d", s.Available(), s.QueueLen())
	}
	for i := 0; i < 3; i++ {
		e.Go("w", func(p *Proc) {
			p.Acquire(s)
			p.Sleep(10)
			s.Release()
		})
	}
	e.RunUntil(5)
	if s.Available() != 0 {
		t.Fatalf("avail = %d mid-run", s.Available())
	}
	if s.QueueLen() != 1 {
		t.Fatalf("queue = %d mid-run", s.QueueLen())
	}
	e.Run()
	if s.Available() != 2 {
		t.Fatalf("avail = %d after drain", s.Available())
	}
}

func TestNegativeSemaphorePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEngine().NewSemaphore(-1)
}

func TestProcNameAndEngineAccessors(t *testing.T) {
	e := NewEngine()
	e.Go("worker", func(p *Proc) {
		if p.Name() != "worker" {
			t.Errorf("Name = %q", p.Name())
		}
		if p.Engine() != e {
			t.Error("Engine accessor broken")
		}
		if p.Now() != e.Now() {
			t.Error("Now mismatch")
		}
	})
	e.Run()
}

func TestZeroSleepIsSchedulingPoint(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Go("a", func(p *Proc) {
		order = append(order, "a1")
		p.Sleep(0)
		order = append(order, "a2")
	})
	e.Go("b", func(p *Proc) {
		order = append(order, "b1")
	})
	e.Run()
	// b1 must interleave between a1 and a2 (zero sleep yields).
	if len(order) != 3 || order[1] != "b1" {
		t.Fatalf("order = %v", order)
	}
}

func TestManyProcsStress(t *testing.T) {
	e := NewEngine()
	done := 0
	for i := 0; i < 2000; i++ {
		i := i
		e.Go("p", func(p *Proc) {
			p.Sleep(Duration(i % 97))
			done++
		})
	}
	e.Run()
	if done != 2000 {
		t.Fatalf("done = %d", done)
	}
}

func TestRunUntilThenResume(t *testing.T) {
	e := NewEngine()
	var marks []Time
	e.Go("p", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(100 * time.Nanosecond)
			marks = append(marks, p.Now())
		}
	})
	e.RunUntil(150)
	if len(marks) != 1 {
		t.Fatalf("marks after RunUntil = %v", marks)
	}
	e.Run()
	if len(marks) != 3 {
		t.Fatalf("marks after Run = %v", marks)
	}
}

func TestSameTimestampBatchFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	// A burst of events at one instant, some of which schedule further
	// zero-delay events mid-batch: dispatch must stay strictly FIFO.
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() {
			order = append(order, i)
			if i < 3 {
				e.Schedule(0, func() { order = append(order, 100+i) })
			}
		})
	}
	e.Run()
	want := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 100, 101, 102}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEventReuseAcrossRuns(t *testing.T) {
	// Interleaved schedule/run cycles exercise the free list; events
	// must never fire twice or be lost after recycling.
	e := NewEngine()
	fired := 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 40; i++ {
			e.Schedule(Duration(i%7), func() { fired++ })
		}
		e.Run()
	}
	if fired != 50*40 {
		t.Fatalf("fired = %d, want %d", fired, 50*40)
	}
}

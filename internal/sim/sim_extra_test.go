package sim

import (
	"testing"
	"time"
)

func TestScheduleAtClampsToNow(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Schedule(100, func() {
		e.ScheduleAt(50, func() { at = e.Now() }) // in the past
	})
	e.Run()
	if at != 100 {
		t.Fatalf("past-scheduled event ran at %v, want clamped to 100", at)
	}
}

func TestSemaphoreAccessors(t *testing.T) {
	e := NewEngine()
	s := e.NewSemaphore(2)
	if s.Available() != 2 || s.QueueLen() != 0 {
		t.Fatalf("fresh semaphore: avail=%d queue=%d", s.Available(), s.QueueLen())
	}
	for i := 0; i < 3; i++ {
		e.Go("w", func(p *Proc) {
			p.Acquire(s)
			p.Sleep(10)
			s.Release()
		})
	}
	e.RunUntil(5)
	if s.Available() != 0 {
		t.Fatalf("avail = %d mid-run", s.Available())
	}
	if s.QueueLen() != 1 {
		t.Fatalf("queue = %d mid-run", s.QueueLen())
	}
	e.Run()
	if s.Available() != 2 {
		t.Fatalf("avail = %d after drain", s.Available())
	}
}

func TestNegativeSemaphorePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEngine().NewSemaphore(-1)
}

func TestProcNameAndEngineAccessors(t *testing.T) {
	e := NewEngine()
	e.Go("worker", func(p *Proc) {
		if p.Name() != "worker" {
			t.Errorf("Name = %q", p.Name())
		}
		if p.Engine() != e {
			t.Error("Engine accessor broken")
		}
		if p.Now() != e.Now() {
			t.Error("Now mismatch")
		}
	})
	e.Run()
}

func TestZeroSleepIsSchedulingPoint(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Go("a", func(p *Proc) {
		order = append(order, "a1")
		p.Sleep(0)
		order = append(order, "a2")
	})
	e.Go("b", func(p *Proc) {
		order = append(order, "b1")
	})
	e.Run()
	// b1 must interleave between a1 and a2 (zero sleep yields).
	if len(order) != 3 || order[1] != "b1" {
		t.Fatalf("order = %v", order)
	}
}

func TestManyProcsStress(t *testing.T) {
	e := NewEngine()
	done := 0
	for i := 0; i < 2000; i++ {
		i := i
		e.Go("p", func(p *Proc) {
			p.Sleep(Duration(i % 97))
			done++
		})
	}
	e.Run()
	if done != 2000 {
		t.Fatalf("done = %d", done)
	}
}

func TestRunUntilThenResume(t *testing.T) {
	e := NewEngine()
	var marks []Time
	e.Go("p", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(100 * time.Nanosecond)
			marks = append(marks, p.Now())
		}
	})
	e.RunUntil(150)
	if len(marks) != 1 {
		t.Fatalf("marks after RunUntil = %v", marks)
	}
	e.Run()
	if len(marks) != 3 {
		t.Fatalf("marks after Run = %v", marks)
	}
}

// Package hostmm models the host kernel's memory management as seen by
// a VMM process: address spaces with file-backed (private, CoW) and
// anonymous VMAs, demand faulting, userfaultfd regions, and
// system-wide anonymous-page accounting.
//
// The accounting here is one half of the paper's Figure 3c: anonymous
// pages (userfaultfd installs, CoW breaks, PV allocations) are charged
// per address space and never shared between VM sandboxes, while
// file-backed read-only pages resolve to shared page-cache pages
// charged once in internal/pagecache. That asymmetry is exactly why
// userfaultfd-based prefetchers cannot deduplicate working sets (§2.1).
package hostmm

import (
	"fmt"
	"sort"

	"snapbpf/internal/costmodel"
	"snapbpf/internal/pagecache"
	"snapbpf/internal/sim"
)

// MM is the host memory manager: global counters shared by all
// address spaces of one simulated host.
type MM struct {
	eng   *sim.Engine
	cm    costmodel.Model
	cache *pagecache.Cache

	totalAnon int64
	spaces    []*AddressSpace
	obs       Observer
}

// Observer receives address-space events for the correctness harness
// (internal/check). Observers must not mutate MM state; a nil observer
// costs one branch per event. Together the events let a checker mirror
// every PTE transition: file pages via FilePageMapped/FilePageUnmapped,
// anonymous pages via AnonInstalled/AnonDropped plus the CoW and
// zero-fill cases of FaultResolved.
type Observer interface {
	// SpaceCreated/SpaceReleased bracket an address space's lifetime.
	SpaceCreated(as *AddressSpace)
	SpaceReleased(as *AddressSpace)
	// FilePageMapped fires when a PTE starts referencing a shared
	// page-cache page (rmap reference taken); FilePageUnmapped fires
	// when that reference is dropped (munmap, CoW break, or release).
	FilePageMapped(as *AddressSpace, page int64, ino *pagecache.Inode, fileIdx int64)
	FilePageUnmapped(as *AddressSpace, page int64, ino *pagecache.Inode, fileIdx int64)
	// AnonInstalled fires for anonymous installs that bypass the fault
	// path: PV mirror installs (InstallAnonZeroPage), UFFDIO_ZEROPAGE
	// and UFFDIO_COPY. content is the installed page's content tag;
	// known is false for untagged UFFDIO_COPY (Uffd.Copy).
	AnonInstalled(as *AddressSpace, page int64, content uint64, known bool)
	// AnonDropped fires when an anonymous page is freed (munmap or
	// address-space release).
	AnonDropped(as *AddressSpace, page int64)
	// FaultResolved fires after HandleFault resolves, in the faulting
	// task's context.
	FaultResolved(p *sim.Proc, as *AddressSpace, page int64, write bool, kind FaultKind)
}

// SetObserver installs obs (nil disables observation).
func (mm *MM) SetObserver(obs Observer) { mm.obs = obs }

// Spaces returns every address space ever created on this MM,
// including released ones, in creation order.
func (mm *MM) Spaces() []*AddressSpace { return mm.spaces }

// New creates a host MM on top of the given page cache.
func New(eng *sim.Engine, cache *pagecache.Cache, cm costmodel.Model) *MM {
	return &MM{eng: eng, cm: cm, cache: cache}
}

// Cache returns the page cache backing file mappings.
func (mm *MM) Cache() *pagecache.Cache { return mm.cache }

// TotalAnonPages returns the system-wide anonymous page count.
func (mm *MM) TotalAnonPages() int64 { return mm.totalAnon }

// SystemMemoryPages returns the Figure 3c quantity: page-cache pages
// (shared) plus anonymous pages (per-VM).
func (mm *MM) SystemMemoryPages() int64 {
	return mm.cache.NrCachedPages() + mm.totalAnon
}

// VMAKind distinguishes the backing of a mapping.
type VMAKind int

// VMA kinds.
const (
	// VMAFilePrivate is a MAP_PRIVATE file mapping: reads resolve to
	// shared page-cache pages, writes break CoW into anonymous pages.
	// Firecracker maps snapshot memory files this way.
	VMAFilePrivate VMAKind = iota
	// VMAAnon is a MAP_ANONYMOUS|MAP_PRIVATE mapping: faults zero-fill.
	VMAAnon
)

func (k VMAKind) String() string {
	switch k {
	case VMAFilePrivate:
		return "file-private"
	case VMAAnon:
		return "anon"
	}
	return fmt.Sprintf("vmakind(%d)", int(k))
}

// VMA is one virtual memory area.
type VMA struct {
	Start  int64 // first page
	NPages int64
	Kind   VMAKind

	// Inode and FileOff (page offset of Start within the file) apply
	// to file-backed VMAs.
	Inode   *pagecache.Inode
	FileOff int64

	// uffd is non-nil when the range is registered with userfaultfd.
	uffd *Uffd
}

// End returns one past the last page.
func (v *VMA) End() int64 { return v.Start + v.NPages }

// filePage translates an address-space page to a file page index.
func (v *VMA) filePage(page int64) int64 { return v.FileOff + (page - v.Start) }

// FilePage is the exported form of filePage, for observers that need
// to resolve a faulted page to its backing file index.
func (v *VMA) FilePage(page int64) int64 { return v.filePage(page) }

// pte is the per-page mapping state of an address space.
type pte uint8

const (
	pteNone   pte = iota // not mapped
	pteFileRO            // maps a shared page-cache page, read-only
	pteAnon              // maps a private anonymous page, writable
)

// FaultKind reports how a fault was resolved, for per-VM statistics.
type FaultKind int

// Fault resolutions.
const (
	FaultMinor    FaultKind = iota // page was already mapped
	FaultFile                      // mapped a page-cache page
	FaultZeroFill                  // allocated a fresh anonymous page
	FaultCoW                       // broke copy-on-write
	FaultUffd                      // resolved by a userfaultfd handler
)

func (k FaultKind) String() string {
	switch k {
	case FaultMinor:
		return "minor"
	case FaultFile:
		return "file"
	case FaultZeroFill:
		return "zero-fill"
	case FaultCoW:
		return "cow"
	case FaultUffd:
		return "uffd"
	}
	return fmt.Sprintf("faultkind(%d)", int(k))
}

// FaultStats counts fault resolutions per address space.
type FaultStats struct {
	Minor    int64
	File     int64
	ZeroFill int64
	CoW      int64
	Uffd     int64
}

// AddressSpace is the VMM process's virtual memory: a page table plus
// a sorted list of VMAs. Page numbers are process-local.
type AddressSpace struct {
	mm      *MM
	name    string
	nrPages int64
	pt      []pte
	vmas    []*VMA // sorted by Start, non-overlapping

	anonPages int64
	stats     FaultStats
}

// NewAddressSpace creates an empty address space of nrPages pages.
func (mm *MM) NewAddressSpace(name string, nrPages int64) *AddressSpace {
	as := &AddressSpace{
		mm:      mm,
		name:    name,
		nrPages: nrPages,
		pt:      make([]pte, nrPages),
	}
	mm.spaces = append(mm.spaces, as)
	if mm.obs != nil {
		mm.obs.SpaceCreated(as)
	}
	return as
}

// Name returns the address space name.
func (as *AddressSpace) Name() string { return as.name }

// NrPages returns the address space size in pages.
func (as *AddressSpace) NrPages() int64 { return as.nrPages }

// AnonPages returns the anonymous pages charged to this space.
func (as *AddressSpace) AnonPages() int64 { return as.anonPages }

// Stats returns the fault counters.
func (as *AddressSpace) Stats() FaultStats { return as.stats }

// MM returns the owning memory manager.
func (as *AddressSpace) MM() *MM { return as.mm }

// VMAs returns the current mappings, sorted by start page.
func (as *AddressSpace) VMAs() []*VMA { return as.vmas }

// Release returns all anonymous pages of the space (process exit).
// Page-cache pages survive, as they belong to the cache, but their
// rmap references from this space are dropped so they become
// reclaimable.
func (as *AddressSpace) Release() {
	as.mm.totalAnon -= as.anonPages
	as.anonPages = 0
	for pg := range as.pt {
		switch as.pt[pg] {
		case pteFileRO:
			as.unmapFilePage(int64(pg))
		case pteAnon:
			if as.mm.obs != nil {
				as.mm.obs.AnonDropped(as, int64(pg))
			}
		}
		as.pt[pg] = pteNone
	}
	as.vmas = nil
	if as.mm.obs != nil {
		as.mm.obs.SpaceReleased(as)
	}
}

// unmapFilePage drops the rmap reference a pteFileRO entry holds on
// its backing cache page. The covering VMA must still be present.
func (as *AddressSpace) unmapFilePage(page int64) {
	if v := as.FindVMA(page); v != nil && v.Inode != nil {
		v.Inode.UnmapPage(v.filePage(page))
		if as.mm.obs != nil {
			as.mm.obs.FilePageUnmapped(as, page, v.Inode, v.filePage(page))
		}
	}
}

func (as *AddressSpace) checkRange(start, n int64) {
	if start < 0 || n <= 0 || start+n > as.nrPages {
		panic(fmt.Sprintf("hostmm: %s: bad range [%d, %d) of %d", as.name, start, start+n, as.nrPages))
	}
}

// unmapRange removes any VMA coverage in [start, start+n), splitting
// partially overlapped VMAs, and drops existing PTEs in that range
// (munmap semantics: anonymous pages are freed).
func (as *AddressSpace) unmapRange(start, n int64) {
	end := start + n
	// Drop rmap references before the old VMAs disappear.
	for pg := start; pg < end; pg++ {
		if as.pt[pg] == pteFileRO {
			as.unmapFilePage(pg)
		}
	}
	var out []*VMA
	for _, v := range as.vmas {
		switch {
		case v.End() <= start || v.Start >= end:
			out = append(out, v)
		default:
			// Left fragment.
			if v.Start < start {
				left := *v
				left.NPages = start - v.Start
				out = append(out, &left)
			}
			// Right fragment.
			if v.End() > end {
				right := *v
				right.FileOff = v.FileOff + (end - v.Start)
				right.Start = end
				right.NPages = v.End() - end
				out = append(out, &right)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	as.vmas = out
	for pg := start; pg < end; pg++ {
		if as.pt[pg] == pteAnon {
			as.anonPages--
			as.mm.totalAnon--
			if as.mm.obs != nil {
				as.mm.obs.AnonDropped(as, pg)
			}
		}
		as.pt[pg] = pteNone
	}
}

// MMapFile maps nPages of ino starting at file page fileOff at
// address-space page start (MAP_FIXED|MAP_PRIVATE): existing mappings
// in the range are replaced, as FaaSnap relies on when layering
// working-set regions over the snapshot mapping.
func (as *AddressSpace) MMapFile(p *sim.Proc, start, nPages int64, ino *pagecache.Inode, fileOff int64) *VMA {
	as.checkRange(start, nPages)
	if fileOff < 0 || fileOff+nPages > ino.NrPages() {
		panic(fmt.Sprintf("hostmm: mmap beyond EOF: file pages [%d, %d) of %d", fileOff, fileOff+nPages, ino.NrPages()))
	}
	if p != nil {
		p.Sleep(as.mm.cm.Syscall + as.mm.cm.MmapRegion)
	}
	as.unmapRange(start, nPages)
	v := &VMA{Start: start, NPages: nPages, Kind: VMAFilePrivate, Inode: ino, FileOff: fileOff}
	as.insertVMA(v)
	return v
}

// MMapAnon maps nPages of anonymous memory at start (MAP_FIXED).
func (as *AddressSpace) MMapAnon(p *sim.Proc, start, nPages int64) *VMA {
	as.checkRange(start, nPages)
	if p != nil {
		p.Sleep(as.mm.cm.Syscall + as.mm.cm.MmapRegion)
	}
	as.unmapRange(start, nPages)
	v := &VMA{Start: start, NPages: nPages, Kind: VMAAnon}
	as.insertVMA(v)
	return v
}

func (as *AddressSpace) insertVMA(v *VMA) {
	as.vmas = append(as.vmas, v)
	sort.Slice(as.vmas, func(i, j int) bool { return as.vmas[i].Start < as.vmas[j].Start })
}

// FindVMA returns the VMA covering page, or nil.
func (as *AddressSpace) FindVMA(page int64) *VMA {
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].End() > page })
	if i < len(as.vmas) && as.vmas[i].Start <= page {
		return as.vmas[i]
	}
	return nil
}

// Mapped reports whether page has a valid PTE.
func (as *AddressSpace) Mapped(page int64) bool { return as.pt[page] != pteNone }

// MappedWritable reports whether page is mapped writable (anon).
func (as *AddressSpace) MappedWritable(page int64) bool { return as.pt[page] == pteAnon }

// installAnon maps page to a fresh anonymous page.
func (as *AddressSpace) installAnon(page int64) {
	if as.pt[page] == pteAnon {
		return
	}
	as.pt[page] = pteAnon
	as.anonPages++
	as.mm.totalAnon++
}

// InstallAnonZeroPage forcibly maps page to a zeroed anonymous page,
// bypassing the VMA backing. KVM's PV PTE-marking path uses this to
// serve mirror-PFN faults with anonymous memory instead of snapshot
// data (§3.2). It reports whether a new page was allocated.
func (as *AddressSpace) InstallAnonZeroPage(p *sim.Proc, page int64) bool {
	as.checkRange(page, 1)
	if as.pt[page] == pteAnon {
		return false
	}
	if p != nil {
		p.Sleep(as.mm.cm.ZeroFillPage)
	}
	as.installAnon(page)
	if as.mm.obs != nil {
		as.mm.obs.AnonInstalled(as, page, 0, true)
	}
	return true
}

// HandleFault resolves a fault at page with the given access type and
// returns how it was resolved. It blocks the process for the
// software and device time of the resolution path.
func (as *AddressSpace) HandleFault(p *sim.Proc, page int64, write bool) FaultKind {
	as.checkRange(page, 1)
	v := as.FindVMA(page)
	if v == nil {
		panic(fmt.Sprintf("hostmm: %s: segfault at page %d (no VMA)", as.name, page))
	}

	kind := as.resolveFault(p, page, write, v)
	if as.mm.obs != nil {
		as.mm.obs.FaultResolved(p, as, page, write, kind)
	}
	return kind
}

// resolveFault is the body of HandleFault, factored out so the
// observer sees every resolution exactly once.
func (as *AddressSpace) resolveFault(p *sim.Proc, page int64, write bool, v *VMA) FaultKind {
	switch as.pt[page] {
	case pteAnon:
		as.stats.Minor++
		return FaultMinor
	case pteFileRO:
		if !write {
			as.stats.Minor++
			return FaultMinor
		}
		// Write to a private file page: break CoW. The cache page
		// loses this space's rmap reference.
		p.Sleep(as.mm.cm.CoWCopyPage)
		as.unmapFilePage(page)
		as.installAnon(page)
		as.stats.CoW++
		return FaultCoW
	}

	// Not mapped.
	if v.uffd != nil {
		// Userfaultfd: the fault is handed to the registered userspace
		// handler, which must install the page (UFFDIO_COPY) before
		// returning. The round trip models fault delivery + wakeup.
		p.Sleep(as.mm.cm.UffdRoundTrip)
		v.uffd.faults++
		v.uffd.Handler(p, page)
		if as.pt[page] == pteNone {
			panic(fmt.Sprintf("hostmm: %s: uffd handler left page %d unmapped", as.name, page))
		}
		as.stats.Uffd++
		return FaultUffd
	}

	switch v.Kind {
	case VMAAnon:
		p.Sleep(as.mm.cm.ZeroFillPage)
		as.installAnon(page)
		as.stats.ZeroFill++
		return FaultZeroFill
	case VMAFilePrivate:
		// FaultPage returns the cache page pinned, so reclaim cannot
		// take it before it is copied (write) or mapped (read) below.
		v.Inode.FaultPage(p, v.filePage(page))
		if write {
			// Write fault: fetch then immediately CoW.
			p.Sleep(as.mm.cm.CoWCopyPage)
			v.Inode.Unpin(v.filePage(page))
			as.installAnon(page)
			as.stats.CoW++
			return FaultCoW
		}
		as.pt[page] = pteFileRO
		v.Inode.MapPage(v.filePage(page))
		v.Inode.Unpin(v.filePage(page))
		if as.mm.obs != nil {
			as.mm.obs.FilePageMapped(as, page, v.Inode, v.filePage(page))
		}
		as.stats.File++
		return FaultFile
	}
	panic("hostmm: unreachable")
}

// Uffd is a userfaultfd registration over a VMA.
type Uffd struct {
	as  *AddressSpace
	vma *VMA

	// Handler is the userspace fault handler; it runs in the faulting
	// task's context (the vCPU blocks while userspace resolves the
	// fault) and must install the page before returning.
	Handler func(p *sim.Proc, page int64)

	faults int64
	copies int64
}

// RegisterUffd registers the VMA range with userfaultfd. The handler
// may be set afterwards but must be non-nil before the first fault.
func (as *AddressSpace) RegisterUffd(v *VMA) *Uffd {
	if v.uffd != nil {
		panic("hostmm: VMA already registered with userfaultfd")
	}
	u := &Uffd{as: as, vma: v}
	v.uffd = u
	return u
}

// Faults returns the number of faults delivered to the handler.
func (u *Uffd) Faults() int64 { return u.faults }

// Copies returns the number of successful UFFDIO_COPY installs.
func (u *Uffd) Copies() int64 { return u.copies }

// ZeroPage is UFFDIO_ZEROPAGE: it installs a zeroed anonymous page at
// page without copying any data — how Faast resolves faults on frames
// its allocator metadata marks as free (§2.2). Returns false (EEXIST)
// if already mapped.
func (u *Uffd) ZeroPage(p *sim.Proc, page int64) bool {
	if page < u.vma.Start || page >= u.vma.End() {
		panic(fmt.Sprintf("hostmm: UFFDIO_ZEROPAGE outside registered range: page %d", page))
	}
	if u.as.pt[page] != pteNone {
		return false
	}
	if p != nil {
		p.Sleep(u.as.mm.cm.ZeroFillPage)
	}
	u.as.installAnon(page)
	u.copies++
	if u.as.mm.obs != nil {
		u.as.mm.obs.AnonInstalled(u.as, page, 0, true)
	}
	return true
}

// Copy is UFFDIO_COPY: it installs an anonymous page with
// caller-provided contents at page. It returns false (EEXIST) if the
// page is already mapped. The copy cost covers allocation, data copy
// and page-table install.
func (u *Uffd) Copy(p *sim.Proc, page int64) bool {
	return u.copy(p, page, 0, false)
}

// CopyTag is Copy with the installed content's tag declared, so the
// correctness harness can track what the handler wrote. Schemes use
// this; Copy remains for callers with untracked contents.
func (u *Uffd) CopyTag(p *sim.Proc, page int64, content uint64) bool {
	return u.copy(p, page, content, true)
}

func (u *Uffd) copy(p *sim.Proc, page int64, content uint64, known bool) bool {
	if page < u.vma.Start || page >= u.vma.End() {
		panic(fmt.Sprintf("hostmm: UFFDIO_COPY outside registered range: page %d", page))
	}
	if u.as.pt[page] != pteNone {
		return false
	}
	if p != nil {
		p.Sleep(u.as.mm.cm.UffdCopyPage)
	}
	u.as.installAnon(page)
	u.copies++
	if u.as.mm.obs != nil {
		u.as.mm.obs.AnonInstalled(u.as, page, content, known)
	}
	return true
}

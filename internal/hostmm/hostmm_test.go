package hostmm

import (
	"testing"
	"time"

	"snapbpf/internal/blockdev"
	"snapbpf/internal/costmodel"
	"snapbpf/internal/kprobe"
	"snapbpf/internal/pagecache"
	"snapbpf/internal/sim"
)

type world struct {
	eng   *sim.Engine
	cache *pagecache.Cache
	mm    *MM
}

func newWorld() *world {
	eng := sim.NewEngine()
	dev := blockdev.New(eng, blockdev.MicronSATA5300())
	cache := pagecache.New(eng, dev, kprobe.NewRegistry(), costmodel.Default())
	cache.RAPages = 0
	return &world{eng: eng, cache: cache, mm: New(eng, cache, costmodel.Default())}
}

func TestAnonVMAZeroFill(t *testing.T) {
	w := newWorld()
	as := w.mm.NewAddressSpace("vm0", 1024)
	w.eng.Go("f", func(p *sim.Proc) {
		as.MMapAnon(p, 0, 1024)
		if k := as.HandleFault(p, 5, true); k != FaultZeroFill {
			t.Errorf("kind = %v, want zero-fill", k)
		}
		if k := as.HandleFault(p, 5, true); k != FaultMinor {
			t.Errorf("second fault = %v, want minor", k)
		}
	})
	w.eng.Run()
	if as.AnonPages() != 1 || w.mm.TotalAnonPages() != 1 {
		t.Fatalf("anon = %d / %d, want 1/1", as.AnonPages(), w.mm.TotalAnonPages())
	}
}

func TestFilePrivateReadMapsSharedPage(t *testing.T) {
	w := newWorld()
	ino := w.cache.NewInode("snap", 4096)
	as := w.mm.NewAddressSpace("vm0", 1024)
	w.eng.Go("f", func(p *sim.Proc) {
		as.MMapFile(p, 0, 1024, ino, 100)
		if k := as.HandleFault(p, 7, false); k != FaultFile {
			t.Errorf("kind = %v, want file", k)
		}
	})
	w.eng.Run()
	if !ino.Resident(107) {
		t.Fatal("file page 107 not in page cache (FileOff translation)")
	}
	if as.AnonPages() != 0 {
		t.Fatalf("read fault allocated anon pages: %d", as.AnonPages())
	}
}

func TestFilePrivateWriteBreaksCoW(t *testing.T) {
	w := newWorld()
	ino := w.cache.NewInode("snap", 4096)
	as := w.mm.NewAddressSpace("vm0", 1024)
	w.eng.Go("f", func(p *sim.Proc) {
		as.MMapFile(p, 0, 1024, ino, 0)
		if k := as.HandleFault(p, 3, false); k != FaultFile {
			t.Errorf("read = %v", k)
		}
		if k := as.HandleFault(p, 3, true); k != FaultCoW {
			t.Errorf("write = %v, want cow", k)
		}
		// After CoW the page is private and writable: minor faults only.
		if k := as.HandleFault(p, 3, false); k != FaultMinor {
			t.Errorf("post-cow read = %v, want minor", k)
		}
	})
	w.eng.Run()
	if as.AnonPages() != 1 {
		t.Fatalf("anon = %d, want 1 (the CoW copy)", as.AnonPages())
	}
	// The cache page still exists (shared by others).
	if !ino.Resident(3) {
		t.Fatal("cache page evicted by CoW")
	}
}

func TestDirectWriteFaultCoWs(t *testing.T) {
	w := newWorld()
	ino := w.cache.NewInode("snap", 4096)
	as := w.mm.NewAddressSpace("vm0", 64)
	w.eng.Go("f", func(p *sim.Proc) {
		as.MMapFile(p, 0, 64, ino, 0)
		if k := as.HandleFault(p, 0, true); k != FaultCoW {
			t.Errorf("kind = %v, want cow (fetch+copy)", k)
		}
	})
	w.eng.Run()
	if as.AnonPages() != 1 {
		t.Fatalf("anon = %d", as.AnonPages())
	}
}

func TestDedupAcrossAddressSpaces(t *testing.T) {
	// Ten VMs read the same snapshot pages: one cache copy, zero anon.
	w := newWorld()
	ino := w.cache.NewInode("snap", 4096)
	for i := 0; i < 10; i++ {
		as := w.mm.NewAddressSpace("vm", 256)
		w.eng.Go("vm", func(p *sim.Proc) {
			as.MMapFile(p, 0, 256, ino, 0)
			for pg := int64(0); pg < 100; pg++ {
				as.HandleFault(p, pg, false)
			}
		})
	}
	w.eng.Run()
	if got := w.mm.SystemMemoryPages(); got != 100 {
		t.Fatalf("system memory = %d pages, want 100 (dedup)", got)
	}
}

func TestNoDedupeForAnon(t *testing.T) {
	// Ten VMs each zero-fill the same 100 logical pages: 1000 anon.
	w := newWorld()
	for i := 0; i < 10; i++ {
		as := w.mm.NewAddressSpace("vm", 256)
		w.eng.Go("vm", func(p *sim.Proc) {
			as.MMapAnon(p, 0, 256)
			for pg := int64(0); pg < 100; pg++ {
				as.HandleFault(p, pg, true)
			}
		})
	}
	w.eng.Run()
	if got := w.mm.SystemMemoryPages(); got != 1000 {
		t.Fatalf("system memory = %d pages, want 1000 (no dedup)", got)
	}
}

func TestUffdFaultInvokesHandler(t *testing.T) {
	w := newWorld()
	as := w.mm.NewAddressSpace("vm0", 256)
	var handled []int64
	w.eng.Go("f", func(p *sim.Proc) {
		v := as.MMapAnon(p, 0, 256)
		u := as.RegisterUffd(v)
		u.Handler = func(hp *sim.Proc, page int64) {
			handled = append(handled, page)
			if !u.Copy(hp, page) {
				t.Error("copy failed")
			}
		}
		if k := as.HandleFault(p, 42, false); k != FaultUffd {
			t.Errorf("kind = %v, want uffd", k)
		}
	})
	w.eng.Run()
	if len(handled) != 1 || handled[0] != 42 {
		t.Fatalf("handled = %v", handled)
	}
	if as.AnonPages() != 1 {
		t.Fatalf("anon = %d", as.AnonPages())
	}
}

func TestUffdCopyPreinstallPreventsFault(t *testing.T) {
	w := newWorld()
	as := w.mm.NewAddressSpace("vm0", 256)
	w.eng.Go("f", func(p *sim.Proc) {
		v := as.MMapAnon(p, 0, 256)
		u := as.RegisterUffd(v)
		u.Handler = func(hp *sim.Proc, page int64) {
			t.Errorf("handler invoked for pre-installed page %d", page)
		}
		if !u.Copy(p, 10) {
			t.Error("preinstall copy failed")
		}
		if u.Copy(p, 10) {
			t.Error("second copy should return EEXIST=false")
		}
		if k := as.HandleFault(p, 10, false); k != FaultMinor {
			t.Errorf("kind = %v, want minor", k)
		}
	})
	w.eng.Run()
}

func TestUffdZeroPage(t *testing.T) {
	w := newWorld()
	as := w.mm.NewAddressSpace("vm0", 64)
	w.eng.Go("f", func(p *sim.Proc) {
		v := as.MMapAnon(p, 0, 64)
		u := as.RegisterUffd(v)
		u.Handler = func(hp *sim.Proc, page int64) {
			u.ZeroPage(hp, page)
		}
		if k := as.HandleFault(p, 7, false); k != FaultUffd {
			t.Errorf("kind = %v", k)
		}
		if u.ZeroPage(p, 7) {
			t.Error("second zeropage should return EEXIST=false")
		}
	})
	w.eng.Run()
	if as.AnonPages() != 1 {
		t.Fatalf("anon = %d", as.AnonPages())
	}
	// Zero-page installs never touch the device.
	if w.cache.Device().Stats().Requests != 0 {
		t.Fatal("UFFDIO_ZEROPAGE did I/O")
	}
}

func TestUffdRoundTripCost(t *testing.T) {
	w := newWorld()
	cm := costmodel.Default()
	as := w.mm.NewAddressSpace("vm0", 64)
	var took time.Duration
	w.eng.Go("f", func(p *sim.Proc) {
		v := as.MMapAnon(p, 0, 64)
		u := as.RegisterUffd(v)
		u.Handler = func(hp *sim.Proc, page int64) { u.Copy(hp, page) }
		t0 := p.Now()
		as.HandleFault(p, 0, false)
		took = p.Now().Sub(t0)
	})
	w.eng.Run()
	want := cm.UffdRoundTrip + cm.UffdCopyPage
	if took != want {
		t.Fatalf("uffd fault took %v, want %v", took, want)
	}
}

func TestMMapFixedReplacesAndSplits(t *testing.T) {
	w := newWorld()
	snap := w.cache.NewInode("snap", 4096)
	ws := w.cache.NewInode("ws", 4096)
	as := w.mm.NewAddressSpace("vm0", 1024)
	w.eng.Go("f", func(p *sim.Proc) {
		as.MMapFile(p, 0, 1024, snap, 0)
		// Overlay a WS region in the middle, as FaaSnap does.
		as.MMapFile(p, 100, 50, ws, 7)
		vmas := as.VMAs()
		if len(vmas) != 3 {
			t.Fatalf("VMAs = %d, want 3 (split)", len(vmas))
		}
		if vmas[0].Start != 0 || vmas[0].NPages != 100 || vmas[0].Inode != snap {
			t.Errorf("left fragment wrong: %+v", vmas[0])
		}
		if vmas[1].Start != 100 || vmas[1].NPages != 50 || vmas[1].Inode != ws || vmas[1].FileOff != 7 {
			t.Errorf("overlay wrong: %+v", vmas[1])
		}
		if vmas[2].Start != 150 || vmas[2].NPages != 874 || vmas[2].FileOff != 150 {
			t.Errorf("right fragment wrong: %+v", vmas[2])
		}
		// Fault in overlay: reads ws file page 7+5.
		as.HandleFault(p, 105, false)
	})
	w.eng.Run()
	if !ws.Resident(12) {
		t.Fatal("overlay fault read wrong file/offset")
	}
}

func TestUnmapFreesAnonPages(t *testing.T) {
	w := newWorld()
	as := w.mm.NewAddressSpace("vm0", 256)
	w.eng.Go("f", func(p *sim.Proc) {
		as.MMapAnon(p, 0, 256)
		for pg := int64(0); pg < 50; pg++ {
			as.HandleFault(p, pg, true)
		}
		// Remap over [0,25): those anon pages are freed.
		as.MMapAnon(p, 0, 25)
	})
	w.eng.Run()
	if as.AnonPages() != 25 {
		t.Fatalf("anon = %d, want 25", as.AnonPages())
	}
	if w.mm.TotalAnonPages() != 25 {
		t.Fatalf("global anon = %d, want 25", w.mm.TotalAnonPages())
	}
}

func TestReleaseReturnsAnon(t *testing.T) {
	w := newWorld()
	as := w.mm.NewAddressSpace("vm0", 64)
	w.eng.Go("f", func(p *sim.Proc) {
		as.MMapAnon(p, 0, 64)
		for pg := int64(0); pg < 10; pg++ {
			as.HandleFault(p, pg, true)
		}
	})
	w.eng.Run()
	as.Release()
	if w.mm.TotalAnonPages() != 0 {
		t.Fatalf("global anon = %d after release", w.mm.TotalAnonPages())
	}
}

func TestInstallAnonZeroPage(t *testing.T) {
	w := newWorld()
	ino := w.cache.NewInode("snap", 4096)
	as := w.mm.NewAddressSpace("vm0", 64)
	w.eng.Go("f", func(p *sim.Proc) {
		as.MMapFile(p, 0, 64, ino, 0)
		// PV path: serve with anon despite file backing; no I/O.
		t0 := p.Now()
		if !as.InstallAnonZeroPage(p, 9) {
			t.Error("install failed")
		}
		if p.Now().Sub(t0) > 10*time.Microsecond {
			t.Error("PV anon install did I/O")
		}
		if as.InstallAnonZeroPage(p, 9) {
			t.Error("double install allocated twice")
		}
		if k := as.HandleFault(p, 9, true); k != FaultMinor {
			t.Errorf("fault after install = %v, want minor", k)
		}
	})
	w.eng.Run()
	if ino.Resident(9) {
		t.Fatal("PV install fetched the snapshot page")
	}
	if as.AnonPages() != 1 {
		t.Fatalf("anon = %d", as.AnonPages())
	}
}

func TestFindVMA(t *testing.T) {
	w := newWorld()
	as := w.mm.NewAddressSpace("vm0", 1000)
	w.eng.Go("f", func(p *sim.Proc) {
		as.MMapAnon(p, 100, 50)
		as.MMapAnon(p, 300, 50)
	})
	w.eng.Run()
	if v := as.FindVMA(99); v != nil {
		t.Fatal("found VMA before mapping")
	}
	if v := as.FindVMA(100); v == nil || v.Start != 100 {
		t.Fatal("missed first VMA start")
	}
	if v := as.FindVMA(149); v == nil || v.Start != 100 {
		t.Fatal("missed first VMA end")
	}
	if v := as.FindVMA(150); v != nil {
		t.Fatal("found VMA in gap")
	}
	if v := as.FindVMA(320); v == nil || v.Start != 300 {
		t.Fatal("missed second VMA")
	}
}

func TestSegfaultPanics(t *testing.T) {
	w := newWorld()
	as := w.mm.NewAddressSpace("vm0", 64)
	panicked := false
	w.eng.Go("f", func(p *sim.Proc) {
		defer func() { panicked = recover() != nil }()
		as.HandleFault(p, 5, false)
	})
	w.eng.Run()
	if !panicked {
		t.Fatal("fault with no VMA did not panic")
	}
}

package hostmm

import (
	"testing"

	"snapbpf/internal/sim"
)

func TestFaultKindStrings(t *testing.T) {
	cases := map[FaultKind]string{
		FaultMinor:    "minor",
		FaultFile:     "file",
		FaultZeroFill: "zero-fill",
		FaultCoW:      "cow",
		FaultUffd:     "uffd",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if FaultKind(99).String() == "" {
		t.Error("unknown kind renders empty")
	}
}

func TestVMAKindStrings(t *testing.T) {
	if VMAFilePrivate.String() != "file-private" || VMAAnon.String() != "anon" {
		t.Fatal("VMA kind strings wrong")
	}
	if VMAKind(9).String() == "" {
		t.Fatal("unknown kind renders empty")
	}
}

func TestCheckRangePanics(t *testing.T) {
	w := newWorld()
	as := w.mm.NewAddressSpace("vm", 16)
	for _, c := range []struct{ start, n int64 }{{-1, 1}, {0, 0}, {10, 10}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("range (%d,%d) accepted", c.start, c.n)
				}
			}()
			as.MMapAnon(nil, c.start, c.n)
		}()
	}
}

func TestDoubleUffdRegisterPanics(t *testing.T) {
	w := newWorld()
	as := w.mm.NewAddressSpace("vm", 16)
	v := as.MMapAnon(nil, 0, 16)
	as.RegisterUffd(v)
	defer func() {
		if recover() == nil {
			t.Fatal("double uffd registration accepted")
		}
	}()
	as.RegisterUffd(v)
}

func TestUffdCopyOutsideRangePanics(t *testing.T) {
	w := newWorld()
	as := w.mm.NewAddressSpace("vm", 32)
	v := as.MMapAnon(nil, 0, 16)
	u := as.RegisterUffd(v)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range UFFDIO_COPY accepted")
		}
	}()
	u.Copy(nil, 20)
}

func TestMMapBeyondEOFPanics(t *testing.T) {
	w := newWorld()
	ino := w.cache.NewInode("f", 8)
	as := w.mm.NewAddressSpace("vm", 32)
	defer func() {
		if recover() == nil {
			t.Fatal("mmap beyond file EOF accepted")
		}
	}()
	as.MMapFile(nil, 0, 16, ino, 0)
}

func TestRmapLifecycle(t *testing.T) {
	// Mapping a file page takes an rmap reference; CoW, remap and
	// release drop it, leaving the cache page reclaimable.
	w := newWorld()
	ino := w.cache.NewInode("snap", 64)
	a := w.mm.NewAddressSpace("vmA", 64)
	b := w.mm.NewAddressSpace("vmB", 64)
	w.eng.Go("f", func(p *sim.Proc) {
		a.MMapFile(p, 0, 64, ino, 0)
		b.MMapFile(p, 0, 64, ino, 0)
		a.HandleFault(p, 5, false)
		b.HandleFault(p, 5, false)
		if got := ino.MapCount(5); got != 2 {
			t.Errorf("mapcount = %d after two mappers, want 2", got)
		}
		a.HandleFault(p, 5, true) // CoW in A drops its reference
		if got := ino.MapCount(5); got != 1 {
			t.Errorf("mapcount = %d after CoW, want 1", got)
		}
		b.MMapAnon(p, 0, 64) // remap over B's mapping
		if got := ino.MapCount(5); got != 0 {
			t.Errorf("mapcount = %d after remap, want 0", got)
		}
	})
	w.eng.Run()
}

func TestReleaseDropsRmap(t *testing.T) {
	w := newWorld()
	ino := w.cache.NewInode("snap", 64)
	as := w.mm.NewAddressSpace("vm", 64)
	w.eng.Go("f", func(p *sim.Proc) {
		as.MMapFile(p, 0, 64, ino, 0)
		as.HandleFault(p, 3, false)
	})
	w.eng.Run()
	if ino.MapCount(3) != 1 {
		t.Fatalf("mapcount = %d", ino.MapCount(3))
	}
	as.Release()
	if ino.MapCount(3) != 0 {
		t.Fatalf("mapcount = %d after release", ino.MapCount(3))
	}
}

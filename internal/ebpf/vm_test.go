package ebpf

import (
	"testing"
	"testing/quick"
)

// runProg assembles, loads and runs a program on a fresh VM.
func runProg(t *testing.T, build func(b *Builder), args ...uint64) uint64 {
	t.Helper()
	vm := NewVM()
	return runProgOn(t, vm, build, args...)
}

func runProgOn(t *testing.T, vm *VM, build func(b *Builder), args ...uint64) uint64 {
	t.Helper()
	b := NewBuilder()
	build(b)
	insns, err := b.Program()
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	prog, err := vm.Load("test", insns)
	if err != nil {
		t.Fatalf("load: %v\n%s", err, Disassemble(insns))
	}
	r0, err := prog.Run(nil, args...)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, Disassemble(insns))
	}
	return r0
}

func TestReturnConstant(t *testing.T) {
	got := runProg(t, func(b *Builder) {
		b.Mov64Imm(R0, 42).Exit()
	})
	if got != 42 {
		t.Fatalf("got %d, want 42", got)
	}
}

func TestReturnArgument(t *testing.T) {
	got := runProg(t, func(b *Builder) {
		b.Mov64Reg(R0, R1).Exit()
	}, 1234)
	if got != 1234 {
		t.Fatalf("got %d, want 1234", got)
	}
}

func TestArithmetic(t *testing.T) {
	// r0 = ((a + b) * 3 - 5) / 2
	got := runProg(t, func(b *Builder) {
		b.Mov64Reg(R0, R1).
			Add64Reg(R0, R2).
			Mul64Imm(R0, 3).
			Sub64Imm(R0, 5).
			Div64Imm(R0, 2).
			Exit()
	}, 10, 20)
	if want := uint64(((10+20)*3 - 5) / 2); got != want {
		t.Fatalf("got %d, want %d", got, want)
	}
}

func TestBitOps(t *testing.T) {
	got := runProg(t, func(b *Builder) {
		b.Mov64Reg(R0, R1).
			And64Imm(R0, 0xff).
			Or64Imm(R0, 0x100).
			Lsh64Imm(R0, 4).
			Rsh64Imm(R0, 2).
			Exit()
	}, 0xabcd)
	want := ((uint64(0xabcd)&0xff | 0x100) << 4) >> 2
	if got != want {
		t.Fatalf("got %#x, want %#x", got, want)
	}
}

func TestLdImm64(t *testing.T) {
	const v = uint64(0xdead_beef_cafe_f00d)
	got := runProg(t, func(b *Builder) {
		b.LdImm64(R0, v).Exit()
	})
	if got != v {
		t.Fatalf("got %#x, want %#x", got, v)
	}
}

func TestNegSignExtension(t *testing.T) {
	got := runProg(t, func(b *Builder) {
		b.Mov64Imm(R0, 5).Neg64(R0).Exit()
	})
	if int64(got) != -5 {
		t.Fatalf("got %d, want -5", int64(got))
	}
}

func TestMovImmSignExtends(t *testing.T) {
	got := runProg(t, func(b *Builder) {
		b.Mov64Imm(R0, -1).Exit()
	})
	if got != ^uint64(0) {
		t.Fatalf("got %#x, want all-ones", got)
	}
}

func TestDivByZeroYieldsZero(t *testing.T) {
	// Division by a zero *register* is a runtime case the kernel
	// defines as 0 (immediates are rejected by the verifier).
	got := runProg(t, func(b *Builder) {
		b.Mov64Imm(R0, 100).
			Mov64Imm(R2, 0).
			Div64Reg(R0, R2).
			Exit()
	})
	if got != 0 {
		t.Fatalf("got %d, want 0", got)
	}
}

func TestStackStoreLoad(t *testing.T) {
	got := runProg(t, func(b *Builder) {
		b.Mov64Imm(R2, 777).
			StxDW(R10, -8, R2).
			LdxDW(R0, R10, -8).
			Exit()
	})
	if got != 777 {
		t.Fatalf("got %d, want 777", got)
	}
}

func TestStackStImm(t *testing.T) {
	got := runProg(t, func(b *Builder) {
		b.StDWImm(R10, -16, 4096).
			LdxDW(R0, R10, -16).
			Exit()
	})
	if got != 4096 {
		t.Fatalf("got %d, want 4096", got)
	}
}

func TestStackPointerArithmetic(t *testing.T) {
	got := runProg(t, func(b *Builder) {
		b.Mov64Reg(R6, R10).
			Add64Imm(R6, -32).
			Mov64Imm(R2, 9).
			StxDW(R6, 8, R2). // fp-24
			LdxDW(R0, R10, -24).
			Exit()
	})
	if got != 9 {
		t.Fatalf("got %d, want 9", got)
	}
}

func TestConditionalJump(t *testing.T) {
	abs := func(x int64) uint64 {
		return runProg(t, func(b *Builder) {
			b.Mov64Reg(R0, R1).
				JmpImm(OpJsge, R0, 0, "done").
				Neg64(R0).
				Label("done").
				Exit()
		}, uint64(x))
	}
	if got := abs(-7); got != 7 {
		t.Fatalf("abs(-7) = %d", got)
	}
	if got := abs(7); got != 7 {
		t.Fatalf("abs(7) = %d", got)
	}
}

func TestJumpRegisterComparisons(t *testing.T) {
	max := func(a, b uint64) uint64 {
		return runProg(t, func(bl *Builder) {
			bl.Mov64Reg(R0, R1).
				JmpReg(OpJge, R1, R2, "done").
				Mov64Reg(R0, R2).
				Label("done").
				Exit()
		}, a, b)
	}
	if got := max(3, 9); got != 9 {
		t.Fatalf("max(3,9) = %d", got)
	}
	if got := max(9, 3); got != 9 {
		t.Fatalf("max(9,3) = %d", got)
	}
	if err := quick.Check(func(a, b uint64) bool {
		want := a
		if b > a {
			want = b
		}
		return max(a, b) == want
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestJset(t *testing.T) {
	tst := func(v uint64) uint64 {
		return runProg(t, func(b *Builder) {
			b.Mov64Imm(R0, 0).
				JmpImm(OpJset, R1, 0x8, "bitset").
				Exit().
				Label("bitset").
				Mov64Imm(R0, 1).
				Exit()
		}, v)
	}
	if tst(0xf) != 1 || tst(0x7) != 0 {
		t.Fatal("jset misbehaves")
	}
}

func TestUnconditionalJump(t *testing.T) {
	got := runProg(t, func(b *Builder) {
		b.Mov64Imm(R0, 1).
			Ja("end").
			Mov64Imm(R0, 2). // skipped
			Label("end").
			Exit()
	})
	if got != 1 {
		t.Fatalf("got %d, want 1", got)
	}
}

func TestAlu32ZeroesUpperHalf(t *testing.T) {
	got := runProg(t, func(b *Builder) {
		b.LdImm64(R0, 0xffff_ffff_ffff_ffff).
			Raw(Instruction{Op: ClassALU | OpAdd | SrcK, Dst: R0, Imm: 1}).
			Exit()
	})
	if got != 0 {
		t.Fatalf("got %#x, want 0 (32-bit wrap zero-extends)", got)
	}
}

func TestJmp32ComparesLow32(t *testing.T) {
	// dst = 0x1_0000_0005: 64-bit compare vs 5 differs from 32-bit.
	prog := func(use32 bool) uint64 {
		return runProg(t, func(b *Builder) {
			b.LdImm64(R6, 0x1_0000_0005)
			b.Mov64Imm(R0, 0)
			if use32 {
				b.Jmp32Imm(OpJeq, R6, 5, "eq")
			} else {
				b.JmpImm(OpJeq, R6, 5, "eq")
			}
			b.Exit()
			b.Label("eq")
			b.Mov64Imm(R0, 1)
			b.Exit()
		})
	}
	if prog(false) != 0 {
		t.Fatal("64-bit jeq matched across high bits")
	}
	if prog(true) != 1 {
		t.Fatal("jmp32 jeq ignored low 32 bits")
	}
}

func TestJmp32SignedUsesInt32(t *testing.T) {
	// low 32 bits = 0xFFFFFFFF = -1 as int32: jslt32 vs 0 must take.
	got := runProg(t, func(b *Builder) {
		b.LdImm64(R6, 0x7FFF_FFFF_FFFF_FFFF). // int64 positive, int32 -1
							Mov64Imm(R0, 0).
							Jmp32Imm(OpJslt, R6, 0, "neg").
							Exit().
							Label("neg").
							Mov64Imm(R0, 1).
							Exit()
	})
	if got != 1 {
		t.Fatal("jmp32 signed compare did not use int32 semantics")
	}
}

func TestJmp32UnsignedOrderPreserved(t *testing.T) {
	if err := quick.Check(func(a, b uint32) bool {
		got := runProg(t, func(bl *Builder) {
			bl.Mov64Reg(R6, R1).
				Mov64Reg(R7, R2).
				Mov64Imm(R0, 0).
				Jmp32Reg(OpJgt, R6, R7, "gt").
				Exit().
				Label("gt").
				Mov64Imm(R0, 1).
				Exit()
		}, uint64(a), uint64(b))
		want := uint64(0)
		if a > b {
			want = 1
		}
		return got == want
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestAlu32BuilderOps(t *testing.T) {
	got := runProg(t, func(b *Builder) {
		b.LdImm64(R0, 0xFFFF_FFFF_0000_0000).
			Add32Imm(R0, 7).  // zeroes upper half, R0 = 7
			Sub32Imm(R0, 2).  // 5
			And32Imm(R0, 0xf) // 5
		b.Exit()
	})
	if got != 5 {
		t.Fatalf("got %d, want 5 (upper half must be zeroed)", got)
	}
}

func TestVerifierRejectsJmp32Exit(t *testing.T) {
	insns := []Instruction{
		{Op: ClassALU64 | OpMov | SrcK, Dst: R0, Imm: 0},
		{Op: ClassJMP32 | OpExit},
	}
	if err := Verify(insns, NewVM()); err == nil {
		t.Fatal("exit in JMP32 class accepted")
	}
}

func TestHelperCall(t *testing.T) {
	vm := NewVM()
	vm.MustRegisterHelper(KfuncBase, "double",
		func(ctx *CallContext, args [5]uint64) (uint64, error) {
			return args[0] * 2, nil
		})
	got := runProgOn(t, vm, func(b *Builder) {
		b.Call(KfuncBase). // R1 already holds arg
					Exit() // R0 = helper result
	}, 21)
	if got != 42 {
		t.Fatalf("got %d, want 42", got)
	}
}

func TestMapHelpersRoundTrip(t *testing.T) {
	vm := NewVM()
	m := MustNewMap(MapTypeHash, "ws", 16)
	fd := vm.RegisterMap(m)

	// prog: key=R1 at fp-8; val=R2 at fp-16; update; lookup back into
	// fp-24; return found value.
	got := runProgOn(t, vm, func(b *Builder) {
		b.StxDW(R10, -8, R1).
			StxDW(R10, -16, R2).
			Mov64Imm(R1, fd).
			Mov64Reg(R2, R10).Add64Imm(R2, -8).
			Mov64Reg(R3, R10).Add64Imm(R3, -16).
			Call(HelperMapUpdateElem).
			Mov64Imm(R1, fd).
			Mov64Reg(R2, R10).Add64Imm(R2, -8).
			Mov64Reg(R3, R10).Add64Imm(R3, -24).
			Call(HelperMapLookupElem).
			JmpImm(OpJeq, R0, 1, "hit").
			Mov64Imm(R0, 0).
			Exit().
			Label("hit").
			LdxDW(R0, R10, -24).
			Exit()
	}, 0x1000, 0x2222)
	if got != 0x2222 {
		t.Fatalf("got %#x, want 0x2222", got)
	}
	if v, ok := m.Lookup(0x1000); !ok || v != 0x2222 {
		t.Fatalf("map state: v=%#x ok=%v", v, ok)
	}
}

func TestMapLookupMiss(t *testing.T) {
	vm := NewVM()
	m := MustNewMap(MapTypeHash, "ws", 16)
	fd := vm.RegisterMap(m)
	got := runProgOn(t, vm, func(b *Builder) {
		b.StDWImm(R10, -8, 99).
			Mov64Imm(R1, fd).
			Mov64Reg(R2, R10).Add64Imm(R2, -8).
			Mov64Reg(R3, R10).Add64Imm(R3, -16).
			Call(HelperMapLookupElem).
			Exit()
	})
	if got != 0 {
		t.Fatalf("lookup miss returned %d, want 0", got)
	}
}

func TestKtimeHelper(t *testing.T) {
	vm := NewVM()
	now := uint64(12345)
	vm.SetClock(func() uint64 { return now })
	got := runProgOn(t, vm, func(b *Builder) {
		b.Call(HelperKtimeGetNS).Exit()
	})
	if got != 12345 {
		t.Fatalf("ktime = %d, want 12345", got)
	}
}

func TestTracePrintk(t *testing.T) {
	vm := NewVM()
	var logged string
	vm.TraceLog = func(m string) { logged = m }
	runProgOn(t, vm, func(b *Builder) {
		b.Mov64Imm(R1, 7).Mov64Imm(R2, 8).Mov64Imm(R3, 0).Mov64Imm(R4, 0).Mov64Imm(R5, 0).
			Call(HelperTracePrintk).Exit()
	})
	if logged == "" {
		t.Fatal("trace_printk produced no output")
	}
}

func TestProgramRunCounter(t *testing.T) {
	vm := NewVM()
	prog := vm.MustLoad("p", NewBuilder().Mov64Imm(R0, 0).Exit().MustProgram())
	for i := 0; i < 3; i++ {
		if _, err := prog.Run(nil); err != nil {
			t.Fatal(err)
		}
	}
	if prog.Runs() != 3 {
		t.Fatalf("Runs = %d, want 3", prog.Runs())
	}
}

func TestTooManyArgs(t *testing.T) {
	vm := NewVM()
	prog := vm.MustLoad("p", NewBuilder().Mov64Imm(R0, 0).Exit().MustProgram())
	if _, err := prog.Run(nil, 1, 2, 3, 4, 5, 6); err == nil {
		t.Fatal("expected error for 6 args")
	}
}

func TestInfiniteLoopHitsInsnBudget(t *testing.T) {
	insns := []Instruction{
		{Op: ClassALU64 | OpMov | SrcK, Dst: R0, Imm: 0},
		{Op: ClassJMP | OpJa, Off: -2}, // back to pc 0 forever
		{Op: ClassJMP | OpExit},
	}
	vm := NewVM()
	prog, err := vm.Load("spin", insns)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if _, err := prog.Run(nil); err == nil || !contains(err.Error(), "budget") {
		t.Fatalf("err = %v, want instruction-budget abort", err)
	}
}

func TestBoundedLoopComputesInVM(t *testing.T) {
	// Sum the first N integers with a runtime loop — the pattern the
	// SnapBPF prefetch program uses to walk its group schedule.
	insns := []Instruction{
		{Op: ClassALU64 | OpMov | SrcK, Dst: R0, Imm: 0},
		{Op: ClassALU64 | OpMov | SrcK, Dst: R2, Imm: 0},
		{Op: ClassJMP | OpJge | SrcX, Dst: R2, Src: R1, Off: 3},
		{Op: ClassALU64 | OpAdd | SrcK, Dst: R2, Imm: 1},
		{Op: ClassALU64 | OpAdd | SrcX, Dst: R0, Src: R2},
		{Op: ClassJMP | OpJa, Off: -4},
		{Op: ClassJMP | OpExit},
	}
	vm := NewVM()
	prog := vm.MustLoad("sum", insns)
	got, err := prog.Run(nil, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got != 500500 {
		t.Fatalf("sum = %d, want 500500", got)
	}
}

func TestHelperPoisonsCallerSavedRegs(t *testing.T) {
	// After a call, R1-R5 hold poison; a verified program never reads
	// them, but this documents the runtime behaviour.
	vm := NewVM()
	vm.MustRegisterHelper(KfuncBase+1, "nop",
		func(ctx *CallContext, args [5]uint64) (uint64, error) { return 0, nil })
	b := NewBuilder()
	b.Mov64Imm(R1, 1).Call(KfuncBase+1).Mov64Reg(R0, R1).Exit()
	insns := b.MustProgram()
	if err := Verify(insns, vm); err == nil {
		t.Fatal("verifier should reject reading R1 after a call")
	}
}

func TestDisassembleStable(t *testing.T) {
	insns := NewBuilder().
		Mov64Imm(R0, 1).
		StxDW(R10, -8, R0).
		LdxDW(R2, R10, -8).
		JmpImm(OpJeq, R2, 1, "x").
		Label("x").
		Exit().
		MustProgram()
	s := Disassemble(insns)
	if s == "" {
		t.Fatal("empty disassembly")
	}
	for _, want := range []string{"mov", "stx64", "ldx64", "jeq", "exit"} {
		if !contains(s, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

package ebpf

// Template JIT: at Load, after verification, the cached decoded
// instruction slice (decode.go) is translated once more — into a chain
// of specialized Go closures, one basic block at a time. Run then walks
// blocks instead of instructions: every closure already knows its
// operation, operand mode, registers and immediates, so the
// fetch/decode/dispatch loop of the interpreter disappears entirely
// from the per-fault path. The capture/prefetch idioms additionally
// fuse into single closures (frame-pointer store runs, load-modify
// -store triples, helper calls together with their whole mov/add
// argument-setup preamble), shrinking the hot capture program to a
// handful of indirect calls per execution.
//
// Equivalence contract: the JIT is observably identical to the
// interpreter — same R0, same final register file, same map state,
// same helper-call sequence, same error text, same instruction-budget
// verdict — for every verified program. This is provable rather than
// hoped-for because (a) every closure body is the corresponding
// interpreter case with the decode folded into the closure's captured
// state, (b) the instruction budget is charged per block and a block
// that could straddle the budget boundary is *not* run jitted: the JIT
// hands the machine state to the interpreter at the block's first
// instruction, which then enforces the budget step-by-step with the
// exact interpreter semantics, and (c) FuzzJITvsInterp and the
// all-opcode engine tests in jit_test.go check the contract over both
// generated and hand-written programs. The interpreter stays available
// behind Program.Interp and the SNAPBPF_EBPF_ENGINE knob (parsed by
// the callers via ParseEngine; this package never reads the
// environment itself).

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// ---------------------------------------------------------------------------
// Engine selection

// Engine selects how Load prepares a verified program for execution.
type Engine uint8

const (
	// EngineJIT translates the decoded program into specialized Go
	// closures at Load; Run becomes a closure-chain walk. The default.
	EngineJIT Engine = iota
	// EngineInterp keeps only the decoded-instruction cache; Run uses
	// the reference interpreter dispatch loop.
	EngineInterp
)

func (e Engine) String() string {
	if e == EngineInterp {
		return "interp"
	}
	return "jit"
}

// ParseEngine parses an engine name as found in the -engine flag or
// the SNAPBPF_EBPF_ENGINE environment variable (read by the callers;
// this package takes explicit configuration only). The empty string
// selects the default engine, the JIT.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "jit":
		return EngineJIT, nil
	case "interp", "interpreter":
		return EngineInterp, nil
	}
	return EngineJIT, fmt.Errorf("ebpf: unknown engine %q (want jit or interp)", s)
}

// defaultEngine holds the Engine used by Load; atomic so tests and
// callers may flip it without racing concurrent Loads.
var defaultEngine atomic.Int32

// SetDefaultEngine selects the engine used by subsequent Loads.
// Already-loaded programs are unaffected.
func SetDefaultEngine(e Engine) { defaultEngine.Store(int32(e)) }

// DefaultEngine reports the engine used by subsequent Loads.
func DefaultEngine() Engine { return Engine(defaultEngine.Load()) }

// ---------------------------------------------------------------------------
// Compiled form

// Block transfer sentinels returned by jitTerm (valid block indexes
// are >= 0).
const (
	blkExit = -1 // program returned; R0 holds the result
	blkErr  = -2 // runState.err holds the failure
)

// jitOp is one straight-line operation (possibly a fusion of several
// instructions). It returns false when the run must abort, with the
// error in runState.err.
type jitOp func(st *runState) bool

// jitTerm transfers control at a block end: the next block index, or a
// sentinel.
type jitTerm func(st *runState) int32

// jitBlock is one compiled basic block.
type jitBlock struct {
	ops []jitOp
	// term is nil for an unconditional fallthrough/jump, in which case
	// next names the successor without an indirect call.
	term jitTerm
	next int32
	// cost is the number of interpreter steps the block charges against
	// InsnBudget (lddw counts one, exactly as in the dispatch loop).
	cost int
	// pc is the block's first instruction, where the interpreter
	// resumes when the remaining budget cannot cover the whole block.
	pc int
}

// jitProg is a compiled program.
type jitProg struct {
	blocks []jitBlock
	// zeroFrom is the lowest stack index the program can read: a
	// scratch-state rerun only needs stack[zeroFrom:] wiped to make the
	// frame indistinguishable from a fresh zeroed one. 0 (wipe
	// everything) whenever any read address is not statically known.
	zeroFrom int
	// acyclic marks a control-flow graph with no back edges: every
	// block runs at most once, so the total step count is bounded by
	// the program length, which the verifier keeps far under
	// InsnBudget — the run skips budget accounting entirely.
	acyclic bool
	// bounded marks a cyclic program whose static worst-case
	// instruction count (absint cost analysis) is at or under
	// InsnBudget: the dynamic budget check can never fire, so the run
	// takes the same no-accounting path as acyclic programs.
	bounded bool
}

// absintPrune gates absint-driven JIT compilation: dead-block
// elision, dead-edge branch flattening, and budget-check elision for
// proven-bounded loops. Off by default so engine comparisons measure
// identical translations unless a caller opts in (snapbpf-bench
// -absint-prune).
var absintPrune atomic.Bool

// SetAbsintPrune toggles absint-driven pruning for subsequent Loads.
func SetAbsintPrune(on bool) { absintPrune.Store(on) }

// AbsintPrune reports whether absint-driven pruning is enabled.
func AbsintPrune() bool { return absintPrune.Load() }

// poison is the value calls clobber R1-R5 with, as in the interpreter.
const poison = 0xdead_beef_dead_beef

// exitTerm is the shared plain-exit terminator.
var exitTerm jitTerm = func(st *runState) int32 { return blkExit }

// runJIT executes the compiled block chain. Register state lives in
// st.regs (shared with the interpreter handoff and inspectable by the
// equivalence tests after a run).
func (p *Program) runJIT(st *runState) (uint64, error) {
	blocks := p.jit.blocks
	bi := int32(0)
	if p.jit.acyclic || p.jit.bounded {
		// No loops, or loops with a proven worst-case instruction
		// count under the budget: the budget can never be exceeded,
		// so the walk carries no step accounting at all.
		for {
			b := &blocks[bi]
			for _, op := range b.ops {
				if !op(st) {
					err := st.err
					st.err = nil
					return 0, err
				}
			}
			if b.term == nil {
				bi = b.next
				continue
			}
			bi = b.term(st)
			if bi < 0 {
				if bi == blkExit {
					return st.regs[R0], nil
				}
				err := st.err
				st.err = nil
				return 0, err
			}
		}
	}
	steps := 0
	for {
		b := &blocks[bi]
		if steps+b.cost > InsnBudget {
			// The budget boundary may fall inside this block: hand the
			// machine to the interpreter, which charges per step.
			return p.runInterp(st, b.pc, steps)
		}
		steps += b.cost
		for _, op := range b.ops {
			if !op(st) {
				err := st.err
				st.err = nil
				return 0, err
			}
		}
		if b.term == nil {
			bi = b.next
			continue
		}
		bi = b.term(st)
		if bi < 0 {
			if bi == blkExit {
				return st.regs[R0], nil
			}
			err := st.err
			st.err = nil
			return 0, err
		}
	}
}

// ---------------------------------------------------------------------------
// Compilation

// jitFacts is the slice of an absint result the compiler consumes:
// which instructions any execution can reach, which conditional edges
// are statically dead, and the worst-case instruction count. A nil
// *jitFacts (or one from a non-OK analysis, which Load never passes)
// compiles the program exactly as without analysis.
type jitFacts struct {
	reachable []bool
	branches  map[int]absintBranch
	worstCase int64
}

// absintBranch mirrors absint.Branch without making jit.go depend on
// the analysis package directly.
type absintBranch struct {
	takenDead, fallDead bool
}

func (f *jitFacts) reach(pc int) bool {
	return f == nil || f.reachable[pc]
}

// deadEdges returns the statically dead edges of the conditional jump
// at pc.
func (f *jitFacts) deadEdges(pc int) (takenDead, fallDead bool) {
	if f == nil {
		return false, false
	}
	br, ok := f.branches[pc]
	if !ok {
		return false, false
	}
	return br.takenDead, br.fallDead
}

// compileJIT translates a verified, decoded program. It returns nil
// when anything unexpected appears (an unresolved helper, an invalid
// decode, a jump into a lddw upper half); Load then leaves the program
// on the interpreter, which reports such cases with its usual errors.
//
// With facts (absint pruning enabled at Load), statically dead code
// compiles to trap stubs instead of being translated or validated,
// conditional terminators with a statically dead edge flatten into
// unconditional transfers, and a cyclic program with a proven
// worst-case instruction count under InsnBudget skips run-time budget
// accounting the same way acyclic programs always have.
func compileJIT(p *Program, facts *jitFacts) *jitProg {
	dec := p.dec
	n := len(dec)
	if n == 0 {
		return nil
	}

	// Basic-block leaders: entry, jump targets, fallthroughs after
	// terminators. Statically dead instructions are neither validated
	// nor scanned for leaders — a whole dead region becomes one stub
	// block — so programs whose only invalid or unresolvable parts
	// are unreachable still compile.
	leader := make([]bool, n)
	leader[0] = true
	mark := func(pc int) bool {
		if pc < 0 || pc >= n || dec[pc].kind == decLdImm64Hi {
			return false
		}
		leader[pc] = true
		return true
	}
	for pc := 0; pc < n; pc++ {
		if !facts.reach(pc) {
			continue
		}
		switch dec[pc].kind {
		case decJa:
			if !mark(pc+int(dec[pc].off)) || !mark(pc+1) {
				return nil
			}
		case decJump, decJump32:
			takenDead, fallDead := facts.deadEdges(pc)
			if !takenDead && !mark(pc+int(dec[pc].off)) {
				return nil
			}
			if !fallDead && !mark(pc+1) {
				return nil
			}
		case decExit:
			if pc+1 < n && !mark(pc+1) {
				return nil
			}
		case decCall:
			if dec[pc].helper == nil {
				return nil
			}
		case decInvalid:
			return nil
		}
	}
	if facts != nil {
		// Dead regions still need block boundaries so live blocks end
		// at the region edge; each region start becomes a leader.
		for pc := 1; pc < n; pc++ {
			if !facts.reachable[pc] && facts.reachable[pc-1] {
				leader[pc] = true
			}
		}
	}

	blockIdx := make(map[int]int32, n)
	var starts []int
	for pc := 0; pc < n; pc++ {
		if leader[pc] {
			blockIdx[pc] = int32(len(starts))
			starts = append(starts, pc)
		}
	}

	c := &jitCompiler{p: p, dec: dec, blockIdx: blockIdx, facts: facts, zeroFrom: StackSize}
	j := &jitProg{blocks: make([]jitBlock, len(starts))}
	for i, start := range starts {
		end := n
		if i+1 < len(starts) {
			end = starts[i+1]
		}
		if !facts.reach(start) {
			j.blocks[i] = deadBlock(start)
			continue
		}
		blk, ok := c.compileBlock(start, end)
		if !ok {
			return nil
		}
		j.blocks[i] = blk
	}
	if c.dynamicRead {
		j.zeroFrom = 0
	} else {
		j.zeroFrom = c.zeroFrom
	}
	j.acyclic = cfgAcyclic(dec, starts, blockIdx, facts)
	if !j.acyclic && facts != nil && facts.worstCase >= 0 && facts.worstCase <= InsnBudget {
		j.bounded = true
	}
	return j
}

// deadBlock is the stub compiled in place of statically dead code. A
// sound analysis means it can never run; executing it is loud rather
// than silent so a pruning bug shows up as an error, not corruption.
func deadBlock(pc int) jitBlock {
	return jitBlock{
		pc: pc,
		ops: []jitOp{func(st *runState) bool {
			st.err = fmt.Errorf("ebpf: internal error: statically dead code reached at pc=%d", pc)
			return false
		}},
		next: blkErr,
	}
}

// cfgAcyclic reports whether the block graph has no cycles, via an
// iterative three-color depth-first search over block successors.
// Statically dead blocks and edges do not contribute.
func cfgAcyclic(dec []decoded, starts []int, blockIdx map[int]int32, facts *jitFacts) bool {
	n := len(starts)
	succs := func(i int) (s [2]int32, k int) {
		end := len(dec)
		if i+1 < n {
			end = starts[i+1]
		}
		if !facts.reach(starts[i]) {
			return s, 0
		}
		last := &dec[end-1]
		switch last.kind {
		case decExit:
		case decJa:
			s[0], k = blockIdx[end-1+int(last.off)], 1
		case decJump, decJump32:
			takenDead, fallDead := facts.deadEdges(end - 1)
			if !takenDead {
				s[k] = blockIdx[end-1+int(last.off)]
				k++
			}
			if !fallDead {
				s[k] = blockIdx[end]
				k++
			}
		default:
			if end < len(dec) {
				s[0], k = blockIdx[end], 1
			}
		}
		return s, k
	}
	const (
		white = iota
		gray
		black
	)
	color := make([]byte, n)
	type frame struct {
		b    int32
		next int
	}
	stack := []frame{{b: 0}}
	color[0] = gray
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		s, k := succs(int(f.b))
		if f.next >= k {
			color[f.b] = black
			stack = stack[:len(stack)-1]
			continue
		}
		nb := s[f.next]
		f.next++
		switch color[nb] {
		case gray:
			return false
		case white:
			color[nb] = gray
			stack = append(stack, frame{b: nb})
		}
	}
	return true
}

// jitCompiler carries per-program compilation state.
type jitCompiler struct {
	p        *Program
	dec      []decoded
	blockIdx map[int]int32
	facts    *jitFacts

	// Stack-wipe analysis: zeroFrom tracks the lowest statically-known
	// read index; dynamicRead is set when any read address cannot be
	// bounded at compile time (a register-based load, or a helper
	// argument that could carry a computed stack pointer), forcing the
	// full wipe.
	zeroFrom    int
	dynamicRead bool
}

// readAt records a statically-known stack read at index idx.
func (c *jitCompiler) readAt(idx int) {
	if idx < c.zeroFrom {
		c.zeroFrom = idx
	}
}

// fpIndex resolves a frame-pointer-relative access to a static stack
// index, mirroring stackIndex for addr = stackTop + off.
func fpIndex(off int32, size int) (int, bool) {
	idx := StackSize + int(off)
	if idx < 0 || idx+size > StackSize {
		return 0, false
	}
	return idx, true
}

// compileBlock translates instructions [start, end) into one block.
// The last instruction is the terminator when it is a jump or exit;
// otherwise the block falls through to the next one.
func (c *jitCompiler) compileBlock(start, end int) (jitBlock, bool) {
	blk := jitBlock{pc: start, next: blkErr}
	dec := c.dec

	// Split off the terminator instruction, if any.
	termPC := -1
	bodyEnd := end
	termFusable := true
	if end > start {
		switch dec[end-1].kind {
		case decJa, decJump, decJump32, decExit:
			termPC = end - 1
			bodyEnd = end - 1
			if td, fd := c.facts.deadEdges(termPC); td || fd {
				termFusable = false
			}
		}
	}

	// Budget cost: one step per executed instruction; the lddw upper
	// half is skipped by the interpreter too.
	for pc := start; pc < end; pc++ {
		if dec[pc].kind != decLdImm64Hi {
			blk.cost++
		}
	}

	for pc := start; pc < bodyEnd; {
		// Terminator fusion: when everything from pc to the block end
		// matches a capture/prefetch idiom, the remaining body and the
		// control transfer collapse into a single closure. A
		// conditional with a statically dead edge is never fused:
		// compileTerm flattens it into an unconditional transfer.
		if termPC >= 0 && termFusable {
			if t, ok := c.fuseTerm(pc, bodyEnd, termPC); ok {
				blk.term = t
				return blk, true
			}
		}
		if op, next, ok := c.fuseCallPreamble(pc, bodyEnd); ok {
			blk.ops = append(blk.ops, op)
			pc = next
			continue
		}
		if op, next, ok := c.fuseStorePair(pc, bodyEnd); ok {
			blk.ops = append(blk.ops, op)
			pc = next
			continue
		}
		if op, next, ok := c.fuseLoadAddStore(pc, bodyEnd); ok {
			blk.ops = append(blk.ops, op)
			pc = next
			continue
		}
		op, next, ok := c.compileOne(pc)
		if !ok {
			return blk, false
		}
		blk.ops = append(blk.ops, op)
		pc = next
	}

	if termPC < 0 {
		// Fallthrough into the next leader.
		ni, ok := c.blockIdx[end]
		if !ok {
			return blk, false
		}
		blk.next = ni
		return blk, true
	}
	return c.compileTerm(&blk, termPC)
}

// compileTerm fills in the block's control transfer.
func (c *jitCompiler) compileTerm(blk *jitBlock, pc int) (jitBlock, bool) {
	in := &c.dec[pc]
	switch in.kind {
	case decExit:
		blk.term = exitTerm
		return *blk, true
	case decJa:
		ni, ok := c.blockIdx[pc+int(in.off)]
		if !ok {
			return *blk, false
		}
		blk.next = ni
		return *blk, true
	case decJump, decJump32:
		takenDead, fallDead := c.facts.deadEdges(pc)
		if takenDead || fallDead {
			// One edge is statically infeasible: the conditional
			// flattens into an unconditional transfer. The block cost
			// still charges the jump instruction, exactly as the
			// interpreter would on the (only possible) edge.
			target := pc + 1
			if fallDead {
				target = pc + int(in.off)
			}
			ni, ok := c.blockIdx[target]
			if !ok {
				return *blk, false
			}
			blk.next = ni
			return *blk, true
		}
		taken, ok1 := c.blockIdx[pc+int(in.off)]
		fall, ok2 := c.blockIdx[pc+1]
		if !ok1 || !ok2 {
			return *blk, false
		}
		t := jmpTerm(in, taken, fall)
		if t == nil {
			return *blk, false
		}
		blk.term = t
		return *blk, true
	}
	return *blk, false
}

// fuseTerm tries to fold the whole remaining body [pc, bodyEnd) plus
// the terminator at termPC into one closure, so the hottest blocks of
// a capture/prefetch program execute in a single indirect call.
func (c *jitCompiler) fuseTerm(pc, bodyEnd, termPC int) (jitTerm, bool) {
	switch c.dec[termPC].kind {
	case decExit:
		if t, ok := c.movExitTerm(pc, bodyEnd); ok {
			return t, true
		}
		return c.loadAddStoreExitTerm(pc, bodyEnd)
	case decJump:
		return c.storePairJmpTerm(pc, bodyEnd, termPC)
	}
	return nil, false
}

// storePairJmpTerm fuses the filter prologue every capture program
// opens with — two fp-relative 8-byte register spills feeding a
// conditional branch — into the block's terminator.
func (c *jitCompiler) storePairJmpTerm(pc, bodyEnd, termPC int) (jitTerm, bool) {
	dec := c.dec
	if pc+2 != bodyEnd {
		return nil, false
	}
	a, b := &dec[pc], &dec[pc+1]
	if a.kind != decStx || b.kind != decStx || a.size != 8 || b.size != 8 ||
		a.dst != uint8(R10) || b.dst != uint8(R10) {
		return nil, false
	}
	i1, ok1 := fpIndex(a.off, 8)
	i2, ok2 := fpIndex(b.off, 8)
	if !ok1 || !ok2 {
		return nil, false
	}
	in := &dec[termPC]
	taken, okT := c.blockIdx[termPC+int(in.off)]
	fall, okF := c.blockIdx[termPC+1]
	if !okT || !okF {
		return nil, false
	}
	s1, s2, d := a.src, b.src, in.dst
	if !in.regSrc && in.op == OpJeq {
		k := uint64(in.imm)
		return func(st *runState) int32 {
			binary.LittleEndian.PutUint64(st.stack[i1:], st.regs[s1])
			binary.LittleEndian.PutUint64(st.stack[i2:], st.regs[s2])
			if st.regs[d] == k {
				return taken
			}
			return fall
		}, true
	}
	cmp := jmpCmp(in.op)
	if cmp == nil {
		return nil, false
	}
	if in.regSrc {
		s := in.src
		return func(st *runState) int32 {
			binary.LittleEndian.PutUint64(st.stack[i1:], st.regs[s1])
			binary.LittleEndian.PutUint64(st.stack[i2:], st.regs[s2])
			if cmp(st.regs[d], st.regs[s]) {
				return taken
			}
			return fall
		}, true
	}
	k := uint64(in.imm)
	return func(st *runState) int32 {
		binary.LittleEndian.PutUint64(st.stack[i1:], st.regs[s1])
		binary.LittleEndian.PutUint64(st.stack[i2:], st.regs[s2])
		if cmp(st.regs[d], k) {
			return taken
		}
		return fall
	}, true
}

// loadAddStoreExitTerm fuses the capture program's epilogue — the
// sequence-counter bump `ldxdw r, [fp+o1]; add r, imm` with optional
// spill and optional verdict `mov dst, imm` — straight into the exit.
func (c *jitCompiler) loadAddStoreExitTerm(pc, bodyEnd int) (jitTerm, bool) {
	dec := c.dec
	if pc+1 >= bodyEnd {
		return nil, false
	}
	ld, al := &dec[pc], &dec[pc+1]
	if ld.kind != decLdx || ld.size != 8 || ld.src != uint8(R10) ||
		al.kind != decALU64 || al.op != OpAdd || al.regSrc || al.dst != ld.dst {
		return nil, false
	}
	i1, ok := fpIndex(ld.off, 8)
	if !ok {
		return nil, false
	}
	d, k := ld.dst, uint64(al.imm)
	q := pc + 2
	hasStx, i2 := false, 0
	if q < bodyEnd {
		if stx := &dec[q]; stx.kind == decStx && stx.size == 8 &&
			stx.dst == uint8(R10) && stx.src == d {
			if idx, ok2 := fpIndex(stx.off, 8); ok2 {
				hasStx, i2 = true, idx
				q++
			}
		}
	}
	hasMov, movD, movK := false, uint8(0), uint64(0)
	if q < bodyEnd {
		switch mv := &dec[q]; {
		case mv.kind == decALU64 && mv.op == OpMov && !mv.regSrc && q == bodyEnd-1:
			hasMov, movD, movK = true, mv.dst, uint64(mv.imm)
			q = bodyEnd
		case mv.kind == decLdImm64 && q == bodyEnd-2:
			hasMov, movD, movK = true, mv.dst, mv.imm64
			q = bodyEnd
		}
	}
	if q != bodyEnd {
		return nil, false
	}
	c.readAt(i1)
	return func(st *runState) int32 {
		v := binary.LittleEndian.Uint64(st.stack[i1:]) + k
		st.regs[d] = v
		if hasStx {
			binary.LittleEndian.PutUint64(st.stack[i2:], v)
		}
		if hasMov {
			st.regs[movD] = movK
		}
		return blkExit
	}, true
}

// movExitTerm fuses `mov dst, imm; exit` into one terminator. The
// candidate instruction must be the last one before the exit (a lddw
// occupies two slots).
func (c *jitCompiler) movExitTerm(pc, bodyEnd int) (jitTerm, bool) {
	in := &c.dec[pc]
	switch {
	case in.kind == decALU64 && in.op == OpMov && !in.regSrc && pc == bodyEnd-1:
		d, k := in.dst, uint64(in.imm)
		return func(st *runState) int32 {
			st.regs[d] = k
			return blkExit
		}, true
	case in.kind == decLdImm64 && pc == bodyEnd-2:
		d, k := in.dst, in.imm64
		return func(st *runState) int32 {
			st.regs[d] = k
			return blkExit
		}, true
	}
	return nil, false
}

// ---------------------------------------------------------------------------
// Fusions

// argMode describes how one helper argument is produced by a fused
// call's setup preamble.
type argMode uint8

const (
	argReg      argMode = iota // current value of a register
	argConst                   // compile-time constant
	argRegConst                // register value plus a constant
)

type argSpec struct {
	mode argMode
	reg  uint8
	c    uint64
}

// fuseCallPreamble matches the capture/prefetch call idiom — a run of
// mov-imm / mov-reg / add-imm / lddw instructions that only set up
// R1–R5, immediately followed by a helper call — and compiles the
// whole sequence into a single closure that materializes the argument
// values directly. Skipping the actual R1–R5 writes is unobservable:
// the call clobbers those registers to the same poison value the
// interpreter uses, so the post-call register file is identical.
func (c *jitCompiler) fuseCallPreamble(pc, end int) (jitOp, int, bool) {
	dec := c.dec
	var specs [5]argSpec
	var set [5]bool
	for k := 0; k < 5; k++ {
		specs[k] = argSpec{mode: argReg, reg: uint8(R1) + uint8(k)}
	}
	matched := 0
	j := pc
scan:
	for j < end {
		in := &dec[j]
		switch {
		case in.kind == decALU64 && in.op == OpMov && !in.regSrc &&
			in.dst >= uint8(R1) && in.dst <= uint8(R5):
			specs[in.dst-1] = argSpec{mode: argConst, c: uint64(in.imm)}
			set[in.dst-1] = true
		case in.kind == decALU64 && in.op == OpMov && in.regSrc &&
			in.dst >= uint8(R1) && in.dst <= uint8(R5):
			if in.src >= uint8(R1) && in.src <= uint8(R5) && set[in.src-1] {
				specs[in.dst-1] = specs[in.src-1]
			} else {
				specs[in.dst-1] = argSpec{mode: argReg, reg: in.src}
			}
			set[in.dst-1] = true
		case in.kind == decALU64 && in.op == OpAdd && !in.regSrc &&
			in.dst >= uint8(R1) && in.dst <= uint8(R5) && set[in.dst-1]:
			s := &specs[in.dst-1]
			switch s.mode {
			case argConst:
				s.c += uint64(in.imm)
			case argReg:
				s.mode = argRegConst
				s.c = uint64(in.imm)
			default:
				s.c += uint64(in.imm)
			}
		case in.kind == decLdImm64 && in.dst >= uint8(R1) && in.dst <= uint8(R5):
			specs[in.dst-1] = argSpec{mode: argConst, c: in.imm64}
			set[in.dst-1] = true
			matched++
			j += 2
			continue scan
		default:
			break scan
		}
		matched++
		j++
	}
	if matched == 0 || j >= end || dec[j].kind != decCall || dec[j].helper == nil {
		return nil, 0, false
	}

	// Stack-wipe analysis: any argument that can name a frame address
	// is a potential helper read. fp-relative and in-frame constant
	// arguments contribute their static index; a plain register value
	// could be anything, so it forces the full wipe.
	for k := 0; k < 5; k++ {
		switch s := specs[k]; s.mode {
		case argRegConst:
			// fp + constant: the offset is known; anything else could
			// carry a computed frame pointer.
			if off := int64(s.c); s.reg == uint8(R10) && off >= -StackSize && off <= 0 {
				c.readAt(StackSize + int(off))
			} else {
				c.dynamicRead = true
			}
		case argConst:
			if s.c >= stackTop-StackSize && s.c < stackTop {
				c.readAt(int(s.c - (stackTop - StackSize)))
			}
		default:
			c.dynamicRead = true
		}
	}

	call := &dec[j]
	fn, hname := call.helper, call.hname
	callPC := j
	progName := c.p.Name
	sp := specs
	op := func(st *runState) bool {
		var hargs [5]uint64
		for k := 0; k < 5; k++ {
			switch s := &sp[k]; s.mode {
			case argConst:
				hargs[k] = s.c
			case argReg:
				hargs[k] = st.regs[s.reg]
			default:
				hargs[k] = st.regs[s.reg] + s.c
			}
		}
		r0, err := fn(&st.ctx, hargs)
		if err != nil {
			st.err = fmt.Errorf("ebpf: %s @%d: helper %s: %w", progName, callPC, hname, err)
			return false
		}
		st.regs[R0] = r0
		for r := R1; r <= R5; r++ {
			st.regs[r] = poison
		}
		return true
	}
	return op, j + 1, true
}

// fuseStorePair fuses two consecutive fp-relative 8-byte register
// stores (the argument-spill prologue every program opens with).
func (c *jitCompiler) fuseStorePair(pc, end int) (jitOp, int, bool) {
	dec := c.dec
	if pc+1 >= end {
		return nil, 0, false
	}
	a, b := &dec[pc], &dec[pc+1]
	if a.kind != decStx || b.kind != decStx || a.size != 8 || b.size != 8 ||
		a.dst != uint8(R10) || b.dst != uint8(R10) {
		return nil, 0, false
	}
	i1, ok1 := fpIndex(a.off, 8)
	i2, ok2 := fpIndex(b.off, 8)
	if !ok1 || !ok2 {
		return nil, 0, false
	}
	s1, s2 := a.src, b.src
	op := func(st *runState) bool {
		binary.LittleEndian.PutUint64(st.stack[i1:], st.regs[s1])
		binary.LittleEndian.PutUint64(st.stack[i2:], st.regs[s2])
		return true
	}
	return op, pc + 2, true
}

// fuseLoadAddStore fuses `ldxdw r, [fp+o1]; add r, imm` and the
// optional trailing `stxdw [fp+o2], r` — the capture program's
// sequence-counter bump.
func (c *jitCompiler) fuseLoadAddStore(pc, end int) (jitOp, int, bool) {
	dec := c.dec
	if pc+1 >= end {
		return nil, 0, false
	}
	ld, al := &dec[pc], &dec[pc+1]
	if ld.kind != decLdx || ld.size != 8 || ld.src != uint8(R10) ||
		al.kind != decALU64 || al.op != OpAdd || al.regSrc || al.dst != ld.dst {
		return nil, 0, false
	}
	i1, ok := fpIndex(ld.off, 8)
	if !ok {
		return nil, 0, false
	}
	c.readAt(i1)
	d, k := ld.dst, uint64(al.imm)
	if pc+2 < end {
		if stx := &dec[pc+2]; stx.kind == decStx && stx.size == 8 &&
			stx.dst == uint8(R10) && stx.src == d {
			if i2, ok2 := fpIndex(stx.off, 8); ok2 {
				op := func(st *runState) bool {
					v := binary.LittleEndian.Uint64(st.stack[i1:]) + k
					st.regs[d] = v
					binary.LittleEndian.PutUint64(st.stack[i2:], v)
					return true
				}
				return op, pc + 3, true
			}
		}
	}
	op := func(st *runState) bool {
		st.regs[d] = binary.LittleEndian.Uint64(st.stack[i1:]) + k
		return true
	}
	return op, pc + 2, true
}

// ---------------------------------------------------------------------------
// Single-instruction templates

// compileOne translates one decoded instruction into a closure.
func (c *jitCompiler) compileOne(pc int) (jitOp, int, bool) {
	in := &c.dec[pc]
	switch in.kind {
	case decALU64:
		op := alu64Op(in)
		return op, pc + 1, op != nil
	case decALU32:
		op := alu32Op(in)
		return op, pc + 1, op != nil
	case decLdImm64:
		d, k := in.dst, in.imm64
		return func(st *runState) bool {
			st.regs[d] = k
			return true
		}, pc + 2, true
	case decLdx:
		return c.ldxOp(in, pc), pc + 1, true
	case decStx:
		return c.stxOp(in, pc), pc + 1, true
	case decSt:
		return c.stOp(in, pc), pc + 1, true
	case decCall:
		if in.helper == nil {
			return nil, 0, false
		}
		// A call with no fusable preamble: argument values are whatever
		// the registers hold, which may include computed stack
		// pointers — full wipe.
		c.dynamicRead = true
		fn, hname, progName, callPC := in.helper, in.hname, c.p.Name, pc
		return func(st *runState) bool {
			var hargs [5]uint64
			copy(hargs[:], st.regs[R1:R6])
			r0, err := fn(&st.ctx, hargs)
			if err != nil {
				st.err = fmt.Errorf("ebpf: %s @%d: helper %s: %w", progName, callPC, hname, err)
				return false
			}
			st.regs[R0] = r0
			for r := R1; r <= R5; r++ {
				st.regs[r] = poison
			}
			return true
		}, pc + 1, true
	}
	return nil, 0, false
}

// ldxOp loads through a register base; the fp-static form skips the
// runtime bounds check (R10 is read-only, so the address is known).
func (c *jitCompiler) ldxOp(in *decoded, pc int) jitOp {
	d, size := in.dst, int(in.size)
	if in.src == uint8(R10) {
		if idx, ok := fpIndex(in.off, size); ok {
			c.readAt(idx)
			switch size {
			case 1:
				return func(st *runState) bool {
					st.regs[d] = uint64(st.stack[idx])
					return true
				}
			case 2:
				return func(st *runState) bool {
					st.regs[d] = uint64(binary.LittleEndian.Uint16(st.stack[idx:]))
					return true
				}
			case 4:
				return func(st *runState) bool {
					st.regs[d] = uint64(binary.LittleEndian.Uint32(st.stack[idx:]))
					return true
				}
			default:
				return func(st *runState) bool {
					st.regs[d] = binary.LittleEndian.Uint64(st.stack[idx:])
					return true
				}
			}
		}
	}
	c.dynamicRead = true
	s, off, progName := in.src, int64(in.off), c.p.Name
	return func(st *runState) bool {
		addr := st.regs[s] + uint64(off)
		i, err := stackIndex(addr, size)
		if err != nil {
			st.err = fmt.Errorf("ebpf: %s @%d: %w", progName, pc, err)
			return false
		}
		st.regs[d] = loadSized(st.stack[i:], size)
		return true
	}
}

// stxOp stores a register through a register base.
func (c *jitCompiler) stxOp(in *decoded, pc int) jitOp {
	s, size := in.src, int(in.size)
	if in.dst == uint8(R10) {
		if idx, ok := fpIndex(in.off, size); ok {
			switch size {
			case 1:
				return func(st *runState) bool {
					st.stack[idx] = byte(st.regs[s])
					return true
				}
			case 2:
				return func(st *runState) bool {
					binary.LittleEndian.PutUint16(st.stack[idx:], uint16(st.regs[s]))
					return true
				}
			case 4:
				return func(st *runState) bool {
					binary.LittleEndian.PutUint32(st.stack[idx:], uint32(st.regs[s]))
					return true
				}
			default:
				return func(st *runState) bool {
					binary.LittleEndian.PutUint64(st.stack[idx:], st.regs[s])
					return true
				}
			}
		}
	}
	d, off, progName := in.dst, int64(in.off), c.p.Name
	return func(st *runState) bool {
		addr := st.regs[d] + uint64(off)
		i, err := stackIndex(addr, size)
		if err != nil {
			st.err = fmt.Errorf("ebpf: %s @%d: %w", progName, pc, err)
			return false
		}
		storeSized(st.stack[i:], size, st.regs[s])
		return true
	}
}

// stOp stores an immediate through a register base.
func (c *jitCompiler) stOp(in *decoded, pc int) jitOp {
	size, k := int(in.size), uint64(in.imm)
	if in.dst == uint8(R10) {
		if idx, ok := fpIndex(in.off, size); ok {
			switch size {
			case 1:
				return func(st *runState) bool {
					st.stack[idx] = byte(k)
					return true
				}
			case 2:
				return func(st *runState) bool {
					binary.LittleEndian.PutUint16(st.stack[idx:], uint16(k))
					return true
				}
			case 4:
				return func(st *runState) bool {
					binary.LittleEndian.PutUint32(st.stack[idx:], uint32(k))
					return true
				}
			default:
				return func(st *runState) bool {
					binary.LittleEndian.PutUint64(st.stack[idx:], k)
					return true
				}
			}
		}
	}
	d, off, progName := in.dst, int64(in.off), c.p.Name
	return func(st *runState) bool {
		addr := st.regs[d] + uint64(off)
		i, err := stackIndex(addr, size)
		if err != nil {
			st.err = fmt.Errorf("ebpf: %s @%d: %w", progName, pc, err)
			return false
		}
		storeSized(st.stack[i:], size, k)
		return true
	}
}

// alu64Op specializes one 64-bit ALU instruction. Division and modulo
// by a zero immediate are rejected by the verifier, so the immediate
// forms need no zero branch; register forms keep the kernel's
// div-by-zero semantics inline.
func alu64Op(in *decoded) jitOp {
	d := in.dst
	if in.regSrc {
		s := in.src
		switch in.op {
		case OpAdd:
			return func(st *runState) bool { st.regs[d] += st.regs[s]; return true }
		case OpSub:
			return func(st *runState) bool { st.regs[d] -= st.regs[s]; return true }
		case OpMul:
			return func(st *runState) bool { st.regs[d] *= st.regs[s]; return true }
		case OpDiv:
			return func(st *runState) bool {
				if v := st.regs[s]; v == 0 {
					st.regs[d] = 0
				} else {
					st.regs[d] /= v
				}
				return true
			}
		case OpMod:
			return func(st *runState) bool {
				if v := st.regs[s]; v != 0 {
					st.regs[d] %= v
				}
				return true
			}
		case OpAnd:
			return func(st *runState) bool { st.regs[d] &= st.regs[s]; return true }
		case OpOr:
			return func(st *runState) bool { st.regs[d] |= st.regs[s]; return true }
		case OpXor:
			return func(st *runState) bool { st.regs[d] ^= st.regs[s]; return true }
		case OpLsh:
			return func(st *runState) bool { st.regs[d] <<= st.regs[s] & 63; return true }
		case OpRsh:
			return func(st *runState) bool { st.regs[d] >>= st.regs[s] & 63; return true }
		case OpArsh:
			return func(st *runState) bool {
				st.regs[d] = uint64(int64(st.regs[d]) >> (st.regs[s] & 63))
				return true
			}
		case OpNeg:
			return func(st *runState) bool {
				st.regs[d] = uint64(-int64(st.regs[d]))
				return true
			}
		case OpMov:
			return func(st *runState) bool { st.regs[d] = st.regs[s]; return true }
		}
		return nil
	}
	k := uint64(in.imm)
	switch in.op {
	case OpAdd:
		return func(st *runState) bool { st.regs[d] += k; return true }
	case OpSub:
		return func(st *runState) bool { st.regs[d] -= k; return true }
	case OpMul:
		return func(st *runState) bool { st.regs[d] *= k; return true }
	case OpDiv:
		if k == 0 {
			return nil // verifier-rejected; leave it to the interpreter
		}
		return func(st *runState) bool { st.regs[d] /= k; return true }
	case OpMod:
		if k == 0 {
			return nil
		}
		return func(st *runState) bool { st.regs[d] %= k; return true }
	case OpAnd:
		return func(st *runState) bool { st.regs[d] &= k; return true }
	case OpOr:
		return func(st *runState) bool { st.regs[d] |= k; return true }
	case OpXor:
		return func(st *runState) bool { st.regs[d] ^= k; return true }
	case OpLsh:
		sh := k & 63
		return func(st *runState) bool { st.regs[d] <<= sh; return true }
	case OpRsh:
		sh := k & 63
		return func(st *runState) bool { st.regs[d] >>= sh; return true }
	case OpArsh:
		sh := k & 63
		return func(st *runState) bool {
			st.regs[d] = uint64(int64(st.regs[d]) >> sh)
			return true
		}
	case OpNeg:
		return func(st *runState) bool {
			st.regs[d] = uint64(-int64(st.regs[d]))
			return true
		}
	case OpMov:
		return func(st *runState) bool { st.regs[d] = k; return true }
	}
	return nil
}

// alu32Op specializes one 32-bit ALU instruction; results zero the
// upper half, as in the interpreter and on hardware.
func alu32Op(in *decoded) jitOp {
	d := in.dst
	if in.regSrc {
		s := in.src
		switch in.op {
		case OpAdd:
			return func(st *runState) bool {
				st.regs[d] = uint64(uint32(st.regs[d]) + uint32(st.regs[s]))
				return true
			}
		case OpSub:
			return func(st *runState) bool {
				st.regs[d] = uint64(uint32(st.regs[d]) - uint32(st.regs[s]))
				return true
			}
		case OpMul:
			return func(st *runState) bool {
				st.regs[d] = uint64(uint32(st.regs[d]) * uint32(st.regs[s]))
				return true
			}
		case OpDiv:
			return func(st *runState) bool {
				if v := uint32(st.regs[s]); v == 0 {
					st.regs[d] = 0
				} else {
					st.regs[d] = uint64(uint32(st.regs[d]) / v)
				}
				return true
			}
		case OpMod:
			return func(st *runState) bool {
				dv := uint32(st.regs[d])
				if v := uint32(st.regs[s]); v != 0 {
					dv %= v
				}
				st.regs[d] = uint64(dv)
				return true
			}
		case OpAnd:
			return func(st *runState) bool {
				st.regs[d] = uint64(uint32(st.regs[d]) & uint32(st.regs[s]))
				return true
			}
		case OpOr:
			return func(st *runState) bool {
				st.regs[d] = uint64(uint32(st.regs[d]) | uint32(st.regs[s]))
				return true
			}
		case OpXor:
			return func(st *runState) bool {
				st.regs[d] = uint64(uint32(st.regs[d]) ^ uint32(st.regs[s]))
				return true
			}
		case OpLsh:
			return func(st *runState) bool {
				st.regs[d] = uint64(uint32(st.regs[d]) << (uint32(st.regs[s]) & 31))
				return true
			}
		case OpRsh:
			return func(st *runState) bool {
				st.regs[d] = uint64(uint32(st.regs[d]) >> (uint32(st.regs[s]) & 31))
				return true
			}
		case OpArsh:
			return func(st *runState) bool {
				st.regs[d] = uint64(uint32(int32(uint32(st.regs[d])) >> (uint32(st.regs[s]) & 31)))
				return true
			}
		case OpNeg:
			return func(st *runState) bool {
				st.regs[d] = uint64(uint32(-int32(uint32(st.regs[d]))))
				return true
			}
		case OpMov:
			return func(st *runState) bool {
				st.regs[d] = uint64(uint32(st.regs[s]))
				return true
			}
		}
		return nil
	}
	k := uint32(in.imm)
	switch in.op {
	case OpAdd:
		return func(st *runState) bool {
			st.regs[d] = uint64(uint32(st.regs[d]) + k)
			return true
		}
	case OpSub:
		return func(st *runState) bool {
			st.regs[d] = uint64(uint32(st.regs[d]) - k)
			return true
		}
	case OpMul:
		return func(st *runState) bool {
			st.regs[d] = uint64(uint32(st.regs[d]) * k)
			return true
		}
	case OpDiv:
		if k == 0 {
			return nil
		}
		return func(st *runState) bool {
			st.regs[d] = uint64(uint32(st.regs[d]) / k)
			return true
		}
	case OpMod:
		if k == 0 {
			return nil
		}
		return func(st *runState) bool {
			st.regs[d] = uint64(uint32(st.regs[d]) % k)
			return true
		}
	case OpAnd:
		return func(st *runState) bool {
			st.regs[d] = uint64(uint32(st.regs[d]) & k)
			return true
		}
	case OpOr:
		return func(st *runState) bool {
			st.regs[d] = uint64(uint32(st.regs[d]) | k)
			return true
		}
	case OpXor:
		return func(st *runState) bool {
			st.regs[d] = uint64(uint32(st.regs[d]) ^ k)
			return true
		}
	case OpLsh:
		sh := k & 31
		return func(st *runState) bool {
			st.regs[d] = uint64(uint32(st.regs[d]) << sh)
			return true
		}
	case OpRsh:
		sh := k & 31
		return func(st *runState) bool {
			st.regs[d] = uint64(uint32(st.regs[d]) >> sh)
			return true
		}
	case OpArsh:
		sh := k & 31
		return func(st *runState) bool {
			st.regs[d] = uint64(uint32(int32(uint32(st.regs[d])) >> sh))
			return true
		}
	case OpNeg:
		return func(st *runState) bool {
			st.regs[d] = uint64(uint32(-int32(uint32(st.regs[d]))))
			return true
		}
	case OpMov:
		return func(st *runState) bool {
			st.regs[d] = uint64(k)
			return true
		}
	}
	return nil
}

// jmpTerm specializes a conditional jump into a terminator holding its
// two successor block indexes. JMP32 forms sign-extend the low word
// exactly as the interpreter does before comparing.
func jmpTerm(in *decoded, taken, fall int32) jitTerm {
	d := in.dst
	j32 := in.kind == decJump32
	sext := func(v uint64) uint64 { return uint64(int64(int32(uint32(v)))) }
	if in.regSrc {
		s := in.src
		cmp := jmpCmp(in.op)
		if cmp == nil {
			return nil
		}
		if j32 {
			return func(st *runState) int32 {
				if cmp(sext(st.regs[d]), sext(st.regs[s])) {
					return taken
				}
				return fall
			}
		}
		return func(st *runState) int32 {
			if cmp(st.regs[d], st.regs[s]) {
				return taken
			}
			return fall
		}
	}
	k := uint64(in.imm)
	if j32 {
		k = sext(k)
	}
	cmp := jmpCmp(in.op)
	if cmp == nil {
		return nil
	}
	if j32 {
		return func(st *runState) int32 {
			if cmp(sext(st.regs[d]), k) {
				return taken
			}
			return fall
		}
	}
	return func(st *runState) int32 {
		if cmp(st.regs[d], k) {
			return taken
		}
		return fall
	}
}

// jmpCmp returns the comparison predicate for a jump operation.
func jmpCmp(op uint8) func(dst, src uint64) bool {
	switch op {
	case OpJeq:
		return func(d, s uint64) bool { return d == s }
	case OpJne:
		return func(d, s uint64) bool { return d != s }
	case OpJgt:
		return func(d, s uint64) bool { return d > s }
	case OpJge:
		return func(d, s uint64) bool { return d >= s }
	case OpJlt:
		return func(d, s uint64) bool { return d < s }
	case OpJle:
		return func(d, s uint64) bool { return d <= s }
	case OpJset:
		return func(d, s uint64) bool { return d&s != 0 }
	case OpJsgt:
		return func(d, s uint64) bool { return int64(d) > int64(s) }
	case OpJsge:
		return func(d, s uint64) bool { return int64(d) >= int64(s) }
	case OpJslt:
		return func(d, s uint64) bool { return int64(d) < int64(s) }
	case OpJsle:
		return func(d, s uint64) bool { return int64(d) <= int64(s) }
	}
	return nil
}

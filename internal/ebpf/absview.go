package ebpf

import (
	"fmt"
	"io"

	"snapbpf/internal/ebpf/absint"
)

// Bridge to the abstract interpreter. absint is a leaf package with a
// mirrored instruction encoding (pinned by TestAbsintConstsMatch), so
// converting a program is a field-for-field copy.

// absInsns converts a program to the analyzer's instruction type.
func absInsns(insns []Instruction) []absint.Insn {
	out := make([]absint.Insn, len(insns))
	for i, in := range insns {
		out[i] = absint.Insn{
			Op:  in.Op,
			Dst: uint8(in.Dst),
			Src: uint8(in.Src),
			Off: in.Off,
			Imm: in.Imm,
		}
	}
	return out
}

// absintOpts adapts a helper resolver into the analyzer's environment
// callbacks, mirroring exactly what the structural verifier consults.
func absintOpts(res helperResolver) absint.Opts {
	var opts absint.Opts
	if res != nil {
		opts.KnownHelper = func(id int32) bool {
			_, ok := res.Helper(id)
			return ok
		}
	}
	if maps, ok := res.(mapResolver); ok && maps != nil {
		opts.ValidMapFD = func(fd int64) bool {
			if fd < 0 || fd > 1<<31-1 {
				return false
			}
			_, ok := maps.MapByFD(int32(fd))
			return ok
		}
		// Map-helper argument discipline is only enforced when maps
		// can be resolved at all, matching the structural pass.
		opts.MapHelper = isMapHelper
	}
	return opts
}

// analyzeProgram runs the abstract interpreter over a raw program.
func analyzeProgram(insns []Instruction, res helperResolver) *absint.Result {
	return absint.Analyze(absInsns(insns), absintOpts(res))
}

// jitFactsFrom projects an analysis result into the compiler-facing
// fact set. Non-OK results yield nil: pruning decisions are only ever
// taken from a proof that covers the whole program.
func jitFactsFrom(r *absint.Result) *jitFacts {
	if r == nil || !r.OK {
		return nil
	}
	f := &jitFacts{
		reachable: r.Reachable,
		branches:  make(map[int]absintBranch, len(r.Branches)),
		worstCase: r.WorstCase,
	}
	for pc, br := range r.Branches {
		f.branches[pc] = absintBranch{takenDead: br.TakenDead, fallDead: br.FallDead}
	}
	return f
}

// WriteAbsintReport renders an analysis result as the human-readable
// static-analysis report shared by `snapbpf-bench -absint-report` and
// `snapbpf-ebpf-check`: verdict, worst-case cost, then every finding
// with its disassembled instruction. It returns the number of
// unproven accesses (the contract `snapbpf-ebpf-check` enforces).
func WriteAbsintReport(w io.Writer, name string, insns []Instruction, r *absint.Result) int {
	verdict := "OK"
	if !r.OK {
		verdict = "REJECTED"
	}
	fmt.Fprintf(w, "program %s: %s, %d insns", name, verdict, len(insns))
	if r.WorstCase >= 0 {
		fmt.Fprintf(w, ", worst case %d insns", r.WorstCase)
	} else {
		fmt.Fprintf(w, ", worst case unbounded (dynamic budget applies)")
	}
	fmt.Fprintln(w)
	if r.Err != nil {
		fmt.Fprintf(w, "  error at pc %d: %s\n    state: %s\n", r.Err.PC, r.Err.Msg, r.Err.State)
	}
	unproven := 0
	for _, f := range r.Findings {
		if f.Kind == "unproven-access" {
			unproven++
		}
		insn := ""
		if f.PC >= 0 && f.PC < len(insns) {
			insn = fmt.Sprintf("  [%s]", insns[f.PC])
		}
		fmt.Fprintf(w, "  %-17s pc %3d: %s%s\n", f.Kind, f.PC, f.Msg, insn)
	}
	return unproven
}

// Analyze runs the abstract interpreter over insns in this VM's
// helper/map environment and returns the full result: reachability,
// per-branch feasibility, findings, and the static worst-case
// instruction bound. It does not require the program to pass Verify.
func (vm *VM) Analyze(insns []Instruction) *absint.Result {
	return analyzeProgram(insns, vm)
}

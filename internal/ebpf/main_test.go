package ebpf

import (
	"fmt"
	"os"
	"testing"
)

// TestMain honors SNAPBPF_EBPF_ENGINE for the whole package test run,
// so `scripts/bench_json.sh` measures the engine it stamps into
// bench.json instead of silently benchmarking the default. An unknown
// value is a fatal configuration error, not a silent fallback.
func TestMain(m *testing.M) {
	//lint:allow detnondet engine selection for the bench harness, not simulation state
	if s, ok := os.LookupEnv("SNAPBPF_EBPF_ENGINE"); ok {
		e, err := ParseEngine(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "SNAPBPF_EBPF_ENGINE: %v\n", err)
			os.Exit(2)
		}
		SetDefaultEngine(e)
	}
	os.Exit(m.Run())
}

package absint

// Branch feasibility and refinement, modelled on the kernel's
// reg_set_min_max: given the two operand abstractions of a
// conditional jump, decide whether the taken (or fall-through) edge
// is reachable at all and, when it is, narrow the operands with the
// fact the condition establishes on that edge.

// intersectVal narrows a to values also represented by b. The second
// return is false when the intersection is empty.
func intersectVal(a, b Val) (Val, bool) {
	tn, ok := a.TN.Intersect(b.TN)
	if !ok {
		return Val{}, false
	}
	r := Val{
		K: KindScalar, TN: tn,
		Umin: max(a.Umin, b.Umin), Umax: min(a.Umax, b.Umax),
		Smin: max(a.Smin, b.Smin), Smax: min(a.Smax, b.Smax),
	}
	if r.Umin > r.Umax || r.Smin > r.Smax {
		return Val{}, false
	}
	if !r.sync() {
		return Val{}, false
	}
	return r, true
}

// canonCond maps (jump op, edge) to a canonical condition: the fall
// edge establishes the negation.
func canonCond(op uint8, taken bool) (uint8, bool) {
	if taken {
		return op, true
	}
	switch op {
	case OpJeq:
		return OpJne, true
	case OpJne:
		return OpJeq, true
	case OpJgt:
		return OpJle, true
	case OpJle:
		return OpJgt, true
	case OpJge:
		return OpJlt, true
	case OpJlt:
		return OpJge, true
	case OpJsgt:
		return OpJsle, true
	case OpJsle:
		return OpJsgt, true
	case OpJsge:
		return OpJslt, true
	case OpJslt:
		return OpJsge, true
	}
	return op, false // JSET: no opcode for the negation
}

// refineCond returns the operands narrowed by "cond holds" for the
// given edge of a conditional jump, or feasible=false when no
// concrete operand pair can take that edge. negated covers the
// fall-through edge of JSET, which has no canonical opcode.
func refineCond(op uint8, d, s Val, taken bool) (d2, s2 Val, feasible bool) {
	cond, direct := canonCond(op, taken)
	if !direct {
		return refineNotSet(d, s)
	}
	switch cond {
	case OpJeq:
		nd, ok1 := intersectVal(d, s)
		if !ok1 {
			return d, s, false
		}
		ns, ok2 := intersectVal(s, d)
		if !ok2 {
			return d, s, false
		}
		return nd, ns, true

	case OpJne:
		if dc, ok := d.IsConst(); ok {
			if sc, ok2 := s.IsConst(); ok2 && dc == sc {
				return d, s, false
			}
		}
		d = trimNe(d, s)
		s = trimNe(s, d)
		if !d.sync() || !s.sync() {
			return d, s, false
		}
		return d, s, true

	case OpJgt: // d > s unsigned
		if d.Umax <= s.Umin {
			return d, s, false
		}
		d.Umin = max(d.Umin, s.Umin+1)
		s.Umax = min(s.Umax, d.Umax-1)

	case OpJge:
		if d.Umax < s.Umin {
			return d, s, false
		}
		d.Umin = max(d.Umin, s.Umin)
		s.Umax = min(s.Umax, d.Umax)

	case OpJlt:
		if d.Umin >= s.Umax {
			return d, s, false
		}
		d.Umax = min(d.Umax, s.Umax-1)
		s.Umin = max(s.Umin, d.Umin+1)

	case OpJle:
		if d.Umin > s.Umax {
			return d, s, false
		}
		d.Umax = min(d.Umax, s.Umax)
		s.Umin = max(s.Umin, d.Umin)

	case OpJsgt:
		if d.Smax <= s.Smin {
			return d, s, false
		}
		d.Smin = max(d.Smin, s.Smin+1)
		s.Smax = min(s.Smax, d.Smax-1)

	case OpJsge:
		if d.Smax < s.Smin {
			return d, s, false
		}
		d.Smin = max(d.Smin, s.Smin)
		s.Smax = min(s.Smax, d.Smax)

	case OpJslt:
		if d.Smin >= s.Smax {
			return d, s, false
		}
		d.Smax = min(d.Smax, s.Smax-1)
		s.Smin = max(s.Smin, d.Smin+1)

	case OpJsle:
		if d.Smin > s.Smax {
			return d, s, false
		}
		d.Smax = min(d.Smax, s.Smax)
		s.Smin = max(s.Smin, d.Smin)

	case OpJset: // d & s != 0
		if (d.TN.Value|d.TN.Mask)&(s.TN.Value|s.TN.Mask) == 0 {
			return d, s, false
		}
		if sc, ok := s.IsConst(); ok && sc != 0 && sc&(sc-1) == 0 {
			// Single test bit: it must be set in d.
			if sc&^(d.TN.Value|d.TN.Mask) != 0 {
				return d, s, false
			}
			d.TN.Value |= sc
			d.TN.Mask &^= sc
		}

	default:
		// Unknown comparison: assume feasible, refine nothing.
		return d, s, true
	}
	if !d.sync() || !s.sync() {
		return d, s, false
	}
	return d, s, true
}

// refineNotSet handles the fall-through edge of JSET: d & s == 0.
func refineNotSet(d, s Val) (Val, Val, bool) {
	if d.TN.Value&s.TN.Value != 0 {
		return d, s, false // a bit known set in both is always set in d&s
	}
	if sc, ok := s.IsConst(); ok {
		if d.TN.Value&sc != 0 {
			return d, s, false
		}
		d.TN.Mask &^= sc // every tested bit is known zero
		if !d.sync() {
			return d, s, false
		}
	}
	return d, s, true
}

// trimNe shaves a constant other operand off a's interval endpoints.
func trimNe(a, other Val) Val {
	c, ok := other.IsConst()
	if !ok {
		return a
	}
	if a.Umin == c && a.Umin < a.Umax {
		a.Umin++
	}
	if a.Umax == c && a.Umax > a.Umin {
		a.Umax--
	}
	if a.Smin == int64(c) && a.Smin < a.Smax {
		a.Smin++
	}
	if a.Smax == int64(c) && a.Smax > a.Smin {
		a.Smax--
	}
	return a
}

package absint

import (
	"math/rand"
	"testing"
)

// containsU reports whether scalar abstraction v represents the
// concrete 64-bit value x — the soundness predicate all transfer
// function tests check.
func containsU(v Val, x uint64) bool {
	return v.K == KindScalar &&
		v.TN.Contains(x) &&
		v.Umin <= x && x <= v.Umax &&
		v.Smin <= int64(x) && int64(x) <= v.Smax
}

// randVal builds a random sound abstraction together with concrete
// sample values it must represent (constructed purely from constVal
// and joinScalar, whose soundness the join test establishes).
func randVal(rng *rand.Rand) (Val, []uint64) {
	base := interestingU64(rng)
	v := constVal(base)
	samples := []uint64{base}
	for i := rng.Intn(3); i > 0; i-- {
		c := interestingU64(rng)
		v = joinScalar(v, constVal(c))
		samples = append(samples, c)
	}
	return v, samples
}

func interestingU64(rng *rand.Rand) uint64 {
	switch rng.Intn(6) {
	case 0:
		return uint64(rng.Intn(16))
	case 1:
		return uint64(rng.Int63())
	case 2:
		return rng.Uint64()
	case 3:
		return ^uint64(0) - uint64(rng.Intn(16))
	case 4:
		return uint64(1)<<63 + uint64(rng.Intn(1024)) - 512
	default:
		return uint64(1)<<32 + uint64(rng.Intn(1024)) - 512
	}
}

// TestTransfer64Sound checks every 64-bit transfer function against
// the interpreter's concrete semantics over random abstractions.
func TestTransfer64Sound(t *testing.T) {
	ops := []uint8{OpAdd, OpSub, OpMul, OpDiv, OpMod, OpAnd, OpOr, OpXor, OpLsh, OpRsh, OpArsh, OpNeg, OpMov}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30000; trial++ {
		a, as := randVal(rng)
		b, bs := randVal(rng)
		op := ops[rng.Intn(len(ops))]
		r := alu64Scalar(op, a, b)
		for _, ca := range as {
			for _, cb := range bs {
				c := concrete64(op, ca, cb)
				if !containsU(r, c) {
					t.Fatalf("op %#x: %s op %s = %s misses %#x (from %#x, %#x)",
						op, a, b, r, c, ca, cb)
				}
			}
		}
	}
}

// TestTransfer32Sound checks the 32-bit transfers: operands are low32
// views, results zero-extended.
func TestTransfer32Sound(t *testing.T) {
	ops := []uint8{OpAdd, OpSub, OpMul, OpDiv, OpMod, OpAnd, OpOr, OpXor, OpLsh, OpRsh, OpArsh, OpMov}
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 30000; trial++ {
		a, as := randVal(rng)
		b, bs := randVal(rng)
		op := ops[rng.Intn(len(ops))]
		r := alu32Scalar(op, low32(a), low32(b))
		for _, ca := range as {
			for _, cb := range bs {
				c := uint64(concrete32(op, uint32(ca), uint32(cb)))
				if !containsU(r, c) {
					t.Fatalf("op32 %#x: %s op %s = %s misses %#x (from %#x, %#x)",
						op, a, b, r, c, ca, cb)
				}
			}
		}
	}
}

// TestViews32Sound checks low32/trunc32/sext32 against their concrete
// counterparts.
func TestViews32Sound(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30000; trial++ {
		v, samples := randVal(rng)
		l := low32(v)
		s := sext32(l)
		for _, c := range samples {
			if !containsU(l, uint64(uint32(c))) {
				t.Fatalf("low32(%s) = %s misses %#x", v, l, uint32(c))
			}
			if !containsU(s, uint64(int64(int32(uint32(c))))) {
				t.Fatalf("sext32(low32(%s)) = %s misses %#x", v, s, uint64(int64(int32(uint32(c)))))
			}
		}
		tr := trunc32(v)
		for _, c := range samples {
			if c <= uint64(1)<<32-1 && v.Umax <= uint64(1)<<32-1 {
				if !containsU(tr, c) {
					t.Fatalf("trunc32(%s) = %s misses %#x", v, tr, c)
				}
			}
		}
	}
}

// TestJoinAndSyncSound checks that joins keep representing both sides
// and that sync never drops represented values.
func TestJoinAndSyncSound(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 50000; trial++ {
		a, as := randVal(rng)
		b, bs := randVal(rng)
		j := joinScalar(a, b)
		for _, c := range append(append([]uint64{}, as...), bs...) {
			if !containsU(j, c) {
				t.Fatalf("join(%s, %s) = %s misses %#x", a, b, j, c)
			}
		}
		s := j
		if !s.sync() {
			t.Fatalf("sync of sound join (%s) reported contradiction", j)
		}
		for _, c := range as {
			if !containsU(s, c) {
				t.Fatalf("sync(%s) = %s dropped %#x", j, s, c)
			}
		}
	}
}

// TestWidenSound checks that widening keeps representing the values
// of its (already joined) input.
func TestWidenSound(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 20000; trial++ {
		prev, _ := randVal(rng)
		next, samples := randVal(rng)
		merged := joinScalar(prev, next)
		w := widen(prev, merged)
		for _, c := range samples {
			if !containsU(w, c) {
				t.Fatalf("widen(%s, %s) = %s misses %#x", prev, merged, w, c)
			}
		}
	}
}

// concreteTaken mirrors the interpreter's jumpTaken on 64-bit values.
func concreteTaken(op uint8, dst, src uint64) bool {
	switch op {
	case OpJeq:
		return dst == src
	case OpJne:
		return dst != src
	case OpJgt:
		return dst > src
	case OpJge:
		return dst >= src
	case OpJlt:
		return dst < src
	case OpJle:
		return dst <= src
	case OpJsgt:
		return int64(dst) > int64(src)
	case OpJsge:
		return int64(dst) >= int64(src)
	case OpJslt:
		return int64(dst) < int64(src)
	case OpJsle:
		return int64(dst) <= int64(src)
	case OpJset:
		return dst&src != 0
	}
	return false
}

// TestRefineCondSound: whenever a concrete operand pair takes an
// edge, refineCond must call that edge feasible and the refined
// abstractions must still represent the pair.
func TestRefineCondSound(t *testing.T) {
	ops := []uint8{OpJeq, OpJne, OpJgt, OpJge, OpJlt, OpJle, OpJsgt, OpJsge, OpJslt, OpJsle, OpJset}
	rng := rand.New(rand.NewSource(16))
	for trial := 0; trial < 50000; trial++ {
		d, ds := randVal(rng)
		s, ss := randVal(rng)
		op := ops[rng.Intn(len(ops))]
		for _, cd := range ds {
			for _, cs := range ss {
				taken := concreteTaken(op, cd, cs)
				nd, ns, feasible := refineCond(op, d, s, taken)
				if !feasible {
					t.Fatalf("op %#x taken=%v: edge declared infeasible but (%#x, %#x) takes it (d=%s s=%s)",
						op, taken, cd, cs, d, s)
				}
				if !containsU(nd, cd) || !containsU(ns, cs) {
					t.Fatalf("op %#x taken=%v: refinement dropped (%#x, %#x): d %s -> %s, s %s -> %s",
						op, taken, cd, cs, d, nd, s, ns)
				}
			}
		}
	}
}

// Differential soundness fuzzing for the abstract interpreter. The
// fuzz target lives in an external test package so it can drive the
// full ebpf VM (which imports absint) against the analysis results:
// any divergence between what the analysis claims (dead edges, cost
// bounds, accepted programs) and what the interpreter or pruned JIT
// actually does is a crash, not a flaky finding.
package absint_test

import (
	"strings"
	"testing"

	"snapbpf/internal/ebpf"
	"snapbpf/internal/ebpf/absint"
)

// fuzzEnv is one isolated execution universe: a fresh VM and map so
// the two engine runs cannot observe each other's side effects.
type fuzzEnv struct {
	vm *ebpf.VM
	m  *ebpf.Map
	fd int32
}

func newFuzzEnv() *fuzzEnv {
	vm := ebpf.NewVM()
	m := ebpf.MustNewMap(ebpf.MapTypeHash, "fuzz", 64)
	fd := vm.RegisterMap(m)
	return &fuzzEnv{vm: vm, m: m, fd: fd}
}

// FuzzAbsint decodes arbitrary bytes into an instruction stream and
// cross-checks three soundness claims of the abstract interpreter:
//
//  1. Analyze never panics, on any input.
//  2. If the analysis marks a branch edge dead, a concrete execution
//     (observed via InterpBranches) never takes that edge, and if it
//     computes a finite worst-case cost within the budget, no run
//     aborts on the instruction budget.
//  3. An analysis-accepted program runs identically on the
//     interpreter and on the absint-pruned JIT: same R0, same error
//     text, same final map contents. Pruning must be invisible.
func FuzzAbsint(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		if data, err := ebpf.MarshalInstructions(seed); err == nil {
			f.Add(data)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		insns, err := ebpf.UnmarshalInstructions(data)
		if err != nil {
			return
		}
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %d-instruction stream: %v\n%s",
					len(insns), r, ebpf.Disassemble(insns))
			}
		}()

		ie := newFuzzEnv()
		r := ie.vm.Analyze(insns)
		if r == nil || !r.OK {
			return
		}

		// Interpreter run, observing every conditional edge taken.
		// Analysis acceptance implies Verify acceptance (the verifier
		// falls back to the same analysis), so Load must succeed.
		ip, err := ie.vm.Load("absint-fuzz", insns)
		if err != nil {
			t.Fatalf("analysis accepted but Load failed: %v\n%s",
				err, ebpf.Disassemble(insns))
		}
		var deadTaken []string
		hook := func(pc int, taken bool) {
			b, ok := r.Branches[pc]
			if !ok {
				return
			}
			if (taken && b.TakenDead) || (!taken && b.FallDead) {
				deadTaken = append(deadTaken,
					edgeName(pc, taken))
			}
		}
		iRet, iErr := ip.InterpBranches(nil, hook, 1, 2)
		if len(deadTaken) > 0 {
			t.Fatalf("execution took statically dead edges %v\n%s",
				deadTaken, ebpf.Disassemble(insns))
		}

		// Pruned JIT run in a second, identical universe.
		je := newFuzzEnv()
		ebpf.SetAbsintPrune(true)
		jp, err := je.vm.Load("absint-fuzz", insns)
		ebpf.SetAbsintPrune(false)
		if err != nil {
			t.Fatalf("pruned Load failed: %v\n%s", err, ebpf.Disassemble(insns))
		}
		jRet, jErr := jp.Run(nil, 1, 2)

		if (iErr == nil) != (jErr == nil) ||
			(iErr != nil && iErr.Error() != jErr.Error()) {
			t.Fatalf("engine error divergence under pruning: interp=%v jit=%v\n%s",
				iErr, jErr, ebpf.Disassemble(insns))
		}
		if iErr == nil && iRet != jRet {
			t.Fatalf("engine result divergence under pruning: interp=%#x jit=%#x\n%s",
				iRet, jRet, ebpf.Disassemble(insns))
		}
		ik, jk := ie.m.Entries(), je.m.Entries()
		if len(ik) != len(jk) {
			t.Fatalf("map divergence under pruning: interp %d entries, jit %d\n%s",
				len(ik), len(jk), ebpf.Disassemble(insns))
		}
		for i := range ik {
			if ik[i] != jk[i] {
				t.Fatalf("map entry divergence under pruning: %v vs %v\n%s",
					ik[i], jk[i], ebpf.Disassemble(insns))
			}
		}

		// A finite worst case within the budget means no run may die
		// on the dynamic budget check.
		if r.WorstCase >= 0 && r.WorstCase <= absint.InsnBudget {
			for _, e := range []error{iErr, jErr} {
				if e != nil && strings.Contains(e.Error(), "instruction budget") {
					t.Fatalf("worst case %d within budget but run aborted: %v\n%s",
						r.WorstCase, e, ebpf.Disassemble(insns))
				}
			}
		}
	})
}

func edgeName(pc int, taken bool) string {
	edge := "fall"
	if taken {
		edge = "taken"
	}
	return edge + "@" + itoa(pc)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

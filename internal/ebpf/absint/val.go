package absint

import (
	"fmt"
	"math"
	"math/bits"
)

// Kind is the provenance of an abstract register value, mirroring the
// structural verifier's lattice (and the kernel's reg type) with the
// scalar kind carrying full tnum + interval facts.
type Kind uint8

const (
	KindUninit Kind = iota
	KindScalar
	KindStackPtr
	KindMapConst
)

func (k Kind) String() string {
	switch k {
	case KindUninit:
		return "uninit"
	case KindScalar:
		return "scalar"
	case KindStackPtr:
		return "fp"
	case KindMapConst:
		return "map"
	}
	return "?"
}

// stackTopAddr mirrors the VM's virtual frame-pointer value; pinned
// against internal/ebpf by TestAbsintConstsMatch.
const stackTopAddr uint64 = 0x7fff_f000

// Val is the abstract value of one register.
//
// For KindScalar the tnum and the interval bounds describe the
// register's 64-bit value. For KindStackPtr they describe the
// *variable addend*: the concrete value is stackTop + Off + addend,
// which keeps pointer arithmetic with a loop induction variable (fp +
// i*8) provable. KindMapConst is the constant fd in Off (its concrete
// runtime value), the analogue of the kernel's CONST_PTR_TO_MAP.
type Val struct {
	K          Kind
	TN         Tnum
	Umin, Umax uint64
	Smin, Smax int64
	// Off is the constant byte offset from the frame pointer
	// (KindStackPtr) or the map fd (KindMapConst).
	Off int64
}

func uninitVal() Val { return Val{K: KindUninit} }

func unknownScalar() Val {
	return Val{
		K: KindScalar, TN: tnumUnknown,
		Umin: 0, Umax: ^uint64(0),
		Smin: math.MinInt64, Smax: math.MaxInt64,
	}
}

func constVal(c uint64) Val {
	return Val{
		K: KindScalar, TN: TnumConst(c),
		Umin: c, Umax: c,
		Smin: int64(c), Smax: int64(c),
	}
}

func stackPtrVal(off int64) Val {
	v := constVal(0)
	v.K = KindStackPtr
	v.Off = off
	return v
}

func mapConstVal(fd int64) Val { return Val{K: KindMapConst, Off: fd} }

// IsConst reports whether v is a scalar with exactly one value.
func (v Val) IsConst() (uint64, bool) {
	if v.K == KindScalar && v.Umin == v.Umax {
		return v.Umin, true
	}
	return 0, false
}

// sync reconciles the three fact families (kernel reg_bounds_sync):
// tnum narrows the intervals, the intervals narrow the tnum, and the
// signed/unsigned bounds narrow each other whenever a range stays on
// one side of the 2^63 boundary. Returns false when the facts are
// contradictory (the value set is empty) — meaningful during branch
// refinement, impossible for sound transfer functions.
func (v *Val) sync() bool {
	for i := 0; i < 3; i++ {
		tn, ok := v.TN.Intersect(TnumRange(v.Umin, v.Umax))
		if !ok {
			return false
		}
		v.TN = tn
		if lo := v.TN.Value; lo > v.Umin {
			v.Umin = lo
		}
		if hi := v.TN.Value | v.TN.Mask; hi < v.Umax {
			v.Umax = hi
		}
		if v.Umin > v.Umax {
			return false
		}
		// An unsigned range on one side of the sign boundary is a
		// valid signed range, and vice versa.
		if (v.Umin >> 63) == (v.Umax >> 63) {
			if s := int64(v.Umin); s > v.Smin {
				v.Smin = s
			}
			if s := int64(v.Umax); s < v.Smax {
				v.Smax = s
			}
		}
		if v.Smin > v.Smax {
			return false
		}
		if (v.Smin >= 0) == (v.Smax >= 0) {
			if u := uint64(v.Smin); u > v.Umin {
				v.Umin = u
			}
			if u := uint64(v.Smax); u < v.Umax {
				v.Umax = u
			}
		}
		if v.Umin > v.Umax {
			return false
		}
	}
	return true
}

// norm is sync for transfer-function results: a contradiction there
// can only come from imprecision interplay, so fall back to unknown.
func norm(v Val) Val {
	if !v.sync() {
		return unknownScalar()
	}
	return v
}

// scalarView is the abstraction of v's concrete 64-bit register
// value, whatever its provenance: pointers become their virtual
// address range, map references their fd. Sound because every
// comparison and every ALU demotion operates on the concrete bits.
func scalarView(v Val) Val {
	switch v.K {
	case KindScalar:
		return v
	case KindMapConst:
		return constVal(uint64(v.Off))
	case KindStackPtr:
		base := stackTopAddr + uint64(v.Off)
		a := v
		a.K = KindScalar
		a.Off = 0
		return aAdd(a, constVal(base))
	}
	// Uninit registers are never read by accepted programs; any view
	// requested for reporting is unconstrained.
	return unknownScalar()
}

// addendOf extracts a stack pointer's variable addend as a scalar.
func addendOf(v Val) Val {
	a := v
	a.K = KindScalar
	a.Off = 0
	return a
}

// joinVal is the lattice join at control-flow merge points.
func joinVal(a, b Val) Val {
	if a == b {
		return a
	}
	if a.K == KindUninit || b.K == KindUninit {
		return uninitVal()
	}
	if a.K == KindStackPtr && b.K == KindStackPtr {
		// Rebase b onto a's fixed offset and join the addends, so
		// loop-carried pointers keep their provenance.
		bAdd := addendOf(b)
		if d := b.Off - a.Off; d != 0 {
			bAdd = aAdd(bAdd, constVal(uint64(d)))
		}
		j := joinScalar(addendOf(a), bAdd)
		j.K = KindStackPtr
		j.Off = a.Off
		return j
	}
	if a.K == KindMapConst && b.K == KindMapConst && a.Off == b.Off {
		return a
	}
	return joinScalar(scalarView(a), scalarView(b))
}

func joinScalar(a, b Val) Val {
	r := Val{K: KindScalar}
	r.TN = a.TN.Union(b.TN)
	r.Umin = min(a.Umin, b.Umin)
	r.Umax = max(a.Umax, b.Umax)
	r.Smin = min(a.Smin, b.Smin)
	r.Smax = max(a.Smax, b.Smax)
	return norm(r)
}

// widen discards any interval bound that moved since prev, keeping
// only the tnum (which converges by itself: its mask can only grow,
// 64 steps at most). Called after a join point keeps changing.
func widen(prev, next Val) Val {
	if next.K != KindScalar && next.K != KindStackPtr {
		return next
	}
	if prev.K != next.K || prev.Off != next.Off {
		return next
	}
	if next.Umin < prev.Umin {
		next.Umin = 0
	}
	if next.Umax > prev.Umax {
		next.Umax = ^uint64(0)
	}
	if next.Smin < prev.Smin {
		next.Smin = math.MinInt64
	}
	if next.Smax > prev.Smax {
		next.Smax = math.MaxInt64
	}
	return norm(next)
}

func (v Val) String() string {
	switch v.K {
	case KindUninit:
		return "uninit"
	case KindMapConst:
		return fmt.Sprintf("map(fd=%d)", v.Off)
	case KindStackPtr:
		a := addendOf(v)
		if c, ok := a.IsConst(); ok {
			return fmt.Sprintf("fp%+d", v.Off+int64(c))
		}
		return fmt.Sprintf("fp%+d+%s", v.Off, a.boundsString())
	}
	return v.boundsString()
}

func (v Val) boundsString() string {
	if c, ok := v.IsConst(); ok {
		return fmt.Sprintf("%d", int64(c))
	}
	s := "["
	if v.Smin == math.MinInt64 && v.Umin == 0 {
		s += "?"
	} else if v.Smin >= 0 || v.Umin > 0 {
		s += fmt.Sprintf("%d", v.Umin)
	} else {
		s += fmt.Sprintf("%d", v.Smin)
	}
	s += ","
	if v.Smax == math.MaxInt64 && v.Umax == ^uint64(0) {
		s += "?"
	} else if v.Smax < 0 {
		s += fmt.Sprintf("%d", v.Smax)
	} else {
		s += fmt.Sprintf("%d", v.Umax)
	}
	s += "]"
	if v.TN.Mask != ^uint64(0) && !v.TN.IsConst() {
		s += " " + v.TN.String()
	}
	return s
}

// ---------------------------------------------------------------------------
// Scalar transfer functions (64-bit). Each mirrors the interpreter's
// aluOp64 case exactly: the abstraction of op(x, y) contains op(a, b)
// for every a in x, b in y.

func addS(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

func subS(a, b int64) (int64, bool) {
	s := a - b
	if (a >= 0 && b < 0 && s < 0) || (a < 0 && b > 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

func aAdd(a, b Val) Val {
	r := Val{K: KindScalar}
	r.TN = a.TN.Add(b.TN)
	if hi, c := bits.Add64(a.Umax, b.Umax, 0); c == 0 {
		r.Umin = a.Umin + b.Umin
		r.Umax = hi
	} else {
		r.Umin, r.Umax = 0, ^uint64(0)
	}
	lo, ok1 := addS(a.Smin, b.Smin)
	hi, ok2 := addS(a.Smax, b.Smax)
	if ok1 && ok2 {
		r.Smin, r.Smax = lo, hi
	} else {
		r.Smin, r.Smax = math.MinInt64, math.MaxInt64
	}
	return norm(r)
}

func aSub(a, b Val) Val {
	r := Val{K: KindScalar}
	r.TN = a.TN.Sub(b.TN)
	if a.Umin >= b.Umax {
		r.Umin = a.Umin - b.Umax
		r.Umax = a.Umax - b.Umin
	} else {
		r.Umin, r.Umax = 0, ^uint64(0)
	}
	lo, ok1 := subS(a.Smin, b.Smax)
	hi, ok2 := subS(a.Smax, b.Smin)
	if ok1 && ok2 {
		r.Smin, r.Smax = lo, hi
	} else {
		r.Smin, r.Smax = math.MinInt64, math.MaxInt64
	}
	return norm(r)
}

func aMul(a, b Val) Val {
	r := unknownScalar()
	r.TN = a.TN.Mul(b.TN)
	if hi, _ := bits.Mul64(a.Umax, b.Umax); hi == 0 {
		r.Umin = a.Umin * b.Umin
		r.Umax = a.Umax * b.Umax
		r.Smin, r.Smax = math.MinInt64, math.MaxInt64
	}
	return norm(r)
}

// aDiv models unsigned division with the kernel's x/0 == 0 rule.
func aDiv(a, b Val) Val {
	r := unknownScalar()
	r.TN = tnumUnknown
	r.Umin = 0
	if b.Umin > 0 {
		r.Umin = a.Umin / b.Umax
		r.Umax = a.Umax / b.Umin
	} else {
		r.Umax = a.Umax // division by >=1 shrinks; by 0 yields 0
	}
	r.Smin, r.Smax = math.MinInt64, math.MaxInt64
	return norm(r)
}

// aMod models unsigned modulo with the kernel's dst-unchanged-on-zero
// rule.
func aMod(a, b Val) Val {
	r := unknownScalar()
	var hi uint64
	if b.Umax > 0 {
		hi = b.Umax - 1
	}
	if b.Umin == 0 {
		// The divisor may be zero, leaving dst unchanged.
		hi = max(hi, a.Umax)
	}
	r.Umin, r.Umax = 0, hi
	r.Smin, r.Smax = math.MinInt64, math.MaxInt64
	return norm(r)
}

func aAnd(a, b Val) Val {
	r := unknownScalar()
	r.TN = a.TN.And(b.TN)
	r.Umax = min(a.Umax, b.Umax)
	return norm(r)
}

func aOr(a, b Val) Val {
	r := unknownScalar()
	r.TN = a.TN.Or(b.TN)
	return norm(r)
}

func aXor(a, b Val) Val {
	r := unknownScalar()
	r.TN = a.TN.Xor(b.TN)
	return norm(r)
}

func aLsh(a, b Val) Val {
	if c, ok := b.IsConst(); ok {
		n := uint(c & 63)
		r := Val{K: KindScalar, TN: a.TN.Lsh(n)}
		if a.Umax <= (^uint64(0))>>n {
			r.Umin = a.Umin << n
			r.Umax = a.Umax << n
		} else {
			r.Umin, r.Umax = 0, ^uint64(0)
		}
		r.Smin, r.Smax = math.MinInt64, math.MaxInt64
		return norm(r)
	}
	return unknownScalar()
}

func aRsh(a, b Val) Val {
	if c, ok := b.IsConst(); ok {
		n := uint(c & 63)
		r := Val{K: KindScalar, TN: a.TN.Rsh(n)}
		r.Umin = a.Umin >> n
		r.Umax = a.Umax >> n
		r.Smin, r.Smax = math.MinInt64, math.MaxInt64
		return norm(r)
	}
	return unknownScalar()
}

func aArsh(a, b Val) Val {
	if c, ok := b.IsConst(); ok {
		n := uint(c & 63)
		r := Val{K: KindScalar, TN: a.TN.Arsh(n)}
		r.Smin = a.Smin >> n
		r.Smax = a.Smax >> n
		r.Umin, r.Umax = 0, ^uint64(0)
		return norm(r)
	}
	return unknownScalar()
}

func aNeg(a Val) Val { return aSub(constVal(0), a) }

// ---------------------------------------------------------------------------
// 32-bit views. ALU32 computes on the low words and zero-extends the
// result; JMP32 sign-extends the low words before comparing, which is
// order-isomorphic to comparing the 32-bit values directly.

// low32 abstracts uint32(x) for every x in v, as a value in [0, 2^32).
func low32(v Val) Val {
	const m = uint64(1)<<32 - 1
	r := Val{K: KindScalar, TN: v.TN.Cast(4)}
	if v.Umax-v.Umin <= m && v.Umin&m <= v.Umax&m && v.Umin>>32 == v.Umax>>32 {
		r.Umin = v.Umin & m
		r.Umax = v.Umax & m
	} else {
		r.Umin, r.Umax = 0, m
	}
	r.Smin, r.Smax = 0, int64(m)
	return norm(r)
}

// trunc32 re-abstracts a 64-bit transfer result back into [0, 2^32):
// exact when the result range never left the low word.
func trunc32(v Val) Val {
	const m = uint64(1)<<32 - 1
	r := Val{K: KindScalar, TN: v.TN.Cast(4)}
	if v.Umin <= v.Umax && v.Umax <= m {
		r.Umin, r.Umax = v.Umin, v.Umax
	} else {
		r.Umin, r.Umax = 0, m
	}
	r.Smin, r.Smax = 0, int64(m)
	return norm(r)
}

// sext32 abstracts the interpreter's JMP32 view: sign-extend the low
// word. Input must already be a low32 value (range within [0, 2^32)).
func sext32(v Val) Val {
	const half = uint64(1) << 31
	const hi32 = uint64(0xffff_ffff_0000_0000)
	r := Val{K: KindScalar}
	switch {
	case v.Umax < half:
		return v // all non-negative: sign extension is the identity
	case v.Umin >= half:
		// All negative: the upper word becomes all-ones.
		r.TN = Tnum{Value: v.TN.Value | hi32, Mask: v.TN.Mask}
		r.Smin = int64(int32(uint32(v.Umin)))
		r.Smax = int64(int32(uint32(v.Umax)))
		r.Umin = uint64(r.Smin)
		r.Umax = uint64(r.Smax)
	default:
		// Straddles the sign bit: [Umin, 2^31) ∪ [-2^31, sext(Umax)].
		r.TN = Tnum{Value: v.TN.Value, Mask: v.TN.Mask | hi32}
		r.Smin = math.MinInt32
		r.Smax = math.MaxInt32
		r.Umin = v.Umin
		r.Umax = uint64(int64(int32(uint32(v.Umax))))
	}
	return norm(r)
}

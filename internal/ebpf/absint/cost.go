package absint

import (
	"encoding/binary"
)

// Static cost bounds. For programs whose feasible CFG is acyclic the
// longest path over feasible edges is exact. For cyclic programs a
// path-sensitive DFS re-executes the abstract step function without
// joins: loop iterations with distinct abstract states (a constant
// induction variable counting up, say) unroll, and the bound is the
// deepest chain. A back edge reached with an abstract state already on
// the DFS stack means the loop cannot be proven to make progress, and
// the cost is unbounded (-1).

// costNodeCap bounds the path-sensitive exploration; beyond it the
// analysis gives up and reports the cost as unbounded.
const costNodeCap = 1 << 15

// worstCase returns the maximum number of budget steps any execution
// can take, or -1 when unbounded (or too costly to bound). Only
// called on an OK analysis, so step never errors on fixpoint states.
func (a *analysis) worstCase() int64 {
	// Feasible pc-level successor sets from the fixpoint states.
	succs := make([][]int, len(a.insns))
	for pc := range a.insns {
		if a.seen[pc] == nil {
			continue
		}
		ss, err := a.step(pc, *a.seen[pc])
		if err != nil {
			return -1
		}
		for _, s := range ss {
			succs[pc] = append(succs[pc], s.pc)
		}
	}
	if cfgAcyclicFeasible(succs) {
		return longestPath(succs)
	}
	d := &costDFS{a: a, memo: map[string]int64{}, gray: map[string]bool{}}
	return d.visit(0, entryState())
}

// cfgAcyclicFeasible is an iterative three-colour DFS from pc 0 over
// the feasible edges.
func cfgAcyclicFeasible(succs [][]int) bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]byte, len(succs))
	type frame struct {
		pc, i int
	}
	stack := []frame{{pc: 0}}
	color[0] = gray
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.i < len(succs[f.pc]) {
			next := succs[f.pc][f.i]
			f.i++
			switch color[next] {
			case gray:
				return false
			case white:
				color[next] = gray
				stack = append(stack, frame{pc: next})
			}
			continue
		}
		color[f.pc] = black
		stack = stack[:len(stack)-1]
	}
	return true
}

// longestPath is the exact longest chain in an acyclic feasible CFG;
// every node costs one budget step (a lddw pair is one step).
func longestPath(succs [][]int) int64 {
	memo := make([]int64, len(succs))
	for i := range memo {
		memo[i] = -2 // unvisited
	}
	var visit func(pc int) int64
	visit = func(pc int) int64 {
		if memo[pc] != -2 {
			return memo[pc]
		}
		var worst int64
		for _, next := range succs[pc] {
			if c := visit(next); c > worst {
				worst = c
			}
		}
		memo[pc] = 1 + worst
		return memo[pc]
	}
	return visit(0)
}

type costDFS struct {
	a     *analysis
	memo  map[string]int64
	gray  map[string]bool
	nodes int
}

// visit returns the worst-case steps from (pc, st), or -1 when
// unbounded or past the exploration cap.
func (c *costDFS) visit(pc int, st state) int64 {
	key := costKey(pc, &st)
	if c.gray[key] {
		return -1 // same abstract state revisited inside one path: no provable progress
	}
	if v, ok := c.memo[key]; ok {
		return v
	}
	c.nodes++
	if c.nodes > costNodeCap {
		return -1
	}
	succs, err := c.a.step(pc, st)
	if err != nil {
		// Path states are narrower than fixpoint states, so this
		// cannot happen on an OK analysis; degrade to unbounded.
		return -1
	}
	c.gray[key] = true
	var worst int64
	for _, s := range succs {
		v := c.visit(s.pc, s.st)
		if v < 0 {
			delete(c.gray, key)
			return -1
		}
		if v > worst {
			worst = v
		}
	}
	delete(c.gray, key)
	c.memo[key] = 1 + worst
	return 1 + worst
}

// costKey fingerprints a program point plus full abstract state.
func costKey(pc int, st *state) string {
	buf := make([]byte, 0, 8+NumRegisters*57)
	var w [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(w[:], v)
		buf = append(buf, w[:]...)
	}
	put(uint64(pc))
	for i := range st.regs {
		r := &st.regs[i]
		buf = append(buf, byte(r.K))
		put(r.TN.Value)
		put(r.TN.Mask)
		put(r.Umin)
		put(r.Umax)
		put(uint64(r.Smin))
		put(uint64(r.Smax))
		put(uint64(r.Off))
	}
	return string(buf)
}

package absint

import (
	"math/rand"
	"testing"
)

// enumTnums lists every tnum over the low `bits` bits (value/mask
// pairs with value&mask == 0).
func enumTnums(bits uint) []Tnum {
	var out []Tnum
	n := uint64(1) << bits
	for m := uint64(0); m < n; m++ {
		for v := uint64(0); v < n; v++ {
			if v&m == 0 {
				out = append(out, Tnum{Value: v, Mask: m})
			}
		}
	}
	return out
}

// concretize lists every concrete value a small tnum represents.
func concretize(t Tnum) []uint64 {
	vals := []uint64{t.Value}
	for b := 0; b < 64; b++ {
		bit := uint64(1) << b
		if t.Mask&bit == 0 {
			continue
		}
		for _, v := range vals {
			vals = append(vals, v|bit)
		}
	}
	return vals
}

// TestTnumBinaryOpsSound exhaustively checks, over all 4-bit tnums,
// that each abstract binary operation contains every concrete result.
func TestTnumBinaryOpsSound(t *testing.T) {
	tnums := enumTnums(4)
	ops := []struct {
		name string
		abs  func(a, b Tnum) Tnum
		conc func(a, b uint64) uint64
	}{
		{"add", Tnum.Add, func(a, b uint64) uint64 { return a + b }},
		{"sub", Tnum.Sub, func(a, b uint64) uint64 { return a - b }},
		{"and", Tnum.And, func(a, b uint64) uint64 { return a & b }},
		{"or", Tnum.Or, func(a, b uint64) uint64 { return a | b }},
		{"xor", Tnum.Xor, func(a, b uint64) uint64 { return a ^ b }},
		{"mul", Tnum.Mul, func(a, b uint64) uint64 { return a * b }},
	}
	for _, op := range ops {
		for _, ta := range tnums {
			for _, tb := range tnums {
				r := op.abs(ta, tb)
				if r.Value&r.Mask != 0 {
					t.Fatalf("%s(%v,%v): invariant broken: %v", op.name, ta, tb, r)
				}
				for _, a := range concretize(ta) {
					for _, b := range concretize(tb) {
						if c := op.conc(a, b); !r.Contains(c) {
							t.Fatalf("%s(%v,%v) = %v does not contain %s(%#x,%#x) = %#x",
								op.name, ta, tb, r, op.name, a, b, c)
						}
					}
				}
			}
		}
	}
}

func TestTnumShiftsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		v := rng.Uint64()
		m := rng.Uint64() &^ v
		tn := Tnum{Value: v &^ m, Mask: m}
		n := uint(rng.Intn(64))
		for _, c := range []uint64{tn.Value, tn.Value | tn.Mask} {
			if !tn.Lsh(n).Contains(c << n) {
				t.Fatalf("Lsh(%v, %d) misses %#x", tn, n, c<<n)
			}
			if !tn.Rsh(n).Contains(c >> n) {
				t.Fatalf("Rsh(%v, %d) misses %#x", tn, n, c>>n)
			}
			if !tn.Arsh(n).Contains(uint64(int64(c) >> n)) {
				t.Fatalf("Arsh(%v, %d) misses %#x", tn, n, uint64(int64(c)>>n))
			}
		}
	}
}

// TestTnumRangeSound checks every value of [min,max] is contained for
// all byte-sized ranges.
func TestTnumRangeSound(t *testing.T) {
	for min := uint64(0); min < 64; min++ {
		for max := min; max < 64; max++ {
			tn := TnumRange(min, max)
			for v := min; v <= max; v++ {
				if !tn.Contains(v) {
					t.Fatalf("TnumRange(%d,%d) = %v misses %d", min, max, tn, v)
				}
			}
		}
	}
	// The extremes must not overflow the bit-width computation.
	if tn := TnumRange(0, ^uint64(0)); tn != tnumUnknown {
		t.Fatalf("full range should be unknown, got %v", tn)
	}
}

// TestTnumIntersectUnion checks, over all 4-bit tnum pairs, that
// Intersect represents exactly the common values and Union at least
// the values of both sides.
func TestTnumIntersectUnion(t *testing.T) {
	tnums := enumTnums(4)
	for _, ta := range tnums {
		for _, tb := range tnums {
			inter, ok := ta.Intersect(tb)
			common := 0
			for v := uint64(0); v < 16; v++ {
				in := ta.Contains(v) && tb.Contains(v)
				if in {
					common++
				}
				if ok && in && !inter.Contains(v) {
					t.Fatalf("Intersect(%v,%v)=%v misses common value %#x", ta, tb, inter, v)
				}
			}
			if !ok && common > 0 {
				t.Fatalf("Intersect(%v,%v) reported empty but %d common values exist", ta, tb, common)
			}
			u := ta.Union(tb)
			for _, v := range concretize(ta) {
				if !u.Contains(v) {
					t.Fatalf("Union(%v,%v)=%v misses %#x from a", ta, tb, u, v)
				}
			}
			for _, v := range concretize(tb) {
				if !u.Contains(v) {
					t.Fatalf("Union(%v,%v)=%v misses %#x from b", ta, tb, u, v)
				}
			}
		}
	}
}

func TestTnumCastIn(t *testing.T) {
	tn := Tnum{Value: 0x1_0000_00f0, Mask: 0x0f}
	c := tn.Cast(4)
	if c.Value != 0xf0 || c.Mask != 0x0f {
		t.Fatalf("Cast(4) = %v", c)
	}
	if !tnumUnknown.In(tn) {
		t.Fatal("unknown must contain everything")
	}
	if tn.In(tnumUnknown) {
		t.Fatal("a constrained tnum cannot contain unknown")
	}
	if !TnumConst(5).In(TnumConst(5)) || TnumConst(5).In(TnumConst(6)) {
		t.Fatal("const In misbehaves")
	}
}

package absint

import (
	"fmt"
	"strings"
)

// Opts supplies the environment facts the analysis needs from the
// loader: which constants name registered maps and which helper ids
// resolve. All callbacks may be nil, in which case no constant names
// a map and every call is rejected.
type Opts struct {
	// ValidMapFD reports whether fd names a registered map.
	ValidMapFD func(fd int64) bool
	// KnownHelper reports whether a call target id resolves.
	KnownHelper func(id int32) bool
	// MapHelper reports whether id is a map-access helper and how many
	// stack-pointer arguments follow the map reference in R1.
	MapHelper func(id int32) (ptrArgs int, ok bool)
}

// Branch records the statically dead edges of one conditional jump.
// At most one edge of a reachable branch can be dead.
type Branch struct {
	TakenDead bool
	FallDead  bool
}

// Finding is one report-mode observation tied to an instruction.
type Finding struct {
	PC   int
	Kind string // "dead-code", "infeasible-branch", "unproven-access", "illegal-insn"
	Msg  string
}

// Error is the first (in program order) reason the analysis cannot
// prove the program safe, with the abstract register state at that
// point.
type Error struct {
	PC    int
	Msg   string
	State string
}

func (e *Error) Error() string {
	return fmt.Sprintf("absint: insn %d: %s [%s]", e.PC, e.Msg, e.State)
}

// Result is the full analysis outcome.
type Result struct {
	// OK reports that every reachable instruction is legal and every
	// reachable memory access and helper argument is proven in
	// bounds: the program cannot fault at runtime (the dynamic
	// instruction budget remains the only permitted abort).
	OK  bool
	Err *Error
	// Reachable marks instructions some execution may reach (an
	// over-approximation; the lddw upper slot inherits its first
	// slot's reachability).
	Reachable []bool
	// Branches holds, per conditional-jump pc, the edges no
	// execution can take. Only jumps with at least one dead edge
	// appear.
	Branches map[int]Branch
	// WorstCase is the maximum number of instructions any run can
	// execute (the interpreter's budget-step count), or -1 when the
	// analysis cannot bound it.
	WorstCase int64
	Findings  []Finding
}

// state is the abstract machine state at one program point.
type state struct {
	regs [NumRegisters]Val
}

func (s *state) String() string {
	var b strings.Builder
	for i := 0; i < NumRegisters; i++ {
		if s.regs[i].K == KindUninit {
			continue
		}
		if b.Len() > 0 {
			b.WriteString(" ")
		}
		name := fmt.Sprintf("r%d", i)
		if i == RegFP {
			name = "fp"
		}
		fmt.Fprintf(&b, "%s=%s", name, s.regs[i])
	}
	if b.Len() == 0 {
		return "all uninit"
	}
	return b.String()
}

func entryState() state {
	var st state
	for r := 1; r <= 5; r++ {
		st.regs[r] = unknownScalar()
	}
	st.regs[RegFP] = stackPtrVal(0)
	return st
}

// succ is one control-flow successor with the state that flows along
// the edge (refined by the branch condition where applicable).
type succ struct {
	pc int
	st state
}

type analysis struct {
	insns []Insn
	opts  Opts
	hi    []bool // second slots of lddw pairs, as the decoder sees them
	seen  []*state
	joins []int // changed-join count per pc, for widening
}

// widenAfter is how many changed joins a program point absorbs before
// interval bounds are widened to extremes (the tnum converges on its
// own: its unknown-bit mask only ever grows).
const widenAfter = 8

// Analyze runs the abstract interpretation over insns and returns the
// full result. It never panics on malformed input; anything it cannot
// decode or prove turns into findings and a non-OK result.
func Analyze(insns []Insn, opts Opts) *Result {
	res := &Result{Reachable: make([]bool, len(insns)), Branches: map[int]Branch{}, WorstCase: -1}
	fail := func(pc int, st *state, format string, args ...any) {
		dump := "no state"
		if st != nil {
			dump = st.String()
		}
		if res.Err == nil {
			res.Err = &Error{PC: pc, Msg: fmt.Sprintf(format, args...), State: dump}
		}
	}
	if len(insns) == 0 {
		fail(0, nil, "empty program")
		return res
	}
	if len(insns) > MaxProgramLen {
		fail(0, nil, "program too long: %d insns (max %d)", len(insns), MaxProgramLen)
		return res
	}

	a := &analysis{
		insns: insns,
		opts:  opts,
		hi:    markHiSlots(insns),
		seen:  make([]*state, len(insns)),
		joins: make([]int, len(insns)),
	}
	a.fixpoint()

	// Reachability: every pc with a fixpoint state, plus lddw upper
	// slots riding along with their first slot.
	for pc := range insns {
		if a.seen[pc] != nil {
			res.Reachable[pc] = true
			if insns[pc].Op == OpLdImm64 && pc+1 < len(insns) {
				res.Reachable[pc+1] = true
			}
		}
	}

	// Final check pass, on fixpoint states: the invariants only grow
	// during the fixpoint, so feasibility and provability verdicts
	// are meaningful only against the final states. Deterministic
	// program order keeps reports and the error stable.
	for pc := range insns {
		if a.seen[pc] == nil {
			continue
		}
		st := *a.seen[pc]
		succs, err := a.step(pc, st)
		if err != nil {
			kind := "unproven-access"
			if !strings.Contains(err.Msg, "access") && !strings.Contains(err.Msg, "helper argument") {
				kind = "illegal-insn"
			}
			res.Findings = append(res.Findings, Finding{PC: pc, Kind: kind, Msg: err.Msg})
			if res.Err == nil {
				res.Err = err
			}
			continue
		}
		in := insns[pc]
		if isCondJump(in) {
			br := Branch{TakenDead: true, FallDead: true}
			taken := pc + 1 + int(in.Off)
			for _, s := range succs {
				if s.pc == taken {
					br.TakenDead = false
				}
				if s.pc == pc+1 {
					br.FallDead = false
				}
			}
			// A taken edge that coincides with the fall-through is
			// never prunable information.
			if taken == pc+1 {
				br = Branch{}
			}
			if br.TakenDead || br.FallDead {
				res.Branches[pc] = br
				edge := "taken"
				if br.FallDead {
					edge = "fall-through"
				}
				res.Findings = append(res.Findings, Finding{
					PC: pc, Kind: "infeasible-branch",
					Msg: fmt.Sprintf("%s edge is infeasible (%s)", edge, st.String()),
				})
			}
		}
	}

	// Dead-code findings, coalesced into ranges. The lddw upper slot
	// never counts separately.
	for pc := 0; pc < len(insns); {
		if res.Reachable[pc] {
			pc++
			continue
		}
		start := pc
		for pc < len(insns) && !res.Reachable[pc] {
			pc++
		}
		res.Findings = append(res.Findings, Finding{
			PC: start, Kind: "dead-code",
			Msg: fmt.Sprintf("instructions %d..%d are unreachable", start, pc-1),
		})
	}

	res.OK = res.Err == nil
	if res.OK {
		res.WorstCase = a.worstCase()
	}
	return res
}

// markHiSlots mirrors the decoder's linear scan: the slot after a
// well-formed lddw first slot is its upper half and is never examined
// as an instruction of its own.
func markHiSlots(insns []Insn) []bool {
	hi := make([]bool, len(insns))
	for pc := 0; pc < len(insns); pc++ {
		if hi[pc] {
			continue
		}
		if insns[pc].class() == ClassLD && insns[pc].Op == OpLdImm64 && pc+1 < len(insns) {
			hi[pc+1] = true
		}
	}
	return hi
}

func isCondJump(in Insn) bool {
	switch in.class() {
	case ClassJMP, ClassJMP32:
		switch in.aluOp() {
		case OpJa, OpCall, OpExit:
			return false
		}
		return true
	}
	return false
}

// fixpoint runs the worklist iteration. Instructions that fail a
// check are treated as terminal (nothing flows past them); the final
// pass reports them.
func (a *analysis) fixpoint() {
	entry := entryState()
	a.seen[0] = &entry
	work := []int{0}
	inWork := make([]bool, len(a.insns))
	inWork[0] = true
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[pc] = false
		succs, err := a.step(pc, *a.seen[pc])
		if err != nil {
			continue
		}
		for _, s := range succs {
			if a.flow(s.pc, s.st) && !inWork[s.pc] {
				work = append(work, s.pc)
				inWork[s.pc] = true
			}
		}
	}
}

// flow joins st into the state at pc, reporting whether it changed.
func (a *analysis) flow(pc int, st state) bool {
	old := a.seen[pc]
	if old == nil {
		cp := st
		a.seen[pc] = &cp
		return true
	}
	changed := false
	var merged state
	for i := range old.regs {
		merged.regs[i] = joinVal(old.regs[i], st.regs[i])
		if merged.regs[i] != old.regs[i] {
			changed = true
		}
	}
	if !changed {
		return false
	}
	a.joins[pc]++
	if a.joins[pc] > widenAfter {
		for i := range merged.regs {
			merged.regs[i] = widen(old.regs[i], merged.regs[i])
		}
	}
	*a.seen[pc] = merged
	return true
}

// checkTarget validates a control transfer destination the way the
// runtime dispatch loop would experience it.
func (a *analysis) checkTarget(pc, target int, st *state) *Error {
	if target < 0 || target >= len(a.insns) {
		return &Error{PC: pc, Msg: fmt.Sprintf("control flow falls off the program (pc=%d)", target), State: st.String()}
	}
	if a.hi[target] {
		return &Error{PC: pc, Msg: fmt.Sprintf("jump into the upper half of a lddw (pc=%d)", target), State: st.String()}
	}
	return nil
}

// step abstractly executes the instruction at pc over st, returning
// the feasible successors with their edge states, or the reason the
// instruction cannot be proven safe. It mirrors both the structural
// verifier's static checks and the interpreter's dynamic semantics.
func (a *analysis) step(pc int, st state) ([]succ, *Error) {
	in := a.insns[pc]
	fail := func(format string, args ...any) ([]succ, *Error) {
		return nil, &Error{PC: pc, Msg: fmt.Sprintf(format, args...), State: st.String()}
	}
	if a.hi[pc] {
		return fail("fell into the upper half of a lddw")
	}
	one := func(target int) ([]succ, *Error) {
		if err := a.checkTarget(pc, target, &st); err != nil {
			return nil, err
		}
		return []succ{{pc: target, st: st}}, nil
	}

	switch in.class() {
	case ClassALU64, ClassALU:
		if in.Dst >= NumRegisters || (in.usesRegSrc() && in.Src >= NumRegisters) {
			return fail("bad register")
		}
		if in.Dst == RegFP {
			return fail("R10 is read-only")
		}
		op := in.aluOp()
		if op > OpArsh {
			return fail("unsupported alu op %#x", op)
		}
		if in.usesRegSrc() && st.regs[in.Src].K == KindUninit {
			return fail("read of uninitialized register r%d", in.Src)
		}
		if op != OpMov && st.regs[in.Dst].K == KindUninit {
			return fail("read of uninitialized register r%d", in.Dst)
		}
		if (op == OpDiv || op == OpMod) && !in.usesRegSrc() && in.Imm == 0 {
			return fail("division by zero immediate")
		}
		st.regs[in.Dst] = a.aluXfer(in, st)
		return one(pc + 1)

	case ClassLD:
		if in.Op != OpLdImm64 {
			return fail("unsupported LD opcode %#x", in.Op)
		}
		if pc+1 >= len(a.insns) {
			return fail("truncated lddw")
		}
		if a.insns[pc+1].Op != 0 {
			return fail("lddw second slot has nonzero opcode")
		}
		if in.Dst >= NumRegisters || in.Dst == RegFP {
			return fail("bad lddw destination")
		}
		imm64 := uint64(uint32(in.Imm)) | uint64(uint32(a.insns[pc+1].Imm))<<32
		if a.insns[pc+1].Imm == 0 && a.isMapFD(int64(uint32(in.Imm))) {
			st.regs[in.Dst] = mapConstVal(int64(uint32(in.Imm)))
		} else {
			st.regs[in.Dst] = constVal(imm64)
		}
		return one(pc + 2)

	case ClassLDX:
		if in.size() == 0 {
			return fail("bad size")
		}
		if in.Dst >= NumRegisters || in.Dst == RegFP || in.Src >= NumRegisters {
			return fail("bad register")
		}
		if msg := proveStackWindow(st.regs[in.Src], int64(in.Off), in.size()); msg != "" {
			return fail("%s", msg)
		}
		// Stack contents are not tracked: a load yields an unknown
		// scalar (never a pointer, matching the structural verifier).
		st.regs[in.Dst] = unknownScalar()
		return one(pc + 1)

	case ClassSTX:
		if in.size() == 0 {
			return fail("bad size")
		}
		if in.Dst >= NumRegisters || in.Src >= NumRegisters {
			return fail("bad register")
		}
		if st.regs[in.Src].K == KindUninit {
			return fail("store of uninitialized register r%d", in.Src)
		}
		if msg := proveStackWindow(st.regs[in.Dst], int64(in.Off), in.size()); msg != "" {
			return fail("%s", msg)
		}
		return one(pc + 1)

	case ClassST:
		if in.size() == 0 {
			return fail("bad size")
		}
		if in.Dst >= NumRegisters {
			return fail("bad register")
		}
		if msg := proveStackWindow(st.regs[in.Dst], int64(in.Off), in.size()); msg != "" {
			return fail("%s", msg)
		}
		return one(pc + 1)

	case ClassJMP, ClassJMP32:
		if in.class() == ClassJMP32 {
			switch in.aluOp() {
			case OpExit, OpCall, OpJa:
				return fail("exit/call/ja must use the 64-bit JMP class")
			}
		}
		switch in.aluOp() {
		case OpExit:
			if st.regs[0].K == KindUninit {
				return fail("R0 not initialized at exit")
			}
			return nil, nil
		case OpCall:
			return a.stepCall(pc, st)
		case OpJa:
			return one(pc + 1 + int(in.Off))
		default:
			return a.stepJump(pc, st)
		}
	}
	return fail("unsupported instruction class %#x", in.class())
}

func (a *analysis) isMapFD(fd int64) bool {
	return a.opts.ValidMapFD != nil && fd >= 0 && fd <= 1<<31-1 && a.opts.ValidMapFD(fd)
}

func (a *analysis) stepCall(pc int, st state) ([]succ, *Error) {
	in := a.insns[pc]
	fail := func(format string, args ...any) ([]succ, *Error) {
		return nil, &Error{PC: pc, Msg: fmt.Sprintf(format, args...), State: st.String()}
	}
	if a.opts.KnownHelper == nil || !a.opts.KnownHelper(in.Imm) {
		return fail("unknown helper %d", in.Imm)
	}
	if a.opts.MapHelper != nil {
		if ptrArgs, ok := a.opts.MapHelper(in.Imm); ok {
			// The kernel's ARG_CONST_MAP_PTR / ARG_PTR_TO_MAP_KEY
			// discipline, proven over abstract values: R1 must name a
			// map, the pointer arguments must be provably-in-frame
			// 8-byte windows (the helpers read/write u64 through them).
			if st.regs[1].K != KindMapConst {
				return fail("map helper requires a map reference in R1 (got %s)", st.regs[1])
			}
			for arg := 0; arg < ptrArgs; arg++ {
				r := 2 + arg
				if msg := proveStackWindow(st.regs[r], 0, 8); msg != "" {
					return fail("map helper argument r%d: %s", r, msg)
				}
			}
		}
	}
	// The interpreter clobbers R1–R5 with a poison constant; as a
	// policy matter (matching the structural verifier) the argument
	// registers become unreadable rather than known-poison, so
	// post-call reads of dead args stay rejected.
	st.regs[0] = unknownScalar()
	for r := 1; r <= 5; r++ {
		st.regs[r] = uninitVal()
	}
	if err := a.checkTarget(pc, pc+1, &st); err != nil {
		return nil, err
	}
	return []succ{{pc: pc + 1, st: st}}, nil
}

func (a *analysis) stepJump(pc int, st state) ([]succ, *Error) {
	in := a.insns[pc]
	fail := func(format string, args ...any) ([]succ, *Error) {
		return nil, &Error{PC: pc, Msg: fmt.Sprintf(format, args...), State: st.String()}
	}
	op := in.aluOp()
	if op > OpJsle {
		return fail("unsupported jmp op %#x", op)
	}
	if in.Dst >= NumRegisters || (in.usesRegSrc() && in.Src >= NumRegisters) {
		return fail("register out of range in conditional jump")
	}
	if st.regs[in.Dst].K == KindUninit {
		return fail("read of uninitialized register r%d", in.Dst)
	}
	if in.usesRegSrc() && st.regs[in.Src].K == KindUninit {
		return fail("read of uninitialized register r%d", in.Src)
	}

	d := scalarView(st.regs[in.Dst])
	var s Val
	if in.usesRegSrc() {
		s = scalarView(st.regs[in.Src])
	} else {
		s = constVal(uint64(int64(in.Imm)))
	}
	j32 := in.class() == ClassJMP32
	if j32 {
		// The interpreter compares the sign-extended low words.
		d = sext32(low32(d))
		if in.usesRegSrc() {
			s = sext32(low32(s))
		} else {
			s = constVal(uint64(int64(int32(in.Imm))))
		}
	}

	edge := func(target int, taken bool) (*succ, *Error, bool) {
		nd, ns, feasible := refineCond(op, d, s, taken)
		if !feasible {
			return nil, nil, false
		}
		est := st
		if !j32 {
			// Write the branch facts back for plain scalars; pointer
			// and map values keep their provenance untouched.
			if est.regs[in.Dst].K == KindScalar {
				est.regs[in.Dst] = nd
			}
			if in.usesRegSrc() && est.regs[in.Src].K == KindScalar {
				est.regs[in.Src] = ns
			}
		}
		if err := a.checkTarget(pc, target, &est); err != nil {
			return nil, err, true
		}
		return &succ{pc: target, st: est}, nil, true
	}

	var succs []succ
	takenSucc, errT, feasT := edge(pc+1+int(in.Off), true)
	fallSucc, errF, feasF := edge(pc+1, false)
	if !feasT && !feasF {
		// Both edges refuted can only come from an (impossible) empty
		// state; degrade soundly to "both feasible, unrefined".
		est := st
		if err := a.checkTarget(pc, pc+1+int(in.Off), &est); err != nil {
			return nil, err
		}
		if err := a.checkTarget(pc, pc+1, &est); err != nil {
			return nil, err
		}
		return []succ{{pc: pc + 1 + int(in.Off), st: st}, {pc: pc + 1, st: st}}, nil
	}
	if feasT {
		if errT != nil {
			return nil, errT
		}
		succs = append(succs, *takenSucc)
	}
	if feasF {
		if errF != nil {
			return nil, errF
		}
		succs = append(succs, *fallSucc)
	}
	return succs, nil
}

// aluXfer computes the new value of the destination register for a
// validated ALU instruction.
func (a *analysis) aluXfer(in Insn, st state) Val {
	op := in.aluOp()
	d := st.regs[in.Dst]
	if in.class() == ClassALU {
		// 32-bit ops compute on the low words and zero-extend,
		// truncating pointers into scalars.
		d32 := low32(scalarView(d))
		var s32 Val
		if in.usesRegSrc() {
			s32 = low32(scalarView(st.regs[in.Src]))
		} else {
			s32 = constVal(uint64(uint32(in.Imm)))
		}
		return alu32Scalar(op, d32, s32)
	}

	var s Val
	srcIsPtr := false
	if in.usesRegSrc() {
		s = st.regs[in.Src]
		srcIsPtr = s.K != KindScalar
	} else {
		s = constVal(uint64(int64(in.Imm)))
	}

	switch op {
	case OpMov:
		if !in.usesRegSrc() {
			// A constant move that names a registered map becomes a
			// map reference, as in the structural verifier.
			if a.isMapFD(int64(in.Imm)) {
				return mapConstVal(int64(in.Imm))
			}
			return constVal(uint64(int64(in.Imm)))
		}
		return s
	case OpAdd, OpSub:
		if d.K == KindStackPtr && !srcIsPtr {
			// Pointer ± scalar keeps provenance; the variable part
			// accumulates into the addend.
			ad := addendOf(d)
			if op == OpAdd {
				ad = aAdd(ad, s)
			} else {
				ad = aSub(ad, s)
			}
			ad.K = KindStackPtr
			ad.Off = d.Off
			return ad
		}
	}
	return alu64Scalar(op, scalarView(d), scalarView(s))
}

// alu64Scalar is the 64-bit scalar transfer, mirroring aluOp64.
func alu64Scalar(op uint8, d, s Val) Val {
	if dc, ok := d.IsConst(); ok {
		if sc, ok2 := s.IsConst(); ok2 {
			return constVal(concrete64(op, dc, sc))
		}
	}
	switch op {
	case OpAdd:
		return aAdd(d, s)
	case OpSub:
		return aSub(d, s)
	case OpMul:
		return aMul(d, s)
	case OpDiv:
		return aDiv(d, s)
	case OpMod:
		return aMod(d, s)
	case OpAnd:
		return aAnd(d, s)
	case OpOr:
		return aOr(d, s)
	case OpXor:
		return aXor(d, s)
	case OpLsh:
		return aLsh(d, s)
	case OpRsh:
		return aRsh(d, s)
	case OpArsh:
		return aArsh(d, s)
	case OpNeg:
		return aNeg(d)
	case OpMov:
		return s
	}
	return unknownScalar()
}

// concrete64 mirrors the interpreter's aluOp64 on two known values.
func concrete64(op uint8, dst, src uint64) uint64 {
	switch op {
	case OpAdd:
		return dst + src
	case OpSub:
		return dst - src
	case OpMul:
		return dst * src
	case OpDiv:
		if src == 0 {
			return 0
		}
		return dst / src
	case OpMod:
		if src == 0 {
			return dst
		}
		return dst % src
	case OpAnd:
		return dst & src
	case OpOr:
		return dst | src
	case OpXor:
		return dst ^ src
	case OpLsh:
		return dst << (src & 63)
	case OpRsh:
		return dst >> (src & 63)
	case OpArsh:
		return uint64(int64(dst) >> (src & 63))
	case OpNeg:
		return uint64(-int64(dst))
	case OpMov:
		return src
	}
	return 0
}

// alu32Scalar is the 32-bit transfer: operands are low32 views, the
// result lands zero-extended in [0, 2^32), mirroring aluOp32.
func alu32Scalar(op uint8, d, s Val) Val {
	if dc, ok := d.IsConst(); ok {
		if sc, ok2 := s.IsConst(); ok2 {
			return constVal(uint64(concrete32(op, uint32(dc), uint32(sc))))
		}
	}
	switch op {
	case OpAdd:
		return trunc32(aAdd(d, s))
	case OpSub:
		return trunc32(aSub(d, s))
	case OpMul:
		return trunc32(aMul(d, s))
	case OpDiv:
		return trunc32(aDiv(d, s))
	case OpMod:
		return trunc32(aMod(d, s))
	case OpAnd:
		return trunc32(aAnd(d, s))
	case OpOr:
		return trunc32(aOr(d, s))
	case OpXor:
		return trunc32(aXor(d, s))
	case OpLsh:
		if c, ok := s.IsConst(); ok {
			return trunc32(aLsh(d, constVal(c&31)))
		}
	case OpRsh:
		if c, ok := s.IsConst(); ok {
			return trunc32(aRsh(d, constVal(c&31)))
		}
	case OpArsh:
		if c, ok := s.IsConst(); ok {
			return trunc32(aArsh(sext32(d), constVal(c&31)))
		}
	case OpMov:
		return s
	}
	return trunc32(unknownScalar())
}

// concrete32 mirrors the interpreter's aluOp32 on two known values.
func concrete32(op uint8, dst, src uint32) uint32 {
	switch op {
	case OpAdd:
		return dst + src
	case OpSub:
		return dst - src
	case OpMul:
		return dst * src
	case OpDiv:
		if src == 0 {
			return 0
		}
		return dst / src
	case OpMod:
		if src == 0 {
			return dst
		}
		return dst % src
	case OpAnd:
		return dst & src
	case OpOr:
		return dst | src
	case OpXor:
		return dst ^ src
	case OpLsh:
		return dst << (src & 31)
	case OpRsh:
		return dst >> (src & 31)
	case OpArsh:
		return uint32(int32(dst) >> (src & 31))
	case OpNeg:
		return uint32(-int32(dst))
	case OpMov:
		return src
	}
	return 0
}

// proveStackWindow proves a [off+min, off+max+size) byte window
// through v lies inside the 512-byte frame for every concrete value
// of v — the static counterpart of the runtime stackIndex check.
// Returns "" when proven, else the reason.
func proveStackWindow(v Val, off int64, size int) string {
	switch v.K {
	case KindUninit:
		return "memory access through uninitialized register"
	case KindScalar:
		return fmt.Sprintf("memory access through scalar register (value %s)", v)
	case KindMapConst:
		return "memory access through a map reference"
	}
	ad := addendOf(v)
	const lim = int64(1) << 47
	if ad.Smin < -lim || ad.Smax > lim || v.Off < -lim || v.Off > lim {
		return fmt.Sprintf("stack access not provably in frame: pointer offset unbounded (%s)", v)
	}
	lo := v.Off + off + ad.Smin
	hi := v.Off + off + ad.Smax + int64(size)
	if lo < -StackSize || hi > 0 {
		return fmt.Sprintf("stack access not provably in frame: fp%+d..fp%+d (frame is [fp-%d, fp)), pointer %s",
			lo, hi, StackSize, v)
	}
	return ""
}

package absint

import (
	"strings"
	"testing"
)

// Tiny instruction builders over the mirrored encoding.
func mov64(dst uint8, imm int32) Insn { return Insn{Op: ClassALU64 | OpMov | SrcK, Dst: dst, Imm: imm} }
func movr(dst, src uint8) Insn        { return Insn{Op: ClassALU64 | OpMov | SrcX, Dst: dst, Src: src} }
func alu64(op, dst uint8, imm int32) Insn {
	return Insn{Op: ClassALU64 | op | SrcK, Dst: dst, Imm: imm}
}
func alu64r(op, dst, src uint8) Insn {
	return Insn{Op: ClassALU64 | op | SrcX, Dst: dst, Src: src}
}
func jmp(op, dst uint8, imm int32, off int16) Insn {
	return Insn{Op: ClassJMP | op | SrcK, Dst: dst, Imm: imm, Off: off}
}
func jmpr(op, dst, src uint8, off int16) Insn {
	return Insn{Op: ClassJMP | op | SrcX, Dst: dst, Src: src, Off: off}
}
func stxdw(dst uint8, off int16, src uint8) Insn {
	return Insn{Op: ClassSTX | ModeMEM | SizeDW, Dst: dst, Src: src, Off: off}
}
func exit() Insn { return Insn{Op: ClassJMP | OpExit} }

func analyze(t *testing.T, insns []Insn) *Result {
	t.Helper()
	return Analyze(insns, Opts{})
}

func wantOK(t *testing.T, insns []Insn) *Result {
	t.Helper()
	r := analyze(t, insns)
	if !r.OK {
		t.Fatalf("rejected: %v", r.Err)
	}
	return r
}

func wantReject(t *testing.T, frag string, insns []Insn) *Result {
	t.Helper()
	r := analyze(t, insns)
	if r.OK {
		t.Fatalf("accepted; want rejection containing %q", frag)
	}
	if !strings.Contains(r.Err.Error(), frag) {
		t.Fatalf("error %q does not contain %q", r.Err, frag)
	}
	return r
}

func TestAnalyzeTrivial(t *testing.T) {
	r := wantOK(t, []Insn{mov64(0, 7), exit()})
	if r.WorstCase != 2 {
		t.Fatalf("worst case = %d, want 2", r.WorstCase)
	}
	if len(r.Branches) != 0 {
		t.Fatalf("unexpected branch facts: %v", r.Branches)
	}
}

func TestAnalyzeDeadFallEdge(t *testing.T) {
	// r0 = 5; if r0 == 5 goto exit; r0 = 99 (dead); exit
	r := wantOK(t, []Insn{
		mov64(0, 5),
		jmp(OpJeq, 0, 5, 1),
		mov64(0, 99),
		exit(),
	})
	br, ok := r.Branches[1]
	if !ok || !br.FallDead || br.TakenDead {
		t.Fatalf("branch facts = %+v, want fall-dead at pc 1", r.Branches)
	}
	if r.Reachable[2] {
		t.Fatal("pc 2 should be unreachable")
	}
	if r.WorstCase != 3 {
		t.Fatalf("worst case = %d, want 3", r.WorstCase)
	}
	var kinds []string
	for _, f := range r.Findings {
		kinds = append(kinds, f.Kind)
	}
	joined := strings.Join(kinds, ",")
	if !strings.Contains(joined, "infeasible-branch") || !strings.Contains(joined, "dead-code") {
		t.Fatalf("findings = %v, want infeasible-branch and dead-code", r.Findings)
	}
}

func TestAnalyzeDeadTakenEdge(t *testing.T) {
	// r0 = 3; if r0 > 5 goto +1 (never); exit; (dead) exit
	r := wantOK(t, []Insn{
		mov64(0, 3),
		jmp(OpJgt, 0, 5, 1),
		exit(),
		exit(),
	})
	br, ok := r.Branches[1]
	if !ok || !br.TakenDead || br.FallDead {
		t.Fatalf("branch facts = %+v, want taken-dead at pc 1", r.Branches)
	}
	if r.Reachable[3] {
		t.Fatal("pc 3 should be unreachable")
	}
}

// TestAnalyzeDeadEdgeIntoInvalidCode is the strictly-larger program
// class: the only path into the garbage is infeasible, so the program
// is safe even though the dead region could never verify.
func TestAnalyzeDeadEdgeIntoInvalidCode(t *testing.T) {
	r := wantOK(t, []Insn{
		mov64(0, 1),
		jmp(OpJne, 0, 1, 1), // never taken
		exit(),
		{Op: 0xff, Dst: 9}, // garbage, unreachable
	})
	if r.Reachable[3] {
		t.Fatal("garbage should be unreachable")
	}
	// Same shape, but with the edge feasible: must reject.
	wantReject(t, "unsupported", []Insn{
		mov64(0, 1),
		jmp(OpJeq, 0, 1, 1),
		exit(),
		{Op: 0xff, Dst: 9},
	})
}

func TestAnalyzeBoundedLoopExactCost(t *testing.T) {
	// r6 = 0; loop: r6 += 1; if r6 < 10 goto loop; r0 = r6; exit
	r := wantOK(t, []Insn{
		mov64(6, 0),
		alu64(OpAdd, 6, 1),
		jmp(OpJlt, 6, 10, -2),
		movr(0, 6),
		exit(),
	})
	// 1 (mov) + 10*(add+jlt) + 1 (mov) + 1 (exit) = 23
	if r.WorstCase != 23 {
		t.Fatalf("worst case = %d, want 23", r.WorstCase)
	}
}

func TestAnalyzeVariableOffsetStackAccess(t *testing.T) {
	// r6 in [0, 63] proven by branch; store to fp-512+r6*8.
	prog := []Insn{
		mov64(0, 0),
		mov64(6, 0),
		// loop:
		movr(2, 6),
		alu64(OpLsh, 2, 3),
		movr(3, 10),
		alu64(OpAdd, 3, -512),
		alu64r(OpAdd, 3, 2),
		stxdw(3, 0, 6),
		alu64(OpAdd, 6, 1),
		jmp(OpJlt, 6, 64, -8),
		exit(),
	}
	r := wantOK(t, prog)
	if r.WorstCase != 3+64*8 {
		t.Fatalf("worst case = %d, want %d", r.WorstCase, 3+64*8)
	}
	// One byte past the frame: the same program with 65 iterations
	// writes through fp+8 and must be rejected.
	bad := append([]Insn{}, prog...)
	bad[9] = jmp(OpJlt, 6, 66, -8)
	wantReject(t, "not provably in frame", bad)
}

func TestAnalyzeUnboundedLoop(t *testing.T) {
	// r6 = unknown (R1 at entry); loop: r6 += 1; if r6 != 0 goto loop
	r := wantOK(t, []Insn{
		mov64(0, 0),
		movr(6, 1),
		alu64(OpAdd, 6, 1),
		jmp(OpJne, 6, 0, -2),
		exit(),
	})
	if r.WorstCase != -1 {
		t.Fatalf("worst case = %d, want -1 (unbounded)", r.WorstCase)
	}
}

func TestAnalyzeJmp32Feasibility(t *testing.T) {
	// r0 = 0x1_0000_0005: the 64-bit value differs from 5, but JMP32
	// compares the low word, so the branch is always taken.
	r := wantOK(t, []Insn{
		{Op: ClassLD | ModeIMM | SizeDW, Dst: 0, Imm: 5},
		{Imm: 1}, // upper half = 1
		{Op: ClassJMP32 | OpJeq | SrcK, Dst: 0, Imm: 5, Off: 1},
		mov64(0, 99),
		exit(),
	})
	br, ok := r.Branches[2]
	if !ok || !br.FallDead {
		t.Fatalf("branch facts = %+v, want fall-dead at pc 2 (JMP32 compares low words)", r.Branches)
	}
	// The 64-bit comparison on the same program must go the other way.
	r = wantOK(t, []Insn{
		{Op: ClassLD | ModeIMM | SizeDW, Dst: 0, Imm: 5},
		{Imm: 1},
		jmp(OpJeq, 0, 5, 1),
		exit(),
		exit(),
	})
	if br := r.Branches[2]; !br.TakenDead {
		t.Fatalf("branch facts = %+v, want taken-dead at pc 2 (64-bit compare)", r.Branches)
	}
}

func TestAnalyzeJsetRefinement(t *testing.T) {
	// r1 unknown; if r1 & 0x10 goto set; r0=0; exit; set: r0=1; exit
	r := wantOK(t, []Insn{
		jmp(OpJset, 1, 0x10, 2),
		mov64(0, 0),
		exit(),
		mov64(0, 1),
		exit(),
	})
	if len(r.Branches) != 0 {
		t.Fatalf("no dead edges expected: %v", r.Branches)
	}
	// With the bit known zero the taken edge dies.
	r = wantOK(t, []Insn{
		mov64(1, 0x0f),
		jmp(OpJset, 1, 0x10, 2),
		mov64(0, 0),
		exit(),
		mov64(0, 1),
		exit(),
	})
	if br := r.Branches[1]; !br.TakenDead {
		t.Fatalf("branch facts = %+v, want taken-dead", r.Branches)
	}
}

func TestAnalyzeRejections(t *testing.T) {
	cases := []struct {
		name, frag string
		insns      []Insn
	}{
		{"empty", "empty program", nil},
		{"uninit-read", "uninitialized register", []Insn{movr(0, 6), exit()}},
		{"r0-at-exit", "R0 not initialized", []Insn{exit()}},
		{"bad-register", "bad register", []Insn{mov64(12, 0), exit()}},
		{"bad-src-register", "bad register", []Insn{
			{Op: ClassALU64 | OpMov | SrcX, Dst: 0, Src: 14}, exit()}},
		{"write-fp", "read-only", []Insn{mov64(10, 0), exit()}},
		{"div-zero-imm", "division by zero", []Insn{mov64(0, 1), alu64(OpDiv, 0, 0), exit()}},
		{"falls-off", "falls off", []Insn{mov64(0, 0)}},
		{"jump-off-program", "falls off", []Insn{mov64(0, 0), jmp(OpJeq, 1, 0, 40), exit()}},
		{"scalar-deref", "scalar register", []Insn{mov64(1, 8), stxdw(1, 0, 1), mov64(0, 0), exit()}},
		{"oob-store", "not provably in frame", []Insn{stxdw(10, -520, 10), mov64(0, 0), exit()}},
		{"unknown-helper", "unknown helper", []Insn{
			{Op: ClassJMP | OpCall, Imm: 99}, mov64(0, 0), exit()}},
		{"jmp32-exit", "64-bit JMP class", []Insn{
			mov64(0, 0), {Op: ClassJMP32 | OpExit}}},
		{"store-uninit", "store of uninitialized", []Insn{stxdw(10, -8, 6), mov64(0, 0), exit()}},
		{"jump-into-lddw", "upper half", []Insn{
			{Op: ClassJMP | OpJa, Off: 1},
			{Op: ClassLD | ModeIMM | SizeDW, Dst: 0, Imm: 5},
			{Imm: 0},
			exit(),
		}},
		{"truncated-lddw", "truncated lddw", []Insn{
			mov64(0, 0), {Op: ClassLD | ModeIMM | SizeDW, Dst: 0, Imm: 5}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantReject(t, tc.frag, tc.insns)
		})
	}
}

func TestAnalyzeUnboundedScalarDerefReported(t *testing.T) {
	// fp + unbounded scalar: the pointer survives, the access must not.
	r := wantReject(t, "not provably in frame", []Insn{
		movr(3, 10),
		alu64r(OpAdd, 3, 1), // r1 unknown at entry
		stxdw(3, -8, 10),
		mov64(0, 0),
		exit(),
	})
	found := false
	for _, f := range r.Findings {
		if f.Kind == "unproven-access" {
			found = true
		}
	}
	if !found {
		t.Fatalf("findings = %v, want an unproven-access", r.Findings)
	}
}

func TestAnalyzeMapHelperDiscipline(t *testing.T) {
	opts := Opts{
		ValidMapFD:  func(fd int64) bool { return fd == 3 },
		KnownHelper: func(id int32) bool { return id == 1 || id == 5 },
		MapHelper: func(id int32) (int, bool) {
			if id == 1 {
				return 2, true
			}
			return 0, false
		},
	}
	good := []Insn{
		mov64(1, 3), // map fd
		movr(2, 10),
		alu64(OpAdd, 2, -8),
		stxdw(10, -8, 1),
		movr(3, 10),
		alu64(OpAdd, 3, -16),
		stxdw(10, -16, 1),
		{Op: ClassJMP | OpCall, Imm: 1},
		mov64(0, 0),
		exit(),
	}
	if r := Analyze(good, opts); !r.OK {
		t.Fatalf("good map call rejected: %v", r.Err)
	}
	// Scalar in R1 instead of a map reference.
	bad := append([]Insn{}, good...)
	bad[0] = mov64(1, 4) // not a registered fd
	if r := Analyze(bad, opts); r.OK {
		t.Fatal("map helper with non-map R1 accepted")
	} else if !strings.Contains(r.Err.Msg, "map reference in R1") {
		t.Fatalf("unexpected error: %v", r.Err)
	}
	// Key pointer not provably in frame.
	bad2 := append([]Insn{}, good...)
	bad2[2] = alu64(OpAdd, 2, 8)
	if r := Analyze(bad2, opts); r.OK {
		t.Fatal("map helper with out-of-frame key accepted")
	}
	// Args are dead after the call.
	postRead := append(append([]Insn{}, good[:8]...),
		movr(0, 2), exit())
	if r := Analyze(postRead, opts); r.OK {
		t.Fatal("read of clobbered arg register accepted")
	}
}

func TestAnalyzeWideningConverges(t *testing.T) {
	// A loop whose induction variable never stabilizes without
	// widening (grows by 3 each round, bounded only by the budget).
	r := wantOK(t, []Insn{
		mov64(0, 0),
		mov64(6, 0),
		alu64(OpAdd, 6, 3),
		jmpr(OpJne, 6, 1, -2), // compare against unknown r1
		exit(),
	})
	if r.WorstCase != -1 {
		t.Fatalf("worst case = %d, want -1", r.WorstCase)
	}
}

func TestAnalyzePoisonedArgsAfterCall(t *testing.T) {
	opts := Opts{KnownHelper: func(id int32) bool { return id == 5 }}
	// R6 survives the call, R1 does not.
	ok := []Insn{
		mov64(6, 9),
		{Op: ClassJMP | OpCall, Imm: 5},
		movr(0, 6),
		exit(),
	}
	if r := Analyze(ok, opts); !r.OK {
		t.Fatalf("callee-saved read rejected: %v", r.Err)
	}
	bad := []Insn{
		mov64(1, 9),
		{Op: ClassJMP | OpCall, Imm: 5},
		movr(0, 1),
		exit(),
	}
	if r := Analyze(bad, opts); r.OK {
		t.Fatal("caller-clobbered read accepted")
	}
}

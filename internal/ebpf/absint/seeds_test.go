package absint_test

import "snapbpf/internal/ebpf"

// fuzzSeeds returns the seed corpus for FuzzAbsint: programs shaped
// to exercise the analysis features that differ from the structural
// verifier — dead branches, bounded loops, variable-offset stack
// accesses, map helper calls and 32-bit jump feasibility.
func fuzzSeeds() [][]ebpf.Instruction {
	mov := func(dst ebpf.Register, imm int32) ebpf.Instruction {
		return ebpf.Instruction{Op: ebpf.ClassALU64 | ebpf.OpMov | ebpf.SrcK, Dst: dst, Imm: imm}
	}
	movr := func(dst, src ebpf.Register) ebpf.Instruction {
		return ebpf.Instruction{Op: ebpf.ClassALU64 | ebpf.OpMov | ebpf.SrcX, Dst: dst, Src: src}
	}
	alu := func(op uint8, dst ebpf.Register, imm int32) ebpf.Instruction {
		return ebpf.Instruction{Op: ebpf.ClassALU64 | op | ebpf.SrcK, Dst: dst, Imm: imm}
	}
	alur := func(op uint8, dst, src ebpf.Register) ebpf.Instruction {
		return ebpf.Instruction{Op: ebpf.ClassALU64 | op | ebpf.SrcX, Dst: dst, Src: src}
	}
	jmp := func(op uint8, dst ebpf.Register, imm int32, off int16) ebpf.Instruction {
		return ebpf.Instruction{Op: ebpf.ClassJMP | op | ebpf.SrcK, Dst: dst, Imm: imm, Off: off}
	}
	exit := ebpf.Instruction{Op: ebpf.ClassJMP | ebpf.OpExit}

	return [][]ebpf.Instruction{
		// Trivial return.
		{mov(ebpf.R0, 7), exit},
		// Dead fall edge: r1 is forced to 3, jeq 3 always taken.
		{
			mov(ebpf.R1, 3),
			jmp(ebpf.OpJeq, ebpf.R1, 3, 2),
			mov(ebpf.R0, 1),
			exit,
			mov(ebpf.R0, 2),
			exit,
		},
		// Bounded counting loop: rejected structurally (back edge),
		// proven terminating by the analysis.
		{
			mov(ebpf.R0, 0),
			alu(ebpf.OpAdd, ebpf.R0, 1),
			jmp(ebpf.OpJlt, ebpf.R0, 10, -2),
			exit,
		},
		// Variable-offset stack store loop: r6 in [0,63], each slot
		// of the 512-byte frame written through a computed pointer.
		{
			mov(ebpf.R0, 0),
			mov(ebpf.R6, 0),
			movr(ebpf.R2, ebpf.R6),
			alu(ebpf.OpLsh, ebpf.R2, 3),
			movr(ebpf.R3, ebpf.R10),
			alu(ebpf.OpAdd, ebpf.R3, -512),
			alur(ebpf.OpAdd, ebpf.R3, ebpf.R2),
			{Op: ebpf.ClassSTX | ebpf.ModeMEM | ebpf.SizeDW, Dst: ebpf.R3, Src: ebpf.R6},
			alu(ebpf.OpAdd, ebpf.R6, 1),
			jmp(ebpf.OpJlt, ebpf.R6, 64, -8),
			movr(ebpf.R0, ebpf.R6),
			exit,
		},
		// Map update through stack pointers (helper discipline). The
		// map fd is 0: the first registered map in a fresh VM.
		{
			{Op: ebpf.ClassST | ebpf.ModeMEM | ebpf.SizeDW, Dst: ebpf.R10, Off: -8, Imm: 41},
			{Op: ebpf.ClassST | ebpf.ModeMEM | ebpf.SizeDW, Dst: ebpf.R10, Off: -16, Imm: 42},
			mov(ebpf.R1, 0),
			movr(ebpf.R2, ebpf.R10),
			alu(ebpf.OpAdd, ebpf.R2, -8),
			movr(ebpf.R3, ebpf.R10),
			alu(ebpf.OpAdd, ebpf.R3, -16),
			{Op: ebpf.ClassJMP | ebpf.OpCall, Imm: ebpf.HelperMapUpdateElem},
			mov(ebpf.R0, 0),
			exit,
		},
		// JMP32 feasibility: the low word of a wide constant decides.
		{
			{Op: ebpf.OpLdImm64, Dst: ebpf.R1, Imm: 5},
			{Op: 0, Imm: 1},
			{Op: ebpf.ClassJMP32 | ebpf.OpJeq | ebpf.SrcK, Dst: ebpf.R1, Imm: 5, Off: 2},
			mov(ebpf.R0, 0),
			exit,
			mov(ebpf.R0, 1),
			exit,
		},
		// JSET single-bit refinement.
		{
			mov(ebpf.R1, 6),
			jmp(ebpf.OpJset, ebpf.R1, 2, 2),
			mov(ebpf.R0, 0),
			exit,
			mov(ebpf.R0, 1),
			exit,
		},
	}
}

package absint

import "fmt"

// Mirrored ISA encoding. This package is a leaf — internal/ebpf
// consumes it from the verifier and the JIT, so it cannot import the
// instruction definitions back. The constants below are byte-for-byte
// the Linux eBPF encoding used by internal/ebpf/isa.go and are pinned
// against it by TestAbsintConstsMatch on the other side.
const (
	ClassLD    = 0x00
	ClassLDX   = 0x01
	ClassST    = 0x02
	ClassSTX   = 0x03
	ClassALU   = 0x04
	ClassJMP   = 0x05
	ClassJMP32 = 0x06
	ClassALU64 = 0x07
)

const (
	SizeW  = 0x00
	SizeH  = 0x08
	SizeB  = 0x10
	SizeDW = 0x18
)

const (
	ModeIMM = 0x00
	ModeMEM = 0x60
)

const (
	SrcK = 0x00
	SrcX = 0x08
)

const (
	OpAdd  = 0x00
	OpSub  = 0x10
	OpMul  = 0x20
	OpDiv  = 0x30
	OpOr   = 0x40
	OpAnd  = 0x50
	OpLsh  = 0x60
	OpRsh  = 0x70
	OpNeg  = 0x80
	OpMod  = 0x90
	OpXor  = 0xa0
	OpMov  = 0xb0
	OpArsh = 0xc0
)

const (
	OpJa   = 0x00
	OpJeq  = 0x10
	OpJgt  = 0x20
	OpJge  = 0x30
	OpJset = 0x40
	OpJne  = 0x50
	OpJsgt = 0x60
	OpJsge = 0x70
	OpCall = 0x80
	OpExit = 0x90
	OpJlt  = 0xa0
	OpJle  = 0xb0
	OpJslt = 0xc0
	OpJsle = 0xd0
)

// OpLdImm64 is the two-slot 64-bit immediate load (LD|IMM|DW).
const OpLdImm64 = ClassLD | ModeIMM | SizeDW

const (
	// NumRegisters is the register-file size (R0–R10).
	NumRegisters = 11
	// RegFP is the frame pointer, R10.
	RegFP = 10
	// StackSize is the per-program stack frame in bytes.
	StackSize = 512
	// MaxProgramLen caps the instruction count, as in internal/ebpf.
	MaxProgramLen = 4096
	// InsnBudget mirrors the runtime instruction budget; a program
	// whose worst-case instruction count stays at or under it can
	// never trip the dynamic termination check.
	InsnBudget = 1_000_000
)

// poisonConst is the value the interpreter clobbers R1–R5 with after
// a helper call.
const poisonConst uint64 = 0xdead_beef_dead_beef

// Insn is one raw eBPF instruction, field-for-field the layout of
// internal/ebpf.Instruction.
type Insn struct {
	Op  uint8
	Dst uint8
	Src uint8
	Off int16
	Imm int32
}

func (in Insn) class() uint8     { return in.Op & 0x07 }
func (in Insn) aluOp() uint8     { return in.Op & 0xf0 }
func (in Insn) usesRegSrc() bool { return in.Op&0x08 != 0 }

func (in Insn) size() int {
	switch in.Op & 0x18 {
	case SizeW:
		return 4
	case SizeH:
		return 2
	case SizeB:
		return 1
	case SizeDW:
		return 8
	}
	return 0
}

func (in Insn) String() string {
	return fmt.Sprintf("op=%#02x dst=r%d src=r%d off=%d imm=%d",
		in.Op, in.Dst, in.Src, in.Off, in.Imm)
}

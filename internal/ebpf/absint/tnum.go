// Package absint is a kernel-verifier-style abstract interpreter for
// the SnapBPF eBPF dialect. It tracks, per register, a tnum
// (known-bits) domain plus signed and unsigned interval bounds and
// pointer provenance, runs a worklist fixpoint over the basic-block
// CFG, evaluates branch feasibility, and derives a static worst-case
// instruction bound for bounded programs.
//
// The package is a leaf: it deliberately does not import
// internal/ebpf (which consumes it from the verifier and the JIT).
// Instruction encoding constants are mirrored here and pinned against
// the ebpf package by a consistency test on the other side.
package absint

import (
	"fmt"
	"math/bits"
)

// Tnum is the kernel's "tracked number": Value holds the bits known
// to be set, Mask the bits whose value is unknown. A bit position is
// known-zero when it is clear in both. Invariant: Value&Mask == 0.
type Tnum struct {
	Value uint64
	Mask  uint64
}

var (
	tnumUnknown = Tnum{Value: 0, Mask: ^uint64(0)}
)

// TnumConst is the singleton abstraction of one concrete value.
func TnumConst(v uint64) Tnum { return Tnum{Value: v} }

// IsConst reports whether exactly one concrete value is represented.
func (t Tnum) IsConst() bool { return t.Mask == 0 }

// Contains reports whether the concrete value v is represented by t.
func (t Tnum) Contains(v uint64) bool { return v&^t.Mask == t.Value }

// TnumRange abstracts the unsigned interval [min, max] the same way
// the kernel's tnum_range does: all bits above the highest bit where
// min and max differ are known, everything below is unknown.
func TnumRange(min, max uint64) Tnum {
	chi := min ^ max
	if chi == 0 {
		return TnumConst(min)
	}
	bitsUsed := 64 - bits.LeadingZeros64(chi)
	var delta uint64
	if bitsUsed == 64 {
		delta = ^uint64(0)
	} else {
		delta = (uint64(1) << bitsUsed) - 1
	}
	return Tnum{Value: min &^ delta, Mask: delta}
}

func (t Tnum) Add(o Tnum) Tnum {
	sm := t.Mask + o.Mask
	sv := t.Value + o.Value
	sigma := sm + sv
	chi := sigma ^ sv
	mu := chi | t.Mask | o.Mask
	return Tnum{Value: sv &^ mu, Mask: mu}
}

func (t Tnum) Sub(o Tnum) Tnum {
	dv := t.Value - o.Value
	alpha := dv + t.Mask
	beta := dv - o.Mask
	chi := alpha ^ beta
	mu := chi | t.Mask | o.Mask
	return Tnum{Value: dv &^ mu, Mask: mu}
}

func (t Tnum) And(o Tnum) Tnum {
	alpha := t.Value | t.Mask
	beta := o.Value | o.Mask
	v := t.Value & o.Value
	return Tnum{Value: v, Mask: alpha & beta &^ v}
}

func (t Tnum) Or(o Tnum) Tnum {
	v := t.Value | o.Value
	mu := t.Mask | o.Mask
	return Tnum{Value: v, Mask: mu &^ v}
}

func (t Tnum) Xor(o Tnum) Tnum {
	v := t.Value ^ o.Value
	mu := t.Mask | o.Mask
	return Tnum{Value: v &^ mu, Mask: mu}
}

// Mul uses the kernel's half-multiply decomposition: accumulate
// partial products of the certain and uncertain parts.
func (t Tnum) Mul(o Tnum) Tnum {
	acc := TnumConst(t.Value * o.Value)
	a, b := t, o
	for a.Value != 0 || a.Mask != 0 {
		if a.Value&1 != 0 {
			acc = acc.Add(Tnum{Value: 0, Mask: b.Mask})
		} else if a.Mask&1 != 0 {
			acc = acc.Add(Tnum{Value: 0, Mask: b.Value | b.Mask})
		}
		a = a.rshift(1)
		b = b.lshift(1)
	}
	return acc
}

func (t Tnum) lshift(n uint) Tnum {
	return Tnum{Value: t.Value << n, Mask: t.Mask << n}
}

func (t Tnum) rshift(n uint) Tnum {
	return Tnum{Value: t.Value >> n, Mask: t.Mask >> n}
}

// Lsh/Rsh/Arsh shift by a constant amount (already masked by caller).
func (t Tnum) Lsh(n uint) Tnum { return t.lshift(n) }
func (t Tnum) Rsh(n uint) Tnum { return t.rshift(n) }

func (t Tnum) Arsh(n uint) Tnum {
	return Tnum{
		Value: uint64(int64(t.Value) >> n),
		Mask:  uint64(int64(t.Mask) >> n),
	}
}

// Intersect narrows to values represented by both operands. The
// second return is false when the operands are contradictory (no
// concrete value satisfies both).
func (t Tnum) Intersect(o Tnum) (Tnum, bool) {
	// Bits known in both operands must agree.
	if (t.Value^o.Value)&^(t.Mask|o.Mask) != 0 {
		return Tnum{}, false
	}
	v := t.Value | o.Value
	mu := t.Mask & o.Mask
	return Tnum{Value: v &^ mu, Mask: mu}, true
}

// Union widens to values represented by either operand (the join).
func (t Tnum) Union(o Tnum) Tnum {
	v := t.Value & o.Value
	mu := t.Mask | o.Mask | (t.Value ^ o.Value)
	return Tnum{Value: v &^ mu, Mask: mu}
}

// Cast truncates to size bytes (zero-extending the result).
func (t Tnum) Cast(size int) Tnum {
	if size >= 8 {
		return t
	}
	m := uint64(1)<<(8*uint(size)) - 1
	return Tnum{Value: t.Value & m, Mask: t.Mask & m}
}

// In reports whether every value represented by o is represented by t.
func (t Tnum) In(o Tnum) bool {
	if o.Mask&^t.Mask != 0 {
		return false
	}
	return t.Contains(o.Value)
}

func (t Tnum) String() string {
	if t.IsConst() {
		return fmt.Sprintf("%#x", t.Value)
	}
	if t == tnumUnknown {
		return "unknown"
	}
	return fmt.Sprintf("(%#x; %#x)", t.Value, t.Mask)
}

package ebpf

import (
	"sync"
	"testing"
)

// TestDecodedProgramKinds checks that Load pre-decodes every slot,
// including the collapsed lddw pair.
func TestDecodedProgramKinds(t *testing.T) {
	vm := NewVM()
	b := NewBuilder()
	b.LdImm64(R6, 0xdeadbeef_12345678).
		Mov64Imm(R0, 0).
		JmpImm(OpJeq, R6, 0, "out").
		Add64Imm(R0, 1).
		Label("out").
		Exit()
	prog := vm.MustLoad("dec", b.MustProgram())
	if len(prog.dec) != prog.Len() {
		t.Fatalf("decoded %d slots for %d insns", len(prog.dec), prog.Len())
	}
	if prog.dec[0].kind != decLdImm64 || prog.dec[0].imm64 != 0xdeadbeef_12345678 {
		t.Fatalf("lddw decoded as kind=%d imm64=%#x", prog.dec[0].kind, prog.dec[0].imm64)
	}
	if prog.dec[1].kind != decLdImm64Hi {
		t.Fatalf("lddw hi slot decoded as kind=%d", prog.dec[1].kind)
	}
	got, err := prog.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("Run = %d, want 1", got)
	}
}

// TestProgramConcurrentRun drives one loaded program from many
// goroutines at once: the scratch-buffer arbitration must fall back to
// fresh state, never corrupt results, and stay race-clean.
func TestProgramConcurrentRun(t *testing.T) {
	vm := NewVM()
	fd := vm.RegisterMap(MustNewMap(MapTypeArray, "arr", 8))
	m, _ := vm.MapByFD(fd)
	if err := m.Update(3, 77); err != nil {
		t.Fatal(err)
	}
	// Stack-heavy program: store both args, reload, sum, add the map
	// value for key 3 — any cross-run stack sharing would corrupt it.
	b := NewBuilder()
	b.StxDW(R10, -8, R1).
		StxDW(R10, -16, R2).
		StDWImm(R10, -24, 3).
		Mov64Imm(R1, fd).
		Mov64Reg(R2, R10).
		Add64Imm(R2, -24).
		Mov64Reg(R3, R10).
		Add64Imm(R3, -32).
		Call(HelperMapLookupElem).
		LdxDW(R6, R10, -8).
		LdxDW(R7, R10, -16).
		LdxDW(R8, R10, -32).
		Mov64Reg(R0, R6).
		Add64Reg(R0, R7).
		Add64Reg(R0, R8).
		Exit()
	prog := vm.MustLoad("conc", b.MustProgram())

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				got, err := prog.Run(nil, 10, 20)
				if err != nil {
					errs <- err
					return
				}
				if got != 10+20+77 {
					errs <- &VerifyError{Msg: "corrupted result"}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if prog.Runs() != 8*2000 {
		t.Fatalf("Runs = %d, want %d", prog.Runs(), 8*2000)
	}
}

// TestMapRegisteredAfterLoadReachable exercises the map cache's
// fallback: an fd registered after the program loaded is not in the
// load-time snapshot but must still resolve through the VM table.
func TestMapRegisteredAfterLoadReachable(t *testing.T) {
	vm := NewVM()
	const probeID = KfuncBase + 99
	vm.MustRegisterHelper(probeID, "probe_map", func(ctx *CallContext, args [5]uint64) (uint64, error) {
		if _, ok := ctx.Map(int32(args[0])); ok {
			return 1, nil
		}
		return 0, nil
	})
	b := NewBuilder()
	b.Call(probeID).Exit()
	prog := vm.MustLoad("late", b.MustProgram())

	lateFD := vm.RegisterMap(MustNewMap(MapTypeHash, "late", 16))
	got, err := prog.Run(nil, uint64(lateFD))
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("late-registered map not reachable (got %d)", got)
	}
	if got, err := prog.Run(nil, uint64(lateFD+1000)); err != nil || got != 0 {
		t.Fatalf("bogus fd resolved: got=%d err=%v", got, err)
	}
}

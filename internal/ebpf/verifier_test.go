package ebpf

import (
	"strings"
	"testing"
)

func verify(t *testing.T, build func(b *Builder)) error {
	t.Helper()
	b := NewBuilder()
	build(b)
	insns, err := b.Program()
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return Verify(insns, NewVM())
}

func wantReject(t *testing.T, substr string, build func(b *Builder)) {
	t.Helper()
	err := verify(t, build)
	if err == nil {
		t.Fatalf("verifier accepted invalid program (want %q)", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("error %q does not contain %q", err, substr)
	}
}

func TestVerifyEmptyProgram(t *testing.T) {
	if err := Verify(nil, NewVM()); err == nil {
		t.Fatal("empty program accepted")
	}
}

func TestVerifyTooLong(t *testing.T) {
	insns := make([]Instruction, MaxProgramLen+1)
	for i := range insns {
		insns[i] = Instruction{Op: ClassALU64 | OpMov | SrcK, Dst: R0}
	}
	insns[len(insns)-1] = Instruction{Op: ClassJMP | OpExit}
	if err := Verify(insns, NewVM()); err == nil {
		t.Fatal("overlong program accepted")
	}
}

func TestVerifyUninitializedRead(t *testing.T) {
	wantReject(t, "uninitialized", func(b *Builder) {
		b.Mov64Reg(R0, R6).Exit() // R6 never written
	})
}

func TestVerifyUninitR0AtExit(t *testing.T) {
	wantReject(t, "R0 not initialized", func(b *Builder) {
		b.Mov64Imm(R6, 1).Exit()
	})
}

func TestVerifyR10ReadOnly(t *testing.T) {
	wantReject(t, "read-only", func(b *Builder) {
		b.Mov64Imm(R10, 0).Mov64Imm(R0, 0).Exit()
	})
}

func TestVerifyFallOffEnd(t *testing.T) {
	err := Verify([]Instruction{
		{Op: ClassALU64 | OpMov | SrcK, Dst: R0, Imm: 1},
	}, NewVM())
	if err == nil || !strings.Contains(err.Error(), "falls off") {
		t.Fatalf("err = %v, want falls-off", err)
	}
}

func TestVerifyBoundedLoopAccepted(t *testing.T) {
	// r0 = sum(1..r1) via a backward conditional jump: the dataflow
	// verifier must reach a fixpoint and accept the loop.
	insns := []Instruction{
		{Op: ClassALU64 | OpMov | SrcK, Dst: R0, Imm: 0},        // r0 = 0
		{Op: ClassALU64 | OpMov | SrcK, Dst: R2, Imm: 0},        // i = 0
		{Op: ClassJMP | OpJge | SrcX, Dst: R2, Src: R1, Off: 3}, // loop: if i >= n goto end
		{Op: ClassALU64 | OpAdd | SrcK, Dst: R2, Imm: 1},        // i++
		{Op: ClassALU64 | OpAdd | SrcX, Dst: R0, Src: R2},       // r0 += i
		{Op: ClassJMP | OpJa, Off: -4},                          // goto loop
		{Op: ClassJMP | OpExit},                                 // end
	}
	vm := NewVM()
	prog, err := vm.Load("loop", insns)
	if err != nil {
		t.Fatalf("bounded loop rejected: %v", err)
	}
	got, err := prog.Run(nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got != 55 {
		t.Fatalf("sum(1..10) = %d, want 55", got)
	}
}

func TestVerifyLoopWithUninitUseRejected(t *testing.T) {
	// A register initialized only on the looping path must still be
	// rejected when read after the loop exit path skips it.
	insns := []Instruction{
		{Op: ClassJMP | OpJeq | SrcK, Dst: R1, Imm: 0, Off: 1}, // if r1==0 skip init
		{Op: ClassALU64 | OpMov | SrcK, Dst: R6, Imm: 7},       // r6 = 7
		{Op: ClassALU64 | OpMov | SrcX, Dst: R0, Src: R6},      // r0 = r6 (maybe uninit)
		{Op: ClassJMP | OpExit},
	}
	if err := Verify(insns, NewVM()); err == nil || !strings.Contains(err.Error(), "uninitialized") {
		t.Fatalf("err = %v, want uninitialized-read rejection", err)
	}
}

func TestVerifyJoinDemotesPointer(t *testing.T) {
	// One path leaves a stack pointer in r6, the other a scalar; after
	// the merge r6 must not be dereferenceable.
	insns := []Instruction{
		{Op: ClassALU64 | OpMov | SrcX, Dst: R6, Src: R10},           // r6 = fp
		{Op: ClassJMP | OpJeq | SrcK, Dst: R1, Imm: 0, Off: 1},       // if r1==0 skip
		{Op: ClassALU64 | OpMov | SrcK, Dst: R6, Imm: 5},             // r6 = 5 (scalar)
		{Op: ClassLDX | ModeMEM | SizeDW, Dst: R0, Src: R6, Off: -8}, // *(r6-8)
		{Op: ClassJMP | OpExit},
	}
	if err := Verify(insns, NewVM()); err == nil || !strings.Contains(err.Error(), "scalar") {
		t.Fatalf("err = %v, want scalar-deref rejection at merge", err)
	}
}

func TestVerifyJumpOutOfBounds(t *testing.T) {
	insns := []Instruction{
		{Op: ClassALU64 | OpMov | SrcK, Dst: R0, Imm: 0},
		{Op: ClassJMP | OpJa, Off: 100},
		{Op: ClassJMP | OpExit},
	}
	if err := Verify(insns, NewVM()); err == nil {
		t.Fatal("out-of-bounds jump accepted")
	}
}

func TestVerifyStackOutOfBounds(t *testing.T) {
	wantReject(t, "out of frame", func(b *Builder) {
		b.Mov64Imm(R2, 1).StxDW(R10, -520, R2).Mov64Imm(R0, 0).Exit()
	})
	wantReject(t, "out of frame", func(b *Builder) {
		b.Mov64Imm(R2, 1).StxDW(R10, 0, R2).Mov64Imm(R0, 0).Exit() // [fp, fp+8) above frame
	})
}

func TestVerifyStackEdgeOK(t *testing.T) {
	if err := verify(t, func(b *Builder) {
		b.Mov64Imm(R2, 1).
			StxDW(R10, -512, R2). // lowest slot
			StxDW(R10, -8, R2).   // highest slot
			Mov64Imm(R0, 0).Exit()
	}); err != nil {
		t.Fatalf("edge accesses rejected: %v", err)
	}
}

func TestVerifyDerefScalarRejected(t *testing.T) {
	wantReject(t, "scalar", func(b *Builder) {
		b.Mov64Imm(R2, 0x1000).LdxDW(R0, R2, 0).Exit()
	})
}

func TestVerifyDerefUninitRejected(t *testing.T) {
	wantReject(t, "uninitialized", func(b *Builder) {
		b.LdxDW(R0, R6, 0).Exit()
	})
}

func TestVerifyPointerArithmeticTracked(t *testing.T) {
	// fp-256 via a copy + offset, then in-bounds store: OK.
	if err := verify(t, func(b *Builder) {
		b.Mov64Reg(R6, R10).Add64Imm(R6, -256).
			Mov64Imm(R2, 5).StxDW(R6, 0, R2).
			Mov64Imm(R0, 0).Exit()
	}); err != nil {
		t.Fatalf("valid pointer arithmetic rejected: %v", err)
	}
	// fp+8: out of frame even through a copy.
	wantReject(t, "out of frame", func(b *Builder) {
		b.Mov64Reg(R6, R10).Add64Imm(R6, 8).
			Mov64Imm(R2, 5).StxDW(R6, 0, R2).
			Mov64Imm(R0, 0).Exit()
	})
}

func TestVerifyDivByZeroImmediate(t *testing.T) {
	wantReject(t, "division by zero", func(b *Builder) {
		b.Mov64Imm(R0, 10).Div64Imm(R0, 0).Exit()
	})
	wantReject(t, "division by zero", func(b *Builder) {
		b.Mov64Imm(R0, 10).Mod64Imm(R0, 0).Exit()
	})
}

func TestVerifyUnknownHelper(t *testing.T) {
	wantReject(t, "unknown helper", func(b *Builder) {
		b.Mov64Imm(R1, 0).Call(0x7fff).Exit()
	})
}

func TestVerifyCallClobbersArgRegs(t *testing.T) {
	wantReject(t, "uninitialized", func(b *Builder) {
		b.Mov64Imm(R1, 1).
			Call(HelperKtimeGetNS).
			Mov64Reg(R0, R2). // R2 dead after call
			Exit()
	})
}

func TestVerifyCallSetsR0(t *testing.T) {
	if err := verify(t, func(b *Builder) {
		b.Call(HelperKtimeGetNS).Exit() // R0 = helper result
	}); err != nil {
		t.Fatalf("call-then-exit rejected: %v", err)
	}
}

func TestVerifyBothBranchesChecked(t *testing.T) {
	// Taken branch reads uninitialized R7 — must be caught even though
	// the fall-through is fine.
	wantReject(t, "uninitialized", func(b *Builder) {
		b.Mov64Imm(R0, 0).
			JmpImm(OpJeq, R1, 0, "bad").
			Exit().
			Label("bad").
			Mov64Reg(R0, R7).
			Exit()
	})
}

func TestVerifyTruncatedLdImm64(t *testing.T) {
	insns := []Instruction{
		{Op: OpLdImm64, Dst: R0, Imm: 1},
	}
	if err := Verify(insns, NewVM()); err == nil {
		t.Fatal("truncated lddw accepted")
	}
}

func TestVerifyLdImm64SecondSlotChecked(t *testing.T) {
	insns := []Instruction{
		{Op: OpLdImm64, Dst: R0, Imm: 1},
		{Op: ClassJMP | OpExit}, // not a valid second slot
		{Op: ClassJMP | OpExit},
	}
	if err := Verify(insns, NewVM()); err == nil {
		t.Fatal("bad lddw second slot accepted")
	}
}

func TestVerify32BitOpTruncatesPointer(t *testing.T) {
	// A 32-bit op on a stack pointer demotes it to scalar; deref then fails.
	wantReject(t, "scalar", func(b *Builder) {
		b.Mov64Reg(R6, R10).
			Raw(Instruction{Op: ClassALU | OpAdd | SrcK, Dst: R6, Imm: 0}).
			LdxDW(R0, R6, -8).
			Exit()
	})
}

func TestVerifyStoreUninitRejected(t *testing.T) {
	wantReject(t, "uninitialized", func(b *Builder) {
		b.StxDW(R10, -8, R7).Mov64Imm(R0, 0).Exit()
	})
}

func TestVerifyAcceptsRealisticProgram(t *testing.T) {
	// Shape of the SnapBPF capture program: filter + map update.
	vm := NewVM()
	m := MustNewMap(MapTypeHash, "ws", 1024)
	fd := vm.RegisterMap(m)
	b := NewBuilder()
	b.JmpImm(OpJeq, R1, 42, "match").
		Mov64Imm(R0, 0).
		Exit().
		Label("match").
		StxDW(R10, -8, R2).
		Call(HelperKtimeGetNS).
		StxDW(R10, -16, R0).
		Mov64Imm(R1, fd).
		Mov64Reg(R2, R10).Add64Imm(R2, -8).
		Mov64Reg(R3, R10).Add64Imm(R3, -16).
		Call(HelperMapUpdateElem).
		Mov64Imm(R0, 0).
		Exit()
	if _, err := vm.Load("capture-shape", b.MustProgram()); err != nil {
		t.Fatalf("realistic program rejected: %v", err)
	}
}

func TestVerifyErrorIncludesPC(t *testing.T) {
	err := verify(t, func(b *Builder) {
		b.Mov64Imm(R0, 0).Mov64Reg(R0, R9).Exit()
	})
	ve, ok := err.(*VerifyError)
	if !ok {
		t.Fatalf("error type %T, want *VerifyError", err)
	}
	if ve.PC != 1 {
		t.Fatalf("PC = %d, want 1", ve.PC)
	}
}

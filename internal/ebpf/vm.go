package ebpf

import (
	"encoding/binary"
	"fmt"
)

// stackTop is the virtual address held by R10 (the frame pointer).
// Valid stack addresses are [stackTop-StackSize, stackTop). Using a
// fixed virtual base keeps pointer values plain uint64s, as on real
// hardware, while letting the VM and helpers bounds-check them.
const stackTop uint64 = 0x7fff_f000

// InsnBudget is the maximum number of instructions one program run may
// execute, mirroring the kernel's 1M-instruction complexity bound.
const InsnBudget = 1_000_000

// MaxProgramLen is the maximum number of instructions in a program.
const MaxProgramLen = 4096

// HelperFunc is the Go implementation of an eBPF helper or kfunc. It
// receives the call context (for stack and map access) and the five
// argument registers R1–R5, and returns the value placed in R0.
type HelperFunc func(ctx *CallContext, args [5]uint64) (uint64, error)

// HelperSpec describes a registered helper for the verifier and VM.
type HelperSpec struct {
	ID   int32
	Name string
	Fn   HelperFunc
}

// VM is an eBPF execution environment: a helper/kfunc registry plus a
// map file-descriptor table. One VM models one kernel's BPF subsystem;
// all programs attached anywhere in that kernel share it.
type VM struct {
	helpers map[int32]HelperSpec
	maps    map[int32]*Map
	nextFD  int32
	clock   Clock

	// TraceLog receives bpf_trace_printk output when non-nil.
	TraceLog func(msg string)
}

// NewVM returns a VM with the standard helpers (map access, ktime,
// trace_printk) pre-registered.
func NewVM() *VM {
	vm := &VM{
		helpers: make(map[int32]HelperSpec),
		maps:    make(map[int32]*Map),
		nextFD:  3, // fds 0-2 reserved, as ever
	}
	registerStandardHelpers(vm)
	return vm
}

// RegisterHelper installs a helper or kfunc under the given ID.
// Registering over an existing ID is an error: helper IDs are ABI.
func (vm *VM) RegisterHelper(id int32, name string, fn HelperFunc) error {
	if _, dup := vm.helpers[id]; dup {
		return fmt.Errorf("ebpf: helper id %d already registered", id)
	}
	vm.helpers[id] = HelperSpec{ID: id, Name: name, Fn: fn}
	return nil
}

// MustRegisterHelper is RegisterHelper but panics on error.
func (vm *VM) MustRegisterHelper(id int32, name string, fn HelperFunc) {
	if err := vm.RegisterHelper(id, name, fn); err != nil {
		panic(err)
	}
}

// Helper returns the helper registered under id.
func (vm *VM) Helper(id int32) (HelperSpec, bool) {
	h, ok := vm.helpers[id]
	return h, ok
}

// RegisterMap installs a map and returns its file descriptor, which
// programs embed via LdImm64.
func (vm *VM) RegisterMap(m *Map) int32 {
	fd := vm.nextFD
	vm.nextFD++
	vm.maps[fd] = m
	return fd
}

// MapByFD resolves a map file descriptor.
func (vm *VM) MapByFD(fd int32) (*Map, bool) {
	m, ok := vm.maps[fd]
	return m, ok
}

// Program is a loaded, verified eBPF program.
type Program struct {
	Name  string
	insns []Instruction
	vm    *VM

	// Enabled gates execution when the program is attached to a hook;
	// SnapBPF's prefetch program clears it after issuing the last
	// group ("the eBPF program will disable itself").
	Enabled bool

	// Runs counts completed executions.
	Runs int64
}

// Load verifies insns against the VM's helper and map tables and
// returns a runnable Program. This models the bpf(BPF_PROG_LOAD)
// syscall: an invalid program never becomes runnable.
func (vm *VM) Load(name string, insns []Instruction) (*Program, error) {
	if err := Verify(insns, vm); err != nil {
		return nil, fmt.Errorf("ebpf: load %q: %w", name, err)
	}
	cp := make([]Instruction, len(insns))
	copy(cp, insns)
	return &Program{Name: name, insns: cp, vm: vm, Enabled: true}, nil
}

// MustLoad is Load but panics on error.
func (vm *VM) MustLoad(name string, insns []Instruction) *Program {
	p, err := vm.Load(name, insns)
	if err != nil {
		panic(err)
	}
	return p
}

// Len returns the instruction count.
func (p *Program) Len() int { return len(p.insns) }

// Instructions returns a copy of the program text.
func (p *Program) Instructions() []Instruction {
	cp := make([]Instruction, len(p.insns))
	copy(cp, p.insns)
	return cp
}

// CallContext is passed to helpers so they can access the calling
// program's stack (for pointer arguments) and the VM's maps.
type CallContext struct {
	VM    *VM
	Prog  *Program
	stack []byte

	// Env carries simulation-side state (e.g. the host kernel) so
	// kfuncs like snapbpf_prefetch can reach the page cache. It is
	// set per-run by the caller of Run via RunCtx.
	Env any
}

// ReadStackU64 reads an 8-byte value at a stack virtual address.
func (c *CallContext) ReadStackU64(addr uint64) (uint64, error) {
	i, err := stackIndex(addr, 8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(c.stack[i:]), nil
}

// WriteStackU64 writes an 8-byte value at a stack virtual address.
func (c *CallContext) WriteStackU64(addr, v uint64) error {
	i, err := stackIndex(addr, 8)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(c.stack[i:], v)
	return nil
}

func stackIndex(addr uint64, size int) (int, error) {
	lo := stackTop - StackSize
	if addr < lo || addr+uint64(size) > stackTop {
		return 0, fmt.Errorf("ebpf: stack access out of bounds: addr=%#x size=%d", addr, size)
	}
	return int(addr - lo), nil
}

// Run executes the program with up to five u64 arguments in R1–R5 and
// returns R0. Env is made available to helpers via the CallContext.
func (p *Program) Run(env any, args ...uint64) (uint64, error) {
	if len(args) > 5 {
		return 0, fmt.Errorf("ebpf: too many arguments (%d > 5)", len(args))
	}
	var regs [numRegisters]uint64
	for i, a := range args {
		regs[R1+Register(i)] = a
	}
	regs[R10] = stackTop

	var stack [StackSize]byte
	ctx := &CallContext{VM: p.vm, Prog: p, stack: stack[:], Env: env}

	pc := 0
	for steps := 0; ; steps++ {
		if steps >= InsnBudget {
			return 0, fmt.Errorf("ebpf: %s: instruction budget exceeded", p.Name)
		}
		if pc < 0 || pc >= len(p.insns) {
			return 0, fmt.Errorf("ebpf: %s: pc out of range: %d", p.Name, pc)
		}
		in := p.insns[pc]

		switch in.Class() {
		case ClassALU64:
			if err := execALU64(&regs, in); err != nil {
				return 0, fmt.Errorf("ebpf: %s @%d: %w", p.Name, pc, err)
			}
			pc++
		case ClassALU:
			if err := execALU32(&regs, in); err != nil {
				return 0, fmt.Errorf("ebpf: %s @%d: %w", p.Name, pc, err)
			}
			pc++
		case ClassLD:
			if in.Op != OpLdImm64 {
				return 0, fmt.Errorf("ebpf: %s @%d: unsupported LD opcode %#x", p.Name, pc, in.Op)
			}
			if pc+1 >= len(p.insns) {
				return 0, fmt.Errorf("ebpf: %s @%d: truncated lddw", p.Name, pc)
			}
			lo := uint64(uint32(in.Imm))
			hi := uint64(uint32(p.insns[pc+1].Imm))
			regs[in.Dst] = lo | hi<<32
			pc += 2
		case ClassLDX:
			addr := regs[in.Src] + uint64(int64(in.Off))
			i, err := stackIndex(addr, in.size())
			if err != nil {
				return 0, fmt.Errorf("ebpf: %s @%d: %w", p.Name, pc, err)
			}
			regs[in.Dst] = loadSized(ctx.stack[i:], in.size())
			pc++
		case ClassSTX:
			addr := regs[in.Dst] + uint64(int64(in.Off))
			i, err := stackIndex(addr, in.size())
			if err != nil {
				return 0, fmt.Errorf("ebpf: %s @%d: %w", p.Name, pc, err)
			}
			storeSized(ctx.stack[i:], in.size(), regs[in.Src])
			pc++
		case ClassST:
			addr := regs[in.Dst] + uint64(int64(in.Off))
			i, err := stackIndex(addr, in.size())
			if err != nil {
				return 0, fmt.Errorf("ebpf: %s @%d: %w", p.Name, pc, err)
			}
			storeSized(ctx.stack[i:], in.size(), uint64(int64(in.Imm)))
			pc++
		case ClassJMP, ClassJMP32:
			switch in.aluOp() {
			case OpExit:
				p.Runs++
				return regs[R0], nil
			case OpCall:
				h, ok := p.vm.helpers[in.Imm]
				if !ok {
					return 0, fmt.Errorf("ebpf: %s @%d: unknown helper %d", p.Name, pc, in.Imm)
				}
				var args [5]uint64
				copy(args[:], regs[R1:R6])
				r0, err := h.Fn(ctx, args)
				if err != nil {
					return 0, fmt.Errorf("ebpf: %s @%d: helper %s: %w", p.Name, pc, h.Name, err)
				}
				regs[R0] = r0
				// R1-R5 are caller-clobbered; poison them to catch
				// programs that slipped past verification.
				for r := R1; r <= R5; r++ {
					regs[r] = 0xdead_beef_dead_beef
				}
				pc++
			case OpJa:
				pc += 1 + int(in.Off)
			default:
				taken, err := evalJump(&regs, in, in.Class() == ClassJMP32)
				if err != nil {
					return 0, fmt.Errorf("ebpf: %s @%d: %w", p.Name, pc, err)
				}
				if taken {
					pc += 1 + int(in.Off)
				} else {
					pc++
				}
			}
		default:
			return 0, fmt.Errorf("ebpf: %s @%d: unsupported class %#x", p.Name, pc, in.Class())
		}
	}
}

func execALU64(regs *[numRegisters]uint64, in Instruction) error {
	var src uint64
	if in.usesRegSrc() {
		src = regs[in.Src]
	} else {
		src = uint64(int64(in.Imm)) // sign-extend
	}
	dst := regs[in.Dst]
	switch in.aluOp() {
	case OpAdd:
		dst += src
	case OpSub:
		dst -= src
	case OpMul:
		dst *= src
	case OpDiv:
		if src == 0 {
			dst = 0 // kernel semantics: div by zero yields 0
		} else {
			dst /= src
		}
	case OpMod:
		if src == 0 {
			// kernel semantics: dst unchanged on mod-by-zero
		} else {
			dst %= src
		}
	case OpAnd:
		dst &= src
	case OpOr:
		dst |= src
	case OpXor:
		dst ^= src
	case OpLsh:
		dst <<= src & 63
	case OpRsh:
		dst >>= src & 63
	case OpArsh:
		dst = uint64(int64(dst) >> (src & 63))
	case OpNeg:
		dst = uint64(-int64(dst))
	case OpMov:
		dst = src
	default:
		return fmt.Errorf("unsupported alu64 op %#x", in.aluOp())
	}
	regs[in.Dst] = dst
	return nil
}

func execALU32(regs *[numRegisters]uint64, in Instruction) error {
	var src uint32
	if in.usesRegSrc() {
		src = uint32(regs[in.Src])
	} else {
		src = uint32(in.Imm)
	}
	dst := uint32(regs[in.Dst])
	switch in.aluOp() {
	case OpAdd:
		dst += src
	case OpSub:
		dst -= src
	case OpMul:
		dst *= src
	case OpDiv:
		if src == 0 {
			dst = 0
		} else {
			dst /= src
		}
	case OpMod:
		if src != 0 {
			dst %= src
		}
	case OpAnd:
		dst &= src
	case OpOr:
		dst |= src
	case OpXor:
		dst ^= src
	case OpLsh:
		dst <<= src & 31
	case OpRsh:
		dst >>= src & 31
	case OpArsh:
		dst = uint32(int32(dst) >> (src & 31))
	case OpNeg:
		dst = uint32(-int32(dst))
	case OpMov:
		dst = src
	default:
		return fmt.Errorf("unsupported alu32 op %#x", in.aluOp())
	}
	// 32-bit ops zero the upper half, as on hardware.
	regs[in.Dst] = uint64(dst)
	return nil
}

func evalJump(regs *[numRegisters]uint64, in Instruction, wide32 bool) (bool, error) {
	dst := regs[in.Dst]
	var src uint64
	if in.usesRegSrc() {
		src = regs[in.Src]
	} else {
		src = uint64(int64(in.Imm))
	}
	if wide32 {
		// JMP32 compares the low 32 bits; signed variants
		// sign-extend them.
		dst = uint64(int64(int32(uint32(dst))))
		src = uint64(int64(int32(uint32(src))))
	}
	switch in.aluOp() {
	case OpJeq:
		return dst == src, nil
	case OpJne:
		return dst != src, nil
	case OpJgt:
		return dst > src, nil
	case OpJge:
		return dst >= src, nil
	case OpJlt:
		return dst < src, nil
	case OpJle:
		return dst <= src, nil
	case OpJset:
		return dst&src != 0, nil
	case OpJsgt:
		return int64(dst) > int64(src), nil
	case OpJsge:
		return int64(dst) >= int64(src), nil
	case OpJslt:
		return int64(dst) < int64(src), nil
	case OpJsle:
		return int64(dst) <= int64(src), nil
	}
	return false, fmt.Errorf("unsupported jmp op %#x", in.aluOp())
}

func loadSized(b []byte, size int) uint64 {
	switch size {
	case 1:
		return uint64(b[0])
	case 2:
		return uint64(binary.LittleEndian.Uint16(b))
	case 4:
		return uint64(binary.LittleEndian.Uint32(b))
	default:
		return binary.LittleEndian.Uint64(b)
	}
}

func storeSized(b []byte, size int, v uint64) {
	switch size {
	case 1:
		b[0] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(b, uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(b, uint32(v))
	default:
		binary.LittleEndian.PutUint64(b, v)
	}
}

package ebpf

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// stackTop is the virtual address held by R10 (the frame pointer).
// Valid stack addresses are [stackTop-StackSize, stackTop). Using a
// fixed virtual base keeps pointer values plain uint64s, as on real
// hardware, while letting the VM and helpers bounds-check them.
const stackTop uint64 = 0x7fff_f000

// InsnBudget is the maximum number of instructions one program run may
// execute, mirroring the kernel's 1M-instruction complexity bound.
const InsnBudget = 1_000_000

// MaxProgramLen is the maximum number of instructions in a program.
const MaxProgramLen = 4096

// HelperFunc is the Go implementation of an eBPF helper or kfunc. It
// receives the call context (for stack and map access) and the five
// argument registers R1–R5, and returns the value placed in R0.
type HelperFunc func(ctx *CallContext, args [5]uint64) (uint64, error)

// HelperSpec describes a registered helper for the verifier and VM.
type HelperSpec struct {
	ID   int32
	Name string
	Fn   HelperFunc
}

// VM is an eBPF execution environment: a helper/kfunc registry plus a
// map file-descriptor table. One VM models one kernel's BPF subsystem;
// all programs attached anywhere in that kernel share it.
type VM struct {
	helpers map[int32]HelperSpec
	maps    map[int32]*Map
	nextFD  int32
	clock   Clock

	// TraceLog receives bpf_trace_printk output when non-nil.
	TraceLog func(msg string)
}

// NewVM returns a VM with the standard helpers (map access, ktime,
// trace_printk) pre-registered.
func NewVM() *VM {
	vm := &VM{
		helpers: make(map[int32]HelperSpec),
		maps:    make(map[int32]*Map),
		nextFD:  3, // fds 0-2 reserved, as ever
	}
	registerStandardHelpers(vm)
	return vm
}

// RegisterHelper installs a helper or kfunc under the given ID.
// Registering over an existing ID is an error: helper IDs are ABI.
func (vm *VM) RegisterHelper(id int32, name string, fn HelperFunc) error {
	if _, dup := vm.helpers[id]; dup {
		return fmt.Errorf("ebpf: helper id %d already registered", id)
	}
	vm.helpers[id] = HelperSpec{ID: id, Name: name, Fn: fn}
	return nil
}

// MustRegisterHelper is RegisterHelper but panics on error.
func (vm *VM) MustRegisterHelper(id int32, name string, fn HelperFunc) {
	if err := vm.RegisterHelper(id, name, fn); err != nil {
		panic(err)
	}
}

// Helper returns the helper registered under id.
func (vm *VM) Helper(id int32) (HelperSpec, bool) {
	h, ok := vm.helpers[id]
	return h, ok
}

// RegisterMap installs a map and returns its file descriptor, which
// programs embed via LdImm64.
func (vm *VM) RegisterMap(m *Map) int32 {
	fd := vm.nextFD
	vm.nextFD++
	vm.maps[fd] = m
	return fd
}

// MapByFD resolves a map file descriptor.
func (vm *VM) MapByFD(fd int32) (*Map, bool) {
	m, ok := vm.maps[fd]
	return m, ok
}

// Program is a loaded, verified eBPF program.
type Program struct {
	Name  string
	insns []Instruction
	dec   []decoded // pre-decoded text; see decode.go
	jit   *jitProg  // compiled closure chain; nil on the interpreter engine
	vm    *VM

	// mapCache memoizes map-FD resolution: a dense fd-indexed snapshot
	// of the VM's map table taken at load time, so helpers skip the
	// VM's hash lookup on the hot path. Sealed at Load (read-only
	// afterwards); fds registered later fall back to the VM table.
	mapCache []*Map

	// Enabled gates execution when the program is attached to a hook;
	// SnapBPF's prefetch program clears it after issuing the last
	// group ("the eBPF program will disable itself").
	Enabled bool

	// scratch is the reusable run state. A program belongs to one
	// simulated kernel, whose probe dispatch is sequential, so a single
	// buffer serves virtually every run; state's owner bit arbitrates
	// the rare concurrent Run (tests), which falls back to a fresh
	// allocation.
	scratch *runState

	// state packs the scratch-owner flag (bit 0) with the
	// completed-run count (bits 1+): a successful scratch run releases
	// the buffer and counts itself in one atomic add, which keeps the
	// per-fault fast path at two lock-prefixed instructions instead of
	// three (acquire, count, release).
	state atomic.Uint64
}

// Runs returns the number of completed (non-erroring) executions.
func (p *Program) Runs() int64 { return int64(p.state.Load() >> 1) }

// runState is the per-execution state: the call context, the register
// file and the 512-byte stack frame, kept together so one allocation
// (reused across runs) covers everything. Registers live here rather
// than on the goroutine stack so the JIT's closures, the interpreter
// and the budget handoff between them all see one machine state; err
// carries a failing closure's error out of the block walk.
type runState struct {
	ctx  CallContext
	regs [numRegisters]uint64
	err  error
	// branchHook, when set, observes every conditional jump the
	// interpreter evaluates (pc, edge). Only InterpBranches sets it,
	// on a private state — normal runs never pay more than a nil
	// check per jump.
	branchHook func(pc int, taken bool)
	stack      [StackSize]byte
}

// Load verifies insns against the VM's helper and map tables and
// returns a runnable Program. This models the bpf(BPF_PROG_LOAD)
// syscall: an invalid program never becomes runnable. Loading also
// pre-decodes the instruction stream (decode.go) and snapshots the
// map table, so per-step re-parsing never happens at run time.
func (vm *VM) Load(name string, insns []Instruction) (*Program, error) {
	if err := Verify(insns, vm); err != nil {
		return nil, fmt.Errorf("ebpf: load %q: %w", name, err)
	}
	cp := make([]Instruction, len(insns))
	copy(cp, insns)
	p := &Program{Name: name, insns: cp, vm: vm, Enabled: true}
	p.dec = decodeProgram(cp, vm)
	p.mapCache = make([]*Map, vm.nextFD)
	for fd, m := range vm.maps {
		if fd >= 0 && int(fd) < len(p.mapCache) {
			p.mapCache[fd] = m
		}
	}
	if DefaultEngine() == EngineJIT {
		// With pruning enabled, the abstract interpreter's facts let
		// the JIT elide dead blocks, flatten one-sided conditionals,
		// and skip budget accounting for proven-bounded loops.
		var facts *jitFacts
		if AbsintPrune() {
			facts = jitFactsFrom(analyzeProgram(cp, vm))
		}
		// compileJIT returns nil for anything it cannot translate
		// one-to-one; such programs stay on the interpreter.
		p.jit = compileJIT(p, facts)
	}
	return p, nil
}

// MustLoad is Load but panics on error.
func (vm *VM) MustLoad(name string, insns []Instruction) *Program {
	p, err := vm.Load(name, insns)
	if err != nil {
		panic(err)
	}
	return p
}

// Len returns the instruction count.
func (p *Program) Len() int { return len(p.insns) }

// Instructions returns a copy of the program text.
func (p *Program) Instructions() []Instruction {
	cp := make([]Instruction, len(p.insns))
	copy(cp, p.insns)
	return cp
}

// CallContext is passed to helpers so they can access the calling
// program's stack (for pointer arguments) and the VM's maps.
type CallContext struct {
	VM    *VM
	Prog  *Program
	stack []byte

	// Env carries simulation-side state (e.g. the host kernel) so
	// kfuncs like snapbpf_prefetch can reach the page cache. It is
	// set per-run by the caller of Run via RunCtx.
	Env any
}

// Map resolves a map file descriptor through the calling program's
// load-time cache, falling back to the VM table for maps registered
// after the program loaded. Helpers use this instead of VM.MapByFD so
// the per-call hash lookup disappears from the kprobe hot path.
func (c *CallContext) Map(fd int32) (*Map, bool) {
	if p := c.Prog; p != nil && fd >= 0 && int(fd) < len(p.mapCache) {
		if m := p.mapCache[fd]; m != nil {
			return m, true
		}
	}
	return c.VM.MapByFD(fd)
}

// ReadStackU64 reads an 8-byte value at a stack virtual address.
func (c *CallContext) ReadStackU64(addr uint64) (uint64, error) {
	i, err := stackIndex(addr, 8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(c.stack[i:]), nil
}

// WriteStackU64 writes an 8-byte value at a stack virtual address.
func (c *CallContext) WriteStackU64(addr, v uint64) error {
	i, err := stackIndex(addr, 8)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(c.stack[i:], v)
	return nil
}

func stackIndex(addr uint64, size int) (int, error) {
	lo := stackTop - StackSize
	if addr < lo || addr+uint64(size) > stackTop {
		return 0, fmt.Errorf("ebpf: stack access out of bounds: addr=%#x size=%d", addr, size)
	}
	return int(addr - lo), nil
}

// Run executes the program with up to five u64 arguments in R1–R5 and
// returns R0. Env is made available to helpers via the CallContext.
//
// On the default JIT engine a run walks the closure chain compiled at
// Load (jit.go); otherwise the dispatch loop walks the pre-decoded
// instruction cache (decode.go): no opcode bit-masking, immediate
// sign-extension, lddw reassembly or helper-table lookup happens per
// step on either engine. Run state (call context + registers + stack)
// is a single buffer reused across sequential runs; concurrent runs of
// one program fall back to a fresh buffer.
func (p *Program) Run(env any, args ...uint64) (uint64, error) {
	return p.launch(env, args, false)
}

// Interp executes the program on the reference interpreter regardless
// of the engine it was loaded under — the escape hatch the equivalence
// tests and the differential fuzzer compare the JIT against.
func (p *Program) Interp(env any, args ...uint64) (uint64, error) {
	return p.launch(env, args, true)
}

// InterpBranches runs the program on the reference interpreter with
// hook observing every conditional jump it evaluates (the instruction
// pc and whether the jump was taken). The absint differential fuzzer
// uses this to check that edges the analysis declared infeasible are
// never executed. Always runs on a private machine state.
func (p *Program) InterpBranches(env any, hook func(pc int, taken bool), args ...uint64) (uint64, error) {
	if len(args) > 5 {
		return 0, fmt.Errorf("ebpf: too many arguments (%d > 5)", len(args))
	}
	st := p.newRunState()
	for i, a := range args {
		st.regs[R1+Register(i)] = a
	}
	st.regs[R10] = stackTop
	st.ctx.Env = env
	st.branchHook = hook
	return p.runInterp(st, 0, 0)
}

// launch prepares the machine state shared by both engines and
// dispatches the run.
func (p *Program) launch(env any, args []uint64, forceInterp bool) (uint64, error) {
	if len(args) > 5 {
		return 0, fmt.Errorf("ebpf: too many arguments (%d > 5)", len(args))
	}
	j := p.jit
	if forceInterp {
		j = nil
	}
	var st *runState
	scratch := false
	if s := p.state.Load(); s&1 == 0 && p.state.CompareAndSwap(s, s|1) {
		scratch = true
		if p.scratch == nil {
			p.scratch = p.newRunState()
		}
		st = p.scratch
		// Fresh runs see a zeroed frame. The JIT's read-span analysis
		// bounds every address the program (or a helper, through an
		// argument) can read, so only that suffix needs wiping on
		// scratch reuse; the interpreter path and programs with
		// dynamic addressing wipe everything.
		if j != nil && j.zeroFrom > 0 {
			clear(st.stack[j.zeroFrom:])
		} else {
			st.stack = [StackSize]byte{}
		}
	} else {
		st = p.newRunState()
	}
	st.regs = [numRegisters]uint64{}
	for i, a := range args {
		st.regs[R1+Register(i)] = a
	}
	st.regs[R10] = stackTop
	st.ctx.Env = env
	var ret uint64
	var err error
	if j != nil {
		ret, err = p.runJIT(st)
	} else {
		ret, err = p.runInterp(st, 0, 0)
	}
	// Release the scratch buffer and/or count the completed run. A
	// panicking helper skips this and orphans the scratch (later runs
	// stay correct on fresh buffers), which is fine: helper panics are
	// programming errors that kill the simulated kernel anyway.
	switch {
	case scratch && err == nil:
		p.state.Add(1) // clears the owner bit and counts, in one add
	case scratch:
		p.state.Add(^uint64(0)) // clears the owner bit; errors don't count
	case err == nil:
		p.state.Add(2)
	}
	return ret, err
}

// newRunState allocates machine state wired to this program. The
// CallContext's VM/Prog/stack fields never change across runs, so they
// are set once here and only Env is written per launch — the full
// struct assignment was four pointer writes (and their GC barriers) on
// every kprobe firing. The scratch state keeps the last run's Env
// reference alive until the next run; environments are long-lived
// kernel objects, so nothing of consequence is ever retained.
func (p *Program) newRunState() *runState {
	st := new(runState)
	st.ctx = CallContext{VM: p.vm, Prog: p, stack: st.stack[:]}
	return st
}

// runInterp is the reference dispatch loop. It picks up the machine
// state from st at pc with steps already charged, so the JIT can hand
// over a run whose remaining instruction budget might not cover a whole
// block; plain interpreted runs enter with pc = steps = 0.
func (p *Program) runInterp(st *runState, pc, steps int) (uint64, error) {
	regs := st.regs
	ctx := &st.ctx
	dec := p.dec
	if dec == nil {
		// Program constructed without Load (tests); decode on first use.
		dec = decodeProgram(p.insns, p.vm)
		p.dec = dec
	}
	for ; ; steps++ {
		if steps >= InsnBudget {
			return 0, fmt.Errorf("ebpf: %s: instruction budget exceeded", p.Name)
		}
		if pc < 0 || pc >= len(dec) {
			return 0, fmt.Errorf("ebpf: %s: pc out of range: %d", p.Name, pc)
		}
		in := &dec[pc]

		switch in.kind {
		case decALU64:
			var src uint64
			if in.regSrc {
				src = regs[in.src]
			} else {
				src = uint64(in.imm)
			}
			dst, err := aluOp64(in.op, regs[in.dst], src)
			if err != nil {
				return 0, fmt.Errorf("ebpf: %s @%d: %w", p.Name, pc, err)
			}
			regs[in.dst] = dst
			pc++
		case decALU32:
			var src uint32
			if in.regSrc {
				src = uint32(regs[in.src])
			} else {
				src = uint32(in.imm)
			}
			dst, err := aluOp32(in.op, uint32(regs[in.dst]), src)
			if err != nil {
				return 0, fmt.Errorf("ebpf: %s @%d: %w", p.Name, pc, err)
			}
			// 32-bit ops zero the upper half, as on hardware.
			regs[in.dst] = uint64(dst)
			pc++
		case decLdImm64:
			regs[in.dst] = in.imm64
			pc += 2
		case decLdx:
			addr := regs[in.src] + uint64(int64(in.off))
			i, err := stackIndex(addr, int(in.size))
			if err != nil {
				return 0, fmt.Errorf("ebpf: %s @%d: %w", p.Name, pc, err)
			}
			regs[in.dst] = loadSized(st.stack[i:], int(in.size))
			pc++
		case decStx:
			addr := regs[in.dst] + uint64(int64(in.off))
			i, err := stackIndex(addr, int(in.size))
			if err != nil {
				return 0, fmt.Errorf("ebpf: %s @%d: %w", p.Name, pc, err)
			}
			storeSized(st.stack[i:], int(in.size), regs[in.src])
			pc++
		case decSt:
			addr := regs[in.dst] + uint64(int64(in.off))
			i, err := stackIndex(addr, int(in.size))
			if err != nil {
				return 0, fmt.Errorf("ebpf: %s @%d: %w", p.Name, pc, err)
			}
			storeSized(st.stack[i:], int(in.size), uint64(in.imm))
			pc++
		case decExit:
			st.regs = regs // expose the final register file (engine tests)
			return regs[R0], nil
		case decCall:
			if in.helper == nil {
				return 0, fmt.Errorf("ebpf: %s @%d: unknown helper %d", p.Name, pc, in.hid)
			}
			var hargs [5]uint64
			copy(hargs[:], regs[R1:R6])
			r0, err := in.helper(ctx, hargs)
			if err != nil {
				return 0, fmt.Errorf("ebpf: %s @%d: helper %s: %w", p.Name, pc, in.hname, err)
			}
			regs[R0] = r0
			// R1-R5 are caller-clobbered; poison them to catch
			// programs that slipped past verification.
			for r := R1; r <= R5; r++ {
				regs[r] = poison
			}
			pc++
		case decJa:
			pc += int(in.off)
		case decJump, decJump32:
			dst := regs[in.dst]
			var src uint64
			if in.regSrc {
				src = regs[in.src]
			} else {
				src = uint64(in.imm)
			}
			if in.kind == decJump32 {
				// JMP32 compares the low 32 bits; signed variants
				// sign-extend them.
				dst = uint64(int64(int32(uint32(dst))))
				src = uint64(int64(int32(uint32(src))))
			}
			taken, err := jumpTaken(in.op, dst, src)
			if err != nil {
				return 0, fmt.Errorf("ebpf: %s @%d: %w", p.Name, pc, err)
			}
			if st.branchHook != nil {
				st.branchHook(pc, taken)
			}
			if taken {
				pc += int(in.off)
			} else {
				pc++
			}
		default:
			return 0, fmt.Errorf("ebpf: %s @%d: unsupported instruction %s", p.Name, pc, p.insns[pc])
		}
	}
}

func aluOp64(op uint8, dst, src uint64) (uint64, error) {
	switch op {
	case OpAdd:
		dst += src
	case OpSub:
		dst -= src
	case OpMul:
		dst *= src
	case OpDiv:
		if src == 0 {
			dst = 0 // kernel semantics: div by zero yields 0
		} else {
			dst /= src
		}
	case OpMod:
		if src == 0 {
			// kernel semantics: dst unchanged on mod-by-zero
		} else {
			dst %= src
		}
	case OpAnd:
		dst &= src
	case OpOr:
		dst |= src
	case OpXor:
		dst ^= src
	case OpLsh:
		dst <<= src & 63
	case OpRsh:
		dst >>= src & 63
	case OpArsh:
		dst = uint64(int64(dst) >> (src & 63))
	case OpNeg:
		dst = uint64(-int64(dst))
	case OpMov:
		dst = src
	default:
		return 0, fmt.Errorf("unsupported alu64 op %#x", op)
	}
	return dst, nil
}

func aluOp32(op uint8, dst, src uint32) (uint32, error) {
	switch op {
	case OpAdd:
		dst += src
	case OpSub:
		dst -= src
	case OpMul:
		dst *= src
	case OpDiv:
		if src == 0 {
			dst = 0
		} else {
			dst /= src
		}
	case OpMod:
		if src != 0 {
			dst %= src
		}
	case OpAnd:
		dst &= src
	case OpOr:
		dst |= src
	case OpXor:
		dst ^= src
	case OpLsh:
		dst <<= src & 31
	case OpRsh:
		dst >>= src & 31
	case OpArsh:
		dst = uint32(int32(dst) >> (src & 31))
	case OpNeg:
		dst = uint32(-int32(dst))
	case OpMov:
		dst = src
	default:
		return 0, fmt.Errorf("unsupported alu32 op %#x", op)
	}
	return dst, nil
}

func jumpTaken(op uint8, dst, src uint64) (bool, error) {
	switch op {
	case OpJeq:
		return dst == src, nil
	case OpJne:
		return dst != src, nil
	case OpJgt:
		return dst > src, nil
	case OpJge:
		return dst >= src, nil
	case OpJlt:
		return dst < src, nil
	case OpJle:
		return dst <= src, nil
	case OpJset:
		return dst&src != 0, nil
	case OpJsgt:
		return int64(dst) > int64(src), nil
	case OpJsge:
		return int64(dst) >= int64(src), nil
	case OpJslt:
		return int64(dst) < int64(src), nil
	case OpJsle:
		return int64(dst) <= int64(src), nil
	}
	return false, fmt.Errorf("unsupported jmp op %#x", op)
}

func loadSized(b []byte, size int) uint64 {
	switch size {
	case 1:
		return uint64(b[0])
	case 2:
		return uint64(binary.LittleEndian.Uint16(b))
	case 4:
		return uint64(binary.LittleEndian.Uint32(b))
	default:
		return binary.LittleEndian.Uint64(b)
	}
}

func storeSized(b []byte, size int, v uint64) {
	switch size {
	case 1:
		b[0] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(b, uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(b, uint32(v))
	default:
		binary.LittleEndian.PutUint64(b, v)
	}
}

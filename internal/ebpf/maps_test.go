package ebpf

import (
	"testing"
	"testing/quick"
)

func TestHashMapBasics(t *testing.T) {
	m := MustNewMap(MapTypeHash, "h", 4)
	if _, ok := m.Lookup(1); ok {
		t.Fatal("empty map lookup hit")
	}
	if err := m.Update(1, 100); err != nil {
		t.Fatal(err)
	}
	if v, ok := m.Lookup(1); !ok || v != 100 {
		t.Fatalf("lookup = %d,%v", v, ok)
	}
	if err := m.Update(1, 200); err != nil {
		t.Fatal(err) // replace existing never hits capacity
	}
	if v, _ := m.Lookup(1); v != 200 {
		t.Fatalf("update did not replace: %d", v)
	}
	if !m.Delete(1) {
		t.Fatal("delete existing returned false")
	}
	if m.Delete(1) {
		t.Fatal("delete missing returned true")
	}
}

func TestHashMapCapacity(t *testing.T) {
	m := MustNewMap(MapTypeHash, "h", 2)
	if err := m.Update(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(2, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(3, 3); err == nil {
		t.Fatal("insert beyond max_entries accepted")
	}
	if err := m.Update(1, 9); err != nil {
		t.Fatalf("replacing at capacity failed: %v", err)
	}
}

func TestArrayMapBasics(t *testing.T) {
	m := MustNewMap(MapTypeArray, "a", 8)
	if _, ok := m.Lookup(3); ok {
		t.Fatal("unwritten slot reported present")
	}
	if err := m.Update(3, 33); err != nil {
		t.Fatal(err)
	}
	if v, ok := m.Lookup(3); !ok || v != 33 {
		t.Fatalf("lookup = %d,%v", v, ok)
	}
	if err := m.Update(8, 1); err == nil {
		t.Fatal("out-of-range array update accepted")
	}
	if _, ok := m.Lookup(100); ok {
		t.Fatal("out-of-range array lookup hit")
	}
}

func TestEntriesSorted(t *testing.T) {
	m := MustNewMap(MapTypeHash, "h", 16)
	for _, k := range []uint64{5, 1, 9, 3} {
		if err := m.Update(k, k*10); err != nil {
			t.Fatal(err)
		}
	}
	es := m.Entries()
	if len(es) != 4 {
		t.Fatalf("len = %d", len(es))
	}
	for i := 1; i < len(es); i++ {
		if es[i-1].Key >= es[i].Key {
			t.Fatalf("entries not sorted: %v", es)
		}
	}
}

func TestClear(t *testing.T) {
	for _, typ := range []MapType{MapTypeHash, MapTypeArray} {
		m := MustNewMap(typ, "m", 8)
		if err := m.Update(2, 5); err != nil {
			t.Fatal(err)
		}
		m.Clear()
		if m.Len() != 0 {
			t.Fatalf("%v: Len after clear = %d", typ, m.Len())
		}
		if _, ok := m.Lookup(2); ok {
			t.Fatalf("%v: lookup hit after clear", typ)
		}
	}
}

func TestMapLenProperty(t *testing.T) {
	f := func(keys []uint64) bool {
		m := MustNewMap(MapTypeHash, "h", 1<<20)
		uniq := make(map[uint64]bool)
		for _, k := range keys {
			if err := m.Update(k, 1); err != nil {
				return false
			}
			uniq[k] = true
		}
		return m.Len() == len(uniq)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewMapValidation(t *testing.T) {
	if _, err := NewMap(MapTypeHash, "bad", 0); err == nil {
		t.Fatal("zero max_entries accepted")
	}
	if _, err := NewMap(MapType(99), "bad", 8); err == nil {
		t.Fatal("unknown type accepted")
	}
}

func TestMapTypeString(t *testing.T) {
	if MapTypeHash.String() != "hash" || MapTypeArray.String() != "array" {
		t.Fatal("bad map type strings")
	}
}

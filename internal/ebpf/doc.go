// Package ebpf implements the eBPF execution environment that SnapBPF
// attaches to the simulated kernel: a bytecode ISA mirroring the Linux
// encoding, an assembler, a classic verifier, an interpreter, hash and
// array maps, and a helper/kfunc registry.
//
// The SnapBPF capture and prefetch mechanisms (§3.1 of the paper) are
// written as real programs in this ISA: they are assembled with
// Builder, must pass Verify to be loaded, and execute in the
// interpreter on every firing of the add_to_page_cache_lru kprobe.
//
// # Deviations from the kernel ABI
//
// The environment is a faithful miniature, not a byte-for-byte clone.
// The intentional simplifications, chosen so the programs keep the
// same structure as their real counterparts:
//
//   - Kprobe context: programs receive up to five u64 arguments in
//     R1–R5 (the probed function's arguments) instead of a *pt_regs
//     they must decode with bpf_probe_read. This is the view BPF
//     trampolines/fentry provide on modern kernels.
//   - Maps hold u64 keys and u64 values. bpf_map_lookup_elem takes
//     (map_fd, key_ptr, value_ptr) and returns 1/0 for hit/miss,
//     writing through value_ptr, instead of returning a value pointer:
//     the VM has no general kernel address space for value pointers to
//     live in. Null-check-after-lookup control flow is preserved.
//   - Map references use the fd directly as an immediate (Mov64Imm or
//     LdImm64) rather than a relocated BPF_PSEUDO_MAP_FD; the verifier
//     still tracks which constants name registered maps and enforces
//     the kernel's argument discipline for map helpers (a map
//     reference in R1, in-frame stack pointers for key/value), so a
//     clobbered register can never reach bpf_map_*_elem — a property
//     the package's verifier-soundness fuzzer exercises.
//   - The verifier is a fixpoint dataflow analysis that permits
//     loops (the paper targets Linux 6.3, whose verifier accepts
//     bounded loops); runaway loops are cut off at run time by the
//     interpreter's instruction budget, the analogue of the kernel's
//     1M-instruction complexity bound.
//
// Everything else — the register file and calling convention, the
// 512-byte stack, the instruction encoding and semantics (including
// division-by-zero behaviour and 32-bit sub-register zeroing), the
// verifier's init/bounds/DAG discipline, and the self-disabling
// program lifecycle — follows Linux.
package ebpf

package ebpf

import (
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestVerifierRegression pins the two-tier verifier against the
// structural seed verifier over a broad program corpus: hand-written
// programs from the test suites, the committed FuzzVerifier corpus,
// and a spread of generator output. The verdict may only move in one
// direction — anything the structural pass accepts, Verify accepts,
// and anything newly accepted (structural reject, analysis accept)
// must pass a runtime differential between the interpreter and the
// absint-pruned JIT before the upgrade counts.
func TestVerifierRegression(t *testing.T) {
	corpus := regressionCorpus(t)
	if len(corpus) < 50 {
		t.Fatalf("regression corpus too small: %d programs", len(corpus))
	}

	vm := NewVM()
	m := MustNewMap(MapTypeHash, "fuzz", 1024)
	vm.RegisterMap(m)

	var accepted, upgraded int
	for i, insns := range corpus {
		sErr := verifyStructural(insns, vm)
		vErr := Verify(insns, vm)
		if sErr == nil {
			accepted++
			if vErr != nil {
				t.Fatalf("program %d: verdict regressed: structural accepts, Verify rejects: %v\n%s",
					i, vErr, Disassemble(insns))
			}
			continue
		}
		if vErr != nil {
			// Both reject; the surfaced error must be structural.
			if vErr.Error() != sErr.Error() {
				t.Fatalf("program %d: rejection error drifted: %v != %v", i, vErr, sErr)
			}
			continue
		}
		// Upgrade: the analysis proved what the structural pass could
		// not. Gate it on an engine differential.
		upgraded++
		assertEnginesAgreeUnderPruning(t, insns)
	}
	if accepted == 0 {
		t.Fatal("corpus exercised no structurally-accepted programs")
	}
	if upgraded == 0 {
		t.Fatal("corpus exercised no verdict upgrades")
	}
	t.Logf("regression: %d programs, %d structural accepts, %d upgrades", len(corpus), accepted, upgraded)
}

// assertEnginesAgreeUnderPruning runs a newly-accepted program on the
// interpreter and on the absint-pruned JIT in isolated environments
// and requires identical outcomes (budget aborts included).
func assertEnginesAgreeUnderPruning(t *testing.T, insns []Instruction) {
	t.Helper()
	run := func(prune, interp bool) (uint64, error, []Entry) {
		vm := NewVM()
		m := MustNewMap(MapTypeHash, "fuzz", 1024)
		vm.RegisterMap(m)
		SetAbsintPrune(prune)
		p, err := vm.Load("regress", insns)
		SetAbsintPrune(false)
		if err != nil {
			t.Fatalf("Verify accepted but Load failed: %v\n%s", err, Disassemble(insns))
		}
		var ret uint64
		if interp {
			ret, err = p.Interp(nil, 1, 2)
		} else {
			ret, err = p.Run(nil, 1, 2)
		}
		return ret, err, m.Entries()
	}
	iRet, iErr, iEnt := run(false, true)
	jRet, jErr, jEnt := run(true, false)
	if (iErr == nil) != (jErr == nil) || (iErr != nil && iErr.Error() != jErr.Error()) {
		t.Fatalf("upgrade differential failed: interp err %v, pruned jit err %v\n%s",
			iErr, jErr, Disassemble(insns))
	}
	if iErr == nil && iRet != jRet {
		t.Fatalf("upgrade differential failed: interp %#x, pruned jit %#x\n%s",
			iRet, jRet, Disassemble(insns))
	}
	if len(iEnt) != len(jEnt) {
		t.Fatalf("upgrade differential failed: map %d vs %d entries\n%s",
			len(iEnt), len(jEnt), Disassemble(insns))
	}
	for k := range iEnt {
		if iEnt[k] != jEnt[k] {
			t.Fatalf("upgrade differential failed: map entry %v vs %v\n%s",
				iEnt[k], jEnt[k], Disassemble(insns))
		}
	}
}

// regressionCorpus assembles the program set: suite programs, the
// committed FuzzVerifier seed corpus, and 400 generator programs.
func regressionCorpus(t *testing.T) [][]Instruction {
	t.Helper()
	corpus := [][]Instruction{
		benchProgram(),
		mapHelperProgram(0),
		evictionScanProgram(),
		deadRegionProgram(),
		{
			{Op: ClassALU64 | OpMov | SrcK, Dst: R0, Imm: 0},
			{Op: ClassJMP | OpExit},
		},
	}
	corpus = append(corpus, fuzzCorpusPrograms(t, "testdata/fuzz/FuzzVerifier")...)
	rng := rand.New(rand.NewSource(2024))
	for i := 0; i < 400; i++ {
		corpus = append(corpus, randomProgram(rng, 0))
	}
	return corpus
}

// fuzzCorpusPrograms decodes the committed go-fuzz corpus files
// (format: "go test fuzz v1" followed by one []byte literal).
func fuzzCorpusPrograms(t *testing.T, dir string) [][]Instruction {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	var out [][]Instruction
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(string(data), "\n")
		for _, line := range lines {
			line = strings.TrimSpace(line)
			if !strings.HasPrefix(line, "[]byte(") || !strings.HasSuffix(line, ")") {
				continue
			}
			lit, err := strconv.Unquote(strings.TrimSuffix(strings.TrimPrefix(line, "[]byte("), ")"))
			if err != nil {
				t.Fatalf("%s: bad corpus literal: %v", f, err)
			}
			insns, err := UnmarshalInstructions([]byte(lit))
			if err != nil {
				continue
			}
			out = append(out, insns)
		}
	}
	return out
}

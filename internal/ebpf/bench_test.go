package ebpf

import "testing"

// Microbenchmarks for the eBPF environment itself: interpreter
// throughput, verifier latency and map operations. These bound the
// kernel-side overhead SnapBPF adds per page-cache insertion.

func benchProgram() []Instruction {
	// A capture-shaped program: filter, two lookups, two updates.
	b := NewBuilder()
	b.StxDW(R10, -8, R1).
		StxDW(R10, -16, R2).
		JmpImm(OpJeq, R1, 1, "match").
		Mov64Imm(R0, 0).
		Exit().
		Label("match").
		LdxDW(R6, R10, -16).
		Add64Imm(R6, 1).
		StxDW(R10, -24, R6).
		Mov64Imm(R0, 0).
		Exit()
	return b.MustProgram()
}

func BenchmarkInterpreterCaptureShaped(b *testing.B) {
	vm := NewVM()
	prog := vm.MustLoad("bench", benchProgram())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prog.Interp(nil, 1, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJITCaptureShaped is the acceptance benchmark for the
// template JIT: the same capture-shaped program through Run on the
// default engine.
func BenchmarkJITCaptureShaped(b *testing.B) {
	vm := NewVM()
	prog := vm.MustLoad("bench", benchProgram())
	if prog.jit == nil {
		b.Fatal("bench program did not compile")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prog.Run(nil, 1, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJITCaptureShapedPruned is the same acceptance benchmark
// with absint pruning enabled at load: dead-branch facts feed the
// block compiler, and the per-run cost must not regress.
func BenchmarkJITCaptureShapedPruned(b *testing.B) {
	vm := NewVM()
	SetAbsintPrune(true)
	prog, err := vm.Load("bench", benchProgram())
	SetAbsintPrune(false)
	if err != nil {
		b.Fatal(err)
	}
	if prog.jit == nil {
		b.Fatal("bench program did not compile")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prog.Run(nil, 1, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpreterTightLoop(b *testing.B) {
	// sum(1..1000) per iteration: ~4000 instructions.
	insns := []Instruction{
		{Op: ClassALU64 | OpMov | SrcK, Dst: R0, Imm: 0},
		{Op: ClassALU64 | OpMov | SrcK, Dst: R2, Imm: 0},
		{Op: ClassJMP | OpJge | SrcX, Dst: R2, Src: R1, Off: 3},
		{Op: ClassALU64 | OpAdd | SrcK, Dst: R2, Imm: 1},
		{Op: ClassALU64 | OpAdd | SrcX, Dst: R0, Src: R2},
		{Op: ClassJMP | OpJa, Off: -4},
		{Op: ClassJMP | OpExit},
	}
	vm := NewVM()
	prog := vm.MustLoad("loop", insns)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prog.Interp(nil, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJITTightLoop is the tight-loop program on the JIT: the
// block walk pays one indirect call per closure instead of one
// dispatch per instruction.
func BenchmarkJITTightLoop(b *testing.B) {
	insns := []Instruction{
		{Op: ClassALU64 | OpMov | SrcK, Dst: R0, Imm: 0},
		{Op: ClassALU64 | OpMov | SrcK, Dst: R2, Imm: 0},
		{Op: ClassJMP | OpJge | SrcX, Dst: R2, Src: R1, Off: 3},
		{Op: ClassALU64 | OpAdd | SrcK, Dst: R2, Imm: 1},
		{Op: ClassALU64 | OpAdd | SrcX, Dst: R0, Src: R2},
		{Op: ClassJMP | OpJa, Off: -4},
		{Op: ClassJMP | OpExit},
	}
	vm := NewVM()
	prog := vm.MustLoad("loop", insns)
	if prog.jit == nil {
		b.Fatal("loop program did not compile")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prog.Run(nil, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifier(b *testing.B) {
	insns := benchProgram()
	vm := NewVM()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Verify(insns, vm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashMapUpdateLookup(b *testing.B) {
	m := MustNewMap(MapTypeHash, "h", 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i) % (1 << 18)
		if err := m.Update(k, uint64(i)); err != nil {
			b.Fatal(err)
		}
		if _, ok := m.Lookup(k); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkMarshalInstructions(b *testing.B) {
	insns := benchProgram()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MarshalInstructions(insns); err != nil {
			b.Fatal(err)
		}
	}
}

// mapHelperProgram stores a key/value pair, updates the map and looks
// the key back up — the capture program's actual helper mix — so this
// measures the decoded call fast path plus the program's map-FD cache.
func mapHelperProgram(fd int32) []Instruction {
	b := NewBuilder()
	b.StxDW(R10, -8, R1). // key = arg1
				StxDW(R10, -16, R2). // value = arg2
				Mov64Imm(R1, fd).
				Mov64Reg(R2, R10).
				Add64Imm(R2, -8).
				Mov64Reg(R3, R10).
				Add64Imm(R3, -16).
				Call(HelperMapUpdateElem).
				Mov64Imm(R1, fd).
				Mov64Reg(R2, R10).
				Add64Imm(R2, -8).
				Mov64Reg(R3, R10).
				Add64Imm(R3, -24).
				Call(HelperMapLookupElem).
				Mov64Reg(R0, R0).
				Exit()
	return b.MustProgram()
}

// BenchmarkInterpreterMapHelpers measures a run dominated by map
// helper calls: one update + one lookup per execution, resolved
// through the load-time map-FD cache.
func BenchmarkInterpreterMapHelpers(b *testing.B) {
	vm := NewVM()
	fd := vm.RegisterMap(MustNewMap(MapTypeHash, "ws", 1<<20))
	prog := vm.MustLoad("maps", mapHelperProgram(fd))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prog.Interp(nil, uint64(i)%(1<<18), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJITMapHelpers is the helper-dominated program on the JIT:
// each call and its whole mov/add argument preamble fuse into one
// closure.
func BenchmarkJITMapHelpers(b *testing.B) {
	vm := NewVM()
	fd := vm.RegisterMap(MustNewMap(MapTypeHash, "ws", 1<<20))
	prog := vm.MustLoad("maps", mapHelperProgram(fd))
	if prog.jit == nil {
		b.Fatal("maps program did not compile")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prog.Run(nil, uint64(i)%(1<<18), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoadDecode measures the one-time load cost the decode cache
// adds: verification plus pre-decoding of a capture-shaped program.
func BenchmarkLoadDecode(b *testing.B) {
	insns := benchProgram()
	vm := NewVM()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vm.Load("bench", insns); err != nil {
			b.Fatal(err)
		}
	}
}

package ebpf

import "fmt"

// Builder assembles eBPF programs instruction by instruction, with
// symbolic labels resolved at Program() time. It is the in-repo
// equivalent of writing restricted C and compiling with clang -target
// bpf: the SnapBPF capture and prefetch programs are authored with it.
type Builder struct {
	insns  []Instruction
	labels map[string]int // label -> instruction index
	fixups map[int]string // instruction index -> target label
	errs   []error
}

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder {
	return &Builder{
		labels: make(map[string]int),
		fixups: make(map[int]string),
	}
}

func (b *Builder) emit(in Instruction) *Builder {
	b.insns = append(b.insns, in)
	return b
}

// Label defines a jump target at the next instruction.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("duplicate label %q", name))
		return b
	}
	b.labels[name] = len(b.insns)
	return b
}

// Mov64Reg emits dst = src.
func (b *Builder) Mov64Reg(dst, src Register) *Builder {
	return b.emit(Instruction{Op: ClassALU64 | OpMov | SrcX, Dst: dst, Src: src})
}

// Mov64Imm emits dst = imm (sign-extended 32-bit immediate).
func (b *Builder) Mov64Imm(dst Register, imm int32) *Builder {
	return b.emit(Instruction{Op: ClassALU64 | OpMov | SrcK, Dst: dst, Imm: imm})
}

// LdImm64 emits the two-slot load of a full 64-bit constant.
func (b *Builder) LdImm64(dst Register, v uint64) *Builder {
	b.emit(Instruction{Op: OpLdImm64, Dst: dst, Imm: int32(uint32(v))})
	return b.emit(Instruction{Op: 0, Imm: int32(uint32(v >> 32))})
}

// ALU64 operations with register operand.

func (b *Builder) Add64Reg(dst, src Register) *Builder {
	return b.emit(Instruction{Op: ClassALU64 | OpAdd | SrcX, Dst: dst, Src: src})
}
func (b *Builder) Sub64Reg(dst, src Register) *Builder {
	return b.emit(Instruction{Op: ClassALU64 | OpSub | SrcX, Dst: dst, Src: src})
}
func (b *Builder) Mul64Reg(dst, src Register) *Builder {
	return b.emit(Instruction{Op: ClassALU64 | OpMul | SrcX, Dst: dst, Src: src})
}
func (b *Builder) Div64Reg(dst, src Register) *Builder {
	return b.emit(Instruction{Op: ClassALU64 | OpDiv | SrcX, Dst: dst, Src: src})
}
func (b *Builder) And64Reg(dst, src Register) *Builder {
	return b.emit(Instruction{Op: ClassALU64 | OpAnd | SrcX, Dst: dst, Src: src})
}
func (b *Builder) Or64Reg(dst, src Register) *Builder {
	return b.emit(Instruction{Op: ClassALU64 | OpOr | SrcX, Dst: dst, Src: src})
}
func (b *Builder) Xor64Reg(dst, src Register) *Builder {
	return b.emit(Instruction{Op: ClassALU64 | OpXor | SrcX, Dst: dst, Src: src})
}

// ALU64 operations with immediate operand.

func (b *Builder) Add64Imm(dst Register, imm int32) *Builder {
	return b.emit(Instruction{Op: ClassALU64 | OpAdd | SrcK, Dst: dst, Imm: imm})
}
func (b *Builder) Sub64Imm(dst Register, imm int32) *Builder {
	return b.emit(Instruction{Op: ClassALU64 | OpSub | SrcK, Dst: dst, Imm: imm})
}
func (b *Builder) Mul64Imm(dst Register, imm int32) *Builder {
	return b.emit(Instruction{Op: ClassALU64 | OpMul | SrcK, Dst: dst, Imm: imm})
}
func (b *Builder) Div64Imm(dst Register, imm int32) *Builder {
	return b.emit(Instruction{Op: ClassALU64 | OpDiv | SrcK, Dst: dst, Imm: imm})
}
func (b *Builder) Mod64Imm(dst Register, imm int32) *Builder {
	return b.emit(Instruction{Op: ClassALU64 | OpMod | SrcK, Dst: dst, Imm: imm})
}
func (b *Builder) And64Imm(dst Register, imm int32) *Builder {
	return b.emit(Instruction{Op: ClassALU64 | OpAnd | SrcK, Dst: dst, Imm: imm})
}
func (b *Builder) Or64Imm(dst Register, imm int32) *Builder {
	return b.emit(Instruction{Op: ClassALU64 | OpOr | SrcK, Dst: dst, Imm: imm})
}
func (b *Builder) Lsh64Imm(dst Register, imm int32) *Builder {
	return b.emit(Instruction{Op: ClassALU64 | OpLsh | SrcK, Dst: dst, Imm: imm})
}
func (b *Builder) Rsh64Imm(dst Register, imm int32) *Builder {
	return b.emit(Instruction{Op: ClassALU64 | OpRsh | SrcK, Dst: dst, Imm: imm})
}
func (b *Builder) Neg64(dst Register) *Builder {
	return b.emit(Instruction{Op: ClassALU64 | OpNeg, Dst: dst})
}

// Memory operations. Loads and stores may only touch the stack
// ([fp-512, fp)); the verifier enforces this.

// LdxDW emits dst = *(u64 *)(src + off).
func (b *Builder) LdxDW(dst, src Register, off int16) *Builder {
	return b.emit(Instruction{Op: ClassLDX | ModeMEM | SizeDW, Dst: dst, Src: src, Off: off})
}

// StxDW emits *(u64 *)(dst + off) = src.
func (b *Builder) StxDW(dst Register, off int16, src Register) *Builder {
	return b.emit(Instruction{Op: ClassSTX | ModeMEM | SizeDW, Dst: dst, Off: off, Src: src})
}

// StDWImm emits *(u64 *)(dst + off) = imm. (Encoded as ST|DW.)
func (b *Builder) StDWImm(dst Register, off int16, imm int32) *Builder {
	return b.emit(Instruction{Op: ClassST | ModeMEM | SizeDW, Dst: dst, Off: off, Imm: imm})
}

// Control flow.

// Ja emits an unconditional jump to label.
func (b *Builder) Ja(label string) *Builder {
	b.fixups[len(b.insns)] = label
	return b.emit(Instruction{Op: ClassJMP | OpJa})
}

// JmpImm emits a conditional jump comparing dst against an immediate.
// op is one of OpJeq, OpJne, OpJgt, OpJge, OpJlt, OpJle, OpJsgt,
// OpJsge, OpJslt, OpJsle, OpJset.
func (b *Builder) JmpImm(op uint8, dst Register, imm int32, label string) *Builder {
	b.fixups[len(b.insns)] = label
	return b.emit(Instruction{Op: ClassJMP | op | SrcK, Dst: dst, Imm: imm})
}

// JmpReg emits a conditional jump comparing dst against src.
func (b *Builder) JmpReg(op uint8, dst, src Register, label string) *Builder {
	b.fixups[len(b.insns)] = label
	return b.emit(Instruction{Op: ClassJMP | op | SrcX, Dst: dst, Src: src})
}

// Jmp32Imm emits a conditional jump comparing the low 32 bits of dst
// against an immediate (the BPF_JMP32 class).
func (b *Builder) Jmp32Imm(op uint8, dst Register, imm int32, label string) *Builder {
	b.fixups[len(b.insns)] = label
	return b.emit(Instruction{Op: ClassJMP32 | op | SrcK, Dst: dst, Imm: imm})
}

// Jmp32Reg emits a conditional jump comparing the low 32 bits of dst
// and src.
func (b *Builder) Jmp32Reg(op uint8, dst, src Register, label string) *Builder {
	b.fixups[len(b.insns)] = label
	return b.emit(Instruction{Op: ClassJMP32 | op | SrcX, Dst: dst, Src: src})
}

// 32-bit ALU operations (zero the upper half of the destination).

func (b *Builder) Mov32Imm(dst Register, imm int32) *Builder {
	return b.emit(Instruction{Op: ClassALU | OpMov | SrcK, Dst: dst, Imm: imm})
}
func (b *Builder) Mov32Reg(dst, src Register) *Builder {
	return b.emit(Instruction{Op: ClassALU | OpMov | SrcX, Dst: dst, Src: src})
}
func (b *Builder) Add32Imm(dst Register, imm int32) *Builder {
	return b.emit(Instruction{Op: ClassALU | OpAdd | SrcK, Dst: dst, Imm: imm})
}
func (b *Builder) Sub32Imm(dst Register, imm int32) *Builder {
	return b.emit(Instruction{Op: ClassALU | OpSub | SrcK, Dst: dst, Imm: imm})
}
func (b *Builder) And32Imm(dst Register, imm int32) *Builder {
	return b.emit(Instruction{Op: ClassALU | OpAnd | SrcK, Dst: dst, Imm: imm})
}

// Call emits a helper or kfunc call by identifier. Arguments are taken
// from R1–R5 and the result lands in R0; R1–R5 are clobbered.
func (b *Builder) Call(helper int32) *Builder {
	return b.emit(Instruction{Op: ClassJMP | OpCall, Imm: helper})
}

// Exit emits the program-return instruction (return R0).
func (b *Builder) Exit() *Builder {
	return b.emit(Instruction{Op: ClassJMP | OpExit})
}

// Raw appends a pre-encoded instruction.
func (b *Builder) Raw(in Instruction) *Builder { return b.emit(in) }

// Program resolves labels and returns the instruction stream. It does
// not verify the program; pass the result to Verify or Load.
func (b *Builder) Program() ([]Instruction, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	out := make([]Instruction, len(b.insns))
	copy(out, b.insns)
	for idx, label := range b.fixups {
		target, ok := b.labels[label]
		if !ok {
			return nil, fmt.Errorf("undefined label %q at insn %d", label, idx)
		}
		// Offset is relative to the instruction *after* the jump.
		rel := target - idx - 1
		if rel < -32768 || rel > 32767 {
			return nil, fmt.Errorf("jump to %q out of int16 range (%d)", label, rel)
		}
		out[idx].Off = int16(rel)
	}
	return out, nil
}

// MustProgram is Program but panics on error; for static programs whose
// correctness is covered by tests.
func (b *Builder) MustProgram() []Instruction {
	p, err := b.Program()
	if err != nil {
		panic("ebpf: " + err.Error())
	}
	return p
}

// Disassemble renders a program as readable assembly, one instruction
// per line, for debugging and the wsinspect tool.
func Disassemble(insns []Instruction) string {
	out := ""
	for i, in := range insns {
		out += fmt.Sprintf("%4d: %s\n", i, in.String())
	}
	return out
}

package ebpf

import "fmt"

// Register is one of the eleven eBPF registers R0–R10.
type Register uint8

// eBPF registers. Calling convention follows the kernel ABI: R1–R5
// carry arguments into the program and into helper calls, R0 carries
// return values, R6–R9 are callee-saved scratch, and R10 is the
// read-only frame pointer to the top of the 512-byte stack.
const (
	R0 Register = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10

	// RFP is an alias for the frame pointer.
	RFP = R10

	numRegisters = 11
)

func (r Register) String() string {
	if r == R10 {
		return "fp"
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// Instruction classes (low 3 bits of the opcode), matching the Linux
// eBPF encoding.
const (
	ClassLD    = 0x00
	ClassLDX   = 0x01
	ClassST    = 0x02
	ClassSTX   = 0x03
	ClassALU   = 0x04
	ClassJMP   = 0x05
	ClassJMP32 = 0x06
	ClassALU64 = 0x07
)

// Size field for memory instructions.
const (
	SizeW  = 0x00 // 4 bytes
	SizeH  = 0x08 // 2 bytes
	SizeB  = 0x10 // 1 byte
	SizeDW = 0x18 // 8 bytes
)

// Mode field for load/store instructions.
const (
	ModeIMM = 0x00
	ModeMEM = 0x60
)

// Source field for ALU/JMP instructions.
const (
	SrcK = 0x00 // immediate operand
	SrcX = 0x08 // register operand
)

// ALU/ALU64 operation field (high 4 bits).
const (
	OpAdd  = 0x00
	OpSub  = 0x10
	OpMul  = 0x20
	OpDiv  = 0x30
	OpOr   = 0x40
	OpAnd  = 0x50
	OpLsh  = 0x60
	OpRsh  = 0x70
	OpNeg  = 0x80
	OpMod  = 0x90
	OpXor  = 0xa0
	OpMov  = 0xb0
	OpArsh = 0xc0
)

// JMP operation field (high 4 bits).
const (
	OpJa   = 0x00
	OpJeq  = 0x10
	OpJgt  = 0x20
	OpJge  = 0x30
	OpJset = 0x40
	OpJne  = 0x50
	OpJsgt = 0x60
	OpJsge = 0x70
	OpCall = 0x80
	OpExit = 0x90
	OpJlt  = 0xa0
	OpJle  = 0xb0
	OpJslt = 0xc0
	OpJsle = 0xd0
)

// Frequently used full opcodes.
const (
	// OpLdImm64 is the two-slot 64-bit immediate load (LD|IMM|DW).
	OpLdImm64 = ClassLD | ModeIMM | SizeDW
)

// Instruction is a single eBPF instruction in the fixed 8-byte layout.
// A 64-bit immediate load occupies two consecutive Instruction slots;
// the second slot carries the upper 32 bits in Imm with Op==0.
type Instruction struct {
	Op  uint8
	Dst Register
	Src Register
	Off int16
	Imm int32
}

// Class returns the instruction class bits.
func (in Instruction) Class() uint8 { return in.Op & 0x07 }

// aluOp returns the operation bits for ALU/JMP classes.
func (in Instruction) aluOp() uint8 { return in.Op & 0xf0 }

// usesRegSrc reports whether the ALU/JMP operand is a register.
func (in Instruction) usesRegSrc() bool { return in.Op&0x08 != 0 }

// size returns the memory access width in bytes for LDX/ST/STX.
func (in Instruction) size() int {
	switch in.Op & 0x18 {
	case SizeW:
		return 4
	case SizeH:
		return 2
	case SizeB:
		return 1
	case SizeDW:
		return 8
	}
	return 0
}

// StackSize is the per-program stack size in bytes, as in Linux.
const StackSize = 512

// String renders a readable disassembly of the instruction.
func (in Instruction) String() string {
	switch in.Class() {
	case ClassALU64, ClassALU:
		suffix := ""
		if in.Class() == ClassALU {
			suffix = "32"
		}
		name := aluName(in.aluOp())
		if in.aluOp() == OpNeg {
			return fmt.Sprintf("%s%s %s", name, suffix, in.Dst)
		}
		if in.usesRegSrc() {
			return fmt.Sprintf("%s%s %s, %s", name, suffix, in.Dst, in.Src)
		}
		return fmt.Sprintf("%s%s %s, #%d", name, suffix, in.Dst, in.Imm)
	case ClassJMP, ClassJMP32:
		suffix := ""
		if in.Class() == ClassJMP32 {
			suffix = "32"
		}
		switch in.aluOp() {
		case OpJa:
			return fmt.Sprintf("ja +%d", in.Off)
		case OpCall:
			return fmt.Sprintf("call #%d", in.Imm)
		case OpExit:
			return "exit"
		}
		if in.usesRegSrc() {
			return fmt.Sprintf("%s%s %s, %s, +%d", jmpName(in.aluOp()), suffix, in.Dst, in.Src, in.Off)
		}
		return fmt.Sprintf("%s%s %s, #%d, +%d", jmpName(in.aluOp()), suffix, in.Dst, in.Imm, in.Off)
	case ClassLDX:
		return fmt.Sprintf("ldx%d %s, [%s%+d]", in.size()*8, in.Dst, in.Src, in.Off)
	case ClassSTX:
		return fmt.Sprintf("stx%d [%s%+d], %s", in.size()*8, in.Dst, in.Off, in.Src)
	case ClassST:
		return fmt.Sprintf("st%d [%s%+d], #%d", in.size()*8, in.Dst, in.Off, in.Imm)
	case ClassLD:
		if in.Op == OpLdImm64 {
			return fmt.Sprintf("lddw %s, #%d(lo)", in.Dst, in.Imm)
		}
		if in.Op == 0 {
			return fmt.Sprintf("lddw-hi #%d", in.Imm)
		}
	}
	return fmt.Sprintf("op=%#02x dst=%s src=%s off=%d imm=%d", in.Op, in.Dst, in.Src, in.Off, in.Imm)
}

func aluName(op uint8) string {
	switch op {
	case OpAdd:
		return "add"
	case OpSub:
		return "sub"
	case OpMul:
		return "mul"
	case OpDiv:
		return "div"
	case OpOr:
		return "or"
	case OpAnd:
		return "and"
	case OpLsh:
		return "lsh"
	case OpRsh:
		return "rsh"
	case OpNeg:
		return "neg"
	case OpMod:
		return "mod"
	case OpXor:
		return "xor"
	case OpMov:
		return "mov"
	case OpArsh:
		return "arsh"
	}
	return fmt.Sprintf("alu%#x", op)
}

func jmpName(op uint8) string {
	switch op {
	case OpJeq:
		return "jeq"
	case OpJgt:
		return "jgt"
	case OpJge:
		return "jge"
	case OpJset:
		return "jset"
	case OpJne:
		return "jne"
	case OpJsgt:
		return "jsgt"
	case OpJsge:
		return "jsge"
	case OpJlt:
		return "jlt"
	case OpJle:
		return "jle"
	case OpJslt:
		return "jslt"
	case OpJsle:
		return "jsle"
	}
	return fmt.Sprintf("jmp%#x", op)
}

package ebpf

import (
	"errors"
	"fmt"
	"strings"
)

// regKind is the verifier's abstract type for a register value. The
// kinds form a three-level lattice used when joining states at control
// flow merge points:
//
//	kindStackPtr  ⊑  kindScalar  ⊑  kindUninit
//
// Joining toward kindUninit/kindScalar only ever *restricts* what a
// program may do with the register (scalars cannot be dereferenced,
// uninitialized registers cannot be read), so the analysis is sound.
type regKind uint8

const (
	kindUninit regKind = iota
	kindScalar
	kindStackPtr
	// kindMapConst is a constant that names a registered map (the
	// analogue of the kernel's CONST_PTR_TO_MAP): map helpers require
	// their first argument to carry this kind, so a clobbered or
	// arbitrary scalar can never reach bpf_map_*_elem.
	kindMapConst
)

// regState is the verifier's knowledge of one register.
type regState struct {
	kind regKind
	// off is the byte offset relative to the frame pointer for
	// kindStackPtr (0 for fp itself, negative after subtraction), or
	// the map fd for kindMapConst.
	off int64
}

func joinReg(a, b regState) regState {
	if a == b {
		return a
	}
	if a.kind == kindUninit || b.kind == kindUninit {
		return regState{kind: kindUninit}
	}
	// ptr⊔scalar or ptrs with different offsets: demote to scalar.
	return regState{kind: kindScalar}
}

type verifierState struct {
	regs [numRegisters]regState
}

func joinState(a, b verifierState) (verifierState, bool) {
	var out verifierState
	changed := false
	for i := range a.regs {
		out.regs[i] = joinReg(a.regs[i], b.regs[i])
		if out.regs[i] != a.regs[i] {
			changed = true
		}
	}
	return out, changed
}

// VerifyError describes a verification failure at an instruction.
type VerifyError struct {
	PC   int
	Insn Instruction
	Msg  string
}

func (e *VerifyError) Error() string {
	return fmt.Sprintf("verifier: insn %d (%s): %s", e.PC, e.Insn, e.Msg)
}

// helperResolver lets the verifier check call targets without
// depending on a concrete VM (tests can pass a stub).
type helperResolver interface {
	Helper(id int32) (HelperSpec, bool)
}

// mapResolver is optionally implemented by the resolver (a *VM always
// does); when present, the verifier tracks which constants name maps
// and enforces map-helper argument types.
type mapResolver interface {
	MapByFD(fd int32) (*Map, bool)
}

// isMapHelper reports whether id is one of the map-access helpers and
// how many stack-pointer arguments follow the map argument.
func isMapHelper(id int32) (ptrArgs int, ok bool) {
	switch id {
	case HelperMapLookupElem, HelperMapUpdateElem:
		return 2, true // key ptr, value ptr
	case HelperMapDeleteElem:
		return 1, true // key ptr
	}
	return 0, false
}

// Verify statically checks an eBPF program, modelling the modern
// (bounded-loop-capable) Linux verifier as a forward dataflow analysis
// over register states:
//
//   - the program is non-empty and at most MaxProgramLen instructions;
//   - all jump targets are in bounds; backward jumps (loops) are
//     permitted — the runtime instruction budget (InsnBudget, the
//     analogue of the kernel's 1M-instruction complexity bound)
//     enforces termination, and the dataflow join guarantees the
//     analysis itself terminates;
//   - every register is written before it is read on every path;
//     R1–R5 are clobbered by calls; R10 is read-only;
//   - loads and stores stay within the 512-byte stack frame and only
//     go through tracked stack pointers;
//   - division/modulo by a zero immediate is rejected;
//   - call targets resolve to registered helpers/kfuncs;
//   - every execution path reaches EXIT with R0 initialized (control
//     flow may not fall off the end).
//
// Verification runs in two tiers. The structural pass above is cheap
// and accepts the common shapes directly. When it rejects a program
// (or control flow falls off the end along a path the structural pass
// cannot rule out), the abstract interpreter in internal/ebpf/absint
// re-analyzes the program with tnum + interval range tracking and
// branch-feasibility pruning; programs it proves safe — bounded loops
// over proven induction variables, variable-offset stack accesses
// with proven bounds, branches into otherwise-invalid code that can
// never be taken — are accepted even though the structural pass could
// not show it. When both tiers reject, the structural error is
// returned (its messages are the stable, documented surface).
func Verify(insns []Instruction, res helperResolver) error {
	err := verifyStructural(insns, res)
	if err == nil {
		return nil
	}
	// Only structural-analysis failures get the second opinion;
	// size-limit errors are final.
	var vErr *VerifyError
	fallsOff := strings.Contains(err.Error(), "control flow falls off")
	if !errors.As(err, &vErr) && !fallsOff {
		return err
	}
	if r := analyzeProgram(insns, res); r.OK {
		return nil
	}
	return err
}

// verifyStructural is the first-tier dataflow analysis documented on
// Verify.
func verifyStructural(insns []Instruction, res helperResolver) error {
	if len(insns) == 0 {
		return fmt.Errorf("verifier: empty program")
	}
	if len(insns) > MaxProgramLen {
		return fmt.Errorf("verifier: program too long: %d insns (max %d)", len(insns), MaxProgramLen)
	}

	maps, _ := res.(mapResolver)
	mapConst := func(imm int64) regState {
		if maps != nil && imm >= 0 && imm <= 1<<31-1 {
			if _, ok := maps.MapByFD(int32(imm)); ok {
				return regState{kind: kindMapConst, off: imm}
			}
		}
		return regState{kind: kindScalar}
	}

	// Entry state: R1–R5 hold context args (scalars), R10 is fp.
	var entry verifierState
	for r := R1; r <= R5; r++ {
		entry.regs[r] = regState{kind: kindScalar}
	}
	entry.regs[R10] = regState{kind: kindStackPtr, off: 0}

	seen := make(map[int]verifierState, len(insns))
	seen[0] = entry
	work := []int{0}
	inWork := make(map[int]bool, len(insns))
	inWork[0] = true

	// flow merges state st into successor pc, queueing it when the
	// merged state adds information.
	var vErr error
	flow := func(pc int, st verifierState) bool {
		if pc < 0 || pc >= len(insns) {
			vErr = fmt.Errorf("verifier: control flow falls off the program (pc=%d)", pc)
			return false
		}
		old, ok := seen[pc]
		if !ok {
			seen[pc] = st
		} else {
			merged, changed := joinState(old, st)
			if !changed {
				return true
			}
			seen[pc] = merged
		}
		if !inWork[pc] {
			work = append(work, pc)
			inWork[pc] = true
		}
		return true
	}

	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[pc] = false
		st := seen[pc]
		in := insns[pc]

		fail := func(format string, args ...any) error {
			return &VerifyError{PC: pc, Insn: in, Msg: fmt.Sprintf(format, args...)}
		}

		switch in.Class() {
		case ClassALU64, ClassALU:
			if in.Dst >= numRegisters || (in.usesRegSrc() && in.Src >= numRegisters) {
				return fail("bad register")
			}
			if in.Dst == R10 {
				return fail("R10 is read-only")
			}
			op := in.aluOp()
			if op > OpArsh {
				return fail("unsupported alu op %#x", op)
			}
			if in.usesRegSrc() && st.regs[in.Src].kind == kindUninit {
				return fail("read of uninitialized register %s", in.Src)
			}
			if op != OpMov {
				if st.regs[in.Dst].kind == kindUninit {
					return fail("read of uninitialized register %s", in.Dst)
				}
			}
			if (op == OpDiv || op == OpMod) && !in.usesRegSrc() && in.Imm == 0 {
				return fail("division by zero immediate")
			}
			// Pointer arithmetic tracking: only fp-relative adds and
			// subs with immediates keep pointer type; constant moves
			// that name a registered map become map references.
			next := regState{kind: kindScalar}
			switch {
			case op == OpMov && in.usesRegSrc():
				next = st.regs[in.Src]
			case op == OpMov && !in.usesRegSrc() && in.Class() == ClassALU64:
				next = mapConst(int64(in.Imm))
			case op == OpAdd && !in.usesRegSrc() && st.regs[in.Dst].kind == kindStackPtr:
				next = regState{kind: kindStackPtr, off: st.regs[in.Dst].off + int64(in.Imm)}
			case op == OpSub && !in.usesRegSrc() && st.regs[in.Dst].kind == kindStackPtr:
				next = regState{kind: kindStackPtr, off: st.regs[in.Dst].off - int64(in.Imm)}
			}
			if in.Class() == ClassALU && next.kind == kindStackPtr {
				// 32-bit ops truncate pointers into scalars.
				next = regState{kind: kindScalar}
			}
			st.regs[in.Dst] = next
			if !flow(pc+1, st) {
				return vErr
			}

		case ClassLD:
			if in.Op != OpLdImm64 {
				return fail("unsupported LD opcode %#x", in.Op)
			}
			if pc+1 >= len(insns) {
				return fail("truncated lddw")
			}
			if insns[pc+1].Op != 0 {
				return fail("lddw second slot has nonzero opcode")
			}
			if in.Dst >= numRegisters || in.Dst == R10 {
				return fail("bad lddw destination")
			}
			if insns[pc+1].Imm == 0 {
				st.regs[in.Dst] = mapConst(int64(uint32(in.Imm)))
			} else {
				st.regs[in.Dst] = regState{kind: kindScalar}
			}
			if !flow(pc+2, st) {
				return vErr
			}

		case ClassLDX:
			if in.size() == 0 {
				return fail("bad size")
			}
			if in.Dst >= numRegisters || in.Dst == R10 || in.Src >= numRegisters {
				return fail("bad register")
			}
			if err := checkStackAccess(st, in.Src, in.Off, in.size()); err != nil {
				return fail("%v", err)
			}
			st.regs[in.Dst] = regState{kind: kindScalar}
			if !flow(pc+1, st) {
				return vErr
			}

		case ClassSTX:
			if in.size() == 0 {
				return fail("bad size")
			}
			if in.Dst >= numRegisters || in.Src >= numRegisters {
				return fail("bad register")
			}
			if st.regs[in.Src].kind == kindUninit {
				return fail("store of uninitialized register %s", in.Src)
			}
			if err := checkStackAccess(st, in.Dst, in.Off, in.size()); err != nil {
				return fail("%v", err)
			}
			if !flow(pc+1, st) {
				return vErr
			}

		case ClassST:
			if in.size() == 0 {
				return fail("bad size")
			}
			if in.Dst >= numRegisters {
				return fail("bad register")
			}
			if err := checkStackAccess(st, in.Dst, in.Off, in.size()); err != nil {
				return fail("%v", err)
			}
			if !flow(pc+1, st) {
				return vErr
			}

		case ClassJMP, ClassJMP32:
			if in.Class() == ClassJMP32 {
				switch in.aluOp() {
				case OpExit, OpCall, OpJa:
					return fail("exit/call/ja must use the 64-bit JMP class")
				}
			}
			switch in.aluOp() {
			case OpExit:
				if st.regs[R0].kind == kindUninit {
					return fail("R0 not initialized at exit")
				}
				// Terminal: nothing flows onward.
			case OpCall:
				if res == nil {
					return fail("no helper resolver")
				}
				if _, ok := res.Helper(in.Imm); !ok {
					return fail("unknown helper %d", in.Imm)
				}
				if ptrArgs, ok := isMapHelper(in.Imm); ok && maps != nil {
					// The kernel's ARG_CONST_MAP_PTR / ARG_PTR_TO_MAP_KEY
					// discipline: R1 must name a map, the following
					// arguments must be in-frame stack pointers.
					if st.regs[R1].kind != kindMapConst {
						return fail("map helper requires a map reference in R1")
					}
					for a := 0; a < ptrArgs; a++ {
						r := R2 + Register(a)
						if err := checkStackAccess(st, r, 0, 8); err != nil {
							return fail("map helper argument %s: %v", r, err)
						}
					}
				}
				// R1-R5 become unreadable, R0 holds the result.
				st.regs[R0] = regState{kind: kindScalar}
				for r := R1; r <= R5; r++ {
					st.regs[r] = regState{kind: kindUninit}
				}
				if !flow(pc+1, st) {
					return vErr
				}
			case OpJa:
				if !flow(pc+1+int(in.Off), st) {
					return vErr
				}
			default:
				if in.aluOp() > OpJsle {
					return fail("unsupported jmp op %#x", in.aluOp())
				}
				if in.Dst >= numRegisters || (in.usesRegSrc() && in.Src >= numRegisters) {
					return fail("register out of range in conditional jump")
				}
				if st.regs[in.Dst].kind == kindUninit {
					return fail("read of uninitialized register %s", in.Dst)
				}
				if in.usesRegSrc() && st.regs[in.Src].kind == kindUninit {
					return fail("read of uninitialized register %s", in.Src)
				}
				if !flow(pc+1+int(in.Off), st) {
					return vErr
				}
				if !flow(pc+1, st) {
					return vErr
				}
			}

		default:
			return fail("unsupported instruction class %#x", in.Class())
		}
	}
	return nil
}

func checkStackAccess(st verifierState, base Register, off int16, size int) error {
	rs := st.regs[base]
	switch rs.kind {
	case kindUninit:
		return fmt.Errorf("memory access through uninitialized register %s", base)
	case kindScalar:
		return fmt.Errorf("memory access through scalar register %s (only stack pointers may be dereferenced)", base)
	}
	lo := rs.off + int64(off)
	hi := lo + int64(size)
	if lo < -StackSize || hi > 0 {
		return fmt.Errorf("stack access out of frame: fp%+d..fp%+d (frame is [fp-%d, fp))", lo, hi, StackSize)
	}
	return nil
}

package ebpf

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Wire-format encoding of programs, using the kernel's fixed 8-byte
// instruction layout:
//
//	byte 0   opcode
//	byte 1   dst_reg (low nibble) | src_reg (high nibble)
//	bytes 2-3  offset, little-endian int16
//	bytes 4-7  immediate, little-endian int32
//
// This is the format bpf(BPF_PROG_LOAD) consumes and object files
// carry, so captured programs can be stored and reloaded as artifacts.

// InstructionSize is the wire size of one instruction slot.
const InstructionSize = 8

// MarshalInstructions encodes a program into the kernel wire format.
func MarshalInstructions(insns []Instruction) ([]byte, error) {
	out := make([]byte, 0, len(insns)*InstructionSize)
	for i, in := range insns {
		if in.Dst >= 16 || in.Src >= 16 {
			return nil, fmt.Errorf("ebpf: insn %d: register out of encoding range", i)
		}
		var b [InstructionSize]byte
		b[0] = in.Op
		b[1] = uint8(in.Dst) | uint8(in.Src)<<4
		binary.LittleEndian.PutUint16(b[2:], uint16(in.Off))
		binary.LittleEndian.PutUint32(b[4:], uint32(in.Imm))
		out = append(out, b[:]...)
	}
	return out, nil
}

// UnmarshalInstructions decodes a wire-format program.
func UnmarshalInstructions(data []byte) ([]Instruction, error) {
	if len(data)%InstructionSize != 0 {
		return nil, fmt.Errorf("ebpf: program size %d not a multiple of %d", len(data), InstructionSize)
	}
	n := len(data) / InstructionSize
	out := make([]Instruction, n)
	for i := 0; i < n; i++ {
		b := data[i*InstructionSize:]
		out[i] = Instruction{
			Op:  b[0],
			Dst: Register(b[1] & 0x0f),
			Src: Register(b[1] >> 4),
			Off: int16(binary.LittleEndian.Uint16(b[2:])),
			Imm: int32(binary.LittleEndian.Uint32(b[4:])),
		}
	}
	return out, nil
}

// WriteProgram writes a program with a small header (magic, version,
// instruction count, CRC-free — programs are verified on load anyway).
func WriteProgram(w io.Writer, insns []Instruction) error {
	data, err := MarshalInstructions(insns)
	if err != nil {
		return err
	}
	hdr := []uint32{0x65425046 /* "FPBe" */, 1, uint32(len(insns))}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// ReadProgram reads a program written by WriteProgram.
func ReadProgram(r io.Reader) ([]Instruction, error) {
	var hdr [3]uint32
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("ebpf: reading program header: %w", err)
	}
	if hdr[0] != 0x65425046 {
		return nil, fmt.Errorf("ebpf: bad program magic %#x", hdr[0])
	}
	if hdr[1] != 1 {
		return nil, fmt.Errorf("ebpf: unsupported program version %d", hdr[1])
	}
	if hdr[2] > MaxProgramLen {
		return nil, fmt.Errorf("ebpf: program too long: %d insns", hdr[2])
	}
	data := make([]byte, int(hdr[2])*InstructionSize)
	if _, err := io.ReadFull(r, data); err != nil {
		return nil, fmt.Errorf("ebpf: truncated program: %w", err)
	}
	return UnmarshalInstructions(data)
}

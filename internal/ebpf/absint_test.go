package ebpf

import (
	"strings"
	"testing"

	"snapbpf/internal/ebpf/absint"
)

// The abstract interpreter mirrors this package's ISA encoding and
// machine limits in its own constant set (it cannot import ebpf — the
// dependency points the other way). This test pins the mirror: a
// drift in either package fails loudly instead of silently analyzing
// a different machine.
func TestAbsintConstsMatch(t *testing.T) {
	pairs := []struct {
		name       string
		ebpf, abst int64
	}{
		{"ClassLD", int64(ClassLD), int64(absint.ClassLD)},
		{"ClassLDX", int64(ClassLDX), int64(absint.ClassLDX)},
		{"ClassST", int64(ClassST), int64(absint.ClassST)},
		{"ClassSTX", int64(ClassSTX), int64(absint.ClassSTX)},
		{"ClassALU", int64(ClassALU), int64(absint.ClassALU)},
		{"ClassJMP", int64(ClassJMP), int64(absint.ClassJMP)},
		{"ClassJMP32", int64(ClassJMP32), int64(absint.ClassJMP32)},
		{"ClassALU64", int64(ClassALU64), int64(absint.ClassALU64)},
		{"SizeW", int64(SizeW), int64(absint.SizeW)},
		{"SizeH", int64(SizeH), int64(absint.SizeH)},
		{"SizeB", int64(SizeB), int64(absint.SizeB)},
		{"SizeDW", int64(SizeDW), int64(absint.SizeDW)},
		{"ModeIMM", int64(ModeIMM), int64(absint.ModeIMM)},
		{"ModeMEM", int64(ModeMEM), int64(absint.ModeMEM)},
		{"SrcK", int64(SrcK), int64(absint.SrcK)},
		{"SrcX", int64(SrcX), int64(absint.SrcX)},
		{"OpAdd", int64(OpAdd), int64(absint.OpAdd)},
		{"OpSub", int64(OpSub), int64(absint.OpSub)},
		{"OpMul", int64(OpMul), int64(absint.OpMul)},
		{"OpDiv", int64(OpDiv), int64(absint.OpDiv)},
		{"OpOr", int64(OpOr), int64(absint.OpOr)},
		{"OpAnd", int64(OpAnd), int64(absint.OpAnd)},
		{"OpLsh", int64(OpLsh), int64(absint.OpLsh)},
		{"OpRsh", int64(OpRsh), int64(absint.OpRsh)},
		{"OpNeg", int64(OpNeg), int64(absint.OpNeg)},
		{"OpMod", int64(OpMod), int64(absint.OpMod)},
		{"OpXor", int64(OpXor), int64(absint.OpXor)},
		{"OpMov", int64(OpMov), int64(absint.OpMov)},
		{"OpArsh", int64(OpArsh), int64(absint.OpArsh)},
		{"OpJa", int64(OpJa), int64(absint.OpJa)},
		{"OpJeq", int64(OpJeq), int64(absint.OpJeq)},
		{"OpJgt", int64(OpJgt), int64(absint.OpJgt)},
		{"OpJge", int64(OpJge), int64(absint.OpJge)},
		{"OpJset", int64(OpJset), int64(absint.OpJset)},
		{"OpJne", int64(OpJne), int64(absint.OpJne)},
		{"OpJsgt", int64(OpJsgt), int64(absint.OpJsgt)},
		{"OpJsge", int64(OpJsge), int64(absint.OpJsge)},
		{"OpCall", int64(OpCall), int64(absint.OpCall)},
		{"OpExit", int64(OpExit), int64(absint.OpExit)},
		{"OpJlt", int64(OpJlt), int64(absint.OpJlt)},
		{"OpJle", int64(OpJle), int64(absint.OpJle)},
		{"OpJslt", int64(OpJslt), int64(absint.OpJslt)},
		{"OpJsle", int64(OpJsle), int64(absint.OpJsle)},
		{"OpLdImm64", int64(OpLdImm64), int64(absint.OpLdImm64)},
		{"NumRegisters", int64(numRegisters), int64(absint.NumRegisters)},
		{"RegFP", int64(R10), int64(absint.RegFP)},
		{"StackSize", int64(StackSize), int64(absint.StackSize)},
		{"MaxProgramLen", int64(MaxProgramLen), int64(absint.MaxProgramLen)},
		{"InsnBudget", int64(InsnBudget), int64(absint.InsnBudget)},
	}
	for _, p := range pairs {
		if p.ebpf != p.abst {
			t.Errorf("%s: ebpf %#x != absint %#x", p.name, p.ebpf, p.abst)
		}
	}
}

// evictionScanProgram is the headline program class the analysis
// unlocks: a bounded loop writing every slot of the frame through a
// computed (variable-offset) stack pointer — the shape of a warm-pool
// eviction scan. The structural verifier cannot accept either feature.
func evictionScanProgram() []Instruction {
	b := NewBuilder()
	b.Mov64Imm(R6, 0).
		Label("loop").
		Mov64Reg(R2, R6).
		Lsh64Imm(R2, 3). // r2 = i*8 in [0,504]
		Mov64Reg(R3, R10).
		Add64Imm(R3, -512).
		Add64Reg(R3, R2). // r3 = fp-512+i*8, proven in [fp-512, fp-8]
		StxDW(R3, 0, R6).
		Add64Imm(R6, 1).
		JmpImm(OpJlt, R6, 64, "loop").
		Mov64Reg(R0, R6).
		Exit()
	return b.MustProgram()
}

// TestAbsintEvictionScan is the acceptance test for the two-tier
// verifier: the eviction-scan loop is structurally rejected, accepted
// by the abstract interpreter with an exact worst-case cost, and runs
// identically on both engines (pruned and unpruned).
func TestAbsintEvictionScan(t *testing.T) {
	vm := NewVM()
	insns := evictionScanProgram()

	if err := verifyStructural(insns, vm); err == nil {
		t.Fatal("structural verifier unexpectedly accepted the bounded loop")
	}
	r := vm.Analyze(insns)
	if !r.OK {
		t.Fatalf("analysis rejected: %v", r.Err)
	}
	// 3 straight-line insns + 64 iterations of the 8-insn loop body.
	if want := int64(3 + 64*8); r.WorstCase != want {
		t.Fatalf("worst case %d, want %d", r.WorstCase, want)
	}
	if err := Verify(insns, vm); err != nil {
		t.Fatalf("two-tier Verify rejected: %v", err)
	}

	if got, err := runBoth(t, insns); err != nil {
		t.Fatalf("run: %v", err)
	} else if got != 64 {
		t.Fatalf("got %d, want 64", got)
	}
	SetAbsintPrune(true)
	defer SetAbsintPrune(false)
	if got, err := runBoth(t, insns); err != nil {
		t.Fatalf("pruned run: %v", err)
	} else if got != 64 {
		t.Fatalf("pruned run got %d, want 64", got)
	}
}

// TestAbsintPrunedLoopSkipsBudget checks that a proven-bounded loop
// takes the JIT's no-budget fast path: the block program is compiled,
// marked bounded, and still returns the right answer.
func TestAbsintPrunedLoopSkipsBudget(t *testing.T) {
	vm := NewVM()
	SetAbsintPrune(true)
	defer SetAbsintPrune(false)
	p, err := vm.Load("scan", evictionScanProgram())
	if err != nil {
		t.Fatal(err)
	}
	if p.jit == nil {
		t.Fatal("bounded loop did not compile under pruning")
	}
	if p.jit.acyclic {
		t.Fatal("loop program cannot be acyclic")
	}
	if !p.jit.bounded {
		t.Fatal("proven-bounded loop not marked bounded")
	}
	got, err := p.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 64 {
		t.Fatalf("got %d, want 64", got)
	}
}

// deadRegionProgram jumps over a statically dead region containing an
// instruction the JIT cannot translate (and the structural verifier
// rejects): r1 is forced to 3, so the jeq is always taken.
func deadRegionProgram() []Instruction {
	return []Instruction{
		{Op: ClassALU64 | OpMov | SrcK, Dst: R1, Imm: 3},
		{Op: ClassJMP | OpJeq | SrcK, Dst: R1, Imm: 3, Off: 2},
		// Dead: memory access through a scalar register.
		{Op: ClassLDX | ModeMEM | SizeDW, Dst: R0, Src: R1, Off: 0},
		{Op: ClassJMP | OpExit},
		{Op: ClassALU64 | OpMov | SrcK, Dst: R0, Imm: 9},
		{Op: ClassJMP | OpExit},
	}
}

// TestAbsintPruneDeadRegion: with pruning, a program whose only
// invalid instructions are statically dead compiles to blocks (the
// dead region becomes a stub) and runs identically on both engines.
func TestAbsintPruneDeadRegion(t *testing.T) {
	vm := NewVM()
	insns := deadRegionProgram()
	if err := verifyStructural(insns, vm); err == nil {
		t.Fatal("structural verifier unexpectedly accepted dead invalid code")
	}
	r := vm.Analyze(insns)
	if !r.OK {
		t.Fatalf("analysis rejected: %v", r.Err)
	}
	b, ok := r.Branches[1]
	if !ok || !b.FallDead || b.TakenDead {
		t.Fatalf("expected fall-dead branch fact at pc 1, got %+v (present %v)", b, ok)
	}
	if r.Reachable[2] {
		t.Fatal("dead region marked reachable")
	}

	SetAbsintPrune(true)
	defer SetAbsintPrune(false)
	p, err := vm.Load("dead", insns)
	if err != nil {
		t.Fatal(err)
	}
	if p.jit == nil {
		t.Fatal("program with pruned dead region did not compile")
	}
	got, err := p.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 9 {
		t.Fatalf("got %d, want 9", got)
	}
	if got, err := runBoth(t, insns); err != nil || got != 9 {
		t.Fatalf("engine divergence: got %d, err %v", got, err)
	}
}

// TestAbsintPruneFlattensBranch: a one-sided conditional becomes an
// unconditional edge under pruning; semantics must not change.
func TestAbsintPruneFlattensBranch(t *testing.T) {
	// r1 = 8; jgt r1, 100 is never taken; fall path returns 5.
	insns := []Instruction{
		{Op: ClassALU64 | OpMov | SrcK, Dst: R1, Imm: 8},
		{Op: ClassJMP | OpJgt | SrcK, Dst: R1, Imm: 100, Off: 2},
		{Op: ClassALU64 | OpMov | SrcK, Dst: R0, Imm: 5},
		{Op: ClassJMP | OpExit},
		{Op: ClassALU64 | OpMov | SrcK, Dst: R0, Imm: 6},
		{Op: ClassJMP | OpExit},
	}
	vm := NewVM()
	r := vm.Analyze(insns)
	if !r.OK {
		t.Fatalf("analysis rejected: %v", r.Err)
	}
	if b := r.Branches[1]; !b.TakenDead || b.FallDead {
		t.Fatalf("expected taken-dead fact at pc 1, got %+v", b)
	}
	for _, prune := range []bool{false, true} {
		SetAbsintPrune(prune)
		got, err := runBoth(t, insns)
		SetAbsintPrune(false)
		if err != nil || got != 5 {
			t.Fatalf("prune=%v: got %d, err %v", prune, got, err)
		}
	}
}

// TestInterpBranches checks the branch observation hook: edge order,
// pc values and taken flags for a short two-branch program.
func TestInterpBranches(t *testing.T) {
	// jeq r1, 1 (taken with r1=1), then jgt r1, 5 (not taken).
	insns := []Instruction{
		{Op: ClassJMP | OpJeq | SrcK, Dst: R1, Imm: 1, Off: 1},
		{Op: ClassJMP | OpExit}, // skipped (r0 uninit — never reached)
		{Op: ClassJMP | OpJgt | SrcK, Dst: R1, Imm: 5, Off: 0},
		{Op: ClassALU64 | OpMov | SrcK, Dst: R0, Imm: 3},
		{Op: ClassJMP | OpExit},
	}
	vm := NewVM()
	p := &Program{Name: "hook", insns: insns, vm: vm, Enabled: true}
	p.dec = decodeProgram(insns, vm)
	type edge struct {
		pc    int
		taken bool
	}
	var got []edge
	ret, err := p.InterpBranches(nil, func(pc int, taken bool) {
		got = append(got, edge{pc, taken})
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ret != 3 {
		t.Fatalf("ret %d, want 3", ret)
	}
	want := []edge{{0, true}, {2, false}}
	if len(got) != len(want) {
		t.Fatalf("observed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d: observed %v, want %v", i, got[i], want[i])
		}
	}
}

// TestVerifyRejectsWhatAbsintCannotProve: the two-tier verifier must
// surface the original structural error when the analysis cannot
// prove the program safe — here an unbounded loop and an
// out-of-frame variable store.
func TestVerifyRejectsWhatAbsintCannotProve(t *testing.T) {
	vm := NewVM()
	// An unbounded loop is accepted (the seed contract: dynamic
	// budget termination), but the analysis must report no bound, so
	// the JIT never elides the budget check for it.
	unbounded := []Instruction{
		{Op: ClassALU64 | OpMov | SrcK, Dst: R0, Imm: 0},
		{Op: ClassALU64 | OpAdd | SrcK, Dst: R0, Imm: 1},
		{Op: ClassJMP | OpJa, Off: -2},
		{Op: ClassJMP | OpExit},
	}
	if err := Verify(unbounded, vm); err != nil {
		t.Fatalf("unbounded loop rejected (seed contract allows it): %v", err)
	}
	if r := vm.Analyze(unbounded); r.OK && r.WorstCase != -1 {
		t.Fatalf("unbounded loop got finite worst case %d", r.WorstCase)
	}
	SetAbsintPrune(true)
	p, err := vm.Load("unbounded", unbounded)
	SetAbsintPrune(false)
	if err != nil {
		t.Fatal(err)
	}
	if p.jit != nil && (p.jit.bounded || p.jit.acyclic) {
		t.Fatal("unbounded loop must keep the dynamic budget check")
	}
	if _, err := p.Run(nil); err == nil || !strings.Contains(err.Error(), "instruction budget") {
		t.Fatalf("unbounded loop must die on the budget, got %v", err)
	}

	// The eviction scan with a 66-iteration bound writes past the
	// frame on the last iterations; the analysis must not prove it.
	bad := evictionScanProgram()
	for i, in := range bad {
		if in.Op == ClassJMP|OpJlt|SrcK && in.Imm == 64 {
			bad[i].Imm = 66
		}
	}
	if err := Verify(bad, vm); err == nil {
		t.Fatal("out-of-frame variable store accepted")
	} else if !strings.Contains(err.Error(), "scalar register") {
		// The surfaced error is the structural one.
		t.Fatalf("unexpected error: %v", err)
	}
}

package ebpf

import (
	"fmt"
	"sort"
)

// MapType enumerates the supported eBPF map flavours.
type MapType int

// Supported map types. SnapBPF uses a hash map to capture working-set
// offsets and array maps to carry the grouped prefetch schedule.
const (
	MapTypeHash MapType = iota
	MapTypeArray
)

func (t MapType) String() string {
	switch t {
	case MapTypeHash:
		return "hash"
	case MapTypeArray:
		return "array"
	}
	return fmt.Sprintf("maptype(%d)", int(t))
}

// Map is a kernel eBPF map holding u64 keys and u64 values. Programs
// reach maps through file-descriptor-like handles registered in their
// VM; userspace (the VMM) accesses them directly via the Go API, which
// models the bpf(2) syscall surface.
type Map struct {
	typ        MapType
	name       string
	maxEntries int

	hash map[uint64]uint64
	arr  []uint64
	set  []bool // arr slot occupancy, so Iterate skips unwritten slots

	// Stats for the overheads experiment: userspace updates model the
	// bpf(2) syscall cost of loading offsets into the kernel.
	UserUpdates int64
	ProgUpdates int64
	Lookups     int64
}

// NewMap creates a map of the given type and capacity.
func NewMap(typ MapType, name string, maxEntries int) (*Map, error) {
	if maxEntries <= 0 {
		return nil, fmt.Errorf("ebpf: map %q: max_entries must be positive", name)
	}
	m := &Map{typ: typ, name: name, maxEntries: maxEntries}
	switch typ {
	case MapTypeHash:
		m.hash = make(map[uint64]uint64)
	case MapTypeArray:
		m.arr = make([]uint64, maxEntries)
		m.set = make([]bool, maxEntries)
	default:
		return nil, fmt.Errorf("ebpf: unknown map type %d", typ)
	}
	return m, nil
}

// MustNewMap is NewMap but panics on error.
func MustNewMap(typ MapType, name string, maxEntries int) *Map {
	m, err := NewMap(typ, name, maxEntries)
	if err != nil {
		panic(err)
	}
	return m
}

// Name returns the map name.
func (m *Map) Name() string { return m.name }

// Type returns the map type.
func (m *Map) Type() MapType { return m.typ }

// MaxEntries returns the declared capacity.
func (m *Map) MaxEntries() int { return m.maxEntries }

// Len returns the number of present entries.
func (m *Map) Len() int {
	if m.typ == MapTypeHash {
		return len(m.hash)
	}
	n := 0
	for _, s := range m.set {
		if s {
			n++
		}
	}
	return n
}

// Lookup returns the value for key and whether it is present.
func (m *Map) Lookup(key uint64) (uint64, bool) {
	m.Lookups++
	switch m.typ {
	case MapTypeHash:
		v, ok := m.hash[key]
		return v, ok
	case MapTypeArray:
		if key >= uint64(m.maxEntries) {
			return 0, false
		}
		return m.arr[key], m.set[key]
	}
	return 0, false
}

// Update inserts or replaces key's value. Hash maps reject inserts
// beyond max_entries, as the kernel does (E2BIG).
func (m *Map) Update(key, value uint64) error {
	switch m.typ {
	case MapTypeHash:
		if _, exists := m.hash[key]; !exists && len(m.hash) >= m.maxEntries {
			return fmt.Errorf("ebpf: map %q full (%d entries)", m.name, m.maxEntries)
		}
		m.hash[key] = value
	case MapTypeArray:
		if key >= uint64(m.maxEntries) {
			return fmt.Errorf("ebpf: map %q: index %d out of range", m.name, key)
		}
		m.arr[key] = value
		m.set[key] = true
	}
	return nil
}

// Delete removes key; it reports whether the key was present. Array
// map entries cannot be deleted (as in the kernel); Delete zeroes them.
func (m *Map) Delete(key uint64) bool {
	switch m.typ {
	case MapTypeHash:
		_, ok := m.hash[key]
		delete(m.hash, key)
		return ok
	case MapTypeArray:
		if key >= uint64(m.maxEntries) {
			return false
		}
		had := m.set[key]
		m.arr[key] = 0
		m.set[key] = false
		return had
	}
	return false
}

// Clear removes all entries.
func (m *Map) Clear() {
	switch m.typ {
	case MapTypeHash:
		m.hash = make(map[uint64]uint64)
	case MapTypeArray:
		for i := range m.arr {
			m.arr[i] = 0
			m.set[i] = false
		}
	}
}

// Entry is a key/value pair from a map dump.
type Entry struct{ Key, Value uint64 }

// Entries returns all present entries sorted by key, modelling
// userspace iteration with BPF_MAP_GET_NEXT_KEY.
func (m *Map) Entries() []Entry {
	var out []Entry
	switch m.typ {
	case MapTypeHash:
		for k, v := range m.hash {
			out = append(out, Entry{k, v})
		}
	case MapTypeArray:
		for i, ok := range m.set {
			if ok {
				out = append(out, Entry{uint64(i), m.arr[i]})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

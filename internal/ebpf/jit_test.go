package ebpf

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// Differential tests for the template JIT: every observable of a run —
// R0, the error text, the final register file, the map contents, the
// helper call sequence (via a recording kfunc, a counting clock and the
// trace log) and the Runs counter — must be identical between the JIT
// and the reference interpreter for every program the verifier accepts.

// kfuncProbe is a test-only kfunc id used to record call sequences.
const kfuncProbe = KfuncBase + 77

// engineEnv is one VM prepared for a differential run: a registered
// hash map, a deterministic counting clock, a recording kfunc and a
// recording trace log.
type engineEnv struct {
	vm     *VM
	fd     int32
	m      *Map
	calls  []uint64 // kfuncProbe's observed first arguments
	ticks  uint64   // counting clock state
	printk []string
}

func newEngineEnv(t testing.TB) *engineEnv {
	t.Helper()
	e := &engineEnv{vm: NewVM()}
	e.m = MustNewMap(MapTypeHash, "diff", 1024)
	e.fd = e.vm.RegisterMap(e.m)
	e.vm.SetClock(func() uint64 {
		e.ticks++
		return e.ticks * 1000
	})
	e.vm.TraceLog = func(msg string) { e.printk = append(e.printk, msg) }
	e.vm.MustRegisterHelper(kfuncProbe, "probe", func(ctx *CallContext, args [5]uint64) (uint64, error) {
		e.calls = append(e.calls, args[0])
		return args[0]*3 + uint64(len(e.calls)), nil
	})
	return e
}

// runBoth loads insns into two identical environments, executes the
// program on the JIT (via Run) in one and on the interpreter (via
// Interp) in the other, and fails the test on any observable
// difference. It returns the common R0/err pair.
func runBoth(t testing.TB, insns []Instruction, args ...uint64) (uint64, error) {
	t.Helper()
	je, ie := newEngineEnv(t), newEngineEnv(t)
	jp, jerr := je.vm.Load("diff", insns)
	ip, ierr := ie.vm.Load("diff", insns)
	if (jerr == nil) != (ierr == nil) {
		t.Fatalf("load disagreement: jit=%v interp=%v", jerr, ierr)
	}
	if jerr != nil {
		t.Fatalf("load: %v", jerr)
	}

	jr0, jRunErr := jp.Run(nil, args...)
	ir0, iRunErr := ip.Interp(nil, args...)

	if (jRunErr == nil) != (iRunErr == nil) ||
		(jRunErr != nil && jRunErr.Error() != iRunErr.Error()) {
		t.Fatalf("error disagreement:\n  jit:    %v\n  interp: %v\n%s",
			jRunErr, iRunErr, Disassemble(insns))
	}
	if jRunErr == nil {
		if jr0 != ir0 {
			t.Fatalf("R0 disagreement: jit=%#x interp=%#x\n%s", jr0, ir0, Disassemble(insns))
		}
		if jp.scratch.regs != ip.scratch.regs {
			t.Fatalf("final register files differ:\n  jit:    %#x\n  interp: %#x\n%s",
				jp.scratch.regs, ip.scratch.regs, Disassemble(insns))
		}
	}
	if jp.Runs() != ip.Runs() {
		t.Fatalf("Runs disagreement: jit=%d interp=%d", jp.Runs(), ip.Runs())
	}
	if je.ticks != ie.ticks {
		t.Fatalf("clock call count disagreement: jit=%d interp=%d", je.ticks, ie.ticks)
	}
	if fmt.Sprint(je.calls) != fmt.Sprint(ie.calls) {
		t.Fatalf("kfunc call sequence disagreement:\n  jit:    %v\n  interp: %v",
			je.calls, ie.calls)
	}
	if fmt.Sprint(je.printk) != fmt.Sprint(ie.printk) {
		t.Fatalf("trace log disagreement:\n  jit:    %q\n  interp: %q", je.printk, ie.printk)
	}
	jm, im := je.m.Entries(), ie.m.Entries()
	if fmt.Sprint(jm) != fmt.Sprint(im) {
		t.Fatalf("map state disagreement:\n  jit:    %v\n  interp: %v", jm, im)
	}
	return jr0, jRunErr
}

func TestParseEngine(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Engine
		ok   bool
	}{
		{"", EngineJIT, true},
		{"jit", EngineJIT, true},
		{"interp", EngineInterp, true},
		{"interpreter", EngineInterp, true},
		{"llvm", EngineJIT, false},
	} {
		got, err := ParseEngine(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseEngine(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	if EngineJIT.String() != "jit" || EngineInterp.String() != "interp" {
		t.Errorf("engine names: %q %q", EngineJIT.String(), EngineInterp.String())
	}
}

// TestEngineKnob checks that Load honors the default-engine selection.
func TestEngineKnob(t *testing.T) {
	defer SetDefaultEngine(EngineJIT)
	insns := benchProgram()

	SetDefaultEngine(EngineInterp)
	if DefaultEngine() != EngineInterp {
		t.Fatal("SetDefaultEngine(EngineInterp) did not take")
	}
	p := NewVM().MustLoad("knob", insns)
	if p.jit != nil {
		t.Fatal("interp engine still compiled a JIT program")
	}

	SetDefaultEngine(EngineJIT)
	p = NewVM().MustLoad("knob", insns)
	if p.jit == nil {
		t.Fatal("jit engine did not compile the bench program")
	}
}

// TestEnginesAgreeAllOpcodes asserts that every opcode the verifier
// accepts is implemented by both engines and produces identical
// results: each table entry is a minimal verifiable program exercising
// one (class, op, operand-mode) combination, and each must compile to
// the JIT form (no silent interpreter fallback for supported opcodes).
func TestEnginesAgreeAllOpcodes(t *testing.T) {
	// Operand values chosen to expose sign-extension, truncation and
	// shift-masking differences: a negative 32-bit pattern, a value
	// with high bits set, and a small positive.
	const a, b = 0xffff_fff0_8000_0011, 7

	type alu struct {
		name string
		op   uint8
	}
	alus := []alu{
		{"add", OpAdd}, {"sub", OpSub}, {"mul", OpMul}, {"div", OpDiv},
		{"or", OpOr}, {"and", OpAnd}, {"lsh", OpLsh}, {"rsh", OpRsh},
		{"mod", OpMod}, {"xor", OpXor}, {"mov", OpMov}, {"arsh", OpArsh},
	}
	for _, cls := range []struct {
		name  string
		class uint8
	}{{"alu64", ClassALU64}, {"alu32", ClassALU}} {
		for _, op := range alus {
			for _, src := range []struct {
				name string
				bit  uint8
			}{{"imm", SrcK}, {"reg", SrcX}} {
				insns := []Instruction{
					{Op: ClassALU64 | OpMov | SrcK, Dst: R1, Imm: 0x11}, // overwritten by args below
					{Op: cls.class | op.op | src.bit, Dst: R1, Src: R2, Imm: 13},
					{Op: ClassALU64 | OpMov | SrcX, Dst: R0, Src: R1},
					{Op: ClassJMP | OpExit},
				}
				t.Run(cls.name+"/"+op.name+"/"+src.name, func(t *testing.T) {
					assertJITCompiled(t, insns)
					runBoth(t, insns, a, b)
					runBoth(t, insns, b, a)
				})
			}
		}
		// neg has no source operand.
		insns := []Instruction{
			{Op: cls.class | OpNeg, Dst: R1},
			{Op: ClassALU64 | OpMov | SrcX, Dst: R0, Src: R1},
			{Op: ClassJMP | OpExit},
		}
		t.Run(cls.name+"/neg", func(t *testing.T) {
			assertJITCompiled(t, insns)
			runBoth(t, insns, a)
			runBoth(t, insns, b)
		})
	}

	jmps := []alu{
		{"jeq", OpJeq}, {"jgt", OpJgt}, {"jge", OpJge}, {"jset", OpJset},
		{"jne", OpJne}, {"jsgt", OpJsgt}, {"jsge", OpJsge}, {"jlt", OpJlt},
		{"jle", OpJle}, {"jslt", OpJslt}, {"jsle", OpJsle},
	}
	for _, cls := range []struct {
		name  string
		class uint8
	}{{"jmp", ClassJMP}, {"jmp32", ClassJMP32}} {
		for _, op := range jmps {
			for _, src := range []struct {
				name string
				bit  uint8
			}{{"imm", SrcK}, {"reg", SrcX}} {
				insns := []Instruction{
					{Op: cls.class | op.op | src.bit, Dst: R1, Src: R2, Imm: -5, Off: 2},
					{Op: ClassALU64 | OpMov | SrcK, Dst: R0, Imm: 1},
					{Op: ClassJMP | OpExit},
					{Op: ClassALU64 | OpMov | SrcK, Dst: R0, Imm: 2},
					{Op: ClassJMP | OpExit},
				}
				t.Run(cls.name+"/"+op.name+"/"+src.name, func(t *testing.T) {
					assertJITCompiled(t, insns)
					for _, pair := range [][2]uint64{
						{a, b}, {b, a}, {a, a},
						{0xffff_ffff, 0x1_0000_0001}, // equal low words, unequal values
						{0x8000_0000, 5},             // negative as int32, positive as int64
					} {
						runBoth(t, insns, pair[0], pair[1])
					}
				})
			}
		}
	}

	t.Run("ja", func(t *testing.T) {
		insns := []Instruction{
			{Op: ClassJMP | OpJa, Off: 2},
			{Op: ClassALU64 | OpMov | SrcK, Dst: R0, Imm: 1},
			{Op: ClassJMP | OpExit},
			{Op: ClassALU64 | OpMov | SrcK, Dst: R0, Imm: 2},
			{Op: ClassJMP | OpExit},
		}
		assertJITCompiled(t, insns)
		runBoth(t, insns)
	})

	t.Run("lddw", func(t *testing.T) {
		insns := []Instruction{
			{Op: OpLdImm64, Dst: R0, Imm: int32(-1)},
			{Imm: int32(0x7eadbeef)},
			{Op: ClassJMP | OpExit},
		}
		assertJITCompiled(t, insns)
		if r0, _ := runBoth(t, insns); r0 != 0x7eadbeef_ffffffff {
			t.Fatalf("lddw reassembly: got %#x", r0)
		}
	})

	// Memory: every access width, fp-relative (static form) and via a
	// copied frame pointer (dynamic form with runtime bounds checks).
	for _, sz := range []struct {
		name string
		bits uint8
	}{{"b", SizeB}, {"h", SizeH}, {"w", SizeW}, {"dw", SizeDW}} {
		t.Run("mem/fp/"+sz.name, func(t *testing.T) {
			insns := []Instruction{
				{Op: ClassSTX | ModeMEM | sz.bits, Dst: R10, Src: R1, Off: -16},
				{Op: ClassST | ModeMEM | sz.bits, Dst: R10, Off: -32, Imm: -2},
				{Op: ClassLDX | ModeMEM | sz.bits, Dst: R0, Src: R10, Off: -16},
				{Op: ClassLDX | ModeMEM | sz.bits, Dst: R3, Src: R10, Off: -32},
				{Op: ClassALU64 | OpAdd | SrcX, Dst: R0, Src: R3},
				{Op: ClassJMP | OpExit},
			}
			assertJITCompiled(t, insns)
			runBoth(t, insns, a)
		})
		t.Run("mem/dyn/"+sz.name, func(t *testing.T) {
			insns := []Instruction{
				{Op: ClassALU64 | OpMov | SrcX, Dst: R2, Src: R10},
				{Op: ClassALU64 | OpAdd | SrcK, Dst: R2, Imm: -64},
				{Op: ClassSTX | ModeMEM | sz.bits, Dst: R2, Src: R1, Off: 8},
				{Op: ClassLDX | ModeMEM | sz.bits, Dst: R0, Src: R2, Off: 8},
				{Op: ClassJMP | OpExit},
			}
			assertJITCompiled(t, insns)
			runBoth(t, insns, a)
		})
	}

	t.Run("call", func(t *testing.T) {
		insns := []Instruction{
			{Op: ClassALU64 | OpMov | SrcX, Dst: R1, Src: R2},
			{Op: ClassJMP | OpCall, Imm: kfuncProbe},
			{Op: ClassJMP | OpExit},
		}
		assertJITCompiled(t, insns)
		runBoth(t, insns, 1, 42)
	})
}

func assertJITCompiled(t *testing.T, insns []Instruction) {
	t.Helper()
	e := newEngineEnv(t)
	p, err := e.vm.Load("opcode", insns)
	if err != nil {
		t.Fatalf("verifier rejected the test program: %v\n%s", err, Disassemble(insns))
	}
	if p.jit == nil {
		t.Fatalf("verifier-accepted program did not JIT-compile\n%s", Disassemble(insns))
	}
}

// TestEnginesAgreeHelperIdioms covers the capture/prefetch program
// shapes: fused map-helper preambles, kfunc calls with register
// arguments and the self-disable tail.
func TestEnginesAgreeHelperIdioms(t *testing.T) {
	t.Run("mapUpdateLookup", func(t *testing.T) {
		// runBoth environments register the map under the same fd.
		fd := newEngineEnv(t).fd
		insns := mapHelperProgram(fd)
		assertJITCompiled(t, insns)
		runBoth(t, insns, 3, 99)
		runBoth(t, insns, 0, 0)
	})
	t.Run("captureShaped", func(t *testing.T) {
		insns := benchProgram()
		assertJITCompiled(t, insns)
		runBoth(t, insns, 1, 17)
		runBoth(t, insns, 2, 17) // filter miss path
	})
	t.Run("ktimeAndPrintk", func(t *testing.T) {
		b := NewBuilder()
		b.Call(HelperKtimeGetNS).
			Mov64Reg(R6, R0).
			Call(HelperKtimeGetNS).
			Add64Reg(R0, R6).
			Exit()
		insns := b.MustProgram()
		assertJITCompiled(t, insns)
		runBoth(t, insns)
	})
	t.Run("kfuncRegArg", func(t *testing.T) {
		// Prefetch-shaped: the kfunc argument is a register copy, not a
		// constant — exercises the argReg spec and the full stack wipe.
		b := NewBuilder()
		b.Mov64Reg(R6, R1).
			Add64Imm(R6, 5).
			Mov64Reg(R1, R6).
			Raw(Instruction{Op: ClassJMP | OpCall, Imm: kfuncProbe}).
			Exit()
		insns := b.MustProgram()
		assertJITCompiled(t, insns)
		runBoth(t, insns, 11)
	})
}

// TestEnginesAgreeBudgetExhaustion: an infinite loop must abort with
// the identical instruction-budget error on both engines — the JIT
// charges the budget per block and hands the tail to the interpreter.
func TestEnginesAgreeBudgetExhaustion(t *testing.T) {
	insns := []Instruction{
		{Op: ClassALU64 | OpMov | SrcK, Dst: R0, Imm: 0},
		{Op: ClassALU64 | OpAdd | SrcK, Dst: R0, Imm: 1},
		{Op: ClassJMP | OpJa, Off: -2},
		{Op: ClassJMP | OpExit},
	}
	assertJITCompiled(t, insns)
	_, err := runBoth(t, insns)
	if err == nil || !strings.Contains(err.Error(), "instruction budget") {
		t.Fatalf("want budget abort, got %v", err)
	}
}

// TestEnginesAgreeNearBudget runs a loop whose instruction count lands
// close to InsnBudget so the last blocks execute through the
// interpreter fallback, then exits normally: the fallback must not
// change the result.
func TestEnginesAgreeNearBudget(t *testing.T) {
	// sum(1..N) with 4 instructions per iteration; N chosen so the
	// total lands within a few blocks of the budget.
	n := int32(InsnBudget/4 - 2)
	insns := []Instruction{
		{Op: ClassALU64 | OpMov | SrcK, Dst: R0, Imm: 0},
		{Op: ClassALU64 | OpMov | SrcK, Dst: R2, Imm: 0},
		{Op: ClassALU64 | OpMov | SrcK, Dst: R1, Imm: n},
		{Op: ClassJMP | OpJge | SrcX, Dst: R2, Src: R1, Off: 3},
		{Op: ClassALU64 | OpAdd | SrcK, Dst: R2, Imm: 1},
		{Op: ClassALU64 | OpAdd | SrcX, Dst: R0, Src: R2},
		{Op: ClassJMP | OpJa, Off: -4},
		{Op: ClassJMP | OpExit},
	}
	assertJITCompiled(t, insns)
	want := uint64(n) * uint64(n+1) / 2
	if r0, err := runBoth(t, insns); err != nil || r0 != want {
		t.Fatalf("near-budget loop: got %d, %v; want %d", r0, err, want)
	}
}

// TestJITScratchReuse: the span-based stack wipe must leave reruns
// indistinguishable from fresh frames — a read of a slot the previous
// run dirtied (but which this program can also read) sees zero.
func TestJITScratchReuse(t *testing.T) {
	// Writes fp-8, reads fp-16: the wipe span covers the read; the
	// write slot may stay dirty but is unreadable.
	insns := []Instruction{
		{Op: ClassSTX | ModeMEM | SizeDW, Dst: R10, Src: R1, Off: -8},
		{Op: ClassLDX | ModeMEM | SizeDW, Dst: R0, Src: R10, Off: -16},
		{Op: ClassJMP | OpExit},
	}
	e := newEngineEnv(t)
	p, err := e.vm.Load("reuse", insns)
	if err != nil {
		t.Fatal(err)
	}
	if p.jit == nil {
		t.Fatal("did not compile")
	}
	if p.jit.zeroFrom <= 0 || p.jit.zeroFrom > StackSize-16 {
		t.Fatalf("zeroFrom = %d; want a value covering the fp-16 read", p.jit.zeroFrom)
	}
	for i := 0; i < 4; i++ {
		r0, err := p.Run(nil, 0xffff_ffff_ffff_ffff)
		if err != nil {
			t.Fatal(err)
		}
		if r0 != 0 {
			t.Fatalf("run %d: read %#x from a slot that must be zero", i, r0)
		}
	}
	// Interleave an interpreter run (full wipe) and repeat.
	if r0, err := p.Interp(nil, 0xdead); err != nil || r0 != 0 {
		t.Fatalf("interp run: %d, %v", r0, err)
	}
	if r0, err := p.Run(nil, 0xbeef); err != nil || r0 != 0 {
		t.Fatalf("post-interp jit run: %d, %v", r0, err)
	}
}

// TestJITCompilesRandomVerifiablePrograms: everything the generator
// produces that passes the verifier must either compile or fall back,
// and in both cases agree with the interpreter.
func TestJITCompilesRandomVerifiablePrograms(t *testing.T) {
	scratch := newEngineEnv(t)
	const trials = 3000
	accepted, compiled := 0, 0
	for seed := int64(0); seed < trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		insns := randomProgram(rng, scratch.fd)
		if Verify(insns, scratch.vm) != nil {
			continue
		}
		accepted++
		je := newEngineEnv(t)
		if p, err := je.vm.Load("rand", insns); err == nil && p.jit != nil {
			compiled++
		}
		runBoth(t, insns, rng.Uint64(), rng.Uint64())
	}
	if accepted == 0 {
		t.Fatal("generator produced no verifiable programs")
	}
	if compiled == 0 {
		t.Fatal("no accepted program JIT-compiled")
	}
	t.Logf("differential: %d/%d accepted, %d jitted", accepted, trials, compiled)
}

// FuzzJITvsInterp is the native differential fuzz target behind the
// tests above: arbitrary bytes decode into an instruction stream; when
// the verifier accepts it, the JIT and the interpreter must agree on
// every observable. The seed corpus covers the capture/prefetch-shaped
// programs, the helper idioms and a spread of generator output (the
// same families FuzzVerifier seeds with, so known verifier crashers
// double as engine-equivalence inputs).
func FuzzJITvsInterp(f *testing.F) {
	seedEnv := newEngineEnv(f)
	addProgram := func(insns []Instruction) {
		if data, err := MarshalInstructions(insns); err == nil {
			f.Add(data)
		}
	}
	addProgram(benchProgram())
	addProgram(mapHelperProgram(seedEnv.fd))
	addProgram([]Instruction{
		{Op: ClassALU64 | OpMov | SrcK, Dst: R0, Imm: 0},
		{Op: ClassJMP | OpExit},
	})
	addProgram([]Instruction{
		{Op: ClassALU64 | OpMov | SrcX, Dst: R1, Src: R2},
		{Op: ClassJMP | OpCall, Imm: kfuncProbe},
		{Op: ClassJMP | OpExit},
	})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 24; i++ {
		addProgram(randomProgram(rng, seedEnv.fd))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		insns, err := UnmarshalInstructions(data)
		if err != nil {
			return
		}
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %d-instruction stream: %v\n%s", len(insns), r, Disassemble(insns))
			}
		}()
		if Verify(insns, seedEnv.vm) != nil {
			return
		}
		runBoth(t, insns, 1, 2)
	})
}

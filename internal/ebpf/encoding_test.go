package ebpf

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMarshalRoundTrip(t *testing.T) {
	insns := NewBuilder().
		Mov64Imm(R0, -7).
		LdImm64(R6, 0xdead_beef_0000_0001).
		StxDW(R10, -8, R6).
		LdxDW(R2, R10, -8).
		JmpImm(OpJeq, R2, 5, "end").
		Add64Reg(R0, R2).
		Label("end").
		Exit().
		MustProgram()
	data, err := MarshalInstructions(insns)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != len(insns)*InstructionSize {
		t.Fatalf("size = %d", len(data))
	}
	got, err := UnmarshalInstructions(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range insns {
		if got[i] != insns[i] {
			t.Fatalf("insn %d: %+v != %+v", i, got[i], insns[i])
		}
	}
}

func TestMarshalRoundTripProperty(t *testing.T) {
	f := func(op, regs uint8, off int16, imm int32) bool {
		in := Instruction{Op: op, Dst: Register(regs & 0x0f), Src: Register(regs >> 4 & 0x0f), Off: off, Imm: imm}
		data, err := MarshalInstructions([]Instruction{in})
		if err != nil {
			return false
		}
		got, err := UnmarshalInstructions(data)
		if err != nil {
			return false
		}
		return got[0] == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalBadSize(t *testing.T) {
	if _, err := UnmarshalInstructions(make([]byte, 7)); err == nil {
		t.Fatal("odd-sized program accepted")
	}
}

func TestMarshalRejectsBadRegister(t *testing.T) {
	if _, err := MarshalInstructions([]Instruction{{Dst: 16}}); err == nil {
		t.Fatal("register 16 encoded")
	}
}

func TestProgramFileRoundTrip(t *testing.T) {
	insns := NewBuilder().Mov64Imm(R0, 1).Exit().MustProgram()
	var buf bytes.Buffer
	if err := WriteProgram(&buf, insns); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProgram(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != insns[0] {
		t.Fatalf("got %+v", got)
	}
}

func TestReadProgramBadMagic(t *testing.T) {
	if _, err := ReadProgram(bytes.NewReader(make([]byte, 32))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReadProgramTruncated(t *testing.T) {
	insns := NewBuilder().Mov64Imm(R0, 1).Exit().MustProgram()
	var buf bytes.Buffer
	if err := WriteProgram(&buf, insns); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadProgram(bytes.NewReader(buf.Bytes()[:buf.Len()-4])); err == nil {
		t.Fatal("truncated program accepted")
	}
}

func TestDecodedProgramStillVerifiesAndRuns(t *testing.T) {
	insns := NewBuilder().
		Mov64Reg(R0, R1).
		Mul64Imm(R0, 3).
		Exit().
		MustProgram()
	data, err := MarshalInstructions(insns)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := UnmarshalInstructions(data)
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM()
	prog, err := vm.Load("decoded", decoded)
	if err != nil {
		t.Fatal(err)
	}
	got, err := prog.Run(nil, 14)
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("got %d", got)
	}
}

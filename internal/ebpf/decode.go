package ebpf

// Pre-decoded instruction cache. The raw 8-byte eBPF encoding packs the
// class, operation, operand mode and access width into bit fields that
// the interpreter would otherwise re-extract on every executed step —
// and a kprobe-dispatched program runs once per page-cache insertion,
// so those masks are genuinely hot. Load decodes each instruction
// exactly once into the flat form below; the dispatch loop in vm.go
// switches on a single pre-computed kind and reads resolved fields.

// decKind discriminates the decoded execution forms.
type decKind uint8

const (
	decALU64 decKind = iota
	decALU32
	decLdImm64 // both lddw slots collapsed; imm64 holds the value
	decLdImm64Hi
	decLdx
	decStx
	decSt
	decJa
	decCall
	decExit
	decJump
	decJump32
	decInvalid
)

// decoded is one pre-decoded instruction. Fields are resolved at Load
// time: the sign-extended immediate, the memory access width, the full
// 64-bit lddw value, and — for calls — the helper implementation
// itself, so the dispatch loop performs no map lookups.
type decoded struct {
	kind   decKind
	op     uint8 // ALU/JMP operation bits
	regSrc bool  // operand is a register, not the immediate
	dst    uint8
	src    uint8
	size   uint8  // memory access width in bytes (LDX/ST/STX)
	off    int32  // memory offset, or jump displacement (already +1)
	imm    int64  // sign-extended immediate
	imm64  uint64 // resolved lddw value
	helper HelperFunc
	hname  string // helper name for error messages
	hid    int32  // raw helper id, kept for unresolved-call errors
}

// decodeProgram translates verified program text into the decoded
// form. Helper ids are resolved against the VM's registry; an id the
// registry cannot resolve (impossible for a verified program, but kept
// defensive) decodes with a nil helper and fails at execution time.
// The result is slot-aligned with insns so jump offsets need no
// remapping; the second slot of a lddw decodes to decLdImm64Hi, which
// the verifier guarantees is never a jump target.
func decodeProgram(insns []Instruction, vm *VM) []decoded {
	dec := make([]decoded, len(insns))
	for pc := 0; pc < len(insns); pc++ {
		in := insns[pc]
		d := &dec[pc]
		d.op = in.aluOp()
		d.regSrc = in.usesRegSrc()
		d.dst = uint8(in.Dst)
		d.src = uint8(in.Src)
		d.imm = int64(in.Imm) // sign-extended once

		switch in.Class() {
		case ClassALU64:
			d.kind = decALU64
		case ClassALU:
			d.kind = decALU32
		case ClassLD:
			if in.Op != OpLdImm64 || pc+1 >= len(insns) {
				d.kind = decInvalid
				continue
			}
			d.kind = decLdImm64
			d.imm64 = uint64(uint32(in.Imm)) | uint64(uint32(insns[pc+1].Imm))<<32
			dec[pc+1].kind = decLdImm64Hi
			pc++ // the hi slot is fully decoded; skip it
		case ClassLDX:
			d.kind = decLdx
			d.size = uint8(in.size())
			d.off = int32(in.Off)
		case ClassSTX:
			d.kind = decStx
			d.size = uint8(in.size())
			d.off = int32(in.Off)
		case ClassST:
			d.kind = decSt
			d.size = uint8(in.size())
			d.off = int32(in.Off)
		case ClassJMP, ClassJMP32:
			d.off = 1 + int32(in.Off)
			switch in.aluOp() {
			case OpExit:
				d.kind = decExit
			case OpCall:
				d.kind = decCall
				d.hid = in.Imm
				if h, ok := vm.helpers[in.Imm]; ok {
					d.helper = h.Fn
					d.hname = h.Name
				}
			case OpJa:
				d.kind = decJa
			default:
				if in.Class() == ClassJMP32 {
					d.kind = decJump32
				} else {
					d.kind = decJump
				}
			}
		default:
			d.kind = decInvalid
		}
	}
	return dec
}

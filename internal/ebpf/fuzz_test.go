package ebpf

import (
	"math/rand"
	"strings"
	"testing"
)

// TestVerifierSoundness is the contract the kernel's verifier makes:
// any program it accepts executes without memory-safety violations.
// We generate random instruction streams; whenever Verify accepts one,
// running it must only ever fail with the instruction-budget abort
// (runtime termination is enforced dynamically), never with a stack
// bounds error, an unknown opcode, a bad helper, or a wild pc.
func TestVerifierSoundness(t *testing.T) {
	vm := NewVM()
	m := MustNewMap(MapTypeHash, "fuzz", 1024)
	fd := vm.RegisterMap(m)

	const trials = 4000
	accepted, executed := 0, 0
	for seed := int64(0); seed < trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		insns := randomProgram(rng, fd)
		if err := Verify(insns, vm); err != nil {
			continue
		}
		accepted++
		prog := &Program{Name: "fuzz", insns: insns, vm: vm, Enabled: true}
		_, err := prog.Run(nil, rng.Uint64(), rng.Uint64())
		if err == nil {
			executed++
			continue
		}
		if strings.Contains(err.Error(), "instruction budget") {
			continue // dynamic termination: allowed
		}
		t.Fatalf("seed %d: verifier accepted a program that failed at runtime: %v\n%s",
			seed, err, Disassemble(insns))
	}
	if accepted == 0 {
		t.Fatal("fuzzer generated no verifiable programs; generator too wild")
	}
	if executed == 0 {
		t.Fatal("no accepted program ran to completion")
	}
	t.Logf("fuzz: %d/%d accepted, %d ran to exit", accepted, trials, executed)
}

// randomProgram emits a random but loosely-shaped instruction stream:
// mostly well-formed instructions over random registers/offsets, with
// a guaranteed trailing exit so some programs terminate.
func randomProgram(rng *rand.Rand, mapFD int32) []Instruction {
	n := 2 + rng.Intn(12)
	insns := make([]Instruction, 0, n+2)
	aluOps := []uint8{OpAdd, OpSub, OpMul, OpDiv, OpOr, OpAnd, OpLsh, OpRsh, OpMod, OpXor, OpMov, OpArsh, OpNeg}
	jmpOps := []uint8{OpJeq, OpJgt, OpJge, OpJset, OpJne, OpJsgt, OpJsge, OpJlt, OpJle, OpJslt, OpJsle}
	reg := func() Register { return Register(rng.Intn(11)) }
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // alu
			op := aluOps[rng.Intn(len(aluOps))]
			cls := uint8(ClassALU64)
			if rng.Intn(3) == 0 {
				cls = ClassALU
			}
			src := uint8(SrcK)
			if rng.Intn(2) == 0 {
				src = SrcX
			}
			insns = append(insns, Instruction{
				Op: cls | op | src, Dst: reg(), Src: reg(),
				Imm: int32(rng.Intn(64)) - 8,
			})
		case 4: // store
			insns = append(insns, Instruction{
				Op:  ClassSTX | ModeMEM | SizeDW,
				Dst: R10, Src: reg(), Off: int16(-8 * (1 + rng.Intn(64))),
			})
		case 5: // load
			insns = append(insns, Instruction{
				Op:  ClassLDX | ModeMEM | SizeDW,
				Dst: reg(), Src: R10, Off: int16(-8 * (1 + rng.Intn(64))),
			})
		case 6: // jump
			op := jmpOps[rng.Intn(len(jmpOps))]
			cls := uint8(ClassJMP)
			if rng.Intn(4) == 0 {
				cls = ClassJMP32
			}
			insns = append(insns, Instruction{
				Op: cls | op | SrcK, Dst: reg(),
				Imm: int32(rng.Intn(16)),
				Off: int16(rng.Intn(9) - 4), // forward and backward
			})
		case 7: // helper call (map update with pointers to stack)
			insns = append(insns,
				Instruction{Op: ClassST | ModeMEM | SizeDW, Dst: R10, Off: -8, Imm: int32(rng.Intn(100))},
				Instruction{Op: ClassST | ModeMEM | SizeDW, Dst: R10, Off: -16, Imm: int32(rng.Intn(100))},
				Instruction{Op: ClassALU64 | OpMov | SrcK, Dst: R1, Imm: mapFD},
				Instruction{Op: ClassALU64 | OpMov | SrcX, Dst: R2, Src: R10},
				Instruction{Op: ClassALU64 | OpAdd | SrcK, Dst: R2, Imm: -8},
				Instruction{Op: ClassALU64 | OpMov | SrcX, Dst: R3, Src: R10},
				Instruction{Op: ClassALU64 | OpAdd | SrcK, Dst: R3, Imm: -16},
				Instruction{Op: ClassJMP | OpCall, Imm: HelperMapUpdateElem},
			)
		case 8: // lddw
			insns = append(insns,
				Instruction{Op: OpLdImm64, Dst: reg(), Imm: int32(rng.Uint32())},
				Instruction{Op: 0, Imm: int32(rng.Uint32())},
			)
		case 9: // early exit path
			insns = append(insns,
				Instruction{Op: ClassALU64 | OpMov | SrcK, Dst: R0, Imm: 1},
				Instruction{Op: ClassJMP | OpExit},
			)
		}
	}
	insns = append(insns,
		Instruction{Op: ClassALU64 | OpMov | SrcK, Dst: R0, Imm: 0},
		Instruction{Op: ClassJMP | OpExit},
	)
	return insns
}

// TestVerifierRejectsMutatedValidPrograms mutates a known-good program
// byte-wise; Verify may accept or reject, but accepted mutants must
// still run safely (a second soundness angle: bit flips, not
// generation).
func TestVerifierRejectsMutatedValidPrograms(t *testing.T) {
	vm := NewVM()
	base := benchProgram()
	data, err := MarshalInstructions(base)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 2000; trial++ {
		mut := append([]byte(nil), data...)
		for flips := 0; flips < 1+rng.Intn(3); flips++ {
			mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		}
		insns, err := UnmarshalInstructions(mut)
		if err != nil {
			continue
		}
		if err := Verify(insns, vm); err != nil {
			continue
		}
		prog := &Program{Name: "mut", insns: insns, vm: vm, Enabled: true}
		if _, err := prog.Run(nil, 1, 2); err != nil &&
			!strings.Contains(err.Error(), "instruction budget") {
			t.Fatalf("trial %d: accepted mutant failed at runtime: %v\n%s",
				trial, err, Disassemble(insns))
		}
	}
}

// FuzzVerifier is the native fuzz target behind the two tests above:
// arbitrary bytes are decoded into an instruction stream and verified.
// Verify must never panic — malformed streams produce verification
// errors — and anything it accepts must run without memory-safety
// violations (only the dynamic instruction-budget abort is allowed).
// The seed corpus covers the marshalled bench program, a trivial
// return, and a spread of generator output.
func FuzzVerifier(f *testing.F) {
	vm := NewVM()
	m := MustNewMap(MapTypeHash, "fuzz", 1024)
	fd := vm.RegisterMap(m)

	addProgram := func(insns []Instruction) {
		if data, err := MarshalInstructions(insns); err == nil {
			f.Add(data)
		}
	}
	addProgram(benchProgram())
	addProgram([]Instruction{
		{Op: ClassALU64 | OpMov | SrcK, Dst: R0, Imm: 0},
		{Op: ClassJMP | OpExit},
	})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 16; i++ {
		addProgram(randomProgram(rng, fd))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		insns, err := UnmarshalInstructions(data)
		if err != nil {
			return
		}
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %d-instruction stream: %v", len(insns), r)
			}
		}()
		if err := Verify(insns, vm); err != nil {
			return
		}
		prog := &Program{Name: "fuzz", insns: insns, vm: vm, Enabled: true}
		if _, err := prog.Run(nil, 1, 2); err != nil &&
			!strings.Contains(err.Error(), "instruction budget") {
			t.Fatalf("verifier accepted a program that failed at runtime: %v\n%s",
				err, Disassemble(insns))
		}
	})
}

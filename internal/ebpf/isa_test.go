package ebpf

import (
	"strings"
	"testing"
)

func TestDisassembleAllForms(t *testing.T) {
	cases := []struct {
		in   Instruction
		want string
	}{
		{Instruction{Op: ClassALU64 | OpMov | SrcK, Dst: R0, Imm: 5}, "mov r0, #5"},
		{Instruction{Op: ClassALU64 | OpMov | SrcX, Dst: R0, Src: R1}, "mov r0, r1"},
		{Instruction{Op: ClassALU | OpAdd | SrcK, Dst: R2, Imm: 1}, "add32 r2, #1"},
		{Instruction{Op: ClassALU64 | OpNeg, Dst: R3}, "neg r3"},
		{Instruction{Op: ClassALU64 | OpDiv | SrcK, Dst: R1, Imm: 2}, "div r1, #2"},
		{Instruction{Op: ClassALU64 | OpMod | SrcK, Dst: R1, Imm: 2}, "mod r1, #2"},
		{Instruction{Op: ClassALU64 | OpXor | SrcX, Dst: R1, Src: R2}, "xor r1, r2"},
		{Instruction{Op: ClassALU64 | OpArsh | SrcK, Dst: R1, Imm: 3}, "arsh r1, #3"},
		{Instruction{Op: ClassALU64 | OpLsh | SrcK, Dst: R1, Imm: 3}, "lsh r1, #3"},
		{Instruction{Op: ClassALU64 | OpRsh | SrcK, Dst: R1, Imm: 3}, "rsh r1, #3"},
		{Instruction{Op: ClassALU64 | OpAnd | SrcK, Dst: R1, Imm: 3}, "and r1, #3"},
		{Instruction{Op: ClassALU64 | OpOr | SrcK, Dst: R1, Imm: 3}, "or r1, #3"},
		{Instruction{Op: ClassALU64 | OpSub | SrcX, Dst: R1, Src: R2}, "sub r1, r2"},
		{Instruction{Op: ClassALU64 | OpMul | SrcK, Dst: R1, Imm: 3}, "mul r1, #3"},
		{Instruction{Op: ClassJMP | OpJa, Off: 4}, "ja +4"},
		{Instruction{Op: ClassJMP | OpCall, Imm: 7}, "call #7"},
		{Instruction{Op: ClassJMP | OpExit}, "exit"},
		{Instruction{Op: ClassJMP | OpJeq | SrcK, Dst: R1, Imm: 0, Off: 2}, "jeq r1, #0, +2"},
		{Instruction{Op: ClassJMP | OpJne | SrcX, Dst: R1, Src: R2, Off: 2}, "jne r1, r2, +2"},
		{Instruction{Op: ClassJMP32 | OpJgt | SrcK, Dst: R1, Imm: 9, Off: 1}, "jgt32 r1, #9, +1"},
		{Instruction{Op: ClassJMP | OpJset | SrcK, Dst: R1, Imm: 8, Off: 1}, "jset r1, #8, +1"},
		{Instruction{Op: ClassJMP | OpJsge | SrcK, Dst: R1, Imm: 8, Off: 1}, "jsge r1, #8, +1"},
		{Instruction{Op: ClassJMP | OpJslt | SrcK, Dst: R1, Imm: 8, Off: 1}, "jslt r1, #8, +1"},
		{Instruction{Op: ClassJMP | OpJsle | SrcK, Dst: R1, Imm: 8, Off: 1}, "jsle r1, #8, +1"},
		{Instruction{Op: ClassJMP | OpJsgt | SrcK, Dst: R1, Imm: 8, Off: 1}, "jsgt r1, #8, +1"},
		{Instruction{Op: ClassJMP | OpJge | SrcK, Dst: R1, Imm: 8, Off: 1}, "jge r1, #8, +1"},
		{Instruction{Op: ClassJMP | OpJlt | SrcK, Dst: R1, Imm: 8, Off: 1}, "jlt r1, #8, +1"},
		{Instruction{Op: ClassJMP | OpJle | SrcK, Dst: R1, Imm: 8, Off: 1}, "jle r1, #8, +1"},
		{Instruction{Op: ClassLDX | ModeMEM | SizeDW, Dst: R1, Src: R10, Off: -8}, "ldx64 r1, [fp-8]"},
		{Instruction{Op: ClassLDX | ModeMEM | SizeW, Dst: R1, Src: R10, Off: -8}, "ldx32 r1, [fp-8]"},
		{Instruction{Op: ClassLDX | ModeMEM | SizeH, Dst: R1, Src: R10, Off: -8}, "ldx16 r1, [fp-8]"},
		{Instruction{Op: ClassLDX | ModeMEM | SizeB, Dst: R1, Src: R10, Off: -8}, "ldx8 r1, [fp-8]"},
		{Instruction{Op: ClassSTX | ModeMEM | SizeDW, Dst: R10, Off: -8, Src: R1}, "stx64 [fp-8], r1"},
		{Instruction{Op: ClassST | ModeMEM | SizeDW, Dst: R10, Off: -8, Imm: 3}, "st64 [fp-8], #3"},
		{Instruction{Op: OpLdImm64, Dst: R1, Imm: 9}, "lddw r1, #9(lo)"},
		{Instruction{Op: 0, Imm: 9}, "lddw-hi #9"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%#x) = %q, want %q", c.in.Op, got, c.want)
		}
	}
}

func TestRegisterString(t *testing.T) {
	if R10.String() != "fp" || R3.String() != "r3" {
		t.Fatal("register names wrong")
	}
}

func TestUnknownOpcodeString(t *testing.T) {
	s := Instruction{Op: ClassLD | 0x40}.String()
	if !strings.Contains(s, "op=") {
		t.Fatalf("unknown opcode rendering: %q", s)
	}
}

func TestRuntimeErrorPaths(t *testing.T) {
	vm := NewVM()
	// Construct raw programs that bypass the verifier to hit the
	// interpreter's defensive errors (internal test privilege).
	run := func(insns []Instruction) error {
		prog := &Program{Name: "raw", insns: insns, vm: vm, Enabled: true}
		_, err := prog.Run(nil)
		return err
	}
	if err := run([]Instruction{{Op: ClassLD | 0x20}}); err == nil {
		t.Error("unsupported LD accepted at runtime")
	}
	if err := run([]Instruction{{Op: OpLdImm64, Dst: R0, Imm: 1}}); err == nil {
		t.Error("truncated lddw accepted at runtime")
	}
	if err := run([]Instruction{{Op: ClassALU64 | 0xe0, Dst: R0}}); err == nil {
		t.Error("unknown alu64 op accepted")
	}
	if err := run([]Instruction{{Op: ClassALU | 0xe0, Dst: R0}}); err == nil {
		t.Error("unknown alu32 op accepted")
	}
	if err := run([]Instruction{
		{Op: ClassJMP | 0xe0 | SrcK, Dst: R0, Imm: 0, Off: 0},
	}); err == nil {
		t.Error("unknown jmp op accepted")
	}
	if err := run([]Instruction{
		{Op: ClassLDX | ModeMEM | SizeDW, Dst: R0, Src: R1, Off: 0}, // R1=0: out of stack
	}); err == nil {
		t.Error("wild load accepted")
	}
	if err := run([]Instruction{{Op: ClassJMP | OpCall, Imm: 0x7ffffff}}); err == nil {
		t.Error("unknown helper accepted at runtime")
	}
	if err := run([]Instruction{{Op: ClassALU64 | OpMov | SrcK, Dst: R0}}); err == nil {
		t.Error("fall-off-end accepted at runtime")
	}
}

func TestMapHelperErrorPaths(t *testing.T) {
	vm := NewVM()
	spec, _ := vm.Helper(HelperMapUpdateElem)
	ctx := &CallContext{VM: vm, stack: make([]byte, StackSize)}
	// Bad fd.
	if _, err := spec.Fn(ctx, [5]uint64{999, stackAddr(-8), stackAddr(-16)}); err == nil {
		t.Error("update with bad fd accepted")
	}
	del, _ := vm.Helper(HelperMapDeleteElem)
	if _, err := del.Fn(ctx, [5]uint64{999, stackAddr(-8)}); err == nil {
		t.Error("delete with bad fd accepted")
	}
	look, _ := vm.Helper(HelperMapLookupElem)
	if _, err := look.Fn(ctx, [5]uint64{999, stackAddr(-8), stackAddr(-16)}); err == nil {
		t.Error("lookup with bad fd accepted")
	}
	// Bad pointer.
	m := MustNewMap(MapTypeHash, "m", 4)
	fd := vm.RegisterMap(m)
	if _, err := look.Fn(ctx, [5]uint64{uint64(fd), 0x10, stackAddr(-16)}); err == nil {
		t.Error("lookup with wild key pointer accepted")
	}
}

// stackAddr computes the virtual address of fp+off for helper tests.
func stackAddr(off int64) uint64 {
	return stackTop + uint64(off)
}

func TestMapDeleteHelperSemantics(t *testing.T) {
	vm := NewVM()
	m := MustNewMap(MapTypeHash, "m", 4)
	fd := vm.RegisterMap(m)
	if err := m.Update(5, 50); err != nil {
		t.Fatal(err)
	}
	got := runProgOn(t, vm, func(b *Builder) {
		b.StxDW(R10, -8, R1).
			Mov64Imm(R1, fd).
			Mov64Reg(R2, R10).Add64Imm(R2, -8).
			Call(HelperMapDeleteElem).
			Exit()
	}, 5)
	if got != 0 {
		t.Fatalf("delete existing returned %d", got)
	}
	if _, ok := m.Lookup(5); ok {
		t.Fatal("key survived delete")
	}
}

package ebpf

import "fmt"

// Standard helper IDs, mirroring the Linux helper numbering where a
// counterpart exists.
const (
	HelperMapLookupElem int32 = 1
	HelperMapUpdateElem int32 = 2
	HelperMapDeleteElem int32 = 3
	HelperKtimeGetNS    int32 = 5
	HelperTracePrintk   int32 = 6

	// KfuncBase is the first ID available for dynamically registered
	// kernel functions (kfuncs). SnapBPF registers snapbpf_prefetch
	// here (§3.1 of the paper).
	KfuncBase int32 = 0x10000
)

// Clock provides the time source for bpf_ktime_get_ns. The simulation
// installs the engine's virtual clock via SetClock.
type Clock func() uint64

// SetClock installs the ktime source for this VM.
func (vm *VM) SetClock(c Clock) { vm.clock = c }

// registerStandardHelpers installs the map helpers, ktime and
// trace_printk.
//
// Deviation from the kernel ABI, documented here and in doc.go: map
// values are u64 and bpf_map_lookup_elem takes (map_fd, key_ptr,
// value_ptr) and returns 1/0 for hit/miss, writing the value through
// value_ptr, instead of returning a value pointer. Our VM has no
// general kernel memory, so pointer-returning helpers have no address
// space to point into; the hit/miss return preserves the control flow
// structure of real programs (null-check after lookup).
func registerStandardHelpers(vm *VM) {
	vm.MustRegisterHelper(HelperMapLookupElem, "bpf_map_lookup_elem",
		func(ctx *CallContext, args [5]uint64) (uint64, error) {
			m, ok := ctx.Map(int32(args[0]))
			if !ok {
				return 0, fmt.Errorf("bad map fd %d", int32(args[0]))
			}
			key, err := ctx.ReadStackU64(args[1])
			if err != nil {
				return 0, err
			}
			v, found := m.Lookup(key)
			if !found {
				return 0, nil
			}
			if err := ctx.WriteStackU64(args[2], v); err != nil {
				return 0, err
			}
			return 1, nil
		})

	vm.MustRegisterHelper(HelperMapUpdateElem, "bpf_map_update_elem",
		func(ctx *CallContext, args [5]uint64) (uint64, error) {
			m, ok := ctx.Map(int32(args[0]))
			if !ok {
				return 0, fmt.Errorf("bad map fd %d", int32(args[0]))
			}
			key, err := ctx.ReadStackU64(args[1])
			if err != nil {
				return 0, err
			}
			val, err := ctx.ReadStackU64(args[2])
			if err != nil {
				return 0, err
			}
			m.ProgUpdates++
			if err := m.Update(key, val); err != nil {
				// Full map: return -E2BIG like the kernel rather than
				// aborting the program.
				return uint64(^uint64(0) - 6), nil
			}
			return 0, nil
		})

	vm.MustRegisterHelper(HelperMapDeleteElem, "bpf_map_delete_elem",
		func(ctx *CallContext, args [5]uint64) (uint64, error) {
			m, ok := ctx.Map(int32(args[0]))
			if !ok {
				return 0, fmt.Errorf("bad map fd %d", int32(args[0]))
			}
			key, err := ctx.ReadStackU64(args[1])
			if err != nil {
				return 0, err
			}
			if m.Delete(key) {
				return 0, nil
			}
			return uint64(^uint64(0) - 1), nil // -ENOENT
		})

	vm.MustRegisterHelper(HelperKtimeGetNS, "bpf_ktime_get_ns",
		func(ctx *CallContext, args [5]uint64) (uint64, error) {
			if ctx.VM.clock == nil {
				return 0, nil
			}
			return ctx.VM.clock(), nil
		})

	vm.MustRegisterHelper(HelperTracePrintk, "bpf_trace_printk",
		func(ctx *CallContext, args [5]uint64) (uint64, error) {
			if ctx.VM.TraceLog != nil {
				ctx.VM.TraceLog(fmt.Sprintf("bpf_trace_printk: %d %d %d %d %d",
					args[0], args[1], args[2], args[3], args[4]))
			}
			return 0, nil
		})
}

package experiments

import (
	"testing"

	"snapbpf/internal/store"
)

// Golden pin for the locality experiment: json only (like fig3b), with
// the invariant checker armed on every cell so the pin also proves zero
// store violations across all three tiers and every fetch policy. The
// serial and parallel CSVs must be byte-identical.

const goldenLocalityCSV = `Function,Scheme,Tier,Policy,healthy,light,heavy,fetch,MiB,hits,dedup
json,Linux-RA,local,-,0.204,0.244,0.799,-,-,-,-
json,Linux-RA,warm,demand,0.204,0.244,0.799,256,256.0,326,0
json,Linux-RA,warm,full,0.204,0.244,0.799,256,256.0,582,0
json,Linux-RA,warm,wslazy,0.204,0.244,0.799,256,256.0,326,0
json,Linux-RA,cold,demand,1.153,1.223,2.344,75,75.0,251,0
json,Linux-RA,cold,full,0.383,0.423,0.978,256,256.0,326,0
json,Linux-RA,cold,wslazy,1.153,1.223,2.344,75,75.0,251,0
json,SnapBPF,local,-,0.116,0.158,0.289,-,-,-,-
json,SnapBPF,warm,demand,0.116,0.158,0.289,256,256.0,6839,0
json,SnapBPF,warm,full,0.116,0.158,0.289,256,256.0,7095,0
json,SnapBPF,warm,wslazy,0.116,0.158,0.289,256,256.0,6902,0
json,SnapBPF,cold,demand,0.123,0.164,0.315,126,126.0,6713,0
json,SnapBPF,cold,full,0.294,0.337,0.468,319,319.0,6776,0
json,SnapBPF,cold,wslazy,0.117,0.161,0.309,126,126.0,6776,0
`

func TestGoldenLocality(t *testing.T) {
	if raceEnabled {
		t.Skip("byte-pinning is value-level; the non-race suite covers it")
	}
	fns := goldenJSONOnly(t)
	serial, err := Locality(Options{Functions: fns, Parallel: 1, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := serial.CSV(); got != goldenLocalityCSV {
		t.Errorf("locality CSV drifted:\n--- got ---\n%s--- want ---\n%s", got, goldenLocalityCSV)
	}
	parallel, err := Locality(Options{Functions: fns, Parallel: 3, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := parallel.CSV(); got != serial.CSV() {
		t.Errorf("locality parallel CSV differs from serial:\n--- parallel ---\n%s--- serial ---\n%s",
			got, serial.CSV())
	}
}

// TestLocalityOrdering asserts the experiment's headline claim on the
// cold tier: SnapBPF's WS-guided lazy pull beats both downloading the
// whole snapshot before restoring and paying a remote round trip per
// demand fault.
func TestLocalityOrdering(t *testing.T) {
	fns := goldenJSONOnly(t)
	params := store.DefaultParams()
	cold := func(p store.Policy) *RunResult {
		t.Helper()
		r, err := Run(fns[0], SchemeSnapBPF,
			Config{N: 4, Check: true,
				Store: &store.Setup{Tier: store.TierCold, Policy: p, Params: params}})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	demand := cold(store.PolicyDemand)
	full := cold(store.PolicyFull)
	lazy := cold(store.PolicyWSLazy)
	if lazy.MeanE2E >= full.MeanE2E {
		t.Errorf("cold tier: wslazy E2E %v not better than full download %v", lazy.MeanE2E, full.MeanE2E)
	}
	if lazy.MeanE2E >= demand.MeanE2E {
		t.Errorf("cold tier: wslazy E2E %v not better than demand fetch %v", lazy.MeanE2E, demand.MeanE2E)
	}
}

package experiments

import (
	"testing"

	"snapbpf/internal/ebpf"
	"snapbpf/internal/faults"
)

// TestEnginesProduceIdenticalResults pins the execution-engine
// contract at the experiment level: switching the eBPF engine between
// the interpreter and the template JIT may change how fast a cell
// runs, never what it computes. CSV bytes and guest-memory digests
// must match exactly, with the invariant checker armed under both.
func TestEnginesProduceIdenticalResults(t *testing.T) {
	fns := goldenFunctions(t)
	fn := fns[0]
	if fn.Name != "json" {
		fn = fns[1]
	}
	heavy := faults.Heavy(5)

	type result struct {
		table1  string
		healthy uint64
		faulted uint64
	}
	runWith := func(e ebpf.Engine) result {
		prev := ebpf.DefaultEngine()
		ebpf.SetDefaultEngine(e)
		defer ebpf.SetDefaultEngine(prev)
		tbl, err := Table1(Options{Functions: fns, Parallel: 1})
		if err != nil {
			t.Fatal(err)
		}
		return result{
			table1:  tbl.CSV(),
			healthy: checkedDigest(t, fn, SchemeSnapBPF, Config{N: 2}),
			faulted: checkedDigest(t, fn, SchemeSnapBPF, Config{N: 2, Faults: &heavy}),
		}
	}

	interp := runWith(ebpf.EngineInterp)
	jit := runWith(ebpf.EngineJIT)

	if interp.table1 != jit.table1 {
		t.Errorf("table1 CSV differs across engines:\n--- interp ---\n%s--- jit ---\n%s",
			interp.table1, jit.table1)
	}
	if interp.healthy != jit.healthy {
		t.Errorf("healthy digest: interp %016x, jit %016x", interp.healthy, jit.healthy)
	}
	if interp.faulted != jit.faulted {
		t.Errorf("fault-injected digest: interp %016x, jit %016x", interp.faulted, jit.faulted)
	}
}

package experiments

import (
	"testing"

	"snapbpf/internal/core"
	"snapbpf/internal/faults"
	"snapbpf/internal/prefetch"
	"snapbpf/internal/workload"
)

// checkedDigest runs one cell with the invariant harness armed and
// returns the guest-memory digest. Any invariant violation fails the
// test through Run's error.
func checkedDigest(t *testing.T, fn workload.Function, s Scheme, cfg Config) uint64 {
	t.Helper()
	cfg.Check = true
	r, err := Run(fn, s, cfg)
	if err != nil {
		t.Fatalf("%s/%s: %v", s.Name, fn.Name, err)
	}
	if r.Digest == 0 {
		t.Fatalf("%s/%s: no digest recorded", s.Name, fn.Name)
	}
	return r.Digest
}

// TestDifferentialSchemes is the differential oracle: every prefetching
// scheme, healthy or under fault injection, must leave the guest with
// memory byte-identical (digest-identical) to pure demand paging —
// prefetching is allowed to change *when* pages arrive, never *what*
// the guest reads.
func TestDifferentialSchemes(t *testing.T) {
	light, heavy := faults.Light(3), faults.Heavy(5)
	plans := map[string]*faults.Plan{"healthy": nil, "light": &light, "heavy": &heavy}
	fns := goldenFunctions(t)
	if fns[0].Name != "json" {
		fns[0], fns[1] = fns[1], fns[0]
	}

	// The small function carries the full matrix: every scheme under
	// every fault preset. The race detector slows runs ~4x and checks
	// scheduling rather than values, so under -race the matrix shrinks
	// to the extremes — the full matrix runs in the ordinary suite.
	fn := fns[0]
	schemes := []Scheme{SchemeLinuxRA, SchemeREAP, SchemeFaast, SchemeFaaSnap, SchemeSnapBPF, SchemePVOnly}
	if raceEnabled {
		plans = map[string]*faults.Plan{"healthy": nil, "heavy": &heavy}
		schemes = []Scheme{SchemeREAP, SchemeSnapBPF}
	}
	for name, plan := range plans {
		want := checkedDigest(t, fn, SchemeLinuxNoRA, Config{N: 2, Faults: plan})
		for _, s := range schemes {
			if got := checkedDigest(t, fn, s, Config{N: 2, Faults: plan}); got != want {
				t.Errorf("%s/%s/%s: digest %016x, demand paging %016x",
					fn.Name, s.Name, name, got, want)
			}
		}
	}

	// The large function gets a reduced healthy pass — its runs
	// dominate wall-clock and the fault paths are already covered.
	if testing.Short() || raceEnabled {
		return
	}
	big := fns[1]
	want := checkedDigest(t, big, SchemeLinuxNoRA, Config{N: 2})
	for _, s := range []Scheme{SchemeREAP, SchemeFaaSnap, SchemeSnapBPF} {
		if got := checkedDigest(t, big, s, Config{N: 2}); got != want {
			t.Errorf("%s/%s: digest %016x, demand paging %016x", big.Name, s.Name, got, want)
		}
	}
}

// TestMetamorphicInvariance checks properties that must not move the
// digest: prefetch schedule permutations, grouping granularity, fault
// injection, sandbox count, allocator drift, and cache pressure all
// change the run's timing and I/O — never its final guest memory.
func TestMetamorphicInvariance(t *testing.T) {
	fn, err := workload.ByName("json")
	if err != nil {
		t.Fatal(err)
	}
	base := checkedDigest(t, fn, SchemeSnapBPF, Config{N: 2})

	offsetOrder := Scheme{"SnapBPF-offorder", func() prefetch.Prefetcher {
		s := core.New()
		s.OffsetOrder = true
		return s
	}}
	perPage := Scheme{"SnapBPF-perpage", func() prefetch.Prefetcher {
		s := core.New()
		s.DisableGrouping = true
		return s
	}}
	heavy := faults.Heavy(11)

	variants := []struct {
		name   string
		scheme Scheme
		cfg    Config
	}{
		{"offset-ordered prefetch groups", offsetOrder, Config{N: 2}},
		{"per-page prefetch groups", perPage, Config{N: 2}},
		{"heavy fault injection", SchemeSnapBPF, Config{N: 2, Faults: &heavy}},
		{"single sandbox", SchemeSnapBPF, Config{N: 1}},
		{"allocator drift", SchemeSnapBPF, Config{N: 2, AllocDrift: 3}},
		{"cache pressure", SchemeSnapBPF, Config{N: 2, CacheLimitPages: 2048}},
	}
	if raceEnabled {
		// Two representative variants keep -race wall-clock bounded;
		// the ordinary suite runs all six.
		variants = variants[:2]
	}
	for _, v := range variants {
		if got := checkedDigest(t, fn, v.scheme, v.cfg); got != base {
			t.Errorf("%s: digest %016x, baseline %016x", v.name, got, base)
		}
	}
}

// TestPoolExecutionDigest checks that serial and parallel cell pools
// produce identical digests — cells share no state, so scheduling must
// not leak into results.
func TestPoolExecutionDigest(t *testing.T) {
	fn, err := workload.ByName("json")
	if err != nil {
		t.Fatal(err)
	}
	cells := []Cell{}
	for _, s := range []Scheme{SchemeLinuxNoRA, SchemeREAP, SchemeFaaSnap, SchemeSnapBPF} {
		cells = append(cells, Cell{Fn: fn, Scheme: s, Cfg: Config{N: 2}})
	}
	serial, err := RunCells(Options{Parallel: 1, Check: true}, cells)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunCells(Options{Parallel: 4, Check: true}, cells)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if serial[i].Digest != par[i].Digest {
			t.Errorf("cell %d (%s/%s): serial digest %016x, parallel %016x",
				i, cells[i].Scheme.Name, cells[i].Fn.Name, serial[i].Digest, par[i].Digest)
		}
	}
}

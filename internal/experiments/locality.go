package experiments

import (
	"fmt"

	"snapbpf/internal/faults"
	"snapbpf/internal/store"
)

// LocalitySeed keys the locality experiment's fault plans, mirroring
// ChaosSeed: the sweep is reproducible by construction.
const LocalitySeed = 11

// localityCombo is one (tier, policy) pair of the sweep. The local
// tier has no fetch policy — the snapshot is already on the host SSD —
// and is labeled "-".
type localityCombo struct {
	label string
	setup store.Setup
}

func localityCombos() []localityCombo {
	params := store.DefaultParams()
	combo := func(t store.Tier, p store.Policy) localityCombo {
		return localityCombo{
			label: t.String(),
			setup: store.Setup{Tier: t, Policy: p, Params: params},
		}
	}
	return []localityCombo{
		combo(store.TierLocal, store.PolicyDemand),
		combo(store.TierWarm, store.PolicyDemand),
		combo(store.TierWarm, store.PolicyFull),
		combo(store.TierWarm, store.PolicyWSLazy),
		combo(store.TierCold, store.PolicyDemand),
		combo(store.TierCold, store.PolicyFull),
		combo(store.TierCold, store.PolicyWSLazy),
	}
}

func (c localityCombo) policyLabel() string {
	if c.setup.Tier == store.TierLocal {
		return "-"
	}
	return c.setup.Policy.String()
}

var localitySchemes = []Scheme{SchemeLinuxRA, SchemeSnapBPF}

// Locality runs the snapshot-distribution sweep: each scheme restores
// from a local SSD, a warm host chunk cache, and a cold remote store,
// under each remote fetch policy (pure demand chunk fetch, full
// download before restore, WS-guided lazy pull) and each fault level.
// The point of the experiment is the cold column: SnapBPF's captured
// offsets double as a chunk-priority plan, so WS-guided lazy pull
// should beat both downloading the whole snapshot up front and paying
// a remote round-trip per demand fault. Every cell pins its tier and
// fault plan explicitly so CLI-wide -store/-faults settings cannot
// leak into the baseline columns.
func Locality(o Options) (*Table, error) {
	t := &Table{
		ID:    "locality",
		Title: "E2E latency (s) by snapshot tier and fetch policy, 4 concurrent instances",
		Note: fmt.Sprintf("seed=%d; fetch/MiB/hits/dedup are healthy-run chunk-cache traffic",
			LocalitySeed),
		Columns: []string{"Function", "Scheme", "Tier", "Policy",
			"healthy", "light", "heavy", "fetch", "MiB", "hits", "dedup"},
	}
	fns := o.functions()
	combos := localityCombos()
	levels := []struct {
		name string
		plan faults.Plan
	}{
		{"healthy", faults.Plan{}},
		{"light", faults.Light(LocalitySeed)},
		{"heavy", faults.Heavy(LocalitySeed)},
	}
	var cells []Cell
	for _, fn := range fns {
		for _, s := range localitySchemes {
			for _, cb := range combos {
				for _, lv := range levels {
					plan, setup := lv.plan, cb.setup
					setup.PermuteChunks = o.StorePermute
					cells = append(cells, Cell{Fn: fn, Scheme: s,
						Cfg: Config{N: 4, Faults: &plan, Store: &setup}})
				}
			}
		}
	}
	rs, err := RunCells(o, cells)
	if err != nil {
		return nil, err
	}
	for fi, fn := range fns {
		for si, s := range localitySchemes {
			for ci, cb := range combos {
				base := ((fi*len(localitySchemes)+si)*len(combos) + ci) * len(levels)
				healthy, light, heavy := rs[base], rs[base+1], rs[base+2]
				var fetches, mib, hits, dedup string
				if st := healthy.Store; st != nil {
					fetches = fmt.Sprint(st.Fetches)
					mib = fmt.Sprintf("%.1f", float64(st.FetchBytes)/(1<<20))
					hits = fmt.Sprint(st.Hits)
					dedup = fmt.Sprint(st.DedupHits)
				} else {
					fetches, mib, hits, dedup = "-", "-", "-", "-"
				}
				o.progress("locality %-10s %-8s %-5s %-6s healthy=%v heavy=%v fetch=%s",
					fn.Name, s.Name, cb.label, cb.policyLabel(),
					healthy.MeanE2E, heavy.MeanE2E, fetches)
				t.AddRow(fn.Name, s.Name, cb.label, cb.policyLabel(),
					secs(healthy.MeanE2E), secs(light.MeanE2E), secs(heavy.MeanE2E),
					fetches, mib, hits, dedup)
			}
		}
	}
	return t, nil
}

package experiments

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"snapbpf/internal/workload"
)

// Cell is one independent measurement: a (function, scheme, config)
// triple. Every cell builds its own simulated host, engine and
// prefetcher inside Run, so cells share no mutable state and can
// execute on any OS thread in any order without changing their
// results — determinism lives inside each engine, not between them.
type Cell struct {
	Fn     workload.Function
	Scheme Scheme
	Cfg    Config
}

// ParseParallel parses a worker-count setting (the -parallel flag or
// the SNAPBPF_BENCH_PARALLEL environment variable): a non-negative
// integer, where 0 means one worker per CPU. Non-integers and
// negative counts are rejected rather than silently treated as the
// default.
func ParseParallel(s string) (int, error) {
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return 0, fmt.Errorf("parallel: %q is not an integer", s)
	}
	if n < 0 {
		return 0, fmt.Errorf("parallel: worker count must be >= 0, got %d", n)
	}
	return n, nil
}

// workers resolves the pool width: Options.Parallel if positive,
// otherwise one worker per available CPU.
func (o Options) workers() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// runJobs executes job(0) .. job(n-1) on the configured number of
// workers and returns the error of the lowest-indexed failing job.
// Jobs are claimed from an atomic counter, so workers stay busy while
// any remain; results and errors are collected by index, which keeps
// the outcome — including which error is reported — independent of
// completion order. A panicking job is converted into an error rather
// than taking the whole process down.
func (o Options) runJobs(n int, job func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := o.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := runJob(job, i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = runJob(job, i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runJob invokes one job with panic recovery.
func runJob(job func(i int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("job %d panicked: %v\n%s", i, r, debug.Stack())
		}
	}()
	return job(i)
}

// RunCells executes every cell and returns results in cell order.
// Scheduling is work-stealing over Options.Parallel workers (default:
// GOMAXPROCS); collection is order-preserving, so the returned slice —
// and any table built from it — is byte-identical between serial and
// parallel execution. On failure the error of the lowest-indexed
// failing cell is returned along with the results that did complete
// (failed cells are nil).
func RunCells(o Options, cells []Cell) ([]*RunResult, error) {
	out := make([]*RunResult, len(cells))
	err := o.runJobs(len(cells), func(i int) error {
		cfg := cells[i].Cfg
		if cfg.Faults == nil {
			cfg.Faults = o.Faults
		}
		if o.Check {
			cfg.Check = true
		}
		if cfg.Obs == nil {
			cfg.Obs = o.Obs
		}
		if cfg.Store == nil {
			cfg.Store = o.Store
		}
		r, err := Run(cells[i].Fn, cells[i].Scheme, cfg)
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	// Deliver observability reports only after the whole batch settled,
	// walking cells in index order: the sink sees the same sequence no
	// matter how the pool interleaved the runs.
	if o.ObsSink != nil {
		for i, r := range out {
			if r != nil && r.Obs != nil {
				o.ObsSink(i, cells[i], r)
			}
		}
	}
	return out, err
}

package experiments

import (
	"fmt"

	"snapbpf/internal/faults"
)

// ChaosSeed keys the chaos experiment's fault plans. It is fixed so
// the experiment is reproducible by construction: rerunning chaos
// yields byte-identical tables.
const ChaosSeed = 1

// chaosLevel is one column group of the sweep. The healthy level pins
// an explicit disabled plan (rather than nil) so a CLI-wide -faults
// plan cannot leak into the baseline column.
type chaosLevel struct {
	name string
	plan faults.Plan
}

func chaosLevels() []chaosLevel {
	return []chaosLevel{
		{"healthy", faults.Plan{}},
		{"light", faults.Light(ChaosSeed)},
		{"heavy", faults.Heavy(ChaosSeed)},
	}
}

var chaosSchemes = []Scheme{SchemeLinuxRA, SchemeREAP, SchemeFaast, SchemeFaaSnap, SchemeSnapBPF}

// Chaos runs the fault sweep: every scheme, 10 concurrent sandboxes,
// against a healthy device, a lightly faulty one, and a heavily
// degraded one. Every invocation must complete — faults are absorbed
// as retries and demand-paging fallbacks and show up as latency, which
// is the experiment's point: it measures how gracefully each scheme
// degrades when the storage stack misbehaves.
func Chaos(o Options) (*Table, error) {
	t := &Table{
		ID:    "chaos",
		Title: "E2E latency (s) under storage fault injection, 10 concurrent instances",
		Note: fmt.Sprintf("seed=%d; slowdown = heavy E2E / healthy E2E; inj/retry/fb = injected faults, read retries, demand-paging fallbacks at heavy",
			ChaosSeed),
		Columns: []string{"Function", "Scheme", "healthy", "light", "heavy",
			"slowdown", "inj", "retry", "fb"},
	}
	fns := o.functions()
	levels := chaosLevels()
	var cells []Cell
	for _, fn := range fns {
		for _, s := range chaosSchemes {
			for _, lv := range levels {
				plan := lv.plan
				cells = append(cells, Cell{Fn: fn, Scheme: s, Cfg: Config{N: 10, Faults: &plan}})
			}
		}
	}
	rs, err := RunCells(o, cells)
	if err != nil {
		return nil, err
	}
	for fi, fn := range fns {
		for si, s := range chaosSchemes {
			base := (fi*len(chaosSchemes) + si) * len(levels)
			healthy, light, heavy := rs[base], rs[base+1], rs[base+2]
			o.progress("chaos %-10s %-9s healthy=%v heavy=%v inj=%d retry=%d fb=%d",
				fn.Name, s.Name, healthy.MeanE2E, heavy.MeanE2E,
				heavy.Faults.Injected(), heavy.Faults.Retries, heavy.Faults.Fallbacks)
			t.AddRow(fn.Name, s.Name,
				secs(healthy.MeanE2E), secs(light.MeanE2E), secs(heavy.MeanE2E),
				ratio(heavy.MeanE2E, healthy.MeanE2E),
				fmt.Sprint(heavy.Faults.Injected()),
				fmt.Sprint(heavy.Faults.Retries),
				fmt.Sprint(heavy.Faults.Fallbacks))
		}
	}
	return t, nil
}

package experiments

import (
	"testing"

	"snapbpf/internal/blockdev"
	"snapbpf/internal/workload"
)

func TestInputVarianceErodesDedup(t *testing.T) {
	fn := tinyFn()
	same, err := Run(fn, SchemeSnapBPF, Config{N: 10})
	if err != nil {
		t.Fatal(err)
	}
	varied, err := Run(fn, SchemeSnapBPF, Config{N: 10, InputVariance: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if varied.SystemMemory <= same.SystemMemory {
		t.Fatalf("varying inputs did not grow memory: %v vs %v",
			varied.SystemMemory, same.SystemMemory)
	}
}

func TestRunWavesWarmsCache(t *testing.T) {
	fn := tinyFn()
	res, err := RunWaves(fn, SchemeSnapBPF, 3, 2, 0, blockdev.MicronSATA5300())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.WaveE2E) != 3 {
		t.Fatalf("waves = %d", len(res.WaveE2E))
	}
	// Later waves restore against a warm page cache: strictly faster.
	if res.WaveE2E[1] >= res.WaveE2E[0] {
		t.Fatalf("wave 2 (%v) not faster than wave 1 (%v)", res.WaveE2E[1], res.WaveE2E[0])
	}
	// Device traffic is ~one working set, not three.
	ws := fn.WSPages() * 4096
	if res.DeviceBytes > ws*2 {
		t.Fatalf("device bytes %d for 3 waves, ws %d: cache not reused", res.DeviceBytes, ws)
	}

	reap, err := RunWaves(fn, SchemeREAP, 3, 2, 0, blockdev.MicronSATA5300())
	if err != nil {
		t.Fatal(err)
	}
	// REAP cannot reuse anything across waves.
	if reap.WaveE2E[1] < reap.WaveE2E[0]*9/10 {
		t.Fatalf("REAP wave 2 (%v) benefited from cache it bypasses (wave 1 %v)",
			reap.WaveE2E[1], reap.WaveE2E[0])
	}
	if reap.DeviceBytes < res.DeviceBytes*3 {
		t.Fatalf("REAP device bytes %d should dwarf SnapBPF's %d", reap.DeviceBytes, res.DeviceBytes)
	}
}

func TestRunWavesValidation(t *testing.T) {
	if _, err := RunWaves(tinyFn(), SchemeSnapBPF, 0, 2, 0, blockdev.MicronSATA5300()); err == nil {
		t.Fatal("zero waves accepted")
	}
}

func TestRunMixedColocation(t *testing.T) {
	fns := []workload.Function{tinyFn(), {
		Name: "tiny2", MemMiB: 64, StateMiB: 32, WSMiB: 6, WSRegions: 8,
		AllocMiB: 4, ComputeMs: 8, WriteFrac: 0.1, Seed: 9,
	}}
	res, err := RunMixed(fns, SchemeSnapBPF, 2, blockdev.MicronSATA5300())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerFunction) != 2 {
		t.Fatalf("per-function results = %v", res.PerFunction)
	}
	for name, d := range res.PerFunction {
		if d <= 0 {
			t.Fatalf("%s: E2E %v", name, d)
		}
	}
	if res.SystemMemory <= 0 || res.DeviceBytes <= 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestRunMixedIsolatesWorkingSets(t *testing.T) {
	// Two different functions colocated under SnapBPF: each sandbox
	// must only prefetch its own snapshot (inode filters in the eBPF
	// programs). Device traffic is bounded by the two WS sizes.
	fnA := tinyFn()
	fnB := fnA
	fnB.Name = "tinyB"
	fnB.Seed = 77
	res, err := RunMixed([]workload.Function{fnA, fnB}, SchemeSnapBPF, 1, blockdev.MicronSATA5300())
	if err != nil {
		t.Fatal(err)
	}
	wsBytes := 2 * fnA.WSPages() * 4096
	if res.DeviceBytes > wsBytes*3/2 {
		t.Fatalf("device bytes %d exceed 1.5x combined WS %d: cross-function prefetch leak",
			res.DeviceBytes, wsBytes)
	}
}

func TestExtensionExperimentsOnTinySuite(t *testing.T) {
	if testing.Short() {
		t.Skip("extension sweeps are slow")
	}
	opts := Options{Functions: []workload.Function{tinyFn()}}
	for _, exp := range []struct {
		name string
		run  func(Options) (*Table, error)
	}{
		{"cost", ExtCostAnalysis},
		{"colocation", ExtColocation},
	} {
		tbl, err := exp.run(opts)
		if err != nil {
			t.Fatalf("%s: %v", exp.name, err)
		}
		if len(tbl.Rows) == 0 {
			t.Fatalf("%s: empty table", exp.name)
		}
	}
}

func TestEveryExperimentRunsOnTinySuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep is slow")
	}
	opts := Options{Functions: []workload.Function{tinyFn()}}
	for _, exp := range All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			tbl, err := exp.Run(opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("empty table")
			}
			if tbl.ID != exp.ID {
				t.Fatalf("table id %q != experiment id %q", tbl.ID, exp.ID)
			}
			if len(tbl.Columns) < 2 {
				t.Fatalf("columns = %v", tbl.Columns)
			}
			for i, row := range tbl.Rows {
				if len(row) != len(tbl.Columns) {
					t.Fatalf("row %d has %d cells for %d columns", i, len(row), len(tbl.Columns))
				}
			}
			// Render and CSV must not panic and must mention the ID.
			if out := tbl.Render(); len(out) == 0 {
				t.Fatal("empty render")
			}
			if out := tbl.CSV(); len(out) == 0 {
				t.Fatal("empty csv")
			}
		})
	}
}

func TestFigureExperimentsOnTinySuite(t *testing.T) {
	if testing.Short() {
		t.Skip("figure runs are slow")
	}
	opts := Options{Functions: []workload.Function{tinyFn()}}
	for _, exp := range []struct {
		name string
		run  func(Options) (*Table, error)
	}{
		{"fig3a", Fig3a},
		{"fig4", Fig4},
		{"overheads", Overheads},
	} {
		tbl, err := exp.run(opts)
		if err != nil {
			t.Fatalf("%s: %v", exp.name, err)
		}
		if len(tbl.Rows) != 1 {
			t.Fatalf("%s: rows = %d", exp.name, len(tbl.Rows))
		}
	}
}

package experiments

import (
	"fmt"
	"time"

	"snapbpf/internal/faults"
	"snapbpf/internal/obs"
	"snapbpf/internal/store"
	"snapbpf/internal/workload"
)

// Options configures a whole-figure run.
type Options struct {
	// Functions restricts the workload suite; nil means all 15.
	Functions []workload.Function
	// Progress, when non-nil, receives a line per completed cell.
	// Lines are emitted in deterministic (cell) order once a figure's
	// cells have all completed, so -v output does not depend on
	// Parallel.
	Progress func(msg string)
	// Parallel is the number of worker goroutines measurement cells
	// are scheduled across: 0 means one per CPU (GOMAXPROCS), 1 runs
	// serially. Results are identical either way; only wall-clock
	// time changes.
	Parallel int

	// Faults, when non-nil, is applied to every cell whose Config does
	// not set its own plan — the -faults CLI flags route here. Cells
	// that must stay healthy (or sweep their own plans, like the chaos
	// experiment) set Config.Faults explicitly and win.
	Faults *faults.Plan

	// Check arms the invariant-checking harness (internal/check) on
	// every cell — the -check CLI flag routes here. Any invariant
	// violation fails the cell's Run.
	Check bool

	// Obs, when non-nil and enabled, arms the observability layer
	// (internal/obs) on every cell whose Config does not set its own —
	// the -trace/-metrics CLI flags route here.
	Obs *obs.Config

	// ObsSink, when non-nil, receives each completed cell's index,
	// definition and result after a RunCells batch finishes — always in
	// cell order, regardless of which pool worker ran the cell, so any
	// trace or metrics document built from the sink is byte-identical
	// between serial and parallel execution. Only cells that produced
	// an observability report are delivered.
	ObsSink func(i int, cell Cell, res *RunResult)

	// ObsSinkNamed receives observability reports from experiments
	// whose unit of measurement is not a single-host RunResult — the
	// cluster experiment delivers one report per (cell, host), always
	// in (cell, host-index) order for the same byte-identical-output
	// guarantee ObsSink gives.
	ObsSinkNamed func(name string, rep *obs.Report)

	// Cluster tunes the cluster experiment; nil means the golden
	// 4-host configuration (see ClusterParams).
	Cluster *ClusterParams

	// Store, when non-nil, is applied to every cell whose Config does
	// not set its own distribution-tier setup — the -store/-fetch-policy
	// CLI flags route here. Cells that sweep tiers themselves (the
	// locality experiment) set Config.Store explicitly and win.
	Store *store.Setup

	// StorePermute, when non-zero, seeds a metamorphic shuffle of every
	// locality-cell manifest's chunk order. Chunk order carries no
	// meaning, so any seed must leave the experiment's CSV
	// byte-identical — a test knob.
	StorePermute int64
}

func (o Options) functions() []workload.Function {
	if len(o.Functions) > 0 {
		return o.Functions
	}
	return workload.Suite()
}

func (o Options) progress(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(fmt.Sprintf(format, args...))
	}
}

func secs(d time.Duration) string { return fmt.Sprintf("%.3f", d.Seconds()) }
func ratio(a, b time.Duration) string {
	if b == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f", float64(a)/float64(b))
}

// Table1 reproduces the paper's Table 1: the qualitative comparison of
// snapshot prefetching techniques, generated from each scheme's
// Capabilities introspection rather than hand-written.
func Table1(o Options) (*Table, error) {
	t := &Table{
		ID:    "table1",
		Title: "Comparison of snapshot prefetching techniques",
		Columns: []string{"Scheme", "Mechanism", "On-disk WS serialization",
			"In-memory WS dedup", "Stateless VM alloc filtering"},
	}
	yn := func(b bool) string {
		if b {
			return "Yes"
		}
		return "No"
	}
	for _, s := range []Scheme{SchemeREAP, SchemeFaast, SchemeFaaSnap, SchemeSnapBPF} {
		c := s.New().Capabilities()
		t.AddRow(s.Name, c.Mechanism, yn(c.OnDiskWSSerialization),
			yn(c.InMemoryWSDedup), yn(c.StatelessAllocFiltering))
	}
	return t, nil
}

// Fig3a reproduces Figure 3a: end-to-end function latency for a
// single instance under REAP, FaaSnap and SnapBPF. The paper plots
// latency normalized to SnapBPF; the absolute SnapBPF seconds are
// included for reference.
func Fig3a(o Options) (*Table, error) {
	t := &Table{
		ID:    "fig3a",
		Title: "E2E function latency, single instance (normalized to SnapBPF)",
		Note:  "norm = scheme E2E / SnapBPF E2E; lower is better",
		Columns: []string{"Function", "REAP", "FaaSnap", "SnapBPF",
			"SnapBPF (s)"},
	}
	fns := o.functions()
	schemes := []Scheme{SchemeREAP, SchemeFaaSnap, SchemeSnapBPF}
	rs, err := RunCells(o, grid(fns, schemes, Config{N: 1}))
	if err != nil {
		return nil, err
	}
	for fi, fn := range fns {
		var e2e [3]time.Duration
		for i, s := range schemes {
			e2e[i] = rs[fi*len(schemes)+i].MeanE2E
			o.progress("fig3a %-10s %-8s E2E=%v", fn.Name, s.Name, e2e[i])
		}
		t.AddRow(fn.Name, ratio(e2e[0], e2e[2]), ratio(e2e[1], e2e[2]), "1.00", secs(e2e[2]))
	}
	return t, nil
}

// grid builds the cell list for a functions x schemes sweep with one
// shared config — the shape of most figures.
func grid(fns []workload.Function, schemes []Scheme, cfg Config) []Cell {
	cells := make([]Cell, 0, len(fns)*len(schemes))
	for _, fn := range fns {
		for _, s := range schemes {
			cells = append(cells, Cell{Fn: fn, Scheme: s, Cfg: cfg})
		}
	}
	return cells
}

var fig3bSchemes = []Scheme{SchemeLinuxNoRA, SchemeLinuxRA, SchemeREAP, SchemeSnapBPF}

// Fig3b reproduces Figure 3b: end-to-end latency for 10 concurrent
// instances of the same function under Linux-NoRA, Linux-RA, REAP and
// SnapBPF (absolute seconds, as in the paper).
func Fig3b(o Options) (*Table, error) {
	t := &Table{
		ID:      "fig3b",
		Title:   "E2E function latency (s), 10 concurrent instances",
		Columns: []string{"Function", "Linux-NoRA", "Linux-RA", "REAP", "SnapBPF", "REAP/SnapBPF"},
	}
	fns := o.functions()
	rs, err := RunCells(o, grid(fns, fig3bSchemes, Config{N: 10}))
	if err != nil {
		return nil, err
	}
	for fi, fn := range fns {
		var e2e [4]time.Duration
		for i, s := range fig3bSchemes {
			e2e[i] = rs[fi*len(fig3bSchemes)+i].MeanE2E
			o.progress("fig3b %-10s %-10s E2E=%v", fn.Name, s.Name, e2e[i])
		}
		t.AddRow(fn.Name, secs(e2e[0]), secs(e2e[1]), secs(e2e[2]), secs(e2e[3]),
			ratio(e2e[2], e2e[3])+"x")
	}
	return t, nil
}

// Fig3c reproduces Figure 3c: system-wide memory consumption for 10
// concurrent instances (GiB, as in the paper).
func Fig3c(o Options) (*Table, error) {
	t := &Table{
		ID:      "fig3c",
		Title:   "Memory consumption (GiB), 10 concurrent instances",
		Columns: []string{"Function", "Linux-NoRA", "Linux-RA", "REAP", "SnapBPF", "REAP/SnapBPF"},
	}
	gib := func(b int64) string { return fmt.Sprintf("%.2f", float64(b)/(1<<30)) }
	fns := o.functions()
	rs, err := RunCells(o, grid(fns, fig3bSchemes, Config{N: 10}))
	if err != nil {
		return nil, err
	}
	for fi, fn := range fns {
		var mem [4]int64
		for i, s := range fig3bSchemes {
			res := rs[fi*len(fig3bSchemes)+i]
			mem[i] = int64(res.SystemMemory)
			o.progress("fig3c %-10s %-10s mem=%v", fn.Name, s.Name, res.SystemMemory)
		}
		t.AddRow(fn.Name, gib(mem[0]), gib(mem[1]), gib(mem[2]), gib(mem[3]),
			fmt.Sprintf("%.1fx", float64(mem[2])/float64(mem[3])))
	}
	return t, nil
}

// Fig4 reproduces Figure 4: the breakdown of SnapBPF's two mechanisms
// — invocation latency normalized to the Linux-RA baseline for (i) PV
// PTE marking alone and (ii) PV PTE marking plus eBPF prefetching.
func Fig4(o Options) (*Table, error) {
	t := &Table{
		ID:      "fig4",
		Title:   "Mechanism breakdown: normalized invocation latency vs Linux-RA",
		Note:    "lower is better; 0.50 means 2x faster than Linux-RA",
		Columns: []string{"Function", "Linux-RA", "PVPTEs", "SnapBPF"},
	}
	fns := o.functions()
	schemes := []Scheme{SchemeLinuxRA, SchemePVOnly, SchemeSnapBPF}
	rs, err := RunCells(o, grid(fns, schemes, Config{N: 1}))
	if err != nil {
		return nil, err
	}
	for fi, fn := range fns {
		var e2e [3]time.Duration
		for i, s := range schemes {
			e2e[i] = rs[fi*len(schemes)+i].MeanE2E
			o.progress("fig4 %-10s %-8s E2E=%v", fn.Name, s.Name, e2e[i])
		}
		t.AddRow(fn.Name, "1.00", ratio(e2e[1], e2e[0]), ratio(e2e[2], e2e[0]))
	}
	return t, nil
}

// Overheads reproduces the §4 "SnapBPF Overheads" measurement: the
// latency of loading the captured offsets into the kernel via the
// eBPF map, absolute and as a share of E2E latency.
func Overheads(o Options) (*Table, error) {
	t := &Table{
		ID:      "overheads",
		Title:   "SnapBPF offset-loading overhead (eBPF map updates)",
		Note:    "paper: ~1-2ms, <1% of E2E latency on average",
		Columns: []string{"Function", "WS groups", "Load (ms)", "E2E (s)", "Load/E2E"},
	}
	fns := o.functions()
	rs, err := RunCells(o, grid(fns, []Scheme{SchemeSnapBPF}, Config{N: 1}))
	if err != nil {
		return nil, err
	}
	for fi, fn := range fns {
		res := rs[fi]
		o.progress("overheads %-10s load=%v e2e=%v", fn.Name, res.OffsetLoad, res.MeanE2E)
		t.AddRow(fn.Name, fmt.Sprintf("%d", res.WSGroups),
			fmt.Sprintf("%.3f", float64(res.OffsetLoad)/float64(time.Millisecond)),
			secs(res.MeanE2E),
			fmt.Sprintf("%.2f%%", 100*float64(res.OffsetLoad)/float64(res.MeanE2E)))
	}
	return t, nil
}

package experiments

import (
	"testing"
	"time"

	"snapbpf/internal/workload"
)

// tinyFn is a scaled-down function for fast integration tests.
func tinyFn() workload.Function {
	return workload.Function{
		Name: "tiny", MemMiB: 64, StateMiB: 32, WSMiB: 8, WSRegions: 12,
		AllocMiB: 6, ComputeMs: 10, WriteFrac: 0.2, Seed: 7,
	}
}

func allSchemes() []Scheme {
	return []Scheme{SchemeLinuxNoRA, SchemeLinuxRA, SchemeREAP, SchemeFaast, SchemeFaaSnap, SchemeSnapBPF, SchemePVOnly}
}

func TestAllSchemesSingleInstance(t *testing.T) {
	fn := tinyFn()
	for _, s := range allSchemes() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			res, err := Run(fn, s, Config{N: 1})
			if err != nil {
				t.Fatal(err)
			}
			if res.MeanE2E <= 0 {
				t.Fatalf("E2E = %v", res.MeanE2E)
			}
			if res.MeanE2E < 10*time.Millisecond {
				t.Fatalf("E2E %v below compute floor", res.MeanE2E)
			}
			if res.SystemMemory <= 0 {
				t.Fatalf("SystemMemory = %v", res.SystemMemory)
			}
			t.Logf("%s: E2E=%v mem=%v devBytes=%d reqs=%d prep=%v",
				s.Name, res.MeanE2E, res.SystemMemory, res.DeviceBytes, res.DeviceRequests, res.MeanPrepare)
		})
	}
}

func TestAllSchemesConcurrent(t *testing.T) {
	fn := tinyFn()
	for _, s := range allSchemes() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			res, err := Run(fn, s, Config{N: 4})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.E2E) != 4 {
				t.Fatalf("E2E count = %d", len(res.E2E))
			}
			t.Logf("%s N=4: mean=%v max=%v mem=%v devBytes=%d",
				s.Name, res.MeanE2E, res.MaxE2E, res.SystemMemory, res.DeviceBytes)
		})
	}
}

func TestSnapBPFDedupesVsREAP(t *testing.T) {
	fn := tinyFn()
	sb, err := Run(fn, SchemeSnapBPF, Config{N: 10})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Run(fn, SchemeREAP, Config{N: 10})
	if err != nil {
		t.Fatal(err)
	}
	if sb.SystemMemory >= rp.SystemMemory {
		t.Fatalf("SnapBPF memory %v not below REAP %v at N=10", sb.SystemMemory, rp.SystemMemory)
	}
	t.Logf("N=10 memory: SnapBPF=%v REAP=%v (%.1fx)", sb.SystemMemory, rp.SystemMemory,
		float64(rp.SystemMemory)/float64(sb.SystemMemory))
}

func TestSnapBPFReadsWSOnceAcrossVMs(t *testing.T) {
	fn := tinyFn()
	one, err := Run(fn, SchemeSnapBPF, Config{N: 1})
	if err != nil {
		t.Fatal(err)
	}
	ten, err := Run(fn, SchemeSnapBPF, Config{N: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Ten concurrent sandboxes must not read ~10x the bytes.
	if ten.DeviceBytes > 2*one.DeviceBytes {
		t.Fatalf("device bytes at N=10 (%d) vs N=1 (%d): dedup broken", ten.DeviceBytes, one.DeviceBytes)
	}
}

func TestREAPReadsScaleWithVMs(t *testing.T) {
	fn := tinyFn()
	one, err := Run(fn, SchemeREAP, Config{N: 1})
	if err != nil {
		t.Fatal(err)
	}
	ten, err := Run(fn, SchemeREAP, Config{N: 10})
	if err != nil {
		t.Fatal(err)
	}
	if ten.DeviceBytes < 5*one.DeviceBytes {
		t.Fatalf("REAP device bytes at N=10 (%d) vs N=1 (%d): expected ~10x", ten.DeviceBytes, one.DeviceBytes)
	}
}

func TestSnapBPFOffsetLoadMeasured(t *testing.T) {
	res, err := Run(tinyFn(), SchemeSnapBPF, Config{N: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.OffsetLoad <= 0 {
		t.Fatal("offset load time not measured")
	}
	if res.OffsetLoad > res.MeanE2E/10 {
		t.Fatalf("offset load %v suspiciously large vs E2E %v", res.OffsetLoad, res.MeanE2E)
	}
}

func TestSnapBPFBeatsNoPrefetchBaseline(t *testing.T) {
	fn := tinyFn()
	sb, err := Run(fn, SchemeSnapBPF, Config{N: 1})
	if err != nil {
		t.Fatal(err)
	}
	nora, err := Run(fn, SchemeLinuxNoRA, Config{N: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sb.MeanE2E >= nora.MeanE2E {
		t.Fatalf("SnapBPF E2E %v not below Linux-NoRA %v", sb.MeanE2E, nora.MeanE2E)
	}
}

func TestRunDeterministic(t *testing.T) {
	fn := tinyFn()
	a, err := Run(fn, SchemeSnapBPF, Config{N: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(fn, SchemeSnapBPF, Config{N: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.E2E {
		if a.E2E[i] != b.E2E[i] {
			t.Fatalf("nondeterministic: %v vs %v", a.E2E, b.E2E)
		}
	}
	if a.SystemMemory != b.SystemMemory {
		t.Fatalf("nondeterministic memory: %v vs %v", a.SystemMemory, b.SystemMemory)
	}
}

package experiments

import (
	"testing"

	"snapbpf/internal/faults"
	"snapbpf/internal/workload"
)

func chaosTestFunctions(t *testing.T) []workload.Function {
	t.Helper()
	for _, f := range workload.Suite() {
		if f.Name == "json" {
			return []workload.Function{f}
		}
	}
	t.Fatal("json function missing from suite")
	return nil
}

// TestChaosDeterministic is the tentpole acceptance check: two chaos
// runs with the same plan seed must produce byte-identical CSV.
func TestChaosDeterministic(t *testing.T) {
	o := Options{Functions: chaosTestFunctions(t), Parallel: 1}
	t1, err := Chaos(o)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Chaos(o)
	if err != nil {
		t.Fatal(err)
	}
	if t1.CSV() != t2.CSV() {
		t.Fatalf("chaos runs diverged:\n--- first ---\n%s\n--- second ---\n%s", t1.CSV(), t2.CSV())
	}
}

// TestEverySchemeCompletesUnderHeavyFaults checks graceful
// degradation scheme by scheme: with a heavy plan every invocation
// completes (E2E measured for all sandboxes), the injector saw
// activity, and the degraded mean E2E is no better than healthy.
func TestEverySchemeCompletesUnderHeavyFaults(t *testing.T) {
	fn := chaosTestFunctions(t)[0]
	heavy := faults.Heavy(42)
	for _, s := range []Scheme{SchemeLinuxNoRA, SchemeLinuxRA, SchemeREAP, SchemeFaast, SchemeFaaSnap, SchemeSnapBPF} {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			faulty, err := Run(fn, s, Config{N: 4, Faults: &heavy})
			if err != nil {
				t.Fatalf("faulted run errored instead of degrading: %v", err)
			}
			for i, e := range faulty.E2E {
				if e <= 0 {
					t.Fatalf("vm%d did not complete: E2E=%v", i, e)
				}
			}
			if faulty.Faults.Injected() == 0 {
				t.Fatal("heavy plan injected nothing")
			}
			healthy, err := Run(fn, s, Config{N: 4})
			if err != nil {
				t.Fatal(err)
			}
			if healthy.Faults != (faults.Report{}) {
				t.Fatalf("healthy run accumulated a fault report: %+v", healthy.Faults)
			}
			if faulty.MeanE2E < healthy.MeanE2E {
				t.Fatalf("faulted run faster than healthy: %v < %v", faulty.MeanE2E, healthy.MeanE2E)
			}
		})
	}
}

// TestRunRejectsNegativeN covers the runner's argument validation.
func TestRunRejectsNegativeN(t *testing.T) {
	fn := chaosTestFunctions(t)[0]
	if _, err := Run(fn, SchemeLinuxRA, Config{N: -1}); err == nil {
		t.Fatal("negative N accepted")
	}
	if _, err := Run(fn, SchemeLinuxRA, Config{N: 0}); err != nil {
		t.Fatalf("zero N (meaning 1) rejected: %v", err)
	}
}

// TestRunRejectsInvalidFaultPlan covers plan validation at the run
// boundary (NewInjector would panic; Run must return an error).
func TestRunRejectsInvalidFaultPlan(t *testing.T) {
	fn := chaosTestFunctions(t)[0]
	bad := faults.Plan{ReadErrorRate: 2}
	if _, err := Run(fn, SchemeLinuxRA, Config{N: 1, Faults: &bad}); err == nil {
		t.Fatal("invalid fault plan accepted")
	}
}

// TestOptionsFaultsAppliesToCells checks the CLI plumbing: an
// Options-level plan reaches cells without their own, and an explicit
// per-cell disabled plan (the chaos healthy column) wins over it.
func TestOptionsFaultsAppliesToCells(t *testing.T) {
	fn := chaosTestFunctions(t)[0]
	plan := faults.Heavy(7)
	none := faults.Plan{}
	o := Options{Parallel: 1, Faults: &plan}
	rs, err := RunCells(o, []Cell{
		{Fn: fn, Scheme: SchemeLinuxRA, Cfg: Config{N: 1}},
		{Fn: fn, Scheme: SchemeLinuxRA, Cfg: Config{N: 1, Faults: &none}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Faults.Injected() == 0 {
		t.Fatal("Options.Faults did not reach the cell")
	}
	if rs[1].Faults.Injected() != 0 {
		t.Fatal("explicit healthy cell overridden by Options.Faults")
	}
}

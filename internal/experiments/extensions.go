package experiments

import (
	"fmt"
	"time"

	"snapbpf/internal/blockdev"
	"snapbpf/internal/core"
	"snapbpf/internal/prefetch"
	"snapbpf/internal/sim"
	"snapbpf/internal/snapshot"
	"snapbpf/internal/units"
	"snapbpf/internal/vmm"
)

// Extension experiments: studies the paper explicitly defers to future
// work, built on the same harness.

// ExtVaryingInputs implements the paper's deferred evaluation: "We
// consider evaluating the effect of varying function inputs on
// SnapBPF's memory deduplication for future work" (§4 Methodology).
// Every sandbox receives a per-input trace variant (skipped regions,
// extra writes); extra writes CoW shared snapshot pages into private
// anonymous memory, eroding deduplication.
func ExtVaryingInputs(o Options) (*Table, error) {
	variances := []float64{0, 0.25, 0.5, 1.0}
	t := &Table{
		ID:    "ext-varying-inputs",
		Title: "Input variance vs deduplication: SnapBPF memory (GiB) and REAP ratio, 10 instances",
		Note:  "variance 0 = the paper's identical-input methodology",
		Columns: []string{"Function/variance", "SnapBPF mem", "REAP mem",
			"REAP/SnapBPF", "SnapBPF E2E (s)"},
	}
	gib := func(b units.ByteSize) string { return fmt.Sprintf("%.2f", float64(b)/(1<<30)) }
	fns := o.functions()
	schemes := []Scheme{SchemeSnapBPF, SchemeREAP}
	var cells []Cell
	for _, fn := range fns {
		for _, v := range variances {
			for _, s := range schemes {
				cells = append(cells, Cell{Fn: fn, Scheme: s, Cfg: Config{N: 10, InputVariance: v}})
			}
		}
	}
	rs, err := RunCells(o, cells)
	if err != nil {
		return nil, err
	}
	for fi, fn := range fns {
		for vi, v := range variances {
			sb := rs[(fi*len(variances)+vi)*2]
			rp := rs[(fi*len(variances)+vi)*2+1]
			o.progress("ext-varying-inputs %-10s v=%.2f snapbpf=%v reap=%v",
				fn.Name, v, sb.SystemMemory, rp.SystemMemory)
			t.AddRow(fmt.Sprintf("%s/v=%.2f", fn.Name, v),
				gib(sb.SystemMemory), gib(rp.SystemMemory),
				fmt.Sprintf("%.1fx", float64(rp.SystemMemory)/float64(sb.SystemMemory)),
				secs(sb.MeanE2E))
		}
	}
	return t, nil
}

// ExtConcurrency sweeps the sandbox count, exposing where the schemes'
// storage and memory scaling diverge (the paper fixes N at 1 and 10).
func ExtConcurrency(o Options) (*Table, error) {
	counts := []int{1, 2, 5, 10, 20, 40}
	t := &Table{
		ID:      "ext-concurrency",
		Title:   "Concurrency sweep: mean E2E (s) per sandbox count",
		Columns: []string{"Function/N", "REAP", "SnapBPF", "REAP/SnapBPF", "SnapBPF mem (GiB)"},
	}
	fns := o.functions()
	var cells []Cell
	for _, fn := range fns {
		for _, n := range counts {
			cells = append(cells,
				Cell{Fn: fn, Scheme: SchemeREAP, Cfg: Config{N: n}},
				Cell{Fn: fn, Scheme: SchemeSnapBPF, Cfg: Config{N: n}})
		}
	}
	rs, err := RunCells(o, cells)
	if err != nil {
		return nil, err
	}
	for fi, fn := range fns {
		for ni, n := range counts {
			rp := rs[(fi*len(counts)+ni)*2]
			sb := rs[(fi*len(counts)+ni)*2+1]
			o.progress("ext-concurrency %-10s n=%-3d reap=%v snapbpf=%v", fn.Name, n, rp.MeanE2E, sb.MeanE2E)
			t.AddRow(fmt.Sprintf("%s/N=%d", fn.Name, n),
				secs(rp.MeanE2E), secs(sb.MeanE2E),
				ratio(rp.MeanE2E, sb.MeanE2E)+"x",
				fmt.Sprintf("%.2f", float64(sb.SystemMemory)/(1<<30)))
		}
	}
	return t, nil
}

// ExtCostAnalysis is the "comprehensive analysis of the computational
// and memory costs of SnapBPF" the paper defers (§4 Overheads): eBPF
// program executions and their CPU cost, kernel map memory, and the
// offset-loading share of E2E, per function at 10 sandboxes.
func ExtCostAnalysis(o Options) (*Table, error) {
	t := &Table{
		ID:    "ext-cost-analysis",
		Title: "SnapBPF computational and memory costs (10 sandboxes)",
		Columns: []string{"Function", "capture runs", "prefetch runs",
			"eBPF CPU (ms)", "map memory (KiB)", "load (ms)", "load/E2E"},
	}
	cm := costPerProgRun()
	fns := o.functions()
	// Each cell's factory deposits the SnapBPF instance it built into
	// the cell's own slot so the counters can be read after the runs.
	pfs := make([]*core.SnapBPF, len(fns))
	cells := make([]Cell, len(fns))
	for idx, fn := range fns {
		idx := idx
		cells[idx] = Cell{Fn: fn, Scheme: Scheme{"SnapBPF", func() prefetch.Prefetcher {
			s := core.New()
			pfs[idx] = s
			return s
		}}, Cfg: Config{N: 10}}
	}
	rs, err := RunCells(o, cells)
	if err != nil {
		return nil, err
	}
	for fi, fn := range fns {
		res, s := rs[fi], pfs[fi]
		runs := s.CaptureProgRuns + s.PrefetchProgRuns
		ebpfCPU := time.Duration(runs) * cm
		// Kernel-resident map memory: the ws hash map (16B/entry at
		// capture) plus per-sandbox schedule arrays (2 x 8B per group
		// + conf), for 10 sandboxes.
		groups := int64(res.WSGroups)
		wsPages := int64(0)
		if ws := s.WorkingSet(); ws != nil {
			wsPages = ws.TotalPages()
		}
		mapBytes := wsPages*16 + 10*(groups*16+4*8)
		o.progress("ext-cost %-10s runs=%d cpu=%v maps=%dKiB", fn.Name, runs, ebpfCPU, mapBytes/1024)
		t.AddRow(fn.Name,
			fmt.Sprintf("%d", s.CaptureProgRuns),
			fmt.Sprintf("%d", s.PrefetchProgRuns),
			fmt.Sprintf("%.3f", ebpfCPU.Seconds()*1000),
			fmt.Sprintf("%d", mapBytes/1024),
			fmt.Sprintf("%.3f", res.OffsetLoad.Seconds()*1000),
			fmt.Sprintf("%.2f%%", 100*float64(res.OffsetLoad)/float64(res.MeanE2E)))
	}
	return t, nil
}

// costPerProgRun returns the modelled CPU cost of one kprobe-dispatched
// program execution.
func costPerProgRun() time.Duration {
	return 150 * time.Nanosecond // costmodel.Default().KprobeDispatch
}

// ExtDevices reruns the headline comparison across storage profiles —
// spindle HDD, the paper's SATA SSD, and a modern NVMe drive —
// extending the paper's premise that device characteristics decide
// whether skipping WS serialization is free (§3.1 and the authors'
// prior storage-profile study).
func ExtDevices(o Options) (*Table, error) {
	devices := []blockdev.Params{blockdev.SpindleHDD(), blockdev.MicronSATA5300(), blockdev.NVMeGen4()}
	t := &Table{
		ID:      "ext-devices",
		Title:   "Storage profiles: E2E (s) at 10 concurrent instances",
		Columns: []string{"Function/device", "Linux-RA", "REAP", "SnapBPF", "REAP/SnapBPF"},
	}
	fns := o.functions()
	schemes := []Scheme{SchemeLinuxRA, SchemeREAP, SchemeSnapBPF}
	var cells []Cell
	for _, fn := range fns {
		for _, dev := range devices {
			for _, s := range schemes {
				cells = append(cells, Cell{Fn: fn, Scheme: s, Cfg: Config{N: 10, Device: dev}})
			}
		}
	}
	rs, err := RunCells(o, cells)
	if err != nil {
		return nil, err
	}
	for fi, fn := range fns {
		for di, dev := range devices {
			var e2e [3]time.Duration
			for i, s := range schemes {
				e2e[i] = rs[(fi*len(devices)+di)*len(schemes)+i].MeanE2E
				o.progress("ext-devices %-10s %-16s %-8s E2E=%v", fn.Name, dev.Name, s.Name, e2e[i])
			}
			t.AddRow(fmt.Sprintf("%s/%s", fn.Name, dev.Name),
				secs(e2e[0]), secs(e2e[1]), secs(e2e[2]), ratio(e2e[1], e2e[2])+"x")
		}
	}
	return t, nil
}

// ExtSnapshotCreation measures the snapshot-creation lifecycle (boot,
// init/pre-warm, serialize) that produces the memory images every
// other experiment restores from.
func ExtSnapshotCreation(o Options) (*Table, error) {
	t := &Table{
		ID:    "ext-snapshot-creation",
		Title: "Snapshot creation: boot + init + serialize per function",
		Columns: []string{"Function", "create (s)", "image (MiB)", "state (MiB)",
			"stale pool (MiB)", "zero pages"},
	}
	fns := o.functions()
	// Creation does not go through Run, so it fans out on the job pool
	// directly: each job builds its own host and deposits into its slot.
	times := make([]time.Duration, len(fns))
	imgs := make([]*snapshot.MemoryImage, len(fns))
	err := o.runJobs(len(fns), func(i int) error {
		fn := fns[i]
		h := vmm.NewHost(blockdev.MicronSATA5300())
		var createErr error
		h.Eng.Go("create", func(p *sim.Proc) {
			start := p.Now()
			imgs[i], createErr = h.CreateSnapshotImage(p, fn, false)
			times[i] = p.Now().Sub(start)
		})
		h.Eng.Run()
		if createErr != nil {
			return fmt.Errorf("create %s: %w", fn.Name, createErr)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, fn := range fns {
		img := imgs[i]
		var stalePool int64
		for pg := img.StatePages; pg < img.NrPages; pg++ {
			if img.PageTags[pg] != 0 {
				stalePool++
			}
		}
		o.progress("ext-snapshot-creation %-10s create=%v", fn.Name, times[i])
		t.AddRow(fn.Name,
			secs(times[i]),
			fmt.Sprintf("%.0f", units.PagesToMiB(img.NrPages)),
			fmt.Sprintf("%.0f", units.PagesToMiB(img.StatePages)),
			fmt.Sprintf("%.0f", units.PagesToMiB(stalePool)),
			fmt.Sprintf("%d", img.ZeroPages()))
	}
	return t, nil
}

// ExtSteadyState models a production node: repeated bursts of cold
// starts of the same function, with sandboxes torn down in between.
// Wave 1 is a true cold start; later waves find the working set warm
// in the page cache for cache-based schemes, while userfaultfd-based
// schemes rebuild their private copies from storage every wave.
func ExtSteadyState(o Options) (*Table, error) {
	const waves, perWave = 3, 5
	t := &Table{
		ID:    "ext-steady-state",
		Title: fmt.Sprintf("Steady state: %d waves x %d sandboxes, mean E2E (s) per wave", waves, perWave),
		Columns: []string{"Function", "scheme", "wave 1", "wave 2", "wave 3",
			"device (MiB)", "peak mem (GiB)"},
	}
	fns := o.functions()
	schemes := []Scheme{SchemeREAP, SchemeSnapBPF}
	// Wave runs are independent per (function, scheme); fan them out
	// on the job pool and render from the index-ordered results.
	results := make([]*WavesResult, len(fns)*len(schemes))
	err := o.runJobs(len(results), func(i int) error {
		fn, s := fns[i/len(schemes)], schemes[i%len(schemes)]
		res, err := RunWaves(fn, s, waves, perWave, 2*time.Second, blockdev.MicronSATA5300())
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for fi, fn := range fns {
		for si, s := range schemes {
			res := results[fi*len(schemes)+si]
			o.progress("ext-steady-state %-10s %-8s waves=%v", fn.Name, s.Name, res.WaveE2E)
			t.AddRow(fn.Name, res.Scheme,
				secs(res.WaveE2E[0]), secs(res.WaveE2E[1]), secs(res.WaveE2E[2]),
				fmt.Sprintf("%.1f", float64(res.DeviceBytes)/(1<<20)),
				fmt.Sprintf("%.2f", float64(res.PeakMemory)/(1<<30)))
		}
	}
	return t, nil
}

// ExtCachePressure bounds the host page cache and reruns the
// 10-instance comparison: deduplication via the page cache assumes the
// cache can hold the working set; under pressure, shared pages get
// reclaimed and refetched, while REAP's private anonymous copies are
// untouchable by reclaim — a regime the paper's 128GiB testbed never
// enters.
func ExtCachePressure(o Options) (*Table, error) {
	t := &Table{
		ID:    "ext-cache-pressure",
		Title: "Page-cache pressure: E2E (s) and evictions at 10 instances",
		Note:  "limit expressed as a multiple of the function's working set",
		Columns: []string{"Function/limit", "Linux-RA", "SnapBPF", "REAP",
			"SnapBPF evictions", "SnapBPF refetch (MiB)"},
	}
	fns := o.functions()
	mults := []float64{0, 2.0, 1.0, 0.5}
	schemes := []Scheme{SchemeLinuxRA, SchemeSnapBPF, SchemeREAP}
	label := func(mult float64) string {
		if mult > 0 {
			return fmt.Sprintf("%.1fx", mult)
		}
		return "inf"
	}
	var cells []Cell
	for _, fn := range fns {
		wsPages := fn.WSPages()
		for _, mult := range mults {
			limit := int64(0)
			if mult > 0 {
				limit = int64(float64(wsPages) * mult)
			}
			for _, s := range schemes {
				cells = append(cells, Cell{Fn: fn, Scheme: s, Cfg: Config{N: 10, CacheLimitPages: limit}})
			}
		}
	}
	rs, err := RunCells(o, cells)
	if err != nil {
		return nil, err
	}
	for fi, fn := range fns {
		wsPages := fn.WSPages()
		for mi, mult := range mults {
			base := (fi*len(mults) + mi) * len(schemes)
			ra, sb, rp := rs[base], rs[base+1], rs[base+2]
			refetch := float64(sb.DeviceBytes-int64(units.PagesToBytes(int64(wsPages)))) / float64(units.MiB)
			if refetch < 0 {
				refetch = 0
			}
			o.progress("ext-cache-pressure %-10s limit=%-4s snapbpf=%v evict=%d",
				fn.Name, label(mult), sb.MeanE2E, sb.Evictions)
			t.AddRow(fmt.Sprintf("%s/%s", fn.Name, label(mult)),
				secs(ra.MeanE2E), secs(sb.MeanE2E), secs(rp.MeanE2E),
				fmt.Sprintf("%d", sb.Evictions),
				fmt.Sprintf("%.1f", refetch))
		}
	}
	return t, nil
}

// ExtColocation runs sandboxes of several different functions on one
// host concurrently — the multi-tenant node scenario — comparing
// aggregate memory and per-function latency under REAP and SnapBPF.
func ExtColocation(o Options) (*Table, error) {
	fns := o.functions()
	if len(fns) > 5 {
		fns = fns[:5]
	}
	t := &Table{
		ID:    "ext-colocation",
		Title: fmt.Sprintf("Co-location: %d functions x 2 sandboxes each on one host", len(fns)),
		Columns: []string{"Scheme", "host memory (GiB)", "device (MiB)",
			"mean E2E across functions (s)"},
	}
	schemes := []Scheme{SchemeREAP, SchemeSnapBPF}
	results := make([]*MixedResult, len(schemes))
	err := o.runJobs(len(schemes), func(i int) error {
		res, err := RunMixed(fns, schemes[i], 2, blockdev.MicronSATA5300())
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for si, s := range schemes {
		res := results[si]
		var sum time.Duration
		for _, d := range res.PerFunction {
			sum += d
		}
		mean := sum / time.Duration(len(res.PerFunction))
		o.progress("ext-colocation %-8s mem=%v mean=%v", s.Name, res.SystemMemory, mean)
		t.AddRow(s.Name,
			fmt.Sprintf("%.2f", float64(res.SystemMemory)/(1<<30)),
			fmt.Sprintf("%.1f", float64(res.DeviceBytes)/(1<<20)),
			secs(mean))
	}
	return t, nil
}

package experiments

import (
	"testing"

	"snapbpf/internal/workload"
)

// Golden-output regression tests: the simulation is deterministic, so
// these experiments' CSV output is pinned byte for byte. A diff here
// means a change shifted the paper's reproduced results — either a bug,
// or an intentional model change whose new numbers must be reviewed
// and re-pinned.

func goldenFunctions(t *testing.T) []workload.Function {
	t.Helper()
	var fns []workload.Function
	for _, f := range workload.Suite() {
		if f.Name == "json" || f.Name == "image" {
			fns = append(fns, f)
		}
	}
	if len(fns) != 2 {
		t.Fatalf("expected json+image in suite, got %d functions", len(fns))
	}
	return fns
}

const goldenTable1CSV = `Scheme,Mechanism,On-disk WS serialization,In-memory WS dedup,Stateless VM alloc filtering
REAP,Userfaultfd (User-space),Yes,No,No
Faast,Userfaultfd (User-space),Yes,No,No
FaaSnap,mincore / mmap (User-space),Yes,Yes,No
SnapBPF,eBPF (Kernel-space),No,Yes,Yes
`

const goldenFig3aCSV = `Function,REAP,FaaSnap,SnapBPF,SnapBPF (s)
image,2.16,0.96,1.00,0.343
json,0.99,1.08,1.00,0.116
`

const goldenFig4CSV = `Function,Linux-RA,PVPTEs,SnapBPF
image,1.00,0.42,0.32
json,1.00,0.90,0.57
`

const goldenOverheadsCSV = `Function,WS groups,Load (ms),E2E (s),Load/E2E
image,240,0.218,0.343,0.06%
json,160,0.146,0.116,0.13%
`

func TestGoldenTable1(t *testing.T) {
	tbl, err := Table1(Options{Functions: goldenFunctions(t), Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.CSV(); got != goldenTable1CSV {
		t.Errorf("table1 CSV drifted:\n--- got ---\n%s--- want ---\n%s", got, goldenTable1CSV)
	}
}

func TestGoldenFig3a(t *testing.T) {
	tbl, err := Fig3a(Options{Functions: goldenFunctions(t), Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.CSV(); got != goldenFig3aCSV {
		t.Errorf("fig3a CSV drifted:\n--- got ---\n%s--- want ---\n%s", got, goldenFig3aCSV)
	}
}

func TestGoldenFig4(t *testing.T) {
	if raceEnabled {
		t.Skip("byte-pinning is value-level; the non-race suite covers it")
	}
	tbl, err := Fig4(Options{Functions: goldenFunctions(t), Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.CSV(); got != goldenFig4CSV {
		t.Errorf("fig4 CSV drifted:\n--- got ---\n%s--- want ---\n%s", got, goldenFig4CSV)
	}
}

func TestGoldenOverheads(t *testing.T) {
	if raceEnabled {
		t.Skip("byte-pinning is value-level; the non-race suite covers it")
	}
	tbl, err := Overheads(Options{Functions: goldenFunctions(t), Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.CSV(); got != goldenOverheadsCSV {
		t.Errorf("overheads CSV drifted:\n--- got ---\n%s--- want ---\n%s", got, goldenOverheadsCSV)
	}
}

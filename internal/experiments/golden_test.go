package experiments

import (
	"testing"

	"snapbpf/internal/workload"
)

// Golden-output regression tests: the simulation is deterministic, so
// these experiments' CSV output is pinned byte for byte. A diff here
// means a change shifted the paper's reproduced results — either a bug,
// or an intentional model change whose new numbers must be reviewed
// and re-pinned.

func goldenFunctions(t *testing.T) []workload.Function {
	t.Helper()
	var fns []workload.Function
	for _, f := range workload.Suite() {
		if f.Name == "json" || f.Name == "image" {
			fns = append(fns, f)
		}
	}
	if len(fns) != 2 {
		t.Fatalf("expected json+image in suite, got %d functions", len(fns))
	}
	return fns
}

const goldenTable1CSV = `Scheme,Mechanism,On-disk WS serialization,In-memory WS dedup,Stateless VM alloc filtering
REAP,Userfaultfd (User-space),Yes,No,No
Faast,Userfaultfd (User-space),Yes,No,No
FaaSnap,mincore / mmap (User-space),Yes,Yes,No
SnapBPF,eBPF (Kernel-space),No,Yes,Yes
`

const goldenFig3aCSV = `Function,REAP,FaaSnap,SnapBPF,SnapBPF (s)
image,2.16,0.96,1.00,0.343
json,0.99,1.08,1.00,0.116
`

const goldenFig4CSV = `Function,Linux-RA,PVPTEs,SnapBPF
image,1.00,0.42,0.32
json,1.00,0.90,0.57
`

const goldenOverheadsCSV = `Function,WS groups,Load (ms),E2E (s),Load/E2E
image,240,0.218,0.343,0.06%
json,160,0.146,0.116,0.13%
`

func TestGoldenTable1(t *testing.T) {
	tbl, err := Table1(Options{Functions: goldenFunctions(t), Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.CSV(); got != goldenTable1CSV {
		t.Errorf("table1 CSV drifted:\n--- got ---\n%s--- want ---\n%s", got, goldenTable1CSV)
	}
}

func TestGoldenFig3a(t *testing.T) {
	tbl, err := Fig3a(Options{Functions: goldenFunctions(t), Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.CSV(); got != goldenFig3aCSV {
		t.Errorf("fig3a CSV drifted:\n--- got ---\n%s--- want ---\n%s", got, goldenFig3aCSV)
	}
}

func TestGoldenFig4(t *testing.T) {
	if raceEnabled {
		t.Skip("byte-pinning is value-level; the non-race suite covers it")
	}
	tbl, err := Fig4(Options{Functions: goldenFunctions(t), Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.CSV(); got != goldenFig4CSV {
		t.Errorf("fig4 CSV drifted:\n--- got ---\n%s--- want ---\n%s", got, goldenFig4CSV)
	}
}

// The remaining pins run json only: fig3b regenerates five schemes per
// function and takes minutes per extra function on a small runner, and
// the json row alone already pins every scheme column byte for byte.
func goldenJSONOnly(t *testing.T) []workload.Function {
	t.Helper()
	fn, err := workload.ByName("json")
	if err != nil {
		t.Fatal(err)
	}
	return []workload.Function{fn}
}

const goldenFig3bCSV = `Function,Linux-NoRA,Linux-RA,REAP,SnapBPF,REAP/SnapBPF
json,0.983,0.204,0.639,0.116,5.53x
`

const goldenFig3cCSV = `Function,Linux-NoRA,Linux-RA,REAP,SnapBPF,REAP/SnapBPF
json,0.14,0.15,0.33,0.14,2.4x
`

const goldenAblationRAWindowCSV = `Function/window,E2E (s),device MiB,requests
json/w=0,0.983,33.5,8576
json/w=8,0.277,35.0,1120
json/w=32,0.204,37.5,300
json/w=128,0.204,47.5,95
json/w=512,0.270,84.3,171
`

// goldenPin runs an experiment serially and pins its CSV bytes, then
// reruns it on a worker pool and asserts the parallel bytes are equal —
// the schedule-independence half of the determinism contract.
func goldenPin(t *testing.T, name string, run func(Options) (*Table, error), want string) {
	t.Helper()
	fns := goldenJSONOnly(t)
	serial, err := run(Options{Functions: fns, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := serial.CSV(); got != want {
		t.Errorf("%s CSV drifted:\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
	parallel, err := run(Options{Functions: fns, Parallel: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := parallel.CSV(); got != serial.CSV() {
		t.Errorf("%s parallel CSV differs from serial:\n--- parallel ---\n%s--- serial ---\n%s",
			name, got, serial.CSV())
	}
}

func TestGoldenFig3b(t *testing.T) {
	if raceEnabled {
		t.Skip("byte-pinning is value-level; the non-race suite covers it")
	}
	goldenPin(t, "fig3b", Fig3b, goldenFig3bCSV)
}

func TestGoldenFig3c(t *testing.T) {
	if raceEnabled {
		t.Skip("byte-pinning is value-level; the non-race suite covers it")
	}
	goldenPin(t, "fig3c", Fig3c, goldenFig3cCSV)
}

func TestGoldenAblationRAWindow(t *testing.T) {
	if raceEnabled {
		t.Skip("byte-pinning is value-level; the non-race suite covers it")
	}
	goldenPin(t, "ablation-rawindow", AblationRAWindow, goldenAblationRAWindowCSV)
}

func TestGoldenOverheads(t *testing.T) {
	if raceEnabled {
		t.Skip("byte-pinning is value-level; the non-race suite covers it")
	}
	tbl, err := Overheads(Options{Functions: goldenFunctions(t), Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.CSV(); got != goldenOverheadsCSV {
		t.Errorf("overheads CSV drifted:\n--- got ---\n%s--- want ---\n%s", got, goldenOverheadsCSV)
	}
}

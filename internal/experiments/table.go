package experiments

import (
	"fmt"
	"strings"
)

// Table is a formatted experiment result: one row per function (or
// per configuration), one column per scheme/metric.
type Table struct {
	// ID is the experiment identifier ("fig3a", "table1", ...).
	ID string
	// Title describes the experiment as in the paper.
	Title string
	// Note carries methodology remarks rendered under the title.
	Note string
	// Columns holds the header; Columns[0] labels the row key.
	Columns []string
	// Rows holds the cells, each row aligned with Columns.
	Rows [][]string
}

// AddRow appends a row, padding or truncating to the column count.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render returns the table as aligned monospace text.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(&sb, "   %s\n", t.Note)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i == 0 {
				fmt.Fprintf(&sb, "%-*s", widths[i], cell)
			} else {
				fmt.Fprintf(&sb, "  %*s", widths[i], cell)
			}
		}
		sb.WriteByte('\n')
	}
	line(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return sb.String()
}

// CSV returns the table as RFC-4180-ish CSV.
func (t *Table) CSV() string {
	var sb strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cols := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = esc(c)
	}
	sb.WriteString(strings.Join(cols, ","))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = esc(c)
		}
		sb.WriteString(strings.Join(cells, ","))
		sb.WriteByte('\n')
	}
	return sb.String()
}

package experiments

import (
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := &Table{
		ID:      "sample",
		Title:   "A sample",
		Note:    "a note",
		Columns: []string{"Function", "A", "B"},
	}
	t.AddRow("json", "1.00", "2.00")
	t.AddRow("bert", "3.00", "4.00")
	return t
}

func TestRenderAligned(t *testing.T) {
	out := sampleTable().Render()
	for _, want := range []string{"== sample: A sample ==", "a note", "Function", "json", "bert", "2.00"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header/separator/rows have consistent width.
	if len(lines) < 6 {
		t.Fatalf("too few lines:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	out := sampleTable().CSV()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Function,A,B" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "json,1.00,2.00" {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestCSVEscaping(t *testing.T) {
	tbl := &Table{ID: "x", Title: "t", Columns: []string{"a", "b"}}
	tbl.AddRow(`va"l`, "x,y")
	out := tbl.CSV()
	if !strings.Contains(out, `"va""l"`) || !strings.Contains(out, `"x,y"`) {
		t.Fatalf("escaping broken: %q", out)
	}
}

func TestAddRowPadsAndTruncates(t *testing.T) {
	tbl := &Table{Columns: []string{"a", "b"}}
	tbl.AddRow("only")
	tbl.AddRow("x", "y", "z-dropped")
	if len(tbl.Rows[0]) != 2 || tbl.Rows[0][1] != "" {
		t.Fatalf("pad failed: %v", tbl.Rows[0])
	}
	if len(tbl.Rows[1]) != 2 {
		t.Fatalf("truncate failed: %v", tbl.Rows[1])
	}
}

func TestTable1Generated(t *testing.T) {
	tbl, err := Table1(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// The SnapBPF row must match the paper: kernel-space eBPF, no WS
	// serialization, dedup yes, stateless filtering yes.
	var snap []string
	for _, r := range tbl.Rows {
		if r[0] == "SnapBPF" {
			snap = r
		}
	}
	if snap == nil {
		t.Fatal("no SnapBPF row")
	}
	if snap[1] != "eBPF (Kernel-space)" || snap[2] != "No" || snap[3] != "Yes" || snap[4] != "Yes" {
		t.Fatalf("SnapBPF row = %v", snap)
	}
}

func TestAllExperimentIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil {
			t.Fatalf("experiment %q has no runner", e.ID)
		}
	}
	for _, want := range []string{"table1", "fig3a", "fig3b", "fig3c", "fig4", "overheads"} {
		if !seen[want] {
			t.Fatalf("missing experiment %q", want)
		}
	}
}

package experiments

import (
	"fmt"
	"time"

	"snapbpf/internal/cluster"
	"snapbpf/internal/workload"
)

// ClusterParams tunes the cluster experiment: region size, the router
// and keep-alive sweep, admission control, and the workload spec. The
// zero value (reached via Options.Cluster == nil) is the golden
// 4-host/3-tenant configuration the byte-pinned CSV and CI cmp runs
// use.
type ClusterParams struct {
	// Hosts is the region size (default 4). HostNames optionally
	// labels hosts; labels never affect behaviour.
	Hosts     int
	HostNames []string

	// Routers and Budgets define the sweep: one cell per (router,
	// keep-alive budget) pair. Defaults: every router × {0, 2}.
	Routers []cluster.RouterKind
	Budgets []int

	// IdleTimeout applies to every nonzero budget (default: keep
	// until end of run).
	IdleTimeout time.Duration

	// Admission arms the front-end token bucket (default 2/s, burst
	// 4 — the golden workload offers ~2.6/s, so a visible but small
	// fraction is rejected).
	Admission *cluster.Admission

	// Spec overrides the golden workload.
	Spec *workload.ClusterSpec
}

func (o Options) clusterParams() ClusterParams {
	var p ClusterParams
	if o.Cluster != nil {
		p = *o.Cluster
	}
	if p.Hosts == 0 {
		p.Hosts = 4
	}
	if p.Routers == nil {
		p.Routers = cluster.Routers()
	}
	if p.Budgets == nil {
		p.Budgets = []int{0, 2}
	}
	if p.Admission == nil {
		p.Admission = &cluster.Admission{RatePerSec: 2, Burst: 4}
	}
	if p.Spec == nil {
		s := GoldenClusterSpec()
		p.Spec = &s
	}
	return p
}

// GoldenClusterSpec is the fixed 4-host/3-tenant workload behind the
// cluster experiment's byte-pinned golden CSV: an interactive tenant
// (Poisson, latency class), a steady tenant (smooth Gamma), and a
// bursty tenant (Gamma shape 0.5, Zipf function popularity), all over
// small functions so the experiment stays CI-sized.
func GoldenClusterSpec() workload.ClusterSpec {
	return workload.ClusterSpec{
		Seed:    2,
		Horizon: 12 * time.Second,
		Tenants: []workload.TenantSpec{
			{Name: "interactive", RatePerSec: 1.2, Arrival: workload.ArrivalPoisson,
				Funcs: []workload.FuncShare{{Name: "json", Weight: 3}, {Name: "html", Weight: 1}},
				Class: workload.ClassLatency},
			{Name: "steady", RatePerSec: 0.8, Arrival: workload.ArrivalGamma, Shape: 2,
				Funcs: []workload.FuncShare{{Name: "pyaes", Weight: 1}},
				Class: workload.ClassStandard},
			{Name: "bursty", RatePerSec: 0.8, Arrival: workload.ArrivalGamma, Shape: 0.5,
				Funcs: []workload.FuncShare{{Name: "html"}, {Name: "json"}}, Zipf: 1,
				Class: workload.ClassBatch},
		},
	}
}

// Cluster runs the region-scale experiment: the golden workload
// dispatched across Hosts hosts under every (router, keep-alive
// budget) cell, reporting per-class and per-tenant latency
// percentiles, cold/warm/rejected counts, fairness, and storage
// traffic. This is the figure family the single-host paper cannot
// produce: cold-start latency vs routing policy vs warm-pool budget.
func Cluster(o Options) (*Table, error) {
	p := o.clusterParams()
	arrivals, err := p.Spec.Arrivals()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "cluster",
		Title: fmt.Sprintf("Region of %d hosts: routing x keep-alive under the golden multi-tenant workload", p.Hosts),
		Note:  "SnapBPF on every host; rej = admission drops; fair = Jain index over per-tenant means",
		Columns: []string{"Config", "Scope", "N", "cold", "warm", "rej",
			"p50 (s)", "p95 (s)", "p99 (s)", "cold mean (s)", "cold p99 (s)", "fair", "device MiB"},
	}
	type cell struct {
		router cluster.RouterKind
		budget int
	}
	var cells []cell
	for _, r := range p.Routers {
		for _, b := range p.Budgets {
			cells = append(cells, cell{r, b})
		}
	}
	results := make([]*cluster.Result, len(cells))
	err = o.runJobs(len(cells), func(i int) error {
		c := cells[i]
		res, err := cluster.Run(cluster.Config{
			Hosts:     p.Hosts,
			HostNames: p.HostNames,
			Scheme:    cluster.Scheme{Name: SchemeSnapBPF.Name, New: SchemeSnapBPF.New},
			Router:    c.router,
			Admission: p.Admission,
			KeepAlive: cluster.KeepAlive{Budget: c.budget, IdleTimeout: p.IdleTimeout},
			Arrivals:  arrivals,
			Faults:    o.Faults,
			Check:     o.Check,
			Obs:       o.Obs,
		})
		if err != nil {
			return fmt.Errorf("cluster %s/ka=%d: %w", c.router, c.budget, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		res := results[i]
		label := fmt.Sprintf("%s/ka=%d", c.router, c.budget)
		o.progress("cluster %-18s admitted=%d cold=%d warm=%d rejected=%d",
			label, res.Admitted, res.Cold, res.Warm, res.Rejected)
		clusterRows(t, label, res)
		if o.ObsSinkNamed != nil {
			for _, hs := range res.Hosts {
				if hs.Obs != nil {
					o.ObsSinkNamed(fmt.Sprintf("cluster/%s/%s", label, hs.Name), hs.Obs)
				}
			}
		}
	}
	return t, nil
}

// clusterRows appends one cell's rows: the "all" aggregate, then one
// row per SLO class and per tenant, all in sorted-key order.
func clusterRows(t *Table, label string, res *cluster.Result) {
	addScope := func(scope string, keep func(*cluster.Invocation) bool, all bool) {
		var n, cold, warm, rej int
		for _, inv := range res.Invocations {
			if keep != nil && !keep(inv) {
				continue
			}
			if inv.Rejected {
				rej++
				continue
			}
			n++
			if inv.Warm {
				warm++
			} else {
				cold++
			}
		}
		lat := res.Latency(keep)
		coldLat := res.ColdLatency(keep)
		fair, dev := "", ""
		if all {
			fair = fmt.Sprintf("%.3f", res.Fairness())
			dev = fmt.Sprintf("%.1f", float64(res.DeviceBytes())/(1<<20))
		}
		t.AddRow(label, scope,
			fmt.Sprintf("%d", n), fmt.Sprintf("%d", cold), fmt.Sprintf("%d", warm),
			fmt.Sprintf("%d", rej),
			secs(lat.P50), secs(lat.P95), secs(lat.P99),
			secs(coldLat.Mean), secs(coldLat.P99),
			fair, dev)
	}
	addScope("all", nil, true)
	for _, cl := range res.Classes() {
		cl := cl
		addScope("class:"+string(cl), func(inv *cluster.Invocation) bool { return inv.Class == cl }, false)
	}
	for _, tn := range res.Tenants() {
		tn := tn
		addScope("tenant:"+tn, func(inv *cluster.Invocation) bool { return inv.Tenant == tn }, false)
	}
}

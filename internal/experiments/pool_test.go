package experiments

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"snapbpf/internal/workload"
)

func TestRunCellsOrderPreserving(t *testing.T) {
	fn := tinyFn()
	schemes := []Scheme{SchemeLinuxRA, SchemeREAP, SchemeSnapBPF}
	var cells []Cell
	for _, s := range schemes {
		for _, n := range []int{1, 2} {
			cells = append(cells, Cell{Fn: fn, Scheme: s, Cfg: Config{N: n}})
		}
	}
	rs, err := RunCells(Options{Parallel: 4}, cells)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(cells) {
		t.Fatalf("got %d results for %d cells", len(rs), len(cells))
	}
	for i, c := range cells {
		if rs[i] == nil {
			t.Fatalf("cell %d: nil result", i)
		}
		if rs[i].Scheme != c.Scheme.Name || rs[i].N != c.Cfg.N {
			t.Fatalf("cell %d: result (%s, N=%d) does not match cell (%s, N=%d)",
				i, rs[i].Scheme, rs[i].N, c.Scheme.Name, c.Cfg.N)
		}
	}
}

func TestRunJobsFirstErrorWins(t *testing.T) {
	// Job 5 fails instantly; job 2 fails after the others are done.
	// The reported error must still be job 2's — the lowest index —
	// regardless of completion order.
	errLow := errors.New("low")
	errHigh := errors.New("high")
	var mu sync.Mutex
	started := 0
	err := Options{Parallel: 4}.runJobs(8, func(i int) error {
		mu.Lock()
		started++
		mu.Unlock()
		switch i {
		case 2:
			time.Sleep(20 * time.Millisecond)
			return errLow
		case 5:
			return errHigh
		}
		return nil
	})
	if !errors.Is(err, errLow) {
		t.Fatalf("got %v, want the lowest-indexed error %v", err, errLow)
	}
	if started != 8 {
		t.Fatalf("ran %d jobs, want all 8", started)
	}
}

func TestRunJobsSerialStopsAtFirstError(t *testing.T) {
	boom := errors.New("boom")
	ran := 0
	err := Options{Parallel: 1}.runJobs(5, func(i int) error {
		ran++
		if i == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
	if ran != 3 {
		t.Fatalf("serial mode ran %d jobs after a failure at index 2, want 3", ran)
	}
}

func TestRunJobsPanicRecovered(t *testing.T) {
	for _, par := range []int{1, 4} {
		err := Options{Parallel: par}.runJobs(4, func(i int) error {
			if i == 1 {
				panic("cell exploded")
			}
			return nil
		})
		if err == nil || !strings.Contains(err.Error(), "cell exploded") {
			t.Fatalf("parallel=%d: panic not converted to error: %v", par, err)
		}
		if !strings.Contains(err.Error(), "job 1") {
			t.Fatalf("parallel=%d: error does not identify the job: %v", par, err)
		}
	}
}

// TestFig3bSerialParallelIdentical is the determinism contract: the
// CSV (and the -v progress stream) of a figure must be byte-identical
// whether its cells ran serially or across workers.
func TestFig3bSerialParallelIdentical(t *testing.T) {
	run := func(par int) (string, []string) {
		var lines []string
		o := Options{
			Functions: []workload.Function{tinyFn()},
			Parallel:  par,
			Progress:  func(msg string) { lines = append(lines, msg) },
		}
		tbl, err := Fig3b(o)
		if err != nil {
			t.Fatal(err)
		}
		return tbl.CSV(), lines
	}
	serialCSV, serialLines := run(1)
	parallelCSV, parallelLines := run(4)
	if serialCSV != parallelCSV {
		t.Fatalf("fig3b CSV differs between serial and parallel runs:\nserial:\n%s\nparallel:\n%s",
			serialCSV, parallelCSV)
	}
	if fmt.Sprint(serialLines) != fmt.Sprint(parallelLines) {
		t.Fatalf("progress lines differ between serial and parallel runs:\n%v\n%v",
			serialLines, parallelLines)
	}
}

package experiments

import (
	"testing"
	"time"

	"snapbpf/internal/cluster"
	"snapbpf/internal/ebpf"
	"snapbpf/internal/workload"
)

// A 1-host cluster under round-robin with back-to-back arrivals is,
// by construction, the single-host experiment: same stack, same
// shared clock, same FIFO order. The reference Run and the cluster
// run must agree invocation for invocation and digest for digest —
// the metamorphic anchor tying the region model to the validated
// single-host model.
func TestClusterSingleHostEquivalence(t *testing.T) {
	const n = 3
	fn, err := workload.ByName("json")
	if err != nil {
		t.Fatal(err)
	}
	single, err := Run(fn, SchemeSnapBPF, Config{N: n, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	arrivals := make([]workload.Arrival, n)
	for i := range arrivals {
		arrivals[i] = workload.Arrival{Tenant: "t", Seq: i, Fn: "json", Class: workload.ClassStandard}
	}
	region, err := cluster.Run(cluster.Config{
		Hosts:    1,
		Scheme:   cluster.Scheme{Name: SchemeSnapBPF.Name, New: SchemeSnapBPF.New},
		Router:   cluster.RouterRoundRobin,
		Arrivals: arrivals,
		Check:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(region.Invocations) != n || region.Cold != n {
		t.Fatalf("cluster ran %d invocations (%d cold), want %d cold", len(region.Invocations), region.Cold, n)
	}
	for i, inv := range region.Invocations {
		if inv.E2E != single.E2E[i] {
			t.Errorf("invocation %d: cluster E2E %v != single-host %v", i, inv.E2E, single.E2E[i])
		}
	}
	if got := region.Digests["json"]; got != single.Digest {
		t.Errorf("digest mismatch: cluster %016x != single-host %016x", got, single.Digest)
	}
}

const goldenClusterCSV = `Config,Scope,N,cold,warm,rej,p50 (s),p95 (s),p99 (s),cold mean (s),cold p99 (s),fair,device MiB
roundrobin/ka=0,all,23,23,0,7,0.103,0.116,0.116,0.093,0.116,0.977,173.2
roundrobin/ka=0,class:batch,6,6,0,1,0.103,0.116,0.116,0.094,0.116,,
roundrobin/ka=0,class:latency,10,10,0,4,0.103,0.116,0.116,0.107,0.116,,
roundrobin/ka=0,class:standard,7,7,0,2,0.078,0.078,0.078,0.073,0.078,,
roundrobin/ka=0,tenant:bursty,6,6,0,1,0.103,0.116,0.116,0.094,0.116,,
roundrobin/ka=0,tenant:interactive,10,10,0,4,0.103,0.116,0.116,0.107,0.116,,
roundrobin/ka=0,tenant:steady,7,7,0,2,0.078,0.078,0.078,0.073,0.078,,
roundrobin/ka=2,all,23,11,12,7,0.080,0.116,0.116,0.089,0.116,0.989,173.2
roundrobin/ka=2,class:batch,6,3,3,1,0.080,0.116,0.116,0.085,0.116,,
roundrobin/ka=2,class:latency,10,3,7,4,0.080,0.116,0.116,0.116,0.116,,
roundrobin/ka=2,class:standard,7,5,2,2,0.078,0.078,0.078,0.076,0.078,,
roundrobin/ka=2,tenant:bursty,6,3,3,1,0.080,0.116,0.116,0.085,0.116,,
roundrobin/ka=2,tenant:interactive,10,3,7,4,0.080,0.116,0.116,0.116,0.116,,
roundrobin/ka=2,tenant:steady,7,5,2,2,0.078,0.078,0.078,0.076,0.078,,
leastloaded/ka=0,all,23,23,0,7,0.103,0.116,0.116,0.091,0.116,0.972,112.7
leastloaded/ka=0,class:batch,6,6,0,1,0.103,0.103,0.103,0.090,0.103,,
leastloaded/ka=0,class:latency,10,10,0,4,0.103,0.116,0.116,0.107,0.116,,
leastloaded/ka=0,class:standard,7,7,0,2,0.067,0.078,0.078,0.070,0.078,,
leastloaded/ka=0,tenant:bursty,6,6,0,1,0.103,0.103,0.103,0.090,0.103,,
leastloaded/ka=0,tenant:interactive,10,10,0,4,0.103,0.116,0.116,0.107,0.116,,
leastloaded/ka=0,tenant:steady,7,7,0,2,0.067,0.078,0.078,0.070,0.078,,
leastloaded/ka=2,all,23,6,17,7,0.080,0.116,0.116,0.087,0.116,0.983,86.6
leastloaded/ka=2,class:batch,6,1,5,1,0.080,0.080,0.080,0.070,0.070,,
leastloaded/ka=2,class:latency,10,2,8,4,0.080,0.116,0.116,0.116,0.116,,
leastloaded/ka=2,class:standard,7,3,4,2,0.055,0.078,0.078,0.074,0.078,,
leastloaded/ka=2,tenant:bursty,6,1,5,1,0.080,0.080,0.080,0.070,0.070,,
leastloaded/ka=2,tenant:interactive,10,2,8,4,0.080,0.116,0.116,0.116,0.116,,
leastloaded/ka=2,tenant:steady,7,3,4,2,0.055,0.078,0.078,0.074,0.078,,
affinity/ka=0,all,23,23,0,7,0.103,0.103,0.116,0.090,0.116,0.972,51.4
affinity/ka=0,class:batch,6,6,0,1,0.103,0.103,0.103,0.090,0.103,,
affinity/ka=0,class:latency,10,10,0,4,0.103,0.116,0.116,0.104,0.116,,
affinity/ka=0,class:standard,7,7,0,2,0.067,0.078,0.078,0.068,0.078,,
affinity/ka=0,tenant:bursty,6,6,0,1,0.103,0.103,0.103,0.090,0.103,,
affinity/ka=0,tenant:interactive,10,10,0,4,0.103,0.116,0.116,0.104,0.116,,
affinity/ka=0,tenant:steady,7,7,0,2,0.067,0.078,0.078,0.068,0.078,,
affinity/ka=2,all,23,5,18,7,0.080,0.103,0.116,0.087,0.116,0.979,51.4
affinity/ka=2,class:batch,6,1,5,1,0.080,0.080,0.080,0.070,0.070,,
affinity/ka=2,class:latency,10,2,8,4,0.080,0.116,0.116,0.109,0.116,,
affinity/ka=2,class:standard,7,2,5,2,0.055,0.078,0.078,0.072,0.078,,
affinity/ka=2,tenant:bursty,6,1,5,1,0.080,0.080,0.080,0.070,0.070,,
affinity/ka=2,tenant:interactive,10,2,8,4,0.080,0.116,0.116,0.109,0.116,,
affinity/ka=2,tenant:steady,7,2,5,2,0.055,0.078,0.078,0.072,0.078,,
`

// TestGoldenCluster pins the full 6-cell cluster table byte for byte,
// serially and on a worker pool.
func TestGoldenCluster(t *testing.T) {
	if raceEnabled {
		t.Skip("byte-pinning is value-level; the non-race suite covers it")
	}
	serial, err := Cluster(Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := serial.CSV(); got != goldenClusterCSV {
		t.Errorf("cluster CSV drifted:\n--- got ---\n%s--- want ---\n%s", got, goldenClusterCSV)
	}
	parallel, err := Cluster(Options{Parallel: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := parallel.CSV(); got != serial.CSV() {
		t.Errorf("cluster parallel CSV differs from serial:\n--- parallel ---\n%s--- serial ---\n%s",
			got, serial.CSV())
	}
}

// cheapClusterOptions is a single affinity/ka=2 cell — enough to
// exercise the whole pipeline per metamorphic rerun without paying
// for the full sweep.
func cheapClusterOptions(p ClusterParams) Options {
	p.Routers = []cluster.RouterKind{cluster.RouterAffinity}
	p.Budgets = []int{2}
	return Options{Parallel: 1, Cluster: &p}
}

// Permuting tenant declaration order must leave the CSV byte-identical:
// tenant streams are seeded from tenant names, and all reporting
// iterates sorted keys.
func TestClusterTenantOrderMetamorphic(t *testing.T) {
	if raceEnabled {
		t.Skip("byte-pinning is value-level; the non-race suite covers it")
	}
	base := GoldenClusterSpec()
	perm := GoldenClusterSpec()
	perm.Tenants = []workload.TenantSpec{base.Tenants[2], base.Tenants[0], base.Tenants[1]}
	want, err := Cluster(cheapClusterOptions(ClusterParams{Spec: &base}))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Cluster(cheapClusterOptions(ClusterParams{Spec: &perm}))
	if err != nil {
		t.Fatal(err)
	}
	if got.CSV() != want.CSV() {
		t.Errorf("tenant declaration order changed the CSV:\n--- permuted ---\n%s--- base ---\n%s",
			got.CSV(), want.CSV())
	}
}

// Renaming hosts must leave the CSV byte-identical: names are labels,
// and routing/reporting go by host index.
func TestClusterHostNamesMetamorphic(t *testing.T) {
	if raceEnabled {
		t.Skip("byte-pinning is value-level; the non-race suite covers it")
	}
	want, err := Cluster(cheapClusterOptions(ClusterParams{}))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Cluster(cheapClusterOptions(ClusterParams{
		HostNames: []string{"zebra", "yak", "xerus", "wombat"},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if got.CSV() != want.CSV() {
		t.Errorf("host names changed the CSV:\n--- renamed ---\n%s--- base ---\n%s",
			got.CSV(), want.CSV())
	}
}

// The eBPF engine may change how fast the cluster table computes,
// never its bytes.
func TestClusterEnginesIdentical(t *testing.T) {
	if raceEnabled {
		t.Skip("byte-pinning is value-level; the non-race suite covers it")
	}
	runWith := func(e ebpf.Engine) string {
		prev := ebpf.DefaultEngine()
		ebpf.SetDefaultEngine(e)
		defer ebpf.SetDefaultEngine(prev)
		tbl, err := Cluster(cheapClusterOptions(ClusterParams{}))
		if err != nil {
			t.Fatal(err)
		}
		return tbl.CSV()
	}
	interp := runWith(ebpf.EngineInterp)
	jit := runWith(ebpf.EngineJIT)
	if interp != jit {
		t.Errorf("cluster CSV differs across engines:\n--- interp ---\n%s--- jit ---\n%s", interp, jit)
	}
}

// Snapshot-affinity routing must beat round-robin on the golden
// workload: colder caches mean slower cold starts and more device
// traffic under round-robin.
func TestClusterAffinityBeatsRoundRobin(t *testing.T) {
	spec := GoldenClusterSpec()
	arrivals, err := spec.Arrivals()
	if err != nil {
		t.Fatal(err)
	}
	run := func(r cluster.RouterKind) *cluster.Result {
		res, err := cluster.Run(cluster.Config{
			Hosts:    4,
			Scheme:   cluster.Scheme{Name: SchemeSnapBPF.Name, New: SchemeSnapBPF.New},
			Router:   r,
			Arrivals: arrivals,
			Check:    true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	rr := run(cluster.RouterRoundRobin)
	aff := run(cluster.RouterAffinity)
	rrCold, affCold := rr.ColdLatency(nil), aff.ColdLatency(nil)
	if affCold.Mean >= rrCold.Mean {
		t.Errorf("affinity cold mean %v not below round-robin %v", affCold.Mean, rrCold.Mean)
	}
	if affCold.P99 > rrCold.P99 {
		t.Errorf("affinity cold p99 %v above round-robin %v", affCold.P99, rrCold.P99)
	}
	if aff.DeviceBytes() >= rr.DeviceBytes() {
		t.Errorf("affinity device traffic %d not below round-robin %d", aff.DeviceBytes(), rr.DeviceBytes())
	}
	if time.Duration(0) == rrCold.Mean {
		t.Error("round-robin cold mean is zero — workload produced no cold starts")
	}
}

package experiments

import (
	"fmt"

	"snapbpf/internal/blockdev"
	"snapbpf/internal/core"
	"snapbpf/internal/prefetch"
	"snapbpf/internal/prefetch/faasnap"
	"snapbpf/internal/prefetch/reap"
	"snapbpf/internal/units"
	"snapbpf/internal/workload"
)

// Ablation experiments: design-choice sensitivity studies the paper's
// text motivates but does not plot.

// AblationGrouping quantifies §3.1's offset grouping: per-page
// prefetch requests versus contiguous ranges ("we do minimize the
// number of block requests the kernel issues to storage by grouping
// the pages into contiguous ranges, to reduce SW overhead").
func AblationGrouping(o Options) (*Table, error) {
	grouped := Scheme{"SnapBPF", func() prefetch.Prefetcher { return core.New() }}
	perPage := Scheme{"SnapBPF-per-page", func() prefetch.Prefetcher {
		s := core.New()
		s.DisableGrouping = true
		s.SetName("SnapBPF-per-page")
		return s
	}}
	t := &Table{
		ID:      "ablation-grouping",
		Title:   "Offset grouping: contiguous ranges vs per-page requests",
		Columns: []string{"Function", "grouped E2E (s)", "per-page E2E (s)", "grouped reqs", "per-page reqs", "load grouped (ms)", "load per-page (ms)"},
	}
	fns := o.functions()
	rs, err := RunCells(o, grid(fns, []Scheme{grouped, perPage}, Config{N: 1}))
	if err != nil {
		return nil, err
	}
	for fi, fn := range fns {
		g, p := rs[2*fi], rs[2*fi+1]
		o.progress("ablation-grouping %-10s grouped=%v per-page=%v", fn.Name, g.MeanE2E, p.MeanE2E)
		t.AddRow(fn.Name, secs(g.MeanE2E), secs(p.MeanE2E),
			fmt.Sprintf("%d", g.DeviceRequests), fmt.Sprintf("%d", p.DeviceRequests),
			fmt.Sprintf("%.3f", g.OffsetLoad.Seconds()*1000),
			fmt.Sprintf("%.3f", p.OffsetLoad.Seconds()*1000))
	}
	return t, nil
}

// AblationSort quantifies §3.1's earliest-access group ordering
// against plain file-offset order.
func AblationSort(o Options) (*Table, error) {
	sorted := Scheme{"SnapBPF", func() prefetch.Prefetcher { return core.New() }}
	offset := Scheme{"SnapBPF-offset-order", func() prefetch.Prefetcher {
		s := core.New()
		s.OffsetOrder = true
		s.SetName("SnapBPF-offset-order")
		return s
	}}
	t := &Table{
		ID:      "ablation-sort",
		Title:   "Prefetch issue order: earliest-access vs file-offset",
		Columns: []string{"Function", "access-order E2E (s)", "offset-order E2E (s)", "delta"},
	}
	fns := o.functions()
	rs, err := RunCells(o, grid(fns, []Scheme{sorted, offset}, Config{N: 1}))
	if err != nil {
		return nil, err
	}
	for fi, fn := range fns {
		a, b := rs[2*fi], rs[2*fi+1]
		o.progress("ablation-sort %-10s access=%v offset=%v", fn.Name, a.MeanE2E, b.MeanE2E)
		t.AddRow(fn.Name, secs(a.MeanE2E), secs(b.MeanE2E), ratio(b.MeanE2E, a.MeanE2E)+"x")
	}
	return t, nil
}

// AblationCoW reproduces the §4 Memory paragraph: unpatched KVM
// forcibly write-maps read nested faults, CoWing page-cache pages and
// destroying deduplication.
func AblationCoW(o Options) (*Table, error) {
	patched := Scheme{"SnapBPF", func() prefetch.Prefetcher { return core.New() }}
	unpatched := Scheme{"SnapBPF-unpatched-KVM", func() prefetch.Prefetcher {
		s := core.New()
		s.UnpatchedKVM = true
		s.SetName("SnapBPF-unpatched-KVM")
		return s
	}}
	t := &Table{
		ID:      "ablation-cow",
		Title:   "KVM CoW patch: memory at 10 concurrent instances (GiB)",
		Note:    "unpatched KVM write-maps read faults, forcing CoW of shared pages",
		Columns: []string{"Function", "patched", "unpatched", "inflation"},
	}
	gib := func(b int64) string { return fmt.Sprintf("%.2f", float64(b)/(1<<30)) }
	fns := o.functions()
	rs, err := RunCells(o, grid(fns, []Scheme{patched, unpatched}, Config{N: 10}))
	if err != nil {
		return nil, err
	}
	for fi, fn := range fns {
		a, b := rs[2*fi], rs[2*fi+1]
		o.progress("ablation-cow %-10s patched=%v unpatched=%v", fn.Name, a.SystemMemory, b.SystemMemory)
		t.AddRow(fn.Name, gib(int64(a.SystemMemory)), gib(int64(b.SystemMemory)),
			fmt.Sprintf("%.1fx", float64(b.SystemMemory)/float64(a.SystemMemory)))
	}
	return t, nil
}

// AblationCoalesce sweeps FaaSnap's region-coalescing gap, exposing
// the §2.1 trade-off: fewer mmap regions vs working-set file
// inflation and I/O amplification.
func AblationCoalesce(o Options) (*Table, error) {
	gaps := []int64{0, 8, 32, 128, 512}
	t := &Table{
		ID:      "ablation-coalesce",
		Title:   "FaaSnap coalescing gap sweep: regions vs I/O amplification",
		Columns: []string{"Function/gap", "regions", "WS file (MiB)", "inflation", "E2E (s)"},
	}
	type item struct {
		fn  workload.Function
		gap int64
	}
	var items []item
	for _, fn := range o.functions() {
		for _, gap := range gaps {
			items = append(items, item{fn, gap})
		}
	}
	// The table needs each cell's FaaSnap instance (for its working
	// set), so every cell's factory deposits the prefetcher it built
	// into the cell's own slot; RunCells's completion barrier orders
	// those writes before the reads below.
	pfs := make([]*faasnap.FaaSnap, len(items))
	cells := make([]Cell, len(items))
	for idx, it := range items {
		idx, gap := idx, it.gap
		cells[idx] = Cell{Fn: it.fn, Scheme: Scheme{"FaaSnap", func() prefetch.Prefetcher {
			f := faasnap.New()
			f.CoalesceGap = gap
			pfs[idx] = f
			return f
		}}, Cfg: Config{N: 1}}
	}
	rs, err := RunCells(o, cells)
	if err != nil {
		return nil, err
	}
	for idx, it := range items {
		res, ws := rs[idx], pfs[idx].WorkingSet()
		o.progress("ablation-coalesce %-10s gap=%-4d regions=%d E2E=%v",
			it.fn.Name, it.gap, len(ws.Regions), res.MeanE2E)
		t.AddRow(fmt.Sprintf("%s/gap=%d", it.fn.Name, it.gap),
			fmt.Sprintf("%d", len(ws.Regions)),
			fmt.Sprintf("%.1f", units.PagesToMiB(ws.TotalPages())),
			fmt.Sprintf("%.2fx", ws.Inflation()),
			secs(res.MeanE2E))
	}
	return t, nil
}

// AblationDirectIO compares REAP's direct-I/O working-set reads with
// buffered reads (§2.1: REAP and Faast "use direct IO when fetching
// the snapshot from storage, to bypass the page cache and avoid the
// overhead of intermediate memory copies").
func AblationDirectIO(o Options) (*Table, error) {
	direct := Scheme{"REAP", func() prefetch.Prefetcher { return reap.New() }}
	buffered := Scheme{"REAP-buffered", func() prefetch.Prefetcher {
		r := reap.New()
		r.DirectIO = false
		return r
	}}
	t := &Table{
		ID:      "ablation-directio",
		Title:   "REAP working-set fetch: direct vs buffered I/O",
		Columns: []string{"Function", "direct E2E (s)", "buffered E2E (s)", "buffered/direct"},
	}
	fns := o.functions()
	rs, err := RunCells(o, grid(fns, []Scheme{direct, buffered}, Config{N: 1}))
	if err != nil {
		return nil, err
	}
	for fi, fn := range fns {
		a, b := rs[2*fi], rs[2*fi+1]
		o.progress("ablation-directio %-10s direct=%v buffered=%v", fn.Name, a.MeanE2E, b.MeanE2E)
		t.AddRow(fn.Name, secs(a.MeanE2E), secs(b.MeanE2E), ratio(b.MeanE2E, a.MeanE2E)+"x")
	}
	return t, nil
}

// AblationRAWindow sweeps the Linux readahead window for the
// demand-paging baseline (the paper pins it at the 128KiB default).
func AblationRAWindow(o Options) (*Table, error) {
	windows := []int64{0, 8, 32, 128, 512}
	t := &Table{
		ID:      "ablation-rawindow",
		Title:   "Linux readahead window sweep (pages)",
		Columns: []string{"Function/window", "E2E (s)", "device MiB", "requests"},
	}
	fns := o.functions()
	var cells []Cell
	for _, fn := range fns {
		for _, w := range windows {
			w := w
			cells = append(cells, Cell{Fn: fn, Scheme: Scheme{fmt.Sprintf("Linux-RA-%d", w),
				func() prefetch.Prefetcher {
					return prefetch.NewLinuxWithWindow(w, fmt.Sprintf("Linux-RA-%d", w))
				}}, Cfg: Config{N: 1}})
		}
	}
	rs, err := RunCells(o, cells)
	if err != nil {
		return nil, err
	}
	for fi, fn := range fns {
		for wi, w := range windows {
			res := rs[fi*len(windows)+wi]
			o.progress("ablation-rawindow %-10s w=%-4d E2E=%v", fn.Name, w, res.MeanE2E)
			t.AddRow(fmt.Sprintf("%s/w=%d", fn.Name, w), secs(res.MeanE2E),
				fmt.Sprintf("%.1f", float64(res.DeviceBytes)/(1<<20)),
				fmt.Sprintf("%d", res.DeviceRequests))
		}
	}
	return t, nil
}

// AblationDrift perturbs the guest allocator between record and
// invocation, probing each scheme's sensitivity to working-set drift
// for ephemeral allocations (§2.2: "the working set pages will differ
// between invocations").
func AblationDrift(o Options) (*Table, error) {
	schemes := []Scheme{SchemeREAP, SchemeFaast, SchemeSnapBPF}
	t := &Table{
		ID:      "ablation-drift",
		Title:   "Allocator drift sensitivity: E2E (s) with drifted free lists",
		Columns: []string{"Function", "REAP", "REAP+drift", "Faast", "Faast+drift", "SnapBPF", "SnapBPF+drift"},
	}
	fns := o.functions()
	cfgs := []Config{{N: 1}, {N: 1, AllocDrift: 3}}
	var cells []Cell
	for _, fn := range fns {
		for _, s := range schemes {
			for _, cfg := range cfgs {
				cells = append(cells, Cell{Fn: fn, Scheme: s, Cfg: cfg})
			}
		}
	}
	rs, err := RunCells(o, cells)
	if err != nil {
		return nil, err
	}
	for fi, fn := range fns {
		row := []string{fn.Name}
		for si, s := range schemes {
			base := rs[(fi*len(schemes)+si)*2]
			drift := rs[(fi*len(schemes)+si)*2+1]
			o.progress("ablation-drift %-10s %-8s base=%v drift=%v", fn.Name, s.Name, base.MeanE2E, drift.MeanE2E)
			row = append(row, secs(base.MeanE2E), secs(drift.MeanE2E))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// AblationHDD reruns Fig3a-style comparisons on a spindle disk,
// probing the paper's premise that modern SSDs make non-sequential
// working-set reads from the snapshot file affordable (§3.1).
func AblationHDD(o Options) (*Table, error) {
	t := &Table{
		ID:      "ablation-hdd",
		Title:   "Storage sensitivity: E2E (s) on SSD vs 7200rpm HDD",
		Note:    "SnapBPF reads the WS non-sequentially from the snapshot; REAP reads a sequential WS file",
		Columns: []string{"Function", "SnapBPF SSD", "SnapBPF HDD", "REAP SSD", "REAP HDD"},
	}
	fns := o.functions()
	schemes := []Scheme{SchemeSnapBPF, SchemeREAP}
	cfgs := []Config{{N: 1}, {N: 1, Device: blockdev.SpindleHDD()}}
	var cells []Cell
	for _, fn := range fns {
		for _, s := range schemes {
			for _, cfg := range cfgs {
				cells = append(cells, Cell{Fn: fn, Scheme: s, Cfg: cfg})
			}
		}
	}
	rs, err := RunCells(o, cells)
	if err != nil {
		return nil, err
	}
	for fi, fn := range fns {
		row := []string{fn.Name}
		for si, s := range schemes {
			ssd := rs[(fi*len(schemes)+si)*2]
			hdd := rs[(fi*len(schemes)+si)*2+1]
			o.progress("ablation-hdd %-10s %-8s ssd=%v hdd=%v", fn.Name, s.Name, ssd.MeanE2E, hdd.MeanE2E)
			row = append(row, secs(ssd.MeanE2E), secs(hdd.MeanE2E))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// All returns every experiment keyed by id, in report order.
func All() []struct {
	ID  string
	Run func(Options) (*Table, error)
} {
	return []struct {
		ID  string
		Run func(Options) (*Table, error)
	}{
		{"table1", Table1},
		{"fig3a", Fig3a},
		{"fig3b", Fig3b},
		{"fig3c", Fig3c},
		{"fig4", Fig4},
		{"overheads", Overheads},
		{"ablation-grouping", AblationGrouping},
		{"ablation-sort", AblationSort},
		{"ablation-cow", AblationCoW},
		{"ablation-coalesce", AblationCoalesce},
		{"ablation-directio", AblationDirectIO},
		{"ablation-rawindow", AblationRAWindow},
		{"ablation-drift", AblationDrift},
		{"ablation-hdd", AblationHDD},
		{"chaos", Chaos},
		{"ext-varying-inputs", ExtVaryingInputs},
		{"ext-concurrency", ExtConcurrency},
		{"ext-cost-analysis", ExtCostAnalysis},
		{"ext-colocation", ExtColocation},
		{"ext-devices", ExtDevices},
		{"ext-snapshot-creation", ExtSnapshotCreation},
		{"ext-cache-pressure", ExtCachePressure},
		{"ext-steady-state", ExtSteadyState},
		{"cluster", Cluster},
		{"locality", Locality},
	}
}

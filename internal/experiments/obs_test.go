package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"testing"

	"snapbpf/internal/faults"
	"snapbpf/internal/obs"
	"snapbpf/internal/workload"
)

// obsGoldenCells is the small fixed workload the golden observability
// documents are pinned over: three cells spanning the eBPF scheme, a
// userfaultfd baseline and the vanilla-readahead baseline.
func obsGoldenCells() []Cell {
	fn := tinyFn()
	return []Cell{
		{Fn: fn, Scheme: SchemeSnapBPF, Cfg: Config{N: 2}},
		{Fn: fn, Scheme: SchemeREAP, Cfg: Config{N: 1}},
		{Fn: fn, Scheme: SchemeLinuxRA, Cfg: Config{N: 1}},
	}
}

// obsDocs runs the golden cells at the given pool width with tracing,
// metrics and the invariant checker all armed, and renders the three
// output documents exactly as snapbpf-bench would.
func obsDocs(t *testing.T, parallel int) (traceDoc, metricsDoc, promDoc []byte) {
	t.Helper()
	var tcs []obs.TraceCell
	var mcs []obs.MetricsCell
	var reports []*obs.Report
	o := Options{
		Parallel: parallel,
		Check:    true,
		Obs:      &obs.Config{Trace: true, Metrics: true},
		ObsSink: func(i int, cell Cell, res *RunResult) {
			name := fmt.Sprintf("%03d %s/%s/n%d", i, res.Scheme, res.Function, res.N)
			tcs = append(tcs, obs.TraceCell{Name: name, Report: res.Obs})
			mcs = append(mcs, obs.MetricsCell{Name: name, Report: res.Obs})
			reports = append(reports, res.Obs)
		},
	}
	if _, err := RunCells(o, obsGoldenCells()); err != nil {
		t.Fatal(err)
	}
	if len(tcs) != 3 {
		t.Fatalf("sink delivered %d cells, want 3", len(tcs))
	}
	m, err := obs.BuildMetricsJSON(mcs)
	if err != nil {
		t.Fatal(err)
	}
	return obs.BuildTrace(tcs), m, obs.MergeMetrics(reports).Prometheus()
}

// Golden digests of the three observability documents over
// obsGoldenCells. The documents are megabytes, so the pin is their
// SHA-256 — still a byte-level contract: any serialization, ordering
// or instrumentation change shows up as a digest change and must be
// re-pinned deliberately (rerun with -run TestObsGolden -v to get the
// new values).
const (
	goldenObsTraceSHA   = "8d21eb06788133d401575502a6e18eea1afe4eeea142368727ab079be4e24716"
	goldenObsMetricsSHA = "77ba81b2cf91efd20453eb137c7be993d17abf5fa2cfb90bb341bdf3f263f8d1"
	goldenObsPromSHA    = "e7b32b654de672f21a2fbb468d8cd54d6881375813e9790876fdd98741f3f056"
)

func sha(data []byte) string {
	h := sha256.Sum256(data)
	return hex.EncodeToString(h[:])
}

// TestObsGoldenByteIdentical is the golden + determinism satellite:
// the trace JSON, metrics JSON and Prometheus text over a fixed
// workload are byte-identical between a serial and a 4-worker run,
// validate against the trace schema, and match the pinned digests.
func TestObsGoldenByteIdentical(t *testing.T) {
	serialTrace, serialMetrics, serialProm := obsDocs(t, 1)
	parTrace, parMetrics, parProm := obsDocs(t, 4)

	if !bytes.Equal(serialTrace, parTrace) {
		t.Errorf("trace differs between -parallel 1 (%d bytes) and -parallel 4 (%d bytes)",
			len(serialTrace), len(parTrace))
	}
	if !bytes.Equal(serialMetrics, parMetrics) {
		t.Errorf("metrics JSON differs between -parallel 1 and -parallel 4")
	}
	if !bytes.Equal(serialProm, parProm) {
		t.Errorf("prometheus text differs between -parallel 1 and -parallel 4")
	}
	if err := obs.ValidateTrace(serialTrace); err != nil {
		t.Errorf("trace schema: %v", err)
	}

	if got := sha(serialTrace); got != goldenObsTraceSHA {
		t.Errorf("trace digest = %s, pinned %s (%d bytes)", got, goldenObsTraceSHA, len(serialTrace))
	}
	if got := sha(serialMetrics); got != goldenObsMetricsSHA {
		t.Errorf("metrics digest = %s, pinned %s (%d bytes)", got, goldenObsMetricsSHA, len(serialMetrics))
	}
	if got := sha(serialProm); got != goldenObsPromSHA {
		t.Errorf("prometheus digest = %s, pinned %s (%d bytes)", got, goldenObsPromSHA, len(serialProm))
	}

	// Semantic spot checks so a digest mismatch has context: 4
	// sandboxes restore and invoke across the 3 cells, and the trace
	// names its phases.
	for _, want := range []string{`"name":"restore"`, `"name":"invoke"`, `"name":"ws-load"`, `"name":"io"`} {
		if !bytes.Contains(serialTrace, []byte(want)) {
			t.Errorf("trace missing %s", want)
		}
	}
	// 4 cold starts across the 3 cells, plus one record sandbox each
	// for SnapBPF and REAP (Linux-RA records without one).
	if !strings.Contains(string(serialProm), "snapbpf_invokes_total 6\n") {
		t.Errorf("aggregate prometheus missing snapbpf_invokes_total 6")
	}
	if !strings.Contains(string(serialProm), "snapbpf_restores_total 6\n") {
		t.Errorf("aggregate prometheus missing snapbpf_restores_total 6")
	}
}

// TestObsMetamorphicRunInvariance is the metamorphic satellite at cell
// granularity: arming observability must not change any measured
// quantity, the guest-memory digest, or what the fault injector did —
// across a healthy run and light/heavy fault plans.
func TestObsMetamorphicRunInvariance(t *testing.T) {
	fn := tinyFn()
	plans := map[string]func() *faults.Plan{
		"healthy": func() *faults.Plan { return nil },
		"light":   func() *faults.Plan { p := faults.Light(3); return &p },
		"heavy":   func() *faults.Plan { p := faults.Heavy(3); return &p },
	}
	for _, s := range []Scheme{SchemeSnapBPF, SchemeREAP} {
		for label, plan := range plans {
			s, label, plan := s, label, plan
			t.Run(s.Name+"/"+label, func(t *testing.T) {
				base := Config{N: 2, Check: true, Faults: plan()}
				withObs := base
				withObs.Faults = plan()
				withObs.Obs = &obs.Config{Trace: true, Metrics: true}

				r1, err := Run(fn, s, base)
				if err != nil {
					t.Fatal(err)
				}
				r2, err := Run(fn, s, withObs)
				if err != nil {
					t.Fatal(err)
				}
				if r1.Digest != r2.Digest {
					t.Errorf("digest changed: %x -> %x", r1.Digest, r2.Digest)
				}
				if r1.MeanE2E != r2.MeanE2E || r1.MaxE2E != r2.MaxE2E {
					t.Errorf("E2E changed: %v/%v -> %v/%v", r1.MeanE2E, r1.MaxE2E, r2.MeanE2E, r2.MaxE2E)
				}
				for i := range r1.E2E {
					if r1.E2E[i] != r2.E2E[i] {
						t.Errorf("E2E[%d] changed: %v -> %v", i, r1.E2E[i], r2.E2E[i])
					}
				}
				if r1.SystemMemory != r2.SystemMemory {
					t.Errorf("memory changed: %v -> %v", r1.SystemMemory, r2.SystemMemory)
				}
				if r1.DeviceBytes != r2.DeviceBytes || r1.DeviceRequests != r2.DeviceRequests {
					t.Errorf("device traffic changed: %d/%d -> %d/%d",
						r1.DeviceBytes, r1.DeviceRequests, r2.DeviceBytes, r2.DeviceRequests)
				}
				if r1.Faults != r2.Faults {
					t.Errorf("fault report changed: %+v -> %+v", r1.Faults, r2.Faults)
				}
				if *r1.CheckCounts != *r2.CheckCounts {
					t.Errorf("checker tally changed: %+v -> %+v", *r1.CheckCounts, *r2.CheckCounts)
				}
				if r2.Obs == nil || r2.Obs.Metrics() == nil {
					t.Error("observability armed but no report returned")
				}
			})
		}
	}
}

// TestObsExperimentInvariance repeats the metamorphic check at
// experiment granularity: a whole figure's rendered table is
// byte-identical with and without observability armed.
func TestObsExperimentInvariance(t *testing.T) {
	base := Options{Functions: []workload.Function{tinyFn()}, Check: true}
	withObs := base
	withObs.Obs = &obs.Config{Trace: true, Metrics: true}
	withObs.ObsSink = func(i int, cell Cell, res *RunResult) {}

	t1, err := Fig3a(base)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Fig3a(withObs)
	if err != nil {
		t.Fatal(err)
	}
	if t1.CSV() != t2.CSV() {
		t.Errorf("fig3a CSV changed when observability was armed:\n--- without ---\n%s--- with ---\n%s",
			t1.CSV(), t2.CSV())
	}
}

// mustCounter reads a counter from the snapshot, failing the test if
// the metric does not exist (catching name drift).
func mustCounter(t *testing.T, s *obs.Snapshot, name string) int64 {
	t.Helper()
	v, ok := s.Counter(name)
	if !ok {
		t.Fatalf("counter %s not exported", name)
	}
	return v
}

// TestObsConservation is the conservation satellite: for every scheme
// family, the recorder's counters must reconcile exactly against the
// checker's independent shadow tally (internal/check.Counts) and the
// fault injector's report — three observers of the same event stream.
func TestObsConservation(t *testing.T) {
	fn := tinyFn()
	for _, s := range []Scheme{SchemeSnapBPF, SchemeREAP, SchemeFaaSnap, SchemeLinuxRA} {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			plan := faults.Light(5)
			res, err := Run(fn, s, Config{
				N:      2,
				Check:  true,
				Faults: &plan,
				Obs:    &obs.Config{Metrics: true},
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Obs == nil || res.CheckCounts == nil {
				t.Fatal("missing observability report or checker tally")
			}
			m := res.Obs.Metrics()
			cc := *res.CheckCounts
			c := func(name string) int64 { return mustCounter(t, m, name) }

			eq := func(label string, got, want int64) {
				t.Helper()
				if got != want {
					t.Errorf("%s: metrics say %d, shadow says %d", label, got, want)
				}
			}
			eq("io submissions",
				c("snapbpf_io_submissions_sync_total")+c("snapbpf_io_submissions_readahead_total"),
				cc.IOsSubmitted)
			eq("io completions", c("snapbpf_io_completions_total"), cc.IOsCompleted)
			eq("io failures", c("snapbpf_io_failures_total"), cc.FailedIOs)
			eq("cache inserts",
				c("snapbpf_cache_inserts_demand_total")+c("snapbpf_cache_inserts_readahead_total"),
				cc.PageInserts)
			eq("readahead calls", c("snapbpf_readahead_calls_total"), cc.ReadaheadCalls)
			eq("readahead pages", c("snapbpf_readahead_pages_total"), cc.ReadaheadPages)
			eq("file maps", c("snapbpf_file_pages_mapped_total"), cc.FileMaps)
			eq("file unmaps", c("snapbpf_file_pages_unmapped_total"), cc.FileUnmaps)
			eq("faults",
				c("snapbpf_faults_minor_total")+c("snapbpf_faults_file_total")+
					c("snapbpf_faults_zerofill_total")+c("snapbpf_faults_cow_total")+
					c("snapbpf_faults_uffd_total"),
				cc.Faults)
			eq("cow breaks", c("snapbpf_faults_cow_total"), cc.CoWBreaks)
			eq("guest accesses", c("snapbpf_guest_accesses_total"), cc.GuestAccesses)
			eq("records", c("snapbpf_records_total"), cc.Records)
			eq("prepares", c("snapbpf_scheme_prepares_total"), cc.Prepares)
			eq("degraded", c("snapbpf_degraded_total"), cc.Degraded)
			eq("prefetch groups", c("snapbpf_prefetch_groups_total"), cc.PrefetchGroups)
			eq("prefetch pages", c("snapbpf_prefetch_pages_total"), cc.PrefetchPages)
			eq("offset loads", c("snapbpf_offset_loads_total"), cc.OffsetLoads)

			// And against the fault injector's own report.
			eq("retries vs failed IOs", cc.FailedIOs, res.Faults.Retries)
			eq("fallbacks vs degraded", cc.Degraded, res.Faults.Fallbacks)

			// Lifecycle counters reconcile against the cell shape:
			// every restore is invoked exactly once, and schemes with
			// a record sandbox add one on top of the N cold starts.
			eq("invokes vs restores", c("snapbpf_invokes_total"), c("snapbpf_restores_total"))
			if inv := c("snapbpf_invokes_total"); inv < int64(res.N) || inv > int64(res.N)+1 {
				t.Errorf("invokes = %d, want %d or %d", inv, res.N, res.N+1)
			}
		})
	}
}

// TestObsDisabledLeavesNoReport pins the opt-in contract: without a
// config no report is allocated; metrics-only recording produces
// metrics but zero trace events.
func TestObsDisabledLeavesNoReport(t *testing.T) {
	fn := tinyFn()
	res, err := Run(fn, SchemeSnapBPF, Config{N: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs != nil {
		t.Error("observability report allocated without a config")
	}
	res, err = Run(fn, SchemeSnapBPF, Config{N: 1, Obs: &obs.Config{Metrics: true}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs == nil || res.Obs.Metrics() == nil {
		t.Fatal("metrics requested but not returned")
	}
	if res.Obs.TraceEventCount() != 0 {
		t.Errorf("tracing off but %d events recorded", res.Obs.TraceEventCount())
	}
}

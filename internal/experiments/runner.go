// Package experiments contains the evaluation harness: it composes
// hosts, snapshots, prefetchers and workloads into the measurements
// behind every table and figure of the paper (§4), and formats them
// as aligned text tables and CSV.
//
// Each run uses a fresh simulated host. The record phase (if the
// scheme has one) executes first; the page cache is then dropped and
// device counters reset, so the measured invocation phase starts cold
// — matching the paper's methodology of measuring cold-start
// invocations.
package experiments

import (
	"fmt"
	"time"

	"snapbpf/internal/blockdev"
	"snapbpf/internal/check"
	"snapbpf/internal/core"
	"snapbpf/internal/faults"
	"snapbpf/internal/obs"
	"snapbpf/internal/prefetch"
	"snapbpf/internal/prefetch/faasnap"
	"snapbpf/internal/prefetch/faast"
	"snapbpf/internal/prefetch/reap"
	"snapbpf/internal/sim"
	"snapbpf/internal/store"
	"snapbpf/internal/trace"
	"snapbpf/internal/units"
	"snapbpf/internal/vmm"
	"snapbpf/internal/workload"
)

// Scheme is a named prefetcher factory. A fresh Prefetcher is built
// per (function, run) because prefetchers hold per-function artifacts.
type Scheme struct {
	Name string
	New  func() prefetch.Prefetcher
}

// Standard schemes.
var (
	SchemeLinuxNoRA = Scheme{"Linux-NoRA", func() prefetch.Prefetcher { return prefetch.NewLinuxNoRA() }}
	SchemeLinuxRA   = Scheme{"Linux-RA", func() prefetch.Prefetcher { return prefetch.NewLinuxRA() }}
	SchemeREAP      = Scheme{"REAP", func() prefetch.Prefetcher { return reap.New() }}
	SchemeFaast     = Scheme{"Faast", func() prefetch.Prefetcher { return faast.New() }}
	SchemeFaaSnap   = Scheme{"FaaSnap", func() prefetch.Prefetcher { return faasnap.New() }}
	SchemeSnapBPF   = Scheme{"SnapBPF", func() prefetch.Prefetcher { return core.New() }}
	SchemePVOnly    = Scheme{"PVPTEs", func() prefetch.Prefetcher { return core.NewPVOnly() }}
)

// RunResult is the measurement of one (scheme, function, concurrency)
// cell.
type RunResult struct {
	Scheme   string
	Function string
	N        int

	// E2E per sandbox; Mean/Max aggregates.
	E2E     []time.Duration
	MeanE2E time.Duration
	MaxE2E  time.Duration

	// MeanPrepare is the prefetcher preparation share of E2E.
	MeanPrepare time.Duration

	// SystemMemory is the system-wide memory footprint (page cache +
	// anonymous) once all invocations completed, before sandbox
	// teardown — the Figure 3c quantity.
	SystemMemory units.ByteSize

	// DeviceBytes/DeviceRequests count invocation-phase storage
	// traffic (record-phase traffic excluded).
	DeviceBytes    int64
	DeviceRequests int64

	// OffsetLoad is SnapBPF's mean eBPF offset-loading time, zero for
	// other schemes.
	OffsetLoad time.Duration

	// WSGroups is the number of contiguous offset groups in SnapBPF's
	// captured schedule, zero for other schemes.
	WSGroups int

	// Evictions counts page-cache reclaim events during the
	// invocation phase (nonzero only with CacheLimitPages set).
	Evictions int64

	// Faults reports what the run's fault injector did (zero value
	// when the run was healthy): injected events, plus the retries and
	// demand-paging fallbacks the stack absorbed them with.
	Faults faults.Report

	// Digest is the checker's fold of final guest-visible memory
	// (state pages only), recorded when Config.Check is set and
	// InputVariance is 0 so all sandboxes replay the same trace. Any
	// two correct schemes produce equal digests for the same cell —
	// the differential-testing oracle.
	Digest uint64

	// Obs is the run's observability report (trace spans and/or
	// metrics), non-nil only when Config.Obs asked for recording.
	Obs *obs.Report

	// CheckCounts is the checker's independent event tally, non-nil
	// only when Config.Check was set. The conservation tests reconcile
	// it against Obs metrics and the Faults report.
	CheckCounts *check.Counts

	// Store is the host chunk cache's traffic and StoreRemote the
	// remote backend's, non-nil only when Config.Store selected a
	// non-local tier.
	Store       *store.CacheStats
	StoreRemote *store.RemoteStats
}

// Config tunes a run.
type Config struct {
	// N is the number of concurrent sandboxes (1 or 10 in the paper).
	N int
	// Device selects the storage model; zero value means the paper's
	// Micron 5300 SATA SSD.
	Device blockdev.Params
	// AllocDrift rotates the guest allocator free lists per sandbox,
	// modelling allocator-state drift between the record invocation
	// and production invocations. The paper's methodology invokes
	// with identical inputs (drift is called out as future work), so
	// the default is 0; the drift ablation raises it.
	AllocDrift int

	// InputVariance in [0, 1] gives every sandbox a *different input*:
	// each invocation trace is a per-sandbox variant of the recorded
	// one (skipped regions, extra writes). 0 reproduces the paper's
	// identical-input methodology; the varying-inputs extension sweeps
	// it (the paper defers this to future work).
	InputVariance float64

	// CacheLimitPages bounds the host page cache during the
	// invocation phase (0 = unlimited, the paper's 128GiB-per-socket
	// testbed is effectively unconstrained).
	CacheLimitPages int64

	// Faults, when non-nil and enabled, injects storage and
	// scheme-level faults for the whole run (record + invocation
	// phases), seeded by the plan — reruns with an equal plan are
	// byte-identical. Nil or a disabled plan means a healthy run.
	Faults *faults.Plan

	// Check arms the invariant-checking harness (internal/check): a
	// Checker observes every layer of the run, Run fails with the
	// collected violations if any invariant breaks, and — when
	// InputVariance is 0 — the final guest-memory digest is recorded
	// in RunResult.Digest and checked for equality across sandboxes.
	Check bool

	// Obs, when non-nil and enabled, arms the observability layer
	// (internal/obs): a Recorder observes every layer of the run and
	// the resulting trace/metrics report lands in RunResult.Obs.
	// Composes with Check — the recorder forwards every event to the
	// checker, so both see the identical stream.
	Obs *obs.Config

	// Store, when non-nil with a non-local tier, places the snapshot
	// in the simulated distribution tier (internal/store): chunks are
	// pulled from the remote under Store.Policy, through a host chunk
	// cache that starts warm or cold per Store.Tier. Nil or TierLocal
	// reproduces the paper's local-SSD baseline exactly.
	Store *store.Setup
}

// invokeTrace returns sandbox i's trace under the configured variance.
func (cfg Config) invokeTrace(env *prefetch.Env, i int) *trace.Trace {
	if cfg.InputVariance <= 0 {
		return env.InvokeTrace
	}
	return env.Fn.GenTraceVariant(int64(i+1), cfg.InputVariance*0.3, cfg.InputVariance*0.25)
}

// Run executes one cell: record once, then N concurrent invocations
// of fn under the scheme.
func Run(fn workload.Function, scheme Scheme, cfg Config) (*RunResult, error) {
	if cfg.N < 0 {
		return nil, fmt.Errorf("run %s/%s: negative sandbox count %d", scheme.Name, fn.Name, cfg.N)
	}
	if cfg.N == 0 {
		cfg.N = 1
	}
	if cfg.Device.Name == "" {
		cfg.Device = blockdev.MicronSATA5300()
	}
	var inj *faults.Injector
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return nil, fmt.Errorf("run %s/%s: %w", scheme.Name, fn.Name, err)
		}
		if cfg.Faults.Enabled() {
			inj = faults.NewInjector(*cfg.Faults)
		}
	}
	h := vmm.NewHost(cfg.Device)
	h.Dev.SetFaults(inj)
	// Arm the harness before any simulated event so the shadow state
	// observes the run from the very first page-cache insert.
	var chk *check.Checker
	if cfg.Check {
		chk = check.New(h, inj)
	}
	// The recorder attaches second so it wraps every layer the checker
	// just claimed, forwarding each event downstream — both see the
	// identical stream, and the KVM OnRestore chain ends at the
	// recorder (which forwards to the checker).
	var rec *obs.Recorder
	if cfg.Obs.Enabled() {
		var next obs.Chain
		if chk != nil {
			next = obs.Chain{Sim: chk, Dev: chk, Cache: chk, MM: chk, KVM: chk, Prefetch: chk, Store: chk}
		}
		rec = obs.Attach(h, *cfg.Obs, next)
	}
	pf := scheme.New()

	zeroOnFree := pf.RestoreConfig(0).ZeroOnFree
	img := vmm.BuildImage(fn, zeroOnFree)
	snapInode := h.RegisterSnapshot(fn.Name+".snapmem", img)
	if chk != nil {
		chk.RegisterFileTags(snapInode, img.PageTags)
	}
	env := &prefetch.Env{
		Host:        h,
		Fn:          fn,
		Image:       img,
		SnapInode:   snapInode,
		RecordTrace: fn.GenTrace(),
		InvokeTrace: fn.GenTrace(),
		Faults:      inj,
	}
	switch {
	case rec != nil:
		env.Check = rec // forwards to chk when armed
	case chk != nil:
		env.Check = chk
	}

	// --- Distribution tier ---
	// With a non-local tier the snapshot's chunks live in the remote
	// store: device reads of the snapshot inode are staged behind the
	// host chunk cache, and SnapBPF's captured offsets feed the
	// chunk-priority plan. TierLocal leaves everything untouched.
	var bind *store.Binding
	var hcStore *store.HostCache
	var remote *store.Remote
	if sc := cfg.Store; sc != nil && sc.Tier != store.TierLocal {
		remote = store.NewRemote(sc.Params)
		hcStore = store.NewHostCache(h.Eng, remote, inj)
		switch {
		case rec != nil:
			hcStore.SetObserver(rec) // forwards to chk when armed
		case chk != nil:
			hcStore.SetObserver(chk)
		}
		if chk != nil {
			chk.AttachStore(hcStore)
		}
		man := store.BuildManifest(fn.Name, img.PageTags, remote.Params().ChunkPages)
		if sc.SabotageChunk > 0 && sc.SabotageChunk <= len(man.Chunks) {
			// Test knob: forge one manifest hash (stale manifest / corrupt
			// chunk); the checker must flag the fetch.
			man.Chunks[sc.SabotageChunk-1].ID ^= 0xdeadbeef
		}
		if sc.PermuteChunks != 0 {
			store.PermuteChunks(man, sc.PermuteChunks)
		}
		bind = hcStore.Bind(man, sc.Policy, img.PageTags)
		snapInode.SetStager(bind)
		env.ChunkPlan = bind.Plan
	}

	// --- Record phase ---
	var recErr error
	h.Eng.Go("record", func(p *sim.Proc) {
		recErr = pf.Record(p, env)
	})
	h.Eng.Run()
	if recErr != nil {
		return nil, fmt.Errorf("record %s/%s: %w", scheme.Name, fn.Name, recErr)
	}
	h.Cache.DropCaches()
	h.Dev.ResetStats()
	h.Cache.SetMemLimit(cfg.CacheLimitPages)
	if bind != nil {
		switch cfg.Store.Tier {
		case store.TierCold:
			// Cold remote: the measured phase starts with an empty
			// chunk cache, as a host that never ran this function.
			hcStore.Drop()
		case store.TierWarm:
			// Warm cache: a previous instance pulled every chunk.
			// Preload through the normal fetch path, drained before
			// the first measured restore.
			h.Eng.Go("store-preload", func(p *sim.Proc) { bind.Preload(p) })
			h.Eng.Run()
		}
	}

	// --- Invocation phase: N concurrent sandboxes ---
	res := &RunResult{Scheme: pf.Name(), Function: fn.Name, N: cfg.N,
		E2E: make([]time.Duration, cfg.N)}
	vms := make([]*vmm.MicroVM, cfg.N)
	digests := make([]uint64, cfg.N)
	var prepSum time.Duration
	// Several sandboxes can fail; keep the *first* failure (and the
	// failing VM's index) so diagnostics are stable — within one engine
	// the dispatch order, and therefore "first", is deterministic.
	var invErr error
	invErrVM := -1
	fail := func(i int, err error) {
		if invErr == nil {
			invErr, invErrVM = err, i
		}
	}
	for i := 0; i < cfg.N; i++ {
		i := i
		h.Eng.Go(fmt.Sprintf("vm%d", i), func(p *sim.Proc) {
			vm, err := h.Restore(p, fmt.Sprintf("%s-vm%d", fn.Name, i), fn, img, snapInode,
				pf.RestoreConfig(cfg.AllocDrift*(1+i)))
			if err != nil {
				fail(i, err)
				return
			}
			vms[i] = vm
			if bind != nil {
				// Full-download policy blocks restores until the whole
				// snapshot is local; other policies return at once. The
				// wait lands in E2E, like the real registry pull.
				bind.BeginRestore(p)
			}
			if err := pf.PrepareVM(p, env, vm); err != nil {
				fail(i, err)
				return
			}
			vm.MarkPrepared(p)
			st, err := vm.Invoke(p, cfg.invokeTrace(env, i))
			if err != nil {
				fail(i, err)
				return
			}
			res.E2E[i] = st.E2E
			prepSum += st.Prepare
			pf.FinishVM(env, vm)
			if chk != nil {
				// Digest before Shutdown: the shadow page table is
				// consumed with the address space.
				digests[i] = chk.VMDone(vm)
			}
		})
	}
	h.Eng.Run()
	if invErr != nil {
		return nil, fmt.Errorf("invoke %s/%s: vm%d: %w", scheme.Name, fn.Name, invErrVM, invErr)
	}

	// Memory before teardown: everything sandboxes still hold.
	res.SystemMemory = units.PagesToBytes(h.MM.SystemMemoryPages())
	for _, vm := range vms {
		if vm != nil {
			vm.Shutdown()
		}
	}
	if chk != nil {
		if cfg.InputVariance == 0 {
			// Identical inputs: every sandbox must converge to the same
			// guest-visible memory, whatever the scheme did to get there.
			for i := 1; i < cfg.N; i++ {
				if digests[i] != digests[0] {
					return nil, fmt.Errorf("check %s/%s: vm%d digest %016x != vm0 digest %016x",
						scheme.Name, fn.Name, i, digests[i], digests[0])
				}
			}
			res.Digest = digests[0]
		}
		if err := chk.Finish(); err != nil {
			return nil, fmt.Errorf("check %s/%s: %w", scheme.Name, fn.Name, err)
		}
	}

	if rec != nil {
		res.Obs = rec.Finish()
	}
	if chk != nil {
		cc := chk.Counts()
		res.CheckCounts = &cc
	}

	var sum time.Duration
	for _, e := range res.E2E {
		sum += e
		if e > res.MaxE2E {
			res.MaxE2E = e
		}
	}
	res.MeanE2E = sum / time.Duration(cfg.N)
	res.MeanPrepare = prepSum / time.Duration(cfg.N)
	res.DeviceBytes = h.Dev.Stats().BytesRead
	res.DeviceRequests = h.Dev.Stats().Requests
	res.Evictions = h.Cache.Evictions()
	res.Faults = inj.Report()
	if hcStore != nil {
		cs := hcStore.Stats()
		res.Store = &cs
		rs := remote.Stats()
		res.StoreRemote = &rs
	}

	if s, ok := pf.(*core.SnapBPF); ok {
		if len(s.OffsetLoads) > 0 {
			var t time.Duration
			for _, d := range s.OffsetLoads {
				t += d
			}
			res.OffsetLoad = t / time.Duration(len(s.OffsetLoads))
		}
		if ws := s.WorkingSet(); ws != nil {
			res.WSGroups = len(ws.Groups)
		}
	}
	return res, nil
}

// WavesResult is the measurement of a steady-state run: repeated
// bursts ("waves") of cold starts of the same function on one host,
// with sandboxes torn down between waves. Page-cache-based schemes
// keep the working set warm across waves; userfaultfd-based schemes
// rebuild their private copies every time.
type WavesResult struct {
	Scheme string
	// WaveE2E is the mean sandbox E2E per wave.
	WaveE2E []time.Duration
	// DeviceBytes is total invocation-phase storage traffic.
	DeviceBytes int64
	// PeakMemory is the largest footprint observed at a wave end.
	PeakMemory units.ByteSize
}

// RunWaves records once, then runs `waves` bursts of `perWave`
// concurrent sandboxes with `gap` of idle time between bursts.
func RunWaves(fn workload.Function, scheme Scheme, waves, perWave int, gap time.Duration, device blockdev.Params) (*WavesResult, error) {
	if waves <= 0 || perWave <= 0 {
		return nil, fmt.Errorf("waves and perWave must be positive")
	}
	if device.Name == "" {
		device = blockdev.MicronSATA5300()
	}
	h := vmm.NewHost(device)
	pf := scheme.New()
	img := vmm.BuildImage(fn, pf.RestoreConfig(0).ZeroOnFree)
	snapInode := h.RegisterSnapshot(fn.Name+".snapmem", img)
	env := &prefetch.Env{
		Host:        h,
		Fn:          fn,
		Image:       img,
		SnapInode:   snapInode,
		RecordTrace: fn.GenTrace(),
		InvokeTrace: fn.GenTrace(),
	}
	var recErr error
	h.Eng.Go("record", func(p *sim.Proc) { recErr = pf.Record(p, env) })
	h.Eng.Run()
	if recErr != nil {
		return nil, recErr
	}
	h.Cache.DropCaches()
	h.Dev.ResetStats()

	res := &WavesResult{Scheme: pf.Name()}
	var invErr error
	fail := func(w, i int, err error) {
		if invErr == nil {
			invErr = fmt.Errorf("wave %d vm%d: %w", w, i, err)
		}
	}
	start := h.Eng.Now()
	for w := 0; w < waves; w++ {
		w := w
		var sum time.Duration
		vms := make([]*vmm.MicroVM, perWave)
		for i := 0; i < perWave; i++ {
			i := i
			h.Eng.GoAfter(start.Add(time.Duration(w)*gap).Sub(h.Eng.Now()),
				fmt.Sprintf("w%d-vm%d", w, i), func(p *sim.Proc) {
					vm, err := h.Restore(p, fmt.Sprintf("w%d-vm%d", w, i), fn, img, snapInode,
						pf.RestoreConfig(0))
					if err != nil {
						fail(w, i, err)
						return
					}
					vms[i] = vm
					if err := pf.PrepareVM(p, env, vm); err != nil {
						fail(w, i, err)
						return
					}
					vm.MarkPrepared(p)
					st, err := vm.Invoke(p, env.InvokeTrace)
					if err != nil {
						fail(w, i, err)
						return
					}
					sum += st.E2E
					pf.FinishVM(env, vm)
				})
		}
		h.Eng.Run() // wave completes (plus its prefetch threads)
		if invErr != nil {
			return nil, invErr
		}
		if mem := units.PagesToBytes(h.MM.SystemMemoryPages()); mem > res.PeakMemory {
			res.PeakMemory = mem
		}
		for _, vm := range vms {
			if vm != nil {
				vm.Shutdown()
			}
		}
		res.WaveE2E = append(res.WaveE2E, sum/time.Duration(perWave))
	}
	res.DeviceBytes = h.Dev.Stats().BytesRead
	return res, nil
}

// MixedResult is the measurement of a co-location run: sandboxes of
// several different functions sharing one host and SSD.
type MixedResult struct {
	Scheme string
	// PerFunction maps function name to its sandboxes' mean E2E.
	PerFunction map[string]time.Duration
	// SystemMemory is the whole host's footprint at completion.
	SystemMemory units.ByteSize
	// DeviceBytes is the invocation-phase storage traffic.
	DeviceBytes int64
}

// RunMixed records every function once, then starts perFn sandboxes
// of *each* function concurrently on one shared host — the
// multi-tenant co-location scenario a FaaS node actually faces.
func RunMixed(fns []workload.Function, scheme Scheme, perFn int, device blockdev.Params) (*MixedResult, error) {
	if len(fns) == 0 {
		return nil, fmt.Errorf("mixed %s: no functions given", scheme.Name)
	}
	if perFn <= 0 {
		perFn = 1
	}
	if device.Name == "" {
		device = blockdev.MicronSATA5300()
	}
	h := vmm.NewHost(device)

	type fnCtx struct {
		pf  prefetch.Prefetcher
		env *prefetch.Env
	}
	ctxs := make([]fnCtx, len(fns))
	for i, fn := range fns {
		pf := scheme.New()
		img := vmm.BuildImage(fn, pf.RestoreConfig(0).ZeroOnFree)
		ctxs[i] = fnCtx{pf: pf, env: &prefetch.Env{
			Host:        h,
			Fn:          fn,
			Image:       img,
			SnapInode:   h.RegisterSnapshot(fn.Name+".snapmem", img),
			RecordTrace: fn.GenTrace(),
			InvokeTrace: fn.GenTrace(),
		}}
	}

	// Record phases run sequentially on the shared host.
	var recErr error
	h.Eng.Go("record", func(p *sim.Proc) {
		for _, c := range ctxs {
			if err := c.pf.Record(p, c.env); err != nil {
				recErr = err
				return
			}
		}
	})
	h.Eng.Run()
	if recErr != nil {
		return nil, fmt.Errorf("mixed record %s: %w", scheme.Name, recErr)
	}
	h.Cache.DropCaches()
	h.Dev.ResetStats()

	res := &MixedResult{Scheme: scheme.Name, PerFunction: make(map[string]time.Duration)}
	sums := make([]time.Duration, len(fns))
	var vms []*vmm.MicroVM
	var invErr error
	fail := func(fn string, k int, err error) {
		if invErr == nil {
			invErr = fmt.Errorf("%s-vm%d: %w", fn, k, err)
		}
	}
	for i := range ctxs {
		for k := 0; k < perFn; k++ {
			i, k := i, k
			c := ctxs[i]
			h.Eng.Go(fmt.Sprintf("%s-vm%d", c.env.Fn.Name, k), func(p *sim.Proc) {
				vm, err := h.Restore(p, fmt.Sprintf("%s-vm%d", c.env.Fn.Name, k),
					c.env.Fn, c.env.Image, c.env.SnapInode, c.pf.RestoreConfig(0))
				if err != nil {
					fail(c.env.Fn.Name, k, err)
					return
				}
				vms = append(vms, vm)
				if err := c.pf.PrepareVM(p, c.env, vm); err != nil {
					fail(c.env.Fn.Name, k, err)
					return
				}
				vm.MarkPrepared(p)
				st, err := vm.Invoke(p, c.env.InvokeTrace)
				if err != nil {
					fail(c.env.Fn.Name, k, err)
					return
				}
				sums[i] += st.E2E
				c.pf.FinishVM(c.env, vm)
			})
		}
	}
	h.Eng.Run()
	if invErr != nil {
		return nil, fmt.Errorf("mixed invoke %s: %w", scheme.Name, invErr)
	}
	res.SystemMemory = units.PagesToBytes(h.MM.SystemMemoryPages())
	for _, vm := range vms {
		vm.Shutdown()
	}
	for i, fn := range fns {
		res.PerFunction[fn.Name] = sums[i] / time.Duration(perFn)
	}
	res.DeviceBytes = h.Dev.Stats().BytesRead
	return res, nil
}

package experiments

import (
	"strings"
	"testing"

	"snapbpf/internal/faults"
	"snapbpf/internal/obs"
	"snapbpf/internal/store"
	"snapbpf/internal/workload"
)

// storeCombos is every non-local (tier, policy) pair the distribution
// tier can run under.
func storeCombos() []store.Setup {
	var out []store.Setup
	for _, tier := range []store.Tier{store.TierWarm, store.TierCold} {
		for _, pol := range []store.Policy{store.PolicyDemand, store.PolicyFull, store.PolicyWSLazy} {
			out = append(out, store.Setup{Tier: tier, Policy: pol})
		}
	}
	return out
}

// TestDifferentialStoreTiers extends the differential oracle across
// the distribution tier: every scheme under every tier and fetch
// policy, healthy or faulty, must leave the guest with memory
// digest-identical to pure demand paging from the local SSD. Moving
// the snapshot to a remote store changes *when* bytes arrive, never
// *what* the guest reads.
func TestDifferentialStoreTiers(t *testing.T) {
	fn, err := workload.ByName("json")
	if err != nil {
		t.Fatal(err)
	}
	light := faults.Light(3)
	plans := map[string]*faults.Plan{"healthy": nil, "light": &light}
	schemes := []Scheme{SchemeSnapBPF, SchemeREAP}
	combos := storeCombos()
	if raceEnabled {
		// The race suite checks scheduling, not values: keep the
		// extreme cells only.
		plans = map[string]*faults.Plan{"light": &light}
		schemes = []Scheme{SchemeSnapBPF}
		combos = []store.Setup{
			{Tier: store.TierCold, Policy: store.PolicyWSLazy},
			{Tier: store.TierCold, Policy: store.PolicyFull},
		}
	}
	for name, plan := range plans {
		want := checkedDigest(t, fn, SchemeLinuxNoRA, Config{N: 2, Faults: plan})
		for _, s := range schemes {
			for _, setup := range combos {
				setup := setup
				got := checkedDigest(t, fn, s, Config{N: 2, Faults: plan, Store: &setup})
				if got != want {
					t.Errorf("%s/%s/%s/%s/%s: digest %016x, local demand paging %016x",
						fn.Name, s.Name, setup.Tier, setup.Policy, name, got, want)
				}
			}
		}
	}
}

// TestStoreSabotageCaught is the sabotage satellite: a chunk whose
// content no longer matches its manifest hash (a corrupt chunk or a
// stale manifest) must be caught by the checker the moment it is
// fetched.
func TestStoreSabotageCaught(t *testing.T) {
	fn, err := workload.ByName("json")
	if err != nil {
		t.Fatal(err)
	}
	// Full download touches every chunk, so the forged one is
	// guaranteed to be fetched and verified.
	_, err = Run(fn, SchemeSnapBPF, Config{
		N:     1,
		Check: true,
		Store: &store.Setup{Tier: store.TierCold, Policy: store.PolicyFull, SabotageChunk: 1},
	})
	if err == nil {
		t.Fatal("corrupted chunk with a stale manifest hash sailed through the checker")
	}
	if !strings.Contains(err.Error(), "store-chunk-digest") {
		t.Fatalf("expected a store-chunk-digest violation, got: %v", err)
	}
	// The same run without the checker must not fail: verification is
	// the harness's job, not a simulated data path.
	if _, err := Run(fn, SchemeSnapBPF, Config{
		N:     1,
		Store: &store.Setup{Tier: store.TierCold, Policy: store.PolicyFull, SabotageChunk: 1},
	}); err != nil {
		t.Fatalf("uncheckered sabotage run failed: %v", err)
	}
}

// TestStoreMetamorphicPermutation: manifest chunk order carries no
// meaning — consumers index by extent — so shuffling every manifest
// must leave the locality experiment's CSV byte-identical.
func TestStoreMetamorphicPermutation(t *testing.T) {
	if raceEnabled {
		t.Skip("byte-pinning is value-level; the non-race suite covers it")
	}
	if testing.Short() {
		t.Skip("two full locality sweeps; skipped in -short")
	}
	fns := goldenJSONOnly(t)
	base, err := Locality(Options{Functions: fns, Parallel: 0, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	perm, err := Locality(Options{Functions: fns, Parallel: 0, Check: true, StorePermute: 999})
	if err != nil {
		t.Fatal(err)
	}
	if base.CSV() != perm.CSV() {
		t.Errorf("chunk-order permutation moved the CSV:\n--- base ---\n%s--- permuted ---\n%s",
			base.CSV(), perm.CSV())
	}
}

// TestStoreCacheMonotonicity: growing the host chunk cache can only
// help. Demand fetch touches each working-set chunk once, so E2E must
// be non-increasing in capacity; full download pushes the whole
// snapshot through the cache, so a too-small cache thrashes — evicted
// chunks get refetched at remote latency and E2E strictly degrades.
func TestStoreCacheMonotonicity(t *testing.T) {
	fn, err := workload.ByName("json")
	if err != nil {
		t.Fatal(err)
	}
	runAt := func(policy store.Policy, capacity int) *RunResult {
		t.Helper()
		params := store.DefaultParams()
		params.CapacityChunks = capacity
		r, err := Run(fn, SchemeSnapBPF, Config{
			N:     2,
			Check: true,
			Store: &store.Setup{Tier: store.TierCold, Policy: policy, Params: params},
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	tiny := runAt(store.PolicyDemand, 4)
	mid := runAt(store.PolicyDemand, 64)
	unbounded := runAt(store.PolicyDemand, 0)
	if tiny.MeanE2E < mid.MeanE2E || mid.MeanE2E < unbounded.MeanE2E {
		t.Errorf("E2E not monotone in cache size: tiny=%v mid=%v unbounded=%v",
			tiny.MeanE2E, mid.MeanE2E, unbounded.MeanE2E)
	}
	fTiny := runAt(store.PolicyFull, 4)
	fUnbounded := runAt(store.PolicyFull, 0)
	if fTiny.Store.Fetches <= fUnbounded.Store.Fetches {
		t.Errorf("thrashing full download fetched %d <= unbounded %d; evictions must force refetches",
			fTiny.Store.Fetches, fUnbounded.Store.Fetches)
	}
	if fTiny.Store.Evictions <= fUnbounded.Store.Evictions {
		t.Errorf("4-chunk cache evicted %d <= unbounded %d",
			fTiny.Store.Evictions, fUnbounded.Store.Evictions)
	}
	if fTiny.MeanE2E <= fUnbounded.MeanE2E {
		t.Errorf("thrashing full download E2E %v not strictly worse than unbounded %v",
			fTiny.MeanE2E, fUnbounded.MeanE2E)
	}
}

// TestStoreConservation reconciles the four observers of the store
// event stream — the cache's own statistics (RunResult.Store), the
// checker's shadow tally, the obs counters, and the fault injector's
// report — and pins the structural identities: fetches == misses ==
// remote requests, bytes fetched == the summed lengths of fetched
// chunks, retries == injected store errors, and dedup hits never
// refetch.
func TestStoreConservation(t *testing.T) {
	fn := tinyFn()
	for _, setup := range storeCombos() {
		setup := setup
		t.Run(setup.Tier.String()+"/"+setup.Policy.String(), func(t *testing.T) {
			plan := faults.Light(5)
			res, err := Run(fn, SchemeSnapBPF, Config{
				N:      2,
				Check:  true,
				Faults: &plan,
				Obs:    &obs.Config{Metrics: true},
				Store:  &setup,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Store == nil || res.StoreRemote == nil || res.CheckCounts == nil || res.Obs == nil {
				t.Fatal("missing store stats, checker tally or obs report")
			}
			st, cc := res.Store, *res.CheckCounts
			m := res.Obs.Metrics()
			c := func(name string) int64 { return mustCounter(t, m, name) }
			eq := func(label string, got, want int64) {
				t.Helper()
				if got != want {
					t.Errorf("%s: %d != %d", label, got, want)
				}
			}
			// Cache stats vs checker shadow.
			eq("fetches vs shadow", st.Fetches, cc.StoreFetches)
			eq("fetch bytes vs shadow", st.FetchBytes, cc.StoreFetchBytes)
			eq("hits vs shadow", st.Hits, cc.StoreHits)
			eq("dedup hits vs shadow", st.DedupHits, cc.StoreDedupHits)
			eq("evictions vs shadow", st.Evictions, cc.StoreEvictions)
			eq("manifests vs shadow", st.Manifests, cc.StoreManifests)
			// Cache stats vs obs counters.
			eq("fetches vs obs", st.Fetches, c("snapbpf_store_fetches_total"))
			eq("fetch bytes vs obs", st.FetchBytes, c("snapbpf_store_fetch_bytes_total"))
			eq("hits vs obs", st.Hits, c("snapbpf_store_hits_total"))
			eq("dedup hits vs obs", st.DedupHits, c("snapbpf_store_dedup_hits_total"))
			eq("evictions vs obs", st.Evictions, c("snapbpf_store_evictions_total"))
			eq("manifests vs obs", st.Manifests, c("snapbpf_store_manifests_total"))
			eq("retries vs obs", st.Retries, c("snapbpf_store_fetch_retries_total"))
			eq("spikes vs obs", st.Spikes, c("snapbpf_store_fetch_spikes_total"))
			// Fault injector's report.
			eq("retries vs injected store errors", st.Retries, res.Faults.StoreErrors)
			eq("spikes vs injected store spikes", st.Spikes, res.Faults.StoreSpikes)
			// Remote accounting: every fetch is one priced GET, and a
			// single-host run of one function can never hit the remote
			// twice for a live chunk.
			eq("fetches vs remote requests", st.Fetches, res.StoreRemote.Requests)
			eq("fetch bytes vs remote bytes", st.FetchBytes, res.StoreRemote.Bytes)
			eq("remote unique+dup", res.StoreRemote.Requests,
				res.StoreRemote.UniqueChunks+res.StoreRemote.DupRequests)
			if st.Evictions == 0 {
				eq("no dup without evictions", res.StoreRemote.DupRequests, 0)
			}
		})
	}
}

package pagecache

import (
	"testing"

	"snapbpf/internal/sim"
)

func TestReclaimEnforcesLimit(t *testing.T) {
	eng, c, _ := newTestCache(0)
	c.SetMemLimit(64)
	ino := c.NewInode("f", 4096)
	ino.ReadaheadAsync(0, 256)
	eng.Run()
	if got := c.NrCachedPages(); got > 64 {
		t.Fatalf("cache = %d pages, limit 64", got)
	}
	if c.Evictions() == 0 {
		t.Fatal("no evictions recorded")
	}
}

func TestReclaimIsLRU(t *testing.T) {
	eng, c, _ := newTestCache(0)
	ino := c.NewInode("f", 4096)
	eng.Go("warm", func(p *sim.Proc) {
		for pg := int64(0); pg < 10; pg++ {
			ino.FaultPageUnpinned(p, pg)
		}
		// Touch page 0 again: it becomes MRU.
		ino.FaultPageUnpinned(p, 0)
		// Now constrain and insert: LRU victims are 1, 2, ...
		c.SetMemLimit(10)
		ino.FaultPageUnpinned(p, 100)
		ino.FaultPageUnpinned(p, 101)
	})
	eng.Run()
	if !ino.Resident(0) {
		t.Fatal("recently-touched page 0 evicted before older pages")
	}
	if ino.Resident(1) || ino.Resident(2) {
		t.Fatal("LRU pages 1,2 survived reclaim")
	}
}

func TestReclaimSkipsMappedPages(t *testing.T) {
	eng, c, _ := newTestCache(0)
	ino := c.NewInode("f", 4096)
	eng.Go("w", func(p *sim.Proc) {
		for pg := int64(0); pg < 8; pg++ {
			ino.FaultPageUnpinned(p, pg)
		}
		for pg := int64(0); pg < 8; pg++ {
			ino.MapPage(pg) // rmap reference
		}
		c.SetMemLimit(4)
		ino.FaultPageUnpinned(p, 100) // would reclaim, but everything is mapped
	})
	eng.Run()
	for pg := int64(0); pg < 8; pg++ {
		if !ino.Resident(pg) {
			t.Fatalf("mapped page %d reclaimed", pg)
		}
	}
	// Unmap and trigger another insertion: now reclaim succeeds.
	eng.Go("u", func(p *sim.Proc) {
		for pg := int64(0); pg < 8; pg++ {
			ino.UnmapPage(pg)
		}
		ino.FaultPageUnpinned(p, 200)
	})
	eng.Run()
	if c.NrCachedPages() > 4 {
		t.Fatalf("cache = %d after unmapping, limit 4", c.NrCachedPages())
	}
}

func TestMapCountBalance(t *testing.T) {
	eng, c, _ := newTestCache(0)
	ino := c.NewInode("f", 64)
	eng.Go("w", func(p *sim.Proc) { ino.FaultPageUnpinned(p, 3) })
	eng.Run()
	ino.MapPage(3)
	ino.MapPage(3)
	if ino.MapCount(3) != 2 {
		t.Fatalf("mapcount = %d", ino.MapCount(3))
	}
	ino.UnmapPage(3)
	ino.UnmapPage(3)
	ino.UnmapPage(3) // extra unmap must not underflow
	if ino.MapCount(3) != 0 {
		t.Fatalf("mapcount = %d after unmaps", ino.MapCount(3))
	}
	// Absent pages: no-ops.
	ino.MapPage(50)
	if ino.MapCount(50) != 0 {
		t.Fatal("mapcount on absent page")
	}
}

func TestEvictedPageRefetches(t *testing.T) {
	eng, c, _ := newTestCache(0)
	c.SetMemLimit(2)
	ino := c.NewInode("f", 64)
	eng.Go("w", func(p *sim.Proc) {
		ino.FaultPageUnpinned(p, 0)
		ino.FaultPageUnpinned(p, 1)
		ino.FaultPageUnpinned(p, 2) // evicts 0
		ino.FaultPageUnpinned(p, 0) // must refetch
	})
	eng.Run()
	if c.Stats().Misses != 4 {
		t.Fatalf("misses = %d, want 4 (refetch after eviction)", c.Stats().Misses)
	}
}

func TestNoLimitNoEviction(t *testing.T) {
	eng, c, _ := newTestCache(0)
	ino := c.NewInode("f", 4096)
	ino.ReadaheadAsync(0, 1024)
	eng.Run()
	if c.Evictions() != 0 {
		t.Fatal("evictions without a memory limit")
	}
}

// Package pagecache models the Linux page cache for the simulated
// host kernel: per-inode resident pages, demand faulting with a
// readahead window, asynchronous readahead
// (page_cache_ra_unbounded), buffered and direct reads, and mincore.
//
// Every page insertion fires the "add_to_page_cache_lru" kprobe with
// (inode id, page index) — the hook both SnapBPF eBPF programs attach
// to (§3.1 of the paper). Pages inserted here are shared by every
// process that maps the backing file, which is the deduplication
// property SnapBPF exploits for concurrent VM sandboxes.
package pagecache

import (
	"container/list"
	"fmt"

	"snapbpf/internal/blockdev"
	"snapbpf/internal/costmodel"
	"snapbpf/internal/faults"
	"snapbpf/internal/kprobe"
	"snapbpf/internal/sim"
	"snapbpf/internal/units"
)

// HookAddToPageCacheLRU is the kprobe name fired on every insertion.
const HookAddToPageCacheLRU = "add_to_page_cache_lru"

// DefaultRAPages is the default Linux readahead window: 128KiB = 32
// pages, the value the paper uses for its Linux-RA baseline.
const DefaultRAPages = 32

// Page is one resident (or in-flight) page-cache page.
type Page struct {
	inode  *Inode
	index  int64
	ioDone *sim.Waiter // non-nil while the backing read is in flight

	// lruElem is the page's position in the cache's reclaim list;
	// mapCount is the rmap reference count (address spaces currently
	// mapping this page), which exempts it from reclaim.
	lruElem  *list.Element
	mapCount int

	// pins counts fault-path references (the folio refcount a faulting
	// task holds from lookup until it has mapped or copied the page);
	// pinned pages are exempt from reclaim, so a fault cannot lose its
	// page to memory pressure between read completion and use.
	pins int
}

// Uptodate reports whether the page content has arrived from storage.
func (pg *Page) Uptodate() bool { return pg.ioDone == nil || pg.ioDone.Fired() }

// Stats holds cache-wide counters.
type Stats struct {
	Hits        int64 // faults served by an uptodate page
	WaitHits    int64 // faults that waited on an in-flight page
	Misses      int64 // faults that had to start a read
	Inserted    int64 // pages added to the cache (any path)
	RAInserted  int64 // pages added by ReadaheadAsync
	DirectReads int64 // direct-I/O requests (bypass)
	Evicted     int64 // pages reclaimed under memory pressure
}

// Cache is the host page cache.
type Cache struct {
	eng    *sim.Engine
	dev    *blockdev.Device
	probes *kprobe.Registry
	cm     costmodel.Model

	// RAPages is the demand-fault readahead window in pages; 0
	// disables readahead (the Linux-NoRA baseline).
	RAPages int64

	nextInode uint64
	inodes    map[uint64]*Inode
	nrCached  int64
	lru       *list.List
	memLimit  int64 // 0 = unlimited

	// cur is the task currently executing inside a synchronous kernel
	// dispatch chain (page insertion -> kprobe -> eBPF -> kfunc). It
	// is only valid for the duration of that chain: insert sets it
	// before firing the probe and restores it after, so a kfunc such
	// as snapbpf_prefetch can charge CPU time to the task whose fault
	// triggered the program. It is never read across a sleep.
	cur *sim.Proc

	obs Observer

	stats Stats
}

// Observer receives cache-level events for the correctness harness
// (internal/check). Observers must not mutate cache state; a nil
// observer costs one branch per event. Rmap map/unmap is deliberately
// NOT observed: the harness derives its own reference counts from
// address-space events and cross-checks them against MapCount, so a
// corrupted rmap counter cannot hide by also corrupting the shadow.
type Observer interface {
	// PageInserted fires for every page added to the cache (in-flight
	// until its read lands); readahead marks the asynchronous path.
	PageInserted(ino *Inode, idx int64, readahead bool)
	// PageEvicted fires when reclaim removes a page under memory
	// pressure.
	PageEvicted(ino *Inode, idx int64)
	// PageRemoved fires when DropCaches or Invalidate removes a page.
	PageRemoved(ino *Inode, idx int64)
	// ReadaheadIssued fires once per ReadaheadAsync call — the
	// prefetch-group issue point of the SnapBPF kfunc and the Linux
	// readahead window — before the run's inserts and reads are
	// submitted. n is the in-bounds window size, inserted the number
	// of absent pages about to be inserted.
	ReadaheadIssued(ino *Inode, start, n, inserted int64)
}

// SetObserver installs obs (nil disables observation).
func (c *Cache) SetObserver(obs Observer) { c.obs = obs }

// ForEachInode visits every registered inode (iteration order is
// unspecified; callers that need determinism must sort).
func (c *Cache) ForEachInode(f func(*Inode)) {
	for _, ino := range c.inodes {
		f(ino)
	}
}

// ForEachPage visits every cached page of the inode with its uptodate
// status and rmap map count (iteration order is unspecified).
func (i *Inode) ForEachPage(f func(idx int64, uptodate bool, mapCount int)) {
	for idx, pg := range i.pages {
		f(idx, pg.Uptodate(), pg.mapCount)
	}
}

// New creates a page cache backed by dev, firing probes on insertions.
func New(eng *sim.Engine, dev *blockdev.Device, probes *kprobe.Registry, cm costmodel.Model) *Cache {
	return &Cache{
		eng:     eng,
		dev:     dev,
		probes:  probes,
		cm:      cm,
		RAPages: DefaultRAPages,
		inodes:  make(map[uint64]*Inode),
		lru:     list.New(),
	}
}

// Engine returns the simulation engine.
func (c *Cache) Engine() *sim.Engine { return c.eng }

// Device returns the backing block device.
func (c *Cache) Device() *blockdev.Device { return c.dev }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// InodeByID resolves an inode number, as kernel code (the SnapBPF
// prefetch kfunc) must when it receives an inode id from a BPF map.
func (c *Cache) InodeByID(id uint64) (*Inode, bool) {
	ino, ok := c.inodes[id]
	return ino, ok
}

// NrCachedPages returns the number of pages currently in the cache
// (resident or in flight) across all inodes — the page-cache share of
// system memory in the Fig. 3c accounting.
func (c *Cache) NrCachedPages() int64 { return c.nrCached }

// charge sleeps task p for d; a nil p (background or asynchronous
// context) drops the cost, as kernel work off the fault path does not
// extend the faulting task's latency.
func charge(p *sim.Proc, d sim.Duration) {
	if p != nil && d > 0 {
		p.Sleep(d)
	}
}

// DropCaches evicts every page from every inode (echo 3 >
// drop_caches), used to cold-start record phases. In-flight pages are
// kept, as the kernel does. The caller must ensure no address space
// still maps the dropped pages (the harness drops between phases,
// after sandbox teardown).
func (c *Cache) DropCaches() {
	for _, ino := range c.inodes {
		for idx, pg := range ino.pages {
			if pg.Uptodate() {
				c.dropLRU(pg)
				delete(ino.pages, idx)
				c.nrCached--
				if c.obs != nil {
					c.obs.PageRemoved(ino, idx)
				}
			}
		}
	}
}

// Inode is one cached file.
type Inode struct {
	c       *Cache
	id      uint64
	name    string
	nrPages int64
	pages   map[int64]*Page

	// raPages overrides the cache default when >= 0; the SnapBPF
	// capture phase disables readahead on the snapshot inode so only
	// true working-set pages are fetched and recorded (§3.1).
	raPages int64

	// stager, when non-nil, is blocked on before any device read of
	// this inode is submitted — the snapshot distribution tier
	// (internal/store) fetching cold chunks from the remote. Local
	// files leave it nil and pay nothing.
	stager Stager
}

// Stager gates device reads of an inode on data being locally
// resident. Stage blocks until the byte range [off, off+length) can be
// read from the local device. Implemented by internal/store's chunk
// binding; defined here so the page cache does not depend on the
// store.
type Stager interface {
	Stage(p *sim.Proc, off, length int64)
}

// SetStager installs the read-staging hook; nil removes it.
func (i *Inode) SetStager(s Stager) { i.stager = s }

// NewInode registers a file of nrPages pages with the cache.
func (c *Cache) NewInode(name string, nrPages int64) *Inode {
	c.nextInode++
	ino := &Inode{
		c:       c,
		id:      c.nextInode,
		name:    name,
		nrPages: nrPages,
		pages:   make(map[int64]*Page),
		raPages: -1,
	}
	c.inodes[ino.id] = ino
	return ino
}

// ID returns the inode number, the value SnapBPF programs filter on.
func (i *Inode) ID() uint64 { return i.id }

// Name returns the file name.
func (i *Inode) Name() string { return i.name }

// NrPages returns the file size in pages.
func (i *Inode) NrPages() int64 { return i.nrPages }

// SetReadahead overrides the readahead window for this inode;
// pass -1 to inherit the cache default, 0 to disable.
func (i *Inode) SetReadahead(pages int64) { i.raPages = pages }

func (i *Inode) raWindow() int64 {
	if i.raPages >= 0 {
		return i.raPages
	}
	return i.c.RAPages
}

// Present reports whether the page is in the cache (even in-flight).
func (i *Inode) Present(idx int64) bool {
	_, ok := i.pages[idx]
	return ok
}

// Resident reports whether the page is in the cache and uptodate.
func (i *Inode) Resident(idx int64) bool {
	pg, ok := i.pages[idx]
	return ok && pg.Uptodate()
}

// ResidentPages returns the number of uptodate pages of this inode.
func (i *Inode) ResidentPages() int64 {
	var n int64
	for _, pg := range i.pages {
		if pg.Uptodate() {
			n++
		}
	}
	return n
}

// insert adds one absent page in in-flight state bound to done,
// firing the insertion kprobe and charging insertion cost to p. The
// caller guarantees the page is absent. The cache's current-task
// pointer is set for the duration of the probe dispatch so kfuncs can
// charge the same task.
func (i *Inode) insert(p *sim.Proc, idx int64, done *sim.Waiter, readahead bool) *Page {
	pg := &Page{inode: i, index: idx, ioDone: done}
	i.pages[idx] = pg
	i.c.nrCached++
	i.c.stats.Inserted++
	// Observe before the kprobe dispatch below: an attached program can
	// recursively insert further pages, and observers must see cache
	// events in causal order.
	if i.c.obs != nil {
		i.c.obs.PageInserted(i, idx, readahead)
	}
	i.c.touchLRU(pg)
	i.c.reclaim()
	charge(p, i.c.cm.PageCacheInsert)
	if i.c.probes != nil {
		if i.c.probes.AttachedCount(HookAddToPageCacheLRU) > 0 {
			charge(p, i.c.cm.KprobeDispatch)
		}
		prev := i.c.cur
		i.c.cur = p
		i.c.probes.Fire(HookAddToPageCacheLRU, i.id, uint64(idx))
		i.c.cur = prev
	}
	return pg
}

// submitRuns groups the given sorted absent indices into contiguous
// runs, inserts their pages, and submits one device read per run. All
// inserted pages bound to a run share its completion waiter. Demand
// faults submit synchronous-class reads; readahead submits
// REQ_RAHEAD-class reads that yield to them.
func (i *Inode) submitRuns(p *sim.Proc, indices []int64, readahead bool) {
	for n := 0; n < len(indices); {
		start := indices[n]
		end := n + 1
		for end < len(indices) && indices[end] == indices[end-1]+1 {
			end++
		}
		runLen := int64(end - n)
		done := i.c.eng.NewWaiter()
		for k := int64(0); k < runLen; k++ {
			// Re-check: a kprobe program fired by an earlier insert in
			// this run may itself have inserted pages of this inode.
			if !i.Present(start + k) {
				i.insert(p, start+k, done, readahead)
			}
		}
		off := int64(units.PageIdx(start).ByteOff())
		length := int64(units.PagesToBytes(runLen))
		submit := i.c.dev.SubmitReadIO
		if readahead {
			submit = i.c.dev.SubmitReadaheadIO
		}
		// Relay device completion to the shared page waiter, retrying
		// failed reads with backoff — the kernel's path re-issues a
		// failed bio before declaring the folio in error, and injected
		// errors are transient (never at attempt >= MaxErrorAttempts),
		// so the pages always come uptodate eventually. Reclaim runs
		// again once pages become uptodate: in-flight pages are not
		// evictable, so an insertion burst can overshoot the limit
		// until its reads land (as direct reclaim does while waiting
		// out in-flight folios).
		if st := i.stager; st != nil {
			// Staged inode: the chunk must cross the remote link
			// before the device read can be submitted, so submission
			// moves inside the relay proc, after Stage returns.
			i.c.eng.Go("io-complete", func(proc *sim.Proc) {
				st.Stage(proc, off, length)
				io := submit(off, length, 0)
				proc.Wait(io.Done())
				for attempt := 1; io.Err() != nil && attempt < faults.MaxRetryAttempts; attempt++ {
					i.c.dev.Faults().CountRetry()
					proc.Sleep(faults.Backoff(attempt - 1))
					io = submit(off, length, attempt)
					proc.Wait(io.Done())
				}
				done.Fire()
				i.c.reclaim()
			})
			n = end
			continue
		}
		io := submit(off, length, 0)
		i.c.eng.Go("io-complete", func(proc *sim.Proc) {
			proc.Wait(io.Done())
			for attempt := 1; io.Err() != nil && attempt < faults.MaxRetryAttempts; attempt++ {
				i.c.dev.Faults().CountRetry()
				proc.Sleep(faults.Backoff(attempt - 1))
				io = submit(off, length, attempt)
				proc.Wait(io.Done())
			}
			done.Fire()
			i.c.reclaim()
		})
		n = end
	}
}

// FaultPage is the demand-fault read path: it returns once page idx is
// resident, starting a read (with the readahead window) if needed.
// The process is charged fault-handling CPU time: a minor-fault cost
// on hits, major-fault software overhead plus device wait on misses.
//
// The returned page is *pinned* — the folio reference a faulting task
// holds from lookup until it has mapped or copied the page — so memory
// pressure cannot reclaim it out from under the fault. The caller must
// Unpin once done with the page.
func (i *Inode) FaultPage(p *sim.Proc, idx int64) {
	if idx < 0 || idx >= i.nrPages {
		panic(fmt.Sprintf("pagecache: fault beyond EOF: %s page %d of %d", i.name, idx, i.nrPages))
	}
	for !i.faultPageOnce(p, idx) {
	}
}

// faultPageOnce is one pass of the fault path. It returns true once
// the page is resident and pinned; false means the page was read but
// reclaimed again before it could be pinned (possible only when a
// kprobe program inside the insert path yields), and the fault must
// retry — filemap_fault's VM_FAULT_RETRY.
func (i *Inode) faultPageOnce(p *sim.Proc, idx int64) bool {
	if pg, ok := i.pages[idx]; ok {
		pg.pins++
		if pg.Uptodate() {
			i.c.stats.Hits++
			i.c.touchLRU(pg)
			return true
		}
		i.c.stats.WaitHits++
		p.Wait(pg.ioDone)
		return true
	}

	p.Sleep(i.c.cm.MajorFaultSW)

	// The sleep above is a scheduling point: another task may have
	// started the read meanwhile. Re-check before submitting.
	if pg, ok := i.pages[idx]; ok {
		pg.pins++
		if pg.Uptodate() {
			i.c.stats.Hits++
			return true
		}
		i.c.stats.WaitHits++
		p.Wait(pg.ioDone)
		return true
	}
	i.c.stats.Misses++

	// Collect the absent pages of the readahead window (at least the
	// faulting page itself).
	window := i.raWindow()
	if window < 1 {
		window = 1
	}
	hi := idx + window
	if hi > i.nrPages {
		hi = i.nrPages
	}
	var toRead []int64
	for j := idx; j < hi; j++ {
		if !i.Present(j) {
			toRead = append(toRead, j)
		}
	}
	i.submitRuns(p, toRead, false)

	pg, ok := i.pages[idx]
	if !ok {
		return false
	}
	pg.pins++
	if !pg.Uptodate() {
		p.Wait(pg.ioDone)
	}
	return true
}

// FaultPageUnpinned faults the page in and immediately drops the
// fault pin — for callers that only want residency, not a reference
// held across further work.
func (i *Inode) FaultPageUnpinned(p *sim.Proc, idx int64) {
	i.FaultPage(p, idx)
	i.Unpin(idx)
}

// ReadaheadAsync is page_cache_ra_unbounded: it inserts the absent
// pages of [start, start+n) and submits their reads without waiting
// for completion. It returns the number of pages newly inserted.
// When called from inside a probe dispatch (the SnapBPF prefetch
// kfunc), CPU cost is charged to the task whose fault triggered the
// program; from other contexts it is free of CPU cost.
func (i *Inode) ReadaheadAsync(start, n int64) int64 {
	if start < 0 {
		start = 0
	}
	hi := start + n
	if hi > i.nrPages {
		hi = i.nrPages
	}
	if hi < start {
		hi = start
	}
	var toRead []int64
	for j := start; j < hi; j++ {
		if !i.Present(j) {
			toRead = append(toRead, j)
		}
	}
	if i.c.obs != nil {
		// Before submitRuns: inserts dispatched below (and any
		// prefetch program they fire recursively) must observe their
		// causing readahead first.
		i.c.obs.ReadaheadIssued(i, start, hi-start, int64(len(toRead)))
	}
	i.submitRuns(i.c.cur, toRead, true)
	i.c.stats.RAInserted += int64(len(toRead))
	return int64(len(toRead))
}

// BufferedRead models a read(2) of nPages pages starting at startPage:
// it faults each page through the cache (demand path, honouring the
// inode readahead setting) and charges the per-page copy_to_user cost.
// FaaSnap's userspace prefetch thread issues these.
func (i *Inode) BufferedRead(p *sim.Proc, startPage, nPages int64) {
	p.Sleep(i.c.cm.Syscall)
	hi := startPage + nPages
	if hi > i.nrPages {
		hi = i.nrPages
	}
	for j := startPage; j < hi; j++ {
		i.FaultPage(p, j)
		p.Sleep(i.c.cm.CopyUserPage)
		i.Unpin(j)
	}
}

// DirectRead models an O_DIRECT read: it goes straight to the device,
// bypassing the cache entirely — no insertion, no kprobe firing, no
// sharing. REAP and Faast fetch working sets this way (§2.1). The
// error is non-nil when the device injected a transient media error;
// unlike the buffered path, O_DIRECT surfaces it to userspace, so the
// scheme owns the retry (via DirectReadAttempt).
func (i *Inode) DirectRead(p *sim.Proc, startPage, nPages int64) error {
	return i.DirectReadAttempt(p, startPage, nPages, 0)
}

// DirectReadAttempt is DirectRead with an explicit retry index.
func (i *Inode) DirectReadAttempt(p *sim.Proc, startPage, nPages int64, attempt int) error {
	p.Sleep(i.c.cm.Syscall)
	i.c.stats.DirectReads++
	off := int64(units.PageIdx(startPage).ByteOff())
	length := int64(units.PagesToBytes(nPages))
	if st := i.stager; st != nil {
		st.Stage(p, off, length)
	}
	return i.c.dev.ReadAttempt(p, off, length, attempt)
}

// Mincore returns the residency bitmap for [start, start+n): true for
// pages that are resident in the cache, mirroring mincore(2) on a
// file-backed mapping. FaaSnap captures working sets with this.
func (i *Inode) Mincore(start, n int64) []bool {
	out := make([]bool, n)
	for j := int64(0); j < n; j++ {
		out[j] = i.Resident(start + j)
	}
	return out
}

// Invalidate drops resident pages of [start, start+n), used by tests
// and the drop-caches path.
func (i *Inode) Invalidate(start, n int64) {
	for j := start; j < start+n; j++ {
		if pg, ok := i.pages[j]; ok && pg.Uptodate() {
			i.c.dropLRU(pg)
			delete(i.pages, j)
			i.c.nrCached--
			if i.c.obs != nil {
				i.c.obs.PageRemoved(i, j)
			}
		}
	}
}

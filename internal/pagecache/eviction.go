package pagecache

// Page-cache eviction under memory pressure. Real FaaS nodes do not
// have unbounded page cache: when the cache exceeds MemLimitPages,
// insertion reclaims clean, unmapped pages in LRU order, exactly the
// regime where deduplicated (shared) working sets must be refetched
// and the schemes' trade-offs shift.
//
// Pages that are currently mapped into an address space (tracked with
// rmap-style map counts by internal/hostmm) are skipped by reclaim,
// as are in-flight pages.

// SetMemLimit bounds the cache to limitPages (0 = unlimited).
func (c *Cache) SetMemLimit(limitPages int64) { c.memLimit = limitPages }

// MemLimit returns the configured bound.
func (c *Cache) MemLimit() int64 { return c.memLimit }

// Evictions returns the number of pages reclaimed so far.
func (c *Cache) Evictions() int64 { return c.stats.Evicted }

// touchLRU moves a page to the most-recently-used position.
func (c *Cache) touchLRU(pg *Page) {
	if pg.lruElem != nil {
		c.lru.MoveToBack(pg.lruElem)
		return
	}
	pg.lruElem = c.lru.PushBack(pg)
}

// dropLRU removes a page from the LRU list.
func (c *Cache) dropLRU(pg *Page) {
	if pg.lruElem != nil {
		c.lru.Remove(pg.lruElem)
		pg.lruElem = nil
	}
}

// reclaim evicts LRU pages until the cache is back under its limit.
// Mapped and in-flight pages are skipped (shrink_page_list semantics
// without writeback, since our cached snapshot pages are clean).
func (c *Cache) reclaim() {
	if c.memLimit <= 0 {
		return
	}
	e := c.lru.Front()
	for c.nrCached > c.memLimit && e != nil {
		next := e.Next()
		pg := e.Value.(*Page)
		if pg.Uptodate() && pg.mapCount == 0 && pg.pins == 0 {
			c.dropLRU(pg)
			delete(pg.inode.pages, pg.index)
			c.nrCached--
			c.stats.Evicted++
			if c.obs != nil {
				c.obs.PageEvicted(pg.inode, pg.index)
			}
		}
		e = next
	}
}

// MapPage records that an address space mapped the resident page
// (rmap reference); mapped pages are exempt from reclaim. It is a
// no-op for absent pages.
func (i *Inode) MapPage(idx int64) {
	if pg, ok := i.pages[idx]; ok {
		pg.mapCount++
	}
}

// UnmapPage drops one rmap reference.
func (i *Inode) UnmapPage(idx int64) {
	if pg, ok := i.pages[idx]; ok && pg.mapCount > 0 {
		pg.mapCount--
	}
}

// Unpin releases the fault-path reference FaultPage took on the page.
// Call once the page has been mapped or its content copied.
func (i *Inode) Unpin(idx int64) {
	pg, ok := i.pages[idx]
	if !ok || pg.pins <= 0 {
		panic("pagecache: unpin of a page that is not pinned")
	}
	pg.pins--
}

// MapCount returns the rmap reference count for tests.
func (i *Inode) MapCount(idx int64) int {
	if pg, ok := i.pages[idx]; ok {
		return pg.mapCount
	}
	return 0
}

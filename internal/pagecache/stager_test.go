package pagecache

import (
	"testing"
	"time"

	"snapbpf/internal/sim"
	"snapbpf/internal/units"
)

// recordingStager notes every staged byte range and charges a fixed
// delay, standing in for internal/store's chunk binding.
type recordingStager struct {
	delay  time.Duration
	ranges [][2]int64
}

func (s *recordingStager) Stage(p *sim.Proc, off, length int64) {
	s.ranges = append(s.ranges, [2]int64{off, length})
	if s.delay > 0 {
		p.Sleep(s.delay)
	}
}

// TestStagerGatesFaultPath: a staged inode's demand fault must pass
// through Stage with the exact byte range of the device read, and the
// staging delay is paid before the device latency.
func TestStagerGatesFaultPath(t *testing.T) {
	eng, c, _ := newTestCache(0)
	ino := c.NewInode("snap", 1024)
	st := &recordingStager{delay: 3 * time.Millisecond}
	ino.SetStager(st)
	var plain, staged time.Duration
	eng.Go("f", func(p *sim.Proc) {
		t0 := p.Now()
		ino.FaultPageUnpinned(p, 10)
		staged = p.Now().Sub(t0)
	})
	eng.Run()
	if len(st.ranges) != 1 {
		t.Fatalf("stager saw %d ranges, want 1", len(st.ranges))
	}
	want := [2]int64{int64(units.PageIdx(10).ByteOff()), int64(units.PagesToBytes(1))}
	if st.ranges[0] != want {
		t.Fatalf("staged range %v, want %v", st.ranges[0], want)
	}
	// The same fault on an unstaged inode costs the device read alone.
	eng2, c2, _ := newTestCache(0)
	ino2 := c2.NewInode("snap", 1024)
	eng2.Go("f", func(p *sim.Proc) {
		t0 := p.Now()
		ino2.FaultPageUnpinned(p, 10)
		plain = p.Now().Sub(t0)
	})
	eng2.Run()
	if staged != plain+st.delay {
		t.Fatalf("staged fault took %v, want plain %v + stage delay %v", staged, plain, st.delay)
	}
	if !ino.Resident(10) {
		t.Fatal("page not resident after staged fault")
	}
}

// TestStagerGatesReadahead: readahead batches stage once per
// contiguous device run, covering the whole window.
func TestStagerGatesReadahead(t *testing.T) {
	eng, c, _ := newTestCache(32)
	ino := c.NewInode("snap", 1024)
	st := &recordingStager{}
	ino.SetStager(st)
	eng.Go("f", func(p *sim.Proc) {
		ino.FaultPageUnpinned(p, 0)
		p.Sleep(10 * time.Millisecond) // let readahead I/O land
	})
	eng.Run()
	if got := ino.ResidentPages(); got != 32 {
		t.Fatalf("resident = %d, want 32 (readahead window)", got)
	}
	var bytes int64
	for _, r := range st.ranges {
		bytes += r[1]
	}
	if want := int64(units.PagesToBytes(32)); bytes != want {
		t.Fatalf("stager covered %d bytes, want %d", bytes, want)
	}
}

// TestStagerGatesDirectRead: the O_DIRECT path stages too — the
// capture phase reads the snapshot file directly, and on a cold tier
// those bytes also live behind the remote.
func TestStagerGatesDirectRead(t *testing.T) {
	eng, c, _ := newTestCache(0)
	ino := c.NewInode("snap", 1024)
	st := &recordingStager{}
	ino.SetStager(st)
	eng.Go("f", func(p *sim.Proc) {
		if err := ino.DirectRead(p, 5, 3); err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	want := [2]int64{int64(units.PageIdx(5).ByteOff()), int64(units.PagesToBytes(3))}
	if len(st.ranges) != 1 || st.ranges[0] != want {
		t.Fatalf("stager saw %v, want [%v]", st.ranges, want)
	}
	if got := ino.ResidentPages(); got != 0 {
		t.Fatalf("direct read populated %d pages", got)
	}
}

// TestSetStagerNilRemoves: clearing the hook restores the local-file
// path exactly.
func TestSetStagerNilRemoves(t *testing.T) {
	eng, c, _ := newTestCache(0)
	ino := c.NewInode("snap", 1024)
	st := &recordingStager{}
	ino.SetStager(st)
	ino.SetStager(nil)
	eng.Go("f", func(p *sim.Proc) { ino.FaultPageUnpinned(p, 0) })
	eng.Run()
	if len(st.ranges) != 0 {
		t.Fatalf("removed stager still saw %v", st.ranges)
	}
}

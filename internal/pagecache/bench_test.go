package pagecache

import (
	"testing"

	"snapbpf/internal/blockdev"
	"snapbpf/internal/costmodel"
	"snapbpf/internal/kprobe"
	"snapbpf/internal/sim"
)

// Microbenchmarks for the page-cache hot paths the experiments stress:
// insertion (with and without an attached kprobe consumer) and hit
// lookups.

func BenchmarkReadaheadInsert(b *testing.B) {
	eng := sim.NewEngine()
	dev := blockdev.New(eng, blockdev.MicronSATA5300())
	c := New(eng, dev, kprobe.NewRegistry(), costmodel.Default())
	ino := c.NewInode("f", int64(b.N)+1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ino.ReadaheadAsync(int64(i), 1)
	}
	b.StopTimer()
	eng.Run()
}

func BenchmarkFaultHit(b *testing.B) {
	eng := sim.NewEngine()
	dev := blockdev.New(eng, blockdev.MicronSATA5300())
	c := New(eng, dev, kprobe.NewRegistry(), costmodel.Default())
	ino := c.NewInode("f", 1024)
	ino.ReadaheadAsync(0, 1024)
	eng.Run()
	eng.Go("hits", func(p *sim.Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ino.FaultPageUnpinned(p, int64(i%1024))
		}
	})
	eng.Run()
}

func BenchmarkMincore(b *testing.B) {
	eng := sim.NewEngine()
	dev := blockdev.New(eng, blockdev.MicronSATA5300())
	c := New(eng, dev, kprobe.NewRegistry(), costmodel.Default())
	ino := c.NewInode("f", 1<<16)
	ino.ReadaheadAsync(0, 1<<15)
	eng.Run()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm := ino.Mincore(0, 1<<16)
		if len(bm) != 1<<16 {
			b.Fatal("bad bitmap")
		}
	}
}

package pagecache

import (
	"testing"
	"time"

	"snapbpf/internal/blockdev"
	"snapbpf/internal/costmodel"
	"snapbpf/internal/faults"
	"snapbpf/internal/kprobe"
	"snapbpf/internal/sim"
)

func newTestCache(raPages int64) (*sim.Engine, *Cache, *kprobe.Registry) {
	eng := sim.NewEngine()
	dev := blockdev.New(eng, blockdev.MicronSATA5300())
	probes := kprobe.NewRegistry()
	c := New(eng, dev, probes, costmodel.Default())
	c.RAPages = raPages
	return eng, c, probes
}

func TestFaultMissThenHit(t *testing.T) {
	eng, c, _ := newTestCache(0)
	ino := c.NewInode("snap", 1024)
	var missTime, hitTime time.Duration
	eng.Go("f", func(p *sim.Proc) {
		t0 := p.Now()
		ino.FaultPageUnpinned(p, 10)
		missTime = p.Now().Sub(t0)
		t1 := p.Now()
		ino.FaultPageUnpinned(p, 10)
		hitTime = p.Now().Sub(t1)
	})
	eng.Run()
	if missTime < 90*time.Microsecond {
		t.Fatalf("miss took %v, want >= device latency", missTime)
	}
	if hitTime != 0 {
		t.Fatalf("hit took %v, want 0 (cost charged by MMU layer, not cache)", hitTime)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if !ino.Resident(10) {
		t.Fatal("page not resident after fault")
	}
}

func TestReadaheadWindowFetchesAhead(t *testing.T) {
	eng, c, _ := newTestCache(32)
	ino := c.NewInode("snap", 1024)
	eng.Go("f", func(p *sim.Proc) {
		ino.FaultPageUnpinned(p, 0)
		p.Sleep(10 * time.Millisecond) // let readahead I/O land
	})
	eng.Run()
	if got := ino.ResidentPages(); got != 32 {
		t.Fatalf("resident = %d, want 32 (readahead window)", got)
	}
}

func TestNoReadahead(t *testing.T) {
	eng, c, _ := newTestCache(0)
	ino := c.NewInode("snap", 1024)
	eng.Go("f", func(p *sim.Proc) { ino.FaultPageUnpinned(p, 0) })
	eng.Run()
	if got := ino.ResidentPages(); got != 1 {
		t.Fatalf("resident = %d, want 1 (NoRA)", got)
	}
}

func TestPerInodeReadaheadOverride(t *testing.T) {
	eng, c, _ := newTestCache(32)
	ino := c.NewInode("snap", 1024)
	ino.SetReadahead(0) // capture phase disables RA on the snapshot
	eng.Go("f", func(p *sim.Proc) { ino.FaultPageUnpinned(p, 5) })
	eng.Run()
	if got := ino.ResidentPages(); got != 1 {
		t.Fatalf("resident = %d, want 1 with per-inode override", got)
	}
}

func TestReadaheadClampedAtEOF(t *testing.T) {
	eng, c, _ := newTestCache(32)
	ino := c.NewInode("snap", 10)
	eng.Go("f", func(p *sim.Proc) {
		ino.FaultPageUnpinned(p, 8)
		p.Sleep(10 * time.Millisecond)
	})
	eng.Run()
	if got := ino.ResidentPages(); got != 2 {
		t.Fatalf("resident = %d, want 2 (pages 8,9)", got)
	}
}

func TestFaultBeyondEOFPanics(t *testing.T) {
	eng, c, _ := newTestCache(0)
	ino := c.NewInode("snap", 10)
	panicked := false
	eng.Go("f", func(p *sim.Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		ino.FaultPageUnpinned(p, 10)
	})
	eng.Run()
	if !panicked {
		t.Fatal("expected panic for fault beyond EOF")
	}
}

func TestWaitOnInFlightPage(t *testing.T) {
	eng, c, _ := newTestCache(0)
	ino := c.NewInode("snap", 64)
	var aDone, bDone sim.Time
	eng.Go("a", func(p *sim.Proc) {
		ino.FaultPageUnpinned(p, 3)
		aDone = p.Now()
	})
	// b faults the same page shortly after a started the read.
	eng.GoAfter(time.Microsecond, "b", func(p *sim.Proc) {
		ino.FaultPageUnpinned(p, 3)
		bDone = p.Now()
	})
	eng.Run()
	if c.Stats().Misses != 1 {
		t.Fatalf("misses = %d, want 1 (second fault waits)", c.Stats().Misses)
	}
	if c.Stats().WaitHits != 1 {
		t.Fatalf("waitHits = %d, want 1", c.Stats().WaitHits)
	}
	if bDone > aDone {
		t.Fatalf("b (%v) finished after a (%v); both should complete with the same I/O", bDone, aDone)
	}
}

func TestContiguousRunsBatchDeviceRequests(t *testing.T) {
	eng, c, _ := newTestCache(0)
	ino := c.NewInode("snap", 4096)
	ino.ReadaheadAsync(100, 64) // one contiguous run
	eng.Run()
	if reqs := c.Device().Stats().Requests; reqs != 1 {
		t.Fatalf("device requests = %d, want 1 (batched)", reqs)
	}
	if got := ino.ResidentPages(); got != 64 {
		t.Fatalf("resident = %d, want 64", got)
	}
}

func TestReadaheadAsyncSkipsPresent(t *testing.T) {
	eng, c, _ := newTestCache(0)
	ino := c.NewInode("snap", 4096)
	eng.Go("setup", func(p *sim.Proc) {
		ino.FaultPageUnpinned(p, 102) // pre-populate middle page
		n := ino.ReadaheadAsync(100, 5)
		if n != 4 {
			t.Errorf("inserted = %d, want 4 (102 already present)", n)
		}
	})
	eng.Run()
	// Two separate runs around the hole => 1 (setup) + 2 requests.
	if reqs := c.Device().Stats().Requests; reqs != 3 {
		t.Fatalf("device requests = %d, want 3", reqs)
	}
}

func TestKprobeFiresPerInsertion(t *testing.T) {
	eng, c, probes := newTestCache(0)
	ino := c.NewInode("snap", 4096)
	probes.Probe(HookAddToPageCacheLRU) // ensure probe exists so fires count
	ino.ReadaheadAsync(0, 10)
	eng.Run()
	if f := probes.Fires(HookAddToPageCacheLRU); f != 10 {
		t.Fatalf("kprobe fires = %d, want 10", f)
	}
}

func TestDirectReadBypassesCache(t *testing.T) {
	eng, c, probes := newTestCache(0)
	ino := c.NewInode("ws", 4096)
	probes.Probe(HookAddToPageCacheLRU)
	eng.Go("r", func(p *sim.Proc) { ino.DirectRead(p, 0, 100) })
	eng.Run()
	if c.NrCachedPages() != 0 {
		t.Fatalf("direct read populated cache: %d pages", c.NrCachedPages())
	}
	if probes.Fires(HookAddToPageCacheLRU) != 0 {
		t.Fatal("direct read fired the insertion kprobe")
	}
	if c.Stats().DirectReads != 1 {
		t.Fatalf("directReads = %d", c.Stats().DirectReads)
	}
}

func TestBufferedReadPopulatesCache(t *testing.T) {
	eng, c, _ := newTestCache(0)
	ino := c.NewInode("ws", 4096)
	eng.Go("r", func(p *sim.Proc) { ino.BufferedRead(p, 10, 20) })
	eng.Run()
	if got := ino.ResidentPages(); got != 20 {
		t.Fatalf("resident = %d, want 20", got)
	}
}

func TestMincore(t *testing.T) {
	eng, c, _ := newTestCache(0)
	ino := c.NewInode("snap", 64)
	eng.Go("f", func(p *sim.Proc) {
		ino.FaultPageUnpinned(p, 1)
		ino.FaultPageUnpinned(p, 3)
	})
	eng.Run()
	bm := ino.Mincore(0, 5)
	want := []bool{false, true, false, true, false}
	for i := range want {
		if bm[i] != want[i] {
			t.Fatalf("mincore = %v, want %v", bm, want)
		}
	}
}

func TestNrCachedAccounting(t *testing.T) {
	eng, c, _ := newTestCache(0)
	a := c.NewInode("a", 64)
	b := c.NewInode("b", 64)
	a.ReadaheadAsync(0, 10)
	b.ReadaheadAsync(0, 5)
	eng.Run()
	if c.NrCachedPages() != 15 {
		t.Fatalf("NrCachedPages = %d, want 15", c.NrCachedPages())
	}
	a.Invalidate(0, 4)
	if c.NrCachedPages() != 11 {
		t.Fatalf("NrCachedPages = %d, want 11 after invalidate", c.NrCachedPages())
	}
}

func TestDropCaches(t *testing.T) {
	eng, c, _ := newTestCache(0)
	ino := c.NewInode("a", 64)
	ino.ReadaheadAsync(0, 16)
	eng.Run()
	c.DropCaches()
	if c.NrCachedPages() != 0 {
		t.Fatalf("NrCachedPages = %d after drop", c.NrCachedPages())
	}
	if ino.Resident(0) {
		t.Fatal("page survived drop_caches")
	}
}

func TestInodeIDsUnique(t *testing.T) {
	_, c, _ := newTestCache(0)
	a := c.NewInode("a", 1)
	b := c.NewInode("b", 1)
	if a.ID() == b.ID() {
		t.Fatal("inode ids collide")
	}
}

func TestSharedPagesAcrossFaulters(t *testing.T) {
	// Ten processes fault the same 100 pages: device reads them once.
	eng, c, _ := newTestCache(0)
	ino := c.NewInode("snap", 4096)
	for k := 0; k < 10; k++ {
		eng.Go("vm", func(p *sim.Proc) {
			for j := int64(0); j < 100; j++ {
				ino.FaultPageUnpinned(p, j)
			}
		})
	}
	eng.Run()
	if got := c.Device().Stats().BytesRead; got != 100*4096 {
		t.Fatalf("device bytes = %d, want %d (dedup via shared cache)", got, 100*4096)
	}
	if c.NrCachedPages() != 100 {
		t.Fatalf("NrCachedPages = %d, want 100", c.NrCachedPages())
	}
}

// TestFaultPathRetriesInjectedErrors drives the demand-fault and
// buffered-read paths against a device that fails every first, second
// and third attempt: the kernel relay must retry until the transient
// errors clear, every page must come uptodate, and the invocation must
// complete rather than error.
func TestFaultPathRetriesInjectedErrors(t *testing.T) {
	eng, c, _ := newTestCache(8)
	in := faults.NewInjector(faults.Plan{Seed: 3, ReadErrorRate: 1.0, ShortReadRate: 0.5})
	c.Device().SetFaults(in)
	ino := c.NewInode("snap", 64)
	var done bool
	eng.Go("reader", func(p *sim.Proc) {
		ino.BufferedRead(p, 0, 64)
		done = true
	})
	eng.Run()
	if !done {
		t.Fatal("buffered read did not complete under injection")
	}
	if got := ino.ResidentPages(); got != 64 {
		t.Fatalf("resident pages = %d, want 64", got)
	}
	rep := in.Report()
	if rep.IOErrors == 0 || rep.Retries == 0 {
		t.Fatalf("no retries recorded: %+v", rep)
	}
}

// TestDirectReadSurfacesInjectedError checks O_DIRECT semantics: the
// error reaches the caller (the scheme owns the retry), and a later
// attempt past the cap succeeds.
func TestDirectReadSurfacesInjectedError(t *testing.T) {
	eng, c, _ := newTestCache(0)
	c.Device().SetFaults(faults.NewInjector(faults.Plan{Seed: 3, ReadErrorRate: 1.0}))
	ino := c.NewInode("ws", 16)
	var first, capped error
	eng.Go("reader", func(p *sim.Proc) {
		first = ino.DirectRead(p, 0, 16)
		capped = ino.DirectReadAttempt(p, 0, 16, faults.MaxErrorAttempts)
	})
	eng.Run()
	if first == nil {
		t.Fatal("rate-1.0 direct read did not fail")
	}
	if capped != nil {
		t.Fatalf("direct read failed past the attempt cap: %v", capped)
	}
}

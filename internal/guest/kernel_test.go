package guest

import "testing"

func testCfg(pv bool) Config {
	return Config{NrPages: 1024, StatePages: 256, PVMarking: pv}
}

func TestKernelAllocFreeRoundTrip(t *testing.T) {
	k, err := NewKernel(testCfg(false), 0)
	if err != nil {
		t.Fatal(err)
	}
	pfns, err := k.Alloc(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(pfns) != 100 {
		t.Fatalf("got %d pfns", len(pfns))
	}
	for _, p := range pfns {
		if p < 256 || p >= 1024 {
			t.Fatalf("pfn %d outside free pool", p)
		}
	}
	if k.AllocatedPages() != 100 {
		t.Fatalf("AllocatedPages = %d", k.AllocatedPages())
	}
	if err := k.Free(1); err != nil {
		t.Fatal(err)
	}
	if k.FreedPages() != 100 {
		t.Fatalf("FreedPages = %d", k.FreedPages())
	}
	if k.Buddy().NrFree() != 1024-256 {
		t.Fatalf("NrFree = %d", k.Buddy().NrFree())
	}
}

func TestKernelDuplicateHandle(t *testing.T) {
	k, _ := NewKernel(testCfg(false), 0)
	if _, err := k.Alloc(1, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Alloc(1, 4); err == nil {
		t.Fatal("duplicate handle accepted")
	}
}

func TestKernelFreeUnknownHandle(t *testing.T) {
	k, _ := NewKernel(testCfg(false), 0)
	if err := k.Free(7); err == nil {
		t.Fatal("free of unknown handle accepted")
	}
}

func TestKernelOOMRollsBack(t *testing.T) {
	k, _ := NewKernel(Config{NrPages: 64, StatePages: 32}, 0)
	if _, err := k.Alloc(1, 1000); err == nil {
		t.Fatal("oversized alloc accepted")
	}
	// Roll-back: everything free again.
	if k.Buddy().NrFree() != 32 {
		t.Fatalf("NrFree = %d after failed alloc", k.Buddy().NrFree())
	}
}

func TestPVMarkingFirstTouchMirrored(t *testing.T) {
	k, _ := NewKernel(testCfg(true), 0)
	pfns, _ := k.Alloc(1, 2)
	g0 := k.TouchPFN(pfns[0])
	if !IsMirror(g0) {
		t.Fatalf("first touch not mirrored: %#x", g0)
	}
	if Unmirror(g0) != uint64(pfns[0]) {
		t.Fatalf("unmirror(%#x) = %d, want %d", g0, Unmirror(g0), pfns[0])
	}
	// Second touch uses the original PFN.
	if g := k.TouchPFN(pfns[0]); IsMirror(g) {
		t.Fatal("second touch still mirrored")
	}
}

func TestPVMarkingDisabled(t *testing.T) {
	k, _ := NewKernel(testCfg(false), 0)
	pfns, _ := k.Alloc(1, 1)
	if g := k.TouchPFN(pfns[0]); IsMirror(g) {
		t.Fatal("mirrored touch with PV disabled")
	}
}

func TestPVMarkingOnlyFreshFrames(t *testing.T) {
	k, _ := NewKernel(testCfg(true), 0)
	// State pages were never allocated since restore: plain faults.
	if g := k.TouchPFN(5); IsMirror(g) {
		t.Fatal("snapshot-state page mirrored")
	}
}

func TestPVMarkingResetAcrossRealloc(t *testing.T) {
	k, _ := NewKernel(testCfg(true), 0)
	pfns, _ := k.Alloc(1, 4)
	for _, p := range pfns {
		k.TouchPFN(p) // consume mirror
	}
	if err := k.Free(1); err != nil {
		t.Fatal(err)
	}
	pfns2, _ := k.Alloc(2, 4)
	// Reallocated frames are fresh again: first touch mirrors.
	if g := k.TouchPFN(pfns2[0]); !IsMirror(g) {
		t.Fatal("reallocated frame not mirrored on first touch")
	}
}

func TestAllocPFNsLookup(t *testing.T) {
	k, _ := NewKernel(testCfg(false), 0)
	pfns, _ := k.Alloc(3, 10)
	got, ok := k.AllocPFNs(3)
	if !ok || len(got) != 10 {
		t.Fatalf("AllocPFNs = %v, %v", got, ok)
	}
	for i := range pfns {
		if got[i] != pfns[i] {
			t.Fatalf("pfn mismatch at %d", i)
		}
	}
	if _, ok := k.AllocPFNs(99); ok {
		t.Fatal("lookup of unknown handle succeeded")
	}
}

func TestNewKernelValidation(t *testing.T) {
	if _, err := NewKernel(Config{NrPages: 0}, 0); err == nil {
		t.Fatal("zero-page kernel accepted")
	}
	if _, err := NewKernel(Config{NrPages: 10, StatePages: 11}, 0); err == nil {
		t.Fatal("state > total accepted")
	}
}

func TestSaltChangesAllocation(t *testing.T) {
	get := func(salt int) int64 {
		k, _ := NewKernel(Config{NrPages: 1 << 16, StatePages: 1 << 10}, salt)
		pfns, err := k.Alloc(1, 1024)
		if err != nil {
			t.Fatal(err)
		}
		return pfns[0]
	}
	if get(0) == get(3) {
		t.Fatal("salt did not change allocation placement")
	}
}

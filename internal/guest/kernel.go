// Package guest models the VM (guest) kernel: its physical page frame
// layout at snapshot time, its buddy page allocator, and the two guest
// patches the evaluated systems rely on — SnapBPF's paravirtual PTE
// marking (§3.2) and FaaSnap's zero-on-free.
package guest

import (
	"fmt"
)

// MirrorBit is the most significant bit of the guest PFN space. The PV
// PTE-marking patch maps freshly allocated frames at gPFN|MirrorBit so
// the host can detect allocation faults and serve them with anonymous
// memory instead of snapshot reads (§3.2 of the paper).
const MirrorBit uint64 = 1 << 63

// IsMirror reports whether a faulting gPFN carries the mirror mark.
func IsMirror(gpfn uint64) bool { return gpfn&MirrorBit != 0 }

// Unmirror strips the mirror mark.
func Unmirror(gpfn uint64) uint64 { return gpfn &^ MirrorBit }

// Config describes a guest kernel at snapshot time.
type Config struct {
	// NrPages is the guest physical memory size in pages.
	NrPages int64

	// StatePages is the number of low frames occupied by the kernel
	// plus the initialized function state when the snapshot was taken.
	// Frames [StatePages, NrPages) are in the buddy allocator's free
	// pool, still holding whatever they held when last freed.
	StatePages int64

	// PVMarking enables the SnapBPF guest patch: the first mapping of
	// a frame allocated after restore uses the mirrored gPFN.
	PVMarking bool

	// ZeroOnFree enables the FaaSnap guest patch: freed frames are
	// zeroed, so snapshot scans can identify them by content.
	ZeroOnFree bool
}

// Kernel is the running guest kernel after a snapshot restore.
type Kernel struct {
	cfg   Config
	buddy *Buddy

	// allocs maps an allocation handle to its constituent PFN blocks.
	allocs map[int32][]allocBlock

	// freshUntouched marks frames allocated since restore whose first
	// guest mapping is still pending: with PVMarking their first touch
	// faults at the mirrored gPFN.
	freshUntouched map[int64]bool

	// Statistics.
	allocedPages int64
	freedPages   int64
}

type allocBlock struct {
	pfn   int64
	order int
}

// NewKernel boots a guest kernel from a snapshot-time configuration.
// rotateSalt perturbs the allocator free lists, modelling the
// allocator-state drift between the record invocation and later
// invocations.
func NewKernel(cfg Config, rotateSalt int) (*Kernel, error) {
	if cfg.NrPages <= 0 || cfg.StatePages < 0 || cfg.StatePages > cfg.NrPages {
		return nil, fmt.Errorf("guest: bad config: %d state of %d pages", cfg.StatePages, cfg.NrPages)
	}
	k := &Kernel{
		cfg:            cfg,
		buddy:          NewBuddy(cfg.StatePages, cfg.NrPages-cfg.StatePages),
		allocs:         make(map[int32][]allocBlock),
		freshUntouched: make(map[int64]bool),
	}
	k.buddy.Rotate(rotateSalt)
	return k, nil
}

// Config returns the kernel's snapshot-time configuration.
func (k *Kernel) Config() Config { return k.cfg }

// Buddy exposes the page allocator (tests and the Faast metadata scan).
func (k *Kernel) Buddy() *Buddy { return k.buddy }

// AllocatedPages returns the cumulative pages allocated since restore.
func (k *Kernel) AllocatedPages() int64 { return k.allocedPages }

// FreedPages returns the cumulative pages freed since restore.
func (k *Kernel) FreedPages() int64 { return k.freedPages }

// Alloc allocates nPages frames under the given handle. Frames are
// taken as maximal buddy blocks. The returned PFNs are the frames in
// allocation order.
func (k *Kernel) Alloc(handle int32, nPages int64) ([]int64, error) {
	if _, dup := k.allocs[handle]; dup {
		return nil, fmt.Errorf("guest: allocation handle %d in use", handle)
	}
	if nPages <= 0 {
		return nil, fmt.Errorf("guest: bad allocation size %d", nPages)
	}
	var blocks []allocBlock
	var pfns []int64
	remaining := nPages
	for remaining > 0 {
		order := 0
		for order < MaxOrder && int64(1)<<(order+1) <= remaining {
			order++
		}
		pfn, err := k.buddy.AllocBlock(order)
		if err != nil {
			// Roll back partial allocation.
			for _, bl := range blocks {
				_ = k.buddy.FreeBlock(bl.pfn)
			}
			return nil, err
		}
		blocks = append(blocks, allocBlock{pfn, order})
		for i := int64(0); i < int64(1)<<order; i++ {
			pfns = append(pfns, pfn+i)
			k.freshUntouched[pfn+i] = true
		}
		remaining -= int64(1) << order
	}
	k.allocs[handle] = blocks
	k.allocedPages += nPages
	return pfns, nil
}

// Free releases the allocation behind handle. With ZeroOnFree the
// caller (VMM) is responsible for charging the zeroing writes; the
// kernel only records the state change.
func (k *Kernel) Free(handle int32) error {
	blocks, ok := k.allocs[handle]
	if !ok {
		return fmt.Errorf("guest: free of unknown handle %d", handle)
	}
	delete(k.allocs, handle)
	for _, bl := range blocks {
		n := int64(1) << bl.order
		for i := int64(0); i < n; i++ {
			delete(k.freshUntouched, bl.pfn+i)
		}
		if err := k.buddy.FreeBlock(bl.pfn); err != nil {
			return err
		}
		k.freedPages += n
	}
	return nil
}

// AllocPFNs returns the frames of a live allocation in order.
func (k *Kernel) AllocPFNs(handle int32) ([]int64, bool) {
	blocks, ok := k.allocs[handle]
	if !ok {
		return nil, false
	}
	var pfns []int64
	for _, bl := range blocks {
		for i := int64(0); i < int64(1)<<bl.order; i++ {
			pfns = append(pfns, bl.pfn+i)
		}
	}
	return pfns, true
}

// TouchPFN translates a guest access to frame pfn into the gPFN the
// hardware will fault on. For the first touch of a frame allocated
// since restore under PV marking, that is the mirrored gPFN; the
// mirror state clears once reported, since the host maps both views on
// handling the fault (§3.2).
func (k *Kernel) TouchPFN(pfn int64) uint64 {
	if k.cfg.PVMarking && k.freshUntouched[pfn] {
		delete(k.freshUntouched, pfn)
		return uint64(pfn) | MirrorBit
	}
	return uint64(pfn)
}

package guest

import "fmt"

// MaxOrder is the largest buddy allocation order (2^10 pages = 4MiB),
// matching Linux's MAX_ORDER-1 for 4KiB pages.
const MaxOrder = 10

// Buddy is a binary buddy page allocator over a contiguous guest page
// frame range. It reproduces the allocation-reuse behaviour that makes
// stale snapshot pages land under fresh guest allocations (§2.2 of the
// paper): freed frames return to the free lists and are handed out
// again, still carrying their snapshot-time contents on the host side.
type Buddy struct {
	base    int64 // first managed PFN
	nrPages int64

	// freeLists[o] holds the base PFNs of free blocks of order o.
	freeLists [MaxOrder + 1][]int64
	// blockOrder tracks, for an allocated block's base PFN, its order.
	blockOrder map[int64]int
	// free marks each PFN (relative to base) as free.
	free []bool

	nrFree int64
}

// NewBuddy creates an allocator managing [base, base+nrPages), all free.
func NewBuddy(base, nrPages int64) *Buddy {
	if nrPages < 0 || base < 0 {
		panic("guest: negative buddy range")
	}
	b := &Buddy{
		base:       base,
		nrPages:    nrPages,
		blockOrder: make(map[int64]int),
		free:       make([]bool, nrPages),
	}
	for i := range b.free {
		b.free[i] = true
	}
	b.nrFree = nrPages
	// Seed free lists with maximal aligned blocks.
	pfn := base
	remaining := nrPages
	for remaining > 0 {
		o := MaxOrder
		for o > 0 && ((pfn-base)&(1<<o-1) != 0 || int64(1)<<o > remaining) {
			o--
		}
		b.freeLists[o] = append(b.freeLists[o], pfn)
		pfn += 1 << o
		remaining -= 1 << o
	}
	return b
}

// NrFree returns the number of free pages.
func (b *Buddy) NrFree() int64 { return b.nrFree }

// IsFree reports whether pfn is currently free.
func (b *Buddy) IsFree(pfn int64) bool {
	if pfn < b.base || pfn >= b.base+b.nrPages {
		return false
	}
	return b.free[pfn-b.base]
}

// FreePFNs returns every free PFN in ascending order — the allocator
// metadata Faast embeds in snapshots to filter stale pages (§2.2).
func (b *Buddy) FreePFNs() []int64 {
	out := make([]int64, 0, b.nrFree)
	for i, f := range b.free {
		if f {
			out = append(out, b.base+int64(i))
		}
	}
	return out
}

// Rotate moves the first n blocks of each free list to its tail,
// perturbing allocation order between invocations: the paper's
// observation that "the working set pages will differ between
// invocations" for ephemeral allocations comes from exactly this kind
// of allocator-state drift.
func (b *Buddy) Rotate(n int) {
	if n <= 0 {
		return
	}
	for o := range b.freeLists {
		l := b.freeLists[o]
		if len(l) < 2 {
			continue
		}
		k := n % len(l)
		b.freeLists[o] = append(append([]int64{}, l[k:]...), l[:k]...)
	}
}

// AllocBlock allocates a 2^order block and returns its base PFN.
func (b *Buddy) AllocBlock(order int) (int64, error) {
	if order < 0 || order > MaxOrder {
		return 0, fmt.Errorf("guest: bad order %d", order)
	}
	o := order
	for o <= MaxOrder && len(b.freeLists[o]) == 0 {
		o++
	}
	if o > MaxOrder {
		return 0, fmt.Errorf("guest: out of memory (order %d, %d pages free)", order, b.nrFree)
	}
	pfn := b.freeLists[o][0]
	b.freeLists[o] = b.freeLists[o][1:]
	// Split down to the requested order, returning upper halves.
	for o > order {
		o--
		b.freeLists[o] = append(b.freeLists[o], pfn+int64(1)<<o)
	}
	size := int64(1) << order
	for i := int64(0); i < size; i++ {
		b.free[pfn-b.base+i] = false
	}
	b.nrFree -= size
	b.blockOrder[pfn] = order
	return pfn, nil
}

// FreeBlock frees a block previously returned by AllocBlock,
// coalescing with its buddy where possible.
func (b *Buddy) FreeBlock(pfn int64) error {
	order, ok := b.blockOrder[pfn]
	if !ok {
		return fmt.Errorf("guest: free of unallocated block at pfn %d", pfn)
	}
	delete(b.blockOrder, pfn)
	size := int64(1) << order
	for i := int64(0); i < size; i++ {
		if b.free[pfn-b.base+i] {
			return fmt.Errorf("guest: double free of pfn %d", pfn+i)
		}
		b.free[pfn-b.base+i] = true
	}
	b.nrFree += size

	// Coalesce upward.
	for order < MaxOrder {
		buddy := b.base + ((pfn - b.base) ^ (int64(1) << order))
		if !b.removeFreeBlock(order, buddy) {
			break
		}
		if buddy < pfn {
			pfn = buddy
		}
		order++
	}
	b.freeLists[order] = append(b.freeLists[order], pfn)
	return nil
}

// removeFreeBlock removes a block from a free list if present.
func (b *Buddy) removeFreeBlock(order int, pfn int64) bool {
	l := b.freeLists[order]
	for i, p := range l {
		if p == pfn {
			// Must also be fully inside the managed range and free.
			b.freeLists[order] = append(l[:i], l[i+1:]...)
			return true
		}
	}
	return false
}

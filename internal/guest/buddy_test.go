package guest

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuddyInitAllFree(t *testing.T) {
	b := NewBuddy(100, 1000)
	if b.NrFree() != 1000 {
		t.Fatalf("NrFree = %d", b.NrFree())
	}
	if !b.IsFree(100) || !b.IsFree(1099) {
		t.Fatal("boundary pages not free")
	}
	if b.IsFree(99) || b.IsFree(1100) {
		t.Fatal("out-of-range pages reported free")
	}
}

func TestBuddyAllocFree(t *testing.T) {
	b := NewBuddy(0, 1024)
	pfn, err := b.AllocBlock(3) // 8 pages
	if err != nil {
		t.Fatal(err)
	}
	if b.NrFree() != 1016 {
		t.Fatalf("NrFree = %d", b.NrFree())
	}
	for i := int64(0); i < 8; i++ {
		if b.IsFree(pfn + i) {
			t.Fatalf("allocated page %d still free", pfn+i)
		}
	}
	if err := b.FreeBlock(pfn); err != nil {
		t.Fatal(err)
	}
	if b.NrFree() != 1024 {
		t.Fatalf("NrFree after free = %d", b.NrFree())
	}
}

func TestBuddyCoalescing(t *testing.T) {
	b := NewBuddy(0, 16)
	// Drain into order-0 blocks, then free all: must coalesce back so
	// an order-4 alloc succeeds.
	var pfns []int64
	for i := 0; i < 16; i++ {
		p, err := b.AllocBlock(0)
		if err != nil {
			t.Fatal(err)
		}
		pfns = append(pfns, p)
	}
	if _, err := b.AllocBlock(0); err == nil {
		t.Fatal("allocation from empty allocator succeeded")
	}
	for _, p := range pfns {
		if err := b.FreeBlock(p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.AllocBlock(4); err != nil {
		t.Fatalf("order-4 alloc after coalesce failed: %v", err)
	}
}

func TestBuddyDoubleFree(t *testing.T) {
	b := NewBuddy(0, 16)
	p, _ := b.AllocBlock(1)
	if err := b.FreeBlock(p); err != nil {
		t.Fatal(err)
	}
	if err := b.FreeBlock(p); err == nil {
		t.Fatal("double free accepted")
	}
}

func TestBuddyFreeUnallocated(t *testing.T) {
	b := NewBuddy(0, 16)
	if err := b.FreeBlock(3); err == nil {
		t.Fatal("free of never-allocated block accepted")
	}
}

func TestBuddyBadOrder(t *testing.T) {
	b := NewBuddy(0, 16)
	if _, err := b.AllocBlock(-1); err == nil {
		t.Fatal("negative order accepted")
	}
	if _, err := b.AllocBlock(MaxOrder + 1); err == nil {
		t.Fatal("oversized order accepted")
	}
}

func TestBuddyFreePFNs(t *testing.T) {
	b := NewBuddy(10, 8)
	p, _ := b.AllocBlock(1) // 2 pages
	free := b.FreePFNs()
	if len(free) != 6 {
		t.Fatalf("free pfns = %v", free)
	}
	for _, f := range free {
		if f == p || f == p+1 {
			t.Fatalf("allocated pfn %d in free list", f)
		}
	}
	for i := 1; i < len(free); i++ {
		if free[i-1] >= free[i] {
			t.Fatal("FreePFNs not sorted")
		}
	}
}

func TestBuddyRotateChangesAllocationOrder(t *testing.T) {
	alloc3 := func(salt int) []int64 {
		b := NewBuddy(0, 4096)
		b.Rotate(salt)
		var out []int64
		for i := 0; i < 3; i++ {
			p, err := b.AllocBlock(MaxOrder)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, p)
		}
		return out
	}
	a, c := alloc3(0), alloc3(1)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("rotation did not perturb allocation order")
	}
}

func TestBuddyInvariantConservation(t *testing.T) {
	// Property: random alloc/free sequences conserve page counts and
	// never hand out overlapping blocks.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuddy(0, 2048)
		type blk struct {
			pfn   int64
			order int
		}
		var live []blk
		owned := make(map[int64]bool)
		for step := 0; step < 200; step++ {
			if rng.Intn(2) == 0 || len(live) == 0 {
				order := rng.Intn(MaxOrder + 1)
				pfn, err := b.AllocBlock(order)
				if err != nil {
					continue // OOM is fine
				}
				for i := int64(0); i < int64(1)<<order; i++ {
					if owned[pfn+i] {
						return false // overlap!
					}
					owned[pfn+i] = true
				}
				live = append(live, blk{pfn, order})
			} else {
				i := rng.Intn(len(live))
				bl := live[i]
				live = append(live[:i], live[i+1:]...)
				if err := b.FreeBlock(bl.pfn); err != nil {
					return false
				}
				for j := int64(0); j < int64(1)<<bl.order; j++ {
					delete(owned, bl.pfn+j)
				}
			}
			if b.NrFree() != 2048-int64(len(owned)) {
				return false // accounting drift
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

package snapshot

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
)

// OffsetsWS is SnapBPF's working-set artifact: the grouped page
// offsets of the snapshot file, in the order prefetching must issue
// them (sorted by the earliest access time of any page in each group,
// §3.1). No page contents are stored — SnapBPF reads pages from the
// snapshot file itself.
type OffsetsWS struct {
	Groups []Group
}

// TotalPages returns the number of working-set pages covered.
func (ws *OffsetsWS) TotalPages() int64 {
	var n int64
	for _, g := range ws.Groups {
		n += g.NPages
	}
	return n
}

// Validate checks group sanity against a snapshot of nrPages pages.
func (ws *OffsetsWS) Validate(nrPages int64) error {
	for i, g := range ws.Groups {
		if g.NPages <= 0 || g.Start < 0 || g.End() > nrPages {
			return fmt.Errorf("snapshot: ws group %d out of range: [%d,%d) of %d", i, g.Start, g.End(), nrPages)
		}
	}
	return nil
}

// PagedWS is the REAP/Faast working-set artifact: individual page
// offsets in first-access order, with the page contents serialized
// alongside (the on-disk file is one page of data per entry).
type PagedWS struct {
	// Pages holds snapshot page indices in first-access order.
	Pages []int64
	// Tags holds the serialized contents (tag representation) of each
	// page, parallel to Pages.
	Tags []uint64
}

// TotalPages returns the number of entries.
func (ws *PagedWS) TotalPages() int64 { return int64(len(ws.Pages)) }

// Validate checks consistency.
func (ws *PagedWS) Validate(nrPages int64) error {
	if len(ws.Pages) != len(ws.Tags) {
		return fmt.Errorf("snapshot: paged ws: %d pages but %d tags", len(ws.Pages), len(ws.Tags))
	}
	for i, pg := range ws.Pages {
		if pg < 0 || pg >= nrPages {
			return fmt.Errorf("snapshot: paged ws entry %d out of range: %d", i, pg)
		}
	}
	return nil
}

// RegionWS is FaaSnap's working-set artifact: coalesced regions of the
// snapshot (working-set runs merged across small gaps), serialized
// with their contents. Gap pages inflate the file — the I/O
// amplification the paper measures with eBPF instrumentation (§2.1).
type RegionWS struct {
	Regions []Group
	// WSPages is the true (uninflated) working-set page count, kept
	// for inflation accounting.
	WSPages int64
}

// TotalPages returns the file size in pages, including gap inflation.
func (ws *RegionWS) TotalPages() int64 {
	var n int64
	for _, g := range ws.Regions {
		n += g.NPages
	}
	return n
}

// Inflation returns file pages per true working-set page (>= 1).
func (ws *RegionWS) Inflation() float64 {
	if ws.WSPages == 0 {
		return 1
	}
	return float64(ws.TotalPages()) / float64(ws.WSPages)
}

// Validate checks regions are sane, sorted and disjoint.
func (ws *RegionWS) Validate(nrPages int64) error {
	for i, g := range ws.Regions {
		if g.NPages <= 0 || g.Start < 0 || g.End() > nrPages {
			return fmt.Errorf("snapshot: region %d out of range: [%d,%d) of %d", i, g.Start, g.End(), nrPages)
		}
		if i > 0 && g.Start < ws.Regions[i-1].End() {
			return fmt.Errorf("snapshot: region %d overlaps predecessor", i)
		}
	}
	return nil
}

// GroupPages coalesces a set of page indices into maximal runs of
// consecutive pages, preserving nothing but membership. Used both by
// SnapBPF's offset grouping and FaaSnap's region building.
func GroupPages(pages []int64) []Group {
	if len(pages) == 0 {
		return nil
	}
	sorted := append([]int64(nil), pages...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var out []Group
	cur := Group{Start: sorted[0], NPages: 1}
	for _, pg := range sorted[1:] {
		switch {
		case pg == cur.End()-1: // duplicate
		case pg == cur.End():
			cur.NPages++
		default:
			out = append(out, cur)
			cur = Group{Start: pg, NPages: 1}
		}
	}
	return append(out, cur)
}

// CoalesceGroups merges groups separated by gaps of at most maxGap
// pages, absorbing the gap pages — FaaSnap's region coalescing. The
// input must be sorted by Start and disjoint (as GroupPages returns).
func CoalesceGroups(groups []Group, maxGap int64) []Group {
	if len(groups) == 0 {
		return nil
	}
	out := []Group{groups[0]}
	for _, g := range groups[1:] {
		last := &out[len(out)-1]
		if g.Start-last.End() <= maxGap {
			last.NPages = g.End() - last.Start
		} else {
			out = append(out, g)
		}
	}
	return out
}

// --- serialization ---

// WriteOffsetsWS serializes ws to w.
func WriteOffsetsWS(w io.Writer, ws *OffsetsWS) error {
	cw := &crcWriter{w: w}
	if err := writeHeader(cw, magicOffsets); err != nil {
		return err
	}
	if err := binary.Write(cw, binary.LittleEndian, int64(len(ws.Groups))); err != nil {
		return err
	}
	for _, g := range ws.Groups {
		if err := binary.Write(cw, binary.LittleEndian, []int64{g.Start, g.NPages}); err != nil {
			return err
		}
	}
	return binary.Write(w, binary.LittleEndian, cw.crc)
}

// ReadOffsetsWS parses an offsets working set.
func ReadOffsetsWS(r io.Reader) (*OffsetsWS, error) {
	cr := &crcReader{r: r}
	if err := readHeader(cr, magicOffsets, "offsets ws"); err != nil {
		return nil, err
	}
	var n int64
	if err := binary.Read(cr, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n < 0 || n > 1<<30 {
		return nil, fmt.Errorf("snapshot: implausible group count %d", n)
	}
	ws := &OffsetsWS{Groups: make([]Group, n)}
	for i := range ws.Groups {
		var v [2]int64
		if err := binary.Read(cr, binary.LittleEndian, v[:]); err != nil {
			return nil, fmt.Errorf("snapshot: truncated offsets ws: %w", err)
		}
		ws.Groups[i] = Group{Start: v[0], NPages: v[1]}
	}
	sum := cr.crc
	var want uint32
	if err := binary.Read(r, binary.LittleEndian, &want); err != nil {
		return nil, err
	}
	if sum != want {
		return nil, fmt.Errorf("snapshot: offsets ws checksum mismatch")
	}
	return ws, nil
}

// WritePagedWS serializes ws to w.
func WritePagedWS(w io.Writer, ws *PagedWS) error {
	if len(ws.Pages) != len(ws.Tags) {
		return fmt.Errorf("snapshot: paged ws pages/tags length mismatch")
	}
	cw := &crcWriter{w: w}
	if err := writeHeader(cw, magicPaged); err != nil {
		return err
	}
	if err := binary.Write(cw, binary.LittleEndian, int64(len(ws.Pages))); err != nil {
		return err
	}
	if err := binary.Write(cw, binary.LittleEndian, ws.Pages); err != nil {
		return err
	}
	if err := binary.Write(cw, binary.LittleEndian, ws.Tags); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, cw.crc)
}

// ReadPagedWS parses a paged working set.
func ReadPagedWS(r io.Reader) (*PagedWS, error) {
	cr := &crcReader{r: r}
	if err := readHeader(cr, magicPaged, "paged ws"); err != nil {
		return nil, err
	}
	var n int64
	if err := binary.Read(cr, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n < 0 || n > 1<<30 {
		return nil, fmt.Errorf("snapshot: implausible page count %d", n)
	}
	ws := &PagedWS{Pages: make([]int64, n), Tags: make([]uint64, n)}
	if err := binary.Read(cr, binary.LittleEndian, ws.Pages); err != nil {
		return nil, fmt.Errorf("snapshot: truncated paged ws: %w", err)
	}
	if err := binary.Read(cr, binary.LittleEndian, ws.Tags); err != nil {
		return nil, fmt.Errorf("snapshot: truncated paged ws tags: %w", err)
	}
	sum := cr.crc
	var want uint32
	if err := binary.Read(r, binary.LittleEndian, &want); err != nil {
		return nil, err
	}
	if sum != want {
		return nil, fmt.Errorf("snapshot: paged ws checksum mismatch")
	}
	return ws, nil
}

// WriteRegionWS serializes ws to w.
func WriteRegionWS(w io.Writer, ws *RegionWS) error {
	cw := &crcWriter{w: w}
	if err := writeHeader(cw, magicRegion); err != nil {
		return err
	}
	if err := binary.Write(cw, binary.LittleEndian, []int64{int64(len(ws.Regions)), ws.WSPages}); err != nil {
		return err
	}
	for _, g := range ws.Regions {
		if err := binary.Write(cw, binary.LittleEndian, []int64{g.Start, g.NPages}); err != nil {
			return err
		}
	}
	return binary.Write(w, binary.LittleEndian, cw.crc)
}

// ReadRegionWS parses a region working set.
func ReadRegionWS(r io.Reader) (*RegionWS, error) {
	cr := &crcReader{r: r}
	if err := readHeader(cr, magicRegion, "region ws"); err != nil {
		return nil, err
	}
	var hdr [2]int64
	if err := binary.Read(cr, binary.LittleEndian, hdr[:]); err != nil {
		return nil, err
	}
	n, wsPages := hdr[0], hdr[1]
	if n < 0 || n > 1<<30 {
		return nil, fmt.Errorf("snapshot: implausible region count %d", n)
	}
	ws := &RegionWS{Regions: make([]Group, n), WSPages: wsPages}
	for i := range ws.Regions {
		var v [2]int64
		if err := binary.Read(cr, binary.LittleEndian, v[:]); err != nil {
			return nil, fmt.Errorf("snapshot: truncated region ws: %w", err)
		}
		ws.Regions[i] = Group{Start: v[0], NPages: v[1]}
	}
	sum := cr.crc
	var want uint32
	if err := binary.Read(r, binary.LittleEndian, &want); err != nil {
		return nil, err
	}
	if sum != want {
		return nil, fmt.Errorf("snapshot: region ws checksum mismatch")
	}
	return ws, nil
}

// saveTo writes any of the WS types to a file.
func saveTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := write(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// SaveFile writes the working set to path.
func (ws *OffsetsWS) SaveFile(path string) error {
	return saveTo(path, func(w io.Writer) error { return WriteOffsetsWS(w, ws) })
}

// SaveFile writes the working set to path.
func (ws *PagedWS) SaveFile(path string) error {
	return saveTo(path, func(w io.Writer) error { return WritePagedWS(w, ws) })
}

// SaveFile writes the working set to path.
func (ws *RegionWS) SaveFile(path string) error {
	return saveTo(path, func(w io.Writer) error { return WriteRegionWS(w, ws) })
}

// LoadOffsetsWS reads an offsets working set from path.
func LoadOffsetsWS(path string) (*OffsetsWS, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadOffsetsWS(bufio.NewReader(f))
}

// LoadPagedWS reads a paged working set from path.
func LoadPagedWS(path string) (*PagedWS, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadPagedWS(bufio.NewReader(f))
}

// LoadRegionWS reads a region working set from path.
func LoadRegionWS(path string) (*RegionWS, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadRegionWS(bufio.NewReader(f))
}

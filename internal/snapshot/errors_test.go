package snapshot

import (
	"bytes"
	"errors"
	"testing"
)

// failWriter fails after n bytes, exercising write error paths.
type failWriter struct {
	n    int
	seen int
}

func (f *failWriter) Write(p []byte) (int, error) {
	if f.seen+len(p) > f.n {
		return 0, errors.New("disk full")
	}
	f.seen += len(p)
	return len(p), nil
}

func TestWriteErrorsPropagate(t *testing.T) {
	img := testImage()
	// Sweep failure points through the header and body.
	for _, limit := range []int{0, 4, 10, 30, 200} {
		if err := WriteMemoryImage(&failWriter{n: limit}, img); err == nil {
			t.Fatalf("write with %d-byte budget succeeded", limit)
		}
	}
	ows := &OffsetsWS{Groups: []Group{{Start: 1, NPages: 2}}}
	for _, limit := range []int{0, 4, 10} {
		if err := WriteOffsetsWS(&failWriter{n: limit}, ows); err == nil {
			t.Fatalf("offsets write with %d-byte budget succeeded", limit)
		}
	}
	pws := &PagedWS{Pages: []int64{1}, Tags: []uint64{2}}
	for _, limit := range []int{0, 4, 12} {
		if err := WritePagedWS(&failWriter{n: limit}, pws); err == nil {
			t.Fatalf("paged write with %d-byte budget succeeded", limit)
		}
	}
	rws := &RegionWS{Regions: []Group{{Start: 1, NPages: 2}}, WSPages: 2}
	for _, limit := range []int{0, 4, 12} {
		if err := WriteRegionWS(&failWriter{n: limit}, rws); err == nil {
			t.Fatalf("region write with %d-byte budget succeeded", limit)
		}
	}
}

func TestWriteInvalidImageRejected(t *testing.T) {
	bad := &MemoryImage{NrPages: 4, StatePages: 2, PageTags: make([]uint64, 3)}
	var buf bytes.Buffer
	if err := WriteMemoryImage(&buf, bad); err == nil {
		t.Fatal("invalid image serialized")
	}
}

func TestReadImplausibleHeaders(t *testing.T) {
	// Craft a header with an absurd page count: must be rejected
	// before allocating.
	var buf bytes.Buffer
	img := testImage()
	if err := WriteMemoryImage(&buf, img); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// NrPages is the first int64 after the 8-byte header.
	for i := 8; i < 16; i++ {
		b[i] = 0xff
	}
	if _, err := ReadMemoryImage(bytes.NewReader(b)); err == nil {
		t.Fatal("absurd page count accepted")
	}
}

func TestSaveFileToBadPath(t *testing.T) {
	img := testImage()
	if err := img.SaveFile("/nonexistent-dir-xyz/f.snapmem"); err == nil {
		t.Fatal("save to bad path succeeded")
	}
	ows := &OffsetsWS{}
	if err := ows.SaveFile("/nonexistent-dir-xyz/f.ws"); err == nil {
		t.Fatal("ws save to bad path succeeded")
	}
}

func TestLoadMissingFiles(t *testing.T) {
	if _, err := LoadMemoryImage("/no/such/file"); err == nil {
		t.Fatal("missing image loaded")
	}
	if _, err := LoadOffsetsWS("/no/such/file"); err == nil {
		t.Fatal("missing offsets ws loaded")
	}
	if _, err := LoadPagedWS("/no/such/file"); err == nil {
		t.Fatal("missing paged ws loaded")
	}
	if _, err := LoadRegionWS("/no/such/file"); err == nil {
		t.Fatal("missing region ws loaded")
	}
}

func TestOffsetsValidate(t *testing.T) {
	ws := &OffsetsWS{Groups: []Group{{Start: 100, NPages: 10}}}
	if err := ws.Validate(105); err == nil {
		t.Fatal("group beyond EOF accepted")
	}
	if err := ws.Validate(110); err != nil {
		t.Fatal(err)
	}
	neg := &OffsetsWS{Groups: []Group{{Start: -1, NPages: 1}}}
	if err := neg.Validate(10); err == nil {
		t.Fatal("negative start accepted")
	}
}

func TestPagedValidate(t *testing.T) {
	ws := &PagedWS{Pages: []int64{5}, Tags: []uint64{1, 2}}
	if err := ws.Validate(10); err == nil {
		t.Fatal("length mismatch accepted")
	}
	oob := &PagedWS{Pages: []int64{50}, Tags: []uint64{1}}
	if err := oob.Validate(10); err == nil {
		t.Fatal("out-of-range page accepted")
	}
}

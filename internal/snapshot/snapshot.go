// Package snapshot defines the on-disk artifacts of the system: the
// snapshot memory image and the three working-set formats the
// evaluated prefetchers use.
//
//   - MemoryImage (.snapmem): the VM sandbox's guest memory serialized
//     after function initialization and pre-warming. Page contents are
//     represented by 8-byte tags (0 = zero page) rather than 4KiB
//     payloads — see DESIGN.md §2 — plus the guest allocator metadata
//     Faast relies on.
//   - OffsetsWS (.snapbpf-ws): SnapBPF's working set — *only* grouped
//     page offsets, sorted by earliest access; no page data (§3.1).
//   - PagedWS (.reap-ws): REAP/Faast working sets — page offsets plus
//     the page contents serialized at record time (§2.1).
//   - RegionWS (.faasnap-ws): FaaSnap's coalesced working-set regions
//     including gap pages, with contents (§2.1).
//
// All formats carry a magic number, a version and a CRC32 so corrupt
// artifacts are rejected rather than silently mis-prefetched.
package snapshot

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Format magics.
const (
	magicMemory  = 0x534e504d // "SNPM"
	magicOffsets = 0x53424657 // "SBFW"
	magicPaged   = 0x52454157 // "REAW"
	magicRegion  = 0x46534e57 // "FSNW"

	formatVersion = 1
)

// Group is a contiguous page range [Start, Start+NPages) in the
// snapshot memory file.
type Group struct {
	Start  int64
	NPages int64
}

// End returns one past the last page of the group.
func (g Group) End() int64 { return g.Start + g.NPages }

// MemoryImage is a serialized guest memory snapshot.
type MemoryImage struct {
	// NrPages is the guest memory size in pages; the on-disk memory
	// file conceptually holds NrPages*4KiB of data.
	NrPages int64

	// StatePages is the initialized prefix holding kernel + function
	// state at snapshot time.
	StatePages int64

	// PageTags holds one content tag per page; tag 0 means the page
	// is all zeroes (what FaaSnap's zero-scan detects).
	PageTags []uint64

	// FreePFNs lists the frames that were in the guest buddy
	// allocator's free pool at snapshot time (Faast's metadata).
	FreePFNs []int64
}

// Validate checks internal consistency.
func (m *MemoryImage) Validate() error {
	if m.NrPages <= 0 {
		return fmt.Errorf("snapshot: non-positive page count %d", m.NrPages)
	}
	if m.StatePages < 0 || m.StatePages > m.NrPages {
		return fmt.Errorf("snapshot: state pages %d out of range (%d total)", m.StatePages, m.NrPages)
	}
	if int64(len(m.PageTags)) != m.NrPages {
		return fmt.Errorf("snapshot: %d tags for %d pages", len(m.PageTags), m.NrPages)
	}
	for _, pfn := range m.FreePFNs {
		if pfn < 0 || pfn >= m.NrPages {
			return fmt.Errorf("snapshot: free pfn %d out of range", pfn)
		}
	}
	return nil
}

// ZeroPages returns the number of zero-tagged pages.
func (m *MemoryImage) ZeroPages() int64 {
	var n int64
	for _, t := range m.PageTags {
		if t == 0 {
			n++
		}
	}
	return n
}

// crcWriter accumulates a CRC32 of everything written.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p)
	return cw.w.Write(p)
}

type crcReader struct {
	r   io.Reader
	crc uint32
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc = crc32.Update(cr.crc, crc32.IEEETable, p[:n])
	return n, err
}

func writeHeader(w io.Writer, magic uint32) error {
	if err := binary.Write(w, binary.LittleEndian, magic); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, uint32(formatVersion))
}

func readHeader(r io.Reader, wantMagic uint32, what string) error {
	var magic, version uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return fmt.Errorf("snapshot: reading %s header: %w", what, err)
	}
	if magic != wantMagic {
		return fmt.Errorf("snapshot: bad magic %#x for %s (want %#x)", magic, what, wantMagic)
	}
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return fmt.Errorf("snapshot: reading %s version: %w", what, err)
	}
	if version != formatVersion {
		return fmt.Errorf("snapshot: unsupported %s version %d", what, version)
	}
	return nil
}

// WriteMemoryImage serializes m to w.
func WriteMemoryImage(w io.Writer, m *MemoryImage) error {
	if err := m.Validate(); err != nil {
		return err
	}
	cw := &crcWriter{w: w}
	if err := writeHeader(cw, magicMemory); err != nil {
		return err
	}
	for _, v := range []int64{m.NrPages, m.StatePages, int64(len(m.FreePFNs))} {
		if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(cw, binary.LittleEndian, m.PageTags); err != nil {
		return err
	}
	if err := binary.Write(cw, binary.LittleEndian, m.FreePFNs); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, cw.crc)
}

// ReadMemoryImage parses a memory image from r, verifying the CRC.
func ReadMemoryImage(r io.Reader) (*MemoryImage, error) {
	cr := &crcReader{r: r}
	if err := readHeader(cr, magicMemory, "memory image"); err != nil {
		return nil, err
	}
	var nrPages, statePages, nrFree int64
	for _, p := range []*int64{&nrPages, &statePages, &nrFree} {
		if err := binary.Read(cr, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("snapshot: truncated memory image: %w", err)
		}
	}
	if nrPages <= 0 || nrPages > 1<<32 || nrFree < 0 || nrFree > nrPages {
		return nil, fmt.Errorf("snapshot: implausible memory image header (%d pages, %d free)", nrPages, nrFree)
	}
	m := &MemoryImage{
		NrPages:    nrPages,
		StatePages: statePages,
		PageTags:   make([]uint64, nrPages),
		FreePFNs:   make([]int64, nrFree),
	}
	if err := binary.Read(cr, binary.LittleEndian, m.PageTags); err != nil {
		return nil, fmt.Errorf("snapshot: truncated page tags: %w", err)
	}
	if err := binary.Read(cr, binary.LittleEndian, m.FreePFNs); err != nil {
		return nil, fmt.Errorf("snapshot: truncated free-pfn list: %w", err)
	}
	sum := cr.crc
	var want uint32
	if err := binary.Read(r, binary.LittleEndian, &want); err != nil {
		return nil, fmt.Errorf("snapshot: missing checksum: %w", err)
	}
	if sum != want {
		return nil, fmt.Errorf("snapshot: memory image checksum mismatch (%#x != %#x)", sum, want)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// SaveFile writes the image to path atomically-ish (via rename-free
// simple write; artifacts are build products, not databases).
func (m *MemoryImage) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := WriteMemoryImage(bw, m); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadMemoryImage reads an image from path.
func LoadMemoryImage(path string) (*MemoryImage, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadMemoryImage(bufio.NewReader(f))
}

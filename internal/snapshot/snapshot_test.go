package snapshot

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func testImage() *MemoryImage {
	m := &MemoryImage{
		NrPages:    1024,
		StatePages: 256,
		PageTags:   make([]uint64, 1024),
		FreePFNs:   []int64{300, 301, 500},
	}
	for i := range m.PageTags {
		if i%3 != 0 {
			m.PageTags[i] = uint64(i) * 7
		}
	}
	return m
}

func TestMemoryImageRoundTrip(t *testing.T) {
	m := testImage()
	var buf bytes.Buffer
	if err := WriteMemoryImage(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMemoryImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NrPages != m.NrPages || got.StatePages != m.StatePages {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range m.PageTags {
		if got.PageTags[i] != m.PageTags[i] {
			t.Fatalf("tag %d mismatch", i)
		}
	}
	if len(got.FreePFNs) != 3 || got.FreePFNs[2] != 500 {
		t.Fatalf("free pfns = %v", got.FreePFNs)
	}
}

func TestMemoryImageCorruptionDetected(t *testing.T) {
	m := testImage()
	var buf bytes.Buffer
	if err := WriteMemoryImage(&buf, m); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[100] ^= 0xff
	if _, err := ReadMemoryImage(bytes.NewReader(b)); err == nil {
		t.Fatal("corrupted image accepted")
	}
}

func TestMemoryImageBadMagic(t *testing.T) {
	if _, err := ReadMemoryImage(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Fatal("zero bytes accepted as image")
	}
}

func TestMemoryImageTruncated(t *testing.T) {
	m := testImage()
	var buf bytes.Buffer
	if err := WriteMemoryImage(&buf, m); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMemoryImage(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("truncated image accepted")
	}
}

func TestMemoryImageValidate(t *testing.T) {
	bad := []*MemoryImage{
		{NrPages: 0},
		{NrPages: 10, StatePages: 11, PageTags: make([]uint64, 10)},
		{NrPages: 10, StatePages: 5, PageTags: make([]uint64, 9)},
		{NrPages: 10, StatePages: 5, PageTags: make([]uint64, 10), FreePFNs: []int64{10}},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad image %d accepted", i)
		}
	}
}

func TestMemoryImageFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.snapmem")
	m := testImage()
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMemoryImage(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NrPages != m.NrPages {
		t.Fatal("file round trip mismatch")
	}
}

func TestZeroPages(t *testing.T) {
	m := &MemoryImage{NrPages: 4, StatePages: 2, PageTags: []uint64{0, 5, 0, 9}}
	if m.ZeroPages() != 2 {
		t.Fatalf("ZeroPages = %d", m.ZeroPages())
	}
}

func TestGroupPages(t *testing.T) {
	got := GroupPages([]int64{5, 1, 2, 3, 9, 10, 3})
	want := []Group{{1, 3}, {5, 1}, {9, 2}}
	if len(got) != len(want) {
		t.Fatalf("groups = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("groups = %v, want %v", got, want)
		}
	}
}

func TestGroupPagesEmpty(t *testing.T) {
	if got := GroupPages(nil); got != nil {
		t.Fatalf("GroupPages(nil) = %v", got)
	}
}

func TestGroupPagesProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		pages := make([]int64, len(raw))
		uniq := make(map[int64]bool)
		for i, v := range raw {
			pages[i] = int64(v)
			uniq[int64(v)] = true
		}
		groups := GroupPages(pages)
		// Coverage: total group pages == unique inputs; sorted; disjoint.
		var total int64
		for i, g := range groups {
			total += g.NPages
			if g.NPages <= 0 {
				return false
			}
			if i > 0 && g.Start <= groups[i-1].End() {
				return false // must be disjoint with a real gap
			}
			for pg := g.Start; pg < g.End(); pg++ {
				if !uniq[pg] {
					return false // group covers a non-member page
				}
			}
		}
		return total == int64(len(uniq))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCoalesceGroups(t *testing.T) {
	in := []Group{{0, 2}, {4, 2}, {10, 1}, {30, 5}}
	got := CoalesceGroups(in, 2)
	// gap 2..4 = 2 <= 2: merge {0,2}+{4,2} -> {0,6}; gap 6..10 = 4 > 2.
	want := []Group{{0, 6}, {10, 1}, {30, 5}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestCoalesceGroupsZeroGapIsIdentity(t *testing.T) {
	in := []Group{{0, 2}, {4, 2}}
	got := CoalesceGroups(in, 0)
	if len(got) != 2 {
		t.Fatalf("maxGap=0 merged disjoint groups: %v", got)
	}
}

func TestCoalesceInflation(t *testing.T) {
	groups := []Group{{0, 1}, {2, 1}, {4, 1}}
	merged := CoalesceGroups(groups, 1)
	ws := &RegionWS{Regions: merged, WSPages: 3}
	if ws.TotalPages() != 5 {
		t.Fatalf("TotalPages = %d, want 5 (2 gap pages absorbed)", ws.TotalPages())
	}
	if inf := ws.Inflation(); inf <= 1.0 {
		t.Fatalf("Inflation = %v, want > 1", inf)
	}
}

func TestOffsetsWSRoundTrip(t *testing.T) {
	ws := &OffsetsWS{Groups: []Group{{10, 5}, {100, 1}, {7, 2}}} // access order, not sorted
	var buf bytes.Buffer
	if err := WriteOffsetsWS(&buf, ws); err != nil {
		t.Fatal(err)
	}
	got, err := ReadOffsetsWS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Groups) != 3 || got.Groups[2] != (Group{7, 2}) {
		t.Fatalf("groups = %v", got.Groups)
	}
	if got.TotalPages() != 8 {
		t.Fatalf("TotalPages = %d", got.TotalPages())
	}
}

func TestOffsetsWSChecksum(t *testing.T) {
	ws := &OffsetsWS{Groups: []Group{{10, 5}}}
	var buf bytes.Buffer
	if err := WriteOffsetsWS(&buf, ws); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[12] ^= 1
	if _, err := ReadOffsetsWS(bytes.NewReader(b)); err == nil {
		t.Fatal("corrupted offsets ws accepted")
	}
}

func TestPagedWSRoundTrip(t *testing.T) {
	ws := &PagedWS{Pages: []int64{9, 2, 5}, Tags: []uint64{90, 20, 50}}
	var buf bytes.Buffer
	if err := WritePagedWS(&buf, ws); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPagedWS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalPages() != 3 || got.Pages[0] != 9 || got.Tags[2] != 50 {
		t.Fatalf("got %+v", got)
	}
}

func TestPagedWSLengthMismatchRejected(t *testing.T) {
	ws := &PagedWS{Pages: []int64{1}, Tags: nil}
	var buf bytes.Buffer
	if err := WritePagedWS(&buf, ws); err == nil {
		t.Fatal("mismatched paged ws accepted")
	}
}

func TestRegionWSRoundTrip(t *testing.T) {
	ws := &RegionWS{Regions: []Group{{0, 64}, {100, 32}}, WSPages: 80}
	var buf bytes.Buffer
	if err := WriteRegionWS(&buf, ws); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRegionWS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.WSPages != 80 || got.TotalPages() != 96 {
		t.Fatalf("got %+v", got)
	}
	if err := got.Validate(1024); err != nil {
		t.Fatal(err)
	}
}

func TestRegionWSValidateOverlap(t *testing.T) {
	ws := &RegionWS{Regions: []Group{{0, 10}, {5, 10}}}
	if err := ws.Validate(1024); err == nil {
		t.Fatal("overlapping regions accepted")
	}
}

func TestWSFileRoundTrips(t *testing.T) {
	dir := t.TempDir()
	ows := &OffsetsWS{Groups: []Group{{1, 2}}}
	if err := ows.SaveFile(filepath.Join(dir, "o.ws")); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadOffsetsWS(filepath.Join(dir, "o.ws")); err != nil {
		t.Fatal(err)
	}
	pws := &PagedWS{Pages: []int64{1}, Tags: []uint64{11}}
	if err := pws.SaveFile(filepath.Join(dir, "p.ws")); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPagedWS(filepath.Join(dir, "p.ws")); err != nil {
		t.Fatal(err)
	}
	rws := &RegionWS{Regions: []Group{{1, 2}}, WSPages: 2}
	if err := rws.SaveFile(filepath.Join(dir, "r.ws")); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRegionWS(filepath.Join(dir, "r.ws")); err != nil {
		t.Fatal(err)
	}
}

func TestFormatsRejectEachOther(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteOffsetsWS(&buf, &OffsetsWS{Groups: []Group{{1, 1}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPagedWS(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("paged reader accepted offsets format")
	}
	if _, err := ReadRegionWS(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("region reader accepted offsets format")
	}
}

func TestRoundTripPropertyOffsets(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50)
		ws := &OffsetsWS{}
		for i := 0; i < n; i++ {
			ws.Groups = append(ws.Groups, Group{Start: rng.Int63n(1 << 20), NPages: 1 + rng.Int63n(100)})
		}
		var buf bytes.Buffer
		if err := WriteOffsetsWS(&buf, ws); err != nil {
			return false
		}
		got, err := ReadOffsetsWS(&buf)
		if err != nil {
			return false
		}
		if len(got.Groups) != len(ws.Groups) {
			return false
		}
		for i := range ws.Groups {
			if got.Groups[i] != ws.Groups[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

package check

import (
	"sort"
	"time"

	"snapbpf/internal/sim"
	"snapbpf/internal/store"
	"snapbpf/internal/units"
)

// This file is the snapshot-distribution-tier half of the harness: the
// Checker implements store.Observer and maintains a mirror of the host
// chunk cache fed only by events. The invariants:
//
//   - no fetch after hit: a chunk the mirror says is resident must
//     never start a remote fetch (dedup and the in-flight table must
//     suppress it);
//   - single fetch in flight per chunk: concurrent misses coalesce;
//   - byte accounting: every fetch of a chunk moves exactly the
//     payload its manifests declare, and one chunk ID always has one
//     size (content addressing);
//   - hits and evictions only touch resident chunks;
//   - manifest hash verification: a fetched chunk whose content does
//     not re-hash to its manifest ID is a corrupt chunk or a stale
//     manifest;
//   - at Finish, the mirror, the cache's own statistics, the expected
//     manifest refcounts and the fault injector's report must all
//     agree.

// AttachStore registers the host chunk cache whose statistics and
// refcounts Finish reconciles against the event-fed mirror. The
// checker must already be installed as the cache's observer.
func (c *Checker) AttachStore(hc *store.HostCache) { c.storeHC = hc }

// StoreManifestRegistered implements store.Observer.
func (c *Checker) StoreManifestRegistered(fn string, m *store.Manifest) {
	c.counts.StoreManifests++
	for _, ch := range m.Chunks {
		bytes := int64(units.PagesToBytes(ch.NPages))
		if want, ok := c.storeBytes[ch.ID]; ok && want != bytes {
			c.violatef("store-chunk-bytes", "chunk %016x declared as %d bytes by %s but %d bytes earlier",
				ch.ID, bytes, fn, want)
		}
		c.storeBytes[ch.ID] = bytes
		c.storeRefs[ch.ID]++
	}
}

// StoreFetchBegin implements store.Observer.
func (c *Checker) StoreFetchBegin(p *sim.Proc, fn string, id uint64, bytes int64) {
	c.counts.StoreFetches++
	c.counts.StoreFetchBytes += bytes
	if _, resident := c.storeCached[id]; resident {
		c.violatef("store-fetch-after-hit", "%s fetches chunk %016x which is already resident", fn, id)
	}
	if want, ok := c.storeBytes[id]; ok && want != bytes {
		c.violatef("store-byte-accounting", "chunk %016x fetch moves %d bytes, manifest declares %d",
			id, bytes, want)
	}
	c.storeOpen[id]++
	if c.storeOpen[id] > 1 {
		c.violatef("store-duplicate-fetch", "chunk %016x has %d concurrent fetches; misses must coalesce",
			id, c.storeOpen[id])
	}
}

// StoreFetchEnd implements store.Observer.
func (c *Checker) StoreFetchEnd(p *sim.Proc, fn string, id uint64, bytes int64, retries, spikes int, took time.Duration) {
	if c.storeOpen[id] == 0 {
		c.violatef("store-fetch-unbalanced", "chunk %016x completed a fetch that never began", id)
	} else if c.storeOpen[id]--; c.storeOpen[id] == 0 {
		delete(c.storeOpen, id)
	}
	c.storeCached[id] = bytes
	c.storeRetries += int64(retries)
	c.storeSpikes += int64(spikes)
	if took <= 0 {
		c.violatef("store-fetch-latency", "chunk %016x fetched in %v; remote fetches take time", id, took)
	}
}

// StoreChunkVerified implements store.Observer.
func (c *Checker) StoreChunkVerified(fn string, id uint64, ok bool) {
	if !ok {
		c.violatef("store-chunk-digest", "%s chunk %016x content does not re-hash to its manifest ID (corrupt chunk or stale manifest)",
			fn, id)
	}
}

// StoreChunkHit implements store.Observer.
func (c *Checker) StoreChunkHit(p *sim.Proc, fn string, id uint64, dedup bool) {
	c.counts.StoreHits++
	if dedup {
		c.counts.StoreDedupHits++
	}
	if _, resident := c.storeCached[id]; !resident {
		c.violatef("store-hit-uncached", "%s hit chunk %016x which is not resident", fn, id)
	}
}

// StoreChunkEvicted implements store.Observer.
func (c *Checker) StoreChunkEvicted(id uint64) {
	c.counts.StoreEvictions++
	if _, resident := c.storeCached[id]; !resident {
		c.violatef("store-evict-uncached", "evicted chunk %016x which is not resident", id)
	}
	delete(c.storeCached, id)
}

// finishStore runs the end-of-run store reconciliation; called from
// Finish after fault conservation.
func (c *Checker) finishStore() {
	if len(c.storeOpen) != 0 {
		c.violatef("store-quiesce", "run ended with %d chunk fetches still open", len(c.storeOpen))
	}
	hc := c.storeHC
	if hc == nil {
		return
	}
	st := hc.Stats()
	eq := func(name string, mirror, cache int64) {
		if mirror != cache {
			c.violatef("store-count-accounting", "%s: mirror observed %d, cache recorded %d",
				name, mirror, cache)
		}
	}
	eq("fetches", c.counts.StoreFetches, st.Fetches)
	eq("fetch-bytes", c.counts.StoreFetchBytes, st.FetchBytes)
	eq("hits", c.counts.StoreHits, st.Hits)
	eq("dedup-hits", c.counts.StoreDedupHits, st.DedupHits)
	eq("evictions", c.counts.StoreEvictions, st.Evictions)
	eq("manifests", c.counts.StoreManifests, st.Manifests)
	eq("fetch-retries", c.storeRetries, st.Retries)
	eq("fetch-spikes", c.storeSpikes, st.Spikes)

	// Resident-set equality between the event-fed mirror and the
	// cache's own table.
	ids := hc.CachedChunks()
	if len(ids) != len(c.storeCached) {
		c.violatef("store-cache-accounting", "cache holds %d chunks, mirror holds %d",
			len(ids), len(c.storeCached))
	}
	for _, id := range ids {
		if _, ok := c.storeCached[id]; !ok {
			c.violatef("store-cache-accounting", "chunk %016x resident in cache but unseen by the mirror", id)
		}
	}

	// Chunk-refcount conservation: the cache's per-chunk manifest
	// references must match the counts derived from registration
	// events alone.
	keys := make([]uint64, 0, len(c.storeRefs))
	for id := range c.storeRefs {
		keys = append(keys, id)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, id := range keys {
		if got := hc.RefCount(id); got != c.storeRefs[id] {
			c.violatef("store-refcount-conservation", "chunk %016x: cache holds %d refs, manifests registered %d",
				id, got, c.storeRefs[id])
		}
	}
}

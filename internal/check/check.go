// Package check is the correctness harness for the simulated
// storage/restore stack: a single Checker implements the observer
// interfaces of every layer (sim, blockdev, pagecache, hostmm, kvm,
// prefetch) and evaluates invariants online as events arrive, instead
// of sampling state after the fact.
//
// The harness maintains shadow state fed exclusively by events:
//
//   - a per-address-space page table mirroring every PTE transition
//     (file mappings, anonymous installs, CoW breaks), including the
//     content tag of every anonymous page;
//   - derived rmap reference counts built from address-space events —
//     deliberately NOT from page-cache map/unmap calls — so a
//     corrupted Inode map count is caught by cross-checking, not
//     mirrored;
//   - block-device queue occupancy and split-part accounting;
//   - the fault injector's applied treatments, balanced against its
//     Report counters at the end of the run.
//
// On top of the shadow page tables sits the differential oracle: the
// repo models page contents as uint64 tags, so after an invocation the
// checker can fold the guest-visible content of every snapshot state
// page into a digest. Every scheme — SnapBPF, REAP, Faast, FaaSnap,
// and the Linux baselines — must produce the same digest as a pure
// demand-paging run under the same trace, healthy or faulted; see the
// differential tests in internal/experiments.
package check

import (
	"fmt"

	"snapbpf/internal/faults"
	"snapbpf/internal/hostmm"
	"snapbpf/internal/kvm"
	"snapbpf/internal/pagecache"
	"snapbpf/internal/sim"
	"snapbpf/internal/store"
	"snapbpf/internal/units"
	"snapbpf/internal/vmm"
)

// maxViolations caps recorded violations so a systemically broken run
// does not accumulate unbounded diagnostics; further ones are counted.
const maxViolations = 64

// Violation is one observed invariant breach.
type Violation struct {
	// At is the virtual time the violation was detected.
	At sim.Time
	// Invariant is a stable identifier ("rmap-dedup-accounting", ...).
	Invariant string
	// Detail is the human-readable diagnosis.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("[%v] %s: %s", v.At, v.Invariant, v.Detail)
}

// pageKey identifies one page-cache page.
type pageKey struct {
	ino *pagecache.Inode
	idx int64
}

// anonPage is the shadow of one anonymous PTE: the content tag the
// page carries, and whether the tag is known (untagged UFFDIO_COPY
// installs content the harness cannot model).
type anonPage struct {
	tag   uint64
	known bool
}

// filePage is the shadow of one file-backed PTE.
type filePage struct {
	ino     *pagecache.Inode
	fileIdx int64
}

// spaceShadow mirrors one address space's page table.
type spaceShadow struct {
	released bool
	anon     map[int64]anonPage
	file     map[int64]filePage
}

// accessCtx is one in-progress guest access (AccessBegin..AccessEnd),
// used to attribute host-level events (CoW breaks) to the guest access
// that caused them.
type accessCtx struct {
	vm    *kvm.VM
	pfn   int64
	write bool
}

// Checker implements every layer's Observer interface and accumulates
// violations. It must be confined to one simulated host; attach it
// with New before the first simulated event.
type Checker struct {
	h   *vmm.Host
	inj *faults.Injector

	// sim shadow.
	lastNow sim.Time

	// blockdev shadow.
	qdepth      int
	inFlight    int
	outstanding int // split parts submitted but not yet completed
	// Applied fault treatments, balanced against inj.Report in Finish.
	erroredServices int64
	spikedServices  int64
	stuckServices   int64
	shortServices   int64
	failedIOs       int64 // submissions whose final completion errored

	// pagecache shadow: presence of every cached page.
	cached map[pageKey]bool

	// fileTags holds the content-tag table of every file whose
	// contents the harness knows: the snapshot memory file plus every
	// working-set artifact declared via ArtifactRegistered.
	fileTags map[*pagecache.Inode][]uint64

	// fileRefs is the derived rmap: reference counts built from
	// FilePageMapped/FilePageUnmapped events only.
	fileRefs map[pageKey]int

	// spaces shadows every address space's page table.
	spaces map[*hostmm.AddressSpace]*spaceShadow

	// access tracks in-progress guest accesses per simulated task.
	access map[*sim.Proc][]accessCtx

	// vms lists every restored sandbox in creation order, including
	// scheme-internal record VMs.
	vms []*vmm.MicroVM

	// prefetch-level counters.
	recordsDone  int
	preparesDone int
	degraded     int64

	// store shadow (see store.go): the mirror of the host chunk cache
	// plus expected refcounts and chunk sizes from registered
	// manifests.
	storeCached  map[uint64]int64
	storeOpen    map[uint64]int
	storeBytes   map[uint64]int64
	storeRefs    map[uint64]int64
	storeHC      *store.HostCache
	storeRetries int64
	storeSpikes  int64

	// event tally, exposed via Counts for reconciliation against the
	// observability layer's metrics (internal/obs).
	counts Counts

	violations []Violation
	dropped    int
}

// Counts is the checker's independent tally of stack events. The
// observability layer counts the same events through its own metric
// registry; the conservation tests in internal/experiments reconcile
// the two tallies (and the fault injector's report) against each
// other, so a lost or double-counted event on either side fails.
type Counts struct {
	IOsSubmitted   int64 // blockdev submissions (sync + readahead)
	IOsCompleted   int64 // blockdev completions
	FailedIOs      int64 // completions whose final attempt errored
	PageInserts    int64 // page-cache inserts (demand + readahead)
	ReadaheadCalls int64 // ReadaheadAsync invocations
	ReadaheadPages int64 // pages inserted by readahead calls
	FileMaps       int64 // FilePageMapped events
	FileUnmaps     int64 // FilePageUnmapped events
	Faults         int64 // FaultResolved events, all kinds
	CoWBreaks      int64 // FaultResolved events with kind FaultCoW
	GuestAccesses  int64 // AccessBegin events
	Records        int64 // scheme record phases completed
	Prepares       int64 // PrepareVM completions
	Degraded       int64 // demand-paging fallbacks
	PrefetchGroups int64 // prefetch groups issued by user-space schemes
	PrefetchPages  int64 // pages covered by those groups
	OffsetLoads    int64 // SnapBPF offset-schedule loads

	StoreManifests  int64 // manifests bound to the host chunk cache
	StoreFetches    int64 // remote chunk fetches (== chunk misses)
	StoreFetchBytes int64 // payload bytes of those fetches
	StoreHits       int64 // resident-chunk lookups
	StoreDedupHits  int64 // hits on chunks fetched by another function
	StoreEvictions  int64 // chunks removed by LRU or cold-tier drop
}

// Counts returns the checker's event tally so far.
func (c *Checker) Counts() Counts {
	n := c.counts
	n.Records = int64(c.recordsDone)
	n.Prepares = int64(c.preparesDone)
	n.Degraded = c.degraded
	n.FailedIOs = c.failedIOs
	return n
}

// New attaches a fresh checker to every layer of the host: the
// engine, block device, page cache and memory manager immediately,
// and each sandbox's KVM instance as it is restored (via
// Host.OnRestore, chaining any existing hook). Call before the first
// simulated event of the run.
func New(h *vmm.Host, inj *faults.Injector) *Checker {
	c := &Checker{
		h:        h,
		inj:      inj,
		qdepth:   h.Dev.Params().QueueDepth,
		cached:   make(map[pageKey]bool),
		fileTags: make(map[*pagecache.Inode][]uint64),
		fileRefs: make(map[pageKey]int),
		spaces:   make(map[*hostmm.AddressSpace]*spaceShadow),
		access:   make(map[*sim.Proc][]accessCtx),

		storeCached: make(map[uint64]int64),
		storeOpen:   make(map[uint64]int),
		storeBytes:  make(map[uint64]int64),
		storeRefs:   make(map[uint64]int64),
	}
	c.lastNow = h.Eng.Now()
	h.Eng.SetObserver(c)
	h.Dev.SetObserver(c)
	h.Cache.SetObserver(c)
	h.MM.SetObserver(c)
	prev := h.OnRestore
	h.OnRestore = func(vm *vmm.MicroVM) {
		if prev != nil {
			prev(vm)
		}
		c.vms = append(c.vms, vm)
		vm.KVM.SetObserver(c)
	}
	return c
}

// RegisterFileTags declares the content-tag table of a file: tags[i]
// is the content of file page i. The experiment runner registers the
// snapshot memory file; schemes register their working-set artifacts
// through the prefetch.Observer ArtifactRegistered event.
func (c *Checker) RegisterFileTags(ino *pagecache.Inode, tags []uint64) {
	if int64(len(tags)) != ino.NrPages() {
		c.violatef("artifact-size", "%s: %d tags declared for %d file pages",
			ino.Name(), len(tags), ino.NrPages())
	}
	c.fileTags[ino] = append([]uint64(nil), tags...)
}

// Violations returns the recorded breaches (capped at maxViolations).
func (c *Checker) Violations() []Violation { return c.violations }

func (c *Checker) violatef(invariant, format string, args ...any) {
	if len(c.violations) >= maxViolations {
		c.dropped++
		return
	}
	c.violations = append(c.violations, Violation{
		At:        c.h.Eng.Now(),
		Invariant: invariant,
		Detail:    fmt.Sprintf(format, args...),
	})
}

func (c *Checker) shadow(as *hostmm.AddressSpace) *spaceShadow {
	s, ok := c.spaces[as]
	if !ok {
		// Address space created before the checker attached — only
		// possible if New was called mid-run, which is a harness bug.
		c.violatef("space-untracked", "%s observed before SpaceCreated", as.Name())
		s = &spaceShadow{anon: make(map[int64]anonPage), file: make(map[int64]filePage)}
		c.spaces[as] = s
	}
	return s
}

// ---------------------------------------------------------------------------
// sim.Observer: event causality and clock monotonicity.

// EventScheduled implements sim.Observer.
func (c *Checker) EventScheduled(at sim.Time) {
	if at < c.lastNow {
		c.violatef("sim-causality", "event scheduled at %v before now %v", at, c.lastNow)
	}
}

// ClockAdvanced implements sim.Observer.
func (c *Checker) ClockAdvanced(now sim.Time) {
	if now < c.lastNow {
		c.violatef("sim-monotonic-clock", "clock moved backwards: %v -> %v", c.lastNow, now)
	}
	c.lastNow = now
}

// ---------------------------------------------------------------------------
// blockdev.Observer: NCQ slot and split-part conservation, applied
// fault treatments.

// IOSubmitted implements blockdev.Observer.
func (c *Checker) IOSubmitted(id, off, length int64, sync bool, attempt, parts int) {
	c.counts.IOsSubmitted++
	if id <= 0 {
		c.violatef("io-id", "submission [%d,%d) with non-positive id %d", off, off+length, id)
	}
	if parts <= 0 || length <= 0 {
		c.violatef("io-submit", "submission [%d,%d) with %d parts", off, off+length, parts)
		return
	}
	max := c.h.Dev.Params().MaxRequestBytes
	if want := int((length + max - 1) / max); parts != want {
		c.violatef("io-split", "submission of %d bytes split into %d parts, want %d (max %d)",
			length, parts, want, max)
	}
	c.outstanding += parts
}

// RequestServiced implements blockdev.Observer.
func (c *Checker) RequestServiced(off, length int64, attempt, inFlight int, out faults.ReadOutcome) {
	c.inFlight++
	if inFlight != c.inFlight {
		c.violatef("ncq-slot-conservation", "device reports %d in flight, shadow %d", inFlight, c.inFlight)
		c.inFlight = inFlight
	}
	if c.inFlight > c.qdepth {
		c.violatef("ncq-depth", "%d requests in flight exceeds queue depth %d", c.inFlight, c.qdepth)
	}
	if out.Err {
		c.erroredServices++
		if attempt >= faults.MaxErrorAttempts {
			c.violatef("fault-transience", "error injected at attempt %d (>= %d)",
				attempt, faults.MaxErrorAttempts)
		}
	}
	if out.ExtraMediaTime > 0 {
		c.spikedServices++
	}
	if out.HoldSlot > 0 {
		c.stuckServices++
	}
	if out.Short {
		c.shortServices++
		c.outstanding++ // the requeued tail is an extra part
		if length < int64(units.PageSize) {
			c.violatef("short-read-applicability", "short read left a %d-byte head", length)
		}
	}
}

// RequestCompleted implements blockdev.Observer.
func (c *Checker) RequestCompleted(inFlight int) {
	c.inFlight--
	c.outstanding--
	if inFlight != c.inFlight || c.inFlight < 0 {
		c.violatef("ncq-slot-conservation", "completion: device reports %d in flight, shadow %d",
			inFlight, c.inFlight)
		c.inFlight = inFlight
	}
	if c.outstanding < 0 {
		c.violatef("io-part-conservation", "more completions than submitted parts")
		c.outstanding = 0
	}
}

// IOCompleted implements blockdev.Observer.
func (c *Checker) IOCompleted(id int64, failed bool) {
	c.counts.IOsCompleted++
	if failed {
		c.failedIOs++
	}
}

// ---------------------------------------------------------------------------
// pagecache.Observer: presence/count accounting and eviction safety.

func (c *Checker) checkCachedCount(context string) {
	if got, want := c.h.Cache.NrCachedPages(), int64(len(c.cached)); got != want {
		c.violatef("cache-count-accounting", "%s: cache reports %d pages, shadow %d",
			context, got, want)
	}
}

// PageInserted implements pagecache.Observer.
func (c *Checker) PageInserted(ino *pagecache.Inode, idx int64, readahead bool) {
	c.counts.PageInserts++
	k := pageKey{ino, idx}
	if c.cached[k] {
		c.violatef("cache-double-insert", "%s page %d inserted while present", ino.Name(), idx)
	}
	c.cached[k] = true
	c.checkCachedCount("insert")
}

// PageEvicted implements pagecache.Observer.
func (c *Checker) PageEvicted(ino *pagecache.Inode, idx int64) {
	c.pageGone(ino, idx, "evict")
	if refs := c.fileRefs[pageKey{ino, idx}]; refs != 0 {
		c.violatef("evict-mapped-page", "%s page %d reclaimed with %d derived rmap refs",
			ino.Name(), idx, refs)
	}
}

// PageRemoved implements pagecache.Observer.
func (c *Checker) PageRemoved(ino *pagecache.Inode, idx int64) {
	c.pageGone(ino, idx, "remove")
	if refs := c.fileRefs[pageKey{ino, idx}]; refs != 0 {
		c.violatef("remove-mapped-page", "%s page %d dropped with %d derived rmap refs",
			ino.Name(), idx, refs)
	}
}

// ReadaheadIssued implements pagecache.Observer.
func (c *Checker) ReadaheadIssued(ino *pagecache.Inode, start, n, inserted int64) {
	c.counts.ReadaheadCalls++
	c.counts.ReadaheadPages += inserted
	if start < 0 || n < 0 {
		c.violatef("readahead-window", "%s readahead window [%d,%d) malformed", ino.Name(), start, start+n)
	}
	if inserted < 0 || inserted > n {
		c.violatef("readahead-inserts", "%s readahead of %d pages reports %d inserts",
			ino.Name(), n, inserted)
	}
}

func (c *Checker) pageGone(ino *pagecache.Inode, idx int64, context string) {
	k := pageKey{ino, idx}
	if !c.cached[k] {
		c.violatef("cache-"+context+"-absent", "%s page %d %sed while absent",
			ino.Name(), idx, context)
	}
	delete(c.cached, k)
	c.checkCachedCount(context)
}

// ---------------------------------------------------------------------------
// hostmm.Observer: PTE shadowing, derived rmap, anonymous accounting,
// CoW attribution.

// SpaceCreated implements hostmm.Observer.
func (c *Checker) SpaceCreated(as *hostmm.AddressSpace) {
	if _, ok := c.spaces[as]; ok {
		c.violatef("space-recreated", "%s created twice", as.Name())
	}
	c.spaces[as] = &spaceShadow{anon: make(map[int64]anonPage), file: make(map[int64]filePage)}
}

// SpaceReleased implements hostmm.Observer.
func (c *Checker) SpaceReleased(as *hostmm.AddressSpace) {
	s := c.shadow(as)
	// Release fires per-page events (FilePageUnmapped/AnonDropped)
	// before SpaceReleased, so the shadow must already be empty.
	if n := len(s.anon) + len(s.file); n != 0 {
		c.violatef("space-release-leak", "%s released with %d shadow PTEs live", as.Name(), n)
	}
	if got := as.AnonPages(); got != 0 {
		c.violatef("anon-accounting", "%s released with AnonPages=%d", as.Name(), got)
	}
	s.released = true
}

// FilePageMapped implements hostmm.Observer.
func (c *Checker) FilePageMapped(as *hostmm.AddressSpace, page int64, ino *pagecache.Inode, fileIdx int64) {
	c.counts.FileMaps++
	s := c.shadow(as)
	if _, ok := s.file[page]; ok {
		c.violatef("pte-double-map", "%s page %d file-mapped twice", as.Name(), page)
	}
	if _, ok := s.anon[page]; ok {
		c.violatef("pte-state", "%s page %d file-mapped over an anonymous page", as.Name(), page)
	}
	k := pageKey{ino, fileIdx}
	if !c.cached[k] {
		c.violatef("map-uncached-page", "%s page %d maps %s page %d which is not cached",
			as.Name(), page, ino.Name(), fileIdx)
	}
	s.file[page] = filePage{ino, fileIdx}
	c.fileRefs[k]++
}

// FilePageUnmapped implements hostmm.Observer.
func (c *Checker) FilePageUnmapped(as *hostmm.AddressSpace, page int64, ino *pagecache.Inode, fileIdx int64) {
	c.counts.FileUnmaps++
	s := c.shadow(as)
	fp, ok := s.file[page]
	if !ok || fp.ino != ino || fp.fileIdx != fileIdx {
		c.violatef("pte-unmap-mismatch", "%s page %d unmapped from %s page %d but shadow has %+v",
			as.Name(), page, ino.Name(), fileIdx, fp)
		return
	}
	delete(s.file, page)
	k := pageKey{ino, fileIdx}
	if c.fileRefs[k] <= 0 {
		c.violatef("rmap-underflow", "%s page %d unmapped below zero refs", ino.Name(), fileIdx)
		return
	}
	c.fileRefs[k]--
	if c.fileRefs[k] == 0 {
		delete(c.fileRefs, k)
	}
}

// AnonInstalled implements hostmm.Observer.
func (c *Checker) AnonInstalled(as *hostmm.AddressSpace, page int64, content uint64, known bool) {
	s := c.shadow(as)
	if _, ok := s.anon[page]; ok {
		c.violatef("anon-double-install", "%s page %d installed while already anonymous", as.Name(), page)
	}
	if _, ok := s.file[page]; ok {
		c.violatef("pte-state", "%s page %d anonymous install over a live file mapping", as.Name(), page)
	}
	s.anon[page] = anonPage{tag: content, known: known}
}

// AnonDropped implements hostmm.Observer.
func (c *Checker) AnonDropped(as *hostmm.AddressSpace, page int64) {
	s := c.shadow(as)
	if _, ok := s.anon[page]; !ok {
		c.violatef("anon-drop-absent", "%s page %d dropped while not anonymous", as.Name(), page)
		return
	}
	delete(s.anon, page)
}

// FaultResolved implements hostmm.Observer.
func (c *Checker) FaultResolved(p *sim.Proc, as *hostmm.AddressSpace, page int64, write bool, kind hostmm.FaultKind) {
	c.counts.Faults++
	if kind == hostmm.FaultCoW {
		c.counts.CoWBreaks++
	}
	s := c.shadow(as)
	_, isAnon := s.anon[page]
	_, isFile := s.file[page]
	switch kind {
	case hostmm.FaultMinor:
		if !isAnon && !isFile {
			c.violatef("minor-fault-unmapped", "%s page %d minor fault on unmapped page", as.Name(), page)
		}
		if write && !isAnon {
			c.violatef("minor-write-shared", "%s page %d write minor fault on a shared file page",
				as.Name(), page)
		}
	case hostmm.FaultFile:
		// FilePageMapped fired before this event.
		if !isFile {
			c.violatef("file-fault-unmapped", "%s page %d file fault left no file PTE", as.Name(), page)
		}
	case hostmm.FaultZeroFill:
		// installAnon on an anonymous VMA bypasses AnonInstalled;
		// mirror it here. Fresh anonymous memory is zero.
		if isFile {
			c.violatef("pte-state", "%s page %d zero-fill over a live file mapping", as.Name(), page)
		}
		s.anon[page] = anonPage{tag: 0, known: true}
	case hostmm.FaultCoW:
		// The broken file PTE (if any) already fired FilePageUnmapped.
		// The copied content is the backing file page's.
		if isFile {
			c.violatef("cow-file-pte-live", "%s page %d CoW left the file PTE mapped", as.Name(), page)
		}
		s.anon[page] = c.cowContent(as, page)
		c.checkCoWAttribution(p, as, page)
	case hostmm.FaultUffd:
		// The handler must have installed the page (hostmm panics
		// otherwise); the install fired AnonInstalled.
		if _, ok := s.anon[page]; !ok {
			c.violatef("uffd-left-unmapped", "%s page %d uffd fault left no anonymous PTE",
				as.Name(), page)
		}
	}
	if got, want := as.AnonPages(), int64(len(s.anon)); got != want {
		c.violatef("anon-accounting", "%s: AnonPages=%d but shadow has %d anonymous pages",
			as.Name(), got, want)
	}
}

// cowContent resolves the content a CoW break copies: the backing file
// page of the VMA covering the faulted page.
func (c *Checker) cowContent(as *hostmm.AddressSpace, page int64) anonPage {
	v := as.FindVMA(page)
	if v == nil || v.Inode == nil {
		c.violatef("cow-without-file-vma", "%s page %d broke CoW outside a file mapping",
			as.Name(), page)
		return anonPage{}
	}
	fi := v.FilePage(page)
	tags := c.fileTags[v.Inode]
	if fi < 0 || fi >= int64(len(tags)) {
		return anonPage{} // unknown file contents
	}
	return anonPage{tag: tags[fi], known: true}
}

// checkCoWAttribution enforces that CoW breaks are only ever triggered
// by guest writes: a CoW during a read access is legal only on a VM
// running the unpatched KVM (ForceWriteMapping), which is exactly the
// §4 pathology the paper's patch removes.
func (c *Checker) checkCoWAttribution(p *sim.Proc, as *hostmm.AddressSpace, page int64) {
	st := c.access[p]
	if len(st) == 0 {
		c.violatef("cow-outside-guest-access", "%s page %d broke CoW outside any guest access",
			as.Name(), page)
		return
	}
	ctx := st[len(st)-1]
	if !ctx.write && !ctx.vm.ForceWriteMapping {
		c.violatef("cow-under-read", "%s page %d broke CoW under a guest read with patched KVM",
			as.Name(), page)
	}
}

// ---------------------------------------------------------------------------
// kvm.Observer: access bracketing, PV-mirror consistency, and the
// guest-write content evolution that drives the differential oracle.

// AccessBegin implements kvm.Observer.
func (c *Checker) AccessBegin(p *sim.Proc, v *kvm.VM, pfn int64, write bool) {
	c.counts.GuestAccesses++
	c.access[p] = append(c.access[p], accessCtx{vm: v, pfn: pfn, write: write})
}

// AccessEnd implements kvm.Observer.
func (c *Checker) AccessEnd(p *sim.Proc, v *kvm.VM, pfn int64, write, mirror bool) {
	st := c.access[p]
	if len(st) == 0 {
		c.violatef("access-unbalanced", "AccessEnd pfn %d without AccessBegin", pfn)
		return
	}
	ctx := st[len(st)-1]
	if len(st) == 1 {
		delete(c.access, p)
	} else {
		c.access[p] = st[:len(st)-1]
	}
	if ctx.vm != v || ctx.pfn != pfn || ctx.write != write {
		c.violatef("access-mismatch", "AccessEnd (pfn %d write %v) does not match AccessBegin (pfn %d write %v)",
			pfn, write, ctx.pfn, ctx.write)
	}
	host := v.HostBase + pfn
	s := c.shadow(v.AS)
	if mirror {
		// PV-mirror consistency: the mirrored gPFN and its original
		// must resolve to the same host page, which the mirror fault
		// backed with anonymous memory.
		if _, ok := s.anon[host]; !ok {
			c.violatef("pv-mirror-anon", "mirror access to pfn %d left host page %d non-anonymous",
				pfn, host)
		}
	}
	if write {
		ap, ok := s.anon[host]
		if !ok {
			// A guest write must always land on private memory; a write
			// into a shared page-cache page corrupts every other sandbox.
			c.violatef("write-on-shared-page", "guest write to pfn %d landed on non-anonymous host page %d",
				pfn, host)
			return
		}
		s.anon[host] = anonPage{tag: evolveTag(ap.tag, pfn), known: ap.known}
	}
}

// evolveTag is the deterministic content transition of one guest write:
// it depends only on the prior content and the written frame, so any
// two runs replaying the same trace over the same initial contents
// converge to the same tags regardless of scheme, timing or fault plan.
func evolveTag(tag uint64, pfn int64) uint64 {
	x := tag ^ (uint64(pfn)*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	if x == 0 {
		x = 1 // keep zero reserved for "never written / zero page"
	}
	return x
}

// ---------------------------------------------------------------------------
// prefetch.Observer: scheme-level lifecycle and degradation counting.

// RecordDone implements prefetch.Observer.
func (c *Checker) RecordDone(scheme string, wsPages int64) {
	if wsPages < 0 {
		c.violatef("record-ws", "%s recorded negative working set %d", scheme, wsPages)
	}
	c.recordsDone++
}

// ArtifactRegistered implements prefetch.Observer.
func (c *Checker) ArtifactRegistered(ino *pagecache.Inode, tags []uint64) {
	c.RegisterFileTags(ino, tags)
}

// PrepareDone implements prefetch.Observer.
func (c *Checker) PrepareDone(scheme string, vm *vmm.MicroVM) { c.preparesDone++ }

// Degraded implements prefetch.Observer.
func (c *Checker) Degraded(scheme string, vm *vmm.MicroVM, reason string) { c.degraded++ }

// PrefetchIssued implements prefetch.Observer.
func (c *Checker) PrefetchIssued(p *sim.Proc, scheme string, vm *vmm.MicroVM, start, npages int64) {
	c.counts.PrefetchGroups++
	c.counts.PrefetchPages += npages
	if npages <= 0 || start < 0 {
		c.violatef("prefetch-group", "%s issued group [%d,%d) for %s", scheme, start, start+npages, vm.Name)
	}
}

// OffsetsLoaded implements prefetch.Observer.
func (c *Checker) OffsetsLoaded(p *sim.Proc, scheme string, vm *vmm.MicroVM, groups int, took sim.Duration) {
	c.counts.OffsetLoads++
	if groups < 0 || took < 0 {
		c.violatef("offset-load", "%s loaded %d groups in %v for %s", scheme, groups, took, vm.Name)
	}
}

// ---------------------------------------------------------------------------
// Digest: the differential oracle.

// VMDone runs the per-sandbox end-of-invocation checks and returns the
// digest of the sandbox's guest-visible memory. Call after Invoke and
// before Shutdown (the shadow page table dies with the address space).
//
// The digest folds, in frame order, the content tag of every snapshot
// *state* page as the guest would read it: anonymous pages contribute
// their tracked tag, file-mapped pages the backing file content, and
// untouched pages the snapshot image content they would demand-fault
// to. Free-pool frames are excluded — their content legitimately
// differs across schemes (stale garbage, zero-on-free, PV anonymous
// backing) precisely because no correct guest reads them before
// writing.
func (c *Checker) VMDone(vm *vmm.MicroVM) uint64 {
	s := c.shadow(vm.AS)
	if got, want := vm.AS.AnonPages(), int64(len(s.anon)); got != want {
		c.violatef("anon-accounting", "%s: AnonPages=%d but shadow has %d anonymous pages",
			vm.Name, got, want)
	}
	var total int64
	for _, sh := range c.spaces {
		if !sh.released {
			total += int64(len(sh.anon))
		}
	}
	if got := c.h.MM.TotalAnonPages(); got != total {
		c.violatef("anon-total-accounting", "MM reports %d anonymous pages, shadows hold %d",
			got, total)
	}

	const fnvOffset, fnvPrime = 0xcbf29ce484222325, 0x100000001b3
	digest := uint64(fnvOffset)
	fold := func(x uint64) {
		for i := 0; i < 8; i++ {
			digest ^= (x >> (8 * i)) & 0xff
			digest *= fnvPrime
		}
	}
	for pfn := int64(0); pfn < vm.Image.StatePages; pfn++ {
		tag, known := c.resolveContent(vm, s, pfn)
		if !known {
			c.violatef("digest-unknown-content", "%s: state pfn %d has untracked content", vm.Name, pfn)
		}
		fold(uint64(pfn))
		fold(tag)
	}
	return digest
}

// resolveContent returns the content tag guest frame pfn reads as.
func (c *Checker) resolveContent(vm *vmm.MicroVM, s *spaceShadow, pfn int64) (uint64, bool) {
	host := vm.KVM.HostBase + pfn
	if ap, ok := s.anon[host]; ok {
		return ap.tag, ap.known
	}
	if fp, ok := s.file[host]; ok {
		tags := c.fileTags[fp.ino]
		if fp.fileIdx >= 0 && fp.fileIdx < int64(len(tags)) {
			return tags[fp.fileIdx], true
		}
		return 0, false
	}
	// Unmapped: a demand fault — through any correct scheme's handler —
	// would yield the snapshot content.
	return vm.Image.PageTags[pfn], true
}

// ---------------------------------------------------------------------------
// Finish: end-of-run conservation checks.

// Finish runs the whole-run invariants — storage quiescence, fault
// conservation against the injector's report, and the rmap dedup
// cross-check — and returns an error summarizing every recorded
// violation, or nil if the run was clean. Call after all sandboxes
// have shut down.
func (c *Checker) Finish() error {
	if c.inFlight != 0 || c.outstanding != 0 {
		c.violatef("storage-quiesce", "run ended with %d requests in flight, %d parts outstanding",
			c.inFlight, c.outstanding)
	}
	for p, st := range c.access {
		_ = p
		if len(st) != 0 {
			c.violatef("access-unbalanced", "run ended with %d guest accesses still open", len(st))
		}
	}

	// Fault conservation: every drawn treatment was applied exactly
	// once, every failure was absorbed exactly once.
	rep := c.inj.Report()
	conserve := func(name string, reported, observed int64) {
		if reported != observed {
			c.violatef("fault-conservation", "%s: injector reports %d, stack observed %d",
				name, reported, observed)
		}
	}
	conserve("io-errors", rep.IOErrors, c.erroredServices)
	conserve("latency-spikes", rep.LatencySpikes, c.spikedServices)
	conserve("stuck-slots", rep.StuckSlots, c.stuckServices)
	conserve("short-reads", rep.ShortReads, c.shortServices)
	conserve("retries", rep.Retries, c.failedIOs)
	conserve("fallbacks", rep.Fallbacks, c.degraded)
	conserve("degradations", rep.ArtifactCorruptions+rep.MapLoadFailures, c.degraded)
	conserve("store-errors", rep.StoreErrors, c.storeRetries)
	conserve("store-spikes", rep.StoreSpikes, c.storeSpikes)
	c.finishStore()

	// Rmap dedup cross-check: the cache's per-page map counts must
	// match the reference counts derived purely from address-space
	// events. A dedup accounting bug on either side breaks equality.
	c.h.Cache.ForEachInode(func(ino *pagecache.Inode) {
		ino.ForEachPage(func(idx int64, uptodate bool, mapCount int) {
			if derived := c.fileRefs[pageKey{ino, idx}]; mapCount != derived {
				c.violatef("rmap-dedup-accounting", "%s page %d: MapCount=%d, derived rmap refs=%d",
					ino.Name(), idx, mapCount, derived)
			}
		})
	})
	for k, n := range c.fileRefs {
		if n != 0 && !c.cached[k] {
			c.violatef("rmap-uncached-ref", "%s page %d holds %d rmap refs but is not cached",
				k.ino.Name(), k.idx, n)
		}
	}
	c.checkCachedCount("finish")

	if len(c.violations) == 0 {
		return nil
	}
	return &Error{Violations: c.violations, Dropped: c.dropped}
}

// Error aggregates a run's violations.
type Error struct {
	Violations []Violation
	Dropped    int
}

func (e *Error) Error() string {
	const show = 5
	msg := fmt.Sprintf("check: %d invariant violation(s)", len(e.Violations)+e.Dropped)
	n := len(e.Violations)
	if n > show {
		n = show
	}
	for _, v := range e.Violations[:n] {
		msg += "\n  " + v.String()
	}
	if rest := len(e.Violations) + e.Dropped - n; rest > 0 {
		msg += fmt.Sprintf("\n  ... and %d more", rest)
	}
	return msg
}

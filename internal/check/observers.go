package check

import (
	"snapbpf/internal/blockdev"
	"snapbpf/internal/hostmm"
	"snapbpf/internal/kvm"
	"snapbpf/internal/pagecache"
	"snapbpf/internal/prefetch"
	"snapbpf/internal/sim"
)

// One Checker implements every layer's observer interface; the method
// sets are disjoint by construction. Keep these assertions in sync
// with the hook surface — a signature drift in any layer fails here
// rather than silently detaching the harness.
var (
	_ sim.Observer       = (*Checker)(nil)
	_ blockdev.Observer  = (*Checker)(nil)
	_ pagecache.Observer = (*Checker)(nil)
	_ hostmm.Observer    = (*Checker)(nil)
	_ kvm.Observer       = (*Checker)(nil)
	_ prefetch.Observer  = (*Checker)(nil)
)

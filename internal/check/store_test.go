package check

import (
	"testing"
	"time"

	"snapbpf/internal/blockdev"
	"snapbpf/internal/faults"
	"snapbpf/internal/sim"
	"snapbpf/internal/store"
	"snapbpf/internal/units"
	"snapbpf/internal/vmm"
)

func storeChecker(t *testing.T) *Checker {
	t.Helper()
	return New(vmm.NewHost(blockdev.MicronSATA5300()), nil)
}

func countViol(c *Checker, invariant string) int {
	n := 0
	for _, v := range c.Violations() {
		if v.Invariant == invariant {
			n++
		}
	}
	return n
}

// TestStoreMirrorCleanRun drives a real host chunk cache — fetches,
// a hit, a cold-tier drop — with the checker as its observer and
// requires the event-fed mirror to reconcile without a violation.
func TestStoreMirrorCleanRun(t *testing.T) {
	h := vmm.NewHost(blockdev.MicronSATA5300())
	chk := New(h, nil)
	remote := store.NewRemote(store.Params{
		FirstByte: 10 * time.Millisecond, MiBps: 1024, ChunkPages: 4})
	hc := store.NewHostCache(h.Eng, remote, faults.NewInjector(faults.Plan{}))
	hc.SetObserver(chk)
	chk.AttachStore(hc)
	tags := make([]uint64, 16)
	for i := range tags {
		tags[i] = uint64(i)*2654435761 + 1
	}
	man := store.BuildManifest("fn", tags, 4)
	b := hc.Bind(man, store.PolicyDemand, tags)
	h.Eng.Go("reader", func(p *sim.Proc) {
		b.Stage(p, 0, int64(units.PagesToBytes(16))) // 4 chunk fetches
		b.Stage(p, 0, int64(units.PagesToBytes(1)))  // 1 hit
	})
	h.Eng.Run()
	hc.Drop() // 4 evictions
	chk.finishStore()
	if vs := chk.Violations(); len(vs) != 0 {
		t.Fatalf("clean store run reported violations: %v", vs)
	}
	cc := chk.Counts()
	if cc.StoreFetches != 4 || cc.StoreHits != 1 || cc.StoreEvictions != 4 ||
		cc.StoreManifests != 1 || cc.StoreFetchBytes != int64(units.PagesToBytes(16)) {
		t.Fatalf("mirror counts: %+v", cc)
	}
}

// TestStoreMirrorViolations exercises every store invariant's failure
// path by feeding the observer an event stream a correct cache could
// never emit.
func TestStoreMirrorViolations(t *testing.T) {
	ref := func(id uint64, start, npages int64) store.ChunkRef {
		return store.ChunkRef{ID: id, Start: start, NPages: npages}
	}
	man := func(fn string, chunks ...store.ChunkRef) *store.Manifest {
		var pages int64
		for _, c := range chunks {
			pages += c.NPages
		}
		return &store.Manifest{Fn: fn, NrPages: pages, Chunks: chunks}
	}
	cases := []struct {
		invariant string
		drive     func(c *Checker)
	}{
		{"store-fetch-after-hit", func(c *Checker) {
			c.StoreFetchBegin(nil, "f", 1, 100)
			c.StoreFetchEnd(nil, "f", 1, 100, 0, 0, time.Millisecond)
			c.StoreFetchBegin(nil, "f", 1, 100)
		}},
		{"store-duplicate-fetch", func(c *Checker) {
			c.StoreFetchBegin(nil, "f", 2, 100)
			c.StoreFetchBegin(nil, "f", 2, 100)
		}},
		{"store-byte-accounting", func(c *Checker) {
			c.StoreManifestRegistered("f", man("f", ref(3, 0, 4)))
			c.StoreFetchBegin(nil, "f", 3, 4096) // manifest declares 4 pages
		}},
		{"store-chunk-bytes", func(c *Checker) {
			c.StoreManifestRegistered("f", man("f", ref(9, 0, 4)))
			c.StoreManifestRegistered("g", man("g", ref(9, 0, 8)))
		}},
		{"store-chunk-digest", func(c *Checker) {
			c.StoreChunkVerified("f", 4, false)
		}},
		{"store-hit-uncached", func(c *Checker) {
			c.StoreChunkHit(nil, "f", 5, false)
		}},
		{"store-evict-uncached", func(c *Checker) {
			c.StoreChunkEvicted(6)
		}},
		{"store-fetch-unbalanced", func(c *Checker) {
			c.StoreFetchEnd(nil, "f", 7, 100, 0, 0, time.Millisecond)
		}},
		{"store-fetch-latency", func(c *Checker) {
			c.StoreFetchBegin(nil, "f", 8, 100)
			c.StoreFetchEnd(nil, "f", 8, 100, 0, 0, 0)
		}},
		{"store-quiesce", func(c *Checker) {
			c.StoreFetchBegin(nil, "f", 9, 100)
			c.finishStore()
		}},
	}
	for _, tc := range cases {
		t.Run(tc.invariant, func(t *testing.T) {
			c := storeChecker(t)
			tc.drive(c)
			if got := countViol(c, tc.invariant); got != 1 {
				t.Fatalf("%s fired %d times, want 1 (all: %v)",
					tc.invariant, got, c.Violations())
			}
		})
	}
}

// TestStoreMirrorReconciliationCatchesDrift attaches a real cache,
// then corrupts the mirror with events the cache never saw: the
// end-of-run reconciliation must flag the count drift and the phantom
// manifest's refcounts.
func TestStoreMirrorReconciliationCatchesDrift(t *testing.T) {
	h := vmm.NewHost(blockdev.MicronSATA5300())
	chk := New(h, nil)
	remote := store.NewRemote(store.Params{
		FirstByte: 10 * time.Millisecond, MiBps: 1024, ChunkPages: 4})
	hc := store.NewHostCache(h.Eng, remote, faults.NewInjector(faults.Plan{}))
	hc.SetObserver(chk)
	chk.AttachStore(hc)
	tags := make([]uint64, 8)
	for i := range tags {
		tags[i] = uint64(i)*40503 + 7
	}
	b := hc.Bind(store.BuildManifest("fn", tags, 4), store.PolicyDemand, tags)
	h.Eng.Go("reader", func(p *sim.Proc) {
		b.Stage(p, 0, int64(units.PagesToBytes(8)))
	})
	h.Eng.Run()
	// A manifest registration the cache never performed: manifest
	// count and the phantom chunk's refcount both drift.
	chk.StoreManifestRegistered("ghost", &store.Manifest{
		Fn: "ghost", NrPages: 4,
		Chunks: []store.ChunkRef{{ID: 0xfeed, Start: 0, NPages: 4}}})
	// A fetch completion the cache never saw: fetch counts drift and
	// the mirror holds a chunk the cache does not.
	chk.StoreFetchBegin(nil, "ghost", 0xfeed, int64(units.PagesToBytes(4)))
	chk.StoreFetchEnd(nil, "ghost", 0xfeed, int64(units.PagesToBytes(4)), 0, 0, time.Millisecond)
	chk.finishStore()
	if got := countViol(chk, "store-count-accounting"); got == 0 {
		t.Error("count drift between mirror and cache stats not flagged")
	}
	if got := countViol(chk, "store-cache-accounting"); got == 0 {
		t.Error("resident-set drift between mirror and cache not flagged")
	}
	if got := countViol(chk, "store-refcount-conservation"); got == 0 {
		t.Error("phantom manifest refcount not flagged")
	}
}

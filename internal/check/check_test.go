package check

import (
	"strings"
	"testing"

	"snapbpf/internal/blockdev"
	"snapbpf/internal/prefetch"
	"snapbpf/internal/sim"
	"snapbpf/internal/vmm"
	"snapbpf/internal/workload"
)

// runChecked drives one restore+invoke of the demand-paging baseline
// under a fresh checker and returns the pieces a test needs to poke at.
func runChecked(t *testing.T) (*Checker, *vmm.Host, *vmm.MicroVM, *prefetch.Env) {
	t.Helper()
	fn, err := workload.ByName("json")
	if err != nil {
		t.Fatal(err)
	}
	h := vmm.NewHost(blockdev.MicronSATA5300())
	chk := New(h, nil)
	pf := prefetch.NewLinuxNoRA()
	img := vmm.BuildImage(fn, false)
	ino := h.RegisterSnapshot(fn.Name+".snapmem", img)
	chk.RegisterFileTags(ino, img.PageTags)
	env := &prefetch.Env{
		Host: h, Fn: fn, Image: img, SnapInode: ino,
		RecordTrace: fn.GenTrace(), InvokeTrace: fn.GenTrace(),
		Check: chk,
	}
	var vm *vmm.MicroVM
	h.Eng.Go("vm0", func(p *sim.Proc) {
		v, err := h.Restore(p, "vm0", fn, img, ino, pf.RestoreConfig(0))
		if err != nil {
			t.Error(err)
			return
		}
		vm = v
		if err := pf.PrepareVM(p, env, vm); err != nil {
			t.Error(err)
			return
		}
		vm.MarkPrepared(p)
		if _, err := vm.Invoke(p, env.InvokeTrace); err != nil {
			t.Error(err)
			return
		}
		pf.FinishVM(env, vm)
	})
	h.Eng.Run()
	if t.Failed() || vm == nil {
		t.FailNow()
	}
	return chk, h, vm, env
}

// TestCleanRunHasNoViolations is the positive control: a healthy
// demand-paging run armed with the checker finishes clean and yields a
// digest.
func TestCleanRunHasNoViolations(t *testing.T) {
	chk, _, vm, _ := runChecked(t)
	if d := chk.VMDone(vm); d == 0 {
		t.Error("digest is zero")
	}
	vm.Shutdown()
	if err := chk.Finish(); err != nil {
		t.Fatalf("clean run reported violations: %v", err)
	}
}

// TestBrokenDedupCounterCaught corrupts the page cache's rmap counter
// directly — an extra MapPage with no address-space event behind it,
// exactly the kind of accounting bug the dedup cross-check exists for —
// and requires Finish to flag it.
func TestBrokenDedupCounterCaught(t *testing.T) {
	chk, _, vm, env := runChecked(t)
	chk.VMDone(vm)

	// Find a resident snapshot page and give it a phantom rmap ref.
	sabotaged := int64(-1)
	for idx := int64(0); idx < env.SnapInode.NrPages(); idx++ {
		if env.SnapInode.Resident(idx) {
			env.SnapInode.MapPage(idx)
			sabotaged = idx
			break
		}
	}
	if sabotaged < 0 {
		t.Fatal("no resident snapshot page to sabotage")
	}

	vm.Shutdown()
	err := chk.Finish()
	if err == nil {
		t.Fatal("broken dedup counter not caught")
	}
	if !strings.Contains(err.Error(), "rmap-dedup-accounting") {
		t.Fatalf("wrong diagnosis: %v", err)
	}
}

// TestEvolveTagDeterminism pins the oracle's write transition: pure in
// (tag, pfn), never zero, and sensitive to both inputs.
func TestEvolveTagDeterminism(t *testing.T) {
	if evolveTag(42, 7) != evolveTag(42, 7) {
		t.Error("evolveTag is not deterministic")
	}
	if evolveTag(42, 7) == evolveTag(42, 8) || evolveTag(42, 7) == evolveTag(43, 7) {
		t.Error("evolveTag ignores an input")
	}
	for _, tag := range []uint64{0, 1, 0xffffffffffffffff} {
		if evolveTag(tag, 3) == 0 {
			t.Error("evolveTag produced the reserved zero tag")
		}
	}
}

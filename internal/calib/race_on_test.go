//go:build race

package calib

const raceEnabled = true

// Package calib is the calibration and fitness layer: it proves the
// simulator's regenerated figures against the paper's published
// numbers and re-evaluates recorded prefetch decisions against their
// alternatives.
//
//   - The reference dataset (refdata.go) embeds the published values
//     of the figures the repo reproduces, with provenance notes.
//   - The fitness engine (fitness.go) scores each regenerated figure
//     with MAPE and Pearson r against its reference and applies
//     per-figure tolerance bands — the CI drift alarm.
//   - Counterfactual replay (replay.go) extracts every recorded
//     prefetch-issue/readahead decision from the observability event
//     stream and re-simulates alternative orderings, reporting the
//     end-to-end latency delta each decision is responsible for.
//
// Determinism contract: everything here is a pure function of its
// inputs — the kernels sum their terms in sorted order, so MAPE and
// Pearson are exactly (bit-for-bit) invariant under row permutation
// and column reordering of the compared tables.
package calib

import (
	"fmt"
	"math"
	"sort"
)

// sumSorted adds terms in ascending order. Floating-point addition is
// not associative, so a plain loop would make the kernels sensitive to
// the order rows arrive in; sorting first makes every permutation of
// the same multiset of terms sum to the same bits.
func sumSorted(terms []float64) float64 {
	sort.Float64s(terms)
	var s float64
	for _, t := range terms {
		s += t
	}
	return s
}

// checkFinite rejects NaN and ±Inf inputs up front so the kernels
// never propagate them into a silently-passing comparison.
func checkFinite(name string, xs []float64) error {
	for i, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("calib: non-finite %s value at index %d", name, i)
		}
	}
	return nil
}

// MAPE returns the mean absolute percentage error of sim against ref:
// mean over i of |sim[i]-ref[i]| / |ref[i]|. Pairs whose reference is
// exactly zero are skipped (the quotient is undefined there) and the
// number of pairs actually used is returned; if every pair is skipped
// MAPE is undefined and an error is returned. MAPE(x, x) is exactly 0.
func MAPE(ref, sim []float64) (mape float64, used int, err error) {
	if len(ref) != len(sim) {
		return 0, 0, fmt.Errorf("calib: MAPE length mismatch: %d reference vs %d simulated", len(ref), len(sim))
	}
	if err := checkFinite("reference", ref); err != nil {
		return 0, 0, err
	}
	if err := checkFinite("simulated", sim); err != nil {
		return 0, 0, err
	}
	terms := make([]float64, 0, len(ref))
	for i := range ref {
		if ref[i] == 0 {
			continue
		}
		terms = append(terms, math.Abs(sim[i]-ref[i])/math.Abs(ref[i]))
	}
	if len(terms) == 0 {
		return 0, 0, fmt.Errorf("calib: MAPE undefined: no pairs with a nonzero reference")
	}
	return sumSorted(terms) / float64(len(terms)), len(terms), nil
}

// Pearson returns the Pearson correlation coefficient of x and y.
// It needs at least two points and nonzero variance in both series;
// degenerate inputs return an error rather than NaN. The kernel is
// exactly symmetric in its arguments, and Pearson(x, x) is exactly 1.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("calib: Pearson length mismatch: %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return 0, fmt.Errorf("calib: Pearson needs at least 2 points, got %d", len(x))
	}
	if err := checkFinite("x", x); err != nil {
		return 0, err
	}
	if err := checkFinite("y", y); err != nil {
		return 0, err
	}
	n := float64(len(x))
	mx := sumSorted(append([]float64(nil), x...)) / n
	my := sumSorted(append([]float64(nil), y...)) / n
	sxx := make([]float64, len(x))
	syy := make([]float64, len(x))
	sxy := make([]float64, len(x))
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx[i] = dx * dx
		syy[i] = dy * dy
		sxy[i] = dx * dy
	}
	vx, vy, cov := sumSorted(sxx), sumSorted(syy), sumSorted(sxy)
	if vx == 0 || vy == 0 {
		return 0, fmt.Errorf("calib: Pearson undefined: zero-variance series")
	}
	// Identical accumulations mean the series are perfectly correlated;
	// returning the exact ±1 avoids a last-ulp sqrt wobble.
	if cov == vx && cov == vy {
		return 1, nil
	}
	if cov == -vx && cov == -vy {
		return -1, nil
	}
	r := cov / (math.Sqrt(vx) * math.Sqrt(vy))
	if math.IsNaN(r) {
		// Intermediate overflow (finite inputs, infinite sums).
		return 0, fmt.Errorf("calib: Pearson overflowed on extreme values")
	}
	// Clamp rounding spill; |r| <= 1 mathematically.
	if r > 1 {
		r = 1
	} else if r < -1 {
		r = -1
	}
	return r, nil
}

package calib

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"snapbpf/internal/core"
	"snapbpf/internal/experiments"
	"snapbpf/internal/obs"
	"snapbpf/internal/prefetch"
	"snapbpf/internal/sim"
	"snapbpf/internal/snapshot"
	"snapbpf/internal/workload"
)

// Decision is one recorded prefetch decision, extracted from the
// observability event stream (no record-path hooks: the tracer already
// emits these as instant events).
type Decision struct {
	// Seq numbers decisions in record order.
	Seq int
	// Kind is "prefetch-issue" (a SnapBPF prefetch group) or
	// "readahead" (a Linux readahead window / kfunc-issued run).
	Kind string
	// VM names the sandbox (prefetch-issue only).
	VM string
	// File names the inode (readahead only).
	File string
	// Start/NPages is the issued page range.
	Start  int64
	NPages int64
	// At is the sim time the decision was taken.
	At sim.Time
}

// ExtractDecisions walks a run's trace and returns every prefetch
// decision in record order. The run must have been traced
// (obs.Config.Trace); an untraced report yields no decisions.
func ExtractDecisions(rep *obs.Report) []Decision {
	var ds []Decision
	rep.Events(func(ev *obs.Event) {
		if ev.Name != "prefetch-issue" && ev.Name != "readahead" {
			return
		}
		d := Decision{Seq: len(ds), Kind: ev.Name, At: ev.Ts}
		for _, a := range ev.Args() {
			switch a.Key {
			case "vm":
				d.VM = a.Str
			case "file":
				d.File = a.Str
			case "start":
				d.Start = a.Int
			case "pages":
				d.NPages = a.Int
			}
		}
		ds = append(ds, d)
	})
	return ds
}

// Alternative is one counterfactual schedule and its outcome.
type Alternative struct {
	// Name labels the reordering; the first alternative is always
	// "recorded" (the identity permutation — its Delta must be zero, the
	// replay self-check).
	Name string
	// DecisionSeq is the decision a promotion reorders, -1 for global
	// reorderings (recorded/offset-order/reverse).
	DecisionSeq int
	// Perm maps issue position -> recorded group index.
	Perm []int
	// E2E is the cell's mean E2E under this schedule; Delta is E2E
	// minus the recorded schedule's E2E.
	E2E   time.Duration
	Delta time.Duration
}

// ReplayConfig tunes Replay.
type ReplayConfig struct {
	// K bounds the counterfactual alternatives beyond the recorded
	// schedule (default 3).
	K int
	// Parallel is the worker-pool width for the alternative runs (0 =
	// one per CPU); results are identical at any width.
	Parallel int
	// NewScheme builds the prefetcher; nil means core.New (full
	// SnapBPF). Replay needs a SnapBPF variant — only it exposes the
	// captured schedule.
	NewScheme func() *core.SnapBPF
	// Cfg is the cell config for every run; N defaults to 1.
	Cfg experiments.Config
}

// ReplayReport is the outcome of one cell's counterfactual replay.
type ReplayReport struct {
	Function  string
	Scheme    string
	Groups    int
	BaseE2E   time.Duration
	Decisions []Decision
	// Alternatives[0] is the recorded schedule replayed through the
	// override path; its Delta is the determinism self-check.
	Alternatives []Alternative
}

// Replay runs fn once under the scheme with tracing armed, extracts
// the recorded prefetch decisions, then re-simulates the cell under
// alternative group orderings: the recorded order itself (which must
// reproduce the recorded E2E exactly — the simulator is deterministic,
// so a nonzero delta there is a bug), per-decision promotions (what if
// this group had been fetched first?), the offset-sorted order and the
// reversed order, truncated to K alternatives after the recorded one.
func Replay(fn workload.Function, rc ReplayConfig) (*ReplayReport, error) {
	k := rc.K
	if k <= 0 {
		k = 3
	}
	newScheme := rc.NewScheme
	if newScheme == nil {
		newScheme = core.New
	}
	cfg := rc.Cfg
	// The base run needs the trace; alternatives don't.
	baseCfg := cfg
	obsCfg := obs.Config{Trace: true}
	if cfg.Obs != nil {
		obsCfg = *cfg.Obs
		obsCfg.Trace = true
	}
	baseCfg.Obs = &obsCfg

	base := newScheme()
	res, err := experiments.Run(fn, experiments.Scheme{
		Name: base.Name(),
		New:  func() prefetch.Prefetcher { return base },
	}, baseCfg)
	if err != nil {
		return nil, fmt.Errorf("calib: replay base run: %w", err)
	}
	ws := base.WorkingSet()
	if ws == nil || len(ws.Groups) == 0 {
		return nil, fmt.Errorf("calib: replay: %s captured no prefetch schedule for %s", res.Scheme, fn.Name)
	}
	groups := ws.Groups

	rep := &ReplayReport{
		Function:  fn.Name,
		Scheme:    res.Scheme,
		Groups:    len(groups),
		BaseE2E:   res.MeanE2E,
		Decisions: ExtractDecisions(res.Obs),
	}
	alts := buildAlternatives(groups, rep.Decisions, k)

	cells := make([]experiments.Cell, len(alts))
	for i := range alts {
		perm := alts[i].Perm
		cells[i] = experiments.Cell{
			Fn: fn,
			Scheme: experiments.Scheme{
				Name: res.Scheme,
				New: func() prefetch.Prefetcher {
					s := newScheme()
					s.ScheduleOverride = func(gs []snapshot.Group) []snapshot.Group {
						return applyPerm(gs, perm)
					}
					return s
				},
			},
			Cfg: cfg,
		}
	}
	results, err := experiments.RunCells(experiments.Options{Parallel: rc.Parallel}, cells)
	if err != nil {
		return nil, fmt.Errorf("calib: replay alternatives: %w", err)
	}
	for i, r := range results {
		alts[i].E2E = r.MeanE2E
		alts[i].Delta = r.MeanE2E - rep.BaseE2E
	}
	rep.Alternatives = alts
	return rep, nil
}

// buildAlternatives assembles the recorded identity plus up to k
// counterfactual permutations: per-decision promotions first (each
// prefetch-issue decision's group moved to the front of the schedule),
// then the offset-sorted and reversed global orders.
func buildAlternatives(groups []snapshot.Group, decisions []Decision, k int) []Alternative {
	n := len(groups)
	identity := make([]int, n)
	for i := range identity {
		identity[i] = i
	}
	alts := []Alternative{{Name: "recorded", DecisionSeq: -1, Perm: identity}}

	promoted := make(map[int]bool) // group indices already promoted
	for _, d := range decisions {
		if len(alts) > k {
			break
		}
		// Map the decision to the schedule group containing its start:
		// the prefetch path splits a group into bounded readahead
		// windows, so (start, pages) equality would never fire.
		gi := -1
		for i, g := range groups {
			if d.Start >= g.Start && d.Start < g.End() {
				gi = i
				break
			}
		}
		// Skip decisions outside the schedule (demand readahead on other
		// inodes), already-first groups (identical to recorded) and
		// repeat windows of an already-promoted group.
		if gi <= 0 || promoted[gi] {
			continue
		}
		promoted[gi] = true
		perm := make([]int, 0, n)
		perm = append(perm, gi)
		for i := 0; i < n; i++ {
			if i != gi {
				perm = append(perm, i)
			}
		}
		alts = append(alts, Alternative{
			Name:        fmt.Sprintf("decision[%d] group[%d] first", d.Seq, gi),
			DecisionSeq: d.Seq,
			Perm:        perm,
		})
	}
	if len(alts) <= k {
		byOffset := append([]int(nil), identity...)
		sort.SliceStable(byOffset, func(i, j int) bool {
			return groups[byOffset[i]].Start < groups[byOffset[j]].Start
		})
		if !equalPerm(byOffset, identity) {
			alts = append(alts, Alternative{Name: "offset-order", DecisionSeq: -1, Perm: byOffset})
		}
	}
	if len(alts) <= k && n > 1 {
		rev := make([]int, n)
		for i := range rev {
			rev[i] = n - 1 - i
		}
		alts = append(alts, Alternative{Name: "reverse", DecisionSeq: -1, Perm: rev})
	}
	return alts
}

func equalPerm(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// applyPerm reorders gs by perm (issue position i gets recorded group
// perm[i]). A length mismatch means the rerun captured a different
// schedule than the base run — impossible while the simulator is
// deterministic — and panics rather than silently replaying the wrong
// counterfactual.
func applyPerm(gs []snapshot.Group, perm []int) []snapshot.Group {
	if len(perm) != len(gs) {
		panic(fmt.Sprintf("calib: replay schedule drifted: %d groups recorded, %d captured on rerun", len(perm), len(gs)))
	}
	out := make([]snapshot.Group, len(gs))
	for i, p := range perm {
		out[i] = gs[p]
	}
	return out
}

// Table renders the replay outcome with the experiment table formatter.
func (r *ReplayReport) Table() *experiments.Table {
	t := &experiments.Table{
		ID:    "replay",
		Title: fmt.Sprintf("Counterfactual replay: %s / %s", r.Scheme, r.Function),
		Note: fmt.Sprintf("%d groups, %d recorded decisions; delta vs recorded E2E %s",
			r.Groups, len(r.Decisions), r.BaseE2E),
		Columns: []string{"Alternative", "decision", "E2E", "delta"},
	}
	for _, a := range r.Alternatives {
		dec := "-"
		if a.DecisionSeq >= 0 {
			dec = strconv.Itoa(a.DecisionSeq)
		}
		delta := a.Delta.String()
		if a.Delta > 0 {
			delta = "+" + delta
		}
		t.AddRow(a.Name, dec, a.E2E.String(), delta)
	}
	return t
}

package calib

import (
	"testing"

	"snapbpf/internal/costmodel"
	"snapbpf/internal/experiments"
	"snapbpf/internal/workload"
)

// Live fitness tests: regenerate real figures (json+image, the golden
// pair) and score them against the embedded reference dataset — the
// in-process version of `snapbpf-bench -fitness`, plus the sabotage
// proof that the drift alarm actually fires.

func liveFunctions(t *testing.T) []workload.Function {
	t.Helper()
	var fns []workload.Function
	for _, f := range workload.Suite() {
		if f.Name == "json" || f.Name == "image" {
			fns = append(fns, f)
		}
	}
	if len(fns) != 2 {
		t.Fatalf("expected json+image in suite, got %d functions", len(fns))
	}
	return fns
}

// runFigures regenerates the drift-alarm figures serially.
func runFigures(t *testing.T, fns []workload.Function) map[string]*experiments.Table {
	t.Helper()
	o := experiments.Options{Functions: fns, Parallel: 1}
	tables := map[string]*experiments.Table{}
	for _, e := range []struct {
		id  string
		run func(experiments.Options) (*experiments.Table, error)
	}{
		{"table1", experiments.Table1},
		{"fig3a", experiments.Fig3a},
		{"fig4", experiments.Fig4},
	} {
		tbl, err := e.run(o)
		if err != nil {
			t.Fatalf("%s: %v", e.id, err)
		}
		tables[e.id] = tbl
	}
	return tables
}

func TestFitnessLive(t *testing.T) {
	if raceEnabled {
		t.Skip("full experiment cells; the non-race suite covers fitness")
	}
	tables := runFigures(t, liveFunctions(t))
	rep, err := Evaluate(tables, References(), Options{AllowMissingRows: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Figures) != 3 {
		t.Fatalf("evaluated %d figures, want 3: %+v", len(rep.Figures), rep.Figures)
	}
	if !rep.Pass {
		t.Fatalf("healthy run outside tolerance:\n%s", rep.VerdictTable().Render())
	}
	for _, f := range rep.Figures {
		if f.Err != "" {
			t.Errorf("%s: structural failure: %s", f.Figure, f.Err)
		}
	}
}

// TestSabotageAlarm proves the CI drift alarm is live: perturb one
// cost-model constant (a 10x UFFDIO_COPY — REAP and Faast pay it per
// working-set page, SnapBPF never does, so the normalised REAP column
// inflates ~3x) and the fig3a fitness must blow through its tolerance
// band.
func TestSabotageAlarm(t *testing.T) {
	if raceEnabled {
		t.Skip("full experiment cells; the non-race suite covers fitness")
	}
	costmodel.SetPerturb(func(m costmodel.Model) costmodel.Model {
		m.UffdCopyPage *= 10
		return m
	})
	defer costmodel.SetPerturb(nil)

	tbl, err := experiments.Fig3a(experiments.Options{Functions: liveFunctions(t), Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Evaluate(map[string]*experiments.Table{"fig3a": tbl}, References(),
		Options{AllowMissingRows: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatalf("alarm did not fire on a 10x UffdCopyPage:\n%s", rep.VerdictTable().Render())
	}
	f := rep.Figures[0]
	if f.Err != "" {
		t.Fatalf("want a tolerance failure, got a structural one: %s", f.Err)
	}
	if f.MAPE <= f.MAPETol {
		t.Errorf("MAPE %v within tolerance %v; expected the REAP column to inflate", f.MAPE, f.MAPETol)
	}
}

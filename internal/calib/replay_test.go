package calib

import (
	"reflect"
	"testing"

	"snapbpf/internal/ebpf"
	"snapbpf/internal/obs"
	"snapbpf/internal/workload"
)

func jsonFn(t *testing.T) workload.Function {
	t.Helper()
	fn, err := workload.ByName("json")
	if err != nil {
		t.Fatal(err)
	}
	return fn
}

// The recorded schedule replayed through the override path must land
// on the recorded E2E exactly — delta 0, not approximately 0. This is
// the replay credibility check: if the identity counterfactual cannot
// reproduce the measurement, no counterfactual can be trusted.
func TestReplayRecordedDeltaZero(t *testing.T) {
	rep, err := Replay(jsonFn(t), ReplayConfig{K: 2, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Groups == 0 || rep.BaseE2E == 0 {
		t.Fatalf("empty base run: %+v", rep)
	}
	if len(rep.Decisions) == 0 {
		t.Fatal("no decisions extracted from the trace")
	}
	if len(rep.Alternatives) < 2 {
		t.Fatalf("want the recorded schedule plus alternatives, got %d", len(rep.Alternatives))
	}
	rec := rep.Alternatives[0]
	if rec.Name != "recorded" {
		t.Fatalf("Alternatives[0] = %q, want recorded", rec.Name)
	}
	if rec.Delta != 0 {
		t.Fatalf("recorded schedule replayed with delta %v, want exactly 0", rec.Delta)
	}
	if rec.E2E != rep.BaseE2E {
		t.Fatalf("recorded E2E %v != base %v", rec.E2E, rep.BaseE2E)
	}
	for i, p := range rec.Perm {
		if p != i {
			t.Fatalf("recorded perm is not the identity at %d: %d", i, p)
		}
	}
}

// Replay must produce deep-equal reports across pool widths and both
// eBPF engines — decisions, alternatives, E2Es and deltas, everything.
func TestReplayDeterministic(t *testing.T) {
	if raceEnabled {
		t.Skip("repeated full cells; the non-race suite covers determinism")
	}
	fn := jsonFn(t)
	run := func(parallel int, engine ebpf.Engine) *ReplayReport {
		prev := ebpf.DefaultEngine()
		ebpf.SetDefaultEngine(engine)
		defer ebpf.SetDefaultEngine(prev)
		rep, err := Replay(fn, ReplayConfig{K: 2, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	base := run(1, ebpf.EngineJIT)
	for _, c := range []struct {
		name     string
		parallel int
		engine   ebpf.Engine
	}{
		{"parallel-3 jit", 3, ebpf.EngineJIT},
		{"serial interp", 1, ebpf.EngineInterp},
		{"parallel-3 interp", 3, ebpf.EngineInterp},
	} {
		if got := run(c.parallel, c.engine); !reflect.DeepEqual(got, base) {
			t.Errorf("%s: replay diverged:\n got %+v\nwant %+v", c.name, got, base)
		}
	}
}

// ExtractDecisions on an untraced or nil report yields nothing.
func TestExtractDecisionsEmpty(t *testing.T) {
	if ds := ExtractDecisions(nil); ds != nil {
		t.Errorf("nil report: %v", ds)
	}
	if ds := ExtractDecisions(&obs.Report{}); ds != nil {
		t.Errorf("untraced report: %v", ds)
	}
}

func TestBuildAlternativesTruncation(t *testing.T) {
	rep, err := Replay(jsonFn(t), ReplayConfig{K: 1, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Alternatives) != 2 {
		t.Fatalf("K=1: got %d alternatives, want recorded + 1", len(rep.Alternatives))
	}
}

package calib

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"snapbpf/internal/experiments"
)

// synthetic builds a table matching ref's layout with the given cells.
func synthetic(id string, cols []string, rows [][]string) *experiments.Table {
	t := &experiments.Table{ID: id, Title: id, Columns: append([]string{"Key"}, cols...)}
	for _, r := range rows {
		t.AddRow(r...)
	}
	return t
}

func refFixture() []RefFigure {
	refs, err := ParseRefTable(`
figure f
tolerance mape=0.1 pearson=0.9
columns A|B
row x|1|2
row y|2|4
row z|3|1
`)
	if err != nil {
		panic(err)
	}
	return refs
}

func TestEvaluatePass(t *testing.T) {
	tbl := synthetic("f", []string{"A", "B"}, [][]string{
		{"x", "1.01", "2.02"}, {"y", "1.98", "4.1"}, {"z", "3.0", "0.95"},
	})
	rep, err := Evaluate(map[string]*experiments.Table{"f": tbl}, refFixture(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass || len(rep.Figures) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	f := rep.Figures[0]
	if f.Rows != 3 || f.Pairs != 6 || f.MAPEPairs != 6 {
		t.Errorf("counts = %+v", f)
	}
	if f.MAPE <= 0 || f.MAPE > 0.1 {
		t.Errorf("MAPE = %v", f.MAPE)
	}
	if f.Pearson < 0.9 {
		t.Errorf("Pearson = %v", f.Pearson)
	}
}

func TestEvaluateFailsOnDrift(t *testing.T) {
	tbl := synthetic("f", []string{"A", "B"}, [][]string{
		{"x", "2", "2"}, {"y", "2", "4"}, {"z", "3", "1"}, // x/A is 2x off
	})
	rep, err := Evaluate(map[string]*experiments.Table{"f": tbl}, refFixture(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatalf("want drift failure, got %+v", rep.Figures[0])
	}
}

// Pairing is by name, so shuffling the table's rows and columns must
// produce a bit-identical figure verdict.
func TestEvaluateOrderInvariant(t *testing.T) {
	rows := [][]string{{"x", "1.01", "2.02"}, {"y", "1.98", "4.1"}, {"z", "3.0", "0.95"}}
	base, err := Evaluate(map[string]*experiments.Table{
		"f": synthetic("f", []string{"A", "B"}, rows),
	}, refFixture(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Reorder columns (B before A) and shuffle rows.
	swapped := [][]string{{"x", "2.02", "1.01"}, {"y", "4.1", "1.98"}, {"z", "0.95", "3.0"}}
	for seed := int64(1); seed <= 4; seed++ {
		shuffled := append([][]string(nil), swapped...)
		rand.New(rand.NewSource(seed)).Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		rep, err := Evaluate(map[string]*experiments.Table{
			"f": synthetic("f", []string{"B", "A"}, shuffled),
		}, refFixture(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Figures[0] != base.Figures[0] {
			t.Errorf("seed %d: reordered verdict %+v != %+v", seed, rep.Figures[0], base.Figures[0])
		}
	}
}

func TestEvaluateStructuralFailures(t *testing.T) {
	refs := refFixture()
	// Missing column.
	rep, err := Evaluate(map[string]*experiments.Table{
		"f": synthetic("f", []string{"A"}, [][]string{{"x", "1"}, {"y", "2"}, {"z", "3"}}),
	}, refs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass || rep.Figures[0].Err == "" {
		t.Errorf("missing column: %+v", rep.Figures[0])
	}
	// Missing row fails without AllowMissingRows...
	short := synthetic("f", []string{"A", "B"}, [][]string{{"x", "1", "2"}, {"z", "3", "1"}})
	rep, err = Evaluate(map[string]*experiments.Table{"f": short}, refs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Error("missing row without AllowMissingRows: want failure")
	}
	// ...and is skipped with it.
	rep, err = Evaluate(map[string]*experiments.Table{"f": short}, refs, Options{AllowMissingRows: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass || rep.Figures[0].MissingRows != 1 || rep.Figures[0].Rows != 2 {
		t.Errorf("AllowMissingRows: %+v", rep.Figures[0])
	}
	// Unparseable cell.
	rep, err = Evaluate(map[string]*experiments.Table{
		"f": synthetic("f", []string{"A", "B"}, [][]string{{"x", "wat", "2"}, {"y", "2", "4"}, {"z", "3", "1"}}),
	}, refs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass || !strings.Contains(rep.Figures[0].Err, "bad value") {
		t.Errorf("bad cell: %+v", rep.Figures[0])
	}
	// No matching figure at all.
	if _, err := Evaluate(map[string]*experiments.Table{"other": short}, refs, Options{}); err == nil {
		t.Error("no matched figures: want error")
	}
	// All reference rows missing under AllowMissingRows: no pairs left.
	rep, err = Evaluate(map[string]*experiments.Table{
		"f": synthetic("f", []string{"A", "B"}, [][]string{{"q", "1", "2"}}),
	}, refs, Options{AllowMissingRows: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Error("zero shared rows: want failure")
	}
}

func TestEvaluateDegenerateSeries(t *testing.T) {
	refs, err := ParseRefTable(`
figure f
tolerance mape=0.1 pearson=0.9
columns A
row x|0
row y|0
`)
	if err != nil {
		t.Fatal(err)
	}
	// All-zero reference: MAPE degenerate, Pearson judges. Simulated
	// side varies so Pearson is defined but the reference is constant —
	// zero variance — so both are degenerate: structural failure.
	rep, err := Evaluate(map[string]*experiments.Table{
		"f": synthetic("f", []string{"A"}, [][]string{{"x", "0"}, {"y", "1"}}),
	}, refs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass || !strings.Contains(rep.Figures[0].Err, "degenerate") {
		t.Errorf("double-degenerate: %+v", rep.Figures[0])
	}
}

func TestReportJSONAndVerdictTable(t *testing.T) {
	tbl := synthetic("f", []string{"A", "B"}, [][]string{
		{"x", "1.01", "2.02"}, {"y", "1.98", "4.1"}, {"z", "9.9", "0.1"},
	})
	rep, err := Evaluate(map[string]*experiments.Table{"f": tbl}, refFixture(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var decoded Report
	if err := json.Unmarshal(rep.JSON(), &decoded); err != nil {
		t.Fatalf("JSON round trip: %v", err)
	}
	if decoded.Pass != rep.Pass || len(decoded.Figures) != len(rep.Figures) {
		t.Errorf("round trip lost data: %+v", decoded)
	}
	rendered := rep.VerdictTable().Render()
	if !strings.Contains(rendered, "FAIL") {
		t.Errorf("verdict table missing FAIL marker:\n%s", rendered)
	}
	if !strings.Contains(rendered, "f") {
		t.Errorf("verdict table missing figure id:\n%s", rendered)
	}
}

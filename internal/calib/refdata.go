package calib

// refTableSrc is the embedded reference dataset: the paper's published
// numbers for the figures this repo regenerates, in the ParseRefTable
// text format. Tolerance policy and provenance are documented inline
// and in DESIGN.md §12.
const refTableSrc = `
# Reference dataset for the SnapBPF reproduction (HotStorage '25).
#
# Provenance. The paper publishes fig3a/fig4 as bar charts without a
# numeric appendix, so the reference values below are read off the
# plots at 0.05 precision (the finest a reader can resolve against the
# printed gridlines). Table 1 is qualitative and transcribes exactly
# (Yes=1, No=0). The overheads figure gives only the "~1-2 ms eBPF
# manager load" band, so its reference pins this repo's reviewed
# results/overheads.csv values as the drift anchor.
#
# Tolerance policy. Bands are set 3-6x above the fit measured at
# recording time, so noise-level drift passes while a single perturbed
# cost-model constant (see TestSabotageAlarm) blows far through them:
#   fig3a measured MAPE 0.013, Pearson 0.9987 -> band 0.15 / 0.95
#   fig4  measured MAPE 0.025, Pearson 0.9974 -> band 0.15 / 0.95
# Columns that are 1.00 by construction (fig3a SnapBPF, fig4 Linux-RA
# normalisation bases) carry no information and are excluded.

# Table 1: mechanism properties per scheme. A flipped Yes/No shows up
# as a MAPE contribution of 1.0 on that cell and a Pearson collapse.
figure table1
tolerance mape=0.10 pearson=0.90
columns On-disk WS serialization|In-memory WS dedup|Stateless VM alloc filtering
row REAP|Yes|No|No
row Faast|Yes|No|No
row FaaSnap|Yes|Yes|No
row SnapBPF|No|Yes|Yes

# Fig 3a: cold-start E2E normalised to SnapBPF (= 1.00), read off the
# plot at 0.05 precision.
figure fig3a
tolerance mape=0.15 pearson=0.95
columns REAP|FaaSnap
row chameleon|1.05|1.10
row cnn|1.30|1.25
row dd|1.95|0.90
row float|0.90|0.95
row image|2.15|0.95
row json|1.00|1.10
row linpack|1.05|1.00
row lr|1.10|1.05
row matmul|1.15|1.00
row pyaes|0.85|0.90
row rnn|1.25|1.30
row video|1.50|0.95
row html|1.00|1.05
row bfs|1.50|1.30
row bert|1.50|1.25

# Fig 4: guest prepare time normalised to Linux-RA (= 1.00), read off
# the plot at 0.05 precision.
figure fig4
tolerance mape=0.15 pearson=0.95
columns PVPTEs|SnapBPF
row chameleon|0.85|0.55
row cnn|0.95|0.50
row dd|0.40|0.35
row float|0.95|0.70
row image|0.40|0.30
row json|0.90|0.55
row linpack|0.70|0.55
row lr|0.85|0.55
row matmul|0.65|0.50
row pyaes|0.90|0.70
row rnn|0.95|0.50
row video|0.55|0.40
row html|0.90|0.60
row bfs|0.95|0.45
row bert|0.95|0.50

# Overheads: eBPF manager offset-load latency in ms. The paper states
# only that load stays in the ~1-2 ms band for the largest working
# sets; the per-function reference pins the reviewed repro values from
# results/overheads.csv so any cost-model drift trips the alarm.
figure overheads
tolerance mape=0.10 pearson=0.98
columns Load (ms)
row chameleon|0.218
row cnn|0.650
row dd|0.099
row float|0.074
row image|0.218
row json|0.146
row linpack|0.153
row lr|0.232
row matmul|0.164
row pyaes|0.050
row rnn|0.609
row video|0.306
row html|0.103
row bfs|2.108
row bert|4.034
`

// References returns the embedded reference dataset. The source text
// is a compile-time constant validated by TestReferencesParse, so a
// parse failure here is a programming error.
func References() []RefFigure {
	refs, err := ParseRefTable(refTableSrc)
	if err != nil {
		panic("calib: embedded reference dataset is malformed: " + err.Error())
	}
	return refs
}

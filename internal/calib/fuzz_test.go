package calib

import (
	"strconv"
	"strings"
	"testing"

	"snapbpf/internal/experiments"
)

// FuzzFitness fuzzes the reference-table parser and drives every
// successfully parsed figure through the MAPE/Pearson kernels and the
// full fitness engine as a self-comparison. The invariants: the parser
// never panics, a figure compared against its own values has MAPE
// exactly 0 and Pearson exactly 1 whenever those are defined, and the
// engine reports that self-comparison as passing unless both kernels
// are degenerate (which it must flag as a structural failure, never a
// silent pass).
func FuzzFitness(f *testing.F) {
	// The shipped reference table is the richest well-formed seed.
	f.Add(refTableSrc)
	// Degenerate shapes the kernels special-case.
	f.Add("figure tiny\ntolerance mape=0.1 pearson=0.9\ncolumns A\nrow x|1\n")
	f.Add("figure single\ntolerance mape=0.5 pearson=0.5\ncolumns A\nrow only|3.25\n")
	f.Add("figure const\ntolerance mape=0.1 pearson=0.9\ncolumns A|B\nrow x|5|5\nrow y|5|5\n")
	f.Add("figure zero\ntolerance mape=0.1 pearson=0.9\ncolumns A\nrow x|0\nrow y|0\n")
	f.Add("figure signs\ntolerance mape=0.9 pearson=-1\ncolumns A|B\nrow x|-1|2\nrow y|3|-4\nrow z|-5|6\n")
	// Suffix handling and booleans.
	f.Add("figure suffix\ntolerance mape=0.2 pearson=0\ncolumns Speedup|WS\nrow a|3.5x|12%\nrow b|No|Yes\n")
	// Malformed inputs the parser must reject without panicking.
	f.Add("# comment only\n")
	f.Add("tolerance mape=0.1 pearson=0.9\n")
	f.Add("figure f\ncolumns A\nrow x|NaN\n")
	f.Fuzz(func(t *testing.T, src string) {
		refs, err := ParseRefTable(src)
		if err != nil {
			return // rejected input; only a panic is a failure here
		}
		for _, rf := range refs {
			var vals []float64
			for _, row := range rf.Rows {
				vals = append(vals, row.Vals...)
			}
			if m, _, err := MAPE(vals, vals); err == nil && m != 0 {
				t.Fatalf("%s: MAPE(x,x) = %v, want exactly 0", rf.ID, m)
			}
			if r, err := Pearson(vals, vals); err == nil && r != 1 {
				t.Fatalf("%s: Pearson(x,x) = %v, want exactly 1", rf.ID, r)
			}

			// Rebuild the figure as a results table and self-evaluate.
			// FormatFloat 'g'/-1 round-trips exactly, so the engine is
			// comparing bit-identical series. The key column gets an
			// empty header, which the parser forbids for reference
			// columns, so it can never be matched as a value column.
			tbl := &experiments.Table{ID: rf.ID, Columns: append([]string{""}, rf.Columns...)}
			for _, row := range rf.Rows {
				cells := []string{row.Key}
				for _, v := range row.Vals {
					cells = append(cells, strconv.FormatFloat(v, 'g', -1, 64))
				}
				tbl.AddRow(cells...)
			}
			rep, err := Evaluate(map[string]*experiments.Table{rf.ID: tbl}, []RefFigure{rf}, Options{})
			if err != nil {
				t.Fatalf("%s: self-evaluate: %v", rf.ID, err)
			}
			ff := rep.Figures[0]
			if ff.Err != "" {
				// Only both-kernels-degenerate may fail structurally.
				if !strings.Contains(ff.Err, "degenerate") {
					t.Fatalf("%s: unexpected structural failure: %s", rf.ID, ff.Err)
				}
				if !ff.MAPEDegenerate || !ff.PearsonDegenerate {
					t.Fatalf("%s: structural failure without double degeneracy: %+v", rf.ID, ff)
				}
				continue
			}
			if !ff.Pass {
				t.Fatalf("%s: self-comparison failed: %+v", rf.ID, ff)
			}
			if !ff.MAPEDegenerate && ff.MAPE != 0 {
				t.Fatalf("%s: self MAPE = %v, want exactly 0", rf.ID, ff.MAPE)
			}
			if !ff.PearsonDegenerate && ff.Pearson != 1 {
				t.Fatalf("%s: self Pearson = %v, want exactly 1", rf.ID, ff.Pearson)
			}
		}
	})
}

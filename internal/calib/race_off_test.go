//go:build !race

package calib

const raceEnabled = false

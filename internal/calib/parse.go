package calib

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// RefRow is one reference row: the row key (function or scheme name,
// matching column 0 of the regenerated table) and one value per
// reference column.
type RefRow struct {
	Key  string
	Vals []float64
}

// RefFigure is the reference data and tolerance band for one figure.
type RefFigure struct {
	// ID matches experiments.Table.ID ("fig3a", "table1", ...).
	ID string
	// MAPETol is the maximum acceptable MAPE for the figure.
	MAPETol float64
	// PearsonMin is the minimum acceptable Pearson r; ignored when the
	// paired series are degenerate (see FigureFitness.PearsonDegenerate).
	PearsonMin float64
	// Columns names the compared columns, matching the regenerated
	// table's header exactly.
	Columns []string
	Rows    []RefRow
}

// ParseValue converts one table cell to a float. Alongside plain
// numbers it accepts the conventions the experiment tables use:
// qualitative Yes/No cells map to 1/0, and "2.31x" / "0.18%" ratio
// suffixes are stripped (the percent cell keeps percent units — both
// sides of a comparison go through this same parser). Non-finite
// values are rejected.
func ParseValue(s string) (float64, error) {
	s = strings.TrimSpace(s)
	switch s {
	case "Yes":
		return 1, nil
	case "No":
		return 0, nil
	}
	s = strings.TrimSuffix(strings.TrimSuffix(s, "x"), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("calib: bad value %q", s)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("calib: non-finite value %q", s)
	}
	return v, nil
}

// ParseRefTable parses the reference-dataset text format:
//
//	# comment (provenance notes)
//	figure fig3a
//	tolerance mape=0.15 pearson=0.95
//	columns REAP|FaaSnap
//	row chameleon|1.05|1.10
//
// Fields within columns/row lines are |-separated because column
// names contain spaces. Every figure needs a tolerance line, a
// columns line before its first row, matching value counts, and no
// duplicate figure IDs, column names or row keys.
func ParseRefTable(src string) ([]RefFigure, error) {
	var figs []RefFigure
	var tolSeen []bool // parallel to figs: figure has a tolerance line
	cur := -1          // index into figs of the figure being parsed
	for ln, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		directive, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		switch directive {
		case "figure":
			if rest == "" {
				return nil, fmt.Errorf("calib: line %d: figure needs an id", ln+1)
			}
			for _, f := range figs {
				if f.ID == rest {
					return nil, fmt.Errorf("calib: line %d: duplicate figure %q", ln+1, rest)
				}
			}
			figs = append(figs, RefFigure{ID: rest})
			tolSeen = append(tolSeen, false)
			cur = len(figs) - 1
		case "tolerance":
			if cur < 0 {
				return nil, fmt.Errorf("calib: line %d: tolerance before figure", ln+1)
			}
			if tolSeen[cur] {
				return nil, fmt.Errorf("calib: line %d: duplicate tolerance for figure %q", ln+1, figs[cur].ID)
			}
			for _, field := range strings.Fields(rest) {
				key, val, ok := strings.Cut(field, "=")
				if !ok {
					return nil, fmt.Errorf("calib: line %d: bad tolerance field %q", ln+1, field)
				}
				v, err := strconv.ParseFloat(val, 64)
				if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
					return nil, fmt.Errorf("calib: line %d: bad tolerance value %q", ln+1, val)
				}
				switch key {
				case "mape":
					if v < 0 {
						return nil, fmt.Errorf("calib: line %d: negative mape tolerance", ln+1)
					}
					figs[cur].MAPETol = v
				case "pearson":
					if v < -1 || v > 1 {
						return nil, fmt.Errorf("calib: line %d: pearson tolerance outside [-1,1]", ln+1)
					}
					figs[cur].PearsonMin = v
				default:
					return nil, fmt.Errorf("calib: line %d: unknown tolerance key %q", ln+1, key)
				}
			}
			tolSeen[cur] = true
		case "columns":
			if cur < 0 {
				return nil, fmt.Errorf("calib: line %d: columns before figure", ln+1)
			}
			if figs[cur].Columns != nil {
				return nil, fmt.Errorf("calib: line %d: duplicate columns for figure %q", ln+1, figs[cur].ID)
			}
			cols := strings.Split(rest, "|")
			for i, c := range cols {
				cols[i] = strings.TrimSpace(c)
				if cols[i] == "" {
					return nil, fmt.Errorf("calib: line %d: empty column name", ln+1)
				}
				for _, prev := range cols[:i] {
					if prev == cols[i] {
						return nil, fmt.Errorf("calib: line %d: duplicate column %q", ln+1, cols[i])
					}
				}
			}
			figs[cur].Columns = cols
		case "row":
			if cur < 0 {
				return nil, fmt.Errorf("calib: line %d: row before figure", ln+1)
			}
			if figs[cur].Columns == nil {
				return nil, fmt.Errorf("calib: line %d: row before columns", ln+1)
			}
			fields := strings.Split(rest, "|")
			if len(fields) != len(figs[cur].Columns)+1 {
				return nil, fmt.Errorf("calib: line %d: row has %d values, figure %q has %d columns",
					ln+1, len(fields)-1, figs[cur].ID, len(figs[cur].Columns))
			}
			key := strings.TrimSpace(fields[0])
			if key == "" {
				return nil, fmt.Errorf("calib: line %d: empty row key", ln+1)
			}
			for _, r := range figs[cur].Rows {
				if r.Key == key {
					return nil, fmt.Errorf("calib: line %d: duplicate row %q in figure %q", ln+1, key, figs[cur].ID)
				}
			}
			vals := make([]float64, len(fields)-1)
			for i, f := range fields[1:] {
				v, err := ParseValue(f)
				if err != nil {
					return nil, fmt.Errorf("calib: line %d: %v", ln+1, err)
				}
				vals[i] = v
			}
			figs[cur].Rows = append(figs[cur].Rows, RefRow{Key: key, Vals: vals})
		default:
			return nil, fmt.Errorf("calib: line %d: unknown directive %q", ln+1, directive)
		}
	}
	for i, f := range figs {
		if len(f.Rows) == 0 {
			return nil, fmt.Errorf("calib: figure %q has no rows", f.ID)
		}
		if !tolSeen[i] {
			return nil, fmt.Errorf("calib: figure %q has no tolerance band", f.ID)
		}
	}
	return figs, nil
}

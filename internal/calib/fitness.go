package calib

import (
	"encoding/json"
	"fmt"
	"strconv"

	"snapbpf/internal/experiments"
)

// Options controls Evaluate.
type Options struct {
	// AllowMissingRows skips reference rows absent from the simulated
	// table instead of failing the figure. Set when the run restricted
	// the function set (-funcs); never set in the CI drift alarm, which
	// runs the full suite.
	AllowMissingRows bool
}

// FigureFitness is the verdict for one figure.
type FigureFitness struct {
	Figure string `json:"figure"`
	// Rows is the number of reference rows matched against the table;
	// Pairs the number of (row, column) cells compared.
	Rows  int `json:"rows"`
	Pairs int `json:"pairs"`
	// MissingRows counts reference rows absent from the table (only
	// nonzero under Options.AllowMissingRows).
	MissingRows int `json:"missing_rows,omitempty"`
	// MAPE skips pairs with a zero reference; MAPEPairs is what
	// remained. MAPEDegenerate marks an all-zero reference (MAPE
	// undefined, judged on Pearson alone).
	MAPE           float64 `json:"mape"`
	MAPEPairs      int     `json:"mape_pairs"`
	MAPEDegenerate bool    `json:"mape_degenerate,omitempty"`
	MAPETol        float64 `json:"mape_tol"`
	// Pearson is r over all compared pairs; PearsonDegenerate marks a
	// zero-variance or single-pair series (r undefined, judged on MAPE
	// alone).
	Pearson           float64 `json:"pearson"`
	PearsonDegenerate bool    `json:"pearson_degenerate,omitempty"`
	PearsonMin        float64 `json:"pearson_min"`
	Pass              bool    `json:"pass"`
	// Err explains a structural failure (missing column/rows); when
	// set, Pass is false and the stats fields are zero.
	Err string `json:"error,omitempty"`
}

// Report is the full fitness verdict, serialised to results/fitness.json.
type Report struct {
	Pass    bool            `json:"pass"`
	Figures []FigureFitness `json:"figures"`
}

// Evaluate scores each regenerated table against its reference figure.
// Reference figures with no table in the run are skipped (the run
// chose a subset of experiments); evaluating zero figures is an error.
// Pairing is by (row key, column name), so row order and column order
// of the table cannot affect the result.
func Evaluate(tables map[string]*experiments.Table, refs []RefFigure, opts Options) (*Report, error) {
	rep := &Report{Pass: true}
	for _, ref := range refs {
		tbl := tables[ref.ID]
		if tbl == nil {
			continue
		}
		rep.Figures = append(rep.Figures, evalFigure(tbl, ref, opts))
	}
	if len(rep.Figures) == 0 {
		return nil, fmt.Errorf("calib: no reference figure matches the run's tables")
	}
	for _, f := range rep.Figures {
		if !f.Pass {
			rep.Pass = false
		}
	}
	return rep, nil
}

func evalFigure(tbl *experiments.Table, ref RefFigure, opts Options) FigureFitness {
	ff := FigureFitness{
		Figure:     ref.ID,
		MAPETol:    ref.MAPETol,
		PearsonMin: ref.PearsonMin,
	}
	failf := func(format string, args ...any) FigureFitness {
		ff.Err = fmt.Sprintf(format, args...)
		return ff
	}

	// Map reference columns to table column indices by name.
	colIdx := make([]int, len(ref.Columns))
	for i, want := range ref.Columns {
		colIdx[i] = -1
		for j, have := range tbl.Columns {
			if have == want {
				colIdx[i] = j
				break
			}
		}
		if colIdx[i] < 0 {
			return failf("table %s has no column %q", tbl.ID, want)
		}
	}

	var refVals, simVals []float64
	for _, row := range ref.Rows {
		var cells []string
		for _, r := range tbl.Rows {
			if len(r) > 0 && r[0] == row.Key {
				cells = r
				break
			}
		}
		if cells == nil {
			if opts.AllowMissingRows {
				ff.MissingRows++
				continue
			}
			return failf("table %s has no row %q", tbl.ID, row.Key)
		}
		ff.Rows++
		for i, ci := range colIdx {
			if ci >= len(cells) {
				return failf("table %s row %q is short of column %q", tbl.ID, row.Key, ref.Columns[i])
			}
			v, err := ParseValue(cells[ci])
			if err != nil {
				return failf("table %s row %q column %q: %v", tbl.ID, row.Key, ref.Columns[i], err)
			}
			refVals = append(refVals, row.Vals[i])
			simVals = append(simVals, v)
		}
	}
	if len(refVals) == 0 {
		return failf("table %s shares no rows with the reference", tbl.ID)
	}
	ff.Pairs = len(refVals)

	mape, used, err := MAPE(refVals, simVals)
	if err != nil {
		// Only reachable when every reference value is zero: MAPE is
		// undefined there, not failing.
		ff.MAPEDegenerate = true
	} else {
		ff.MAPE, ff.MAPEPairs = mape, used
	}
	r, err := Pearson(refVals, simVals)
	if err != nil {
		ff.PearsonDegenerate = true
	} else {
		ff.Pearson = r
	}
	if ff.MAPEDegenerate && ff.PearsonDegenerate {
		return failf("table %s: both MAPE and Pearson are degenerate", tbl.ID)
	}
	ff.Pass = (ff.MAPEDegenerate || ff.MAPE <= ff.MAPETol) &&
		(ff.PearsonDegenerate || ff.Pearson >= ff.PearsonMin)
	return ff
}

// JSON renders the report as stable, indented JSON with a trailing
// newline, suitable for byte comparison across runs.
func (r *Report) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic("calib: fitness report marshal: " + err.Error())
	}
	return append(b, '\n')
}

// VerdictTable renders the report as a human-readable table using the
// experiment table formatter.
func (r *Report) VerdictTable() *experiments.Table {
	t := &experiments.Table{
		ID:      "fitness",
		Title:   "Simulated figures vs the paper's published values",
		Note:    "MAPE over nonzero-reference pairs; Pearson r over all pairs; see DESIGN.md §12",
		Columns: []string{"Figure", "rows", "pairs", "MAPE", "tol", "Pearson r", "min r", "verdict"},
	}
	f4 := func(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
	for _, f := range r.Figures {
		mape, pear := f4(f.MAPE), f4(f.Pearson)
		if f.MAPEDegenerate {
			mape = "n/a"
		}
		if f.PearsonDegenerate {
			pear = "n/a"
		}
		verdict := "ok"
		if !f.Pass {
			verdict = "FAIL"
			if f.Err != "" {
				verdict = "FAIL: " + f.Err
			}
		}
		t.AddRow(f.Figure, strconv.Itoa(f.Rows), strconv.Itoa(f.Pairs),
			mape, f4(f.MAPETol), pear, f4(f.PearsonMin), verdict)
	}
	return t
}

package calib

import (
	"strings"
	"testing"
)

func TestParseValue(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"1.25", 1.25},
		{" 0.5 ", 0.5},
		{"Yes", 1},
		{"No", 0},
		{"2.31x", 2.31},
		{"0.18%", 0.18},
		{"-3", -3},
		{"1e-3", 0.001},
	}
	for _, c := range cases {
		got, err := ParseValue(c.in)
		if err != nil {
			t.Errorf("ParseValue(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseValue(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "abc", "NaN", "+Inf", "-Inf", "1.2.3"} {
		if _, err := ParseValue(bad); err == nil {
			t.Errorf("ParseValue(%q): want error", bad)
		}
	}
}

func TestParseRefTable(t *testing.T) {
	src := `
# provenance comment
figure f1
tolerance mape=0.1 pearson=0.9
columns A|B two
row x|1|2
row y|Yes|No

figure f2
tolerance mape=0.2
columns C
row z|3.5x
`
	figs, err := ParseRefTable(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("got %d figures, want 2", len(figs))
	}
	f1 := figs[0]
	if f1.ID != "f1" || f1.MAPETol != 0.1 || f1.PearsonMin != 0.9 {
		t.Errorf("f1 header = %+v", f1)
	}
	if len(f1.Columns) != 2 || f1.Columns[1] != "B two" {
		t.Errorf("f1 columns = %v", f1.Columns)
	}
	if len(f1.Rows) != 2 || f1.Rows[1].Key != "y" || f1.Rows[1].Vals[0] != 1 || f1.Rows[1].Vals[1] != 0 {
		t.Errorf("f1 rows = %+v", f1.Rows)
	}
	if figs[1].Rows[0].Vals[0] != 3.5 {
		t.Errorf("f2 row = %+v", figs[1].Rows[0])
	}
}

func TestParseRefTableErrors(t *testing.T) {
	cases := map[string]string{
		"row before figure":    "row x|1\n",
		"columns before fig":   "columns A\n",
		"tolerance before fig": "tolerance mape=0.1\n",
		"no figure id":         "figure\n",
		"duplicate figure":     "figure f\ntolerance mape=1\ncolumns A\nrow x|1\nfigure f\n",
		"row before columns":   "figure f\ntolerance mape=1\nrow x|1\n",
		"value count mismatch": "figure f\ntolerance mape=1\ncolumns A|B\nrow x|1\n",
		"duplicate row":        "figure f\ntolerance mape=1\ncolumns A\nrow x|1\nrow x|2\n",
		"duplicate column":     "figure f\ntolerance mape=1\ncolumns A|A\n",
		"empty column":         "figure f\ntolerance mape=1\ncolumns A||B\n",
		"empty row key":        "figure f\ntolerance mape=1\ncolumns A\nrow |1\n",
		"bad value":            "figure f\ntolerance mape=1\ncolumns A\nrow x|wat\n",
		"non-finite value":     "figure f\ntolerance mape=1\ncolumns A\nrow x|NaN\n",
		"bad tolerance field":  "figure f\ntolerance mape\ncolumns A\nrow x|1\n",
		"bad tolerance value":  "figure f\ntolerance mape=wat\ncolumns A\nrow x|1\n",
		"negative mape":        "figure f\ntolerance mape=-1\ncolumns A\nrow x|1\n",
		"pearson out of range": "figure f\ntolerance pearson=2\ncolumns A\nrow x|1\n",
		"unknown tol key":      "figure f\ntolerance frobs=1\ncolumns A\nrow x|1\n",
		"duplicate tolerance":  "figure f\ntolerance mape=1\ntolerance mape=2\ncolumns A\nrow x|1\n",
		"duplicate columns":    "figure f\ntolerance mape=1\ncolumns A\ncolumns B\nrow x|1\n",
		"unknown directive":    "figure f\nfrobnicate\n",
		"figure without rows":  "figure f\ntolerance mape=1\ncolumns A\n",
		"missing tolerance":    "figure f\ncolumns A\nrow x|1\n",
	}
	for name, src := range cases {
		if _, err := ParseRefTable(src); err == nil {
			t.Errorf("%s: want error for %q", name, src)
		}
	}
}

// The embedded dataset must parse and carry the four figures the CI
// drift alarm evaluates.
func TestReferencesParse(t *testing.T) {
	refs := References()
	want := []string{"table1", "fig3a", "fig4", "overheads"}
	got := map[string]RefFigure{}
	for _, f := range refs {
		got[f.ID] = f
	}
	for _, id := range want {
		f, ok := got[id]
		if !ok {
			t.Errorf("embedded dataset is missing figure %q (have %d of %v)", id, len(refs), want)
			continue
		}
		if f.MAPETol <= 0 {
			t.Errorf("%s: MAPE tolerance %v not positive", id, f.MAPETol)
		}
		if f.PearsonMin <= 0 {
			t.Errorf("%s: Pearson minimum %v not positive", id, f.PearsonMin)
		}
		if id != "table1" && len(f.Rows) != 15 {
			t.Errorf("%s: %d rows, want the 15-function suite", id, len(f.Rows))
		}
	}
	if strings.Count(refTableSrc, "#") < 5 {
		t.Error("embedded dataset lost its provenance comments")
	}
}

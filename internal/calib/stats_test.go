package calib

import (
	"math"
	"math/rand"
	"testing"
)

// series returns a deterministic pseudo-random series including
// negative values and an exact zero (which MAPE must skip).
func series(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = (rng.Float64() - 0.3) * 100
	}
	xs[n/2] = 0
	return xs
}

// permute returns xs reordered by a seeded shuffle.
func permute(seed int64, xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	rand.New(rand.NewSource(seed)).Shuffle(len(out), func(i, j int) {
		out[i], out[j] = out[j], out[i]
	})
	return out
}

func TestMAPEIdentity(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		xs := series(seed, 31)
		m, used, err := MAPE(xs, xs)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if m != 0 {
			t.Errorf("seed %d: MAPE(x,x) = %v, want exactly 0", seed, m)
		}
		if used != len(xs)-1 { // the one zero reference is skipped
			t.Errorf("seed %d: used %d pairs, want %d", seed, used, len(xs)-1)
		}
	}
}

func TestPearsonIdentity(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		xs := series(seed, 31)
		r, err := Pearson(xs, xs)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if r != 1 {
			t.Errorf("seed %d: Pearson(x,x) = %v, want exactly 1", seed, r)
		}
		// Negation flips each term's sign, which reverses the sorted
		// summation order, so r is within rounding of -1 rather than
		// bit-exact (the clamp guarantees it never undershoots).
		neg := make([]float64, len(xs))
		for i, x := range xs {
			neg[i] = -x
		}
		r, err = Pearson(xs, neg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if r < -1 || r > -1+1e-12 {
			t.Errorf("seed %d: Pearson(x,-x) = %v, want -1 within rounding", seed, r)
		}
	}
}

// The kernels sum sorted terms, so reordering the paired rows — which
// is what reordering table rows or scheme columns does to the
// flattened series — must give bit-identical results, not merely close
// ones.
func TestKernelsPermutationInvariant(t *testing.T) {
	ref := series(10, 41)
	sim := series(11, 41)
	wantM, wantUsed, err := MAPE(ref, sim)
	if err != nil {
		t.Fatal(err)
	}
	wantR, err := Pearson(ref, sim)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(20); seed < 25; seed++ {
		idx := make([]int, len(ref))
		for i := range idx {
			idx[i] = i
		}
		rand.New(rand.NewSource(seed)).Shuffle(len(idx), func(i, j int) {
			idx[i], idx[j] = idx[j], idx[i]
		})
		pRef := make([]float64, len(ref))
		pSim := make([]float64, len(sim))
		for i, j := range idx {
			pRef[i], pSim[i] = ref[j], sim[j]
		}
		m, used, err := MAPE(pRef, pSim)
		if err != nil {
			t.Fatal(err)
		}
		if m != wantM || used != wantUsed {
			t.Errorf("seed %d: permuted MAPE = (%v, %d), want exactly (%v, %d)", seed, m, used, wantM, wantUsed)
		}
		r, err := Pearson(pRef, pSim)
		if err != nil {
			t.Fatal(err)
		}
		if r != wantR {
			t.Errorf("seed %d: permuted Pearson = %v, want exactly %v", seed, r, wantR)
		}
	}
}

func TestPearsonSymmetric(t *testing.T) {
	x := series(30, 23)
	y := series(31, 23)
	rxy, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	ryx, err := Pearson(y, x)
	if err != nil {
		t.Fatal(err)
	}
	if rxy != ryx {
		t.Errorf("Pearson(x,y) = %v != Pearson(y,x) = %v", rxy, ryx)
	}
}

func TestMAPEGuards(t *testing.T) {
	if _, _, err := MAPE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, _, err := MAPE(nil, nil); err == nil {
		t.Error("empty series: want error")
	}
	if _, _, err := MAPE([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("all-zero reference: want error")
	}
	if _, _, err := MAPE([]float64{math.NaN()}, []float64{1}); err == nil {
		t.Error("NaN reference: want error")
	}
	if _, _, err := MAPE([]float64{1}, []float64{math.Inf(1)}); err == nil {
		t.Error("Inf simulated: want error")
	}
	m, used, err := MAPE([]float64{2, 0}, []float64{1, 99})
	if err != nil {
		t.Fatal(err)
	}
	if m != 0.5 || used != 1 {
		t.Errorf("MAPE = (%v, %d), want (0.5, 1): zero-ref pair must be skipped", m, used)
	}
}

func TestPearsonGuards(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err == nil {
		t.Error("single point: want error")
	}
	if _, err := Pearson([]float64{3, 3, 3}, []float64{1, 2, 3}); err == nil {
		t.Error("constant x: want error")
	}
	if _, err := Pearson([]float64{1, 2, 3}, []float64{5, 5, 5}); err == nil {
		t.Error("constant y: want error")
	}
	if _, err := Pearson([]float64{1, math.NaN()}, []float64{1, 2}); err == nil {
		t.Error("NaN: want error")
	}
	// Mixed-sign anti-correlated pair stays within [-1, 1].
	r, err := Pearson([]float64{-5, 0, 5}, []float64{4, 0, -4})
	if err != nil {
		t.Fatal(err)
	}
	if r < -1 || r > -1+1e-12 {
		t.Errorf("anti-correlated series: r = %v, want -1 within rounding", r)
	}
}

// Package analysis is the registry of the snapbpf-lint analyzer
// suite: project-specific go/analysis passes that prove, at build
// time, the determinism and observer contracts the runtime harness
// (internal/check) verifies dynamically. See DESIGN.md §9.
package analysis

import (
	"golang.org/x/tools/go/analysis"

	"snapbpf/internal/analysis/passes/allowcheck"
	"snapbpf/internal/analysis/passes/clusterepoch"
	"snapbpf/internal/analysis/passes/detnondet"
	"snapbpf/internal/analysis/passes/maporder"
	"snapbpf/internal/analysis/passes/observerorder"
	"snapbpf/internal/analysis/passes/simtime"
	"snapbpf/internal/analysis/passes/unitsafety"
)

// All returns every analyzer in the suite, in a fixed order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detnondet.Analyzer,
		clusterepoch.Analyzer,
		maporder.Analyzer,
		simtime.Analyzer,
		observerorder.Analyzer,
		unitsafety.Analyzer,
		allowcheck.Analyzer,
	}
}

// Package otherpkg checks that rule 1 (nil-guarding) applies outside
// pagecache while rule 2 (kprobe ordering) does not.
package otherpkg

import "kprobe"

// Observer is this package's own observer interface.
type Observer interface {
	EventScheduled(at int64)
}

type engine struct {
	obs    Observer
	probes *kprobe.Registry
}

func (e *engine) unguarded(at int64) {
	e.obs.EventScheduled(at) // want `observer hook e\.obs\.EventScheduled is not nil-guarded`
}

func (e *engine) fireThenObserveOK(at int64) {
	// Not pagecache: dispatch-before-hook ordering is not constrained.
	e.probes.Fire("hook", 0, 0)
	if e.obs != nil {
		e.obs.EventScheduled(at)
	}
}

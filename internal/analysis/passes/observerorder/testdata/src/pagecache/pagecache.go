// Package pagecache exercises both observer rules: nil-guarding of
// hook calls (everywhere) and PageInserted-before-kprobe-dispatch
// (specific to this package).
package pagecache

import "kprobe"

// Observer receives cache events; a nil observer disables observation.
type Observer interface {
	PageInserted(idx int64)
	PageEvicted(idx int64)
}

type cache struct {
	obs    Observer
	probes *kprobe.Registry
}

func (c *cache) unguarded(idx int64) {
	c.obs.PageInserted(idx) // want `observer hook c\.obs\.PageInserted is not nil-guarded`
}

func (c *cache) guardedOK(idx int64) {
	if c.obs != nil {
		c.obs.PageInserted(idx)
	}
}

func (c *cache) guardedConjunctOK(idx int64) {
	if idx >= 0 && c.obs != nil {
		c.obs.PageEvicted(idx)
	}
}

func (c *cache) localVarGuardOK(idx int64) {
	if obs := c.obs; obs != nil {
		obs.PageEvicted(idx)
	}
}

func (c *cache) wrongGuard(idx int64) {
	if idx > 0 {
		c.obs.PageEvicted(idx) // want `observer hook c\.obs\.PageEvicted is not nil-guarded`
	}
}

// insertWrongOrder reproduces the PR 3 bug: the kprobe fires before
// the observer sees the insertion, so a recursive prefetch insert
// reaches the harness out of causal order.
func (c *cache) insertWrongOrder(idx int64) {
	c.probes.Fire("add_to_page_cache_lru", 1, uint64(idx)) // want `kprobe dispatch precedes the PageInserted observer`
	if c.obs != nil {
		c.obs.PageInserted(idx)
	}
}

func (c *cache) insertRightOrderOK(idx int64) {
	if c.obs != nil {
		c.obs.PageInserted(idx)
	}
	c.probes.Fire("add_to_page_cache_lru", 1, uint64(idx))
}

func (c *cache) fireAloneOK(idx int64) {
	// Dispatch without observation in the same function is fine; the
	// ordering contract binds only functions doing both.
	c.probes.Fire("add_to_page_cache_lru", 1, uint64(idx))
}

func (c *cache) suppressed(idx int64) {
	c.obs.PageEvicted(idx) //lint:allow observerorder golden test of the suppression path
}

//lint:allow observerorder this directive covers no diagnostic // want `unused //lint:allow observerorder directive`
func clean() {}

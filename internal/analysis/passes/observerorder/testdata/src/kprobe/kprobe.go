// Package kprobe is a miniature stand-in for snapbpf/internal/kprobe.
package kprobe

// Registry dispatches kprobe events to attached programs.
type Registry struct{}

// Fire dispatches the named hook.
func (r *Registry) Fire(hook string, a, b uint64) {}

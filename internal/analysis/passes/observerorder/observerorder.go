// Package observerorder enforces the observer contracts of the
// correctness harness (internal/check).
//
// Rule 1 (everywhere): a call through a value of any named `Observer`
// interface type must be nil-guarded — observation is optional, a nil
// observer is the fast path, and an unguarded hook is a latent panic
// on every configuration that doesn't install the harness. The
// recognized guard is an enclosing `if x != nil { ... x.Hook(...) }`
// (possibly with further && conjuncts), matching the receiver
// expression structurally. Code using other dominance patterns (early
// return) must carry a //lint:allow observerorder directive.
//
// Rule 2 (package pagecache only): in any function that both invokes
// the PageInserted observer hook and dispatches kprobes
// (kprobe.Registry.Fire), PageInserted must come first. An attached
// eBPF program can recursively insert further pages, so firing the
// probe first delivers cache events to the harness out of causal
// order — the exact bug PR 3 found at runtime.
package observerorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"snapbpf/internal/analysis/allow"
	"snapbpf/internal/analysis/lintutil"
)

// Analyzer is the observerorder pass.
const name = "observerorder"

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      "require nil-guarded observer hooks, and PageInserted before kprobe dispatch in pagecache",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// isObserver reports whether t is a named interface type called
// Observer, whichever package defines it.
func isObserver(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok || n.Obj().Name() != "Observer" {
		return false
	}
	_, isIface := n.Underlying().(*types.Interface)
	return isIface
}

// fnEvent is a call of interest with its enclosing function node.
type fnEvent struct {
	fn  ast.Node // *ast.FuncDecl or *ast.FuncLit
	pos token.Pos
}

func run(pass *analysis.Pass) (interface{}, error) {
	tr := allow.New(pass, name)
	defer tr.Finish()

	inPagecache := lintutil.PkgBase(pass.Pkg.Path()) == "pagecache"
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	var fires, inserts []fnEvent
	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		call := n.(*ast.CallExpr)
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recvT := pass.TypesInfo.TypeOf(sel.X)
		if isObserver(recvT) {
			if !guarded(pass, stack, sel.X) {
				tr.Reportf(call.Pos(),
					"observer hook %s.%s is not nil-guarded; wrap it in `if %s != nil { ... }`",
					lintutil.ExprString(pass.Fset, sel.X), sel.Sel.Name,
					lintutil.ExprString(pass.Fset, sel.X))
			}
			if inPagecache && sel.Sel.Name == "PageInserted" {
				inserts = append(inserts, fnEvent{enclosingFunc(stack), call.Pos()})
			}
		}
		if inPagecache && sel.Sel.Name == "Fire" &&
			lintutil.IsNamed(recvT, "kprobe", "Registry", true) {
			fires = append(fires, fnEvent{enclosingFunc(stack), call.Pos()})
		}
		return true
	})

	// Rule 2: within each function containing both, every kprobe
	// dispatch must follow the first PageInserted invocation.
	sort.Slice(fires, func(i, j int) bool { return fires[i].pos < fires[j].pos })
	for _, f := range fires {
		first := token.NoPos
		for _, in := range inserts {
			if in.fn == f.fn && (first == token.NoPos || in.pos < first) {
				first = in.pos
			}
		}
		if first != token.NoPos && f.pos < first {
			tr.Reportf(f.pos,
				"kprobe dispatch precedes the PageInserted observer in this function; observers must see cache events in causal order (fire PageInserted before Registry.Fire)")
		}
	}
	return nil, nil
}

// enclosingFunc returns the innermost function declaration or literal
// on the stack, or nil at file scope.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// guarded reports whether the call at the top of stack sits inside the
// then-branch of an if whose condition includes `recv != nil`.
func guarded(pass *analysis.Pass, stack []ast.Node, recv ast.Expr) bool {
	want := lintutil.ExprString(pass.Fset, recv)
	for i := len(stack) - 2; i >= 0; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok || stack[i+1] != ifs.Body {
			continue
		}
		if condGuards(pass, ifs.Cond, want) {
			return true
		}
	}
	return false
}

// condGuards reports whether cond (or any && conjunct of it) is
// `want != nil` or `nil != want`.
func condGuards(pass *analysis.Pass, cond ast.Expr, want string) bool {
	switch e := cond.(type) {
	case *ast.ParenExpr:
		return condGuards(pass, e.X, want)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			return condGuards(pass, e.X, want) || condGuards(pass, e.Y, want)
		case token.NEQ:
			x := lintutil.ExprString(pass.Fset, e.X)
			y := lintutil.ExprString(pass.Fset, e.Y)
			return (x == want && y == "nil") || (y == want && x == "nil")
		}
	}
	return false
}

package observerorder_test

import (
	"testing"

	"snapbpf/internal/analysis/analysistest"
	"snapbpf/internal/analysis/passes/observerorder"
)

func TestObserverOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), observerorder.Analyzer, "pagecache", "otherpkg")
}

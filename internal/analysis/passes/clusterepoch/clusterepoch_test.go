package clusterepoch_test

import (
	"testing"

	"snapbpf/internal/analysis/analysistest"
	"snapbpf/internal/analysis/passes/clusterepoch"
)

func TestClusterEpoch(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), clusterepoch.Analyzer, "cluster", "otherpkg")
}

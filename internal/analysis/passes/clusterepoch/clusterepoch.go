// Package clusterepoch enforces the warm-pool timer contracts of
// internal/cluster.
//
// The cluster simulator parks warm sandboxes and arms idle-eviction
// timers through engine.Schedule. A timer callback runs arbitrarily
// far in virtual time from when it was armed: by then the sandbox may
// have been taken, evicted by the budget, or re-parked. The PR 8
// idiom defends against that with an epoch counter — the pool bumps
// v.epoch on every ownership change, the closure captures the epoch
// at arm time and re-checks it before touching pool state.
//
// Rule 1: inside any function literal passed to engine.Schedule (or
// ScheduleAt), a warm-pool mutation — a mutating warmPool method
// call, or a write to a warmPool/warmVM field — must be dominated by
// an epoch comparison (`v.epoch == epoch` as an if condition or an
// earlier && conjunct). A stale timer that skips the check evicts a
// sandbox that is busy serving, or double-frees one already evicted.
//
// Rule 2: inside those same closures, a call through a value of a
// named `Observer` interface type must be nil-guarded *within the
// closure*. Observation is optional and the timer fires long after
// arm time, so a nil check outside the literal proves nothing about
// the state when it runs.
//
// Code using other dominance patterns (early return on a stale epoch)
// must carry a //lint:allow clusterepoch directive with a reason.
package clusterepoch

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"snapbpf/internal/analysis/allow"
	"snapbpf/internal/analysis/lintutil"
)

// Analyzer is the clusterepoch pass.
const name = "clusterepoch"

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      "require epoch guards on warm-pool timer callbacks and nil-guarded observers in cluster Schedule closures",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// poolReaders are the warmPool methods that do not mutate the pool;
// every other method call on a warmPool receiver counts as a
// mutation.
var poolReaders = map[string]bool{
	"total":   true,
	"hasIdle": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	tr := allow.New(pass, name)
	// Finish must run even for exempt packages so that a stray
	// //lint:allow clusterepoch there is reported as unused.
	defer tr.Finish()
	if lintutil.PkgBase(pass.Pkg.Path()) != "cluster" {
		return nil, nil
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.WithStack([]ast.Node{
		(*ast.CallExpr)(nil),
		(*ast.AssignStmt)(nil),
		(*ast.IncDecStmt)(nil),
	}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		fl := scheduleClosureIndex(pass, stack)
		if fl < 0 {
			return true
		}
		switch v := n.(type) {
		case *ast.CallExpr:
			sel, ok := v.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recvT := pass.TypesInfo.TypeOf(sel.X)
			if isPoolType(recvT) && !poolReaders[sel.Sel.Name] {
				checkEpochGuard(pass, tr, stack, fl, v.Pos(),
					lintutil.ExprString(pass.Fset, sel.X)+"."+sel.Sel.Name)
			}
			if isObserver(recvT) && !nilGuarded(pass, stack, fl, sel.X) {
				tr.Reportf(v.Pos(),
					"observer hook %s.%s in a Schedule closure is not nil-guarded inside the closure; wrap it in `if %s != nil { ... }`",
					lintutil.ExprString(pass.Fset, sel.X), sel.Sel.Name,
					lintutil.ExprString(pass.Fset, sel.X))
			}
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				if sel, ok := lhs.(*ast.SelectorExpr); ok && isPoolState(pass.TypesInfo.TypeOf(sel.X)) {
					checkEpochGuard(pass, tr, stack, fl, v.Pos(),
						lintutil.ExprString(pass.Fset, lhs))
				}
			}
		case *ast.IncDecStmt:
			if sel, ok := v.X.(*ast.SelectorExpr); ok && isPoolState(pass.TypesInfo.TypeOf(sel.X)) {
				checkEpochGuard(pass, tr, stack, fl, v.Pos(),
					lintutil.ExprString(pass.Fset, v.X))
			}
		}
		return true
	})
	return nil, nil
}

// checkEpochGuard reports when the pool mutation at pos is not
// dominated by an epoch comparison within the Schedule closure.
func checkEpochGuard(pass *analysis.Pass, tr *allow.Tracker, stack []ast.Node, fl int, pos token.Pos, what string) {
	if epochGuarded(stack, fl, pos) {
		return
	}
	tr.Reportf(pos,
		"warm-pool mutation %s in a scheduled timer callback is not epoch-guarded; compare the captured epoch (e.g. `v.epoch == epoch`) before touching pool state",
		what)
}

// scheduleClosureIndex returns the stack index of the innermost
// function literal passed as an argument to an engine Schedule /
// ScheduleAt call, or -1.
func scheduleClosureIndex(pass *analysis.Pass, stack []ast.Node) int {
	for i := len(stack) - 1; i > 0; i-- {
		if _, ok := stack[i].(*ast.FuncLit); !ok {
			continue
		}
		call, ok := stack[i-1].(*ast.CallExpr)
		if !ok {
			continue
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Schedule" && sel.Sel.Name != "ScheduleAt") {
			continue
		}
		if !lintutil.IsNamed(pass.TypesInfo.TypeOf(sel.X), "sim", "Engine", true) {
			continue
		}
		for _, arg := range call.Args {
			if arg == stack[i] {
				return i
			}
		}
	}
	return -1
}

// isPoolType reports whether t is cluster.warmPool (any package whose
// base is cluster, seen through pointers).
func isPoolType(t types.Type) bool {
	return lintutil.IsNamed(t, "cluster", "warmPool", true)
}

// isPoolState reports whether t is pool state a timer may corrupt:
// the pool itself or a parked sandbox.
func isPoolState(t types.Type) bool {
	return isPoolType(t) || lintutil.IsNamed(t, "cluster", "warmVM", true)
}

// isObserver reports whether t is a named interface type called
// Observer, whichever package defines it.
func isObserver(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok || n.Obj().Name() != "Observer" {
		return false
	}
	_, isIface := n.Underlying().(*types.Interface)
	return isIface
}

// epochGuarded reports whether the node at the top of stack sits
// inside an if (body or condition) whose condition compares an epoch
// before pos. Ancestors outside the Schedule closure (below fl) do
// not count: the guard must run when the timer fires.
func epochGuarded(stack []ast.Node, fl int, pos token.Pos) bool {
	for i := len(stack) - 2; i >= fl; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		child := stack[i+1]
		if child != ifs.Body && !within(ifs.Cond, child) {
			continue // else-branch or init statement
		}
		if condHasEpochCmp(ifs.Cond, pos) {
			return true
		}
	}
	return false
}

// within reports whether n is cond or nested inside it.
func within(cond ast.Expr, n ast.Node) bool {
	found := false
	ast.Inspect(cond, func(x ast.Node) bool {
		if x == n {
			found = true
		}
		return !found
	})
	return found
}

// condHasEpochCmp reports whether cond contains an ==/!= comparison
// mentioning an epoch (field selector or captured local) that is
// evaluated before pos — left of the mutation in the && chain, or
// anywhere in the condition when the mutation is in the body.
func condHasEpochCmp(cond ast.Expr, pos token.Pos) bool {
	found := false
	ast.Inspect(cond, func(x ast.Node) bool {
		b, ok := x.(*ast.BinaryExpr)
		if !ok || (b.Op != token.EQL && b.Op != token.NEQ) {
			return !found
		}
		if b.End() <= pos && (mentionsEpoch(b.X) || mentionsEpoch(b.Y)) {
			found = true
		}
		return !found
	})
	return found
}

// mentionsEpoch matches `x.epoch` or a plain `epoch` local.
func mentionsEpoch(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.SelectorExpr:
		return v.Sel.Name == "epoch"
	case *ast.Ident:
		return v.Name == "epoch"
	}
	return false
}

// nilGuarded reports whether the observer call at the top of stack is
// inside the then-branch of an if within the closure whose condition
// includes `recv != nil`.
func nilGuarded(pass *analysis.Pass, stack []ast.Node, fl int, recv ast.Expr) bool {
	want := lintutil.ExprString(pass.Fset, recv)
	for i := len(stack) - 2; i >= fl; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok || stack[i+1] != ifs.Body {
			continue
		}
		if condGuardsNil(pass, ifs.Cond, want) {
			return true
		}
	}
	return false
}

// condGuardsNil reports whether cond (or any && conjunct) is
// `want != nil` or `nil != want`.
func condGuardsNil(pass *analysis.Pass, cond ast.Expr, want string) bool {
	switch e := cond.(type) {
	case *ast.ParenExpr:
		return condGuardsNil(pass, e.X, want)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			return condGuardsNil(pass, e.X, want) || condGuardsNil(pass, e.Y, want)
		case token.NEQ:
			x := lintutil.ExprString(pass.Fset, e.X)
			y := lintutil.ExprString(pass.Fset, e.Y)
			return (x == want && y == "nil") || (y == want && x == "nil")
		}
	}
	return false
}

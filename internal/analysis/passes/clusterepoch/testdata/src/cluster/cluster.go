// Package cluster exercises both clusterepoch rules: epoch guards on
// warm-pool timer callbacks and nil-guarded observers inside
// Schedule closures.
package cluster

import "sim"

type warmVM struct {
	epoch int
	idle  bool
}

type warmPool struct {
	idle    []*warmVM
	serving int
}

func (w *warmPool) total() int               { return len(w.idle) + w.serving }
func (w *warmPool) hasIdle() bool            { return len(w.idle) > 0 }
func (w *warmPool) remove(v *warmVM) bool    { return true }
func (w *warmPool) park(v *warmVM)           {}
func (w *warmPool) evictOldestIdle() *warmVM { return nil }

type host struct {
	pool warmPool
	obs  sim.Observer
}

// guardedBodyOK is the canonical idiom: the epoch comparison
// dominates the mutation in the if body.
func guardedBodyOK(eng *sim.Engine, ho *host, v *warmVM) {
	epoch := v.epoch
	eng.Schedule(10, func() {
		if v.epoch == epoch {
			ho.pool.remove(v)
		}
	})
}

// guardedConjunctOK mirrors the real park() timer: the mutation is a
// later && conjunct of the same condition as the epoch check.
func guardedConjunctOK(eng *sim.Engine, ho *host, v *warmVM) {
	epoch := v.epoch
	eng.Schedule(10, func() {
		if v.idle && v.epoch == epoch && ho.pool.remove(v) {
			_ = v
		}
	})
}

// unguardedMutation evicts without checking the epoch: a stale timer
// would tear down a sandbox that has since been taken.
func unguardedMutation(eng *sim.Engine, ho *host, v *warmVM) {
	eng.Schedule(10, func() {
		ho.pool.remove(v) // want `warm-pool mutation ho\.pool\.remove in a scheduled timer callback is not epoch-guarded`
	})
}

// wrongOrderConjunct runs the mutation before the epoch comparison;
// short-circuit order means the pool is touched on stale timers too.
func wrongOrderConjunct(eng *sim.Engine, ho *host, v *warmVM) {
	epoch := v.epoch
	eng.Schedule(10, func() {
		if ho.pool.remove(v) && v.epoch == epoch { // want `warm-pool mutation ho\.pool\.remove in a scheduled timer callback is not epoch-guarded`
			_ = v
		}
	})
}

// unguardedFieldWrite mutates parked-sandbox state directly.
func unguardedFieldWrite(eng *sim.Engine, v *warmVM) {
	eng.Schedule(10, func() {
		v.idle = false // want `warm-pool mutation v\.idle in a scheduled timer callback is not epoch-guarded`
	})
}

// unguardedIncDec bumps the epoch itself without a guard.
func unguardedIncDec(eng *sim.Engine, v *warmVM) {
	eng.Schedule(10, func() {
		v.epoch++ // want `warm-pool mutation v\.epoch in a scheduled timer callback is not epoch-guarded`
	})
}

// guardedFieldWriteOK writes sandbox state under the epoch check.
func guardedFieldWriteOK(eng *sim.Engine, v *warmVM) {
	epoch := v.epoch
	eng.ScheduleAt(sim.Time(10), func() {
		if v.epoch == epoch {
			v.idle = false
		}
	})
}

// readsOK: read-only pool methods need no guard.
func readsOK(eng *sim.Engine, ho *host) {
	eng.Schedule(10, func() {
		_ = ho.pool.total()
		_ = ho.pool.hasIdle()
	})
}

// outsideScheduleOK: mutations outside Schedule closures are the
// engine-serialized fast path; the epoch contract binds timers only.
func outsideScheduleOK(ho *host, v *warmVM) {
	ho.pool.park(v)
	v.epoch++
}

// observerUnguarded fires a hook with no nil check at all.
func observerUnguarded(eng *sim.Engine, ho *host) {
	eng.Schedule(10, func() {
		ho.obs.ClockAdvanced(0) // want `observer hook ho\.obs\.ClockAdvanced in a Schedule closure is not nil-guarded inside the closure`
	})
}

// observerGuardedOutside checks outside the literal: by fire time the
// check proves nothing, so it still reports.
func observerGuardedOutside(eng *sim.Engine, ho *host) {
	if ho.obs != nil {
		eng.Schedule(10, func() {
			ho.obs.ClockAdvanced(0) // want `observer hook ho\.obs\.ClockAdvanced in a Schedule closure is not nil-guarded inside the closure`
		})
	}
}

// observerGuardedInsideOK nil-checks within the closure.
func observerGuardedInsideOK(eng *sim.Engine, ho *host) {
	eng.Schedule(10, func() {
		if ho.obs != nil {
			ho.obs.ClockAdvanced(0)
		}
	})
}

// suppressed carries a reasoned directive (the early-return pattern).
func suppressed(eng *sim.Engine, ho *host, v *warmVM) {
	epoch := v.epoch
	eng.Schedule(10, func() {
		if v.epoch != epoch {
			return
		}
		//lint:allow clusterepoch early return above re-checks the epoch
		ho.pool.remove(v)
	})
}

//lint:allow clusterepoch this directive covers no diagnostic // want `unused //lint:allow clusterepoch directive`
func clean() {}

// Package sim is a miniature stand-in for snapbpf/internal/sim.
package sim

// Time is a virtual-clock instant.
type Time int64

// Observer receives engine events; a nil observer disables them.
type Observer interface {
	EventScheduled(at Time)
	ClockAdvanced(now Time)
}

// Engine is the discrete-event scheduler.
type Engine struct{}

// Schedule arms fn after a delay.
func (e *Engine) Schedule(d int64, fn func()) {}

// ScheduleAt arms fn at an absolute instant.
func (e *Engine) ScheduleAt(at Time, fn func()) {}

// Package otherpkg is outside cluster: the epoch contract does not
// apply, but a stray directive is still flagged as unused.
package otherpkg

import "sim"

type pool struct{ n int }

func (p *pool) drain() {}

// timersElsewhereOK: Schedule closures outside internal/cluster are
// not warm-pool timers.
func timersElsewhereOK(eng *sim.Engine, p *pool) {
	eng.Schedule(10, func() {
		p.drain()
		p.n++
	})
}

//lint:allow clusterepoch nothing to suppress here // want `unused //lint:allow clusterepoch directive`
func clean() {}

// Package allowuser exercises directive validation: analyzer names
// must be known and reasons mandatory.
package allowuser

func directives() {
	_ = 1 //lint:allow // want `malformed //lint:allow directive: missing analyzer name and reason`
	_ = 2 //lint:allow nosuchpass because reasons // want `//lint:allow names unknown analyzer "nosuchpass"`
	_ = 3 //lint:allow detnondet // want `//lint:allow detnondet is missing a reason; reasons are mandatory`
	_ = 4 //lint:allow maporder well-formed directive, nothing for allowcheck to say
	_ = 5 //lint:allowance is a different word, not a directive
}

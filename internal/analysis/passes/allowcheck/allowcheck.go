// Package allowcheck validates //lint:allow directives themselves.
//
// A directive must name one of the snapbpf-lint analyzers and carry a
// non-empty reason; anything else is dead weight that *looks* like a
// suppression but suppresses nothing. (Whether a well-formed directive
// is load-bearing is checked by the named analyzer itself, which
// reports directives that suppressed no diagnostic.)
package allowcheck

import (
	"golang.org/x/tools/go/analysis"

	"snapbpf/internal/analysis/allow"
)

// Known is the set of analyzer names a directive may target.
var Known = map[string]bool{
	"detnondet":     true,
	"clusterepoch":  true,
	"maporder":      true,
	"simtime":       true,
	"observerorder": true,
	"unitsafety":    true,
}

// Analyzer is the allowcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "allowcheck",
	Doc:  "validate //lint:allow directive syntax and analyzer names",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		for _, c := range allow.Comments(f) {
			d, _ := allow.Parse(c.Text)
			switch {
			case d.Analyzer == "":
				pass.Reportf(c.Pos(), "malformed //lint:allow directive: missing analyzer name and reason")
			case !Known[d.Analyzer]:
				pass.Reportf(c.Pos(), "//lint:allow names unknown analyzer %q", d.Analyzer)
			case d.Reason == "":
				pass.Reportf(c.Pos(), "//lint:allow %s is missing a reason; reasons are mandatory", d.Analyzer)
			}
		}
	}
	return nil, nil
}

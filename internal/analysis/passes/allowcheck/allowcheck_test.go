package allowcheck_test

import (
	"testing"

	"snapbpf/internal/analysis/analysistest"
	"snapbpf/internal/analysis/passes/allowcheck"
)

func TestAllowCheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), allowcheck.Analyzer, "allowuser")
}

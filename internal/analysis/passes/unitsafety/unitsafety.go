// Package unitsafety keeps page arithmetic inside internal/units.
//
// Two rules:
//
//  1. The named offset types units.PageIdx and units.ByteOff must not
//     be converted directly into one another: PageIdx(b) silently
//     drops the <<12, ByteOff(p) silently drops the >>12, and both
//     compile. The named helpers (ByteOff.PageIdx, PageIdx.ByteOff)
//     are the only sanctioned crossings.
//
//  2. Outside internal/units (and outside _test.go files, where
//     literal page math in assertions is tolerated), byte<->page
//     conversions must not be spelled with raw literals — x*4096,
//     4096*x, x/4096, x%4096, x<<12, x>>12 — but with the units
//     helpers (PageIndex, PageOffset, PagesToBytes, AlignDown,
//     AlignUp). A raw 4096 is invisible to grep-for-PageSize audits
//     and is exactly how a page-size change or a huge-page variant
//     would rot.
package unitsafety

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"snapbpf/internal/analysis/allow"
	"snapbpf/internal/analysis/lintutil"
)

// Analyzer is the unitsafety pass.
const name = "unitsafety"

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      "forbid direct PageIdx<->ByteOff conversions and raw page-size literal arithmetic",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	tr := allow.New(pass, name)
	defer tr.Finish()
	// The units package defines the helpers; its own arithmetic is the
	// single place raw page math is allowed.
	if lintutil.PkgBase(pass.Pkg.Path()) == "units" {
		return nil, nil
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil), (*ast.BinaryExpr)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkConversion(pass, tr, n)
		case *ast.BinaryExpr:
			if !strings.HasSuffix(pass.Fset.Position(n.Pos()).Filename, "_test.go") {
				checkRawLiteral(pass, tr, n)
			}
		}
	})
	return nil, nil
}

func checkConversion(pass *analysis.Pass, tr *allow.Tracker, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	dst := tv.Type
	src := pass.TypesInfo.TypeOf(call.Args[0])
	dstPage := lintutil.IsNamed(dst, "units", "PageIdx", false)
	dstByte := lintutil.IsNamed(dst, "units", "ByteOff", false)
	srcPage := lintutil.IsNamed(src, "units", "PageIdx", false)
	srcByte := lintutil.IsNamed(src, "units", "ByteOff", false)
	switch {
	case dstPage && srcByte:
		tr.Reportf(call.Pos(),
			"direct conversion of units.ByteOff to units.PageIdx drops the page shift; use ByteOff.PageIdx()")
	case dstByte && srcPage:
		tr.Reportf(call.Pos(),
			"direct conversion of units.PageIdx to units.ByteOff drops the page shift; use PageIdx.ByteOff()")
	}
}

// pageLits are the literal spellings of the page size and page shift.
var pageLits = map[string]bool{"4096": true, "0x1000": true}

func checkRawLiteral(pass *analysis.Pass, tr *allow.Tracker, be *ast.BinaryExpr) {
	lit := func(e ast.Expr, values map[string]bool) bool {
		bl, ok := e.(*ast.BasicLit)
		return ok && bl.Kind == token.INT && values[bl.Value]
	}
	shiftLit := map[string]bool{"12": true}
	var bad bool
	switch be.Op {
	case token.MUL:
		bad = (lit(be.X, pageLits) && !isConst(pass, be.Y)) ||
			(lit(be.Y, pageLits) && !isConst(pass, be.X))
	case token.QUO, token.REM:
		bad = lit(be.Y, pageLits) && !isConst(pass, be.X)
	case token.SHL, token.SHR:
		bad = lit(be.Y, shiftLit) && !isConst(pass, be.X)
	}
	if bad {
		tr.Reportf(be.Pos(),
			"raw page-size arithmetic (%s); use the internal/units helpers (PageIndex/PageOffset/PagesToBytes/AlignDown/AlignUp)",
			lintutil.ExprString(pass.Fset, be))
	}
}

// isConst reports whether e is a compile-time constant: a fully
// constant expression such as 1<<12 or 8*4096 in a const declaration
// is a definition, not a conversion, and is left to human review.
func isConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

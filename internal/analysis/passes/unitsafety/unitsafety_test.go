package unitsafety_test

import (
	"testing"

	"snapbpf/internal/analysis/analysistest"
	"snapbpf/internal/analysis/passes/unitsafety"
)

func TestUnitSafety(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), unitsafety.Analyzer, "unituser", "units")
}

// Package units is a miniature stand-in for snapbpf/internal/units:
// the analyzer keys on the named types PageIdx and ByteOff.
package units

// PageIdx is a page index within a file or address space.
type PageIdx int64

// ByteOff is a byte offset within a file or address space.
type ByteOff int64

// ByteOff returns the byte offset of the first byte of page p.
func (p PageIdx) ByteOff() ByteOff { return ByteOff(p) << 12 }

// PageIdx returns the index of the page containing b.
func (b ByteOff) PageIdx() PageIdx { return PageIdx(b >> 12) }

package unituser

// Test files may use literal page math in assertions: rule 2 does not
// apply here (rule 1 still does).
func rawInTestOK(n int64) int64 {
	return n * 4096
}

// Package unituser exercises both unitsafety rules: direct
// PageIdx<->ByteOff conversions and raw page-size literal arithmetic.
package unituser

import "units"

func conversions(p units.PageIdx, b units.ByteOff) {
	_ = units.PageIdx(b) // want `direct conversion of units\.ByteOff to units\.PageIdx .*use ByteOff\.PageIdx\(\)`
	_ = units.ByteOff(p) // want `direct conversion of units\.PageIdx to units\.ByteOff .*use PageIdx\.ByteOff\(\)`
}

func helpersOK(p units.PageIdx, b units.ByteOff) {
	_ = p.ByteOff()
	_ = b.PageIdx()
	_ = units.PageIdx(7)  // untyped constants carry no unit
	_ = int64(p)          // escaping to plain integers is interop, not a crossing
	_ = units.ByteOff(int64(12288)) // from plain integers too
}

func rawLiterals(n, off int64) {
	_ = n * 4096   // want `raw page-size arithmetic \(n \* 4096\)`
	_ = 4096 * n   // want `raw page-size arithmetic \(4096 \* n\)`
	_ = off / 4096 // want `raw page-size arithmetic \(off / 4096\)`
	_ = off % 4096 // want `raw page-size arithmetic \(off % 4096\)`
	_ = n << 12    // want `raw page-size arithmetic \(n << 12\)`
	_ = off >> 12  // want `raw page-size arithmetic \(off >> 12\)`
}

// constOK: fully constant expressions are definitions, not
// conversions.
const constOK = 8 * 4096

func otherMathOK(n int64) {
	_ = n * 512  // not the page size
	_ = n << 20  // not the page shift
	_ = 1 << 12  // constant: defining a page-size value, not converting
}

func suppressed(n int64) {
	_ = n * 4096 //lint:allow unitsafety golden test of the suppression path
}

//lint:allow unitsafety this directive covers no diagnostic // want `unused //lint:allow unitsafety directive`
func clean() {}

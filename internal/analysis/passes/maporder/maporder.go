// Package maporder rejects iteration over maps whose loop body has
// order-dependent effects.
//
// Go randomizes map iteration order, so a range-over-map that appends
// to a slice, writes CSV/trace/text output, schedules simulation
// events, or sends on a channel produces a different interleaving on
// every run — exactly the irreproducibility the byte-identical CSV and
// digest contracts forbid.
//
// The one exempt shape is the canonical collect-then-sort idiom: a
// body consisting solely of a single `x = append(x, ...)` statement,
// whose result is expected to be sorted before use. Every other
// order-dependent body must either iterate sorted keys or carry a
// //lint:allow maporder directive explaining why order cannot leak.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"snapbpf/internal/analysis/allow"
	"snapbpf/internal/analysis/lintutil"
)

// Analyzer is the maporder pass.
const name = "maporder"

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      "forbid order-dependent effects inside range-over-map loops",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// effectNames are method/function names whose call inside a map range
// makes iteration order observable: output writers, sim scheduling,
// and event emission.
var effectNames = map[string]bool{
	"Write": true, "WriteAll": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "Fprintf": true, "Fprintln": true, "Fprint": true,
	"Printf": true, "Println": true, "Print": true,
	"Schedule": true, "ScheduleAt": true, "Go": true, "Fire": true,
	"Emit": true, "Record": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	tr := allow.New(pass, name)
	defer tr.Finish()

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node) {
		rs := n.(*ast.RangeStmt)
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return
		}
		if isCollectIdiom(rs.Body) {
			return
		}
		for _, eff := range effects(rs.Body) {
			tr.Reportf(eff.pos,
				"%s inside iteration over map %s is order-dependent; iterate sorted keys instead",
				eff.what, lintutil.ExprString(pass.Fset, rs.X))
		}
	})
	return nil, nil
}

// isCollectIdiom reports whether body is exactly one
// `x = append(x, ...)` statement — collecting keys (or values) for a
// subsequent sort.
func isCollectIdiom(body *ast.BlockStmt) bool {
	if len(body.List) != 1 {
		return false
	}
	as, ok := body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Rhs) != 1 {
		return false
	}
	return isAppendCall(as.Rhs[0])
}

func isAppendCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "append"
}

type report struct {
	pos  token.Pos
	what string
}

// effects walks the loop body (including nested statements and
// function literals, which typically run once per iteration) and
// collects order-dependent operations.
func effects(body *ast.BlockStmt) []report {
	var out []report
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if isAppendCall(rhs) {
					out = append(out, report{n.Pos(), "append"})
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && effectNames[sel.Sel.Name] {
				out = append(out, report{n.Pos(), "call to " + sel.Sel.Name})
			}
		case *ast.SendStmt:
			out = append(out, report{n.Pos(), "channel send"})
		}
		return true
	})
	return out
}

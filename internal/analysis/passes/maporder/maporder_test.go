package maporder_test

import (
	"testing"

	"snapbpf/internal/analysis/analysistest"
	"snapbpf/internal/analysis/passes/maporder"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), maporder.Analyzer, "mapuser")
}

// Package mapuser exercises every order-dependent map-range shape the
// analyzer must reject, and the sorted idioms it must accept.
package mapuser

import "fmt"

type engine struct{}

func (engine) Schedule(fn func()) {}

type writer struct{}

func (writer) Write(row []string) error { return nil }

func violations(m map[int]string, eng engine, w writer, ch chan int) {
	var rows []string
	for k, v := range m {
		rows = append(rows, v)          // want `append inside iteration over map m is order-dependent`
		_, _ = fmt.Fprintf(nil, "%d", k) // want `call to Fprintf inside iteration over map m is order-dependent`
	}
	for k := range m {
		eng.Schedule(func() { _ = k }) // want `call to Schedule inside iteration over map m is order-dependent`
	}
	for _, v := range m {
		_ = w.Write([]string{v}) // want `call to Write inside iteration over map m is order-dependent`
	}
	for k := range m {
		ch <- k // want `channel send inside iteration over map m is order-dependent`
	}
}

func collectThenSortOK(m map[int]string) []int {
	// The canonical idiom: a single append collecting keys for a
	// subsequent sort is the sanctioned escape.
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func sliceRangeOK(s []string, w writer) {
	// Order-dependent effects over a slice are fine: slices iterate in
	// index order.
	var out []string
	for _, v := range s {
		out = append(out, v)
		_ = w.Write([]string{v})
	}
}

func pureBodyOK(m map[int]int) int {
	// Commutative accumulation does not observe order.
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

func suppressed(m map[int]string) {
	var all []string
	for _, v := range m {
		all = append(all, v) //lint:allow maporder golden test of the suppression path
		_ = v
	}
}

//lint:allow maporder this directive covers no diagnostic // want `unused //lint:allow maporder directive`
func cleanFunc() {}

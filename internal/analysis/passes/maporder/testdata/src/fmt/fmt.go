// Package fmt is a miniature stand-in for the standard library's fmt
// package (the analyzer matches writer-shaped call names).
package fmt

// Fprintf formats into w.
func Fprintf(w interface{}, format string, args ...interface{}) (int, error) { return 0, nil }

// Sprintf formats into a string; it has no output effect.
func Sprintf(format string, args ...interface{}) string { return "" }

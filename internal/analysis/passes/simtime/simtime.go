// Package simtime keeps virtual and wall-clock time apart.
//
// sim.Time is a point on the simulation clock; time.Duration (and its
// alias sim.Duration) is a span; time.Time is a wall-clock point.
// Converting directly between sim.Time and either wall-clock type
// silently reinterprets an absolute virtual timestamp as a span (or
// vice versa) — the unit bug class behind subtle latency accounting
// errors. Outside package sim itself (whose Add/Sub/String methods are
// the blessed converters), such conversions must go through
// Time.Add(d) and Time.Sub(u).
package simtime

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"snapbpf/internal/analysis/allow"
	"snapbpf/internal/analysis/lintutil"
)

// Analyzer is the simtime pass.
const name = "simtime"

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      "forbid direct conversions between sim.Time and wall-clock time types",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func isSimTime(t types.Type) bool  { return lintutil.IsNamed(t, "sim", "Time", false) }
func isWallTime(t types.Type) bool { return lintutil.IsNamed(t, "time", "Time", false) }
func isDuration(t types.Type) bool { return lintutil.IsNamed(t, "time", "Duration", false) }

func run(pass *analysis.Pass) (interface{}, error) {
	tr := allow.New(pass, name)
	defer tr.Finish()
	// The sim package itself implements the blessed converters.
	if lintutil.PkgBase(pass.Pkg.Path()) == "sim" {
		return nil, nil
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if len(call.Args) != 1 {
			return
		}
		tv, ok := pass.TypesInfo.Types[call.Fun]
		if !ok || !tv.IsType() {
			return // ordinary call, not a conversion
		}
		dst := tv.Type
		src := pass.TypesInfo.TypeOf(call.Args[0])
		wallDst := isWallTime(dst) || isDuration(dst)
		wallSrc := isWallTime(src) || isDuration(src)
		switch {
		case isSimTime(dst) && wallSrc:
			tr.Reportf(call.Pos(),
				"conversion of wall-clock %s to sim.Time reinterprets a span as a virtual timestamp; use sim.Time.Add",
				src)
		case wallDst && isSimTime(src):
			tr.Reportf(call.Pos(),
				"conversion of sim.Time to wall-clock %s reinterprets a virtual timestamp as a span; use sim.Time.Sub",
				dst)
		}
	})
	return nil, nil
}

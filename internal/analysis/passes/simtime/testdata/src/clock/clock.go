// Package clock exercises the virtual/wall-clock mixing shapes the
// analyzer must reject, and the sanctioned Add/Sub API it must accept.
package clock

import (
	"sim"
	"time"
)

func violations(t sim.Time, d time.Duration, w time.Time) {
	_ = sim.Time(d)      // want `conversion of wall-clock time\.Duration to sim\.Time .*use sim\.Time\.Add`
	_ = time.Duration(t) // want `conversion of sim\.Time to wall-clock time\.Duration .*use sim\.Time\.Sub`
	_ = sim.Duration(t)  // want `conversion of sim\.Time to wall-clock time\.Duration .*use sim\.Time\.Sub`
}

func blessedOK(t sim.Time, d time.Duration) {
	_ = t.Add(d)          // advancing virtual time by a span
	_ = t.Sub(sim.Time(0)) // spans between virtual instants
	_ = sim.Time(42)       // untyped constants carry no clock domain
	_ = int64(t)           // escaping to plain integers is out of scope
}

func suppressed(t sim.Time) {
	_ = time.Duration(t) //lint:allow simtime golden test of the suppression path
}

//lint:allow simtime this directive covers no diagnostic // want `unused //lint:allow simtime directive`
func cleanFunc() {}

// Package sim is a miniature stand-in for snapbpf/internal/sim: the
// analyzer keys on the named type sim.Time and exempts this package
// (it implements the blessed converters).
package sim

import "time"

// Time is a point in virtual time.
type Time int64

// Duration aliases the wall-clock span type, as the real sim package
// does.
type Duration = time.Duration

// Add returns the time d after t. In-package conversions are the
// blessed implementation of the contract, not violations of it.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the span from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

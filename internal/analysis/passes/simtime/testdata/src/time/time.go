// Package time is a miniature stand-in for the standard library's
// time package.
package time

// Time is a wall-clock instant.
type Time struct{ ns int64 }

// Duration is a span in nanoseconds.
type Duration int64

// Second is one second.
const Second Duration = 1e9

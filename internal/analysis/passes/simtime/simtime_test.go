package simtime_test

import (
	"testing"

	"snapbpf/internal/analysis/analysistest"
	"snapbpf/internal/analysis/passes/simtime"
)

func TestSimTime(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), simtime.Analyzer, "clock", "sim")
}

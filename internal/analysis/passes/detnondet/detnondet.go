// Package detnondet rejects wall-clock and entropy sources inside the
// deterministic packages (sim, blockdev, pagecache, hostmm, kvm, ebpf,
// faults, prefetch/..., check, workload).
//
// Every result those packages produce — CSV rows, fault plans, digests
// — must be a pure function of configured seeds and the virtual clock.
// time.Now, the auto-seeded math/rand globals, crypto/rand and
// process-identity calls all smuggle host state into that function.
// Seeded generators (rand.New(rand.NewSource(seed))) are fine: the
// analyzer bans the package-level entropy, not *rand.Rand methods.
package detnondet

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"snapbpf/internal/analysis/allow"
	"snapbpf/internal/analysis/lintutil"
)

// Analyzer is the detnondet pass.
const name = "detnondet"

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      "forbid wall-clock time and unseeded entropy in deterministic packages",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// banned maps package path -> symbol -> what to use instead. An entry
// under symbol "*" bans every symbol of the package.
var banned = map[string]map[string]string{
	"time": {
		"Now":       "the sim engine clock (Engine.Now)",
		"Since":     "sim.Time.Sub",
		"Until":     "sim.Time.Sub",
		"Sleep":     "Proc.Sleep (virtual time)",
		"After":     "Engine.Schedule",
		"Tick":      "Engine.Schedule",
		"NewTicker": "Engine.Schedule",
		"NewTimer":  "Engine.Schedule",
		"AfterFunc": "Engine.Schedule",
	},
	"math/rand": {
		"Int": "", "Intn": "", "Int31": "", "Int31n": "", "Int63": "", "Int63n": "",
		"Uint32": "", "Uint64": "", "Float32": "", "Float64": "",
		"ExpFloat64": "", "NormFloat64": "", "Perm": "", "Shuffle": "",
		"Read": "", "Seed": "",
	},
	"math/rand/v2": {
		"Int": "", "IntN": "", "Int32": "", "Int32N": "", "Int64": "", "Int64N": "",
		"Uint": "", "UintN": "", "Uint32": "", "Uint32N": "", "Uint64": "", "Uint64N": "",
		"Float32": "", "Float64": "", "ExpFloat64": "", "NormFloat64": "",
		"Perm": "", "Shuffle": "", "N": "",
	},
	"crypto/rand": {"*": ""},
	"os": {
		"Getpid":    "",
		"Getppid":   "",
		"Getenv":    "explicit configuration threaded from the caller",
		"LookupEnv": "explicit configuration threaded from the caller",
		"Environ":   "explicit configuration threaded from the caller",
	},
}

func run(pass *analysis.Pass) (interface{}, error) {
	tr := allow.New(pass, name)
	// Finish must run even for exempt packages so that a stray
	// //lint:allow detnondet there is reported as unused.
	defer tr.Finish()
	if !lintutil.DeterministicPkg(pass.Pkg.Path()) {
		return nil, nil
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node) {
		sel := n.(*ast.SelectorExpr)
		obj := pass.TypesInfo.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil {
			return
		}
		// Methods are never banned: *rand.Rand draws from an explicit
		// seed, and sim types carry time.Duration methods. The entropy
		// lives in the package-level functions and variables.
		if fn, ok := obj.(*types.Func); ok && fn.Type().(*types.Signature).Recv() != nil {
			return
		}
		syms, ok := banned[obj.Pkg().Path()]
		if !ok {
			return
		}
		advice, hit := syms[obj.Name()]
		if !hit {
			if _, all := syms["*"]; !all {
				return
			}
		}
		msg := obj.Pkg().Path() + "." + obj.Name() +
			" is a wall-clock/entropy source forbidden in deterministic packages"
		if advice != "" {
			msg += "; use " + advice
		}
		tr.Reportf(sel.Pos(), "%s", msg)
	})
	return nil, nil
}

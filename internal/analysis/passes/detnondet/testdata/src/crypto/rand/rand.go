// Package rand is a miniature stand-in for crypto/rand.
package rand

// Read fills b with cryptographically random bytes.
func Read(b []byte) (int, error) { return len(b), nil }

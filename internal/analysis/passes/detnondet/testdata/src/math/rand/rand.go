// Package rand is a miniature stand-in for math/rand (see the time
// stand-in for why).
package rand

// Source is a seedable stream of pseudo-random numbers.
type Source struct{ seed int64 }

// Rand is a seeded generator; its methods are deterministic and
// permitted everywhere.
type Rand struct{ src Source }

// NewSource returns a Source seeded with seed.
func NewSource(seed int64) Source { return Source{seed} }

// New returns a Rand using src.
func New(src Source) *Rand { return &Rand{src} }

// Intn returns a pseudo-random int in [0, n) from the seeded stream.
func (r *Rand) Intn(n int) int { return 0 }

// Intn draws from the auto-seeded global generator.
func Intn(n int) int { return 0 }

// Float64 draws from the auto-seeded global generator.
func Float64() float64 { return 0 }

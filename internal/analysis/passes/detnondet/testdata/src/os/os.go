// Package os is a miniature stand-in for the standard library's os
// package.
package os

// Getpid returns the caller's process id.
func Getpid() int { return 0 }

// Getenv reads an environment variable.
func Getenv(key string) string { return "" }

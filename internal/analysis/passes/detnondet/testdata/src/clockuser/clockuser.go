// Package clockuser is NOT on the deterministic list: wall-clock use
// is fine here, but a detnondet allow directive is dead weight and
// must still be reported as unused.
package clockuser

import "time"

func wallClockOK() time.Time {
	return time.Now()
}

func deadDirective() {
	_ = time.Now() //lint:allow detnondet pointless here // want `unused //lint:allow detnondet directive`
}

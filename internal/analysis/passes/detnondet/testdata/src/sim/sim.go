// Package sim is a golden package on the deterministic list: every
// wall-clock/entropy source below must be diagnosed.
package sim

import (
	crand "crypto/rand"
	"math/rand"
	"os"
	"time"
)

func violations() {
	_ = time.Now()       // want `time\.Now is a wall-clock/entropy source .*Engine\.Now`
	_ = time.Since(time.Time{}) // want `time\.Since is a wall-clock/entropy source`
	time.Sleep(time.Second)     // want `time\.Sleep is a wall-clock/entropy source .*virtual time`
	_ = rand.Intn(10)    // want `math/rand\.Intn is a wall-clock/entropy source`
	_ = rand.Float64()   // want `math/rand\.Float64 is a wall-clock/entropy source`
	_ = os.Getpid()      // want `os\.Getpid is a wall-clock/entropy source`
	_ = os.Getenv("X")   // want `os\.Getenv is a wall-clock/entropy source .*configuration`
	var b []byte
	_, _ = crand.Read(b) // want `crypto/rand\.Read is a wall-clock/entropy source`
}

func seededOK() int {
	// Seeded generators are the sanctioned entropy: deterministic,
	// reproducible from the recorded seed.
	rng := rand.New(rand.NewSource(42))
	return rng.Intn(10)
}

func suppressed() {
	_ = time.Now() //lint:allow detnondet golden test of the suppression path
}

//lint:allow detnondet this directive covers no diagnostic // want `unused //lint:allow detnondet directive`
func cleanFunc() {}

// Package time is a miniature stand-in for the standard library's
// time package: the analyzers match on the import path "time", so the
// golden packages can stay hermetic (no real build graph needed).
package time

// Time is a wall-clock instant.
type Time struct{ ns int64 }

// Duration is a span in nanoseconds.
type Duration int64

// Second is one second.
const Second Duration = 1e9

// Now returns the current wall-clock time.
func Now() Time { return Time{} }

// Since returns the time elapsed since t.
func Since(t Time) Duration { return 0 }

// Sleep pauses the current goroutine.
func Sleep(d Duration) {}

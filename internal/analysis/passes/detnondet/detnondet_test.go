package detnondet_test

import (
	"testing"

	"snapbpf/internal/analysis/analysistest"
	"snapbpf/internal/analysis/passes/detnondet"
)

func TestDetNonDet(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), detnondet.Analyzer, "sim", "clockuser")
}

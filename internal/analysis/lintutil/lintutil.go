// Package lintutil holds the small shared vocabulary of the
// snapbpf-lint analyzers: which packages are bound by the determinism
// contract, and type/expression helpers used by more than one pass.
package lintutil

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// deterministicRoots are the first path segments (under
// snapbpf/internal/) of packages whose behaviour must be a pure
// function of their seeds and the virtual clock. prefetch covers its
// whole subtree.
var deterministicRoots = map[string]bool{
	"sim":       true,
	"blockdev":  true,
	"pagecache": true,
	"hostmm":    true,
	"kvm":       true,
	"ebpf":      true,
	"faults":    true,
	"prefetch":  true,
	"check":     true,
	"obs":       true,
	"workload":  true,
	"calib":     true,
	"cluster":   true,
	"store":     true,
}

// DeterministicPkg reports whether the import path is bound by the
// determinism contract. It accepts full module paths
// ("snapbpf/internal/sim"), external test packages
// ("snapbpf/internal/sim_test"), and bare testdata paths ("sim",
// "prefetch/groups").
func DeterministicPkg(path string) bool {
	rest := path
	if i := strings.Index(rest, "internal/"); i >= 0 {
		rest = rest[i+len("internal/"):]
	}
	rest = strings.TrimSuffix(rest, "_test")
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	return deterministicRoots[rest]
}

// PkgBase returns the last segment of an import path, with any
// "_test" suffix removed, so "snapbpf/internal/sim_test" and "sim"
// both yield "sim".
func PkgBase(path string) string {
	path = strings.TrimSuffix(path, "_test")
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		path = path[i+1:]
	}
	return path
}

// IsNamed reports whether t (after unaliasing) is the named type
// pkgBase.name, where pkgBase is matched against the last segment of
// the defining package's path. It sees through pointers when deref is
// set.
func IsNamed(t types.Type, pkgBase, name string, deref bool) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if deref {
		if p, ok := t.(*types.Pointer); ok {
			t = types.Unalias(p.Elem())
		}
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return PkgBase(obj.Pkg().Path()) == pkgBase
}

// ExprString renders an expression compactly for diagnostics and for
// structural comparison of guard conditions.
func ExprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, fset, e)
	return buf.String()
}

package lintutil

import "testing"

func TestDeterministicPkg(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"snapbpf/internal/sim", true},
		{"snapbpf/internal/sim_test", true},
		{"snapbpf/internal/prefetch", true},
		{"snapbpf/internal/prefetch/groups", true},
		{"snapbpf/internal/workload", true},
		{"snapbpf/internal/cluster", true},
		{"snapbpf/internal/cluster_test", true},
		{"snapbpf/internal/check", true},
		{"snapbpf/internal/calib", true},
		{"snapbpf/internal/experiments", false},
		{"snapbpf/internal/units", false},
		{"snapbpf", false},
		{"sim", true},
		{"blockdev", true},
		{"clockuser", false},
		{"prefetch/groups", true},
	}
	for _, c := range cases {
		if got := DeterministicPkg(c.path); got != c.want {
			t.Errorf("DeterministicPkg(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestPkgBase(t *testing.T) {
	cases := map[string]string{
		"snapbpf/internal/sim":      "sim",
		"snapbpf/internal/sim_test": "sim",
		"units":                     "units",
		"a/b/c":                     "c",
	}
	for path, want := range cases {
		if got := PkgBase(path); got != want {
			t.Errorf("PkgBase(%q) = %q, want %q", path, got, want)
		}
	}
}

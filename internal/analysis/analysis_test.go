package analysis

import (
	"testing"

	"snapbpf/internal/analysis/passes/allowcheck"
)

// TestSuiteShape pins the registry invariants the driver and the
// allow machinery rely on: unique names, docs, and allowcheck knowing
// every suppressible analyzer.
func TestSuiteShape(t *testing.T) {
	all := All()
	if len(all) < 5 {
		t.Fatalf("suite has %d analyzers, want >= 5", len(all))
	}
	seen := make(map[string]bool)
	for _, a := range all {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %q has empty name or doc", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Name != "allowcheck" && !allowcheck.Known[a.Name] {
			t.Errorf("analyzer %q is not in allowcheck.Known; its directives would be rejected", a.Name)
		}
	}
	for name := range allowcheck.Known {
		if !seen[name] {
			t.Errorf("allowcheck.Known lists %q which is not in the suite", name)
		}
	}
}

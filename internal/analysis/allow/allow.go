// Package allow implements the //lint:allow suppression directive
// shared by every snapbpf-lint analyzer.
//
// A directive has the form
//
//	//lint:allow <analyzer> <reason...>
//
// and suppresses diagnostics of the named analyzer on the same line or
// on the line immediately below (so it can ride at the end of the
// offending statement or stand alone above it). The reason is
// mandatory: a reason-less directive suppresses nothing (and is
// reported as malformed by the allowcheck analyzer).
//
// Directives must be load-bearing. A Tracker records which directives
// actually suppressed a diagnostic during the run; Finish reports every
// directive naming this analyzer that suppressed nothing, so stale
// allows cannot linger after the underlying code is fixed.
package allow

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Prefix is the comment prefix introducing a directive (after "//").
const Prefix = "lint:allow"

// Directive is one parsed, well-formed //lint:allow comment.
type Directive struct {
	Pos      token.Pos // position of the comment
	File     string
	Line     int
	Analyzer string // analyzer the directive targets
	Reason   string // non-empty justification

	used bool
}

// Parse decodes a single comment's text (including the leading "//").
// It returns ok=false when the comment is not an allow directive at
// all. A directive with a missing analyzer name or empty reason is
// returned with those fields empty; callers decide whether that is an
// error (allowcheck) or simply a non-suppressing comment (Tracker).
func Parse(text string) (d Directive, ok bool) {
	body, found := strings.CutPrefix(text, "//"+Prefix)
	if !found {
		return Directive{}, false
	}
	// A longer word such as //lint:allowance is not a directive.
	if body != "" && body[0] != ' ' && body[0] != '\t' {
		return Directive{}, false
	}
	// Testdata golden files append "// want ..." expectations to the
	// same comment; they are not part of the reason.
	if i := strings.Index(body, "//"); i >= 0 {
		body = body[:i]
	}
	fields := strings.Fields(body)
	if len(fields) == 0 {
		return Directive{}, true
	}
	d.Analyzer = fields[0]
	d.Reason = strings.Join(fields[1:], " ")
	return d, true
}

// Tracker scans a pass's files for directives naming one analyzer and
// arbitrates suppression for that analyzer's diagnostics.
type Tracker struct {
	pass *analysis.Pass
	name string
	dirs []*Directive
	// byLine indexes each directive under the lines it covers
	// (its own and the next), keyed by file:line.
	byLine map[string][]*Directive
}

// New scans pass's syntax for //lint:allow directives naming analyzer
// name. It must be called before any Report.
func New(pass *analysis.Pass, name string) *Tracker {
	t := &Tracker{pass: pass, name: name, byLine: make(map[string][]*Directive)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := Parse(c.Text)
				if !ok || d.Analyzer != name || d.Reason == "" {
					continue
				}
				p := pass.Fset.Position(c.Pos())
				dir := &Directive{
					Pos: c.Pos(), File: p.Filename, Line: p.Line,
					Analyzer: d.Analyzer, Reason: d.Reason,
				}
				t.dirs = append(t.dirs, dir)
				for _, ln := range []int{p.Line, p.Line + 1} {
					k := lineKey(p.Filename, ln)
					t.byLine[k] = append(t.byLine[k], dir)
				}
			}
		}
	}
	return t
}

func lineKey(file string, line int) string {
	return file + ":" + itoa(line)
}

// itoa avoids strconv for this one tiny use.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// Reportf emits a diagnostic at pos unless a directive covers its
// line, in which case the directive is marked used and the diagnostic
// dropped.
func (t *Tracker) Reportf(pos token.Pos, format string, args ...interface{}) {
	p := t.pass.Fset.Position(pos)
	if dirs := t.byLine[lineKey(p.Filename, p.Line)]; len(dirs) > 0 {
		for _, d := range dirs {
			d.used = true
		}
		return
	}
	t.pass.Reportf(pos, format, args...)
}

// Finish reports every directive that suppressed nothing. Call once,
// after all Reportf calls. It must run even when the analyzer skipped
// the package body (e.g. detnondet outside the deterministic set): a
// directive there is unused by definition.
func (t *Tracker) Finish() {
	sort.Slice(t.dirs, func(i, j int) bool { return t.dirs[i].Pos < t.dirs[j].Pos })
	for _, d := range t.dirs {
		if !d.used {
			t.pass.Reportf(d.Pos,
				"unused //lint:allow %s directive: no %s diagnostic on this or the next line",
				t.name, t.name)
		}
	}
}

// Comments returns every allow-shaped comment in f (well-formed or
// not) for the allowcheck analyzer.
func Comments(f *ast.File) []*ast.Comment {
	var out []*ast.Comment
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if _, ok := Parse(c.Text); ok {
				out = append(out, c)
			}
		}
	}
	return out
}

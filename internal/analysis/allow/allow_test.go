package allow

import "testing"

func TestParse(t *testing.T) {
	cases := []struct {
		text     string
		ok       bool
		analyzer string
		reason   string
	}{
		{"//lint:allow detnondet seeded by the fault plan", true, "detnondet", "seeded by the fault plan"},
		{"//lint:allow maporder order folds into a sum", true, "maporder", "order folds into a sum"},
		{"//lint:allow", true, "", ""},
		{"//lint:allow simtime", true, "simtime", ""},
		{"//lint:allow unitsafety reason here // want `x`", true, "unitsafety", "reason here"},
		{"//lint:allowance is not a directive", false, "", ""},
		{"// ordinary comment", false, "", ""},
		{"//lint:allow\tobserverorder tab-separated fields", true, "observerorder", "tab-separated fields"},
	}
	for _, c := range cases {
		d, ok := Parse(c.text)
		if ok != c.ok || d.Analyzer != c.analyzer || d.Reason != c.reason {
			t.Errorf("Parse(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.text, d.Analyzer, d.Reason, ok, c.analyzer, c.reason, c.ok)
		}
	}
}

func TestItoa(t *testing.T) {
	for _, n := range []int{0, 1, 9, 10, 123, 99999} {
		got := itoa(n)
		want := map[int]string{0: "0", 1: "1", 9: "9", 10: "10", 123: "123", 99999: "99999"}[n]
		if got != want {
			t.Errorf("itoa(%d) = %q, want %q", n, got, want)
		}
	}
}

// Package analysistest runs a go/analysis analyzer over golden
// packages under testdata/src and checks its diagnostics against
// // want "regexp" comments, following the conventions of
// golang.org/x/tools/go/analysis/analysistest.
//
// The upstream harness is not vendorable here: it depends on
// go/packages and external loaders, which need a module proxy. This
// local reimplementation resolves every import inside testdata/src
// itself — test packages ship miniature stand-ins for the few stdlib
// and project packages the analyzers key on (time, math/rand, sim,
// units, ...), which also keeps the golden packages hermetic and the
// tests fast.
//
// Supported conventions:
//
//   - testdata/src/<importpath>/*.go form one package per directory;
//     imports resolve to sibling testdata packages.
//   - A comment containing `want "re1" "re2"` expects one diagnostic
//     matching each regexp on that line; every diagnostic must be
//     matched by exactly one want and vice versa.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// Run loads each package path from testdata/src, applies the analyzer
// (and its Requires closure), and checks diagnostics against the
// packages' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := &loader{
		fset:   token.NewFileSet(),
		srcdir: filepath.Join(testdata, "src"),
		pkgs:   make(map[string]*pkgInfo),
	}
	for _, path := range pkgPaths {
		path := path
		t.Run(path, func(t *testing.T) {
			pkg, err := l.load(path)
			if err != nil {
				t.Fatalf("loading %s: %v", path, err)
			}
			diags, err := exec(a, l.fset, pkg)
			if err != nil {
				t.Fatalf("running %s on %s: %v", a.Name, path, err)
			}
			check(t, l.fset, pkg, diags)
		})
	}
}

type pkgInfo struct {
	path  string
	tpkg  *types.Package
	files []*ast.File
	info  *types.Info
}

type loader struct {
	fset   *token.FileSet
	srcdir string
	pkgs   map[string]*pkgInfo
}

// Import implements types.Importer by loading sibling testdata
// packages, so golden files never touch the real build graph.
func (l *loader) Import(path string) (*types.Package, error) {
	p, err := l.load(path)
	if err != nil {
		return nil, err
	}
	return p.tpkg, nil
}

func (l *loader) load(path string) (*pkgInfo, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.srcdir, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("package %s: %w", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("package %s: no Go files in %s", path, dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %w", path, err)
	}
	p := &pkgInfo{path: path, tpkg: tpkg, files: files, info: info}
	l.pkgs[path] = p
	return p, nil
}

// exec runs a and its Requires closure over pkg, returning a's (and
// only a's) diagnostics sorted by position.
func exec(a *analysis.Analyzer, fset *token.FileSet, pkg *pkgInfo) ([]analysis.Diagnostic, error) {
	results := make(map[*analysis.Analyzer]interface{})
	var diags []analysis.Diagnostic

	var run func(a *analysis.Analyzer, collect bool) error
	run = func(a *analysis.Analyzer, collect bool) error {
		if _, done := results[a]; done {
			return nil
		}
		for _, req := range a.Requires {
			if err := run(req, false); err != nil {
				return err
			}
		}
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.files,
			Pkg:       pkg.tpkg,
			TypesInfo: pkg.info,
			TypesSizes: func() types.Sizes {
				if s := types.SizesFor("gc", "amd64"); s != nil {
					return s
				}
				return &types.StdSizes{WordSize: 8, MaxAlign: 8}
			}(),
			ResultOf: results,
			Report: func(d analysis.Diagnostic) {
				if collect {
					diags = append(diags, d)
				}
			},
		}
		res, err := a.Run(pass)
		if err != nil {
			return fmt.Errorf("%s: %w", a.Name, err)
		}
		results[a] = res
		return nil
	}
	if err := run(a, true); err != nil {
		return nil, err
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// wantRe extracts the expectation list from a comment.
var wantRe = regexp.MustCompile(`want\s+((?:(?:"(?:[^"\\]|\\.)*"|` + "`[^`]*`" + `)\s*)+)`)

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, lit := range splitLits(m[1]) {
					pat, err := unquote(lit)
					if err != nil {
						t.Fatalf("%s: bad want literal %s: %v", pos, lit, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// splitLits splits a run of adjacent Go string literals.
func splitLits(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var end int
		switch s[0] {
		case '`':
			end = strings.IndexByte(s[1:], '`') + 2
		case '"':
			end = 1
			for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
				end++
			}
			end++
		default:
			return out
		}
		out = append(out, s[:end])
		s = strings.TrimSpace(s[end:])
	}
	return out
}

func unquote(lit string) (string, error) {
	if strings.HasPrefix(lit, "`") {
		return strings.Trim(lit, "`"), nil
	}
	return strconv.Unquote(lit)
}

func check(t *testing.T, fset *token.FileSet, pkg *pkgInfo, diags []analysis.Diagnostic) {
	t.Helper()
	wants := collectWants(t, fset, pkg.files)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

package workload

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// Arrival is one generated invocation request.
type Arrival struct {
	At     time.Duration // offset from the start of the run
	Tenant string
	Seq    int // per-tenant arrival index
	Fn     string
	Class  SLOClass
}

// tenantSeed derives a tenant's private stream seed. When the spec
// carries an explicit seed it wins; otherwise the seed is a splitmix64
// hash of the cluster seed and the tenant name, so a tenant's stream
// depends only on its own identity — never on declaration order.
func tenantSeed(clusterSeed int64, t TenantSpec) int64 {
	if t.Seed != 0 {
		return t.Seed
	}
	h := uint64(clusterSeed) ^ 0x9e3779b97f4a7c15
	for _, b := range []byte(t.Name) {
		h ^= uint64(b)
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
	}
	// splitmix64 finalizer.
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= h >> 31
	s := int64(h)
	if s == 0 {
		s = 1
	}
	return s
}

// gammaSample draws from Gamma(shape k, scale 1) via Marsaglia–Tsang,
// using only the seeded rng's own methods (determinism contract).
func gammaSample(rng *rand.Rand, k float64) float64 {
	if k < 1 {
		// Boost: Gamma(k) = Gamma(k+1) * U^(1/k).
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(rng, k+1) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// interarrival draws one interarrival gap with mean 1/rate.
func (t TenantSpec) interarrival(rng *rand.Rand) time.Duration {
	mean := 1 / t.RatePerSec
	var gap float64
	switch t.Arrival {
	case ArrivalGamma:
		// Gamma(k, θ) with kθ = mean.
		gap = gammaSample(rng, t.Shape) * (mean / t.Shape)
	default: // poisson: exponential interarrivals
		gap = rng.ExpFloat64() * mean
	}
	d := time.Duration(gap * float64(time.Second))
	if d < time.Nanosecond {
		d = time.Nanosecond // keep virtual time strictly advancing
	}
	return d
}

// weights returns the tenant's effective selection weights: explicit
// shares, or Zipf ranks over declaration order.
func (t TenantSpec) weights() []float64 {
	w := make([]float64, len(t.Funcs))
	for i, fs := range t.Funcs {
		if t.Zipf > 0 {
			w[i] = math.Pow(float64(i+1), -t.Zipf)
		} else {
			w[i] = fs.Weight
		}
	}
	return w
}

// pickFn selects a function from the mix.
func (t TenantSpec) pickFn(rng *rand.Rand, w []float64) string {
	total := 0.0
	for _, x := range w {
		total += x
	}
	u := rng.Float64() * total
	for i, x := range w {
		u -= x
		if u < 0 {
			return t.Funcs[i].Name
		}
	}
	return t.Funcs[len(t.Funcs)-1].Name
}

// TenantArrivals generates one tenant's arrival stream over the
// horizon. The stream is a pure function of (clusterSeed, spec).
func TenantArrivals(clusterSeed int64, t TenantSpec, horizon time.Duration) []Arrival {
	rng := rand.New(rand.NewSource(tenantSeed(clusterSeed, t)))
	class := t.Class
	if class == "" {
		class = ClassStandard
	}
	w := t.weights()
	var out []Arrival
	at := time.Duration(0)
	for {
		at += t.interarrival(rng)
		if at >= horizon {
			return out
		}
		out = append(out, Arrival{
			At:     at,
			Tenant: t.Name,
			Seq:    len(out),
			Fn:     t.pickFn(rng, w),
			Class:  class,
		})
	}
}

// Arrivals generates the merged region-wide arrival stream: every
// tenant's stream, sorted by (At, Tenant, Seq). Because each tenant's
// stream is seeded from its own name, the result is byte-identical
// under any permutation of the Tenants slice.
func (s ClusterSpec) Arrivals() ([]Arrival, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var all []Arrival
	for _, t := range s.Tenants {
		all = append(all, TenantArrivals(s.Seed, t, s.Horizon)...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Tenant != b.Tenant {
			return a.Tenant < b.Tenant
		}
		return a.Seq < b.Seq
	})
	return all, nil
}

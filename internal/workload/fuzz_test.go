package workload

import (
	"reflect"
	"testing"
)

// FuzzWorkloadSpec fuzzes the tenant-spec parser: any accepted line
// must validate, render canonically, and round-trip through
// String/ParseTenantSpec to the identical spec. The committed corpus
// under testdata/fuzz/FuzzWorkloadSpec seeds the interesting shapes.
func FuzzWorkloadSpec(f *testing.F) {
	seeds := []string{
		"name=acme rate=1.5 funcs=json:3,html:1",
		"name=batchco rate=0.5 arrival=gamma:0.5 funcs=image,video zipf=1.1",
		"name=burst rate=100 arrival=gamma:2 funcs=json class=latency seed=42",
		"name=t rate=2.5e-1 funcs=a:0.25,b:0.75 class=batch",
		"name=x rate=1 arrival=poisson funcs=json",
		"name=x rate=0 funcs=json",
		"name=x rate=1 funcs=json zipf=-1",
		"name=x rate=inf funcs=json",
		"name=x rate=1 funcs=json:nan",
		"rate=1 funcs=json",
		"",
		"name==x rate=1 funcs=json",
		"name=x rate=1 funcs=json seed=-9223372036854775808",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		spec, err := ParseTenantSpec(line)
		if err != nil {
			return // rejected input: nothing more to hold
		}
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("parser accepted %q but Validate rejects it: %v", line, verr)
		}
		canon := spec.String()
		again, err := ParseTenantSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q (of %q) does not reparse: %v", canon, line, err)
		}
		if !reflect.DeepEqual(spec, again) {
			t.Fatalf("round trip of %q drifted:\n first: %+v\nsecond: %+v", line, spec, again)
		}
		if again.String() != canon {
			t.Fatalf("canonical form of %q unstable: %q != %q", line, canon, again.String())
		}
	})
}

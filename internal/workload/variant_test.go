package workload

import "testing"

func TestVariantZeroIsBase(t *testing.T) {
	f, _ := ByName("json")
	base := f.GenTrace()
	v := f.GenTraceVariant(1, 0, 0)
	if len(v.Ops) != len(base.Ops) {
		t.Fatalf("zero variance changed the trace: %d vs %d ops", len(v.Ops), len(base.Ops))
	}
}

func TestVariantSkipsRegions(t *testing.T) {
	f, _ := ByName("json")
	base := f.GenTrace().Summarize()
	v := f.GenTraceVariant(1, 0.5, 0).Summarize()
	if v.UniquePages >= base.UniquePages {
		t.Fatalf("skipFrac=0.5 did not shrink the working set: %d vs %d",
			v.UniquePages, base.UniquePages)
	}
	if v.UniquePages < base.UniquePages/4 {
		t.Fatalf("skipFrac=0.5 removed too much: %d of %d", v.UniquePages, base.UniquePages)
	}
}

func TestVariantAddsWrites(t *testing.T) {
	f, _ := ByName("json")
	base := f.GenTrace().Summarize()
	v := f.GenTraceVariant(1, 0, 0.5).Summarize()
	if v.Writes <= base.Writes {
		t.Fatalf("extraWriteFrac did not add writes: %d vs %d", v.Writes, base.Writes)
	}
	if v.Accesses != base.Accesses {
		t.Fatalf("write promotion changed access count: %d vs %d", v.Accesses, base.Accesses)
	}
}

func TestVariantDeterministicPerSeed(t *testing.T) {
	f, _ := ByName("json")
	a := f.GenTraceVariant(3, 0.3, 0.2)
	b := f.GenTraceVariant(3, 0.3, 0.2)
	if len(a.Ops) != len(b.Ops) {
		t.Fatal("same variant seed produced different traces")
	}
	for i := range a.Ops {
		if a.Ops[i] != b.Ops[i] {
			t.Fatal("same variant seed produced different ops")
		}
	}
}

func TestVariantDiffersAcrossSeeds(t *testing.T) {
	f, _ := ByName("json")
	a := f.GenTraceVariant(1, 0.3, 0.2).Summarize()
	b := f.GenTraceVariant(2, 0.3, 0.2).Summarize()
	if a.UniquePages == b.UniquePages && a.Writes == b.Writes {
		t.Fatal("different variant seeds produced identical behaviour")
	}
}

func TestVariantStillValid(t *testing.T) {
	for _, fn := range Suite()[:4] {
		v := fn.GenTraceVariant(9, 0.4, 0.3)
		if err := v.Validate(); err != nil {
			t.Fatalf("%s: %v", fn.Name, err)
		}
	}
}

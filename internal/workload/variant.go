package workload

import (
	"math/rand"
	"time"

	"snapbpf/internal/trace"
)

// GenTraceVariant derives an invocation trace for a *different input*
// of the same function. The paper evaluates identical inputs and
// defers input variation to future work (§4 Methodology); this is that
// extension's workload model.
//
// A variant keeps the function's state layout (the snapshot is fixed)
// but perturbs behaviour in the three ways real input changes do:
//
//   - skipFrac of the working-set regions are not touched at all
//     (input-dependent code paths): prefetched pages go unused;
//   - extraWriteFrac of the read accesses become writes (different
//     intermediate results): private CoW copies grow per sandbox,
//     which is what erodes cross-sandbox deduplication;
//   - compute gaps are scaled by a small input-size factor.
//
// variantSeed selects the perturbation; the base trace (variantSeed
// irrelevant, fractions zero) is GenTrace.
func (f Function) GenTraceVariant(variantSeed int64, skipFrac, extraWriteFrac float64) *trace.Trace {
	base := f.GenTrace()
	if skipFrac <= 0 && extraWriteFrac <= 0 {
		return base
	}
	rng := rand.New(rand.NewSource(f.Seed*7919 + variantSeed))

	// Identify region boundaries in the base trace: a region is a
	// maximal run of OpAccess with ascending pages. We skip whole
	// regions, mirroring untaken code paths.
	skipRegion := false
	var lastPage int64 = -1 << 62
	scale := 0.9 + 0.2*rng.Float64() // input-size compute factor

	var ops []trace.Op
	for _, op := range base.Ops {
		switch op.Kind {
		case trace.OpAccess:
			// Within a region pages advance by one (or hop a one-page
			// hole); anything else is a region boundary.
			if op.Page < lastPage || op.Page > lastPage+2 {
				skipRegion = rng.Float64() < skipFrac
			}
			lastPage = op.Page
			if skipRegion {
				continue
			}
			if !op.Write && rng.Float64() < extraWriteFrac {
				op.Write = true
			}
			ops = append(ops, op)
		case trace.OpCompute:
			op.Gap = time.Duration(float64(op.Gap) * scale)
			ops = append(ops, op)
		default:
			ops = append(ops, op)
		}
	}
	t := &trace.Trace{Ops: ops}
	if err := t.Validate(); err != nil {
		panic("workload: variant produced invalid trace: " + err.Error())
	}
	return t
}

package workload

import "fmt"

// Suite returns the full evaluation suite: FunctionBench-style
// functions plus the three FaaSMem real-world workloads, in the order
// the paper's figures list them.
func Suite() []Function {
	return []Function{
		// --- FunctionBench ---
		{Name: "chameleon", MemMiB: 256, StateMiB: 140, WSMiB: 36, WSRegions: 60,
			AllocMiB: 24, ComputeMs: 120, WriteFrac: 0.18, Seed: 101},
		{Name: "cnn", MemMiB: 512, StateMiB: 320, WSMiB: 130, WSRegions: 90,
			AllocMiB: 28, ComputeMs: 260, WriteFrac: 0.08, Seed: 102},
		{Name: "dd", MemMiB: 256, StateMiB: 96, WSMiB: 18, WSRegions: 12,
			AllocMiB: 120, ComputeMs: 90, WriteFrac: 0.25, Seed: 103},
		{Name: "float", MemMiB: 256, StateMiB: 90, WSMiB: 12, WSRegions: 16,
			AllocMiB: 4, ComputeMs: 70, WriteFrac: 0.12, Seed: 104},
		{Name: "image", MemMiB: 512, StateMiB: 200, WSMiB: 44, WSRegions: 48,
			AllocMiB: 220, ComputeMs: 150, WriteFrac: 0.22, Seed: 105},
		{Name: "json", MemMiB: 256, StateMiB: 120, WSMiB: 26, WSRegions: 40,
			AllocMiB: 10, ComputeMs: 80, WriteFrac: 0.15, Seed: 106},
		{Name: "linpack", MemMiB: 256, StateMiB: 150, WSMiB: 30, WSRegions: 8,
			AllocMiB: 36, ComputeMs: 140, WriteFrac: 0.20, Seed: 107},
		{Name: "lr", MemMiB: 256, StateMiB: 160, WSMiB: 42, WSRegions: 32,
			AllocMiB: 26, ComputeMs: 130, WriteFrac: 0.14, Seed: 108},
		{Name: "matmul", MemMiB: 256, StateMiB: 150, WSMiB: 32, WSRegions: 10,
			AllocMiB: 56, ComputeMs: 150, WriteFrac: 0.24, Seed: 109},
		{Name: "pyaes", MemMiB: 256, StateMiB: 88, WSMiB: 9, WSRegions: 18,
			AllocMiB: 6, ComputeMs: 55, WriteFrac: 0.10, Seed: 110},
		{Name: "rnn", MemMiB: 512, StateMiB: 300, WSMiB: 115, WSRegions: 75,
			AllocMiB: 12, ComputeMs: 230, WriteFrac: 0.06, Seed: 111},
		{Name: "video", MemMiB: 512, StateMiB: 190, WSMiB: 58, WSRegions: 26,
			AllocMiB: 160, ComputeMs: 280, WriteFrac: 0.25, Seed: 112},
		// --- FaaSMem real-world workloads ---
		{Name: "html", MemMiB: 256, StateMiB: 112, WSMiB: 16, WSRegions: 28,
			AllocMiB: 6, ComputeMs: 45, WriteFrac: 0.10, Seed: 113},
		{Name: "bfs", MemMiB: 1024, StateMiB: 640, WSMiB: 420, WSRegions: 130,
			AllocMiB: 28, ComputeMs: 420, WriteFrac: 0.03, Seed: 114},
		{Name: "bert", MemMiB: 2048, StateMiB: 1280, WSMiB: 820, WSRegions: 160,
			AllocMiB: 40, ComputeMs: 850, WriteFrac: 0.02, Seed: 115},
	}
}

// ByName returns the suite function with the given name.
func ByName(name string) (Function, error) {
	for _, f := range Suite() {
		if f.Name == name {
			return f, nil
		}
	}
	return Function{}, fmt.Errorf("workload: unknown function %q", name)
}

// Names returns the suite's function names in figure order.
func Names() []string {
	fs := Suite()
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.Name
	}
	return out
}

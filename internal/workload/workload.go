// Package workload defines the function suite the paper evaluates:
// twelve FunctionBench-style functions plus the three real-world
// FaaSMem workloads (html_serving, graph_bfs, bert). Each function is
// a parameterised behavioural model — snapshot size, working-set size
// and spatial layout, ephemeral allocation volume, compute time — from
// which a deterministic access trace is generated.
//
// The parameters are calibrated to the relative characteristics the
// paper reports: model-serving functions (rnn, cnn, bert) have large
// initialized working sets and little allocation; data-movement
// functions (dd, image, video) allocate heavily during invocation,
// which is what the PV PTE-marking mechanism accelerates (§4,
// Breakdown); bfs and bert have the working sets that dominate the
// concurrent-invocation memory and latency results (Fig. 3b/3c).
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"snapbpf/internal/guest"
	"snapbpf/internal/trace"
	"snapbpf/internal/units"
)

// Function is the behavioural model of one serverless function.
type Function struct {
	Name string

	// MemMiB is guest memory size; StateMiB is the initialized prefix
	// at snapshot time (kernel + runtime + function state).
	MemMiB   int64
	StateMiB int64

	// WSMiB is the invocation working set drawn from the state;
	// WSRegions is how many contiguous regions it fragments into
	// (spatial locality: fewer regions = more sequential).
	WSMiB     int64
	WSRegions int

	// AllocMiB is ephemeral memory allocated (written, then partly
	// freed) during the invocation.
	AllocMiB int64

	// ComputeMs is the pure CPU time of one invocation.
	ComputeMs int64

	// WriteFrac is the fraction of working-set accesses that write
	// (breaking CoW on snapshot pages).
	WriteFrac float64

	// Seed fixes trace generation.
	Seed int64
}

// Validate checks parameter sanity.
func (f Function) Validate() error {
	if f.Name == "" {
		return fmt.Errorf("workload: empty name")
	}
	if f.StateMiB > f.MemMiB {
		return fmt.Errorf("workload %s: state %dMiB > mem %dMiB", f.Name, f.StateMiB, f.MemMiB)
	}
	if f.WSMiB > f.StateMiB {
		return fmt.Errorf("workload %s: ws %dMiB > state %dMiB", f.Name, f.WSMiB, f.StateMiB)
	}
	if f.AllocMiB > f.MemMiB-f.StateMiB {
		return fmt.Errorf("workload %s: alloc %dMiB > free pool %dMiB", f.Name, f.AllocMiB, f.MemMiB-f.StateMiB)
	}
	if f.WSRegions <= 0 {
		return fmt.Errorf("workload %s: no WS regions", f.Name)
	}
	if f.WriteFrac < 0 || f.WriteFrac > 1 {
		return fmt.Errorf("workload %s: bad write fraction %v", f.Name, f.WriteFrac)
	}
	return nil
}

// pagesOf converts MiB to 4KiB pages.
func pagesOf(mib int64) int64 { return (units.ByteSize(mib) * units.MiB).Pages() }

// MemPages returns guest memory size in pages.
func (f Function) MemPages() int64 { return pagesOf(f.MemMiB) }

// StatePages returns the initialized page count.
func (f Function) StatePages() int64 { return pagesOf(f.StateMiB) }

// WSPages returns the working-set page count.
func (f Function) WSPages() int64 { return pagesOf(f.WSMiB) }

// AllocPages returns the ephemeral allocation page count.
func (f Function) AllocPages() int64 { return pagesOf(f.AllocMiB) }

// GuestConfig returns the guest kernel configuration for this
// function's snapshot.
func (f Function) GuestConfig(pvMarking, zeroOnFree bool) guest.Config {
	return guest.Config{
		NrPages:    f.MemPages(),
		StatePages: f.StatePages(),
		PVMarking:  pvMarking,
		ZeroOnFree: zeroOnFree,
	}
}

// GenTrace generates the function's deterministic invocation trace.
//
// Structure: the working set is split into WSRegions contiguous
// regions placed pseudo-randomly in the state area. Regions are
// visited in shuffled order (so file offsets are touched
// non-sequentially, as real faults arrive); pages within a region are
// visited sequentially. Compute time is spread between accesses.
// Ephemeral allocations are interleaved at region boundaries in a few
// large blocks, written on first touch, and ~half are freed before
// the trace ends (the rest die with the sandbox).
func (f Function) GenTrace() *trace.Trace {
	if err := f.Validate(); err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(f.Seed))

	statePages := f.StatePages()
	wsPages := f.WSPages()
	regions := f.regions(rng, statePages, wsPages)

	// Shuffled region visit order.
	order := rng.Perm(len(regions))

	// Compute budget: a slice of the total per access, with the
	// remainder emitted as a final compute op.
	totalCompute := time.Duration(f.ComputeMs) * time.Millisecond
	var accessCount int64 = wsPages
	allocPages := f.AllocPages()
	accessCount += allocPages
	perAccess := time.Duration(0)
	if accessCount > 0 {
		perAccess = totalCompute * 8 / 10 / time.Duration(accessCount)
	}

	// Allocation plan: split AllocMiB into up to 8 blocks, injected at
	// evenly spaced region boundaries.
	type allocPlan struct {
		handle  int32
		nPages  int64
		atIdx   int
		freeIdx int // region index after which it is freed; -1 = never
	}
	var allocs []allocPlan
	if allocPages > 0 {
		nBlocks := 8
		if allocPages < int64(nBlocks) {
			nBlocks = int(allocPages)
		}
		per := allocPages / int64(nBlocks)
		extra := allocPages - per*int64(nBlocks)
		for b := 0; b < nBlocks; b++ {
			n := per
			if int64(b) < extra {
				n++
			}
			at := 0
			if len(regions) > 0 {
				at = b * len(regions) / nBlocks
			}
			freeAt := -1
			if b%2 == 0 && len(regions) > 0 { // ~half freed mid-run
				freeAt = at + (len(regions)-at)/2
			}
			allocs = append(allocs, allocPlan{
				handle: int32(b + 1), nPages: n, atIdx: at, freeIdx: freeAt,
			})
		}
	}

	var ops []trace.Op
	emitCompute := func(d time.Duration) {
		if d > 0 {
			ops = append(ops, trace.Op{Kind: trace.OpCompute, Gap: d})
		}
	}

	for vi, ri := range order {
		// Inject allocations scheduled at this visit index.
		for _, ap := range allocs {
			if ap.atIdx == vi {
				ops = append(ops, trace.Op{Kind: trace.OpAlloc, Handle: ap.handle, NPages: int32(ap.nPages)})
				for off := int32(0); off < int32(ap.nPages); off++ {
					ops = append(ops, trace.Op{Kind: trace.OpTouch, Handle: ap.handle, Offset: off, Write: true})
					emitCompute(perAccess)
				}
			}
		}
		r := regions[ri]
		// Within a region, pages are visited near-sequentially but
		// with a periodic hole (every holePeriod-th frame is never
		// touched): real working sets are not perfectly contiguous,
		// which is what makes SnapBPF's grouping and FaaSnap's
		// coalescing non-trivial.
		emitted := int64(0)
		for pos := r.start; emitted < r.n; pos++ {
			if (pos-r.start)%holePeriod == holePeriod-1 {
				continue
			}
			ops = append(ops, trace.Op{
				Kind:  trace.OpAccess,
				Page:  pos,
				Write: rng.Float64() < f.WriteFrac,
			})
			emitted++
			emitCompute(perAccess)
		}
		// Frees scheduled after this visit index.
		for _, ap := range allocs {
			if ap.freeIdx == vi {
				ops = append(ops, trace.Op{Kind: trace.OpFree, Handle: ap.handle})
			}
		}
	}
	// Free any still-scheduled-but-unreached frees (freeIdx beyond the
	// last region) are simply dropped: memory dies with the sandbox.

	// Warm re-access of a sample of the working set (second pass hits).
	if len(regions) > 0 {
		r := regions[order[0]]
		for pg := r.start; pg < r.start+r.n && pg < r.start+32; pg++ {
			ops = append(ops, trace.Op{Kind: trace.OpAccess, Page: pg})
		}
	}

	// Remaining compute tail.
	spent := perAccess * time.Duration(accessCount)
	if tail := totalCompute - spent; tail > 0 {
		emitCompute(tail)
	}

	t := &trace.Trace{Ops: ops}
	if err := t.Validate(); err != nil {
		panic(fmt.Sprintf("workload %s: generated invalid trace: %v", f.Name, err))
	}
	return t
}

// holePeriod is the spatial-fragmentation parameter: within a
// working-set region every holePeriod-th frame is left untouched.
const holePeriod = 48

type region struct{ start, n int64 }

// regions carves wsPages into f.WSRegions disjoint runs within
// [0, statePages).
func (f Function) regions(rng *rand.Rand, statePages, wsPages int64) []region {
	nr := int64(f.WSRegions)
	if nr > wsPages {
		nr = wsPages
	}
	if nr == 0 {
		return nil
	}
	base := wsPages / nr
	extra := wsPages - base*nr

	// Place regions by slicing the state area into nr equal slots and
	// placing each region at a random offset inside its slot, which
	// guarantees disjointness.
	slot := statePages / nr
	out := make([]region, 0, nr)
	for i := int64(0); i < nr; i++ {
		n := base
		if i < extra {
			n++
		}
		// The emitted span is n plus one hole per holePeriod-1 pages;
		// cap n so the span fits in the slot.
		maxN := slot - slot/holePeriod - 1
		if maxN < 1 {
			maxN = 1
		}
		if n > maxN {
			n = maxN
		}
		span := n + n/(holePeriod-1) + 1
		lo := i * slot
		maxOff := slot - span
		off := int64(0)
		if maxOff > 0 {
			off = rng.Int63n(maxOff)
		}
		out = append(out, region{start: lo + off, n: n})
	}
	return out
}

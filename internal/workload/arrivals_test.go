package workload

import (
	"math"
	"reflect"
	"testing"
	"time"
)

func jsonOnly() []FuncShare { return []FuncShare{{Name: "json", Weight: 1}} }

// Same seed, same spec: the arrival stream must be identical — the
// cluster experiment's byte-pinned CSV stands on this.
func TestArrivalsDeterministic(t *testing.T) {
	spec := ClusterSpec{
		Seed:    7,
		Horizon: 30 * time.Second,
		Tenants: []TenantSpec{
			{Name: "a", RatePerSec: 3, Arrival: ArrivalPoisson, Funcs: jsonOnly()},
			{Name: "b", RatePerSec: 2, Arrival: ArrivalGamma, Shape: 0.5, Funcs: jsonOnly()},
		},
	}
	first, err := spec.Arrivals()
	if err != nil {
		t.Fatal(err)
	}
	second, err := spec.Arrivals()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("same spec generated different arrival streams")
	}
	if len(first) == 0 {
		t.Fatal("empty arrival stream")
	}
	for i := 1; i < len(first); i++ {
		if first[i].At < first[i-1].At {
			t.Fatalf("arrivals not time-sorted at %d: %v < %v", i, first[i].At, first[i-1].At)
		}
	}
}

// Permuting tenant declaration order must not change the merged
// stream: each tenant's randomness is seeded from its own name.
func TestArrivalsTenantOrderInvariant(t *testing.T) {
	a := TenantSpec{Name: "a", RatePerSec: 3, Arrival: ArrivalPoisson, Funcs: jsonOnly(), Class: "latency"}
	b := TenantSpec{Name: "b", RatePerSec: 2, Arrival: ArrivalGamma, Shape: 2, Funcs: jsonOnly()}
	c := TenantSpec{Name: "c", RatePerSec: 1, Arrival: ArrivalPoisson, Funcs: jsonOnly(), Class: "batch"}
	base := ClusterSpec{Seed: 11, Horizon: 20 * time.Second, Tenants: []TenantSpec{a, b, c}}
	perm := ClusterSpec{Seed: 11, Horizon: 20 * time.Second, Tenants: []TenantSpec{c, a, b}}
	want, err := base.Arrivals()
	if err != nil {
		t.Fatal(err)
	}
	got, err := perm.Arrivals()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("permuting tenant declaration order changed the arrival stream")
	}
}

// An explicit tenant seed pins the stream regardless of cluster seed.
func TestArrivalsExplicitSeed(t *testing.T) {
	spec := TenantSpec{Name: "x", RatePerSec: 5, Arrival: ArrivalPoisson, Funcs: jsonOnly(), Seed: 99}
	one := TenantArrivals(1, spec, 10*time.Second)
	two := TenantArrivals(2, spec, 10*time.Second)
	if !reflect.DeepEqual(one, two) {
		t.Error("explicit tenant seed did not pin the stream across cluster seeds")
	}
	spec.Seed = 0
	three := TenantArrivals(1, spec, 10*time.Second)
	four := TenantArrivals(2, spec, 10*time.Second)
	if reflect.DeepEqual(three, four) {
		t.Error("derived seeds identical across different cluster seeds")
	}
}

// meanGap returns the mean interarrival of a stream.
func meanGap(as []Arrival) float64 {
	if len(as) < 2 {
		return math.NaN()
	}
	total := as[len(as)-1].At - as[0].At
	return total.Seconds() / float64(len(as)-1)
}

// Interarrival means must land within tolerance of 1/rate for every
// arrival process — the seeded-determinism property from the issue.
func TestInterarrivalMeans(t *testing.T) {
	const (
		rate    = 5.0
		horizon = 400 * time.Second // ~2000 samples
		tol     = 0.10
	)
	cases := []TenantSpec{
		{Name: "poisson", RatePerSec: rate, Arrival: ArrivalPoisson, Funcs: jsonOnly()},
		{Name: "gamma-burst", RatePerSec: rate, Arrival: ArrivalGamma, Shape: 0.5, Funcs: jsonOnly()},
		{Name: "gamma-smooth", RatePerSec: rate, Arrival: ArrivalGamma, Shape: 4, Funcs: jsonOnly()},
	}
	for _, spec := range cases {
		as := TenantArrivals(1, spec, horizon)
		if len(as) < 100 {
			t.Fatalf("%s: only %d arrivals", spec.Name, len(as))
		}
		want := 1 / rate
		got := meanGap(as)
		if math.Abs(got-want)/want > tol {
			t.Errorf("%s: mean interarrival %.4fs, want %.4fs ± %.0f%%", spec.Name, got, want, tol*100)
		}
	}
}

// Zipf popularity must order function frequencies by rank.
func TestZipfPopularity(t *testing.T) {
	spec := TenantSpec{
		Name: "z", RatePerSec: 50, Arrival: ArrivalPoisson,
		Funcs: []FuncShare{{Name: "first"}, {Name: "second"}, {Name: "third"}},
		Zipf:  1.2,
	}
	as := TenantArrivals(1, spec, 100*time.Second) // ~5000 samples
	counts := make(map[string]int)
	for _, a := range as {
		counts[a.Fn]++
	}
	if !(counts["first"] > counts["second"] && counts["second"] > counts["third"]) {
		t.Errorf("zipf rank order violated: %v", counts)
	}
	if counts["third"] == 0 {
		t.Error("zipf starved the tail rank entirely")
	}
}

// Explicit weights must drive selection shares.
func TestWeightedMix(t *testing.T) {
	spec := TenantSpec{
		Name: "w", RatePerSec: 50, Arrival: ArrivalPoisson,
		Funcs: []FuncShare{{Name: "hot", Weight: 9}, {Name: "cold", Weight: 1}},
	}
	as := TenantArrivals(1, spec, 100*time.Second)
	hot := 0
	for _, a := range as {
		if a.Fn == "hot" {
			hot++
		}
	}
	share := float64(hot) / float64(len(as))
	if share < 0.85 || share > 0.95 {
		t.Errorf("hot share %.3f, want ~0.9", share)
	}
}

// Default class is standard; declared classes pass through.
func TestArrivalClass(t *testing.T) {
	spec := TenantSpec{Name: "x", RatePerSec: 5, Arrival: ArrivalPoisson, Funcs: jsonOnly()}
	for _, a := range TenantArrivals(1, spec, 5*time.Second) {
		if a.Class != ClassStandard {
			t.Fatalf("default class = %q, want standard", a.Class)
		}
	}
	spec.Class = ClassBatch
	for _, a := range TenantArrivals(1, spec, 5*time.Second) {
		if a.Class != ClassBatch {
			t.Fatalf("class = %q, want batch", a.Class)
		}
	}
}

func TestArrivalsRejectsInvalidSpec(t *testing.T) {
	bad := ClusterSpec{Horizon: time.Second}
	if _, err := bad.Arrivals(); err == nil {
		t.Error("invalid spec accepted")
	}
}

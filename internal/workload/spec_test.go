package workload

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestParseTenantSpecRoundTrip(t *testing.T) {
	lines := []string{
		"name=acme rate=1.5 funcs=json:3,html:1",
		"name=acme rate=1.5 arrival=poisson funcs=json:1",
		"name=batchco rate=0.5 arrival=gamma:0.5 funcs=image,video zipf=1.1",
		"name=burst rate=100 arrival=gamma:2 funcs=json:1 class=latency seed=42",
		"name=t rate=2.5e-1 funcs=a:0.25,b:0.75 class=batch",
	}
	for _, line := range lines {
		spec, err := ParseTenantSpec(line)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		again, err := ParseTenantSpec(spec.String())
		if err != nil {
			t.Fatalf("reparse %q (from %q): %v", spec.String(), line, err)
		}
		if !reflect.DeepEqual(spec, again) {
			t.Errorf("round trip of %q: %+v != %+v", line, spec, again)
		}
		if spec.String() != again.String() {
			t.Errorf("canonical form of %q unstable: %q != %q", line, spec.String(), again.String())
		}
	}
}

func TestParseTenantSpecDefaults(t *testing.T) {
	spec, err := ParseTenantSpec("name=x rate=1 funcs=json,html")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Arrival != ArrivalPoisson {
		t.Errorf("default arrival = %q, want poisson", spec.Arrival)
	}
	for _, fs := range spec.Funcs {
		if fs.Weight != 1 {
			t.Errorf("default weight for %s = %v, want 1", fs.Name, fs.Weight)
		}
	}
	gamma, err := ParseTenantSpec("name=x rate=1 arrival=gamma funcs=json")
	if err != nil {
		t.Fatal(err)
	}
	if gamma.Shape != 1 {
		t.Errorf("bare gamma shape = %v, want 1", gamma.Shape)
	}
}

func TestParseTenantSpecErrors(t *testing.T) {
	cases := []struct {
		line, want string
	}{
		{"", "missing required key"},
		{"name=x rate=1", "missing required key \"funcs\""},
		{"rate=1 funcs=json", "missing required key \"name\""},
		{"name=x funcs=json", "missing required key \"rate\""},
		{"name=x rate=0 funcs=json", "rate must be positive"},
		{"name=x rate=-2 funcs=json", "rate must be positive"},
		{"name=x rate=NaN funcs=json", "rate must be positive"},
		{"name=x rate=1 funcs=json name=y", "duplicate key"},
		{"name=x rate=1 funcs=json,json", "duplicate function"},
		{"name=x rate=1 funcs=json:-1", "bad weight"},
		{"name=x rate=1 funcs=json:0,html:0", "weights sum to zero"},
		{"name=x rate=1 funcs=json:2 zipf=1", "mutually exclusive"},
		{"name=x rate=1 funcs=json zipf=-1", "zipf exponent"},
		{"name=x rate=1 arrival=uniform funcs=json", "unknown arrival"},
		{"name=x rate=1 arrival=poisson:2 funcs=json", "takes no parameter"},
		{"name=x rate=1 arrival=gamma:0 funcs=json", "gamma shape"},
		{"name=x rate=1 funcs=json color=red", "unknown tenant spec key"},
		{"name=x rate=1 funcs=json garbage", "not key=value"},
		{"name=a=b rate=1 funcs=json", "separator characters"},
		{"name=x rate=1 funcs=", "empty function name"},
		{"name=x rate=1 funcs=json seed=abc", "bad seed"},
	}
	for _, c := range cases {
		if _, err := ParseTenantSpec(c.line); err == nil {
			t.Errorf("parse %q: expected error containing %q, got nil", c.line, c.want)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("parse %q: error %q does not contain %q", c.line, err, c.want)
		}
	}
}

func TestClusterSpecValidate(t *testing.T) {
	ok := TenantSpec{Name: "a", RatePerSec: 1, Arrival: ArrivalPoisson,
		Funcs: []FuncShare{{Name: "json", Weight: 1}}}
	cases := []struct {
		name string
		spec ClusterSpec
		want string
	}{
		{"no tenants", ClusterSpec{Horizon: time.Second}, "no tenants"},
		{"no horizon", ClusterSpec{Tenants: []TenantSpec{ok}}, "horizon"},
		{"duplicate tenant", ClusterSpec{Tenants: []TenantSpec{ok, ok}, Horizon: time.Second}, "duplicate tenant"},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); err == nil {
			t.Errorf("%s: expected error containing %q", c.name, c.want)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
	good := ClusterSpec{Tenants: []TenantSpec{ok}, Horizon: time.Second}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestClusterSpecFunctionNames(t *testing.T) {
	spec := ClusterSpec{
		Horizon: time.Second,
		Tenants: []TenantSpec{
			{Name: "a", RatePerSec: 1, Arrival: ArrivalPoisson,
				Funcs: []FuncShare{{Name: "json", Weight: 1}, {Name: "html", Weight: 1}}},
			{Name: "b", RatePerSec: 1, Arrival: ArrivalPoisson,
				Funcs: []FuncShare{{Name: "json", Weight: 1}, {Name: "bert", Weight: 1}}},
		},
	}
	got := spec.FunctionNames()
	want := []string{"bert", "html", "json"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("FunctionNames = %v, want %v", got, want)
	}
}

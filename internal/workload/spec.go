package workload

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// SLOClass labels an invocation's latency expectation. Classes are
// free-form strings; the three below are the conventional tiers the
// cluster experiment reports on.
type SLOClass string

// Conventional SLO classes.
const (
	ClassLatency  SLOClass = "latency"  // interactive, cold starts hurt
	ClassStandard SLOClass = "standard" // default tier
	ClassBatch    SLOClass = "batch"    // throughput-oriented
)

// Arrival kinds for TenantSpec.Arrival.
const (
	ArrivalPoisson = "poisson"
	ArrivalGamma   = "gamma"
)

// FuncShare is one function in a tenant's mix with its selection
// weight. Weights are relative; they need not sum to anything.
type FuncShare struct {
	Name   string
	Weight float64
}

// TenantSpec describes one tenant's traffic: an arrival process, a
// function mix, and an SLO class. The zero value is invalid; build
// specs literally or with ParseTenantSpec.
type TenantSpec struct {
	Name string

	// RatePerSec is the mean arrival rate.
	RatePerSec float64

	// Arrival selects the interarrival distribution: ArrivalPoisson
	// (exponential interarrivals) or ArrivalGamma with Shape (burstier
	// than Poisson when Shape < 1, smoother when Shape > 1). The mean
	// interarrival is 1/RatePerSec either way.
	Arrival string
	Shape   float64 // gamma shape k; ignored for poisson

	// Funcs is the tenant's function mix. With Zipf == 0 each entry's
	// Weight is its relative share; with Zipf = s > 0 the weights are
	// ignored and entry i (in declaration order, rank i+1) is chosen
	// with probability proportional to 1/(i+1)^s.
	Funcs []FuncShare
	Zipf  float64

	// Class tags every invocation of this tenant. Empty means
	// ClassStandard.
	Class SLOClass

	// Seed, when nonzero, fixes this tenant's private random stream.
	// When zero the stream is derived from the cluster seed and the
	// tenant name, which makes the generated arrivals independent of
	// tenant declaration order.
	Seed int64
}

// Validate checks spec sanity.
func (t TenantSpec) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("workload: tenant with empty name")
	}
	if strings.ContainsAny(t.Name, " \t\n=,:") {
		return fmt.Errorf("workload: tenant name %q contains separator characters", t.Name)
	}
	if !(t.RatePerSec > 0) || math.IsInf(t.RatePerSec, 0) {
		return fmt.Errorf("workload: tenant %s: rate must be positive and finite, got %v", t.Name, t.RatePerSec)
	}
	switch t.Arrival {
	case ArrivalPoisson:
	case ArrivalGamma:
		if !(t.Shape > 0) || math.IsInf(t.Shape, 0) {
			return fmt.Errorf("workload: tenant %s: gamma shape must be positive and finite, got %v", t.Name, t.Shape)
		}
	default:
		return fmt.Errorf("workload: tenant %s: unknown arrival process %q", t.Name, t.Arrival)
	}
	if len(t.Funcs) == 0 {
		return fmt.Errorf("workload: tenant %s: empty function mix", t.Name)
	}
	if t.Zipf < 0 || math.IsInf(t.Zipf, 0) || math.IsNaN(t.Zipf) {
		return fmt.Errorf("workload: tenant %s: zipf exponent must be >= 0 and finite, got %v", t.Name, t.Zipf)
	}
	seen := make(map[string]bool, len(t.Funcs))
	total := 0.0
	for _, fs := range t.Funcs {
		if fs.Name == "" {
			return fmt.Errorf("workload: tenant %s: empty function name", t.Name)
		}
		if strings.ContainsAny(fs.Name, " \t\n=,:") {
			return fmt.Errorf("workload: tenant %s: function name %q contains separator characters", t.Name, fs.Name)
		}
		if seen[fs.Name] {
			return fmt.Errorf("workload: tenant %s: duplicate function %s", t.Name, fs.Name)
		}
		seen[fs.Name] = true
		if fs.Weight < 0 || math.IsInf(fs.Weight, 0) || math.IsNaN(fs.Weight) {
			return fmt.Errorf("workload: tenant %s: function %s: bad weight %v", t.Name, fs.Name, fs.Weight)
		}
		total += fs.Weight
	}
	if t.Zipf == 0 && !(total > 0) {
		return fmt.Errorf("workload: tenant %s: function weights sum to zero", t.Name)
	}
	if strings.ContainsAny(string(t.Class), " \t\n=,:") {
		return fmt.Errorf("workload: tenant %s: class %q contains separator characters", t.Name, t.Class)
	}
	return nil
}

// ParseTenantSpec parses the one-line tenant syntax used by the bench
// CLI and test fixtures:
//
//	name=acme rate=2.5 arrival=poisson funcs=json:3,html:1 class=latency
//	name=batchco rate=0.5 arrival=gamma:0.5 funcs=image,video zipf=1.1
//
// Keys may appear in any order; name, rate, arrival, and funcs are
// required. funcs entries are name[:weight] (weight defaults to 1).
// With zipf set, per-function weights are rejected: the exponent
// alone determines the mix. The result round-trips through String.
func ParseTenantSpec(line string) (TenantSpec, error) {
	var t TenantSpec
	t.Arrival = ArrivalPoisson
	seen := make(map[string]bool)
	explicitWeight := false
	for _, tok := range strings.Fields(line) {
		key, val, ok := strings.Cut(tok, "=")
		if !ok || key == "" {
			return t, fmt.Errorf("workload: tenant spec token %q is not key=value", tok)
		}
		if seen[key] {
			return t, fmt.Errorf("workload: duplicate key %q in tenant spec", key)
		}
		seen[key] = true
		switch key {
		case "name":
			t.Name = val
		case "rate":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return t, fmt.Errorf("workload: bad rate %q: %v", val, err)
			}
			t.RatePerSec = f
		case "arrival":
			kind, shape, hasShape := strings.Cut(val, ":")
			t.Arrival = kind
			if hasShape {
				if kind != ArrivalGamma {
					return t, fmt.Errorf("workload: arrival %q takes no parameter", kind)
				}
				f, err := strconv.ParseFloat(shape, 64)
				if err != nil {
					return t, fmt.Errorf("workload: bad gamma shape %q: %v", shape, err)
				}
				t.Shape = f
			} else if kind == ArrivalGamma {
				t.Shape = 1
			}
		case "funcs":
			for _, ent := range strings.Split(val, ",") {
				name, w, hasW := strings.Cut(ent, ":")
				fs := FuncShare{Name: name, Weight: 1}
				if hasW {
					f, err := strconv.ParseFloat(w, 64)
					if err != nil {
						return t, fmt.Errorf("workload: bad weight %q for function %q: %v", w, name, err)
					}
					fs.Weight = f
					explicitWeight = true
				}
				t.Funcs = append(t.Funcs, fs)
			}
		case "zipf":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return t, fmt.Errorf("workload: bad zipf exponent %q: %v", val, err)
			}
			t.Zipf = f
		case "class":
			t.Class = SLOClass(val)
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return t, fmt.Errorf("workload: bad seed %q: %v", val, err)
			}
			t.Seed = n
		default:
			return t, fmt.Errorf("workload: unknown tenant spec key %q", key)
		}
	}
	for _, req := range []string{"name", "rate", "funcs"} {
		if !seen[req] {
			return t, fmt.Errorf("workload: tenant spec missing required key %q", req)
		}
	}
	if t.Zipf > 0 && explicitWeight {
		return t, fmt.Errorf("workload: tenant %s: zipf and explicit function weights are mutually exclusive", t.Name)
	}
	if err := t.Validate(); err != nil {
		return t, err
	}
	return t, nil
}

// String renders the spec in the canonical one-line syntax;
// ParseTenantSpec(t.String()) reproduces t exactly for valid specs.
func (t TenantSpec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "name=%s rate=%s", t.Name, strconv.FormatFloat(t.RatePerSec, 'g', -1, 64))
	if t.Arrival == ArrivalGamma {
		fmt.Fprintf(&b, " arrival=gamma:%s", strconv.FormatFloat(t.Shape, 'g', -1, 64))
	} else {
		fmt.Fprintf(&b, " arrival=%s", t.Arrival)
	}
	b.WriteString(" funcs=")
	for i, fs := range t.Funcs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(fs.Name)
		if t.Zipf == 0 {
			fmt.Fprintf(&b, ":%s", strconv.FormatFloat(fs.Weight, 'g', -1, 64))
		}
	}
	if t.Zipf > 0 {
		fmt.Fprintf(&b, " zipf=%s", strconv.FormatFloat(t.Zipf, 'g', -1, 64))
	}
	if t.Class != "" {
		fmt.Fprintf(&b, " class=%s", t.Class)
	}
	if t.Seed != 0 {
		fmt.Fprintf(&b, " seed=%d", t.Seed)
	}
	return b.String()
}

// ClusterSpec is a full region workload: a set of tenants generating
// traffic over a fixed horizon from one master seed.
type ClusterSpec struct {
	Tenants []TenantSpec
	Horizon time.Duration
	Seed    int64
}

// Validate checks the spec and every tenant.
func (s ClusterSpec) Validate() error {
	if len(s.Tenants) == 0 {
		return fmt.Errorf("workload: cluster spec has no tenants")
	}
	if s.Horizon <= 0 {
		return fmt.Errorf("workload: cluster horizon must be positive, got %v", s.Horizon)
	}
	names := make(map[string]bool, len(s.Tenants))
	for _, t := range s.Tenants {
		if err := t.Validate(); err != nil {
			return err
		}
		if names[t.Name] {
			return fmt.Errorf("workload: duplicate tenant %s", t.Name)
		}
		names[t.Name] = true
	}
	return nil
}

// FunctionNames returns the sorted distinct function names across all
// tenants' mixes.
func (s ClusterSpec) FunctionNames() []string {
	seen := make(map[string]bool)
	var names []string
	for _, t := range s.Tenants {
		for _, fs := range t.Funcs {
			if !seen[fs.Name] {
				seen[fs.Name] = true
				names = append(names, fs.Name)
			}
		}
	}
	sort.Strings(names)
	return names
}

package workload

import (
	"testing"
	"time"
)

func TestSuiteValid(t *testing.T) {
	fs := Suite()
	if len(fs) != 15 {
		t.Fatalf("suite has %d functions, want 15", len(fs))
	}
	seen := make(map[string]bool)
	for _, f := range fs {
		if err := f.Validate(); err != nil {
			t.Errorf("%s: %v", f.Name, err)
		}
		if seen[f.Name] {
			t.Errorf("duplicate function %s", f.Name)
		}
		seen[f.Name] = true
	}
	for _, want := range []string{"json", "image", "rnn", "bert", "bfs", "html"} {
		if !seen[want] {
			t.Errorf("suite missing %s", want)
		}
	}
}

func TestByName(t *testing.T) {
	f, err := ByName("bert")
	if err != nil || f.Name != "bert" {
		t.Fatalf("ByName(bert) = %v, %v", f, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestGenTraceDeterministic(t *testing.T) {
	f, _ := ByName("json")
	a, b := f.GenTrace(), f.GenTrace()
	if len(a.Ops) != len(b.Ops) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Ops), len(b.Ops))
	}
	for i := range a.Ops {
		if a.Ops[i] != b.Ops[i] {
			t.Fatalf("op %d differs", i)
		}
	}
}

func TestGenTraceWorkingSetSize(t *testing.T) {
	for _, name := range []string{"json", "image", "bert"} {
		f, _ := ByName(name)
		tr := f.GenTrace()
		s := tr.Summarize()
		want := f.WSPages()
		// Region placement can trim at slot boundaries; within 2%.
		if s.UniquePages < want*98/100 || s.UniquePages > want {
			t.Errorf("%s: unique pages = %d, want ~%d", name, s.UniquePages, want)
		}
	}
}

func TestGenTraceAllocVolume(t *testing.T) {
	f, _ := ByName("image")
	s := f.GenTrace().Summarize()
	if s.AllocPages != f.AllocPages() {
		t.Fatalf("alloc pages = %d, want %d", s.AllocPages, f.AllocPages())
	}
	if s.FreedAllocs == 0 {
		t.Fatal("no allocations freed")
	}
}

func TestGenTraceComputeBudget(t *testing.T) {
	f, _ := ByName("linpack")
	s := f.GenTrace().Summarize()
	want := time.Duration(f.ComputeMs) * time.Millisecond
	if s.TotalCompute < want*95/100 || s.TotalCompute > want*105/100 {
		t.Fatalf("compute = %v, want ~%v", s.TotalCompute, want)
	}
}

func TestGenTracePagesWithinState(t *testing.T) {
	f, _ := ByName("bfs")
	for _, pg := range f.GenTrace().StatePages() {
		if pg < 0 || pg >= f.StatePages() {
			t.Fatalf("state page %d outside [0, %d)", pg, f.StatePages())
		}
	}
}

func TestGenTraceNonSequentialRegionOrder(t *testing.T) {
	// Region shuffle: first accesses must not be globally sorted.
	f, _ := ByName("cnn")
	pages := f.GenTrace().StatePages()
	sorted := true
	for i := 1; i < len(pages); i++ {
		if pages[i] < pages[i-1] {
			sorted = false
			break
		}
	}
	if sorted {
		t.Fatal("working set accessed fully sequentially; region shuffle broken")
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	bad := []Function{
		{Name: "", MemMiB: 10, WSRegions: 1},
		{Name: "x", MemMiB: 10, StateMiB: 20, WSRegions: 1},
		{Name: "x", MemMiB: 10, StateMiB: 5, WSMiB: 6, WSRegions: 1},
		{Name: "x", MemMiB: 10, StateMiB: 5, WSMiB: 2, AllocMiB: 6, WSRegions: 1},
		{Name: "x", MemMiB: 10, StateMiB: 5, WSMiB: 2, WSRegions: 0},
		{Name: "x", MemMiB: 10, StateMiB: 5, WSMiB: 2, WSRegions: 1, WriteFrac: 1.5},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("bad function %d accepted", i)
		}
	}
}

func TestWritesRoughlyMatchWriteFrac(t *testing.T) {
	f, _ := ByName("matmul")
	s := f.GenTrace().Summarize()
	// Alloc touches are always writes; state accesses write with
	// WriteFrac. Just sanity-check the bounds.
	if s.Writes < s.AllocPages {
		t.Fatalf("writes = %d < alloc pages %d", s.Writes, s.AllocPages)
	}
	if s.Writes > s.Accesses {
		t.Fatalf("writes exceed accesses")
	}
}

func TestNamesOrderedLikeSuite(t *testing.T) {
	names := Names()
	fs := Suite()
	for i := range fs {
		if names[i] != fs[i].Name {
			t.Fatal("Names order mismatch")
		}
	}
}

package core

import (
	"testing"
	"time"

	"snapbpf/internal/blockdev"
	"snapbpf/internal/ebpf"
	"snapbpf/internal/pagecache"
	"snapbpf/internal/prefetch"
	"snapbpf/internal/sim"
	"snapbpf/internal/snapshot"
	"snapbpf/internal/vmm"
	"snapbpf/internal/workload"
)

func tinyFn() workload.Function {
	return workload.Function{
		Name: "tiny", MemMiB: 64, StateMiB: 32, WSMiB: 8, WSRegions: 10,
		AllocMiB: 4, ComputeMs: 5, WriteFrac: 0.15, Seed: 3,
	}
}

func newEnv(fn workload.Function) *prefetch.Env {
	h := vmm.NewHost(blockdev.MicronSATA5300())
	img := vmm.BuildImage(fn, false)
	return &prefetch.Env{
		Host:        h,
		Fn:          fn,
		Image:       img,
		SnapInode:   h.RegisterSnapshot(fn.Name+".snapmem", img),
		RecordTrace: fn.GenTrace(),
		InvokeTrace: fn.GenTrace(),
	}
}

func TestProgramsVerify(t *testing.T) {
	vm := ebpf.NewVM()
	conf := vm.RegisterMap(ebpf.MustNewMap(ebpf.MapTypeArray, "c", 2))
	ws := vm.RegisterMap(ebpf.MustNewMap(ebpf.MapTypeHash, "w", 64))
	if _, err := vm.Load("capture", buildCaptureProgram(conf, ws)); err != nil {
		t.Fatalf("capture program rejected: %v\n%s", err,
			ebpf.Disassemble(buildCaptureProgram(conf, ws)))
	}

	host := vmm.NewHost(blockdev.MicronSATA5300())
	EnsureKfunc(host)
	pconf := host.BPF.RegisterMap(ebpf.MustNewMap(ebpf.MapTypeArray, "p", 4))
	gs := host.BPF.RegisterMap(ebpf.MustNewMap(ebpf.MapTypeArray, "gs", 8))
	gl := host.BPF.RegisterMap(ebpf.MustNewMap(ebpf.MapTypeArray, "gl", 8))
	if _, err := host.BPF.Load("prefetch", buildPrefetchProgram(pconf, gs, gl)); err != nil {
		t.Fatalf("prefetch program rejected: %v", err)
	}
}

func TestCaptureProgramFiltersAndSequences(t *testing.T) {
	vm := ebpf.NewVM()
	conf := ebpf.MustNewMap(ebpf.MapTypeArray, "c", 2)
	ws := ebpf.MustNewMap(ebpf.MapTypeHash, "w", 64)
	confFD, wsFD := vm.RegisterMap(conf), vm.RegisterMap(ws)
	if err := conf.Update(0, 42); err != nil { // target inode 42
		t.Fatal(err)
	}
	if err := conf.Update(1, 0); err != nil {
		t.Fatal(err)
	}
	prog := vm.MustLoad("capture", buildCaptureProgram(confFD, wsFD))

	run := func(inode, page uint64) {
		if _, err := prog.Run(nil, inode, page); err != nil {
			t.Fatal(err)
		}
	}
	run(42, 100)
	run(7, 999) // other inode: filtered out
	run(42, 50)
	run(42, 100) // re-insertion overwrites with a later seq

	if _, ok := ws.Lookup(999); ok {
		t.Fatal("foreign inode page captured")
	}
	if v, ok := ws.Lookup(100); !ok || v != 2 {
		t.Fatalf("ws[100] = %d,%v; want seq 2 (last write wins)", v, ok)
	}
	if v, ok := ws.Lookup(50); !ok || v != 1 {
		t.Fatalf("ws[50] = %d,%v; want seq 1", v, ok)
	}
	if seq, _ := conf.Lookup(1); seq != 3 {
		t.Fatalf("next seq = %d, want 3", seq)
	}
}

func TestPrefetchProgramIssuesGroupsInOrderAndDisables(t *testing.T) {
	host := vmm.NewHost(blockdev.MicronSATA5300())
	EnsureKfunc(host)
	ino := host.Cache.NewInode("snap", 4096)

	pconf := ebpf.MustNewMap(ebpf.MapTypeArray, "p", 4)
	gs := ebpf.MustNewMap(ebpf.MapTypeArray, "gs", 4)
	gl := ebpf.MustNewMap(ebpf.MapTypeArray, "gl", 4)
	pconfFD := host.BPF.RegisterMap(pconf)
	gsFD := host.BPF.RegisterMap(gs)
	glFD := host.BPF.RegisterMap(gl)

	// Three groups, deliberately not in offset order.
	groups := []snapshot.Group{{Start: 100, NPages: 16}, {Start: 10, NPages: 4}, {Start: 500, NPages: 8}}
	for i, g := range groups {
		must(t, gs.Update(uint64(i), uint64(g.Start)))
		must(t, gl.Update(uint64(i), uint64(g.NPages)))
	}
	must(t, pconf.Update(0, ino.ID()))
	must(t, pconf.Update(1, uint64(len(groups))))
	must(t, pconf.Update(2, 0))
	must(t, pconf.Update(3, 1))

	prog := host.BPF.MustLoad("prefetch", buildPrefetchProgram(pconfFD, gsFD, glFD))
	if _, err := prog.Run(host, ino.ID(), 0); err != nil {
		t.Fatal(err)
	}
	host.Eng.Run() // drain the async reads

	for _, g := range groups {
		for pg := g.Start; pg < g.End(); pg++ {
			if !ino.Resident(pg) {
				t.Fatalf("page %d not prefetched", pg)
			}
		}
	}
	if ino.ResidentPages() != 28 {
		t.Fatalf("resident = %d, want 28", ino.ResidentPages())
	}
	if active, _ := pconf.Lookup(3); active != 0 {
		t.Fatal("program did not disable itself after the last group")
	}
	if cursor, _ := pconf.Lookup(2); cursor != 3 {
		t.Fatalf("cursor = %d, want 3", cursor)
	}

	// A second firing must be a no-op (disabled via the map flag).
	before := host.Cache.Stats().RAInserted
	if _, err := prog.Run(host, ino.ID(), 1); err != nil {
		t.Fatal(err)
	}
	if host.Cache.Stats().RAInserted != before {
		t.Fatal("disabled program still issued prefetch")
	}
}

func TestPrefetchProgramBatchLimit(t *testing.T) {
	host := vmm.NewHost(blockdev.MicronSATA5300())
	EnsureKfunc(host)
	ino := host.Cache.NewInode("snap", 4096)

	pconf := ebpf.MustNewMap(ebpf.MapTypeArray, "p", 5)
	gs := ebpf.MustNewMap(ebpf.MapTypeArray, "gs", 4)
	gl := ebpf.MustNewMap(ebpf.MapTypeArray, "gl", 4)
	pconfFD := host.BPF.RegisterMap(pconf)
	gsFD := host.BPF.RegisterMap(gs)
	glFD := host.BPF.RegisterMap(gl)
	for i, g := range []snapshot.Group{{Start: 0, NPages: 2}, {Start: 10, NPages: 2}, {Start: 20, NPages: 2}} {
		must(t, gs.Update(uint64(i), uint64(g.Start)))
		must(t, gl.Update(uint64(i), uint64(g.NPages)))
	}
	must(t, pconf.Update(0, ino.ID()))
	must(t, pconf.Update(1, 3))
	must(t, pconf.Update(2, 0))
	must(t, pconf.Update(3, 1))
	must(t, pconf.Update(4, 1)) // one group per firing

	prog := host.BPF.MustLoad("prefetch", buildPrefetchProgram(pconfFD, gsFD, glFD))
	fire := func() {
		if _, err := prog.Run(host, ino.ID(), 0); err != nil {
			t.Fatal(err)
		}
		host.Eng.Run()
	}
	fire()
	if got := ino.ResidentPages(); got != 2 {
		t.Fatalf("after firing 1: resident = %d, want 2", got)
	}
	if active, _ := pconf.Lookup(3); active != 1 {
		t.Fatal("program disabled with groups remaining")
	}
	fire()
	fire()
	if got := ino.ResidentPages(); got != 6 {
		t.Fatalf("after firing 3: resident = %d, want 6", got)
	}
	if active, _ := pconf.Lookup(3); active != 0 {
		t.Fatal("program still active after the last group")
	}
	if cursor, _ := pconf.Lookup(2); cursor != 3 {
		t.Fatalf("cursor = %d", cursor)
	}
}

func TestPerPageScheduleStaysWithinInsnBudget(t *testing.T) {
	// A pathologically long per-page schedule must never abort the
	// program: the batch limit bounds each firing.
	fn := workload.Function{
		Name: "wide", MemMiB: 256, StateMiB: 200, WSMiB: 130, WSRegions: 4,
		AllocMiB: 2, ComputeMs: 5, WriteFrac: 0.05, Seed: 5,
	}
	env := newEnv(fn)
	s := New()
	s.DisableGrouping = true // one group per page: >30k groups
	var err error
	env.Host.Eng.Go("rec", func(p *sim.Proc) { err = s.Record(p, env) })
	env.Host.Eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.WorkingSet().Groups) < 2*defaultPrefetchBatch {
		t.Fatalf("schedule too short for the test: %d groups", len(s.WorkingSet().Groups))
	}
	env.Host.Cache.DropCaches()
	env.Host.Eng.Go("vm", func(p *sim.Proc) {
		vm, rerr := env.Host.Restore(p, "vm0", fn, env.Image, env.SnapInode, s.RestoreConfig(0))
		if rerr != nil {
			err = rerr
			return
		}
		if perr := s.PrepareVM(p, env, vm); perr != nil {
			err = perr
			return
		}
		if _, ierr := vm.Invoke(p, env.InvokeTrace); ierr != nil {
			err = ierr
		}
		s.FinishVM(env, vm)
	})
	env.Host.Eng.Run() // panics on program abort via kprobe OnError=nil
	if err != nil {
		t.Fatal(err)
	}
}

func TestPrefetchProgramFiltersInode(t *testing.T) {
	host := vmm.NewHost(blockdev.MicronSATA5300())
	EnsureKfunc(host)
	ino := host.Cache.NewInode("snap", 4096)
	other := host.Cache.NewInode("other", 4096)

	pconf := ebpf.MustNewMap(ebpf.MapTypeArray, "p", 4)
	gs := ebpf.MustNewMap(ebpf.MapTypeArray, "gs", 1)
	gl := ebpf.MustNewMap(ebpf.MapTypeArray, "gl", 1)
	pconfFD := host.BPF.RegisterMap(pconf)
	gsFD := host.BPF.RegisterMap(gs)
	glFD := host.BPF.RegisterMap(gl)
	must(t, gs.Update(0, 0))
	must(t, gl.Update(0, 8))
	must(t, pconf.Update(0, ino.ID()))
	must(t, pconf.Update(1, 1))
	must(t, pconf.Update(2, 0))
	must(t, pconf.Update(3, 1))

	prog := host.BPF.MustLoad("prefetch", buildPrefetchProgram(pconfFD, gsFD, glFD))
	if _, err := prog.Run(host, other.ID(), 0); err != nil {
		t.Fatal(err)
	}
	host.Eng.Run()
	if ino.ResidentPages() != 0 {
		t.Fatal("prefetch fired for a foreign inode insertion")
	}
	if active, _ := pconf.Lookup(3); active != 1 {
		t.Fatal("foreign firing disabled the program")
	}
}

func TestBuildSchedule(t *testing.T) {
	// Pages 10,11,12 accessed late; page 50 first; page 7 second.
	entries := []ebpf.Entry{
		{Key: 7, Value: 1},
		{Key: 10, Value: 5},
		{Key: 11, Value: 3},
		{Key: 12, Value: 4},
		{Key: 50, Value: 0},
	}
	ws := buildSchedule(entries, false, false)
	want := []snapshot.Group{{Start: 50, NPages: 1}, {Start: 7, NPages: 1}, {Start: 10, NPages: 3}}
	if len(ws.Groups) != len(want) {
		t.Fatalf("groups = %v, want %v", ws.Groups, want)
	}
	for i := range want {
		if ws.Groups[i] != want[i] {
			t.Fatalf("groups = %v, want %v", ws.Groups, want)
		}
	}
}

func TestBuildSchedulePerPage(t *testing.T) {
	entries := []ebpf.Entry{{Key: 10, Value: 0}, {Key: 11, Value: 1}}
	ws := buildSchedule(entries, true, false)
	if len(ws.Groups) != 2 {
		t.Fatalf("per-page groups = %v", ws.Groups)
	}
}

func TestBuildScheduleOffsetOrder(t *testing.T) {
	entries := []ebpf.Entry{{Key: 5, Value: 9}, {Key: 100, Value: 0}}
	ws := buildSchedule(entries, false, true)
	if ws.Groups[0].Start != 5 {
		t.Fatalf("offset order broken: %v", ws.Groups)
	}
}

func TestBuildScheduleEmpty(t *testing.T) {
	ws := buildSchedule(nil, false, false)
	if len(ws.Groups) != 0 {
		t.Fatal("non-empty schedule from no entries")
	}
}

func TestRecordCapturesWorkingSetOnly(t *testing.T) {
	fn := tinyFn()
	env := newEnv(fn)
	s := New()
	var err error
	env.Host.Eng.Go("rec", func(p *sim.Proc) { err = s.Record(p, env) })
	env.Host.Eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	ws := s.WorkingSet()
	if ws == nil || len(ws.Groups) == 0 {
		t.Fatal("no working set captured")
	}
	sum := env.RecordTrace.Summarize()
	if got := ws.TotalPages(); got != sum.UniquePages {
		t.Fatalf("captured %d pages, trace touches %d unique state pages", got, sum.UniquePages)
	}
	// With PV marking, allocation pages never reach the page cache, so
	// every captured offset must lie in the state area.
	for _, g := range ws.Groups {
		if g.End() > fn.StatePages() {
			t.Fatalf("captured group %v beyond state area %d", g, fn.StatePages())
		}
	}
}

func TestRecordWithoutPVCapturesAllocPages(t *testing.T) {
	fn := tinyFn()
	env := newEnv(fn)
	s := New()
	s.EnablePV = false
	var err error
	env.Host.Eng.Go("rec", func(p *sim.Proc) { err = s.Record(p, env) })
	env.Host.Eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	beyond := false
	for _, g := range s.WorkingSet().Groups {
		if g.End() > fn.StatePages() {
			beyond = true
		}
	}
	if !beyond {
		t.Fatal("without PV, allocation faults should pull free-pool pages into the capture")
	}
}

func TestPrepareInvokeFlow(t *testing.T) {
	fn := tinyFn()
	env := newEnv(fn)
	s := New()
	var err error
	env.Host.Eng.Go("rec", func(p *sim.Proc) { err = s.Record(p, env) })
	env.Host.Eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	env.Host.Cache.DropCaches()

	var e2e time.Duration
	env.Host.Eng.Go("vm", func(p *sim.Proc) {
		vm, rerr := env.Host.Restore(p, "vm0", fn, env.Image, env.SnapInode, s.RestoreConfig(0))
		if rerr != nil {
			err = rerr
			return
		}
		if perr := s.PrepareVM(p, env, vm); perr != nil {
			err = perr
			return
		}
		vm.MarkPrepared(p)
		st, ierr := vm.Invoke(p, env.InvokeTrace)
		if ierr != nil {
			err = ierr
			return
		}
		e2e = st.E2E
		s.FinishVM(env, vm)
	})
	env.Host.Eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if e2e <= 0 {
		t.Fatal("no E2E measured")
	}
	if len(s.OffsetLoads) != 1 {
		t.Fatalf("OffsetLoads = %v", s.OffsetLoads)
	}
	// After FinishVM nothing remains attached.
	if n := env.Host.Probes.AttachedCount(pagecache.HookAddToPageCacheLRU); n != 0 {
		t.Fatalf("%d programs still attached", n)
	}
}

func TestPrepareBeforeRecordFails(t *testing.T) {
	fn := tinyFn()
	env := newEnv(fn)
	s := New()
	var err error
	env.Host.Eng.Go("vm", func(p *sim.Proc) {
		vm, _ := env.Host.Restore(p, "vm0", fn, env.Image, env.SnapInode, s.RestoreConfig(0))
		err = s.PrepareVM(p, env, vm)
	})
	env.Host.Eng.Run()
	if err == nil {
		t.Fatal("PrepareVM before Record accepted")
	}
}

func TestPVOnlyNeedsNoRecord(t *testing.T) {
	fn := tinyFn()
	env := newEnv(fn)
	s := NewPVOnly()
	var err error
	env.Host.Eng.Go("run", func(p *sim.Proc) {
		if rerr := s.Record(p, env); rerr != nil {
			err = rerr
			return
		}
		vm, _ := env.Host.Restore(p, "vm0", fn, env.Image, env.SnapInode, s.RestoreConfig(0))
		if perr := s.PrepareVM(p, env, vm); perr != nil {
			err = perr
			return
		}
		vm.MarkPrepared(p)
		if _, ierr := vm.Invoke(p, env.InvokeTrace); ierr != nil {
			err = ierr
		}
	})
	env.Host.Eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if s.WorkingSet() != nil {
		t.Fatal("PV-only configuration captured a working set")
	}
}

func TestCapabilitiesMatchTable1(t *testing.T) {
	c := New().Capabilities()
	if !c.KernelSpace || c.OnDiskWSSerialization || !c.InMemoryWSDedup || !c.StatelessAllocFiltering {
		t.Fatalf("capabilities = %+v", c)
	}
	pv := NewPVOnly().Capabilities()
	if !pv.StatelessAllocFiltering {
		t.Fatal("PV-only loses alloc filtering")
	}
}

func TestEnsureKfuncIdempotent(t *testing.T) {
	h := vmm.NewHost(blockdev.MicronSATA5300())
	EnsureKfunc(h)
	EnsureKfunc(h) // must not panic on duplicate registration
	if _, ok := h.BPF.Helper(KfuncSnapbpfPrefetchID); !ok {
		t.Fatal("kfunc not registered")
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

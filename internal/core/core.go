// Package core implements SnapBPF, the paper's contribution: an
// eBPF-based kernel-space mechanism that captures and prefetches the
// working sets of VM-sandboxed serverless functions through the OS
// page cache (§3.1), combined with a lightweight paravirtualized PTE
// marking interface that serves guest memory allocations with
// anonymous memory online, without snapshot scanning (§3.2).
//
// Unlike the userspace baselines, SnapBPF
//
//   - serializes only page *offsets* (an OffsetsWS), never page
//     contents: prefetch reads come straight from the snapshot file;
//   - deduplicates working sets across concurrent sandboxes through
//     shared page-cache pages;
//   - needs no snapshot scanning or pre-processing for allocation
//     filtering.
package core

import (
	"fmt"
	"sort"
	"time"

	"snapbpf/internal/ebpf"
	"snapbpf/internal/kprobe"
	"snapbpf/internal/pagecache"
	"snapbpf/internal/prefetch"
	"snapbpf/internal/sim"
	"snapbpf/internal/snapshot"
	"snapbpf/internal/vmm"
)

// SnapBPF is the prefetcher. The two mechanisms can be toggled
// independently for the paper's Figure 4 breakdown.
type SnapBPF struct {
	// EnablePrefetch turns on the eBPF capture/prefetch mechanism.
	EnablePrefetch bool
	// EnablePV turns on the guest PV PTE-marking patch.
	EnablePV bool
	// UnpatchedKVM reverts the KVM CoW patch (ablation; §4 Memory).
	UnpatchedKVM bool
	// DisableGrouping issues one group per page instead of contiguous
	// ranges (ablation; §3.1 "we do minimize the number of block
	// requests ... by grouping the pages into contiguous ranges").
	DisableGrouping bool
	// OffsetOrder sorts groups by file offset instead of earliest
	// access time (ablation; §3.1 sorted group order).
	OffsetOrder bool

	// ScheduleOverride, when non-nil, rewrites the captured prefetch
	// schedule once at the end of Record, before validation. The
	// counterfactual-replay harness (internal/calib) uses it to rerun
	// a cell under an alternative group ordering; it never runs on the
	// fault hot path.
	ScheduleOverride func([]snapshot.Group) []snapshot.Group

	// PrefetchBatch caps the groups issued per program firing so one
	// execution stays within the kernel's instruction budget; the
	// program resumes from its cursor on later firings. 0 uses the
	// default.
	PrefetchBatch int

	nameOverride string

	ws *snapshot.OffsetsWS

	// OffsetLoads records, per PrepareVM call, the time spent loading
	// the offset schedule into the kernel via eBPF map updates — the
	// overhead the paper measures at ~1–2ms, <1% of E2E (§4).
	OffsetLoads []time.Duration

	// CaptureProgRuns counts capture-program executions during Record,
	// and PrefetchProgRuns counts prefetch-program executions across
	// all sandboxes — inputs to the cost-analysis extension (the
	// "comprehensive analysis of the computational and memory costs"
	// the paper leaves to future work, §4).
	CaptureProgRuns  int64
	PrefetchProgRuns int64

	attachments map[*vmm.MicroVM]*kprobe.Attachment
	progs       map[*vmm.MicroVM]*ebpf.Program
}

// defaultPrefetchBatch bounds the groups issued per prefetch-program
// firing: ~35 interpreted instructions per group keeps a full batch
// well inside the 1M-instruction budget.
const defaultPrefetchBatch = 16384

// New returns SnapBPF with both mechanisms enabled, as evaluated in
// Figure 3.
func New() *SnapBPF {
	return &SnapBPF{EnablePrefetch: true, EnablePV: true,
		attachments: make(map[*vmm.MicroVM]*kprobe.Attachment),
		progs:       make(map[*vmm.MicroVM]*ebpf.Program)}
}

// NewPVOnly returns the PV-PTE-marking-only configuration (the pink
// bars of Figure 4).
func NewPVOnly() *SnapBPF {
	s := New()
	s.EnablePrefetch = false
	s.nameOverride = "PVPTEs"
	return s
}

// Name implements prefetch.Prefetcher.
func (s *SnapBPF) Name() string {
	if s.nameOverride != "" {
		return s.nameOverride
	}
	return "SnapBPF"
}

// SetName overrides the display name (ablation variants).
func (s *SnapBPF) SetName(n string) { s.nameOverride = n }

// Capabilities implements prefetch.Prefetcher (Table 1 row).
func (s *SnapBPF) Capabilities() prefetch.Capabilities {
	return prefetch.Capabilities{
		Mechanism:               "eBPF (Kernel-space)",
		KernelSpace:             true,
		OnDiskWSSerialization:   false,
		InMemoryWSDedup:         true,
		StatelessAllocFiltering: s.EnablePV,
	}
}

// RestoreConfig implements prefetch.Prefetcher.
func (s *SnapBPF) RestoreConfig(salt int) vmm.RestoreConfig {
	return vmm.RestoreConfig{
		PVMarking:         s.EnablePV,
		ForceWriteMapping: s.UnpatchedKVM,
		AllocSalt:         salt,
	}
}

// WorkingSet exposes the captured offsets artifact.
func (s *SnapBPF) WorkingSet() *snapshot.OffsetsWS { return s.ws }

// Record implements prefetch.Prefetcher: the capture phase of §3.1.
// The VMM creates the add_to_page_cache_lru kprobe, attaches the
// capture eBPF program, disables readahead on the snapshot inode, and
// invokes the function once; afterwards it reads the captured offsets
// from the eBPF map, groups them into contiguous ranges, sorts the
// groups by earliest access, and stores only this metadata.
func (s *SnapBPF) Record(p *sim.Proc, env *prefetch.Env) (err error) {
	if !s.EnablePrefetch {
		return nil // PV-only configuration has no record phase
	}
	h := env.Host
	EnsureKfunc(h)

	conf := ebpf.MustNewMap(ebpf.MapTypeArray, "snapbpf_capture_conf", 2)
	wsMap := ebpf.MustNewMap(ebpf.MapTypeHash, "snapbpf_ws", int(env.Image.NrPages))
	confFD := h.BPF.RegisterMap(conf)
	wsFD := h.BPF.RegisterMap(wsMap)
	if err := conf.Update(0, env.SnapInode.ID()); err != nil {
		return err
	}
	if err := conf.Update(1, 0); err != nil {
		return err
	}
	prog, err := h.BPF.Load("snapbpf-capture", buildCaptureProgram(confFD, wsFD))
	if err != nil {
		return err
	}
	att, err := h.Probes.Attach(pagecache.HookAddToPageCacheLRU, prog)
	if err != nil {
		return err
	}
	defer func() {
		if derr := h.Probes.Detach(att); derr != nil && err == nil {
			err = derr
		}
	}()

	env.SnapInode.SetReadahead(0) // §3.1: disable readahead in capture
	defer env.SnapInode.SetReadahead(-1)

	vm, err := h.Restore(p, env.Fn.Name+"-snapbpf-record", env.Fn, env.Image, env.SnapInode,
		vmm.RestoreConfig{PVMarking: s.EnablePV, AllocSalt: 0})
	if err != nil {
		return err
	}
	vm.MapSnapshotDefault(p)
	vm.MarkPrepared(p)
	if _, err = vm.Invoke(p, env.RecordTrace); err != nil {
		return err
	}
	vm.Shutdown()
	s.CaptureProgRuns += prog.Runs()

	s.ws = buildSchedule(wsMap.Entries(), s.DisableGrouping, s.OffsetOrder)
	if s.ScheduleOverride != nil {
		s.ws = &snapshot.OffsetsWS{Groups: s.ScheduleOverride(s.ws.Groups)}
	}
	if err := s.ws.Validate(env.Image.NrPages); err != nil {
		return fmt.Errorf("snapbpf: captured invalid working set: %w", err)
	}
	env.NotifyRecordDone(s.Name(), s.ws.TotalPages())
	return nil
}

// buildSchedule turns captured (page -> access seq) map entries into
// the prefetch schedule: contiguous ranges ordered by the earliest
// access time of any page in the range.
func buildSchedule(entries []ebpf.Entry, perPage, offsetOrder bool) *snapshot.OffsetsWS {
	if len(entries) == 0 {
		return &snapshot.OffsetsWS{}
	}
	type rec struct{ page, seq int64 }
	recs := make([]rec, len(entries))
	for i, e := range entries {
		recs[i] = rec{int64(e.Key), int64(e.Value)}
	}
	// Entries arrive sorted by page; group contiguous runs and track
	// each run's earliest access sequence.
	type grp struct {
		g      snapshot.Group
		minSeq int64
	}
	var groups []grp
	for _, r := range recs {
		if perPage {
			groups = append(groups, grp{snapshot.Group{Start: r.page, NPages: 1}, r.seq})
			continue
		}
		if n := len(groups); n > 0 && groups[n-1].g.End() == r.page {
			groups[n-1].g.NPages++
			if r.seq < groups[n-1].minSeq {
				groups[n-1].minSeq = r.seq
			}
			continue
		}
		groups = append(groups, grp{snapshot.Group{Start: r.page, NPages: 1}, r.seq})
	}
	if !offsetOrder {
		sort.SliceStable(groups, func(i, j int) bool { return groups[i].minSeq < groups[j].minSeq })
	}
	ws := &snapshot.OffsetsWS{Groups: make([]snapshot.Group, len(groups))}
	for i, g := range groups {
		ws.Groups[i] = g.g
	}
	return ws
}

// PrepareVM implements prefetch.Prefetcher: the loading phase of
// §3.1 / Figure 1. The VMM (1) loads the grouped offsets into the
// kernel via eBPF maps, (2) attaches the prefetch program to the
// add_to_page_cache_lru kprobe, and triggers prefetching by accessing
// the first page of the snapshot; (3) the program issues readahead
// for every range through the snapbpf_prefetch kfunc and disables
// itself.
func (s *SnapBPF) PrepareVM(p *sim.Proc, env *prefetch.Env, vm *vmm.MicroVM) error {
	vm.MapSnapshotDefault(p)
	if !s.EnablePrefetch {
		env.NotifyPrepareDone(s.Name(), vm)
		return nil
	}
	if s.ws == nil {
		return fmt.Errorf("snapbpf: PrepareVM before Record")
	}
	if len(s.ws.Groups) == 0 {
		env.NotifyPrepareDone(s.Name(), vm)
		return nil
	}
	if env.Faults.MapLoadFails() {
		// The eBPF map/program load failed for this sandbox (memlock
		// pressure, verifier regression): skip the kernel prefetch and
		// fall back to plain demand paging from the snapshot mapping —
		// the invocation completes, just without the §3.1 speedup.
		env.Faults.CountFallback()
		env.NotifyDegraded(s.Name(), vm, "ebpf map load failure")
		env.NotifyPrepareDone(s.Name(), vm)
		return nil
	}
	h := env.Host
	EnsureKfunc(h)

	n := len(s.ws.Groups)
	pconf := ebpf.MustNewMap(ebpf.MapTypeArray, "snapbpf_pconf", 5)
	gstart := ebpf.MustNewMap(ebpf.MapTypeArray, "snapbpf_gstart", n)
	glen := ebpf.MustNewMap(ebpf.MapTypeArray, "snapbpf_glen", n)
	pconfFD := h.BPF.RegisterMap(pconf)
	gstartFD := h.BPF.RegisterMap(gstart)
	glenFD := h.BPF.RegisterMap(glen)

	// Step 1: userspace loads the offset schedule into the kernel.
	loadStart := p.Now()
	updates := 0
	for i, g := range s.ws.Groups {
		if err := gstart.Update(uint64(i), uint64(g.Start)); err != nil {
			return err
		}
		if err := glen.Update(uint64(i), uint64(g.NPages)); err != nil {
			return err
		}
		gstart.UserUpdates++
		glen.UserUpdates++
		updates += 2
	}
	batch := s.PrefetchBatch
	if batch <= 0 {
		batch = defaultPrefetchBatch
	}
	confVals := [5]uint64{env.SnapInode.ID(), uint64(n), 0, 1, uint64(batch)}
	for k, v := range confVals {
		if err := pconf.Update(uint64(k), v); err != nil {
			return err
		}
		updates++
	}
	p.Sleep(time.Duration(updates) * h.CM.BPFMapUpdateUser)
	loadTook := p.Now().Sub(loadStart)
	s.OffsetLoads = append(s.OffsetLoads, loadTook)
	env.NotifyOffsetsLoaded(p, s.Name(), vm, n, loadTook)

	// The captured offsets double as the distribution tier's chunk
	// priority: hand the schedule's page order to the store so
	// WS-guided lazy pull fetches those chunks first.
	if env.ChunkPlan != nil {
		var pages []int64
		for _, g := range s.ws.Groups {
			for k := int64(0); k < g.NPages; k++ {
				pages = append(pages, g.Start+k)
			}
		}
		env.NotifyChunkPlan(p, pages)
	}

	// Step 2: attach the prefetch program.
	prog, err := h.BPF.Load("snapbpf-prefetch", buildPrefetchProgram(pconfFD, gstartFD, glenFD))
	if err != nil {
		return err
	}
	att, err := h.Probes.Attach(pagecache.HookAddToPageCacheLRU, prog)
	if err != nil {
		return err
	}
	s.attachments[vm] = att
	s.progs[vm] = prog

	// Trigger: access the first page of the snapshot. If it is
	// already cached (a concurrent sandbox prefetched it), nothing is
	// inserted and the program simply fires on the sandbox's first
	// demand miss instead.
	vm.AS.HandleFault(p, s.ws.Groups[0].Start, false)
	env.NotifyPrepareDone(s.Name(), vm)
	return nil
}

// FinishVM implements prefetch.Prefetcher: detach the sandbox's
// prefetch program.
func (s *SnapBPF) FinishVM(env *prefetch.Env, vm *vmm.MicroVM) {
	if att, ok := s.attachments[vm]; ok {
		delete(s.attachments, vm)
		if err := env.Host.Probes.Detach(att); err != nil {
			panic(err)
		}
	}
	if prog, ok := s.progs[vm]; ok {
		delete(s.progs, vm)
		s.PrefetchProgRuns += prog.Runs()
	}
}

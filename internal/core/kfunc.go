package core

import (
	"fmt"

	"snapbpf/internal/ebpf"
	"snapbpf/internal/vmm"
)

// KfuncSnapbpfPrefetchID is the registered kfunc id of
// snapbpf_prefetch().
const KfuncSnapbpfPrefetchID = ebpf.KfuncBase

// EnsureKfunc registers the snapbpf_prefetch kfunc on the host's BPF
// subsystem (idempotent). The kfunc wraps the page cache readahead
// routine page_cache_ra_unbounded(): it asynchronously fetches npages
// pages of the given inode starting at pgoff into the OS page cache
// (§3.1: "we implement an eBPF helper function, more specifically a
// kfunc (snapbpf_prefetch()), which wraps around the Linux page cache
// readahead routine").
//
// Arguments (R1–R3): inode id, start page offset, page count.
// Returns the number of pages newly submitted for read.
func EnsureKfunc(h *vmm.Host) {
	if _, ok := h.BPF.Helper(KfuncSnapbpfPrefetchID); ok {
		return
	}
	h.BPF.MustRegisterHelper(KfuncSnapbpfPrefetchID, "snapbpf_prefetch",
		func(ctx *ebpf.CallContext, args [5]uint64) (uint64, error) {
			host, ok := ctx.Env.(*vmm.Host)
			if !ok {
				return 0, fmt.Errorf("snapbpf_prefetch: no host environment")
			}
			ino, ok := host.Cache.InodeByID(args[0])
			if !ok {
				return 0, fmt.Errorf("snapbpf_prefetch: unknown inode %d", args[0])
			}
			start := int64(args[1])
			n := int64(args[2])
			if start < 0 || n <= 0 {
				return 0, fmt.Errorf("snapbpf_prefetch: bad range (%d, %d)", start, n)
			}
			return uint64(ino.ReadaheadAsync(start, n)), nil
		})
}

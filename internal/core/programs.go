package core

import "snapbpf/internal/ebpf"

// This file assembles the two SnapBPF eBPF programs (§3.1). Both
// attach to the add_to_page_cache_lru kprobe and receive (inode id,
// page offset) as context arguments.

// BuiltinProgram is one kernel-side SnapBPF program paired with a VM
// whose map and helper tables match what attachCapture/armPrefetch
// register at runtime, so static analysis sees the real load
// environment. Used by snapbpf-ebpf-check and -absint-report.
type BuiltinProgram struct {
	Name  string
	VM    *ebpf.VM
	Insns []ebpf.Instruction
}

// BuiltinPrograms assembles both built-in programs in
// analysis-faithful environments (the map sizes are nominal; only
// fds, types and helper ids matter to verification).
func BuiltinPrograms() []BuiltinProgram {
	cvm := ebpf.NewVM()
	confFD := cvm.RegisterMap(ebpf.MustNewMap(ebpf.MapTypeArray, "snapbpf_capture_conf", 2))
	wsFD := cvm.RegisterMap(ebpf.MustNewMap(ebpf.MapTypeHash, "snapbpf_ws", 1024))

	pvm := ebpf.NewVM()
	pvm.MustRegisterHelper(KfuncSnapbpfPrefetchID, "snapbpf_prefetch",
		func(ctx *ebpf.CallContext, args [5]uint64) (uint64, error) { return 0, nil })
	pconfFD := pvm.RegisterMap(ebpf.MustNewMap(ebpf.MapTypeArray, "snapbpf_pconf", 5))
	gstartFD := pvm.RegisterMap(ebpf.MustNewMap(ebpf.MapTypeArray, "snapbpf_gstart", 1024))
	glenFD := pvm.RegisterMap(ebpf.MustNewMap(ebpf.MapTypeArray, "snapbpf_glen", 1024))

	return []BuiltinProgram{
		{Name: "snapbpf-capture", VM: cvm, Insns: buildCaptureProgram(confFD, wsFD)},
		{Name: "snapbpf-prefetch", VM: pvm, Insns: buildPrefetchProgram(pconfFD, gstartFD, glenFD)},
	}
}

// Capture-program map layout:
//
//	conf (array[2]): [0] = target snapshot inode, [1] = next access seq
//	ws   (hash):     page offset -> access sequence number
//
// The program filters out pages of other files ("it has to filter out
// any pages that do not belong to the function snapshot file") and
// records each captured offset with a monotonically increasing access
// sequence, which later drives the earliest-access group ordering.
func buildCaptureProgram(confFD, wsFD int32) []ebpf.Instruction {
	b := ebpf.NewBuilder()
	// Save context args: inode at fp-8, page offset at fp-16.
	b.StxDW(ebpf.R10, -8, ebpf.R1)
	b.StxDW(ebpf.R10, -16, ebpf.R2)

	// conf[0] -> fp-32: the snapshot inode to capture.
	b.StDWImm(ebpf.R10, -24, 0)
	b.Mov64Imm(ebpf.R1, confFD)
	b.Mov64Reg(ebpf.R2, ebpf.R10).Add64Imm(ebpf.R2, -24)
	b.Mov64Reg(ebpf.R3, ebpf.R10).Add64Imm(ebpf.R3, -32)
	b.Call(ebpf.HelperMapLookupElem)
	b.JmpImm(ebpf.OpJeq, ebpf.R0, 1, "conf_ok")
	b.Mov64Imm(ebpf.R0, 0)
	b.Exit()

	b.Label("conf_ok")
	b.LdxDW(ebpf.R6, ebpf.R10, -32) // target inode
	b.LdxDW(ebpf.R7, ebpf.R10, -8)  // faulting inode
	b.JmpReg(ebpf.OpJeq, ebpf.R6, ebpf.R7, "inode_match")
	b.Mov64Imm(ebpf.R0, 0)
	b.Exit()

	b.Label("inode_match")
	// seq = conf[1] -> fp-32.
	b.StDWImm(ebpf.R10, -24, 1)
	b.Mov64Imm(ebpf.R1, confFD)
	b.Mov64Reg(ebpf.R2, ebpf.R10).Add64Imm(ebpf.R2, -24)
	b.Mov64Reg(ebpf.R3, ebpf.R10).Add64Imm(ebpf.R3, -32)
	b.Call(ebpf.HelperMapLookupElem)
	b.JmpImm(ebpf.OpJeq, ebpf.R0, 1, "seq_ok")
	b.Mov64Imm(ebpf.R0, 0)
	b.Exit()

	b.Label("seq_ok")
	b.LdxDW(ebpf.R8, ebpf.R10, -32) // seq
	// ws[page] = seq (key at fp-16, value already at fp-32).
	b.Mov64Imm(ebpf.R1, wsFD)
	b.Mov64Reg(ebpf.R2, ebpf.R10).Add64Imm(ebpf.R2, -16)
	b.Mov64Reg(ebpf.R3, ebpf.R10).Add64Imm(ebpf.R3, -32)
	b.Call(ebpf.HelperMapUpdateElem)
	// conf[1] = seq + 1.
	b.Add64Imm(ebpf.R8, 1)
	b.StxDW(ebpf.R10, -32, ebpf.R8)
	b.StDWImm(ebpf.R10, -24, 1)
	b.Mov64Imm(ebpf.R1, confFD)
	b.Mov64Reg(ebpf.R2, ebpf.R10).Add64Imm(ebpf.R2, -24)
	b.Mov64Reg(ebpf.R3, ebpf.R10).Add64Imm(ebpf.R3, -32)
	b.Call(ebpf.HelperMapUpdateElem)
	b.Mov64Imm(ebpf.R0, 0)
	b.Exit()
	return b.MustProgram()
}

// Prefetch-program map layout:
//
//	pconf  (array[5]): [0] = target inode, [1] = group count,
//	                   [2] = cursor, [3] = active flag,
//	                   [4] = per-firing batch limit (0 = unlimited)
//	gstart (array[n]): group index -> first page offset
//	glen   (array[n]): group index -> page count
//
// On its triggering firing the program walks the group schedule in
// sorted order, issuing one snapbpf_prefetch() kfunc call per
// contiguous range; "once it issues the read request for the last
// group of offsets, the eBPF program will disable itself" by clearing
// the active flag (§3.1). Nested firings caused by the kfunc's own
// page insertions are suppressed by the kernel's recursion guard.
//
// The batch limit keeps one execution inside the kernel's
// instruction-budget bound when the schedule is pathologically long
// (the per-page-grouping ablation): the program persists its cursor
// and remains active, so subsequent insertions resume the walk.
func buildPrefetchProgram(pconfFD, gstartFD, glenFD int32) []ebpf.Instruction {
	b := ebpf.NewBuilder()
	// Save faulting inode at fp-8.
	b.StxDW(ebpf.R10, -8, ebpf.R1)

	// active = pconf[3]? bail when cleared.
	b.StDWImm(ebpf.R10, -16, 3)
	b.Mov64Imm(ebpf.R1, pconfFD)
	b.Mov64Reg(ebpf.R2, ebpf.R10).Add64Imm(ebpf.R2, -16)
	b.Mov64Reg(ebpf.R3, ebpf.R10).Add64Imm(ebpf.R3, -24)
	b.Call(ebpf.HelperMapLookupElem)
	b.JmpImm(ebpf.OpJeq, ebpf.R0, 1, "have_active")
	b.Mov64Imm(ebpf.R0, 0)
	b.Exit()
	b.Label("have_active")
	b.LdxDW(ebpf.R6, ebpf.R10, -24)
	b.JmpImm(ebpf.OpJne, ebpf.R6, 0, "is_active")
	b.Mov64Imm(ebpf.R0, 0)
	b.Exit()

	b.Label("is_active")
	// Inode filter: pconf[0] must equal the faulting inode.
	b.StDWImm(ebpf.R10, -16, 0)
	b.Mov64Imm(ebpf.R1, pconfFD)
	b.Mov64Reg(ebpf.R2, ebpf.R10).Add64Imm(ebpf.R2, -16)
	b.Mov64Reg(ebpf.R3, ebpf.R10).Add64Imm(ebpf.R3, -24)
	b.Call(ebpf.HelperMapLookupElem)
	b.JmpImm(ebpf.OpJeq, ebpf.R0, 1, "have_inode")
	b.Mov64Imm(ebpf.R0, 0)
	b.Exit()
	b.Label("have_inode")
	b.LdxDW(ebpf.R6, ebpf.R10, -24) // target inode (kept across calls)
	b.LdxDW(ebpf.R7, ebpf.R10, -8)
	b.JmpReg(ebpf.OpJeq, ebpf.R6, ebpf.R7, "inode_match")
	b.Mov64Imm(ebpf.R0, 0)
	b.Exit()

	b.Label("inode_match")
	// R8 = group count (pconf[1]).
	b.StDWImm(ebpf.R10, -16, 1)
	b.Mov64Imm(ebpf.R1, pconfFD)
	b.Mov64Reg(ebpf.R2, ebpf.R10).Add64Imm(ebpf.R2, -16)
	b.Mov64Reg(ebpf.R3, ebpf.R10).Add64Imm(ebpf.R3, -24)
	b.Call(ebpf.HelperMapLookupElem)
	b.JmpImm(ebpf.OpJeq, ebpf.R0, 1, "have_n")
	b.Mov64Imm(ebpf.R0, 0)
	b.Exit()
	b.Label("have_n")
	b.LdxDW(ebpf.R8, ebpf.R10, -24)
	// R9 = cursor (pconf[2]).
	b.StDWImm(ebpf.R10, -16, 2)
	b.Mov64Imm(ebpf.R1, pconfFD)
	b.Mov64Reg(ebpf.R2, ebpf.R10).Add64Imm(ebpf.R2, -16)
	b.Mov64Reg(ebpf.R3, ebpf.R10).Add64Imm(ebpf.R3, -24)
	b.Call(ebpf.HelperMapLookupElem)
	b.JmpImm(ebpf.OpJeq, ebpf.R0, 1, "have_cursor")
	b.Mov64Imm(ebpf.R0, 0)
	b.Exit()
	b.Label("have_cursor")
	b.LdxDW(ebpf.R9, ebpf.R10, -24)

	// R8 = min(ngroups, cursor + batch); pconf[4] absent or zero
	// means no batch limit.
	b.StDWImm(ebpf.R10, -16, 4)
	b.Mov64Imm(ebpf.R1, pconfFD)
	b.Mov64Reg(ebpf.R2, ebpf.R10).Add64Imm(ebpf.R2, -16)
	b.Mov64Reg(ebpf.R3, ebpf.R10).Add64Imm(ebpf.R3, -24)
	b.Call(ebpf.HelperMapLookupElem)
	b.JmpImm(ebpf.OpJne, ebpf.R0, 1, "no_batch")
	b.LdxDW(ebpf.R7, ebpf.R10, -24)
	b.JmpImm(ebpf.OpJeq, ebpf.R7, 0, "no_batch")
	b.Add64Reg(ebpf.R7, ebpf.R9) // end = cursor + batch
	b.JmpReg(ebpf.OpJle, ebpf.R8, ebpf.R7, "no_batch")
	b.Mov64Reg(ebpf.R8, ebpf.R7)
	b.Label("no_batch")

	// Issue the remaining groups of this batch in sorted order.
	b.Label("loop")
	b.JmpReg(ebpf.OpJge, ebpf.R9, ebpf.R8, "done")
	// start = gstart[cursor] -> fp-24.
	b.StxDW(ebpf.R10, -16, ebpf.R9)
	b.Mov64Imm(ebpf.R1, gstartFD)
	b.Mov64Reg(ebpf.R2, ebpf.R10).Add64Imm(ebpf.R2, -16)
	b.Mov64Reg(ebpf.R3, ebpf.R10).Add64Imm(ebpf.R3, -24)
	b.Call(ebpf.HelperMapLookupElem)
	b.JmpImm(ebpf.OpJne, ebpf.R0, 1, "done")
	// len = glen[cursor] -> fp-32.
	b.StxDW(ebpf.R10, -16, ebpf.R9)
	b.Mov64Imm(ebpf.R1, glenFD)
	b.Mov64Reg(ebpf.R2, ebpf.R10).Add64Imm(ebpf.R2, -16)
	b.Mov64Reg(ebpf.R3, ebpf.R10).Add64Imm(ebpf.R3, -32)
	b.Call(ebpf.HelperMapLookupElem)
	b.JmpImm(ebpf.OpJne, ebpf.R0, 1, "done")
	// snapbpf_prefetch(inode, start, len).
	b.Mov64Reg(ebpf.R1, ebpf.R6)
	b.LdxDW(ebpf.R2, ebpf.R10, -24)
	b.LdxDW(ebpf.R3, ebpf.R10, -32)
	b.Call(KfuncSnapbpfPrefetchID)
	b.Add64Imm(ebpf.R9, 1)
	b.Ja("loop")

	b.Label("done")
	// pconf[2] = cursor.
	b.StDWImm(ebpf.R10, -16, 2)
	b.StxDW(ebpf.R10, -24, ebpf.R9)
	b.Mov64Imm(ebpf.R1, pconfFD)
	b.Mov64Reg(ebpf.R2, ebpf.R10).Add64Imm(ebpf.R2, -16)
	b.Mov64Reg(ebpf.R3, ebpf.R10).Add64Imm(ebpf.R3, -24)
	b.Call(ebpf.HelperMapUpdateElem)
	// Reload the true group count: disable only when the cursor has
	// reached the end of the schedule (a batch-limited firing leaves
	// the program active to resume later).
	b.StDWImm(ebpf.R10, -16, 1)
	b.Mov64Imm(ebpf.R1, pconfFD)
	b.Mov64Reg(ebpf.R2, ebpf.R10).Add64Imm(ebpf.R2, -16)
	b.Mov64Reg(ebpf.R3, ebpf.R10).Add64Imm(ebpf.R3, -24)
	b.Call(ebpf.HelperMapLookupElem)
	b.JmpImm(ebpf.OpJne, ebpf.R0, 1, "ret")
	b.LdxDW(ebpf.R7, ebpf.R10, -24)
	b.JmpReg(ebpf.OpJlt, ebpf.R9, ebpf.R7, "ret") // batch done, more remain
	// pconf[3] = 0: the program disables itself.
	b.StDWImm(ebpf.R10, -16, 3)
	b.StDWImm(ebpf.R10, -24, 0)
	b.Mov64Imm(ebpf.R1, pconfFD)
	b.Mov64Reg(ebpf.R2, ebpf.R10).Add64Imm(ebpf.R2, -16)
	b.Mov64Reg(ebpf.R3, ebpf.R10).Add64Imm(ebpf.R3, -24)
	b.Call(ebpf.HelperMapUpdateElem)
	b.Label("ret")
	b.Mov64Imm(ebpf.R0, 0)
	b.Exit()
	return b.MustProgram()
}
